// Benchmark recorder for the FFT-accelerated MoM solve chain against
// the dense chain, at matched accuracy: one rough-surface solve per
// grid size, dense = tabulated assembly + resilient chain (FFT stage
// disabled by construction), FFT = operator build + fft-gmres stage.
// Set ROUGHSIM_MOM_BENCH_OUT to write BENCH_mom.json (CI runs grids
// 20,40 as a smoke check; override with ROUGHSIM_MOM_BENCH_GRIDS, e.g.
// "20,40,80" for the committed paper-resolution record).
package roughsim

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/core"
	"roughsim/internal/mom"
	"roughsim/internal/rng"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

func TestRecordMoMBench(t *testing.T) {
	out := os.Getenv("ROUGHSIM_MOM_BENCH_OUT")
	if out == "" {
		t.Skip("set ROUGHSIM_MOM_BENCH_OUT to record the MoM solve benchmark")
	}
	grids := []int{20, 40}
	if g := os.Getenv("ROUGHSIM_MOM_BENCH_GRIDS"); g != "" {
		grids = grids[:0]
		for _, s := range strings.Split(g, ",") {
			m, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				t.Fatalf("bad ROUGHSIM_MOM_BENCH_GRIDS entry %q: %v", s, err)
			}
			grids = append(grids, m)
		}
	}

	const L = 5e-6
	f := 5 * units.GHz
	p := core.PaperMaterial().Params(f)
	ctx := context.Background()

	type gridRec struct {
		M                    int     `json:"m"`
		Unknowns             int     `json:"unknowns"`
		SigmaNM              float64 `json:"sigma_nm"`
		FFTBuildSeconds      float64 `json:"fft_build_seconds"`
		FFTSolveSeconds      float64 `json:"fft_solve_seconds"`
		DenseAssembleSeconds float64 `json:"dense_assemble_seconds"`
		DenseSolveSeconds    float64 `json:"dense_solve_seconds"`
		Speedup              float64 `json:"speedup_end_to_end"`
		RelDev               float64 `json:"rel_dev"`
		DenseWinner          string  `json:"dense_winner"`
	}
	var recs []gridRec

	for _, M := range grids {
		h := L / float64(M)
		// σ small enough that the order-6 kernel model sits well inside
		// FFTModelTol (a-priori error ≈ (2·zmax/3h)^7 with zmax ≈ 3σ).
		sigma := 0.06 * h
		surf := surface.NewKL(surface.NewGaussianCorr(sigma, L/4), L, M).
			SampleTruncated(rng.New(17), 10)
		opt := mom.Options{}
		ts := mom.NewTableSet(p, L, M, h, opt)

		// FFT path: operator build + fft-gmres solve, dense assembly
		// forbidden (the closure failing the test proves the fast path
		// never materializes the matrix).
		t0 := time.Now()
		sys := mom.NewOperatorSystem(surf, p, opt, ts, func() (*cmplxmat.Matrix, error) {
			t.Fatalf("M=%d: FFT path materialized the dense matrix", M)
			return nil, nil
		})
		buildSec := time.Since(t0).Seconds()
		if !sys.FFTAdmitted() {
			t.Fatalf("M=%d: surface not admitted: %v", M, sys.FFTRejection())
		}
		t1 := time.Now()
		solFFT, err := sys.SolveResilient(ctx, mom.SolveOptions{})
		if err != nil {
			t.Fatalf("M=%d: fft solve: %v", M, err)
		}
		fftSolveSec := time.Since(t1).Seconds()
		if solFFT.Report.Winner != mom.StageFFT {
			t.Fatalf("M=%d: winner %q, want fft-gmres", M, solFFT.Report.Winner)
		}

		// Dense chain at the same accuracy (eagerly assembled system has
		// no FFT stage).
		t2 := time.Now()
		dsys, err := mom.AssembleTabulated(surf, p, ts, opt)
		if err != nil {
			t.Fatalf("M=%d: dense assembly: %v", M, err)
		}
		assembleSec := time.Since(t2).Seconds()
		t3 := time.Now()
		solDense, err := dsys.SolveResilient(ctx, mom.SolveOptions{})
		if err != nil {
			t.Fatalf("M=%d: dense solve: %v", M, err)
		}
		denseSolveSec := time.Since(t3).Seconds()

		relDev := math.Abs(solFFT.Pabs-solDense.Pabs) / math.Abs(solDense.Pabs)
		rec := gridRec{
			M: M, Unknowns: 2 * M * M, SigmaNM: sigma * 1e9,
			FFTBuildSeconds: buildSec, FFTSolveSeconds: fftSolveSec,
			DenseAssembleSeconds: assembleSec, DenseSolveSeconds: denseSolveSec,
			Speedup: (assembleSec + denseSolveSec) / (buildSec + fftSolveSec),
			RelDev:  relDev, DenseWinner: solDense.Report.Winner,
		}
		recs = append(recs, rec)
		t.Logf("M=%d: fft %.3fs+%.3fs vs dense %.3fs+%.3fs (%.1fx), rel dev %.2g",
			M, buildSec, fftSolveSec, assembleSec, denseSolveSec, rec.Speedup, relDev)

		if relDev > 1e-6 {
			t.Fatalf("M=%d: FFT deviates from dense by %g (> 1e-6)", M, relDev)
		}
		// Lenient floor for noisy CI runners; the committed BENCH_mom.json
		// records the real measurement.
		if M >= 40 && rec.Speedup < 2 {
			t.Fatalf("M=%d: FFT path not faster: %.2fx", M, rec.Speedup)
		}
	}

	doc := map[string]any{
		"freq_ghz": f / units.GHz,
		"patch_um": L * 1e6,
		"cpus":     runtime.NumCPU(),
		"grids":    recs,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
