// Package roughsim is a Go implementation of the surface-roughness loss
// simulation methodology of Q. Chen and N. Wong, "New Simulation
// Methodology of 3D Surface Roughness Loss for Interconnects Modeling",
// DATE 2009 — scalar wave modeling (SWM) of the extra conductor loss
// caused by surface roughness, solved by a method-of-moments
// discretization of the doubly-periodic two-medium integral equations,
// with spectral stochastic collocation (SSCM) replacing Monte-Carlo over
// random surface realizations.
//
// This package is the public facade: it wraps the internal engine
// (internal/core and friends) behind a small, stable API. The typical
// flow:
//
//	stack := roughsim.CopperSiO2()
//	spec := roughsim.SurfaceSpec{Corr: roughsim.GaussianCF, Sigma: 1e-6, Eta: 1e-6}
//	sim, err := roughsim.NewSimulation(stack, spec, roughsim.Accuracy{})
//	k, err := sim.MeanLossFactor(5e9) // E[Pr/Ps] at 5 GHz via SSCM
//
// Baselines (SPM2, the hemispherical boss model and the Morgan/
// Hammerstad empirical formula) are exposed for the same stack so the
// validity comparisons of the paper can be reproduced against any
// configuration.
package roughsim

import (
	"context"
	"fmt"
	"math"

	"roughsim/internal/core"
	"roughsim/internal/hbm"
	"roughsim/internal/mom"
	"roughsim/internal/montecarlo"
	"roughsim/internal/resilience"
	"roughsim/internal/spm2"
	"roughsim/internal/sscm"
	"roughsim/internal/surface"
	"roughsim/internal/telemetry"
	"roughsim/internal/units"
)

// Stack is the two-medium material description.
type Stack struct {
	EpsR float64 `json:"eps_r"` // dielectric relative permittivity
	Rho  float64 `json:"rho"`   // conductor resistivity (Ω·m)
}

// CopperSiO2 returns the paper's stack: copper (1.67 μΩ·cm) under SiO₂
// (εr = 3.7).
func CopperSiO2() Stack { return Stack{EpsR: 3.7, Rho: units.CopperResistivity} }

// SkinDepth returns δ(f) for the stack's conductor.
func (s Stack) SkinDepth(f float64) float64 { return units.SkinDepth(s.Rho, f, units.Mu0) }

func (s Stack) material() core.Material { return core.Material{EpsR: s.EpsR, Rho: s.Rho} }

// CFKind selects a correlation-function family.
type CFKind int

const (
	// GaussianCF is C(d) = σ²·exp(−d²/η²) (the paper's primary CF).
	GaussianCF CFKind = iota
	// ExponentialCF is C(d) = σ²·exp(−d/η).
	ExponentialCF
	// MeasuredCF is the extracted CF (12): σ²·exp{−(d/η)·[1−exp(−d/Eta2)]}.
	MeasuredCF
)

// SurfaceSpec describes the random rough surface process.
type SurfaceSpec struct {
	Corr  CFKind  `json:"cf"`
	Sigma float64 `json:"sigma"`          // RMS height (m)
	Eta   float64 `json:"eta"`            // correlation length η (η₁ for MeasuredCF; ηx if EtaY set)
	Eta2  float64 `json:"eta2,omitempty"` // second correlation length (MeasuredCF only)
	// EtaY, when positive, selects an anisotropic (elliptical Gaussian)
	// process with correlation lengths Eta along x and EtaY along y —
	// e.g. rolled copper foils. Only valid with GaussianCF.
	EtaY float64 `json:"eta_y,omitempty"`
}

func (sp SurfaceSpec) corr() (surface.Corr, error) {
	if sp.EtaY > 0 && sp.Corr != GaussianCF {
		return nil, fmt.Errorf("roughsim: anisotropy (EtaY) is only supported with GaussianCF")
	}
	// Guard before the surface constructors, which panic on bad inputs.
	if !(sp.Sigma > 0) || !(sp.Eta > 0) {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "roughsim.NewSimulation",
			"surface process needs Sigma > 0 and Eta > 0 (got σ=%g, η=%g)", sp.Sigma, sp.Eta)
	}
	switch sp.Corr {
	case GaussianCF:
		return surface.NewGaussianCorr(sp.Sigma, sp.Eta), nil
	case ExponentialCF:
		return surface.NewExpCorr(sp.Sigma, sp.Eta), nil
	case MeasuredCF:
		if sp.Eta2 <= 0 {
			return nil, fmt.Errorf("roughsim: MeasuredCF needs Eta2 > 0")
		}
		return surface.NewMeasuredCorr(sp.Sigma, sp.Eta, sp.Eta2), nil
	default:
		return nil, fmt.Errorf("roughsim: unknown CF kind %d", sp.Corr)
	}
}

// Accuracy tunes the discretization; zero values select defaults that
// reproduce the paper's qualitative results in seconds per frequency.
type Accuracy struct {
	// GridPerSide is the M×M patch grid (default 16; the paper's
	// Δ = η/8 with L = 5η corresponds to 40).
	GridPerSide int `json:"grid,omitempty"`
	// PatchOverEta is L/η (default 5, the paper's choice).
	PatchOverEta float64 `json:"patch_over_eta,omitempty"`
	// StochasticDim is the KL truncation d (default 16, per Table I).
	StochasticDim int `json:"dim,omitempty"`
	// Workers bounds parallelism (default: all CPUs). Workers is an
	// execution detail: it never enters cache keys or result content.
	Workers int `json:"-"`
}

func (a Accuracy) withDefaults() Accuracy {
	if a.GridPerSide <= 0 {
		a.GridPerSide = 16
	}
	if a.PatchOverEta <= 0 {
		a.PatchOverEta = 5
	}
	if a.StochasticDim <= 0 {
		a.StochasticDim = 16
	}
	return a
}

// Simulation is a configured SWM solver over a random surface process.
type Simulation struct {
	stack   Stack
	spec    SurfaceSpec
	corr    surface.Corr
	acc     Accuracy
	solver  *core.Solver
	kl      *surface.KL
	dim     int
	metrics *telemetry.Registry
}

// WithMetrics threads a telemetry registry through the simulation: the
// underlying solver publishes solve.* metrics and every SSCM /
// Monte-Carlo run publishes its driver metrics there. Call it before
// the first solve; it returns the receiver for chaining.
func (s *Simulation) WithMetrics(r *telemetry.Registry) *Simulation {
	s.metrics = r
	s.solver.Metrics = r
	s.solver.TableCache().SetMetrics(r)
	return s
}

// NewSimulation validates the configuration and builds the solver with
// per-frequency Green's-function tabulation enabled.
func NewSimulation(stack Stack, spec SurfaceSpec, acc Accuracy) (*Simulation, error) {
	c, err := spec.corr()
	if err != nil {
		return nil, err
	}
	acc = acc.withDefaults()
	// Anisotropic patches must span the larger correlation length.
	etaMax := spec.Eta
	if spec.EtaY > etaMax {
		etaMax = spec.EtaY
	}
	L := acc.PatchOverEta * etaMax
	solver, err := core.NewSolverTabulated(stack.material(), L, acc.GridPerSide,
		14*spec.Sigma, mom.Options{Workers: acc.Workers})
	if err != nil {
		return nil, err
	}
	var kl *surface.KL
	if spec.EtaY > 0 {
		kl = surface.NewKL2D(surface.NewAnisoGaussianCorr(spec.Sigma, spec.Eta, spec.EtaY), L, acc.GridPerSide)
	} else {
		kl = surface.NewKL(c, L, acc.GridPerSide)
	}
	dim := acc.StochasticDim
	if dim > len(kl.Modes) {
		dim = len(kl.Modes)
	}
	return &Simulation{stack: stack, spec: spec, corr: c, acc: acc, solver: solver, kl: kl, dim: dim}, nil
}

// LossFactor solves one explicit surface realization at frequency f and
// returns K = Pr/Ps.
func (s *Simulation) LossFactor(surf *surface.Surface, f float64) (float64, error) {
	return s.solver.LossFactor(surf, f)
}

// Surface synthesizes the realization for KL coordinates xi (iid
// standard normals; len(xi) ≤ StochasticDim modes are used).
func (s *Simulation) Surface(xi []float64) *surface.Surface { return s.kl.Synthesize(xi) }

// StochasticDim returns the effective KL truncation.
func (s *Simulation) StochasticDim() int { return s.dim }

// CapturedVariance returns the fraction of the surface variance the
// truncated KL expansion represents. Because K−1 is (to leading order)
// quadratic in the surface height, the SSCM mean under-estimates the
// excess loss by roughly this factor; comparisons across differently
// truncated processes should normalize by it.
func (s *Simulation) CapturedVariance() float64 { return s.kl.CapturedVariance(s.dim) }

// MeanLossFactor returns E[Pr/Ps] at f via first-order SSCM (2d+1 solver
// runs, per Table I).
func (s *Simulation) MeanLossFactor(f float64) (float64, error) {
	return s.MeanLossFactorCtx(context.Background(), f)
}

// MeanLossFactorCtx is MeanLossFactor honoring cancellation: a cancelled
// or expired ctx stops the underlying collocation run promptly.
func (s *Simulation) MeanLossFactorCtx(ctx context.Context, f float64) (float64, error) {
	res, err := s.SSCMCtx(ctx, f, 1)
	if err != nil {
		return 0, err
	}
	return res.PCE.Mean(), nil
}

// SweepMeanLossFactor computes E[Pr/Ps] at every frequency of freqs,
// checking ctx between frequencies (and inside each collocation run) so
// a timeout or Ctrl-C stops a long sweep promptly with ctx.Err().
func (s *Simulation) SweepMeanLossFactor(ctx context.Context, freqs []float64) ([]float64, error) {
	out := make([]float64, len(freqs))
	for i, f := range freqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		k, err := s.MeanLossFactorCtx(ctx, f)
		if err != nil {
			return nil, fmt.Errorf("roughsim: sweep at f=%g: %w", f, err)
		}
		out[i] = k
	}
	return out, nil
}

// SSCM builds the order-p polynomial chaos surrogate of K at f.
func (s *Simulation) SSCM(f float64, order int) (*sscm.Result, error) {
	return s.SSCMCtx(context.Background(), f, order)
}

// SSCMCtx is SSCM honoring cancellation.
func (s *Simulation) SSCMCtx(ctx context.Context, f float64, order int) (*sscm.Result, error) {
	eval := func(xi []float64) (float64, error) {
		return s.solver.LossFactorCtx(ctx, s.kl.Synthesize(xi), f)
	}
	return sscm.Run(ctx, s.dim, order, eval, sscm.Options{Workers: s.acc.Workers, Metrics: s.metrics})
}

// MonteCarlo estimates the distribution of K at f by brute force over n
// surface realizations.
func (s *Simulation) MonteCarlo(f float64, n int, seed uint64) (*montecarlo.Result, error) {
	return s.MonteCarloCtx(context.Background(), f, n, seed, 0)
}

// MonteCarloCtx is MonteCarlo honoring cancellation and tolerating up to
// maxFailFrac failed samples: within that budget the returned Result is
// partial, carrying per-cause failure accounting over the samples that
// did solve instead of discarding the run.
func (s *Simulation) MonteCarloCtx(ctx context.Context, f float64, n int, seed uint64, maxFailFrac float64) (*montecarlo.Result, error) {
	eval := func(xi []float64) (float64, error) {
		return s.solver.LossFactorCtx(ctx, s.kl.Synthesize(xi), f)
	}
	return montecarlo.Run(ctx, s.dim, n, eval, montecarlo.Options{
		Workers: s.acc.Workers, Seed: seed, MaxFailFrac: maxFailFrac, Metrics: s.metrics,
	})
}

// SolveStats returns the aggregated resilient-solve accounting (solve
// count, fallback count, per-stage wins and failures) of the underlying
// solver — how often the fallback chain had to go past plain GMRES.
func (s *Simulation) SolveStats() core.SolveStats { return s.solver.Stats() }

// SPM2LossFactor evaluates the second-order small-perturbation baseline
// for the simulation's surface process at f.
func (s *Simulation) SPM2LossFactor(f float64) float64 {
	p := s.stack.material().Params(f)
	sp := spm2.Params{K1: p.K1, K2: p.K2, Beta: p.Beta}
	if s.spec.EtaY > 0 {
		c := surface.NewAnisoGaussianCorr(s.spec.Sigma, s.spec.Eta, s.spec.EtaY)
		etaMin := s.spec.Eta
		if s.spec.EtaY < etaMin {
			etaMin = s.spec.EtaY
		}
		return spm2.LossFactorAniso(sp, c.PSD2D, 40/etaMin, 0, 0)
	}
	return spm2.LossFactorCorr(sp, s.corr, s.corrEta())
}

func (s *Simulation) corrEta() float64 {
	// Patch period = PatchOverEta·η at construction.
	return s.kl.L / s.acc.PatchOverEta
}

// EmpiricalLossFactor evaluates the Morgan/Hammerstad formula (1) for
// the process σ at f. Out-of-domain inputs (f ≤ 0) yield NaN.
func (s *Simulation) EmpiricalLossFactor(f float64) float64 {
	k, err := core.Empirical(s.corr.Sigma(), s.stack.SkinDepth(f))
	if err != nil {
		return math.NaN()
	}
	return k
}

// HBMLossFactor evaluates the hemispherical-boss baseline for bosses of
// radius a on tiles of area tile at f (exposed at package level too).
func (s Stack) HBMLossFactor(f, a, tile float64) float64 {
	return hbm.Model{Radius: a, Tile: tile, Rho: s.Rho}.LossFactor(f)
}

// EmpiricalLossFactor is the package-level Morgan/Hammerstad formula (1).
// Out-of-domain inputs (skinDepth ≤ 0) yield NaN.
func EmpiricalLossFactor(sigma, skinDepth float64) float64 {
	k, err := core.Empirical(sigma, skinDepth)
	if err != nil {
		return math.NaN()
	}
	return k
}
