package roughsim

import (
	"strings"
	"testing"
)

func gridCampaign() CampaignConfig {
	return CampaignConfig{
		Grid: CampaignGrid{
			Sigmas: Axis{Values: []float64{0.2e-6, 0.4e-6}},
			Etas:   Axis{Min: 1e-6, Max: 2e-6, Step: 1e-6},
		},
		Band: &BandSpec{FMinHz: 1e9, FMaxHz: 9e9, Points: 4},
	}
}

func TestCampaignExpansionDeterministic(t *testing.T) {
	cfg := gridCampaign()
	a, err := cfg.ExpandCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 {
		t.Fatalf("2x2 grid expanded to %d cells", len(a))
	}
	b, _ := cfg.ExpandCells()
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("expansion is not deterministic at cell %d", i)
		}
	}
	// Fixed row-major order: σ varies slowest of the two set axes.
	if a[0].Spec.Sigma != 0.2e-6 || a[0].Spec.Eta != 1e-6 {
		t.Fatalf("cell 0 = %+v, want σ=0.2μm η=1μm", a[0].Spec)
	}
	if a[1].Spec.Eta != 2e-6 {
		t.Fatalf("cell 1 = %+v, want η=2μm", a[1].Spec)
	}
	if len(a[0].Freqs) != 4 || a[0].Freqs[0] != 1e9 || a[0].Freqs[3] != 9e9 {
		t.Fatalf("band materialized as %v", a[0].Freqs)
	}
}

func TestCampaignIDSensitivity(t *testing.T) {
	base, err := gridCampaign().ID()
	if err != nil {
		t.Fatal(err)
	}
	same, _ := gridCampaign().ID()
	if base != same {
		t.Fatal("identical campaigns must share an ID")
	}
	mutations := map[string]func(*CampaignConfig){
		"sigma value": func(c *CampaignConfig) { c.Grid.Sigmas.Values[0] = 0.3e-6 },
		"band points": func(c *CampaignConfig) { c.Band.Points = 5 },
		"accuracy":    func(c *CampaignConfig) { c.Acc.GridPerSide = 8 },
		"fail policy": func(c *CampaignConfig) { c.MaxFailFrac = 0.5 },
		"extra cell": func(c *CampaignConfig) {
			c.Cells = append(c.Cells, SurfaceSpec{Corr: GaussianCF, Sigma: 0.4e-6, Eta: 1e-6})
		},
	}
	for name, mutate := range mutations {
		cfg := gridCampaign()
		mutate(&cfg)
		id, err := cfg.ID()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if id == base {
			t.Errorf("%s: mutation did not change the campaign ID", name)
		}
	}
}

func TestCampaignExplicitCellsAndFlat(t *testing.T) {
	cfg := CampaignConfig{
		Cells: []SurfaceSpec{
			{Corr: GaussianCF, Sigma: 0, Eta: 1e-6}, // flat reference
			{Corr: GaussianCF, Sigma: 0.4e-6, Eta: 1e-6},
		},
		Freqs: []float64{1e9, 5e9},
	}
	cells, err := cfg.ExpandCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded to %d cells, want 2", len(cells))
	}
	if cells[0].Spec.Sigma != 0 {
		t.Fatal("flat cell lost")
	}
	if cells[0].Stack != CopperSiO2() {
		t.Fatalf("default stack not applied: %+v", cells[0].Stack)
	}
}

// Validation errors must name the offending request field — the API
// surfaces them verbatim as 400 bodies.
func TestCampaignValidationNamesField(t *testing.T) {
	cases := []struct {
		name  string
		cfg   CampaignConfig
		field string
	}{
		{"reversed band", CampaignConfig{
			Cells: []SurfaceSpec{{Corr: GaussianCF, Sigma: 0.4e-6, Eta: 1e-6}},
			Band:  &BandSpec{FMinHz: 9e9, FMaxHz: 1e9},
		}, "fmax_hz (1e+09) < fmin_hz (9e+09)"},
		{"non-positive step", CampaignConfig{
			Grid: CampaignGrid{
				Sigmas: Axis{Min: 1e-7, Max: 5e-7},
				Etas:   Axis{Values: []float64{1e-6}},
			},
			Freqs: []float64{1e9},
		}, "grid.sigmas: grid step must be > 0"},
		{"values and range", CampaignConfig{
			Grid: CampaignGrid{
				Sigmas: Axis{Values: []float64{1e-7}, Step: 1e-7},
				Etas:   Axis{Values: []float64{1e-6}},
			},
			Freqs: []float64{1e9},
		}, "grid.sigmas: give either values or min/max/step"},
		{"negative sigma cell", CampaignConfig{
			Cells: []SurfaceSpec{{Corr: GaussianCF, Sigma: -1e-7, Eta: 1e-6}},
			Freqs: []float64{1e9},
		}, "cells[0].sigma"},
		{"measured without eta2", CampaignConfig{
			Cells: []SurfaceSpec{{Corr: MeasuredCF, Sigma: 1e-7, Eta: 1e-6}},
			Freqs: []float64{1e9},
		}, "cells[0].eta2"},
		{"aniso non-gaussian", CampaignConfig{
			Cells: []SurfaceSpec{{Corr: ExponentialCF, Sigma: 1e-7, Eta: 1e-6, EtaY: 2e-6}},
			Freqs: []float64{1e9},
		}, "cells[0].eta_y"},
		{"no cells", CampaignConfig{Freqs: []float64{1e9}}, "grid: campaign has no cells"},
		{"both freq sources", CampaignConfig{
			Cells: []SurfaceSpec{{Corr: GaussianCF, Sigma: 1e-7, Eta: 1e-6}},
			Freqs: []float64{1e9},
			Band:  &BandSpec{FMinHz: 1e9, FMaxHz: 2e9},
		}, "freqs_hz: give either freqs_hz or band"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatal("want a validation error")
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("error %q does not name %q", err, tc.field)
			}
		})
	}
}

func TestCampaignGridCFKinds(t *testing.T) {
	cfg := CampaignConfig{
		Grid: CampaignGrid{
			Sigmas: Axis{Values: []float64{0.4e-6}},
			Etas:   Axis{Values: []float64{1e-6}},
			Eta2s:  Axis{Values: []float64{0.5e-6}},
			EtaYs:  Axis{Values: []float64{2e-6}},
			CFs:    []CFKind{GaussianCF, ExponentialCF, MeasuredCF},
		},
		Freqs: []float64{1e9},
	}
	cells, err := cfg.ExpandCells()
	if err != nil {
		t.Fatal(err)
	}
	// gaussian crosses ηy (1 value), exp ignores η₂ and ηy, measured
	// crosses η₂ (1 value): 3 cells total.
	if len(cells) != 3 {
		t.Fatalf("expanded to %d cells, want 3", len(cells))
	}
	if cells[0].Spec.EtaY != 2e-6 || cells[0].Spec.Eta2 != 0 {
		t.Fatalf("gaussian cell = %+v", cells[0].Spec)
	}
	if cells[1].Spec.EtaY != 0 || cells[1].Spec.Eta2 != 0 {
		t.Fatalf("exp cell = %+v", cells[1].Spec)
	}
	if cells[2].Spec.Eta2 != 0.5e-6 || cells[2].Spec.EtaY != 0 {
		t.Fatalf("measured cell = %+v", cells[2].Spec)
	}
}
