package roughsim

import (
	"context"
	"encoding/json"
	"fmt"

	"roughsim/internal/rescache"
	"roughsim/internal/resilience"
)

// This file defines the machine-readable sweep schema shared by
// `roughsim -json` and the roughsimd HTTP API: both emit the same
// SweepResult records, so CLI and service outputs are directly
// diffable. It also defines the canonical content address of one K(f)
// record — the cache key of internal/rescache — built from IEEE-754
// float bits (never decimal formatting), so keys are bit-exact and
// platform-stable.

// cfNames is the wire vocabulary of CFKind (matching the CLI's -cf
// flag values).
var cfNames = map[CFKind]string{
	GaussianCF:    "gaussian",
	ExponentialCF: "exp",
	MeasuredCF:    "measured",
}

// ParseCFKind maps a wire name ("gaussian", "exp", "measured") to its
// CFKind.
func ParseCFKind(s string) (CFKind, error) {
	for k, name := range cfNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("roughsim: unknown correlation function %q", s)
}

// String returns the wire name of the kind.
func (k CFKind) String() string {
	if s, ok := cfNames[k]; ok {
		return s
	}
	return fmt.Sprintf("cf(%d)", int(k))
}

// MarshalJSON encodes the kind as its wire name.
func (k CFKind) MarshalJSON() ([]byte, error) {
	s, ok := cfNames[k]
	if !ok {
		return nil, fmt.Errorf("roughsim: cannot marshal CF kind %d", int(k))
	}
	return json.Marshal(s)
}

// UnmarshalJSON accepts a wire name.
func (k *CFKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseCFKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// SweepConfig is the full description of a K(f) sweep: material stack,
// surface process, discretization accuracy and the frequency list. It
// is the request body of the roughsimd API and the config echoed into
// every SweepResult.
type SweepConfig struct {
	Stack Stack       `json:"stack"`
	Spec  SurfaceSpec `json:"surface"`
	Acc   Accuracy    `json:"accuracy"`
	Freqs []float64   `json:"freqs_hz"`
}

// WithDefaults fills the zero-valued parts: a zero Stack becomes the
// paper's copper/SiO₂ stack, and the Accuracy defaults match
// NewSimulation's.
func (c SweepConfig) WithDefaults() SweepConfig {
	if c.Stack == (Stack{}) {
		c.Stack = CopperSiO2()
	}
	c.Acc = c.Acc.withDefaults()
	return c
}

// Validate checks the parts NewSimulation does not: the frequency list
// must be non-empty, finite and positive.
func (c SweepConfig) Validate() error {
	if len(c.Freqs) == 0 {
		return resilience.Errorf(resilience.KindInvalidInput, "roughsim.SweepConfig",
			"sweep needs at least one frequency")
	}
	for i, f := range c.Freqs {
		if !(f > 0) || f != f || f > 1e15 {
			return resilience.Errorf(resilience.KindInvalidInput, "roughsim.SweepConfig",
				"frequency %d out of domain: %g Hz", i, f)
		}
	}
	return nil
}

// keySchemaVersion tags the canonical encoding; bump it whenever the
// meaning or order of the encoded fields changes, so stale disk-tier
// entries can never be misread as current results.
const keySchemaVersion = 1

// KeyAt returns the content address of the K(f) record this config
// produces at frequency f: the SHA-256 of the canonical binary encoding
// of every result-determining parameter (floats as IEEE-754 bits — see
// rescache.Enc) plus the frequency. Workers is deliberately excluded
// (an execution detail), and defaults are applied first so an explicit
// grid of 16 and an elided one share a key.
func (c SweepConfig) KeyAt(f float64) rescache.Key {
	c = c.WithDefaults()
	e := rescache.NewEnc()
	e.Uint64(keySchemaVersion)
	e.Float64(c.Stack.EpsR).Float64(c.Stack.Rho)
	e.Int(int(c.Spec.Corr))
	e.Float64(c.Spec.Sigma).Float64(c.Spec.Eta).Float64(c.Spec.Eta2).Float64(c.Spec.EtaY)
	e.Int(c.Acc.GridPerSide).Float64(c.Acc.PatchOverEta).Int(c.Acc.StochasticDim)
	e.Float64(f)
	return e.Sum()
}

// SweepPoint is one frequency's record: the SWM mean loss factor next
// to the analytic baselines, in SI units.
type SweepPoint struct {
	FreqHz     float64 `json:"freq_hz"`
	SkinDepthM float64 `json:"skin_depth_m"`
	KSWM       float64 `json:"k_swm"`
	KSPM2      float64 `json:"k_spm2"`
	KEmpirical float64 `json:"k_empirical"`
}

// SweepResult is the machine-readable outcome of a sweep — the record
// schema shared by `roughsim -json` and the roughsimd result endpoint.
type SweepResult struct {
	Config SweepConfig  `json:"config"`
	Points []SweepPoint `json:"points"`
}

// PointAt computes one frequency's SweepPoint: E[K] via first-order
// SSCM plus the SPM2 and empirical baselines.
func (s *Simulation) PointAt(ctx context.Context, f float64) (SweepPoint, error) {
	k, err := s.MeanLossFactorCtx(ctx, f)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{
		FreqHz:     f,
		SkinDepthM: s.stack.SkinDepth(f),
		KSWM:       k,
		KSPM2:      s.SPM2LossFactor(f),
		KEmpirical: s.EmpiricalLossFactor(f),
	}, nil
}

// RunSweep executes the configured sweep directly (no cache, no queue
// — the CLI path), checking ctx between frequencies.
func RunSweep(ctx context.Context, cfg SweepConfig) (*SweepResult, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim, err := NewSimulation(cfg.Stack, cfg.Spec, cfg.Acc)
	if err != nil {
		return nil, err
	}
	return sim.RunSweep(ctx, cfg.Freqs)
}

// RunSweep computes the SweepResult over freqs on an already-built
// simulation, checking ctx between frequencies.
func (s *Simulation) RunSweep(ctx context.Context, freqs []float64) (*SweepResult, error) {
	cfg := SweepConfig{Stack: s.stack, Spec: s.spec, Acc: s.acc, Freqs: freqs}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &SweepResult{Config: cfg, Points: make([]SweepPoint, 0, len(freqs))}
	for _, f := range freqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pt, err := s.PointAt(ctx, f)
		if err != nil {
			return nil, fmt.Errorf("roughsim: sweep at f=%g: %w", f, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}
