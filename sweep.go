package roughsim

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"roughsim/internal/rescache"
	"roughsim/internal/resilience"
)

// This file defines the machine-readable sweep schema shared by
// `roughsim -json` and the roughsimd HTTP API: both emit the same
// SweepResult records, so CLI and service outputs are directly
// diffable. It also defines the canonical content address of one K(f)
// record — the cache key of internal/rescache — built from IEEE-754
// float bits (never decimal formatting), so keys are bit-exact and
// platform-stable.

// cfNames is the wire vocabulary of CFKind (matching the CLI's -cf
// flag values).
var cfNames = map[CFKind]string{
	GaussianCF:    "gaussian",
	ExponentialCF: "exp",
	MeasuredCF:    "measured",
}

// ParseCFKind maps a wire name ("gaussian", "exp", "measured") to its
// CFKind.
func ParseCFKind(s string) (CFKind, error) {
	for k, name := range cfNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("roughsim: unknown correlation function %q", s)
}

// String returns the wire name of the kind.
func (k CFKind) String() string {
	if s, ok := cfNames[k]; ok {
		return s
	}
	return fmt.Sprintf("cf(%d)", int(k))
}

// MarshalJSON encodes the kind as its wire name.
func (k CFKind) MarshalJSON() ([]byte, error) {
	s, ok := cfNames[k]
	if !ok {
		return nil, fmt.Errorf("roughsim: cannot marshal CF kind %d", int(k))
	}
	return json.Marshal(s)
}

// UnmarshalJSON accepts a wire name. Decode errors name the request
// field ("cf") so an API 400 points at the offending input.
func (k *CFKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf(`field "cf": want a correlation-function name string: %w`, err)
	}
	v, err := ParseCFKind(s)
	if err != nil {
		return fmt.Errorf(`field "cf": unknown correlation function %q (want "gaussian", "exp" or "measured")`, s)
	}
	*k = v
	return nil
}

// SweepConfig is the full description of a K(f) sweep: material stack,
// surface process, discretization accuracy and the frequency list. It
// is the request body of the roughsimd API and the config echoed into
// every SweepResult.
type SweepConfig struct {
	Stack Stack       `json:"stack"`
	Spec  SurfaceSpec `json:"surface"`
	Acc   Accuracy    `json:"accuracy"`
	Freqs []float64   `json:"freqs_hz"`
}

// WithDefaults fills the zero-valued parts: a zero Stack becomes the
// paper's copper/SiO₂ stack, and the Accuracy defaults match
// NewSimulation's.
func (c SweepConfig) WithDefaults() SweepConfig {
	if c.Stack == (Stack{}) {
		c.Stack = CopperSiO2()
	}
	c.Acc = c.Acc.withDefaults()
	return c
}

// Validate checks the parts NewSimulation does not: the frequency list
// must be non-empty, finite and positive.
func (c SweepConfig) Validate() error {
	if len(c.Freqs) == 0 {
		return resilience.Errorf(resilience.KindInvalidInput, "roughsim.SweepConfig",
			"sweep needs at least one frequency")
	}
	for i, f := range c.Freqs {
		if !(f > 0) || f != f || f > 1e15 {
			return resilience.Errorf(resilience.KindInvalidInput, "roughsim.SweepConfig",
				"frequency %d out of domain: %g Hz", i, f)
		}
	}
	return nil
}

// keySchemaVersion tags the canonical encoding; bump it whenever the
// meaning or order of the encoded fields changes, so stale disk-tier
// entries can never be misread as current results.
const keySchemaVersion = 1

// KeyAt returns the content address of the K(f) record this config
// produces at frequency f: the SHA-256 of the canonical binary encoding
// of every result-determining parameter (floats as IEEE-754 bits — see
// rescache.Enc) plus the frequency. Workers is deliberately excluded
// (an execution detail), and defaults are applied first so an explicit
// grid of 16 and an elided one share a key.
func (c SweepConfig) KeyAt(f float64) rescache.Key {
	e := c.WithDefaults().encodeBase()
	e.Float64(f)
	return e.Sum()
}

// Key returns the content address of the whole sweep — the canonical
// encoding of the frequency-independent config plus the full frequency
// list. It single-flights identical concurrent sweep jobs in roughsimd.
func (c SweepConfig) Key() rescache.Key {
	c = c.WithDefaults()
	e := c.encodeBase()
	e.Float64s(c.Freqs)
	return e.Sum()
}

// ckptTag domain-separates checkpoint keys from whole-sweep keys: a
// node-column checkpoint must never be confused with a finished sweep
// result, even for hypothetical colliding encodings.
const ckptTag = 0x636b7074 // "ckpt"

// CheckpointKey returns the content address of one per-node checkpoint
// column of this sweep: the whole-sweep encoding (config + full
// frequency list) plus the collocation node index. Pass
// sweepengine.FlatRefNode for the interpolated path's flat-reference
// vector. Any change to the config or the frequency list changes every
// checkpoint key, so a resumed sweep can only ever load checkpoints
// from an identical request.
func (c SweepConfig) CheckpointKey(node int) rescache.Key {
	c = c.WithDefaults()
	e := c.encodeBase()
	e.Float64s(c.Freqs)
	e.Uint64(ckptTag)
	e.Int(node)
	return e.Sum()
}

// encodeBase canonically encodes every frequency-independent,
// result-determining field (see KeyAt).
func (c SweepConfig) encodeBase() *rescache.Enc {
	e := rescache.NewEnc()
	e.Uint64(keySchemaVersion)
	e.Float64(c.Stack.EpsR).Float64(c.Stack.Rho)
	e.Int(int(c.Spec.Corr))
	e.Float64(c.Spec.Sigma).Float64(c.Spec.Eta).Float64(c.Spec.Eta2).Float64(c.Spec.EtaY)
	e.Int(c.Acc.GridPerSide).Float64(c.Acc.PatchOverEta).Int(c.Acc.StochasticDim)
	return e
}

// SweepPoint is one frequency's record: the SWM mean loss factor next
// to the analytic baselines, in SI units. Non-finite fields (a NaN
// KEmpirical from an out-of-domain formula, a poisoned K from a partial
// Monte-Carlo result) marshal as JSON null instead of failing the whole
// payload — encoding/json rejects NaN/±Inf outright, which would turn
// one bad point into an undeliverable /v1/sweeps result.
type SweepPoint struct {
	FreqHz     float64 `json:"freq_hz"`
	SkinDepthM float64 `json:"skin_depth_m"`
	KSWM       float64 `json:"k_swm"`
	KSPM2      float64 `json:"k_spm2"`
	KEmpirical float64 `json:"k_empirical"`
}

// jsonFloat marshals finite values exactly like float64 (byte-identical
// formatting) and non-finite values as null; null unmarshals to NaN.
type jsonFloat float64

func (v jsonFloat) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(f)
}

func (v *jsonFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*v = jsonFloat(math.NaN())
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*v = jsonFloat(f)
	return nil
}

// sweepPointWire is the JSON shape of SweepPoint with non-finite-safe
// fields. Field order (hence output bytes for finite values) matches
// the plain struct exactly.
type sweepPointWire struct {
	FreqHz     jsonFloat `json:"freq_hz"`
	SkinDepthM jsonFloat `json:"skin_depth_m"`
	KSWM       jsonFloat `json:"k_swm"`
	KSPM2      jsonFloat `json:"k_spm2"`
	KEmpirical jsonFloat `json:"k_empirical"`
}

// MarshalJSON encodes the point with non-finite fields as null.
func (p SweepPoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(sweepPointWire{
		FreqHz:     jsonFloat(p.FreqHz),
		SkinDepthM: jsonFloat(p.SkinDepthM),
		KSWM:       jsonFloat(p.KSWM),
		KSPM2:      jsonFloat(p.KSPM2),
		KEmpirical: jsonFloat(p.KEmpirical),
	})
}

// UnmarshalJSON accepts both plain numbers and the null encoding of
// failed fields (which decode as NaN).
func (p *SweepPoint) UnmarshalJSON(b []byte) error {
	var w sweepPointWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*p = SweepPoint{
		FreqHz:     float64(w.FreqHz),
		SkinDepthM: float64(w.SkinDepthM),
		KSWM:       float64(w.KSWM),
		KSPM2:      float64(w.KSPM2),
		KEmpirical: float64(w.KEmpirical),
	}
	return nil
}

// SweepResult is the machine-readable outcome of a sweep — the record
// schema shared by `roughsim -json` and the roughsimd result endpoint.
type SweepResult struct {
	Config SweepConfig  `json:"config"`
	Points []SweepPoint `json:"points"`
}

// PointAt computes one frequency's SweepPoint: E[K] via first-order
// SSCM plus the SPM2 and empirical baselines.
func (s *Simulation) PointAt(ctx context.Context, f float64) (SweepPoint, error) {
	k, err := s.MeanLossFactorCtx(ctx, f)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{
		FreqHz:     f,
		SkinDepthM: s.stack.SkinDepth(f),
		KSWM:       k,
		KSPM2:      s.SPM2LossFactor(f),
		KEmpirical: s.EmpiricalLossFactor(f),
	}, nil
}

// RunSweep executes the configured sweep directly (no cache, no queue
// — the CLI path) through the batched sweep engine, which reuses
// surfaces and tables across frequencies and interpolates matrices
// over broadband sweeps (see internal/sweepengine).
func RunSweep(ctx context.Context, cfg SweepConfig) (*SweepResult, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim, err := NewSimulation(cfg.Stack, cfg.Spec, cfg.Acc)
	if err != nil {
		return nil, err
	}
	return sim.RunSweepBatched(ctx, cfg.Freqs)
}

// RunSweep computes the SweepResult over freqs one frequency at a time
// — the point-at-a-time baseline the batched engine is benchmarked
// against — checking ctx between frequencies. Prefer RunSweepBatched.
func (s *Simulation) RunSweep(ctx context.Context, freqs []float64) (*SweepResult, error) {
	cfg := SweepConfig{Stack: s.stack, Spec: s.spec, Acc: s.acc, Freqs: freqs}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &SweepResult{Config: cfg, Points: make([]SweepPoint, 0, len(freqs))}
	for _, f := range freqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pt, err := s.PointAt(ctx, f)
		if err != nil {
			return nil, fmt.Errorf("roughsim: sweep at f=%g: %w", f, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}
