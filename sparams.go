package roughsim

import (
	"context"
	"encoding/json"
	"math"

	"roughsim/internal/rescache"
	"roughsim/internal/resilience"
	"roughsim/internal/sparams"
	"roughsim/internal/txline"
)

// This file is the public face of internal/sparams: a geometry + band
// request that becomes a validated two-port Touchstone artifact, with
// the roughness profile K(f) resolved through the same physics
// configuration (Stack/SurfaceSpec/Accuracy) as sweeps and surrogates.
// SParamConfig is the request body of POST /v1/sparams and the input of
// `roughsim -sparams`.

// LineGeometry is the microstrip cross-section of an S-parameter
// request. The conductor resistivity comes from the Stack (it is a
// material property, not a geometry one).
type LineGeometry struct {
	WidthM   float64 `json:"width_m"`
	HeightM  float64 `json:"height_m"`
	EpsR     float64 `json:"eps_r"`
	TanDelta float64 `json:"tan_delta"`
}

// SParamConfig fully describes one S-parameter artifact: the physical
// roughness configuration (identical to a sweep's), the line geometry,
// and the evaluation band.
type SParamConfig struct {
	Stack Stack       `json:"stack"`
	Spec  SurfaceSpec `json:"surface"`
	Acc   Accuracy    `json:"accuracy"`

	Line    LineGeometry `json:"line"`
	LengthM float64      `json:"length_m"`
	// Z0 is the reference impedance (default 50 Ω).
	Z0 float64 `json:"z0,omitempty"`
	// FMinHz/FMaxHz/Points define the linear evaluation grid (Points
	// defaults to 64, minimum 4).
	FMinHz float64 `json:"fmin_hz"`
	FMaxHz float64 `json:"fmax_hz"`
	Points int     `json:"points,omitempty"`
	// PassivityTol is the slack over the unit singular-value bound of
	// the passivity gate (default 1e-9). Like a surrogate's Tol it
	// shapes the verdict, not the artifact content, so it stays out of
	// the content address.
	PassivityTol float64 `json:"passivity_tol,omitempty"`
}

// WithDefaults fills the zero-valued parts (mirroring
// SweepConfig.WithDefaults plus the band defaults).
func (c SParamConfig) WithDefaults() SParamConfig {
	if c.Stack == (Stack{}) {
		c.Stack = CopperSiO2()
	}
	c.Acc = c.Acc.withDefaults()
	if c.Z0 == 0 {
		c.Z0 = 50
	}
	if c.Points == 0 {
		c.Points = 64
	}
	return c
}

// Validate checks every request field, naming the offending JSON field
// in a typed invalid-input error (the API tier maps it to a 400).
func (c SParamConfig) Validate() error {
	const op = "roughsim.SParamConfig"
	bad := func(field string, v float64) error {
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"field %q must be positive and finite (got %g)", field, v)
	}
	if !(c.FMinHz > 0) || math.IsInf(c.FMinHz, 0) {
		return bad("fmin_hz", c.FMinHz)
	}
	if !(c.FMaxHz > c.FMinHz) || c.FMaxHz > 1e15 {
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"field \"fmax_hz\" must satisfy fmin_hz < fmax_hz ≤ 1e15 (got %g)", c.FMaxHz)
	}
	if c.Points < 4 {
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"field \"points\" must be ≥ 4 (got %d)", c.Points)
	}
	if c.Points > 100000 {
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"field \"points\" must be ≤ 100000 (got %d)", c.Points)
	}
	// The full grid + geometry checks (including the phase-resolution
	// precheck that keeps the causality gate's unwrap unambiguous) live
	// on the subsystem Request; its errors already name request fields.
	return c.Request().Validate()
}

// Grid returns the linear evaluation grid.
func (c SParamConfig) Grid() []float64 {
	c = c.WithDefaults()
	fs := make([]float64, c.Points)
	step := (c.FMaxHz - c.FMinHz) / float64(c.Points-1)
	for i := range fs {
		fs[i] = c.FMinHz + float64(i)*step
	}
	fs[len(fs)-1] = c.FMaxHz // exact band edge despite float stepping
	return fs
}

// microstrip assembles the txline model: geometry from the request,
// conductor resistivity from the material stack.
func (c SParamConfig) microstrip() txline.Microstrip {
	c = c.WithDefaults()
	return txline.Microstrip{
		Width:    c.Line.WidthM,
		Height:   c.Line.HeightM,
		EpsR:     c.Line.EpsR,
		TanDelta: c.Line.TanDelta,
		Rho:      c.Stack.Rho,
	}
}

// Request maps the config onto the subsystem request (key included).
func (c SParamConfig) Request() sparams.Request {
	c = c.WithDefaults()
	return sparams.Request{
		Key:          c.Key().String(),
		Line:         c.microstrip(),
		LengthM:      c.LengthM,
		Z0:           c.Z0,
		Freqs:        c.Grid(),
		PassivityTol: c.PassivityTol,
	}
}

// KSweep returns the sweep configuration that resolves K(f) on this
// request's grid — the exact-path resolution and the service-limit
// vocabulary both speak SweepConfig.
func (c SParamConfig) KSweep() SweepConfig {
	c = c.WithDefaults()
	return SweepConfig{Stack: c.Stack, Spec: c.Spec, Acc: c.Acc, Freqs: c.Grid()}
}

// SParamArtifact is the validated Touchstone artifact (alias of the
// subsystem type, so CLI and API consumers need only this package).
type SParamArtifact = sparams.Artifact

// sparamsKeyTag domain-separates S-parameter artifact addresses from
// sweep and surrogate keys built over the same physical fields.
const sparamsKeyTag = "sparams"

// Key returns the canonical content address of the artifact this config
// produces: the physical configuration (same canonical encoding as
// sweep keys), the line geometry, and the band. PassivityTol is
// excluded — it decides admission, not artifact content (mirroring a
// surrogate's Tol).
func (c SParamConfig) Key() rescache.Key {
	c = c.WithDefaults()
	base := SweepConfig{Stack: c.Stack, Spec: c.Spec, Acc: c.Acc}
	e := base.encodeBase()
	e.String(sparamsKeyTag)
	e.Float64(c.Line.WidthM).Float64(c.Line.HeightM)
	e.Float64(c.Line.EpsR).Float64(c.Line.TanDelta)
	e.Float64(c.LengthM).Float64(c.Z0)
	e.Float64(c.FMinHz).Float64(c.FMaxHz)
	e.Int(c.Points)
	return e.Sum()
}

// Resolver returns the surrogate as a K(f) resolver for S-parameter
// generation: closed-form evaluation, no solver in the loop. ResolveK
// fails with a typed error if any requested frequency falls outside the
// fitted band.
func (s *Surrogate) Resolver() sparams.Resolver {
	return sparams.ResolverFunc(func(_ context.Context, freqs []float64) (sparams.Resolution, error) {
		ks := make([]float64, len(freqs))
		for i, f := range freqs {
			k, err := s.MeanAt(f)
			if err != nil {
				return sparams.Resolution{}, err
			}
			ks[i] = k
		}
		return sparams.Resolution{K: ks, Source: "surrogate", MaxRelErr: s.MaxRelErr()}, nil
	})
}

// exactResolver resolves K(f) through the full sweep chain (the
// library path; roughsimd substitutes its cached, checkpointed chain).
func exactResolver(cfg SParamConfig) sparams.Resolver {
	return sparams.ResolverFunc(func(ctx context.Context, freqs []float64) (sparams.Resolution, error) {
		res, err := RunSweep(ctx, SweepConfig{Stack: cfg.Stack, Spec: cfg.Spec, Acc: cfg.Acc, Freqs: freqs})
		if err != nil {
			return sparams.Resolution{}, err
		}
		ks := make([]float64, len(res.Points))
		for i, p := range res.Points {
			ks[i] = p.KSWM
		}
		return sparams.Resolution{K: ks, Source: "exact"}, nil
	})
}

// GenerateSParams produces the validated Touchstone artifact for cfg,
// resolving K(f) through the exact sweep chain (no cache, no queue —
// the CLI path). Pass a non-nil Surrogate resolver via
// GenerateSParamsWith to use the fast path instead.
func GenerateSParams(ctx context.Context, cfg SParamConfig) (*sparams.Artifact, error) {
	cfg = cfg.WithDefaults()
	return GenerateSParamsWith(ctx, cfg, exactResolver(cfg))
}

// GenerateSParamsWith produces the artifact with a caller-chosen K(f)
// resolver (e.g. an admitted Surrogate's Resolver()).
func GenerateSParamsWith(ctx context.Context, cfg SParamConfig, res sparams.Resolver) (*sparams.Artifact, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	art, err := sparams.Generate(ctx, cfg.Request(), res, nil)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	art.Config = raw
	return art, nil
}
