package roughsim

import (
	"fmt"
	"math"

	"roughsim/internal/rescache"
	"roughsim/internal/resilience"
)

// This file defines the campaign schema: a parameter study over the
// surface process — a grid (or explicit list) of cells, each one full
// K(f) sweep — expanded deterministically into SweepConfigs and
// content-addressed as a whole, so a campaign's identity is a pure
// function of the work it describes. The roughsimd campaign engine
// (internal/campaign) consumes the expansion; this file owns the wire
// schema, the validation vocabulary (errors name the offending request
// field) and the key.

// Axis is one grid dimension of a campaign: either an explicit value
// list or an inclusive [Min, Max] range walked in Step increments.
// A zero Axis is unset.
type Axis struct {
	Values []float64 `json:"values,omitempty"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
	Step   float64   `json:"step,omitempty"`
}

// maxAxisValues bounds one axis expansion; the cell-count cap is
// enforced separately (and lower) by the service.
const maxAxisValues = 10000

func (a Axis) isSet() bool {
	return len(a.Values) > 0 || a.Min != 0 || a.Max != 0 || a.Step != 0
}

// expand materializes the axis values; field names the axis in errors.
func (a Axis) expand(field string) ([]float64, error) {
	hasRange := a.Min != 0 || a.Max != 0 || a.Step != 0
	if len(a.Values) > 0 {
		if hasRange {
			return nil, campErrf(field, "give either values or min/max/step, not both")
		}
		for i, v := range a.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, campErrf(field, "values[%d] is not finite", i)
			}
		}
		return a.Values, nil
	}
	if !hasRange {
		return nil, nil
	}
	if !(a.Step > 0) {
		return nil, campErrf(field, "grid step must be > 0 (got %g)", a.Step)
	}
	if a.Max < a.Min {
		return nil, campErrf(field, "max %g < min %g", a.Max, a.Min)
	}
	n := int((a.Max-a.Min)/a.Step+1e-9) + 1
	if n > maxAxisValues {
		return nil, campErrf(field, "%d values exceed the %d-per-axis limit", n, maxAxisValues)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a.Min + float64(i)*a.Step
	}
	return out, nil
}

// BandSpec is a frequency band materialized as Points equally spaced
// frequencies over [FMinHz, FMaxHz] (default 8 points).
type BandSpec struct {
	FMinHz float64 `json:"fmin_hz"`
	FMaxHz float64 `json:"fmax_hz"`
	Points int     `json:"points,omitempty"`
}

// CampaignGrid is the cartesian part of a campaign: the surface-process
// axes crossed with the correlation-function kinds. Eta2s applies only
// to MeasuredCF cells and EtaYs only to GaussianCF cells; other kinds
// walk those axes once at their zero value.
type CampaignGrid struct {
	Sigmas Axis     `json:"sigmas"`        // RMS height σ (m); 0 is a flat reference cell
	Etas   Axis     `json:"etas"`          // correlation length η (m)
	Eta2s  Axis     `json:"eta2s"`         // second correlation length (MeasuredCF)
	EtaYs  Axis     `json:"eta_ys"`        // transverse η for anisotropic Gaussian cells
	Rhos   Axis     `json:"rhos"`          // conductor resistivity (Ω·m); default the stack's
	CFs    []CFKind `json:"cfs,omitempty"` // correlation families (default [gaussian])
}

func (g CampaignGrid) isSet() bool {
	return g.Sigmas.isSet() || g.Etas.isSet() || g.Eta2s.isSet() ||
		g.EtaYs.isSet() || g.Rhos.isSet() || len(g.CFs) > 0
}

// CampaignConfig is the request body of POST /v1/campaigns: a batch
// parameter study over (σ, η₁, η₂, ρ, CF kind, anisotropy) at a shared
// frequency band. Cells come from the grid product, an explicit list,
// or both; every cell runs the same Stack (modulo the Rhos axis),
// Accuracy and frequencies.
type CampaignConfig struct {
	Stack Stack        `json:"stack"`
	Acc   Accuracy     `json:"accuracy"`
	Grid  CampaignGrid `json:"grid"`
	// Cells are explicit surface processes appended after the grid
	// expansion (duplicates are folded by the planner, not rejected).
	Cells []SurfaceSpec `json:"cells,omitempty"`
	// Freqs or Band selects the shared frequency list (exactly one).
	Freqs []float64 `json:"freqs_hz,omitempty"`
	Band  *BandSpec `json:"band,omitempty"`
	// MaxFailFrac tolerates up to this fraction of failed cells before
	// the whole campaign is marked failed (0 = any failure fails it).
	MaxFailFrac float64 `json:"max_fail_frac,omitempty"`
}

// campErrf builds a validation error that names the offending request
// field — the campaign/sweep decode paths surface it verbatim as a 400.
func campErrf(field, format string, args ...any) error {
	return resilience.Errorf(resilience.KindInvalidInput, "roughsim.CampaignConfig",
		"%s: %s", field, fmt.Sprintf(format, args...))
}

// WithDefaults fills the zero-valued parts: the paper's stack, the
// simulation accuracy defaults, gaussian as the only CF family, and an
// 8-point band.
func (c CampaignConfig) WithDefaults() CampaignConfig {
	if c.Stack == (Stack{}) {
		c.Stack = CopperSiO2()
	}
	c.Acc = c.Acc.withDefaults()
	if c.Grid.isSet() && len(c.Grid.CFs) == 0 {
		c.Grid.CFs = []CFKind{GaussianCF}
	}
	if c.Band != nil && c.Band.Points == 0 {
		b := *c.Band
		b.Points = 8
		c.Band = &b
	}
	return c
}

// Frequencies materializes the campaign's shared frequency list from
// Freqs or Band.
func (c CampaignConfig) Frequencies() ([]float64, error) {
	if len(c.Freqs) > 0 && c.Band != nil {
		return nil, campErrf("freqs_hz", "give either freqs_hz or band, not both")
	}
	if len(c.Freqs) > 0 {
		for i, f := range c.Freqs {
			if !(f > 0) || f != f || f > 1e15 {
				return nil, campErrf("freqs_hz", "frequency %d out of domain: %g Hz", i, f)
			}
		}
		return c.Freqs, nil
	}
	if c.Band == nil {
		return nil, campErrf("freqs_hz", "campaign needs freqs_hz or band")
	}
	b := *c.Band
	if b.Points == 0 {
		b.Points = 8
	}
	if b.Points < 1 {
		return nil, campErrf("band", "points must be >= 1 (got %d)", b.Points)
	}
	if !(b.FMinHz > 0) || b.FMinHz != b.FMinHz || b.FMinHz > 1e15 {
		return nil, campErrf("band", "fmin_hz out of domain: %g Hz", b.FMinHz)
	}
	if b.FMaxHz < b.FMinHz {
		return nil, campErrf("band", "fmax_hz (%g) < fmin_hz (%g)", b.FMaxHz, b.FMinHz)
	}
	if b.FMaxHz > 1e15 {
		return nil, campErrf("band", "fmax_hz out of domain: %g Hz", b.FMaxHz)
	}
	if b.Points == 1 {
		return []float64{b.FMinHz}, nil
	}
	out := make([]float64, b.Points)
	for i := range out {
		out[i] = b.FMinHz + (b.FMaxHz-b.FMinHz)*float64(i)/float64(b.Points-1)
	}
	return out, nil
}

// validateCellSpec checks one surface process; field prefixes errors.
func validateCellSpec(field string, sp SurfaceSpec) error {
	if math.IsNaN(sp.Sigma) || math.IsInf(sp.Sigma, 0) || sp.Sigma < 0 {
		return campErrf(field+".sigma", "RMS height must be >= 0 and finite (got %g)", sp.Sigma)
	}
	if sp.Sigma == 0 {
		// A flat reference cell: K ≡ 1 analytically, no solver run, so
		// the remaining process parameters are irrelevant.
		return nil
	}
	if !(sp.Eta > 0) || math.IsInf(sp.Eta, 0) {
		return campErrf(field+".eta", "correlation length must be > 0 (got %g)", sp.Eta)
	}
	if sp.EtaY != 0 {
		if sp.Corr != GaussianCF {
			return campErrf(field+".eta_y", "anisotropy needs cf \"gaussian\" (got %q)", sp.Corr.String())
		}
		if !(sp.EtaY > 0) || math.IsInf(sp.EtaY, 0) {
			return campErrf(field+".eta_y", "transverse correlation length must be > 0 (got %g)", sp.EtaY)
		}
	}
	switch sp.Corr {
	case MeasuredCF:
		if !(sp.Eta2 > 0) || math.IsInf(sp.Eta2, 0) {
			return campErrf(field+".eta2", "cf \"measured\" needs eta2 > 0 (got %g)", sp.Eta2)
		}
	case GaussianCF, ExponentialCF:
		if sp.Eta2 != 0 {
			return campErrf(field+".eta2", "eta2 applies only to cf \"measured\"")
		}
	default:
		return campErrf(field+".cf", "unknown correlation function %d", int(sp.Corr))
	}
	return nil
}

// ExpandCells validates the campaign and expands it into its ordered
// cell list: the grid product first (CF kinds × ρ × σ × η × η₂ × ηy,
// row-major in that fixed order), then the explicit Cells. The order is
// deterministic — it defines cell indices in every campaign artifact —
// and duplicates are preserved (the planner folds them).
func (c CampaignConfig) ExpandCells() ([]SweepConfig, error) {
	c = c.WithDefaults()
	freqs, err := c.Frequencies()
	if err != nil {
		return nil, err
	}
	var out []SweepConfig
	if c.Grid.isSet() {
		sigmas, err := c.Grid.Sigmas.expand("grid.sigmas")
		if err != nil {
			return nil, err
		}
		etas, err := c.Grid.Etas.expand("grid.etas")
		if err != nil {
			return nil, err
		}
		eta2s, err := c.Grid.Eta2s.expand("grid.eta2s")
		if err != nil {
			return nil, err
		}
		etaYs, err := c.Grid.EtaYs.expand("grid.eta_ys")
		if err != nil {
			return nil, err
		}
		rhos, err := c.Grid.Rhos.expand("grid.rhos")
		if err != nil {
			return nil, err
		}
		if len(sigmas) == 0 {
			return nil, campErrf("grid.sigmas", "required when grid axes are set")
		}
		if len(etas) == 0 {
			return nil, campErrf("grid.etas", "required when grid axes are set")
		}
		if len(rhos) == 0 {
			rhos = []float64{c.Stack.Rho}
		}
		for _, kind := range c.Grid.CFs {
			if _, ok := cfNames[kind]; !ok {
				return nil, campErrf("grid.cfs", "unknown correlation function %d", int(kind))
			}
			// Axes a CF family cannot use are walked once at zero, not
			// crossed — a gaussian cell has no η₂, an exp cell no ηy.
			e2s := []float64{0}
			if kind == MeasuredCF {
				if len(eta2s) == 0 {
					return nil, campErrf("grid.eta2s", "required for cf \"measured\"")
				}
				e2s = eta2s
			}
			eYs := []float64{0}
			if kind == GaussianCF && len(etaYs) > 0 {
				eYs = etaYs
			}
			for _, rho := range rhos {
				if !(rho > 0) || math.IsInf(rho, 0) {
					return nil, campErrf("grid.rhos", "resistivity must be > 0 (got %g)", rho)
				}
				stack := c.Stack
				stack.Rho = rho
				for _, sigma := range sigmas {
					for _, eta := range etas {
						for _, e2 := range e2s {
							for _, eY := range eYs {
								spec := SurfaceSpec{Corr: kind, Sigma: sigma, Eta: eta, Eta2: e2, EtaY: eY}
								if spec.Sigma == 0 {
									// Flat reference cells carry only the axis
									// values that distinguish them.
									spec = SurfaceSpec{Corr: kind, Sigma: 0, Eta: eta}
								}
								if err := validateCellSpec(fmt.Sprintf("grid cell %d", len(out)), spec); err != nil {
									return nil, err
								}
								out = append(out, SweepConfig{Stack: stack, Spec: spec, Acc: c.Acc, Freqs: freqs})
							}
						}
					}
				}
			}
		}
	}
	for i, sp := range c.Cells {
		if err := validateCellSpec(fmt.Sprintf("cells[%d]", i), sp); err != nil {
			return nil, err
		}
		out = append(out, SweepConfig{Stack: c.Stack, Spec: sp, Acc: c.Acc, Freqs: freqs})
	}
	if len(out) == 0 {
		return nil, campErrf("grid", "campaign has no cells: set grid axes or cells")
	}
	return out, nil
}

// Validate checks the whole campaign request (it is exactly the
// expansion's validation).
func (c CampaignConfig) Validate() error {
	_, err := c.ExpandCells()
	return err
}

// campaignKeySchemaVersion tags the campaign encoding; campaignTag
// domain-separates campaign keys from sweep and checkpoint keys.
const (
	campaignKeySchemaVersion = 1
	campaignTag              = 0x63616d70 // "camp"
)

// Key returns the content address of the campaign: the SHA-256 over the
// ordered per-cell sweep keys (reusing SweepConfig.Key, so any change
// to any cell, the band or the accuracy changes the campaign identity)
// plus the failure policy. The hex form is the campaign ID — POSTing
// the same study twice addresses the same campaign, and a crash resumes
// it under the ID the client already holds.
func (c CampaignConfig) Key() (rescache.Key, error) {
	cells, err := c.ExpandCells()
	if err != nil {
		return rescache.Key{}, err
	}
	e := rescache.NewEnc()
	e.Uint64(campaignTag)
	e.Uint64(campaignKeySchemaVersion)
	e.Float64(c.MaxFailFrac)
	e.Int(len(cells))
	for _, cell := range cells {
		k := cell.Key()
		e.String(k.String())
	}
	return e.Sum(), nil
}

// ID returns the campaign's content address in hex — the wire ID of
// the /v1/campaigns API.
func (c CampaignConfig) ID() (string, error) {
	k, err := c.Key()
	if err != nil {
		return "", err
	}
	return k.String(), nil
}
