package roughsim

import (
	"context"
	"math"
	"testing"
)

// tinySurrogateConfig is the benchmark sweep configuration plus a
// band: small enough for CI, rough enough that K is visibly > 1.
func tinySurrogateConfig() SurrogateConfig {
	return SurrogateConfig{
		Spec:    SurfaceSpec{Corr: GaussianCF, Sigma: 0.4e-6, Eta: 1e-6},
		Acc:     Accuracy{GridPerSide: 8, StochasticDim: 2},
		FMinHz:  4e9,
		FMaxHz:  6e9,
		Anchors: 6,
	}
}

func TestFitSurrogateMatchesExactSolves(t *testing.T) {
	if testing.Short() {
		t.Skip("fits through the exact solver")
	}
	cfg := tinySurrogateConfig()
	sur, err := FitSurrogate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sur.MaxRelErr() > 1e-3 {
		t.Fatalf("admitted with max rel err %g", sur.MaxRelErr())
	}
	if sur.Key() != cfg.Key().String() {
		t.Fatalf("key mismatch: %s vs %s", sur.Key(), cfg.Key())
	}

	// The surrogate mean must match the exact per-frequency pipeline at
	// an off-anchor frequency to the admission tolerance.
	sim, err := NewSimulation(CopperSiO2(), cfg.Spec, cfg.Acc)
	if err != nil {
		t.Fatal(err)
	}
	f := 5.13e9
	exact, err := sim.MeanLossFactorCtx(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sur.MeanAt(f)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-exact) / exact; rel > 1e-3 {
		t.Fatalf("MeanAt(%g) = %.8g, exact %.8g (rel %g)", f, got, exact, rel)
	}
	if exact <= 1 {
		t.Fatalf("exact K = %g not > 1 for a rough surface", exact)
	}
	v, err := sur.VarianceAt(f)
	if err != nil || v < 0 {
		t.Fatalf("VarianceAt: %g, %v", v, err)
	}

	// Encode → Decode round-trips the servable model bit-exactly.
	b, err := sur.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSurrogate(b)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := back.MeanAt(f)
	if err != nil || got2 != got {
		t.Fatalf("decoded model MeanAt = %v, %v (want %v)", got2, err, got)
	}
	if _, err := DecodeSurrogate(b[:len(b)/2]); err == nil {
		t.Fatal("truncated surrogate decoded")
	}
}
