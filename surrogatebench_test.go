// Benchmarks for the surrogate fast path against the exact per-point
// pipeline, plus an env-gated recorder that writes BENCH_surrogate.json
// (set ROUGHSIM_SURROGATE_BENCH_OUT to the output path; CI runs it as a
// smoke check). The point being measured: the fit spends its exact
// solves once, after which every in-band query is a closed-form
// evaluation — the recorder asserts the per-query speedup is ≥ 100×
// and that the surrogate stays within the admission tolerance of the
// exact answer at off-anchor probe frequencies.
package roughsim

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"
	"time"
)

// benchProbeFreqs are off-anchor in-band frequencies (no Chebyshev
// abscissa of the 6-anchor fit grid lands on them).
var benchProbeFreqs = []float64{4.37e9, 5.13e9, 5.81e9}

// BenchmarkSurrogateEval measures the hot path alone: one closed-form
// E[K](f) query against an already-admitted model.
func BenchmarkSurrogateEval(b *testing.B) {
	sur, err := FitSurrogate(context.Background(), tinySurrogateConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sur.MeanAt(benchProbeFreqs[i%len(benchProbeFreqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactPoint is the tier the surrogate replaces: one full
// SSCM solve per query.
func BenchmarkExactPoint(b *testing.B) {
	cfg := tinySurrogateConfig().WithDefaults()
	sim, err := NewSimulation(cfg.Stack, cfg.Spec, cfg.Acc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.MeanLossFactorCtx(context.Background(), benchProbeFreqs[i%len(benchProbeFreqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRecordSurrogateBench fits once, then compares per-query cost and
// accuracy of the surrogate against exact solves at the off-anchor
// probes, writing the record to $ROUGHSIM_SURROGATE_BENCH_OUT (skipped
// when unset). The ≥ 100× floor is the acceptance criterion of the
// fast path; the measured ratio is orders of magnitude beyond it.
func TestRecordSurrogateBench(t *testing.T) {
	out := os.Getenv("ROUGHSIM_SURROGATE_BENCH_OUT")
	if out == "" {
		t.Skip("set ROUGHSIM_SURROGATE_BENCH_OUT to record the surrogate benchmark")
	}
	ctx := context.Background()
	cfg := tinySurrogateConfig().WithDefaults()

	t0 := time.Now()
	sur, err := FitSurrogate(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fitSec := time.Since(t0).Seconds()

	sim, err := NewSimulation(cfg.Stack, cfg.Spec, cfg.Acc)
	if err != nil {
		t.Fatal(err)
	}
	var (
		exactSec float64
		maxRel   float64
		kExact   []float64
		kSur     []float64
	)
	for _, f := range benchProbeFreqs {
		t1 := time.Now()
		exact, err := sim.MeanLossFactorCtx(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		exactSec += time.Since(t1).Seconds()
		got, err := sur.MeanAt(f)
		if err != nil {
			t.Fatal(err)
		}
		kExact = append(kExact, exact)
		kSur = append(kSur, got)
		if rel := math.Abs(got-exact) / exact; rel > maxRel {
			maxRel = rel
		}
	}
	exactPerQuery := exactSec / float64(len(benchProbeFreqs))

	// Time the closed-form path over enough queries to resolve it.
	const evals = 200_000
	t2 := time.Now()
	for i := 0; i < evals; i++ {
		if _, err := sur.MeanAt(benchProbeFreqs[i%len(benchProbeFreqs)]); err != nil {
			t.Fatal(err)
		}
	}
	evalPerQuery := time.Since(t2).Seconds() / evals
	speedup := exactPerQuery / evalPerQuery

	rec := map[string]any{
		"band_ghz":                []float64{cfg.FMinHz / 1e9, cfg.FMaxHz / 1e9},
		"grid_per_side":           cfg.Acc.GridPerSide,
		"stochastic_dim":          cfg.Acc.StochasticDim,
		"anchors":                 cfg.Anchors,
		"order":                   cfg.Order,
		"cpus":                    runtime.NumCPU(),
		"fit_seconds":             fitSec,
		"solve_points":            sur.SolvePoints(),
		"validation_max_rel_err":  sur.MaxRelErr(),
		"probe_freqs_hz":          benchProbeFreqs,
		"k_swm_exact":             kExact,
		"k_swm_surrogate":         kSur,
		"probe_max_rel_err":       maxRel,
		"exact_seconds_per_query": exactPerQuery,
		"eval_seconds_per_query":  evalPerQuery,
		"speedup":                 speedup,
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("fit %.2fs (%d solves), exact %.3gs/query, surrogate %.3gs/query (%.0fx), probe max rel err %.2g",
		fitSec, sur.SolvePoints(), exactPerQuery, evalPerQuery, speedup, maxRel)
	if maxRel > 1e-3 {
		t.Fatalf("surrogate deviates from exact at probes: max rel err %g", maxRel)
	}
	if speedup < 100 {
		t.Fatalf("surrogate not ≥100x faster per query: exact %.3gs vs eval %.3gs (%.1fx)",
			exactPerQuery, evalPerQuery, speedup)
	}
}
