// Benchmarks regenerating every exhibit of the paper's evaluation
// section (run with `go test -bench=. -benchmem`), plus ablation
// benchmarks for the design choices DESIGN.md calls out. Each figure
// benchmark runs the same generator as cmd/figures at the reduced Bench
// configuration, so the timings measure the full pipeline: surface
// synthesis → Green's-function tabulation → MoM assembly → dense solve →
// statistics.
package roughsim

import (
	"context"
	"testing"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/experiments"
	"roughsim/internal/greens"
	"roughsim/internal/mom"
	"roughsim/internal/rng"
	"roughsim/internal/sscm"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

func benchExhibit(b *testing.B, gen func(experiments.Config) (*experiments.Result, error)) {
	cfg := experiments.Bench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gen(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2SurfaceSynthesis times the random-surface machinery
// behind Fig. 2 (KL construction + sampling + statistics).
func BenchmarkFig2SurfaceSynthesis(b *testing.B) { benchExhibit(b, experiments.Fig2) }

// BenchmarkFig3 regenerates the SWM vs SPM2 vs empirical comparison
// (Gaussian CF, three roughness levels).
func BenchmarkFig3(b *testing.B) { benchExhibit(b, experiments.Fig3) }

// BenchmarkFig4 regenerates the measured-CF comparison.
func BenchmarkFig4(b *testing.B) { benchExhibit(b, experiments.Fig4) }

// BenchmarkFig5 regenerates the half-spheroid SWM vs HBM comparison.
func BenchmarkFig5(b *testing.B) { benchExhibit(b, experiments.Fig5) }

// BenchmarkFig6 regenerates the 3D-vs-2D SWM comparison.
func BenchmarkFig6(b *testing.B) { benchExhibit(b, experiments.Fig6) }

// BenchmarkFig7 regenerates the K-distribution comparison (MC vs SSCM).
func BenchmarkFig7(b *testing.B) { benchExhibit(b, experiments.Fig7) }

// BenchmarkTable1 regenerates the sampling-point accounting.
func BenchmarkTable1(b *testing.B) { benchExhibit(b, experiments.Table1) }

// --- Ablation benchmarks -------------------------------------------------

func benchParams() mom.Params {
	f := 5 * units.GHz
	return mom.Params{
		K1:   complex(units.WavenumberDielectric(f, 3.7), 0),
		K2:   units.WavenumberConductor(f, units.CopperResistivity),
		Beta: units.Beta(f, 3.7, units.CopperResistivity),
	}
}

func benchSurface(m int) *surface.Surface {
	c := surface.NewGaussianCorr(1e-6, 1e-6)
	kl := surface.NewKL(c, 5e-6, m)
	return kl.SampleTruncated(rng.New(3), 8)
}

// BenchmarkAssembleExact measures direct Ewald/image-sum MoM assembly.
func BenchmarkAssembleExact(b *testing.B) {
	s := benchSurface(12)
	p := benchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mom.Assemble(s, p, mom.Options{})
	}
}

// BenchmarkAssembleTabulated measures table-accelerated assembly (the
// per-surface cost once a frequency's tables exist — the SSCM/MC inner
// loop).
func BenchmarkAssembleTabulated(b *testing.B) {
	s := benchSurface(12)
	p := benchParams()
	ts := mom.NewTableSet(p, 5e-6, 12, 12e-6, mom.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mom.AssembleTabulated(s, p, ts, mom.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableBuild measures the one-time per-frequency table cost.
func BenchmarkTableBuild(b *testing.B) {
	p := benchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mom.NewTableSet(p, 5e-6, 12, 12e-6, mom.Options{})
	}
}

// BenchmarkSolveDense measures the O(N³) dense LU path.
func BenchmarkSolveDense(b *testing.B) {
	s := benchSurface(12)
	sys := mom.Assemble(s, benchParams(), mom.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveGMRES measures the iterative path at the same size.
func BenchmarkSolveGMRES(b *testing.B) {
	s := benchSurface(12)
	sys := mom.Assemble(s, benchParams(), mom.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.SolveGMRES(1e-8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnknownScaling demonstrates the Sec. III-C argument: the SWM
// system has 2N unknowns (vs ~6N for the vector-EM RWG formulation), and
// dense solve cost scales with the cube of that count. The benchmark
// reports the solve time at 2N and at 6N unknowns for the same N.
func BenchmarkUnknownScaling(b *testing.B) {
	n := 144 // N = 12² surface cells
	src := rng.New(5)
	build := func(dim int) *cmplxmat.Matrix {
		m := cmplxmat.New(dim, dim)
		for i := range m.Data {
			m.Data[i] = complex(src.NormFloat64(), src.NormFloat64())
		}
		for i := 0; i < dim; i++ {
			m.Add(i, i, complex(float64(dim), 0))
		}
		return m
	}
	rhs := func(dim int) []complex128 {
		v := make([]complex128, dim)
		for i := range v {
			v[i] = complex(src.NormFloat64(), 0)
		}
		return v
	}
	b.Run("SWM-2N", func(b *testing.B) {
		m := build(2 * n)
		r := rhs(2 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cmplxmat.SolveDense(m, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EM-6N", func(b *testing.B) {
		m := build(6 * n)
		r := rhs(6 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cmplxmat.SolveDense(m, r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEwaldVsDirect times one periodic Green's function evaluation
// per strategy (medium-1 Ewald vs medium-2 image sum).
func BenchmarkEwaldVsDirect(b *testing.B) {
	p := benchParams()
	ge := greens.NewPeriodic3D(p.K1, 5e-6)
	gd := greens.NewPeriodic3D(p.K2, 5e-6)
	b.Run("Ewald", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ge.EvalGrad(1e-6, 0.7e-6, 0.4e-6)
		}
	})
	b.Run("Direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gd.EvalGrad(1e-6, 0.7e-6, 0.4e-6)
		}
	})
}

// BenchmarkSSCMCollocation measures the stochastic layer alone (cheap
// surrogate construction on an analytic model, no MoM), isolating the
// sparse-grid machinery of Table I.
func BenchmarkSSCMCollocation(b *testing.B) {
	eval := func(xi []float64) (float64, error) {
		s := 1.4
		for i, v := range xi {
			s += 0.05*v + 0.01*float64(i%3)*v*v
		}
		return s, nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sscm.Run(context.Background(), 16, 2, eval, sscm.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
