package roughsim

import (
	"encoding/json"
	"testing"
)

// keyTestConfig exercises every key-determining field with non-default
// values, so single-field mutations below cannot hide behind defaults.
func keyTestConfig() SweepConfig {
	return SweepConfig{
		Stack: Stack{EpsR: 3.9, Rho: 1.7e-8},
		Spec:  SurfaceSpec{Corr: MeasuredCF, Sigma: 0.4e-6, Eta: 1e-6, Eta2: 0.53e-6, EtaY: 2e-6},
		Acc:   Accuracy{GridPerSide: 12, PatchOverEta: 4, StochasticDim: 6, Workers: 3},
		Freqs: []float64{4e9, 5e9, 6e9},
	}
}

// TestSweepKeyCanonicalization pins the canonicalization contract of
// the content address: invariant under a JSON round trip (the wire
// path of every API request), invariant under default elision, and
// invariant under Workers (an execution detail).
func TestSweepKeyCanonicalization(t *testing.T) {
	cfg := keyTestConfig()
	key := cfg.Key()
	keyAt := cfg.KeyAt(5e9)

	// JSON round trip (config → wire → config) must not move the key.
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepConfig
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key() != key || back.KeyAt(5e9) != keyAt {
		t.Fatal("JSON round trip changed the key")
	}

	// Defaults are applied before encoding: an elided field and its
	// explicit default share a key.
	elided := cfg
	elided.Stack = Stack{}
	explicit := cfg
	explicit.Stack = CopperSiO2()
	if elided.Key() != explicit.Key() {
		t.Fatal("elided and explicit default stacks key differently")
	}
	elidedAcc := cfg
	elidedAcc.Acc.GridPerSide = 0
	explicitAcc := cfg
	explicitAcc.Acc.GridPerSide = 16
	if elidedAcc.Key() != explicitAcc.Key() {
		t.Fatal("elided and explicit default grids key differently")
	}

	// Workers is an execution detail: it must never enter the key.
	w := cfg
	w.Acc.Workers = 17
	if w.Key() != key || w.KeyAt(5e9) != keyAt {
		t.Fatal("Workers entered the content address")
	}

	// Key is deterministic across calls.
	if cfg.Key() != key || cfg.KeyAt(5e9) != keyAt {
		t.Fatal("key not deterministic")
	}
}

// TestSweepKeySensitivity flips every result-determining field one at
// a time and asserts the content address moves each time — the
// property that makes cache collisions between distinct configs
// impossible.
func TestSweepKeySensitivity(t *testing.T) {
	base := keyTestConfig()
	mutations := map[string]func(*SweepConfig){
		"Stack.EpsR":        func(c *SweepConfig) { c.Stack.EpsR = 2.2 },
		"Stack.Rho":         func(c *SweepConfig) { c.Stack.Rho = 2.8e-8 },
		"Spec.Corr":         func(c *SweepConfig) { c.Spec.Corr = GaussianCF },
		"Spec.Corr exp":     func(c *SweepConfig) { c.Spec.Corr = ExponentialCF },
		"Spec.Sigma":        func(c *SweepConfig) { c.Spec.Sigma = 0.5e-6 },
		"Spec.Eta":          func(c *SweepConfig) { c.Spec.Eta = 1.5e-6 },
		"Spec.Eta2":         func(c *SweepConfig) { c.Spec.Eta2 = 0.6e-6 },
		"Spec.EtaY":         func(c *SweepConfig) { c.Spec.EtaY = 3e-6 },
		"Acc.GridPerSide":   func(c *SweepConfig) { c.Acc.GridPerSide = 14 },
		"Acc.PatchOverEta":  func(c *SweepConfig) { c.Acc.PatchOverEta = 5.5 },
		"Acc.StochasticDim": func(c *SweepConfig) { c.Acc.StochasticDim = 8 },
		"Freqs value":       func(c *SweepConfig) { c.Freqs = []float64{4e9, 5.5e9, 6e9} },
		"Freqs order":       func(c *SweepConfig) { c.Freqs = []float64{5e9, 4e9, 6e9} },
		"Freqs length":      func(c *SweepConfig) { c.Freqs = []float64{4e9, 5e9} },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if cfg.Key() == base.Key() {
			t.Errorf("%s does not move Key()", name)
		}
	}

	// KeyAt must be sensitive to the same fields plus the frequency,
	// and insensitive to the rest of the frequency list.
	at := base.KeyAt(5e9)
	if base.KeyAt(5.0001e9) == at {
		t.Error("KeyAt insensitive to frequency")
	}
	noFreqs := base
	noFreqs.Freqs = nil
	if noFreqs.KeyAt(5e9) != at {
		t.Error("KeyAt depends on the sweep frequency list")
	}
	mut := base
	mut.Spec.Sigma = 0.5e-6
	if mut.KeyAt(5e9) == at {
		t.Error("KeyAt insensitive to Sigma")
	}
}

// TestSurrogateKeyCanonicalization pins the surrogate content address:
// distinct from the sweep key space, sensitive to band and
// model-shaping parameters, insensitive to the admission-only ones.
func TestSurrogateKeyCanonicalization(t *testing.T) {
	base := SurrogateConfig{
		Spec:   SurfaceSpec{Corr: GaussianCF, Sigma: 0.4e-6, Eta: 1e-6},
		Acc:    Accuracy{GridPerSide: 8, StochasticDim: 2},
		FMinHz: 4e9,
		FMaxHz: 6e9,
	}
	key := base.Key()

	// JSON round trip invariance (the POST /v1/surrogates path).
	b, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	var back SurrogateConfig
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key() != key {
		t.Fatal("JSON round trip changed the surrogate key")
	}

	// Never collides with the sweep key space over the same physics.
	sweep := SweepConfig{Spec: base.Spec, Acc: base.Acc, Freqs: []float64{4e9, 6e9}}
	if key == sweep.Key() || key == sweep.KeyAt(4e9) {
		t.Fatal("surrogate key collides with sweep key space")
	}

	for name, mutate := range map[string]func(*SurrogateConfig){
		"FMinHz":  func(c *SurrogateConfig) { c.FMinHz = 3e9 },
		"FMaxHz":  func(c *SurrogateConfig) { c.FMaxHz = 7e9 },
		"Order":   func(c *SurrogateConfig) { c.Order = 2 },
		"Anchors": func(c *SurrogateConfig) { c.Anchors = 10 },
		"Sigma":   func(c *SurrogateConfig) { c.Spec.Sigma = 0.5e-6 },
		"Grid":    func(c *SurrogateConfig) { c.Acc.GridPerSide = 10 },
	} {
		cfg := base
		mutate(&cfg)
		if cfg.Key() == key {
			t.Errorf("%s does not move the surrogate key", name)
		}
	}

	// Tol and Holdout shape the admission verdict, not the model.
	verdictOnly := base
	verdictOnly.Tol = 1e-6
	verdictOnly.Holdout = 5
	if verdictOnly.Key() != key {
		t.Fatal("Tol/Holdout entered the surrogate content address")
	}
}
