// Interconnect example: the application that motivates the paper —
// predicting the insertion loss of a PCB microstrip when the copper
// surface is roughened for adhesion.
//
// A 20 cm 50Ω-ish microstrip on FR-4 is swept over 1–20 GHz three ways:
// smooth copper, roughness per the empirical formula (1), and roughness
// per the SWM solver. The output shows how roughness breaks the
// classical Rf ∝ √f law and costs several dB at the top of the band.
//
// Run with:
//
//	go run ./examples/interconnect
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"roughsim"
	"roughsim/internal/txline"
)

func main() {
	line := txline.Microstrip{
		Width:    300e-6,
		Height:   170e-6,
		EpsR:     4.1,
		TanDelta: 0.018,
		Rho:      roughsim.CopperSiO2().Rho,
	}
	const length = 0.20 // 20 cm
	const z0 = 50.0

	// Roughened foil: σ = 1 μm, η = 1.5 μm.
	sim, err := roughsim.NewSimulation(roughsim.CopperSiO2(),
		roughsim.SurfaceSpec{Corr: roughsim.GaussianCF, Sigma: 1e-6, Eta: 1.5e-6},
		roughsim.Accuracy{GridPerSide: 12, StochasticDim: 10})
	if err != nil {
		log.Fatal(err)
	}

	// Precompute the SWM roughness factor on a frequency grid (K(f) is
	// smooth; the line model interpolates nothing — we evaluate at the
	// same points).
	freqs := []float64{1, 2, 4, 6, 8, 10, 14, 20}
	swmK := make(map[float64]float64, len(freqs))
	for _, fG := range freqs {
		k, err := sim.MeanLossFactor(fG * 1e9)
		if err != nil {
			log.Fatal(err)
		}
		swmK[fG] = k
	}

	smooth := txline.Smooth
	empirical := func(f float64) float64 { return sim.EmpiricalLossFactor(f) }
	swm := func(f float64) float64 { return swmK[f/1e9] }

	fmt.Printf("20 cm microstrip (w=300 μm, h=170 μm, εr=4.1, tanδ=0.018), Z0 ≈ %.1f Ω\n", line.Z0())
	fmt.Printf("rough foil: σ=1 μm, η=1.5 μm\n\n")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "f (GHz)\tsmooth IL (dB)\tempirical IL (dB)\tSWM IL (dB)\tSWM K(f)")
	il := func(f float64, kr txline.RoughnessModel) float64 {
		v, err := txline.InsertionLossDB(line, length, f, z0, kr)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	for _, fG := range freqs {
		f := fG * 1e9
		s := il(f, smooth)
		e := il(f, empirical)
		w := il(f, swm)
		fmt.Fprintf(tw, "%.3g\t%.2f\t%.2f\t%.2f\t%.3f\n", fG, s, e, w, swmK[fG])
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe roughness penalty grows with frequency: at 20 GHz the classical")
	fmt.Println("smooth-copper model underestimates the loss by the K(f) factor above.")
}
