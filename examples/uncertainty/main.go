// Uncertainty example: the paper's stochastic contribution — replacing
// 5000-sample Monte-Carlo with the spectral stochastic collocation
// method (SSCM). This example builds the distribution of the loss factor
// K at 5 GHz both ways and reports the sampling-point budgets and the
// Kolmogorov–Smirnov agreement of the CDFs (the Fig. 7 / Table I story).
//
// Run with:
//
//	go run ./examples/uncertainty
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"roughsim"
	"roughsim/internal/stats"
)

func main() {
	sim, err := roughsim.NewSimulation(roughsim.CopperSiO2(),
		roughsim.SurfaceSpec{Corr: roughsim.GaussianCF, Sigma: 1e-6, Eta: 1e-6},
		roughsim.Accuracy{GridPerSide: 12, StochasticDim: 10})
	if err != nil {
		log.Fatal(err)
	}
	f := 5e9

	const nMC = 400 // a laptop-scale stand-in for the paper's 5000
	mc, err := sim.MonteCarlo(f, nMC, 42)
	if err != nil {
		log.Fatal(err)
	}
	mcECDF := stats.NewECDF(mc.Samples)

	fmt.Printf("distribution of K = Pr/Ps at 5 GHz (σ=η=1 μm), d = %d KL modes\n\n", sim.StochasticDim())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tsolver runs\tmean K\tstd K\tKS vs MC")
	fmt.Fprintf(tw, "MC\t%d\t%.4f\t%.4f\t—\n", nMC, mc.Mean, mc.StdErr*math.Sqrt(nMC))

	for _, order := range []int{1, 2} {
		res, err := sim.SSCM(f, order)
		if err != nil {
			log.Fatal(err)
		}
		surrogate := res.PCE.Sample(20000, 7)
		ks := stats.KSDistance(mcECDF, stats.NewECDF(surrogate))
		fmt.Fprintf(tw, "%d-SSCM\t%d\t%.4f\t%.4f\t%.4f\n",
			order, res.Points, res.PCE.Mean(), math.Sqrt(res.PCE.Variance()), ks)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe 2nd-order surrogate reproduces the Monte-Carlo distribution with")
	fmt.Println("an order of magnitude fewer integral-equation solves — Table I's point.")
}
