// Validity-map example: the paper's central claim is that SWM bridges
// the validity gap between SPM2 (small roughness only) and HBM (large
// roughness / high frequency only). This example sweeps the roughness
// scale at a fixed frequency and prints all methods side by side, so the
// divergence of each closed form outside its regime is visible.
//
// Run with:
//
//	go run ./examples/validity
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"roughsim"
)

func main() {
	stack := roughsim.CopperSiO2()
	f := 5e9
	delta := stack.SkinDepth(f)
	fmt.Printf("method validity sweep at %.0f GHz (δ = %.2f μm)\n", f/1e9, delta*1e6)
	fmt.Printf("Gaussian CF, η = 2σ throughout; σ/δ is the roughness scale\n\n")

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "σ (μm)\tσ/δ\tSWM K\tSPM2 K\tempirical K")
	for _, sigmaUM := range []float64{0.25, 0.5, 1.0, 1.5, 2.0} {
		sigma := sigmaUM * 1e-6
		sim, err := roughsim.NewSimulation(stack,
			roughsim.SurfaceSpec{Corr: roughsim.GaussianCF, Sigma: sigma, Eta: 2 * sigma},
			roughsim.Accuracy{GridPerSide: 14, StochasticDim: 12})
		if err != nil {
			log.Fatal(err)
		}
		k, err := sim.MeanLossFactor(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%.2f\t%.2f\t%.4f\t%.4f\t%.4f\n",
			sigmaUM, sigma/delta, k, sim.SPM2LossFactor(f), sim.EmpiricalLossFactor(f))
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreading the table: SPM2 tracks SWM while σ/δ ≲ 1 and then overshoots")
	fmt.Println("(its K−1 grows strictly like σ²); the empirical formula saturates at 2")
	fmt.Println("regardless of the texture. SWM remains usable across the whole range.")
}
