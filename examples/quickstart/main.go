// Quickstart: compute the surface-roughness loss enhancement factor
// K = Pr/Ps of a copper conductor with a Gaussian-correlated rough
// surface (σ = η = 1 μm) at 5 GHz, and compare it against the analytic
// baselines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"roughsim"
)

func main() {
	stack := roughsim.CopperSiO2()
	spec := roughsim.SurfaceSpec{
		Corr:  roughsim.GaussianCF,
		Sigma: 1e-6, // 1 μm RMS
		Eta:   1e-6, // 1 μm correlation length
	}
	// Default accuracy: 16×16 patch grid, 16 KL modes — a few seconds.
	sim, err := roughsim.NewSimulation(stack, spec, roughsim.Accuracy{})
	if err != nil {
		log.Fatal(err)
	}

	f := 5e9 // 5 GHz
	k, err := sim.MeanLossFactor(f)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("copper/SiO2 @ %.0f GHz (skin depth %.2f μm):\n", f/1e9, stack.SkinDepth(f)*1e6)
	fmt.Printf("  SWM (this paper):    K = %.3f\n", k)
	fmt.Printf("  SPM2 baseline:       K = %.3f\n", sim.SPM2LossFactor(f))
	fmt.Printf("  empirical eq. (1):   K = %.3f\n", sim.EmpiricalLossFactor(f))
	fmt.Printf("\nso roughness increases conductor loss by %.0f%% at this frequency.\n", (k-1)*100)
}
