// S-parameter export example: build a causal roughness-corrected model
// of a 10 cm microstrip and write industry-standard Touchstone (.s2p)
// files for the smooth and rough cases, ready for any SI tool or
// channel simulator.
//
// Run with:
//
//	go run ./examples/sparams
package main

import (
	"fmt"
	"log"
	"os"

	"roughsim"
	"roughsim/internal/txline"
)

func main() {
	line := txline.Microstrip{
		Width:    300e-6,
		Height:   170e-6,
		EpsR:     4.1,
		TanDelta: 0.018,
		Rho:      roughsim.CopperSiO2().Rho,
	}
	const length = 0.10
	const z0 = 50.0

	// Frequency grid: 0.1–40 GHz (fine enough for causal group delay).
	var freqs []float64
	for fG := 0.1; fG <= 40; fG += 0.1 {
		freqs = append(freqs, fG*1e9)
	}

	// Roughness profile from the empirical formula (σ = 1.2 μm), turned
	// into a causal complex correction via the Kramers–Kronig transform.
	mat := roughsim.CopperSiO2()
	ks := make([]float64, len(freqs))
	for i, f := range freqs {
		ks[i] = roughsim.EmpiricalLossFactor(1.2e-6, mat.SkinDepth(f))
	}
	causal, err := txline.NewCausalRoughness(freqs, ks)
	if err != nil {
		log.Fatal(err)
	}

	write := func(name string, kr txline.RoughnessModel) {
		sweep := txline.SweepSParams(line, length, z0, freqs, kr)
		if p := txline.PassivityCheck(sweep); p > 1+1e-9 {
			log.Fatalf("%s: non-passive sweep (%g)", name, p)
		}
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := txline.WriteTouchstone(f, z0, sweep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d points, max power gain %.6f)\n",
			name, len(sweep), txline.PassivityCheck(sweep))
	}

	write("line_smooth.s2p", txline.Smooth)
	write("line_rough.s2p", func(f float64) float64 { return causal.K(f) })

	// Show the causal correction at a few frequencies.
	fmt.Println("\ncausal roughness correction Kc(f) = K + jX:")
	for _, fG := range []float64{1, 5, 10, 20} {
		kc := causal.Factor(fG * 1e9)
		fmt.Printf("  %5.1f GHz: K = %.4f, X = %+.4f\n", fG, real(kc), imag(kc))
	}
}
