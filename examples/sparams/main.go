// S-parameter service example: boot an in-process roughsimd, submit a
// roughness-corrected microstrip over 1–9 GHz to POST /v1/sparams, poll
// the generation job, and download the gated Touchstone artifact — the
// same request/response cycle an SI tool integration would run against
// a deployed daemon. A second identical POST shows the content-addressed
// store at work: it answers 200 immediately with zero solver work.
//
// Run with:
//
//	go run ./examples/sparams
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"roughsim"
	"roughsim/internal/server"
)

func main() {
	srv, err := server.New(server.Config{Workers: 2, QueueDepth: 8})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()

	// A 2 cm FR4 microstrip with a Gaussian roughness process; the
	// coarse accuracy keeps the exact K(f) resolution to a few seconds.
	cfg := roughsim.SParamConfig{
		Spec: roughsim.SurfaceSpec{Corr: roughsim.GaussianCF, Sigma: 0.4e-6, Eta: 1e-6},
		Acc:  roughsim.Accuracy{GridPerSide: 8, StochasticDim: 2},
		Line: roughsim.LineGeometry{
			WidthM:   300e-6,
			HeightM:  170e-6,
			EpsR:     4.1,
			TanDelta: 0.018,
		},
		LengthM: 0.02,
		FMinHz:  1e9,
		FMaxHz:  9e9,
		Points:  9,
	}
	body, _ := json.Marshal(cfg)

	resp, err := http.Post(base+"/v1/sparams", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var acc struct {
		Key string `json:"key"`
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted: artifact %s…, job %s\n", acc.Key[:12], acc.Job.ID)

	// Poll the generation job until terminal.
	for {
		var info struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		get(base+"/v1/sparams/"+acc.Job.ID, func(r io.Reader) error {
			return json.NewDecoder(r).Decode(&info)
		})
		switch info.Status {
		case "succeeded":
		case "failed", "canceled":
			log.Fatalf("generation %s: %s", info.Status, info.Error)
		default:
			time.Sleep(100 * time.Millisecond)
			continue
		}
		break
	}

	// The artifact JSON carries provenance and the gate report…
	var art roughsim.SParamArtifact
	get(base+"/v1/sparams/"+acc.Key, func(r io.Reader) error {
		return json.NewDecoder(r).Decode(&art)
	})
	fmt.Printf("artifact: %d points %g–%g GHz, K via %s\n", art.Points, art.FMinHz/1e9, art.FMaxHz/1e9, art.Source)
	fmt.Printf("gates: %s\n", art.Gates)

	// …and ?format=s2p serves the raw Touchstone body for any SI tool.
	get(base+"/v1/sparams/"+acc.Key+"?format=s2p", func(r io.Reader) error {
		f, err := os.Create("line_rough.s2p")
		if err != nil {
			return err
		}
		if _, err := io.Copy(f, r); err != nil {
			return err
		}
		return f.Close()
	})
	fmt.Println("wrote line_rough.s2p")

	// An identical re-POST is a pure store read: 200, not 202.
	resp, err = http.Post(base+"/v1/sparams", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("re-POST of the same request: HTTP %d (served from the artifact store)\n", resp.StatusCode)
}

// get fetches a URL and hands the body to read, failing the example on
// any error.
func get(url string, read func(io.Reader) error) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	if err := read(resp.Body); err != nil {
		log.Fatal(err)
	}
}
