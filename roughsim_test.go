package roughsim

import (
	"math"
	"testing"

	"roughsim/internal/rng"
)

func TestCopperSiO2(t *testing.T) {
	s := CopperSiO2()
	if s.EpsR != 3.7 || math.Abs(s.Rho-1.67e-8)/1.67e-8 > 1e-12 {
		t.Fatalf("stack %+v", s)
	}
	if d := s.SkinDepth(1e9); math.Abs(d-2.057e-6)/2.057e-6 > 0.01 {
		t.Fatalf("skin depth %g", d)
	}
}

func TestSurfaceSpecValidation(t *testing.T) {
	if _, err := NewSimulation(CopperSiO2(), SurfaceSpec{Corr: MeasuredCF, Sigma: 1e-6, Eta: 1e-6}, Accuracy{}); err == nil {
		t.Fatal("MeasuredCF without Eta2 must fail")
	}
	if _, err := NewSimulation(CopperSiO2(), SurfaceSpec{Corr: CFKind(99), Sigma: 1e-6, Eta: 1e-6}, Accuracy{}); err == nil {
		t.Fatal("unknown CF must fail")
	}
	// Non-positive process parameters are returned errors, not panics
	// from the surface constructors.
	if _, err := NewSimulation(CopperSiO2(), SurfaceSpec{Corr: GaussianCF, Sigma: -1e-6, Eta: 1e-6}, Accuracy{}); err == nil {
		t.Fatal("negative Sigma must fail")
	}
	if _, err := NewSimulation(CopperSiO2(), SurfaceSpec{Corr: ExponentialCF, Sigma: 1e-6, Eta: 0}, Accuracy{}); err == nil {
		t.Fatal("zero Eta must fail")
	}
}

func TestSimulationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full solver")
	}
	sim, err := NewSimulation(CopperSiO2(),
		SurfaceSpec{Corr: GaussianCF, Sigma: 1e-6, Eta: 2e-6},
		Accuracy{GridPerSide: 16, StochasticDim: 12})
	if err != nil {
		t.Fatal(err)
	}
	f := 5e9
	k, err := sim.MeanLossFactor(f)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 1 || k > 2 {
		t.Fatalf("mean K = %g outside plausible range", k)
	}
	// SPM2 baseline in the same ballpark, after correcting the SSCM mean
	// for the variance the KL truncation leaves out (K−1 is quadratic in
	// the height to leading order).
	sp := sim.SPM2LossFactor(f)
	corrected := 1 + (k-1)/sim.CapturedVariance()
	if math.Abs(corrected-sp)/(sp-1) > 0.45 {
		t.Fatalf("SWM %g (corrected %g) vs SPM2 %g disagree badly", k, corrected, sp)
	}
	// The empirical formula only sees σ: it returns the same value for
	// every η; just check it is sane.
	if e := sim.EmpiricalLossFactor(f); e < 1 || e > 2 {
		t.Fatalf("empirical K = %g", e)
	}
	// A single realization.
	src := rng.New(1)
	xi := src.NormVec(sim.StochasticDim())
	surf := sim.Surface(xi)
	kr, err := sim.LossFactor(surf, f)
	if err != nil {
		t.Fatal(err)
	}
	if kr <= 1 {
		t.Fatalf("single-realization K = %g", kr)
	}
}

func TestStackHBM(t *testing.T) {
	s := CopperSiO2()
	k := s.HBMLossFactor(20e9, 5e-6, 1e-10)
	if k < 1.5 || k > 4 {
		t.Fatalf("HBM K = %g", k)
	}
}

func TestEmpiricalPackageLevel(t *testing.T) {
	if k := EmpiricalLossFactor(1e-6, 1e-6); math.Abs(k-(1+2/math.Pi*math.Atan(1.4))) > 1e-12 {
		t.Fatalf("empirical K = %g", k)
	}
}

func TestAnisotropicSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("full solver")
	}
	// Rolled-foil scenario: smoother along y. The mean loss factor must
	// exceed the isotropic case built from the SMOOTHER axis (more
	// gradient energy) and the SPM2 baseline must stay in the same
	// ballpark.
	// Geometry note: the grid must resolve the ROUGH axis (ηx): with
	// L = 4·ηy = 8 μm and M = 24, h = ηx/3.
	f := 5e9
	ani, err := NewSimulation(CopperSiO2(),
		SurfaceSpec{Corr: GaussianCF, Sigma: 0.5e-6, Eta: 1e-6, EtaY: 2e-6},
		Accuracy{GridPerSide: 24, StochasticDim: 10, PatchOverEta: 4})
	if err != nil {
		t.Fatal(err)
	}
	kAni, err := ani.MeanLossFactor(f)
	if err != nil {
		t.Fatal(err)
	}
	isoSmooth, err := NewSimulation(CopperSiO2(),
		SurfaceSpec{Corr: GaussianCF, Sigma: 0.5e-6, Eta: 2e-6},
		Accuracy{GridPerSide: 24, StochasticDim: 10, PatchOverEta: 4})
	if err != nil {
		t.Fatal(err)
	}
	kIso, err := isoSmooth.MeanLossFactor(f)
	if err != nil {
		t.Fatal(err)
	}
	// The two processes need different KL depths for equal coverage;
	// normalize the excess loss by the captured variance (K−1 is
	// quadratic in the height to leading order).
	exAni := (kAni - 1) / ani.CapturedVariance()
	exIso := (kIso - 1) / isoSmooth.CapturedVariance()
	if exAni <= exIso {
		t.Fatalf("anisotropic excess %g should exceed smooth-axis isotropic excess %g (raw K %g vs %g)",
			exAni, exIso, kAni, kIso)
	}
	sp := ani.SPM2LossFactor(f)
	if math.Abs((1+exAni)-sp)/(sp-1) > 0.6 {
		t.Fatalf("aniso SWM (corrected) %g vs SPM2 %g", 1+exAni, sp)
	}
}

func TestAnisotropyRejectedForNonGaussian(t *testing.T) {
	_, err := NewSimulation(CopperSiO2(),
		SurfaceSpec{Corr: ExponentialCF, Sigma: 1e-6, Eta: 1e-6, EtaY: 2e-6}, Accuracy{})
	if err == nil {
		t.Fatal("EtaY with ExponentialCF must fail")
	}
}
