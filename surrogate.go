package roughsim

import (
	"context"
	"encoding/json"

	"roughsim/internal/rescache"
	"roughsim/internal/resilience"
	"roughsim/internal/surrogate"
)

// This file is the public face of internal/surrogate: a broadband
// closed-form model of K(f, ξ) fitted once through the exact solver
// and then evaluated in microseconds — the library-level counterpart
// of roughsimd's GET /k fast path.

// SurrogateConfig describes one surrogate build: the physical
// configuration (identical to a sweep's) plus the band and fit/admit
// parameters. It is the request body of POST /v1/surrogates.
type SurrogateConfig struct {
	Stack Stack       `json:"stack"`
	Spec  SurfaceSpec `json:"surface"`
	Acc   Accuracy    `json:"accuracy"`
	// FMinHz/FMaxHz bound the band the surrogate serves.
	FMinHz float64 `json:"fmin_hz"`
	FMaxHz float64 `json:"fmax_hz"`
	// Order is the PC order (default 1, the paper's 1st-SSCM).
	Order int `json:"order,omitempty"`
	// Anchors is the Chebyshev anchor count in x = √f (default 8).
	Anchors int `json:"anchors,omitempty"`
	// Holdout is the held-out validation frequency count (default 3,
	// bumped if it would collide with Anchors).
	Holdout int `json:"holdout,omitempty"`
	// Tol is the admission tolerance on the validation max relative
	// error (default 1e-3). Tol and Holdout shape the admission verdict,
	// not the fitted model, so they stay out of the content address.
	Tol float64 `json:"tol,omitempty"`
}

// WithDefaults fills the zero-valued parts (mirroring
// SweepConfig.WithDefaults plus the fit parameters).
func (c SurrogateConfig) WithDefaults() SurrogateConfig {
	if c.Stack == (Stack{}) {
		c.Stack = CopperSiO2()
	}
	c.Acc = c.Acc.withDefaults()
	s := c.fitParams().WithDefaults()
	c.Order, c.Anchors, c.Holdout, c.Tol = s.Order, s.Anchors, s.Holdout, s.Tol
	return c
}

// Validate checks the band and fit parameters.
func (c SurrogateConfig) Validate() error {
	if err := c.fitParams().WithDefaults().Validate(); err != nil {
		return err
	}
	if c.Order < 0 || c.Order > 4 {
		return resilience.Errorf(resilience.KindInvalidInput, "roughsim.SurrogateConfig",
			"PC order %d out of range (0 < order ≤ 4)", c.Order)
	}
	return nil
}

// surrogateKeyTag domain-separates surrogate content addresses from
// sweep point/result keys built over the same physical fields.
const surrogateKeyTag = "surrogate"

// Key returns the canonical content address of the surrogate this
// config produces: the physical configuration (same canonical encoding
// as sweep keys), the band and the model-determining fit parameters.
// Tol and Holdout are excluded — they decide admission, not model
// content — so tightening the tolerance re-judges, not re-fits.
func (c SurrogateConfig) Key() rescache.Key {
	c = c.WithDefaults()
	base := SweepConfig{Stack: c.Stack, Spec: c.Spec, Acc: c.Acc}
	e := base.encodeBase()
	e.String(surrogateKeyTag)
	e.Float64(c.FMinHz).Float64(c.FMaxHz)
	e.Int(c.Order).Int(c.Anchors)
	return e.Sum()
}

// fitParams maps the fit-facing fields onto a surrogate.FitSpec
// (without key or meta).
func (c SurrogateConfig) fitParams() surrogate.FitSpec {
	return surrogate.FitSpec{
		FMinHz:  c.FMinHz,
		FMaxHz:  c.FMaxHz,
		Order:   c.Order,
		Anchors: c.Anchors,
		Holdout: c.Holdout,
		Tol:     c.Tol,
	}
}

// FitSpec returns the internal build spec: fit parameters, the content
// address as the key, and the full config echoed as Meta so a
// persisted model records what it was fitted for.
func (c SurrogateConfig) FitSpec() (surrogate.FitSpec, error) {
	c = c.WithDefaults()
	if err := c.Validate(); err != nil {
		return surrogate.FitSpec{}, err
	}
	meta, err := json.Marshal(c)
	if err != nil {
		return surrogate.FitSpec{}, err
	}
	spec := c.fitParams()
	spec.Key = c.Key()
	spec.Meta = meta
	return spec, nil
}

// Surrogate is an admitted broadband K(f, ξ) model: closed-form mean,
// variance and per-ξ evaluation over its band, no solver in the loop.
type Surrogate struct {
	model *surrogate.Model
}

// FitSurrogate runs the full offline pipeline for cfg — exact
// collocation solves at the anchor frequencies, per-anchor PC
// projection, validation against exact solves at held-out frequencies
// — and returns the model only if it beats cfg.Tol. This is the
// library path; roughsimd keeps admitted models in a registry instead.
func FitSurrogate(ctx context.Context, cfg SurrogateConfig) (*Surrogate, error) {
	cfg = cfg.WithDefaults()
	spec, err := cfg.FitSpec()
	if err != nil {
		return nil, err
	}
	sim, err := NewSimulation(cfg.Stack, cfg.Spec, cfg.Acc)
	if err != nil {
		return nil, err
	}
	model, err := surrogate.Fit(ctx, sim, spec, nil)
	if err != nil {
		return nil, err
	}
	maxErr, err := surrogate.Validate(ctx, sim, model, spec, nil)
	if err != nil {
		return nil, err
	}
	model.MaxRelErr = maxErr
	if maxErr > spec.Tol {
		return nil, resilience.Errorf(resilience.KindNumerical, "roughsim.FitSurrogate",
			"validation max relative error %.3g exceeds tolerance %.3g", maxErr, spec.Tol)
	}
	return &Surrogate{model: model}, nil
}

// Key returns the hex content address of the configuration the model
// was fitted for.
func (s *Surrogate) Key() string { return s.model.Key }

// Band returns the fitted frequency band in Hz.
func (s *Surrogate) Band() (fmin, fmax float64) { return s.model.FMinHz, s.model.FMaxHz }

// MaxRelErr returns the validation-time max relative error (the
// admission criterion the model beat).
func (s *Surrogate) MaxRelErr() float64 { return s.model.MaxRelErr }

// SolvePoints returns how many exact solver evaluations the fit and
// validation spent — the offline cost each MeanAt call amortizes.
func (s *Surrogate) SolvePoints() int { return s.model.SolvePoints }

// MeanAt returns E[K](f) — the quantity sweeps report as KSWM.
func (s *Surrogate) MeanAt(f float64) (float64, error) { return s.model.Mean(f) }

// VarianceAt returns Var[K](f).
func (s *Surrogate) VarianceAt(f float64) (float64, error) { return s.model.Variance(f) }

// EvalAt evaluates K(f, ξ) for KL coordinates xi — the closed form the
// paper samples to build the CDF of K.
func (s *Surrogate) EvalAt(f float64, xi []float64) (float64, error) { return s.model.Eval(f, xi) }

// Encode serializes the model (the roughsim -surrogate-out format).
func (s *Surrogate) Encode() ([]byte, error) { return surrogate.Encode(s.model) }

// DecodeSurrogate parses a model persisted by Encode (or by
// roughsimd's registry), rejecting any schema or shape mismatch.
func DecodeSurrogate(b []byte) (*Surrogate, error) {
	m, err := surrogate.Decode(b)
	if err != nil {
		return nil, err
	}
	return &Surrogate{model: m}, nil
}
