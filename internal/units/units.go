// Package units collects the physical constants and unit helpers used
// throughout roughsim.
//
// All internal computation is carried out in SI units (meters, seconds,
// ohms). The helpers below exist so that configuration code can speak the
// paper's natural units (micrometers, GHz, micro-ohm-centimeters) without
// scattering conversion factors around the code base.
package units

import "math"

// Physical constants (SI).
const (
	// Mu0 is the vacuum permeability in H/m (exact pre-2019 definition,
	// which is what the microwave literature uses).
	Mu0 = 4 * math.Pi * 1e-7
	// C0 is the speed of light in vacuum in m/s.
	C0 = 299792458.0
)

// Eps0 is the vacuum permittivity in F/m, derived from Mu0 and C0.
var Eps0 = 1 / (Mu0 * C0 * C0)

// Unit multipliers: multiply a value expressed in the named unit by the
// constant to obtain SI.
const (
	Micrometer = 1e-6 // m
	Nanometer  = 1e-9 // m
	Millimeter = 1e-3 // m
	GHz        = 1e9  // Hz
	MHz        = 1e6  // Hz

	// MicroOhmCm converts a resistivity in μΩ·cm to Ω·m.
	MicroOhmCm = 1e-8
)

// CopperResistivity is the bulk resistivity of annealed copper in Ω·m,
// matching the paper's 1.67 μΩ·cm.
const CopperResistivity = 1.67 * MicroOhmCm

// SkinDepth returns δ = sqrt(ρ/(π f μ)) in meters for a conductor of
// resistivity rho (Ω·m) at frequency f (Hz) with permeability mu (H/m).
// It panics if f or rho is not positive: a zero-frequency or
// zero-resistivity skin depth is meaningless in this model.
func SkinDepth(rho, f, mu float64) float64 {
	if f <= 0 || rho <= 0 || mu <= 0 {
		panic("units: SkinDepth requires positive rho, f, mu")
	}
	return math.Sqrt(rho / (math.Pi * f * mu))
}

// SkinDepthCopper returns the skin depth of copper (μ = μ0) at f Hz.
func SkinDepthCopper(f float64) float64 {
	return SkinDepth(CopperResistivity, f, Mu0)
}

// AngularFreq returns ω = 2πf.
func AngularFreq(f float64) float64 { return 2 * math.Pi * f }

// WavenumberDielectric returns the (real) wavenumber k₁ = ω·sqrt(με) of a
// lossless dielectric with relative permittivity epsR at frequency f (Hz).
func WavenumberDielectric(f, epsR float64) float64 {
	return AngularFreq(f) * math.Sqrt(Mu0*Eps0*epsR)
}

// WavenumberConductor returns the complex wavenumber k₂ = (1+j)/δ inside a
// good conductor of resistivity rho at frequency f.
func WavenumberConductor(f, rho float64) complex128 {
	d := SkinDepth(rho, f, Mu0)
	return complex(1/d, 1/d)
}

// SurfaceResistance returns Rs = 1/(σδ) = ρ/δ (Ω/sq) of a thick conductor.
func SurfaceResistance(f, rho float64) float64 {
	return rho / SkinDepth(rho, f, Mu0)
}

// Beta returns the scalar-wave continuity ratio β = ε₁/ε₂ ≈ −jωε₁ρ of
// eq. (6): the dielectric permittivity over the conductor's effective
// (conduction-dominated) permittivity ε₂ ≈ −j/(ωρ).
func Beta(f, epsR, rho float64) complex128 {
	w := AngularFreq(f)
	return complex(0, -w*Eps0*epsR*rho)
}
