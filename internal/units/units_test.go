package units

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestEps0(t *testing.T) {
	// ε0 should be ~8.854e-12 F/m.
	if math.Abs(Eps0-8.8541878128e-12) > 1e-15 {
		t.Fatalf("Eps0 = %g, want ~8.854e-12", Eps0)
	}
}

func TestSkinDepthCopper(t *testing.T) {
	// Copper at 1 GHz: δ ≈ 2.06 μm for ρ = 1.67 μΩ·cm.
	d := SkinDepthCopper(1 * GHz)
	want := 2.057e-6
	if math.Abs(d-want)/want > 5e-3 {
		t.Fatalf("skin depth at 1 GHz = %g m, want ≈ %g m", d, want)
	}
	// δ ∝ 1/sqrt(f).
	d4 := SkinDepthCopper(4 * GHz)
	if math.Abs(d4-d/2)/d > 1e-12 {
		t.Fatalf("skin depth scaling: δ(4GHz)=%g, want δ(1GHz)/2=%g", d4, d/2)
	}
}

func TestSkinDepthPanics(t *testing.T) {
	for _, args := range [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SkinDepth(%v) did not panic", args)
				}
			}()
			SkinDepth(args[0], args[1], args[2])
		}()
	}
}

func TestWavenumberDielectric(t *testing.T) {
	// In vacuum (εr=1) k = ω/c.
	f := 5 * GHz
	k := WavenumberDielectric(f, 1)
	want := AngularFreq(f) / C0
	if math.Abs(k-want)/want > 1e-12 {
		t.Fatalf("k1 vacuum = %g, want %g", k, want)
	}
	// εr = 3.7 slows the wave by sqrt(3.7).
	k37 := WavenumberDielectric(f, 3.7)
	if math.Abs(k37-k*math.Sqrt(3.7))/k37 > 1e-12 {
		t.Fatalf("k1(3.7) = %g, want %g", k37, k*math.Sqrt(3.7))
	}
}

func TestWavenumberConductor(t *testing.T) {
	f := 1 * GHz
	k2 := WavenumberConductor(f, CopperResistivity)
	d := SkinDepthCopper(f)
	if math.Abs(real(k2)-1/d) > 1e-6/d || math.Abs(imag(k2)-1/d) > 1e-6/d {
		t.Fatalf("k2 = %v, want (1+j)/δ with δ=%g", k2, d)
	}
	// |k2| = sqrt(2)/δ.
	if math.Abs(cmplx.Abs(k2)-math.Sqrt2/d)/(1/d) > 1e-12 {
		t.Fatalf("|k2| = %g, want %g", cmplx.Abs(k2), math.Sqrt2/d)
	}
}

func TestBetaSmall(t *testing.T) {
	// β = −jωε₁ρ must be tiny and purely negative-imaginary for copper
	// under SiO2 at GHz frequencies.
	b := Beta(5*GHz, 3.7, CopperResistivity)
	if real(b) != 0 {
		t.Fatalf("Re β = %g, want 0", real(b))
	}
	if imag(b) >= 0 {
		t.Fatalf("Im β = %g, want negative", imag(b))
	}
	if cmplx.Abs(b) > 1e-4 {
		t.Fatalf("|β| = %g, expected ≪ 1 for a good conductor", cmplx.Abs(b))
	}
}

func TestSurfaceResistance(t *testing.T) {
	// Rs grows like sqrt(f).
	r1 := SurfaceResistance(1*GHz, CopperResistivity)
	r4 := SurfaceResistance(4*GHz, CopperResistivity)
	if math.Abs(r4-2*r1)/r1 > 1e-12 {
		t.Fatalf("Rs scaling: Rs(4GHz)=%g want 2·Rs(1GHz)=%g", r4, 2*r1)
	}
	// Copper at 1 GHz: Rs ≈ 8.1 mΩ/sq.
	if math.Abs(r1-8.12e-3)/8.12e-3 > 0.02 {
		t.Fatalf("Rs(1GHz) = %g, want ≈ 8.12 mΩ", r1)
	}
}
