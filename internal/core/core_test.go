package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"roughsim/internal/mom"
	"roughsim/internal/resilience"
	"roughsim/internal/rng"
	"roughsim/internal/surface"
	"roughsim/internal/telemetry"
	"roughsim/internal/units"
)

const um = 1e-6

func TestPaperMaterial(t *testing.T) {
	m := PaperMaterial()
	if m.EpsR != 3.7 {
		t.Fatalf("εr = %g, want 3.7", m.EpsR)
	}
	if math.Abs(m.Rho-1.67e-8)/1.67e-8 > 1e-12 {
		t.Fatalf("ρ = %g, want 1.67 μΩ·cm", m.Rho)
	}
	// Skin depth of the paper's conductor at 5 GHz ≈ 0.92 μm.
	if d := m.SkinDepth(5 * units.GHz); math.Abs(d-0.92e-6)/0.92e-6 > 0.01 {
		t.Fatalf("δ(5GHz) = %g", d)
	}
}

func TestEmpiricalFormula(t *testing.T) {
	// Limits of eq. (1): K → 1 for σ ≪ δ, K → 2 for σ ≫ δ.
	if k, _ := Empirical(0.01*um, 10*um); math.Abs(k-1) > 1e-4 {
		t.Fatalf("smooth limit K = %g", k)
	}
	if k, _ := Empirical(100*um, 0.1*um); math.Abs(k-2) > 1e-4 {
		t.Fatalf("rough limit K = %g, want → 2", k)
	}
	// At σ = δ: K = 1 + (2/π)·atan(1.4).
	want := 1 + 2/math.Pi*math.Atan(1.4)
	if k, err := Empirical(1*um, 1*um); err != nil || math.Abs(k-want) > 1e-12 {
		t.Fatalf("K(σ=δ) = %g (err %v), want %g", k, err, want)
	}
	// Out-of-domain inputs are returned errors, not panics.
	if _, err := Empirical(1*um, 0); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("expected invalid-input error for δ=0, got %v", err)
	}
	if _, err := Empirical(1*um, math.NaN()); err == nil {
		t.Fatal("expected error for NaN δ")
	}
}

func TestNewSolverRejectsBadInput(t *testing.T) {
	if _, err := NewSolver(PaperMaterial(), 0, 8, mom.Options{}); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("expected invalid-input error for L=0, got %v", err)
	}
	if _, err := NewSolver(PaperMaterial(), 5*um, 1, mom.Options{}); err == nil {
		t.Fatal("expected error for M=1")
	}
	if _, err := NewSolverTabulated(PaperMaterial(), 5*um, 8, 0, mom.Options{}); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatal("expected invalid-input error for zspan=0")
	}
}

func TestSweepCancelled(t *testing.T) {
	s, err := NewSolver(PaperMaterial(), 5*um, 8, mom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	freqs := []float64{1 * units.GHz, 2 * units.GHz, 3 * units.GHz}
	// A pre-cancelled context stops the sweep before any solve.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := s.SweepLossFactor(ctx, surface.NewFlat(5*um, 8), freqs); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled sweep did not stop promptly")
	}
	// An expired deadline is reported as DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := s.SweepLossFactor(dctx, surface.NewFlat(5*um, 8), freqs); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected context.DeadlineExceeded, got %v", err)
	}
}

func TestSolveStatsAccounting(t *testing.T) {
	s, err := NewSolver(PaperMaterial(), 5*um, 8, mom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Force the first chain stage to fail on every solve: the fallback
	// must win and the accounting must record both.
	s.Injector = resilience.NewInjector(resilience.FaultSpec{
		Op: mom.StageGMRES, Fraction: 1, Kind: resilience.KindConvergence,
	})
	k, err := s.LossFactor(surface.NewFlat(5*um, 8), 5*units.GHz)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1) > 1e-6 {
		t.Fatalf("flat K = %g, want 1", k)
	}
	st := s.Stats()
	if st.Solves < 2 { // flat reference + rough solve
		t.Fatalf("stats solves = %d, want ≥ 2", st.Solves)
	}
	if st.Fallbacks != st.Solves {
		t.Fatalf("every solve should have fallen back: %+v", st)
	}
	if st.StageFailures[mom.StageGMRES] != st.Solves {
		t.Fatalf("GMRES failures = %d, want %d", st.StageFailures[mom.StageGMRES], st.Solves)
	}
	if st.StageWins[mom.StageGMRESPrecond] != st.Solves {
		t.Fatalf("preconditioned-GMRES wins = %d, want %d (wins: %v)",
			st.StageWins[mom.StageGMRESPrecond], st.Solves, st.StageWins)
	}
}

func TestSolverRejectsMismatchedSurface(t *testing.T) {
	s, err := NewSolver(PaperMaterial(), 5*um, 8, mom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LossFactor(surface.NewFlat(5*um, 10), 1*units.GHz); err == nil {
		t.Fatal("expected grid mismatch error")
	}
	if _, err := s.LossFactor2D(surface.NewFlatProfile(4*um, 8), 1*units.GHz); err == nil {
		t.Fatal("expected 2D grid mismatch error")
	}
}

func TestCheckResolutionGuards(t *testing.T) {
	// A smooth long-wavelength surface passes…
	c := surface.NewGaussianCorr(1*um, 2*um)
	kl := surface.NewKL(c, 10*um, 16)
	smooth := kl.SampleTruncated(rng.New(3), 12)
	if _, err := CheckResolution(smooth); err != nil {
		t.Fatalf("smooth surface rejected: %v", err)
	}
	// …while a grid-scale sawtooth trips the guard.
	jag := surface.NewFlat(5*um, 12)
	for iy := 0; iy < 12; iy++ {
		for ix := 0; ix < 12; ix++ {
			if (ix+iy)%2 == 0 {
				jag.H[iy*12+ix] = 1.2 * um
			} else {
				jag.H[iy*12+ix] = -1.2 * um
			}
		}
	}
	if _, err := CheckResolution(jag); err == nil {
		t.Fatal("under-resolved surface not rejected")
	}
}

func TestLossFactorTabulatedMatchesExact(t *testing.T) {
	f := 5 * units.GHz
	c := surface.NewGaussianCorr(1*um, 1*um)
	L := 5 * um
	M := 16
	kl := surface.NewKL(c, L, M)
	surf := kl.SampleTruncated(rng.New(9), 12)

	exactSolver, err := NewSolver(PaperMaterial(), L, M, mom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tabSolver, err := NewSolverTabulated(PaperMaterial(), L, M, 10*um, mom.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ke, err := exactSolver.LossFactor(surf, f)
	if err != nil {
		t.Fatal(err)
	}
	kt, err := tabSolver.LossFactor(surf, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ke-kt) > 1e-5*ke {
		t.Fatalf("tabulated K = %g vs exact %g", kt, ke)
	}
	if ke <= 1 {
		t.Fatalf("K = %g, want > 1", ke)
	}
}

func TestFlatPabsCachedAndConcurrent(t *testing.T) {
	s, err := NewSolver(PaperMaterial(), 5*um, 8, mom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := 3 * units.GHz
	var wg sync.WaitGroup
	vals := make([]float64, 8)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.FlatPabs(f)
			if err != nil {
				t.Error(err)
				return
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	for _, v := range vals[1:] {
		if v != vals[0] {
			t.Fatal("concurrent FlatPabs returned different values")
		}
	}
	// Matches the analytic value within discretization error.
	want := mom.FlatPabsAnalytic(PaperMaterial().Params(f), 5*um)
	if math.Abs(vals[0]-want)/want > 0.05 {
		t.Fatalf("flat Pabs %g vs analytic %g", vals[0], want)
	}
}

func TestLossFactor2DFlatIsUnity(t *testing.T) {
	s, err := NewSolver(PaperMaterial(), 5*um, 24, mom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := s.LossFactor2D(surface.NewFlatProfile(5*um, 24), 5*units.GHz)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1) > 1e-9 {
		t.Fatalf("flat profile K = %g, want exactly 1 (same solve)", k)
	}
}

func TestFlatPabsSingleFlightMetrics(t *testing.T) {
	s, err := NewSolver(PaperMaterial(), 5*um, 8, mom.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewRegistry()
	s.Metrics = m
	f := 4 * units.GHz
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.FlatPabsCtx(context.Background(), f); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("core.flat_solves").Value(); got != 1 {
		t.Fatalf("flat_solves = %d, want 1", got)
	}
	if got := m.Counter("core.flat_hits").Value() + m.Counter("core.flat_shared").Value(); got != callers-1 {
		t.Fatalf("hits+shared = %d, want %d", got, callers-1)
	}
	if _, err := s.FlatPabsCtx(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("core.flat_solves").Value(); got != 1 {
		t.Fatalf("flat_solves after warm call = %d, want 1", got)
	}
}
