package core

import (
	"context"
	"math"
	"testing"

	"roughsim/internal/mom"
	"roughsim/internal/rng"
	"roughsim/internal/surface"
	"roughsim/internal/telemetry"
	"roughsim/internal/units"
)

// TestSolverFFTFastPath runs a production-style loss-factor solve on an
// admissible surface and asserts the acceptance invariant of the FFT
// fast path: both the flat reference and the rough solve win the
// fft-gmres stage, solve.stage_win.fft-gmres accounting records them,
// and zero dense matrices are materialized on the way — while the K
// value matches the dense chain.
func TestSolverFFTFastPath(t *testing.T) {
	L := 5 * um
	M := 12
	f := 5 * units.GHz
	c := surface.NewGaussianCorr(0.01*um, L/4)
	surf := surface.NewKL(c, L, M).SampleTruncated(rng.New(17), 10)

	opt := mom.Options{FFTMinCells: 1} // production gates, test-size grid
	s, err := NewSolverTabulated(PaperMaterial(), L, M, 10*um, opt)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s.Metrics = reg

	k, err := s.LossFactorCtx(context.Background(), surf, f)
	if err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if got := st.StageWins[mom.StageFFT]; got != 2 { // flat reference + rough solve
		t.Fatalf("fft-gmres wins = %d (stats %+v), want 2", got, st)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0", st.Fallbacks)
	}
	if got := reg.Counter("solve.stage_win." + mom.StageFFT).Value(); got != 2 {
		t.Fatalf("solve.stage_win.fft-gmres = %d, want 2", got)
	}
	if got := reg.Counter("solve.dense_materialized").Value(); got != 0 {
		t.Fatalf("dense materializations = %d, want 0", got)
	}
	if got := reg.Counter("solve.fft_admitted").Value(); got != 2 {
		t.Fatalf("solve.fft_admitted = %d, want 2", got)
	}

	// The dense chain (FFT stage disabled) must agree to the model
	// tolerance — the ratio K cancels most of the residual model error.
	dOpt := opt
	dOpt.FFTOrder = -1
	ds, err := NewSolverTabulated(PaperMaterial(), L, M, 10*um, dOpt)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := ds.LossFactorCtx(context.Background(), surf, f)
	if err != nil {
		t.Fatal(err)
	}
	if dev := math.Abs(k-kd) / kd; dev > 1e-6 {
		t.Fatalf("fft-path K %g vs dense-path K %g (rel dev %g)", k, kd, dev)
	}
	if got := ds.Stats().StageWins[mom.StageFFT]; got != 0 {
		t.Fatalf("disabled FFT stage still won %d solves", got)
	}
}

// TestSolverFFTRejectionAccounting checks that an over-bound surface is
// recorded as a skipped fft-gmres stage (not a failure or a fallback)
// and solved through the dense chain.
func TestSolverFFTRejectionAccounting(t *testing.T) {
	L := 5 * um
	M := 12
	f := 5 * units.GHz
	c := surface.NewGaussianCorr(0.08*um, L/4)
	surf := surface.NewKL(c, L, M).SampleTruncated(rng.New(17), 10)

	opt := mom.Options{FFTMinCells: 1}
	s, err := NewSolverTabulated(PaperMaterial(), L, M, 10*um, opt)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s.Metrics = reg

	if _, err := s.LossFactorCtx(context.Background(), surf, f); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// The flat reference is admissible (zero height range) and wins the
	// FFT stage; the rough solve is rejected and falls to dense GMRES.
	if got := st.StageSkips[mom.StageFFT]; got != 1 {
		t.Fatalf("fft-gmres skips = %d (stats %+v), want 1", got, st)
	}
	if got := st.StageFailures[mom.StageFFT]; got != 0 {
		t.Fatalf("skipped stage recorded %d failures", got)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("gated-off FFT stage counted as %d fallbacks", st.Fallbacks)
	}
	if got := st.StageWins[mom.StageGMRES]; got != 1 {
		t.Fatalf("dense gmres wins = %d, want 1", got)
	}
	if got := reg.Counter("solve.stage_skip." + mom.StageFFT).Value(); got != 1 {
		t.Fatalf("solve.stage_skip.fft-gmres = %d, want 1", got)
	}
	if got := reg.Counter("solve.fft_rejected").Value(); got != 1 {
		t.Fatalf("solve.fft_rejected = %d, want 1", got)
	}
	if got := reg.Counter("solve.dense_materialized").Value(); got != 1 {
		t.Fatalf("dense materializations = %d, want 1", got)
	}
}
