// Package core orchestrates the paper's simulation methodology: given a
// surface realization (or profile) and a frequency, it assembles and
// solves the SWM integral equations (Sec. III) and reports the loss
// enhancement factor K = Pr/Ps of eqs. (10)–(11).
//
// Ps is obtained by solving the same discretization on a flat surface,
// which cancels both the arbitrary scalar normalization (the |T|² of the
// transmitted flux) and the leading quadrature bias; the analytic
// Ps = |T|²·L²/(2δ) is available through mom.FlatPabsAnalytic and is
// verified against the numerical flat solve in the tests.
//
// Rough solves run through the resilient fallback chain of
// mom.SolveResilient (GMRES → preconditioned GMRES → BiCGSTAB → dense
// LU) with per-stage accounting aggregated on the Solver, and every
// entry point takes a context for cancellation and timeouts.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/mom"
	"roughsim/internal/resilience"
	"roughsim/internal/surface"
	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
	"roughsim/internal/units"
)

// observeStage records a stage duration into the labeled per-stage
// histogram every instrumented tier shares (sweep.stage_seconds) — the
// series the CI smoke test asserts on after a sweep.
func observeStage(m *telemetry.Registry, stage string, seconds float64) {
	m.HistogramL("sweep.stage_seconds", nil, telemetry.L("stage", stage)).Observe(seconds)
}

// Material describes the two-medium stack of the paper's experiments.
type Material struct {
	EpsR float64 // dielectric relative permittivity (paper: 3.7, SiO₂)
	Rho  float64 // conductor resistivity in Ω·m (paper: 1.67 μΩ·cm)
}

// PaperMaterial returns the stack used for every experiment in Sec. IV.
func PaperMaterial() Material {
	return Material{EpsR: 3.7, Rho: units.CopperResistivity}
}

// SkinDepth returns δ(f) for the conductor.
func (m Material) SkinDepth(f float64) float64 {
	return units.SkinDepth(m.Rho, f, units.Mu0)
}

// Params returns the SWM parameters (k₁, k₂, β) at frequency f.
func (m Material) Params(f float64) mom.Params {
	return mom.Params{
		K1:   complex(units.WavenumberDielectric(f, m.EpsR), 0),
		K2:   units.WavenumberConductor(f, m.Rho),
		Beta: units.Beta(f, m.EpsR, m.Rho),
	}
}

// SolveStats aggregates the per-stage accounting of every resilient
// solve a Solver has run.
type SolveStats struct {
	Solves int // completed resilient solves
	// Fallbacks counts solves not won by a first-line stage (the FFT
	// operator stage or plain GMRES): a fallback means an iterative
	// stage actually failed, not that the FFT stage was gated off.
	Fallbacks     int
	StageWins     map[string]int // winning stage → count
	StageFailures map[string]int // failed stage attempts → count
	// StageSkips counts stages gated off by a deterministic
	// admissibility check (e.g. fft-gmres on an over-bound surface) —
	// recorded rejections, not execution failures.
	StageSkips map[string]int
}

// Solver computes loss enhancement factors for surfaces over a fixed
// patch discretization; flat-reference solutions are cached per
// frequency. Solver is safe for concurrent use.
type Solver struct {
	Mat Material
	L   float64
	M   int
	Opt mom.Options

	// ZSpan > 0 enables tabulated assembly: the Green's functions are
	// tabulated once per frequency (Chebyshev in Δz over ±ZSpan) and
	// reused across every surface realization — the fast path for SSCM
	// and Monte-Carlo sweeps. ZSpan must bound ~2.2× the largest |f|
	// of any surface solved.
	ZSpan float64

	// SolveTol is the accepted relative residual of the resilient solve
	// chain (default 1e-8).
	SolveTol float64
	// Policy controls per-stage retries of the fallback chain.
	Policy resilience.Policy
	// Injector deterministically fails solver stages for testing; nil
	// injects nothing.
	Injector *resilience.Injector

	// Metrics, when non-nil, receives solve.* telemetry (latency
	// histogram, fallback-stage counters, flat-reference cache hits).
	// Set it before the first solve; it is read without locking.
	Metrics *telemetry.Registry

	key uint64 // running solve counter, the injector key

	// tables caches the per-frequency Green's-function table sets. It
	// defaults to a private cache and can be replaced (before the first
	// solve) by a shared one, so sweep points, solvers and roughsimd
	// jobs at overlapping frequencies build each table exactly once.
	tables *mom.TableCache

	mu        sync.Mutex
	flatPabs  map[flatKey]float64
	flatCalls map[flatKey]*flatCall
	stats     SolveStats
}

type flatKey struct {
	f  float64
	tw bool // 2D (profile) reference
}

// flatCall is one in-flight flat-reference solve; waiters share it
// instead of duplicating the solve (N concurrent collocation nodes at a
// new frequency would otherwise each solve the same flat system).
type flatCall struct {
	done chan struct{}
	v    float64
	err  error
}

// NewSolver builds a Solver for an L-periodic patch with an M×M grid.
func NewSolver(mat Material, L float64, M int, opt mom.Options) (*Solver, error) {
	if L <= 0 || M < 2 {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "core.NewSolver",
			"needs L > 0, M ≥ 2 (got L=%g, M=%d)", L, M)
	}
	return &Solver{Mat: mat, L: L, M: M, Opt: opt,
		flatPabs: map[flatKey]float64{}, flatCalls: map[flatKey]*flatCall{},
		tables: mom.NewTableCache(0, nil)}, nil
}

// NewSolverTabulated builds a Solver that assembles through per-frequency
// Green's-function tables; zspan must bound 2.2× the height range of the
// surfaces it will solve.
func NewSolverTabulated(mat Material, L float64, M int, zspan float64, opt mom.Options) (*Solver, error) {
	s, err := NewSolver(mat, L, M, opt)
	if err != nil {
		return nil, err
	}
	if zspan <= 0 {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "core.NewSolverTabulated",
			"needs zspan > 0 (got %g)", zspan)
	}
	s.ZSpan = zspan
	return s, nil
}

// Stats returns a snapshot of the aggregated solve accounting.
func (s *Solver) Stats() SolveStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.StageWins = make(map[string]int, len(s.stats.StageWins))
	for k, v := range s.stats.StageWins {
		out.StageWins[k] = v
	}
	out.StageFailures = make(map[string]int, len(s.stats.StageFailures))
	for k, v := range s.stats.StageFailures {
		out.StageFailures[k] = v
	}
	out.StageSkips = make(map[string]int, len(s.stats.StageSkips))
	for k, v := range s.stats.StageSkips {
		out.StageSkips[k] = v
	}
	return out
}

// record folds one solve report into the aggregate accounting.
func (s *Solver) record(rep *mom.SolveReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats.StageWins == nil {
		s.stats.StageWins = map[string]int{}
		s.stats.StageFailures = map[string]int{}
		s.stats.StageSkips = map[string]int{}
	}
	s.stats.Solves++
	s.Metrics.Counter("solve.count").Inc()
	if rep.Winner != "" {
		s.stats.StageWins[rep.Winner]++
		s.Metrics.Counter("solve.stage_win." + rep.Winner).Inc()
		if rep.Winner != mom.StageFFT && rep.Winner != mom.StageGMRES {
			s.stats.Fallbacks++
			s.Metrics.Counter("solve.fallbacks").Inc()
		}
	}
	for _, a := range rep.Attempts {
		switch {
		case a.Skipped:
			s.stats.StageSkips[a.Stage]++
			s.Metrics.Counter("solve.stage_skip." + a.Stage).Inc()
		case a.Err != nil:
			s.stats.StageFailures[a.Stage]++
			s.Metrics.Counter("solve.stage_failure." + a.Stage).Inc()
		}
	}
}

// solve runs the resilient chain on one assembled system and folds its
// accounting into the solver stats.
func (s *Solver) solve(ctx context.Context, sys *mom.System) (*mom.Solution, error) {
	_, sp := trace.StartSpan(ctx, "mom.solve")
	start := time.Now()
	sol, err := sys.SolveResilient(ctx, mom.SolveOptions{
		Tol:      s.SolveTol,
		Policy:   s.Policy,
		Injector: s.Injector,
		Key:      atomic.AddUint64(&s.key, 1) - 1,
		Metrics:  s.Metrics,
	})
	elapsed := time.Since(start).Seconds()
	s.Metrics.Histogram("solve.seconds").Observe(elapsed)
	observeStage(s.Metrics, "mom.solve", elapsed)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		s.Metrics.Counter("solve.errors").Inc()
		return nil, err
	}
	if sol.Report != nil && sol.Report.Winner != "" {
		sp.SetAttr("winner", sol.Report.Winner)
		sp.SetAttr("attempts", len(sol.Report.Attempts))
	}
	sp.End()
	s.record(sol.Report)
	return sol, nil
}

// TableCache returns the solver's Green's-function table cache.
func (s *Solver) TableCache() *mom.TableCache { return s.tables }

// SetTableCache replaces the solver's private table cache by a shared
// one. Call it before the first solve.
func (s *Solver) SetTableCache(tc *mom.TableCache) {
	if tc != nil {
		s.tables = tc
	}
}

// tableFor returns (building on first use, single-flighted across
// callers) the frequency's table set. The build runs outside any solver
// lock, so tables for distinct frequencies build in parallel.
func (s *Solver) tableFor(ctx context.Context, f float64) *mom.TableSet {
	return s.tables.GetCtx(ctx, s.Mat.Params(f), s.L, s.M, s.ZSpan, s.Opt)
}

// assemble picks the exact or tabulated path.
func (s *Solver) assemble(ctx context.Context, surf *surface.Surface, f float64) (*mom.System, error) {
	return s.AssembleSurfaceCtx(ctx, surf, f, 0)
}

// AssembleSurface assembles the MoM system for surf at f through the
// solver's configured path (tabulated when ZSpan > 0). workers > 0
// overrides the solver's assembly parallelism — the batched sweep
// engine splits its worker budget across concurrent points.
func (s *Solver) AssembleSurface(surf *surface.Surface, f float64, workers int) (*mom.System, error) {
	return s.AssembleSurfaceCtx(context.Background(), surf, f, workers)
}

// AssembleSurfaceCtx is AssembleSurface with trace propagation: the
// assembly runs under a "mom.assemble" span (and any table build it
// forces under a nested "tables.build" span) of the context's trace.
func (s *Solver) AssembleSurfaceCtx(ctx context.Context, surf *surface.Surface, f float64, workers int) (*mom.System, error) {
	opt := s.Opt
	if workers > 0 {
		opt.Workers = workers
	}
	ctx, sp := trace.StartSpan(ctx, "mom.assemble")
	sp.SetAttr("f", f)
	start := time.Now()
	defer func() {
		observeStage(s.Metrics, "mom.assemble", time.Since(start).Seconds())
		sp.End()
	}()
	if s.ZSpan > 0 {
		return mom.AssembleTabulated(surf, s.Mat.Params(f), s.tableFor(ctx, f), opt)
	}
	return mom.Assemble(surf, s.Mat.Params(f), opt), nil
}

// PrepareSurface is PrepareSurfaceCtx without trace propagation.
func (s *Solver) PrepareSurface(surf *surface.Surface, f float64, workers int) (*mom.System, error) {
	return s.PrepareSurfaceCtx(context.Background(), surf, f, workers)
}

// PrepareSurfaceCtx builds the system for surf at f through the
// matrix-free operator path: when the surface passes the FFT
// admissibility gates the FFT-accelerated operator is constructed up
// front (under a "mom.fft.build" span, through the frequency's Green's
// tables when ZSpan > 0), and the dense matrix is only assembled — via
// the solver's configured dense path, counted in
// solve.dense_materialized — if a dense fallback stage of the resilient
// chain actually runs. A solve won by the fft-gmres stage therefore
// performs zero dense-matrix assemblies.
func (s *Solver) PrepareSurfaceCtx(ctx context.Context, surf *surface.Surface, f float64, workers int) (*mom.System, error) {
	opt := s.Opt
	if workers > 0 {
		opt.Workers = workers
	}
	var ts *mom.TableSet
	if s.ZSpan > 0 {
		ts = s.tableFor(ctx, f)
	}
	dense := func() (*cmplxmat.Matrix, error) {
		s.Metrics.Counter("solve.dense_materialized").Inc()
		sys, err := s.AssembleSurfaceCtx(ctx, surf, f, workers)
		if err != nil {
			return nil, err
		}
		return sys.Matrix, nil
	}
	_, sp := trace.StartSpan(ctx, "mom.fft.build")
	sp.SetAttr("f", f)
	start := time.Now()
	sys := mom.NewOperatorSystem(surf, s.Mat.Params(f), opt, ts, dense)
	elapsed := time.Since(start).Seconds()
	if sys.FFTAdmitted() {
		s.Metrics.Counter("solve.fft_admitted").Inc()
		s.Metrics.Histogram("mom.fft.build_seconds").Observe(elapsed)
		observeStage(s.Metrics, "mom.fft.build", elapsed)
	} else {
		s.Metrics.Counter("solve.fft_rejected").Inc()
		if rej := sys.FFTRejection(); rej != nil {
			sp.SetAttr("rejected", rej.Error())
		}
	}
	sp.End()
	return sys, nil
}

// SolveSystem runs the resilient fallback chain on a system assembled
// against this solver's discretization, folding the per-stage report
// into the solver's aggregate stats.
func (s *Solver) SolveSystem(ctx context.Context, sys *mom.System) (*mom.Solution, error) {
	return s.solve(ctx, sys)
}

// FlatPabs returns (computing and caching on first use) the numerically
// solved flat-surface absorbed power at frequency f.
func (s *Solver) FlatPabs(f float64) (float64, error) {
	return s.FlatPabsCtx(context.Background(), f)
}

// FlatPabsCtx is FlatPabs honoring cancellation. Concurrent callers at
// the same frequency share a single solve (errors are not cached: every
// waiter of a failed solve receives the error and the next call
// retries). A waiter whose own ctx expires stops waiting with its ctx
// error while the computation continues for the others.
func (s *Solver) FlatPabsCtx(ctx context.Context, f float64) (float64, error) {
	key := flatKey{f, false}
	s.mu.Lock()
	if v, ok := s.flatPabs[key]; ok {
		s.mu.Unlock()
		s.Metrics.Counter("core.flat_hits").Inc()
		return v, nil
	}
	if cl, ok := s.flatCalls[key]; ok {
		s.mu.Unlock()
		s.Metrics.Counter("core.flat_shared").Inc()
		select {
		case <-cl.done:
			return cl.v, cl.err
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	cl := &flatCall{done: make(chan struct{})}
	s.flatCalls[key] = cl
	s.mu.Unlock()
	s.Metrics.Counter("core.flat_solves").Inc()

	cl.v, cl.err = s.flatSolve(ctx, f)
	s.mu.Lock()
	delete(s.flatCalls, key)
	if cl.err == nil {
		s.flatPabs[key] = cl.v
	}
	s.mu.Unlock()
	close(cl.done)
	return cl.v, cl.err
}

// flatSolve runs the flat-reference assembly and solve at f.
func (s *Solver) flatSolve(ctx context.Context, f float64) (float64, error) {
	ctx, sp := trace.StartSpan(ctx, "flat.reference")
	sp.SetAttr("f", f)
	start := time.Now()
	defer func() {
		observeStage(s.Metrics, "flat.reference", time.Since(start).Seconds())
		sp.End()
	}()
	sys, err := s.PrepareSurfaceCtx(ctx, surface.NewFlat(s.L, s.M), f, 0)
	if err != nil {
		return 0, fmt.Errorf("core: flat reference at f=%g: %w", f, err)
	}
	sol, err := s.solve(ctx, sys)
	if err != nil {
		return 0, fmt.Errorf("core: flat reference at f=%g: %w", f, err)
	}
	return sol.Pabs, nil
}

// CheckResolution reports whether the grid resolves the surface well
// enough for the collocation discretization to be trusted: the curvature
// contribution to the double-layer diagonal must stay well below the ½
// jump term. It returns the worst curvature diagonal term.
func CheckResolution(surf *surface.Surface) (worstCurv float64, err error) {
	fxx, fyy, _ := surf.SecondDerivs()
	h := surf.Step()
	for i := range fxx {
		if v := math.Abs((fxx[i] + fyy[i]) * h * math.Log(1+math.Sqrt2) / (4 * math.Pi)); v > worstCurv {
			worstCurv = v
		}
	}
	// The curvature diagonal is a legitimate (and accurate) part of the
	// operator; only when it approaches the ½ jump term does the locally
	// flat collocation model itself break down. The paper-resolution
	// grids (Δ = η/8) stay below ~0.2 for every experiment in Sec. IV.
	if worstCurv > 0.45 {
		return worstCurv, resilience.Errorf(resilience.KindInvalidInput, "core.CheckResolution",
			"surface under-resolved: curvature self-term %.2f rivals the ½ jump term (refine the grid or band-limit the surface)", worstCurv)
	}
	return worstCurv, nil
}

// LossFactor returns K = Pr/Ps for one surface realization at f. The
// surface must share the solver's L and M.
func (s *Solver) LossFactor(surf *surface.Surface, f float64) (float64, error) {
	return s.LossFactorCtx(context.Background(), surf, f)
}

// LossFactorCtx is LossFactor honoring cancellation and deadlines: the
// context is checked before assembly and between the stages of the
// fallback chain.
func (s *Solver) LossFactorCtx(ctx context.Context, surf *surface.Surface, f float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if surf.L != s.L || surf.M != s.M {
		return 0, resilience.Errorf(resilience.KindInvalidInput, "core.LossFactor",
			"surface grid %gx%d does not match solver %gx%d", surf.L, surf.M, s.L, s.M)
	}
	if _, err := CheckResolution(surf); err != nil {
		return 0, err
	}
	flat, err := s.FlatPabsCtx(ctx, f)
	if err != nil {
		return 0, err
	}
	sys, err := s.PrepareSurfaceCtx(ctx, surf, f, 0)
	if err != nil {
		return 0, fmt.Errorf("core: rough assembly at f=%g: %w", f, err)
	}
	sol, err := s.solve(ctx, sys)
	if err != nil {
		return 0, fmt.Errorf("core: rough solve at f=%g: %w", f, err)
	}
	return sol.Pabs / flat, nil
}

// SweepLossFactor computes K(f) for one surface across a frequency list,
// checking the context between frequencies (and inside every solve), so
// a cancelled context stops the sweep promptly with ctx.Err().
func (s *Solver) SweepLossFactor(ctx context.Context, surf *surface.Surface, freqs []float64) ([]float64, error) {
	out := make([]float64, len(freqs))
	for i, f := range freqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		k, err := s.LossFactorCtx(ctx, surf, f)
		if err != nil {
			return nil, fmt.Errorf("core: sweep at f=%g: %w", f, err)
		}
		out[i] = k
	}
	return out, nil
}

// FlatPabs2D is the profile (2D SWM) flat reference.
func (s *Solver) FlatPabs2D(f float64) (float64, error) {
	s.mu.Lock()
	if v, ok := s.flatPabs[flatKey{f, true}]; ok {
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()
	sol, err := mom.Assemble2D(surface.NewFlatProfile(s.L, s.M), s.Mat.Params(f), s.Opt).Solve()
	if err != nil {
		return 0, fmt.Errorf("core: 2D flat reference at f=%g: %w", f, err)
	}
	s.mu.Lock()
	s.flatPabs[flatKey{f, true}] = sol.Pabs
	s.mu.Unlock()
	return sol.Pabs, nil
}

// LossFactor2D returns K for a 1-D profile (surface uniform along y)
// using the 2D SWM formulation of Fig. 6.
func (s *Solver) LossFactor2D(prof *surface.Profile, f float64) (float64, error) {
	if prof.L != s.L || prof.M != s.M {
		return 0, resilience.Errorf(resilience.KindInvalidInput, "core.LossFactor2D",
			"profile grid does not match solver")
	}
	flat, err := s.FlatPabs2D(f)
	if err != nil {
		return 0, err
	}
	sol, err := mom.Assemble2D(prof, s.Mat.Params(f), s.Opt).Solve()
	if err != nil {
		return 0, fmt.Errorf("core: 2D rough solve at f=%g: %w", f, err)
	}
	return sol.Pabs / flat, nil
}

// Empirical evaluates the Morgan/Hammerstad formula (1):
// Pr/Ps = 1 + (2/π)·atan(1.4·(σ/δ)²).
func Empirical(sigma, delta float64) (float64, error) {
	if !(delta > 0) || math.IsNaN(sigma) {
		return 0, resilience.Errorf(resilience.KindInvalidInput, "core.Empirical",
			"needs δ > 0 and finite σ (got σ=%g, δ=%g)", sigma, delta)
	}
	r := sigma / delta
	return 1 + 2/math.Pi*math.Atan(1.4*r*r), nil
}

// EmpiricalAt evaluates formula (1) at frequency f for the material.
func (m Material) EmpiricalAt(sigma, f float64) (float64, error) {
	return Empirical(sigma, m.SkinDepth(f))
}
