package eigen

import (
	"math"
	"math/rand"
	"testing"
)

func TestJacobiDiagonalMatrix(t *testing.T) {
	n := 4
	a := make([]float64, n*n)
	want := []float64{3, -1, 7, 0.5}
	for i := 0; i < n; i++ {
		a[i*n+i] = want[i]
	}
	vals, vecs, err := SymmetricJacobi(a, n)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted descending: 7, 3, 0.5, −1.
	exp := []float64{7, 3, 0.5, -1}
	for i, v := range vals {
		if math.Abs(v-exp[i]) > 1e-12 {
			t.Errorf("val[%d] = %g, want %g", i, v, exp[i])
		}
	}
	// Eigenvectors are unit coordinate vectors.
	for _, vec := range vecs {
		var nrm float64
		for _, x := range vec {
			nrm += x * x
		}
		if math.Abs(nrm-1) > 1e-12 {
			t.Errorf("eigenvector not unit norm: %g", nrm)
		}
	}
}

func TestJacobiKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := []float64{2, 1, 1, 2}
	vals, vecs, err := SymmetricJacobi(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("vals = %v, want [3 1]", vals)
	}
	// First eigenvector ∝ (1,1)/√2.
	v := vecs[0]
	if math.Abs(math.Abs(v[0])-1/math.Sqrt2) > 1e-10 || math.Abs(v[0]-v[1]) > 1e-10 {
		t.Fatalf("vec0 = %v, want ±(1,1)/√2", v)
	}
}

func makeRandomSymmetric(rng *rand.Rand, n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a[i*n+j], a[j*n+i] = v, v
		}
	}
	return a
}

func TestJacobiReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{3, 8, 20, 40} {
		a := makeRandomSymmetric(rng, n)
		vals, vecs, err := SymmetricJacobi(a, n)
		if err != nil {
			t.Fatal(err)
		}
		// Check A·v = λ·v for each pair, and orthonormality.
		for k := 0; k < n; k++ {
			v := vecs[k]
			var resid float64
			for i := 0; i < n; i++ {
				var av float64
				for j := 0; j < n; j++ {
					av += a[i*n+j] * v[j]
				}
				resid += (av - vals[k]*v[i]) * (av - vals[k]*v[i])
			}
			if math.Sqrt(resid) > 1e-9*(1+math.Abs(vals[k])) {
				t.Errorf("n=%d k=%d: |Av − λv| = %g", n, k, math.Sqrt(resid))
			}
			for k2 := 0; k2 <= k; k2++ {
				var dot float64
				for i := 0; i < n; i++ {
					dot += v[i] * vecs[k2][i]
				}
				want := 0.0
				if k2 == k {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					t.Errorf("n=%d: ⟨v%d,v%d⟩ = %g, want %g", n, k, k2, dot, want)
				}
			}
		}
		// Trace preservation.
		var tr, sum float64
		for i := 0; i < n; i++ {
			tr += a[i*n+i]
		}
		for _, v := range vals {
			sum += v
		}
		if math.Abs(tr-sum) > 1e-9*(1+math.Abs(tr)) {
			t.Errorf("n=%d: trace %g vs eigenvalue sum %g", n, tr, sum)
		}
	}
}

func TestJacobiRejectsAsymmetric(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if _, _, err := SymmetricJacobi(a, 2); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
}

func TestTridiagQLMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 15
	d := make([]float64, n)
	e := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = rng.NormFloat64()
		if i > 0 {
			e[i] = rng.NormFloat64()
		}
	}
	// Dense copy for Jacobi.
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = d[i]
		if i > 0 {
			a[i*n+i-1], a[(i-1)*n+i] = e[i], e[i]
		}
	}
	jv, _, err := SymmetricJacobi(a, n)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, n*n)
	for i := 0; i < n; i++ {
		z[i*n+i] = 1
	}
	dd := append([]float64(nil), d...)
	ee := append([]float64(nil), e...)
	if err := TridiagQL(dd, ee, z, n); err != nil {
		t.Fatal(err)
	}
	// Sort QL eigenvalues descending and compare.
	got := append([]float64(nil), dd[:n]...)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if got[j] > got[i] {
				got[i], got[j] = got[j], got[i]
			}
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-jv[i]) > 1e-9*(1+math.Abs(jv[i])) {
			t.Errorf("eigenvalue %d: QL %g vs Jacobi %g", i, got[i], jv[i])
		}
	}
}

func TestTridiagQLEigenvectors(t *testing.T) {
	// Verify T·z_col = λ·z_col for a small tridiagonal system.
	n := 8
	d0 := make([]float64, n)
	e0 := make([]float64, n)
	for i := 0; i < n; i++ {
		d0[i] = 2
		if i > 0 {
			e0[i] = -1
		}
	}
	z := make([]float64, n*n)
	for i := 0; i < n; i++ {
		z[i*n+i] = 1
	}
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	if err := TridiagQL(d, e, z, n); err != nil {
		t.Fatal(err)
	}
	// Known spectrum of the 1D Laplacian: 2 − 2·cos(kπ/(n+1)).
	want := make([]float64, n)
	for k := 1; k <= n; k++ {
		want[k-1] = 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
	}
	for _, w := range want {
		found := false
		for _, g := range d[:n] {
			if math.Abs(g-w) < 1e-10 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing eigenvalue %g in %v", w, d[:n])
		}
	}
	// Residual check for each column.
	for c := 0; c < n; c++ {
		var resid float64
		for i := 0; i < n; i++ {
			var tv float64
			tv += d0[i] * z[i*n+c]
			if i > 0 {
				tv += e0[i] * z[(i-1)*n+c]
			}
			if i < n-1 {
				tv += e0[i+1] * z[(i+1)*n+c]
			}
			r := tv - d[c]*z[i*n+c]
			resid += r * r
		}
		if math.Sqrt(resid) > 1e-10 {
			t.Errorf("column %d residual %g", c, math.Sqrt(resid))
		}
	}
}
