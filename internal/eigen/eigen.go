// Package eigen implements the real symmetric eigensolvers used by the
// Karhunen–Loève expansion (dense covariance matrices) and by the
// Golub–Welsch construction of Gaussian quadrature rules (symmetric
// tridiagonal Jacobi matrices).
package eigen

import (
	"errors"
	"math"
	"sort"
)

// SymmetricJacobi diagonalizes a dense symmetric n×n matrix given in
// row-major storage, returning eigenvalues in descending order and the
// corresponding orthonormal eigenvectors as rows of the second return
// (vecs[k] is the eigenvector for vals[k]).
//
// The cyclic Jacobi rotation method is O(n³) per sweep but bullet-proof
// for the modest (n ≤ a few thousand) covariance matrices the KL
// expansion produces.
func SymmetricJacobi(a []float64, n int) (vals []float64, vecs [][]float64, err error) {
	if len(a) != n*n {
		return nil, nil, errors.New("eigen: matrix storage length mismatch")
	}
	// Work on a copy.
	m := append([]float64(nil), a...)
	// Symmetry check (cheap insurance against assembly bugs upstream).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Abs(m[i*n+j] - m[j*n+i])
			scale := math.Abs(m[i*n+j]) + math.Abs(m[j*n+i]) + 1
			if d > 1e-9*scale {
				return nil, nil, errors.New("eigen: matrix is not symmetric")
			}
			// Enforce exact symmetry so rotations stay consistent.
			avg := 0.5 * (m[i*n+j] + m[j*n+i])
			m[i*n+j], m[j*n+i] = avg, avg
		}
	}
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}

	offdiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += m[i*n+j] * m[i*n+j]
			}
		}
		return math.Sqrt(s)
	}
	norm := 0.0
	for _, x := range m {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	tol := 1e-14 * (norm + 1)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offdiag() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				if math.Abs(apq) <= tol/float64(n) {
					continue
				}
				app, aqq := m[p*n+p], m[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation J(p,q,θ) on both sides of m.
				for k := 0; k < n; k++ {
					akp, akq := m[k*n+p], m[k*n+q]
					m[k*n+p] = c*akp - s*akq
					m[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := m[p*n+k], m[q*n+k]
					m[p*n+k] = c*apk - s*aqk
					m[q*n+k] = s*apk + c*aqk
				}
				// Accumulate eigenvectors (columns of V).
				for k := 0; k < n; k++ {
					vkp, vkq := v[k*n+p], v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i*n+i]
	}
	// Sort descending, carrying eigenvectors.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	outVals := make([]float64, n)
	vecs = make([][]float64, n)
	for r, id := range idx {
		outVals[r] = vals[id]
		vec := make([]float64, n)
		for k := 0; k < n; k++ {
			vec[k] = v[k*n+id]
		}
		vecs[r] = vec
	}
	return outVals, vecs, nil
}

// TridiagQL computes all eigenvalues and (optionally) eigenvectors of a
// symmetric tridiagonal matrix with diagonal d (length n) and
// sub-diagonal e (length n, e[n−1] unused), using the QL algorithm with
// implicit shifts. On return d holds eigenvalues (unordered) and, if z is
// non-nil (an n×n row-major identity on input), z columns hold the
// eigenvectors. d and e are modified in place.
func TridiagQL(d, e []float64, z []float64, n int) error {
	if len(d) < n || len(e) < n {
		return errors.New("eigen: TridiagQL slice lengths")
	}
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-16*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return errors.New("eigen: TridiagQL failed to converge")
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			sg := r
			if g < 0 {
				sg = -r
			}
			g = d[m] - d[l] + e[l]/(g+sg)
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if z != nil {
					for k := 0; k < n; k++ {
						f := z[k*n+i+1]
						z[k*n+i+1] = s*z[k*n+i] + c*f
						z[k*n+i] = c*z[k*n+i] - s*f
					}
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}
