package greens

import (
	"math"
	"math/cmplx"

	"roughsim/internal/specfun"
)

// Periodic2D evaluates the 1-D-periodic (period L in x) scalar Green's
// function of the 2-D Helmholtz operator:
// G(Δ) = Σ_p (j/4)·H₀⁽¹⁾(k·R_p), R_p = |Δ − x̂pL|, Δ = (Δx, Δz) —
// the kernel of the 2D SWM variant (Fig. 6).
//
// As in the 3-D case, the dielectric medium uses the Ewald split
// (spectral erfc series + the exponential-integral spatial series of the
// 1-D-periodic Ewald method) and the conductor medium uses the directly
// summed image series with the complex-argument Hankel function.
type Periodic2D struct {
	K complex128
	L float64
	E float64

	useEwald bool
	nSpec    int
	nSpat    int
	qMax     int
}

// NewPeriodic2D builds an evaluator for wavenumber k and period L.
func NewPeriodic2D(k complex128, L float64) *Periodic2D {
	if L <= 0 {
		panic("greens: period must be positive")
	}
	g := &Periodic2D{K: k, L: L, E: math.SqrtPi / L}
	g.useEwald = imag(k)*L < ewaldLossThreshold
	if g.useEwald {
		g.nSpec = 3
		g.nSpat = 2
		// Spatial q-series converges like (|k|/2E)^{2q}/q!.
		x := cmplx.Abs(k) / (2 * g.E)
		g.qMax = 8 + int(3*x*x)
		if g.qMax > 40 {
			g.qMax = 40
		}
	} else {
		shells := int(math.Ceil(34/(imag(k)*L))) + 1
		if shells < 1 {
			shells = 1
		}
		if shells > 6 {
			shells = 6
		}
		g.nSpat = shells
	}
	return g
}

// UsesEwald reports the selected strategy.
func (g *Periodic2D) UsesEwald() bool { return g.useEwald }

// Eval returns G(Δx, Δz) away from lattice points.
func (g *Periodic2D) Eval(dx, dz float64) complex128 {
	v, _ := g.eval(dx, dz, false, false)
	return v
}

// EvalGrad returns G and ∇_Δ G = (∂G/∂Δx, ∂G/∂Δz).
func (g *Periodic2D) EvalGrad(dx, dz float64) (complex128, [2]complex128) {
	return g.eval(dx, dz, true, false)
}

// EvalRegularized returns lim_{Δ→0}[G(Δ) + ln|Δ|/(2π)]: the smooth
// remainder after subtracting the 2-D log singularity.
func (g *Periodic2D) EvalRegularized() complex128 {
	v, _ := g.eval(0, 0, false, true)
	return v
}

func (g *Periodic2D) eval(dx, dz float64, wantGrad, regularized bool) (complex128, [2]complex128) {
	dx = wrapPeriod(dx, g.L)
	if g.useEwald {
		vs, gs := g.spatialEwald(dx, dz, wantGrad, regularized)
		vp, gp := g.spectral(dx, dz, wantGrad)
		return vs + vp, [2]complex128{gs[0] + gp[0], gs[1] + gp[1]}
	}
	return g.direct(dx, dz, wantGrad, regularized)
}

// direct sums (j/4)H₀⁽¹⁾(kR_p) over image lines.
func (g *Periodic2D) direct(dx, dz float64, wantGrad, regularized bool) (complex128, [2]complex128) {
	var sum complex128
	var grad [2]complex128
	j4 := complex(0, 0.25)
	for p := -g.nSpat; p <= g.nSpat; p++ {
		rx := dx - float64(p)*g.L
		r := math.Hypot(rx, dz)
		if r == 0 {
			if !regularized {
				panic("greens: Eval at a lattice point; use EvalRegularized")
			}
			// (j/4)H₀(kR) + ln(R)/(2π) → j/4 − (ln(k/2)+γ)/(2π) as R→0.
			sum += j4 - (cmplx.Log(g.K/2)+complex(specfun.EulerGamma, 0))/complex(2*math.Pi, 0)
			continue
		}
		kr := g.K * complex(r, 0)
		sum += j4 * Hankel0(kr)
		if wantGrad {
			// d/dr (j/4)H₀(kr) = −(j/4)·k·H₁(kr).
			dvdr := -j4 * g.K * Hankel1(kr)
			grad[0] += dvdr * complex(rx/r, 0)
			grad[1] += dvdr * complex(dz/r, 0)
		}
	}
	return sum, grad
}

// spatialEwald evaluates the 1-D-periodic Ewald spatial series
// Σ_p (1/4π)·Σ_q (k/(2E))^{2q}/q!·E_{q+1}(R_p²E²)
// (Capolino–Wilton–Johnson form); its gradient uses
// d/dx E_{q+1}(x) = −E_q(x).
func (g *Periodic2D) spatialEwald(dx, dz float64, wantGrad, regularized bool) (complex128, [2]complex128) {
	var sum complex128
	var grad [2]complex128
	kk := g.K / complex(2*g.E, 0)
	kk2 := kk * kk
	for p := -g.nSpat; p <= g.nSpat; p++ {
		rx := dx - float64(p)*g.L
		r2 := rx*rx + dz*dz
		arg := r2 * g.E * g.E
		if r2 == 0 {
			if !regularized {
				panic("greens: Eval at a lattice point; use EvalRegularized")
			}
			// q = 0 term: (1/4π)E₁(E²R²) ~ −(1/4π)(γ + ln(E²R²))
			//            = −ln R/(2π) − (γ + 2 ln E)/(4π);
			// adding back ln R/(2π) leaves −(γ + 2 ln E)/(4π).
			// q ≥ 1 terms: E_{q+1}(0) = 1/q.
			reg := complex(-(specfun.EulerGamma+2*math.Log(g.E))/(4*math.Pi), 0)
			term := complex(1, 0)
			for q := 1; q <= g.qMax; q++ {
				term *= kk2 / complex(float64(q), 0)
				reg += term / complex(4*math.Pi*float64(q), 0)
			}
			sum += reg
			continue
		}
		term := complex(1, 0) // (k/2E)^{2q}/q! for q=0
		var v complex128
		var dvdr2 complex128 // derivative w.r.t. R²
		for q := 0; q <= g.qMax; q++ {
			if q > 0 {
				term *= kk2 / complex(float64(q), 0)
			}
			eq1 := specfun.En(q+1, arg)
			v += term * complex(eq1, 0)
			if wantGrad {
				// d/dR² [E_{q+1}(E²R²)] = −E²·E_q(E²R²).
				eq := specfun.En(q, arg)
				dvdr2 -= term * complex(g.E*g.E*eq, 0)
			}
		}
		sum += v / complex(4*math.Pi, 0)
		if wantGrad {
			d := dvdr2 / complex(4*math.Pi, 0)
			grad[0] += d * complex(2*rx, 0)
			grad[1] += d * complex(2*dz, 0)
		}
	}
	return sum, grad
}

// spectral evaluates the 1-D-periodic spectral Ewald series
// Σ_m e^{j·k_m·Δx}/(4Lγ_m)·[e^{+γΔz}erfc(γ/(2E)+ΔzE) + e^{−γΔz}erfc(γ/(2E)−ΔzE)],
// γ_m = sqrt(k_m² − k²) on the decaying branch, k_m = 2πm/L.
func (g *Periodic2D) spectral(dx, dz float64, wantGrad bool) (complex128, [2]complex128) {
	var sum complex128
	var grad [2]complex128
	e := complex(g.E, 0)
	for m := -g.nSpec; m <= g.nSpec; m++ {
		km := 2 * math.Pi * float64(m) / g.L
		gamma := decayBranchSqrt(complex(km*km, 0) - g.K*g.K)
		phase := cmplx.Exp(complex(0, km*dx))
		zc := complex(dz, 0)
		up := specfun.ExpMulErfc(gamma*zc, gamma/(2*e)+zc*e)
		dn := specfun.ExpMulErfc(-gamma*zc, gamma/(2*e)-zc*e)
		pref := phase / (complex(4*g.L, 0) * gamma)
		sum += pref * (up + dn)
		if wantGrad {
			grad[0] += complex(0, km) * pref * (up + dn)
			grad[1] += pref * gamma * (up - dn)
		}
	}
	return sum, grad
}
