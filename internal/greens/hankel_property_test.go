package greens

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestBesselWronskian(t *testing.T) {
	// J₁(x)·Y₀(x) − J₀(x)·Y₁(x) = 2/(πx): a stringent joint consistency
	// check of all four series/asymptotic implementations on the real
	// axis (via H = J + jY ⇒ J = Re H, Y = Im H).
	for _, x := range []float64{0.2, 0.7, 1.5, 3, 5, 8, 8.9, 9.1, 12, 30} {
		h0 := Hankel0(complex(x, 0))
		h1 := Hankel1(complex(x, 0))
		j0, y0 := real(h0), imag(h0)
		j1, y1 := real(h1), imag(h1)
		got := j1*y0 - j0*y1
		want := 2 / (math.Pi * x)
		if math.Abs(got-want)/want > 1e-8 {
			t.Errorf("Wronskian at x=%g: %g, want %g", x, got, want)
		}
	}
}

func TestHankelComplexWronskian(t *testing.T) {
	// The Wronskian identity H₀(z)·H₁'(z) − … reduces to
	// H₁(z)·J₀(z) − H₀(z)·J₁(z) = 2/(jπz) off the real axis too; here we
	// use the equivalent H0·d/dz[H0] consistency through the recurrence
	// H0'(z) = −H1(z) plus the Bessel-J series (independent code path).
	f := func(re, im float64) bool {
		z := complex(0.3+math.Abs(math.Mod(re, 6)), math.Mod(im, 3))
		j0 := besselJ0(z)
		j1 := besselJ1(z)
		h0 := Hankel0(z)
		h1 := Hankel1(z)
		lhs := h1*j0 - h0*j1
		want := 2 / (complex(0, math.Pi) * z)
		return cmplx.Abs(lhs-want) <= 1e-7*cmplx.Abs(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDecayBranchProperties(t *testing.T) {
	// For lossy media (Im k > 0) the branch gives Re γ > 0 (decay); for
	// real k below cutoff it gives the outgoing −j·k_z.
	g := decayBranchSqrt(complex(4e12, 0) - complex(1e6, 0)*complex(1e6, 0)) // |kt|² > k²... both real
	if real(g) <= 0 {
		t.Fatalf("evanescent branch must decay: %v", g)
	}
	k := complex(2e6, 0)
	g2 := decayBranchSqrt(complex(1e12, 0) - k*k) // |kt|² < k²: propagating
	if real(g2) != 0 || imag(g2) >= 0 {
		t.Fatalf("propagating branch must be −j·k_z: %v", g2)
	}
	k3 := complex(1e6, 1e6)
	g3 := decayBranchSqrt(complex(1e12, 0) - k3*k3)
	if real(g3) <= 0 {
		t.Fatalf("lossy branch must decay: %v", g3)
	}
}
