package greens

import (
	"math"
	"math/cmplx"
	"testing"
)

// refSpectral3D is an independent reference: the plain Floquet-mode
// expansion G = Σ_mn e^{j·k_t·Δρ}·e^{jβ|Δz|}/(2jβL²), β = sqrt(k²−|k_t|²)
// with Im β ≥ 0. It converges geometrically for |Δz| ≳ L/4 and shares no
// code with the Ewald implementation.
func refSpectral3D(k complex128, L, dx, dy, dz float64, n int) complex128 {
	var sum complex128
	for m := -n; m <= n; m++ {
		for q := -n; q <= n; q++ {
			ktx := 2 * math.Pi * float64(m) / L
			kty := 2 * math.Pi * float64(q) / L
			beta := cmplx.Sqrt(k*k - complex(ktx*ktx+kty*kty, 0))
			if imag(beta) < 0 {
				beta = -beta
			}
			num := cmplx.Exp(complex(0, ktx*dx+kty*dy) + complex(0, 1)*beta*complex(math.Abs(dz), 0))
			// Weyl identity: e^{jkR}/(4πR) = (j/2)∫ e^{jk_t·ρ+jβ|z|}/β d²k_t/(2π)².
			sum += complex(0, 1) * num / (2 * beta * complex(L*L, 0))
		}
	}
	return sum
}

// refSpectral2D: G = Σ_m e^{j·k_m·Δx}·e^{jβ|Δz|}/(2jβL).
func refSpectral2D(k complex128, L, dx, dz float64, n int) complex128 {
	var sum complex128
	for m := -n; m <= n; m++ {
		km := 2 * math.Pi * float64(m) / L
		beta := cmplx.Sqrt(k*k - complex(km*km, 0))
		if imag(beta) < 0 {
			beta = -beta
		}
		num := cmplx.Exp(complex(0, km*dx) + complex(0, 1)*beta*complex(math.Abs(dz), 0))
		sum += complex(0, 1) * num / (2 * beta * complex(L, 0))
	}
	return sum
}

func relDiff(a, b complex128) float64 {
	return cmplx.Abs(a-b) / (cmplx.Abs(b) + 1e-300)
}

func TestPeriodic3DEwaldVsDirect(t *testing.T) {
	// Moderately lossy k: both strategies converge, must agree.
	L := 5e-6
	k := complex(3e5, 8e5) // Im(k)·L = 4 > threshold ⇒ default is direct
	gd := NewPeriodic3D(k, L)
	if gd.UsesEwald() {
		t.Fatal("expected direct strategy for lossy k")
	}
	ge := NewPeriodic3D(k, L)
	ge.useEwald = true
	ge.nSpec = 4
	ge.nSpat = 3

	pts := [][3]float64{
		{1e-6, 0.5e-6, 0.3e-6},
		{2.4e-6, 2.4e-6, -0.8e-6},
		{0.1e-6, 0, 1e-6},
		{4.9e-6, 4.9e-6, 0.2e-6}, // near an image
	}
	for _, p := range pts {
		vd, gradD := gd.EvalGrad(p[0], p[1], p[2])
		ve, gradE := ge.EvalGrad(p[0], p[1], p[2])
		if d := relDiff(ve, vd); d > 1e-8 {
			t.Errorf("G at %v: ewald %v direct %v rel %g", p, ve, vd, d)
		}
		// Compare components against the gradient norm: symmetry can make
		// individual components vanish, where relative error is undefined.
		var norm float64
		for i := 0; i < 3; i++ {
			norm += cmplx.Abs(gradD[i]) * cmplx.Abs(gradD[i])
		}
		norm = math.Sqrt(norm)
		for i := 0; i < 3; i++ {
			if d := cmplx.Abs(gradE[i]-gradD[i]) / norm; d > 1e-6 {
				t.Errorf("∇G[%d] at %v: rel %g", i, p, d)
			}
		}
	}
}

func TestPeriodic3DEwaldSplitInvariance(t *testing.T) {
	// The Ewald result must not depend on the splitting parameter E.
	L := 5e-6
	k := complex(1.2e3, 0) // dielectric-like
	g1 := NewPeriodic3D(k, L)
	g2 := NewPeriodic3D(k, L)
	g2.E = g1.E * 1.6
	g2.nSpec = 5 // larger E shifts work to the spectral sum
	g3 := NewPeriodic3D(k, L)
	g3.E = g1.E / 1.6
	g3.nSpat = 4
	for _, p := range [][3]float64{{1e-6, 0.7e-6, 0.4e-6}, {2.5e-6, 1e-6, -1e-6}} {
		v1 := g1.Eval(p[0], p[1], p[2])
		v2 := g2.Eval(p[0], p[1], p[2])
		v3 := g3.Eval(p[0], p[1], p[2])
		if d := relDiff(v1, v2); d > 1e-9 {
			t.Errorf("E-invariance (up) at %v: %g", p, d)
		}
		if d := relDiff(v1, v3); d > 1e-9 {
			t.Errorf("E-invariance (down) at %v: %g", p, d)
		}
	}
}

func TestPeriodic3DAgainstFloquetReference(t *testing.T) {
	// For |Δz| ≳ L/3 the plain Floquet sum is an independent benchmark.
	L := 5e-6
	for _, k := range []complex128{complex(1.2e3, 0), complex(4e5, 2e5)} {
		g := NewPeriodic3D(k, L)
		if !g.UsesEwald() {
			g.useEwald = true
			g.nSpec = 4
			g.nSpat = 3
		}
		for _, p := range [][3]float64{{1e-6, 2e-6, 2e-6}, {0.3e-6, 0.9e-6, -2.5e-6}} {
			got := g.Eval(p[0], p[1], p[2])
			want := refSpectral3D(k, L, p[0], p[1], p[2], 30)
			if d := relDiff(got, want); d > 1e-7 {
				t.Errorf("k=%v p=%v: got %v want %v rel %g", k, p, got, want, d)
			}
		}
	}
}

func TestPeriodic3DPeriodicity(t *testing.T) {
	L := 5e-6
	g := NewPeriodic3D(complex(1.2e3, 0), L)
	a := g.Eval(1e-6, 0.5e-6, 0.3e-6)
	b := g.Eval(1e-6+L, 0.5e-6, 0.3e-6)
	c := g.Eval(1e-6, 0.5e-6-L, 0.3e-6)
	if d := relDiff(a, b); d > 1e-9 {
		t.Errorf("periodicity in x: %g", d)
	}
	if d := relDiff(a, c); d > 1e-9 {
		t.Errorf("periodicity in y: %g", d)
	}
}

func TestPeriodic3DGradientFiniteDifference(t *testing.T) {
	L := 5e-6
	for _, k := range []complex128{complex(1.2e3, 0), complex(1.4e6, 1.4e6)} {
		g := NewPeriodic3D(k, L)
		p := [3]float64{1.3e-6, 0.8e-6, 0.5e-6}
		_, grad := g.EvalGrad(p[0], p[1], p[2])
		h := 1e-12
		for i := 0; i < 3; i++ {
			pp, pm := p, p
			pp[i] += h
			pm[i] -= h
			fd := (g.Eval(pp[0], pp[1], pp[2]) - g.Eval(pm[0], pm[1], pm[2])) / complex(2*h, 0)
			if d := relDiff(grad[i], fd); d > 1e-4 {
				t.Errorf("k=%v grad[%d]: analytic %v fd %v rel %g", k, i, grad[i], fd, d)
			}
		}
	}
}

func TestPeriodic3DRegularizedLimit(t *testing.T) {
	L := 5e-6
	for _, k := range []complex128{complex(1.2e3, 0), complex(1.4e6, 1.4e6)} {
		g := NewPeriodic3D(k, L)
		reg := g.EvalRegularized()
		// G(ε) − 1/(4πε) must approach the regularized value.
		for _, eps := range []float64{1e-9, 3e-10} {
			got := g.Eval(eps, 0, 0) - complex(1/(4*math.Pi*eps), 0)
			if d := cmplx.Abs(got-reg) / (cmplx.Abs(reg) + 1e-300); d > 2e-2 {
				t.Errorf("k=%v ε=%g: limit %v vs regularized %v (%g)", k, eps, got, reg, d)
			}
		}
	}
}

func TestPeriodic3DHelmholtz(t *testing.T) {
	// (∇² + k²)G = 0 away from lattice points, via 2nd-order FD.
	L := 5e-6
	k := complex(4e5, 2e5)
	g := NewPeriodic3D(k, L)
	g.useEwald = true
	g.nSpec = 4
	g.nSpat = 3
	p := [3]float64{1.7e-6, 1.1e-6, 0.6e-6}
	h := 2e-9
	lap := complex(0, 0)
	center := g.Eval(p[0], p[1], p[2])
	for i := 0; i < 3; i++ {
		pp, pm := p, p
		pp[i] += h
		pm[i] -= h
		lap += (g.Eval(pp[0], pp[1], pp[2]) - 2*center + g.Eval(pm[0], pm[1], pm[2])) / complex(h*h, 0)
	}
	resid := lap + k*k*center
	// Scale by |G|·|k²| to get a meaningful relative error.
	scale := cmplx.Abs(center) * cmplx.Abs(k*k)
	if cmplx.Abs(resid)/scale > 1e-3 {
		t.Errorf("Helmholtz residual %v (relative %g)", resid, cmplx.Abs(resid)/scale)
	}
}

func TestHankel0RealAxis(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 3, 7, 8.5, 10, 20, 50} {
		got := Hankel0(complex(x, 0))
		want := complex(math.J0(x), math.Y0(x))
		if d := relDiff(got, want); d > 1e-9 {
			t.Errorf("H0(%g) = %v, want %v (rel %g)", x, got, want, d)
		}
	}
}

func TestHankel1RealAxis(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 3, 7, 8.5, 10, 20, 50} {
		got := Hankel1(complex(x, 0))
		want := complex(math.J1(x), math.Y1(x))
		if d := relDiff(got, want); d > 1e-8 {
			t.Errorf("H1(%g) = %v, want %v (rel %g)", x, got, want, d)
		}
	}
}

func TestHankelSeriesAsymptoticOverlap(t *testing.T) {
	// The series (|z|<9) and asymptotic (|z|≥9) branches must agree in
	// the overlap region, including off the real axis.
	for _, zarg := range []float64{0, math.Pi / 4, math.Pi / 3} {
		for _, r := range []float64{8.2, 8.8, 9.5, 11} {
			z := cmplx.Rect(r, zarg)
			ser := besselJ0(z) + complex(0, 1)*besselY0(z, besselJ0(z))
			asy := hankel0Asymptotic(z)
			if d := relDiff(ser, asy); d > 1e-7 {
				t.Errorf("H0 overlap |z|=%g arg=%g: series %v asym %v rel %g", r, zarg, ser, asy, d)
			}
		}
	}
}

func TestHankelDerivativeIdentity(t *testing.T) {
	// H0′(z) = −H1(z), checked by finite differences at complex z.
	for _, z := range []complex128{complex(1.5, 0.5), complex(4, 4), complex(0.3, 0.3)} {
		h := 1e-6
		fd := (Hankel0(z+complex(h, 0)) - Hankel0(z-complex(h, 0))) / complex(2*h, 0)
		want := -Hankel1(z)
		if d := relDiff(fd, want); d > 1e-5 {
			t.Errorf("H0'(%v): fd %v vs −H1 %v rel %g", z, fd, want, d)
		}
	}
}

func TestPeriodic2DEwaldVsDirect(t *testing.T) {
	L := 5e-6
	k := complex(4e5, 8e5) // lossy enough for a short direct sum
	gd := NewPeriodic2D(k, L)
	if gd.UsesEwald() {
		t.Fatal("expected direct strategy")
	}
	ge := NewPeriodic2D(k, L)
	ge.useEwald = true
	ge.nSpec = 4
	ge.nSpat = 3
	x := cmplx.Abs(k) / (2 * ge.E)
	ge.qMax = 8 + int(3*x*x)

	for _, p := range [][2]float64{{1e-6, 0.4e-6}, {2.4e-6, -0.9e-6}, {0.2e-6, 0.1e-6}} {
		vd, gradD := gd.EvalGrad(p[0], p[1])
		ve, gradE := ge.EvalGrad(p[0], p[1])
		if d := relDiff(ve, vd); d > 1e-7 {
			t.Errorf("2D G at %v: ewald %v direct %v rel %g", p, ve, vd, d)
		}
		for i := 0; i < 2; i++ {
			if d := relDiff(gradE[i], gradD[i]); d > 1e-5 {
				t.Errorf("2D ∇G[%d] at %v rel %g", i, p, d)
			}
		}
	}
}

func TestPeriodic2DAgainstFloquetReference(t *testing.T) {
	L := 5e-6
	for _, k := range []complex128{complex(1.2e3, 0), complex(4e5, 2e5)} {
		g := NewPeriodic2D(k, L)
		if !g.UsesEwald() {
			g.useEwald = true
			g.nSpec = 4
			g.nSpat = 3
			x := cmplx.Abs(k) / (2 * g.E)
			g.qMax = 8 + int(3*x*x)
		}
		for _, p := range [][2]float64{{1e-6, 2e-6}, {0.4e-6, -2.2e-6}} {
			got := g.Eval(p[0], p[1])
			want := refSpectral2D(k, L, p[0], p[1], 40)
			if d := relDiff(got, want); d > 1e-7 {
				t.Errorf("k=%v p=%v: got %v want %v rel %g", k, p, got, want, d)
			}
		}
	}
}

func TestPeriodic2DEwaldSplitInvariance(t *testing.T) {
	L := 5e-6
	k := complex(1.2e3, 0)
	g1 := NewPeriodic2D(k, L)
	g2 := NewPeriodic2D(k, L)
	g2.E = g1.E * 1.5
	g2.nSpec = 5
	for _, p := range [][2]float64{{1.2e-6, 0.5e-6}, {2.2e-6, -0.8e-6}} {
		v1 := g1.Eval(p[0], p[1])
		v2 := g2.Eval(p[0], p[1])
		if d := relDiff(v1, v2); d > 1e-8 {
			t.Errorf("2D E-invariance at %v: %g", p, d)
		}
	}
}

func TestPeriodic2DRegularizedLimit(t *testing.T) {
	L := 5e-6
	for _, k := range []complex128{complex(1.2e3, 0), complex(1.4e6, 1.4e6)} {
		g := NewPeriodic2D(k, L)
		reg := g.EvalRegularized()
		for _, eps := range []float64{1e-9, 3e-10} {
			got := g.Eval(eps, 0) + complex(math.Log(eps)/(2*math.Pi), 0)
			if d := cmplx.Abs(got-reg) / (cmplx.Abs(reg) + 1e-300); d > 2e-2 {
				t.Errorf("k=%v ε=%g: %v vs %v (%g)", k, eps, got, reg, d)
			}
		}
	}
}

func TestPeriodic2DGradientFiniteDifference(t *testing.T) {
	L := 5e-6
	for _, k := range []complex128{complex(1.2e3, 0), complex(1.4e6, 1.4e6)} {
		g := NewPeriodic2D(k, L)
		p := [2]float64{1.3e-6, 0.6e-6}
		_, grad := g.EvalGrad(p[0], p[1])
		h := 1e-12
		for i := 0; i < 2; i++ {
			pp, pm := p, p
			pp[i] += h
			pm[i] -= h
			fd := (g.Eval(pp[0], pp[1]) - g.Eval(pm[0], pm[1])) / complex(2*h, 0)
			if d := relDiff(grad[i], fd); d > 1e-4 {
				t.Errorf("k=%v 2D grad[%d]: %v vs fd %v rel %g", k, i, grad[i], fd, d)
			}
		}
	}
}
