package greens

import (
	"math"
	"math/cmplx"

	"roughsim/internal/specfun"
)

// Hankel0 returns the Hankel function of the first kind H₀⁽¹⁾(z) for
// complex argument with Re z ≥ 0 — the free-space 2-D Helmholtz kernel
// is (j/4)·H₀⁽¹⁾(kR), and the conductor medium needs it at
// arg z = π/4 (k₂ = (1+j)/δ).
//
// Small |z| uses the ascending series of J₀ and Y₀ (entire/log series);
// large |z| uses the Hankel asymptotic expansion, which converges to
// ~1e−10 for |z| ≥ 9 in the upper half-plane.
func Hankel0(z complex128) complex128 {
	if real(z) < 0 {
		panic("greens: Hankel0 requires Re z ≥ 0")
	}
	if cmplx.Abs(z) < 9 {
		j0 := besselJ0(z)
		y0 := besselY0(z, j0)
		return j0 + complex(0, 1)*y0
	}
	return hankel0Asymptotic(z)
}

// besselJ0 evaluates J₀(z) = Σ (−z²/4)^m/(m!)² by its (entire) power
// series; for |z| < 9 fewer than 40 terms reach round-off.
func besselJ0(z complex128) complex128 {
	q := -z * z / 4
	term := complex(1, 0)
	sum := term
	for m := 1; m < 60; m++ {
		term *= q / complex(float64(m)*float64(m), 0)
		sum += term
		if cmplx.Abs(term) < 1e-17*cmplx.Abs(sum) {
			break
		}
	}
	return sum
}

// besselY0 evaluates Y₀(z) from the standard log series
// Y₀ = (2/π)·[(ln(z/2)+γ)·J₀(z) + Σ (−1)^{m+1} H_m (z²/4)^m/(m!)²],
// where H_m is the m-th harmonic number.
func besselY0(z, j0 complex128) complex128 {
	q := z * z / 4
	term := complex(1, 0)
	var sum complex128
	var harmonic float64
	for m := 1; m < 60; m++ {
		term *= q / complex(float64(m)*float64(m), 0)
		harmonic += 1 / float64(m)
		contrib := term * complex(harmonic, 0)
		if m%2 == 1 {
			sum += contrib
		} else {
			sum -= contrib
		}
		if cmplx.Abs(contrib) < 1e-17*(cmplx.Abs(sum)+1e-300) {
			break
		}
	}
	return 2 / math.Pi * ((cmplx.Log(z/2)+complex(specfun.EulerGamma, 0))*j0 + sum)
}

// hankel0Asymptotic evaluates H₀⁽¹⁾(z) ≈ sqrt(2/(πz))·e^{j(z−π/4)}·Σ jᵐaₘ/zᵐ
// with aₘ(ν=0) built from the recurrence
// term_m = term_{m−1}·j·(4ν²−(2m−1)²)/(8m·z), ν = 0.
func hankel0Asymptotic(z complex128) complex128 {
	term := complex(1, 0)
	sum := term
	for m := 1; m <= 20; m++ {
		fm := float64(m)
		term *= complex(0, 1) * complex(-(2*fm-1)*(2*fm-1)/(8*fm), 0) / z
		if cmplx.Abs(term) > cmplx.Abs(sum) {
			break // divergence point of the asymptotic series
		}
		sum += term
		if cmplx.Abs(term) < 1e-16*cmplx.Abs(sum) {
			break
		}
	}
	pref := cmplx.Sqrt(2/(math.Pi*z)) * cmplx.Exp(complex(0, 1)*(z-complex(math.Pi/4, 0)))
	return pref * sum
}

// Hankel1 returns H₁⁽¹⁾(z) = −d/dz H₀⁽¹⁾(z) for Re z ≥ 0, needed for
// gradients of the 2-D kernel.
func Hankel1(z complex128) complex128 {
	if real(z) < 0 {
		panic("greens: Hankel1 requires Re z ≥ 0")
	}
	if cmplx.Abs(z) < 9 {
		j1 := besselJ1(z)
		y1 := besselY1(z, j1)
		return j1 + complex(0, 1)*y1
	}
	return hankel1Asymptotic(z)
}

// besselJ1 evaluates J₁(z) = (z/2)·Σ (−z²/4)^m/(m!·(m+1)!).
func besselJ1(z complex128) complex128 {
	q := -z * z / 4
	term := complex(1, 0)
	sum := term
	for m := 1; m < 60; m++ {
		term *= q / complex(float64(m)*float64(m+1), 0)
		sum += term
		if cmplx.Abs(term) < 1e-17*cmplx.Abs(sum) {
			break
		}
	}
	return z / 2 * sum
}

// besselY1 uses the series
// Y₁ = (2/π)·[(ln(z/2)+γ)·J₁ − 1/z − (z/4)·Σ (−1)^m (H_m + H_{m+1})·(z²/4)^m/(m!(m+1)!)].
func besselY1(z, j1 complex128) complex128 {
	q := z * z / 4
	// m = 0 term of the series: (H₀ + H₁) = 1.
	term := complex(1, 0)
	sum := complex(1, 0)
	hm := 0.0
	hm1 := 1.0
	for m := 1; m < 60; m++ {
		term *= -q / complex(float64(m)*float64(m+1), 0)
		hm += 1 / float64(m)
		hm1 += 1 / float64(m+1)
		contrib := term * complex(hm+hm1, 0)
		sum += contrib
		if cmplx.Abs(contrib) < 1e-17*(cmplx.Abs(sum)+1e-300) {
			break
		}
	}
	return 2 / math.Pi * ((cmplx.Log(z/2)+complex(specfun.EulerGamma, 0))*j1 - 1/z - z/4*sum)
}

// hankel1Asymptotic: H₁⁽¹⁾(z) ≈ sqrt(2/(πz))·e^{j(z−3π/4)}·Σ bₘ/zᵐ with
// bₘ = b_{m−1}·j·(4−(2m−1)²)/(8m)·(−1)… via the recurrence
// bₘ = b_{m−1}·j·((4·1²−(2m−1)²))/(8m) where μ = 4ν² = 4.
func hankel1Asymptotic(z complex128) complex128 {
	term := complex(1, 0)
	sum := term
	for m := 1; m <= 20; m++ {
		fm := float64(m)
		c := (4 - (2*fm-1)*(2*fm-1)) / (8 * fm)
		term *= complex(0, 1) * complex(c, 0) / z
		if cmplx.Abs(term) > cmplx.Abs(sum) {
			break
		}
		sum += term
		if cmplx.Abs(term) < 1e-16*cmplx.Abs(sum) {
			break
		}
	}
	pref := cmplx.Sqrt(2/(math.Pi*z)) * cmplx.Exp(complex(0, 1)*(z-complex(3*math.Pi/4, 0)))
	return pref * sum
}
