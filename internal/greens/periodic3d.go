// Package greens evaluates the periodic scalar Green's functions of
// eq. (8): the doubly-periodic 3D Green's function used by the 3D SWM
// solver and the singly-periodic 2D Green's function used by the 2D SWM
// variant, together with their gradients and the regularized (singularity
// subtracted) self-term limits the MoM assembly needs.
//
// Two evaluation strategies are provided per the paper's Ewald reference
// [16] and the physics of the two media:
//
//   - Ewald split (spectral + spatial parts, both involving the
//     complementary error function of complex argument): exponentially
//     convergent, used for the dielectric medium where |k|·L ≪ 1.
//   - Direct image sum: for the conductor medium k = (1+j)/δ the kernel
//     decays like exp(−R/δ) within a couple of image shells, while the
//     Ewald split suffers catastrophic cancellation once |k/(2E)|² ≫ 1,
//     so the direct sum is both faster and more accurate there.
//
// NewPeriodic3D picks the strategy automatically from Im(k)·L.
package greens

import (
	"math"
	"math/cmplx"

	"roughsim/internal/specfun"
)

// Periodic3D evaluates the doubly-periodic (period L in x and y) scalar
// Green's function G(Δ) = Σ_pq exp(jk·R_pq)/(4π·R_pq) with
// R_pq = |Δ − x̂pL − ŷqL|, for normal-incidence Floquet phase (the
// paper's excitation).
type Periodic3D struct {
	K complex128 // medium wavenumber
	L float64    // lattice period
	E float64    // Ewald splitting parameter

	useEwald bool
	nSpec    int // spectral modes per dimension: m,n ∈ [−nSpec, nSpec]
	nSpat    int // spatial image shells: p,q ∈ [−nSpat, nSpat]
}

// ewaldLossThreshold: above Im(k)·L ≈ 3 the direct image sum already
// converges to ~e^{−3} per shell and the Ewald split starts to lose
// digits; switch strategies there.
const ewaldLossThreshold = 3.0

// NewPeriodic3D builds an evaluator for wavenumber k and period L.
func NewPeriodic3D(k complex128, L float64) *Periodic3D {
	if L <= 0 {
		panic("greens: period must be positive")
	}
	g := &Periodic3D{K: k, L: L, E: math.SqrtPi / L}
	g.useEwald = imag(k)*L < ewaldLossThreshold
	if g.useEwald {
		// Spectral truncation: terms decay like exp(−|k_t|²/(4E²));
		// |k_t| = 2π·n/L and E = √π/L give exp(−π·n²), so n = 3 is
		// already ~1e−12. Spatial terms decay like erfc(R·E) ~
		// exp(−π·R²/L²); two shells suffice.
		g.nSpec = 3
		g.nSpat = 2
	} else {
		// Direct sum: include shells until exp(−Im(k)·R) is negligible.
		shells := int(math.Ceil(34/(imag(k)*L))) + 1
		if shells < 1 {
			shells = 1
		}
		if shells > 6 {
			shells = 6
		}
		g.nSpat = shells
	}
	return g
}

// UsesEwald reports which strategy the evaluator selected (exposed for
// ablation benchmarks).
func (g *Periodic3D) UsesEwald() bool { return g.useEwald }

// Eval returns G(Δ). The offset must not be a lattice point (the
// function is singular there); use EvalRegularized for self terms.
func (g *Periodic3D) Eval(dx, dy, dz float64) complex128 {
	v, _ := g.eval(dx, dy, dz, false, false)
	return v
}

// EvalGrad returns G(Δ) and ∇_Δ G(Δ) (gradient with respect to the
// offset Δ = r − r′; the source-point gradient is its negative).
func (g *Periodic3D) EvalGrad(dx, dy, dz float64) (complex128, [3]complex128) {
	v, grad := g.eval(dx, dy, dz, true, false)
	return v, grad
}

// EvalRegularized returns lim_{Δ→0} [G(Δ) − 1/(4π|Δ|)]: the smooth
// remainder at the singular point, used for MoM self terms.
func (g *Periodic3D) EvalRegularized() complex128 {
	v, _ := g.eval(0, 0, 0, false, true)
	return v
}

func (g *Periodic3D) eval(dx, dy, dz float64, wantGrad, regularized bool) (complex128, [3]complex128) {
	// Reduce the lateral offset to the first period: makes periodicity
	// exact and keeps the truncated image window symmetric.
	dx = wrapPeriod(dx, g.L)
	dy = wrapPeriod(dy, g.L)
	var grad [3]complex128
	if g.useEwald {
		vs, gs := g.spatialEwald(dx, dy, dz, wantGrad, regularized)
		vp, gp := g.spectral(dx, dy, dz, wantGrad)
		for i := range grad {
			grad[i] = gs[i] + gp[i]
		}
		return vs + vp, grad
	}
	return g.direct(dx, dy, dz, wantGrad, regularized)
}

// direct sums the image series term by term (conductor medium).
func (g *Periodic3D) direct(dx, dy, dz float64, wantGrad, regularized bool) (complex128, [3]complex128) {
	var sum complex128
	var grad [3]complex128
	k := g.K
	for p := -g.nSpat; p <= g.nSpat; p++ {
		for q := -g.nSpat; q <= g.nSpat; q++ {
			rx := dx - float64(p)*g.L
			ry := dy - float64(q)*g.L
			r := math.Sqrt(rx*rx + ry*ry + dz*dz)
			if r == 0 {
				if !regularized {
					panic("greens: Eval at a lattice point; use EvalRegularized")
				}
				// lim (e^{jkR} − 1)/(4πR) = jk/(4π).
				sum += complex(0, 1) * k / (4 * math.Pi)
				continue
			}
			ekr := cmplx.Exp(complex(0, 1) * k * complex(r, 0))
			v := ekr / complex(4*math.Pi*r, 0)
			sum += v
			if wantGrad {
				// d/dR [e^{jkR}/(4πR)] = e^{jkR}(jkR−1)/(4πR²);
				// ∇ = (Δ/R)·d/dR.
				dvdr := ekr * (complex(0, 1)*k*complex(r, 0) - 1) / complex(4*math.Pi*r*r, 0)
				grad[0] += dvdr * complex(rx/r, 0)
				grad[1] += dvdr * complex(ry/r, 0)
				grad[2] += dvdr * complex(dz/r, 0)
			}
		}
	}
	return sum, grad
}

// spatialEwald evaluates the real-space part of the Ewald split:
// Σ_pq (1/(8πR))·[e^{+jkR}·erfc(RE + jk/(2E)) + e^{−jkR}·erfc(RE − jk/(2E))],
// computed with ExpMulErfc so the exponentials never overflow.
func (g *Periodic3D) spatialEwald(dx, dy, dz float64, wantGrad, regularized bool) (complex128, [3]complex128) {
	var sum complex128
	var grad [3]complex128
	for p := -g.nSpat; p <= g.nSpat; p++ {
		for q := -g.nSpat; q <= g.nSpat; q++ {
			rx := dx - float64(p)*g.L
			ry := dy - float64(q)*g.L
			v, gr, singular := g.spatialImage(rx, ry, dz, wantGrad)
			if singular {
				if !regularized {
					panic("greens: Eval at a lattice point; use EvalRegularized")
				}
			}
			sum += v
			for i := range grad {
				grad[i] += gr[i]
			}
		}
	}
	return sum, grad
}

// spatialImage evaluates one image term of the spatial Ewald series and
// its gradient. At a lattice point it returns the regularized limit
// (singularity 1/(4πR) subtracted) and singular=true.
func (g *Periodic3D) spatialImage(rx, ry, dz float64, wantGrad bool) (complex128, [3]complex128, bool) {
	var grad [3]complex128
	k := g.K
	e := g.E
	a := complex(0, 1) * k / complex(2*e, 0) // jk/(2E)
	r := math.Sqrt(rx*rx + ry*ry + dz*dz)
	if r == 0 {
		// lim_{R→0} [(1/8πR)·F(R) − 1/(4πR)] with
		// F(R) = Σ_± e^{±jkR} erfc(RE ± a) and F(0) = 2:
		// = F′(0)/(8π) = [jk·(erfc(a) − erfc(−a)) − 4E/√π·e^{−a²}]/(8π).
		erfA := specfun.Erfc(a)
		term := complex(0, 1)*k*(2*erfA-2) - complex(4*e/math.SqrtPi, 0)*cmplx.Exp(-a*a)
		return term / complex(8*math.Pi, 0), grad, true
	}
	jkr := complex(0, 1) * k * complex(r, 0)
	re := complex(r*e, 0)
	plus := specfun.ExpMulErfc(jkr, re+a)   // e^{+jkR}·erfc(RE+a)
	minus := specfun.ExpMulErfc(-jkr, re-a) // e^{−jkR}·erfc(RE−a)
	v := (plus + minus) / complex(8*math.Pi*r, 0)
	if wantGrad {
		// d/dR of (1/(8πR))[e^{jkR}erfc(RE+a) + e^{−jkR}erfc(RE−a)]:
		// the erfc-derivative pieces combine into
		// −(4E/√π)·e^{−R²E² + k²/(4E²)} (the ±jkR phases cancel
		// against the cross terms of (RE±a)²).
		gaussTerm := complex(-4*e/math.SqrtPi, 0) *
			cmplx.Exp(complex(-r*r*e*e, 0)+k*k/complex(4*e*e, 0))
		dFdR := complex(0, 1)*k*(plus-minus) + gaussTerm
		dvdr := (dFdR*complex(r, 0) - (plus + minus)) / complex(8*math.Pi*r*r, 0)
		grad[0] = dvdr * complex(rx/r, 0)
		grad[1] = dvdr * complex(ry/r, 0)
		grad[2] = dvdr * complex(dz/r, 0)
	}
	return v, grad, false
}

// SpatialShell returns the first-shell (p, q ∈ [−1, 1]) terms of the
// spatial Ewald series and their Δ-gradient at the period-wrapped
// offset — the only parts of the Ewald-mode Green's function that vary
// on the sub-period scale (at offsets near ±L/2 the neighbor images are
// equidistant with the central one). Tabulation layers subtract the
// shell before fitting and add it back exactly. Only meaningful when
// UsesEwald() is true.
func (g *Periodic3D) SpatialShell(dx, dy, dz float64) (complex128, [3]complex128) {
	dx = wrapPeriod(dx, g.L)
	dy = wrapPeriod(dy, g.L)
	var sum complex128
	var grad [3]complex128
	for p := -1; p <= 1; p++ {
		for q := -1; q <= 1; q++ {
			v, gr, _ := g.spatialImage(dx-float64(p)*g.L, dy-float64(q)*g.L, dz, true)
			sum += v
			for i := range grad {
				grad[i] += gr[i]
			}
		}
	}
	return sum, grad
}

// spectral evaluates the reciprocal-space part of the Ewald split:
// Σ_mn e^{j·k_t·Δρ}/(4L²γ)·[e^{+γΔz}·erfc(γ/(2E)+ΔzE) + e^{−γΔz}·erfc(γ/(2E)−ΔzE)],
// with γ = sqrt(|k_t|² − k²) on the decaying/outgoing branch.
func (g *Periodic3D) spectral(dx, dy, dz float64, wantGrad bool) (complex128, [3]complex128) {
	var sum complex128
	var grad [3]complex128
	e := g.E
	l := g.L
	for m := -g.nSpec; m <= g.nSpec; m++ {
		ktx := 2 * math.Pi * float64(m) / l
		for n := -g.nSpec; n <= g.nSpec; n++ {
			kty := 2 * math.Pi * float64(n) / l
			kt2 := ktx*ktx + kty*kty
			gamma := decayBranchSqrt(complex(kt2, 0) - g.K*g.K)
			phase := cmplx.Exp(complex(0, ktx*dx+kty*dy))
			zc := complex(dz, 0)
			ec := complex(e, 0)
			// e^{±γz}·erfc(γ/2E ± zE), fused for stability.
			up := specfun.ExpMulErfc(gamma*zc, gamma/(2*ec)+zc*ec)
			dn := specfun.ExpMulErfc(-gamma*zc, gamma/(2*ec)-zc*ec)
			pref := phase / (complex(4*l*l, 0) * gamma)
			sum += pref * (up + dn)
			if wantGrad {
				grad[0] += complex(0, ktx) * pref * (up + dn)
				grad[1] += complex(0, kty) * pref * (up + dn)
				// d/dz: the erfc-derivative pieces cancel exactly,
				// leaving γ·(up − dn).
				grad[2] += pref * gamma * (up - dn)
			}
		}
	}
	return sum, grad
}

// wrapPeriod maps x into [−L/2, L/2).
func wrapPeriod(x, l float64) float64 {
	x = math.Mod(x, l)
	if x >= l/2 {
		x -= l
	} else if x < -l/2 {
		x += l
	}
	return x
}

// decayBranchSqrt returns sqrt(w) with the branch chosen so that
// exp(−γ·|z|) decays (Re γ > 0) or radiates outward (γ = −j·k_z with
// k_z > 0) — the physical branch for the spectral Ewald series.
func decayBranchSqrt(w complex128) complex128 {
	s := cmplx.Sqrt(w) // principal: Re ≥ 0
	if real(s) == 0 && imag(s) > 0 {
		s = -s
	}
	return s
}
