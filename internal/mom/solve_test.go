package mom

import (
	"context"
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"roughsim/internal/resilience"
	"roughsim/internal/rng"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

func solveTestSystem() *System {
	c := surface.NewGaussianCorr(1*um, 1*um)
	kl := surface.NewKL(c, 5*um, 8)
	s := kl.SampleTruncated(rng.New(2), 8)
	return Assemble(s, paramsAt(5*units.GHz), Options{})
}

func relDiff(a, b []complex128) float64 {
	var num, den float64
	for i := range a {
		num += cmplx.Abs(a[i]-b[i]) * cmplx.Abs(a[i]-b[i])
		den += cmplx.Abs(b[i]) * cmplx.Abs(b[i])
	}
	return math.Sqrt(num / den)
}

func TestSolveResilientDefaultWinsGMRES(t *testing.T) {
	sys := solveTestSystem()
	sol, err := sys.SolveResilient(context.Background(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Report == nil || sol.Report.Winner != StageGMRES {
		t.Fatalf("expected the matrix-free GMRES stage to win, report: %+v", sol.Report)
	}
	if sol.Report.RelRes > 1e-7 {
		t.Fatalf("verified residual %g too large", sol.Report.RelRes)
	}
}

func TestSolveResilientFallsBackAndMatchesDense(t *testing.T) {
	sys := solveTestSystem()
	inj := resilience.NewInjector(resilience.FaultSpec{
		Op: StageGMRES, Fraction: 1, Kind: resilience.KindConvergence,
	})
	sol, err := sys.SolveResilient(context.Background(), SolveOptions{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	rep := sol.Report
	if rep.Winner == StageGMRES || rep.Winner == "" {
		t.Fatalf("expected a fallback stage to win, got %q", rep.Winner)
	}
	if len(rep.Attempts) < 2 || !rep.Attempts[0].Injected || rep.Attempts[0].Kind != resilience.KindConvergence {
		t.Fatalf("first attempt should be the injected GMRES failure: %+v", rep.Attempts)
	}
	if rep.RelRes > 1e-6 {
		t.Fatalf("fallback result not verified: relres %g", rep.RelRes)
	}
	// The fallback solution must agree with the direct dense LU solve.
	ref, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(sol.Psi, ref.Psi); d > 1e-6 {
		t.Fatalf("fallback ψ differs from dense LU by %g", d)
	}
	if d := relDiff(sol.U, ref.U); d > 1e-6 {
		t.Fatalf("fallback u differs from dense LU by %g", d)
	}
}

func TestSolveResilientAllStagesFail(t *testing.T) {
	sys := solveTestSystem()
	inj := resilience.NewInjector(
		resilience.FaultSpec{Op: StageGMRES, Fraction: 1, Kind: resilience.KindConvergence},
		resilience.FaultSpec{Op: StageGMRESPrecond, Fraction: 1, Kind: resilience.KindConvergence},
		resilience.FaultSpec{Op: StageBiCGSTAB, Fraction: 1, Kind: resilience.KindConvergence},
		resilience.FaultSpec{Op: StageDenseLU, Fraction: 1, Kind: resilience.KindSingular},
	)
	_, err := sys.SolveResilient(context.Background(), SolveOptions{Injector: inj})
	if err == nil {
		t.Fatal("expected error when every chain stage is failed")
	}
	var re *resilience.Error
	if !errors.As(err, &re) || re.Op != "mom.solve" {
		t.Fatalf("expected a classified mom.solve error, got %v", err)
	}
	if resilience.Classify(err) != resilience.KindSingular {
		t.Fatalf("expected the last failure's kind, got %v", resilience.Classify(err))
	}
}

func TestSolveResilientCancelled(t *testing.T) {
	sys := solveTestSystem()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.SolveResilient(ctx, SolveOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}
