package mom

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
)

// TableKey identifies one TableSet: every input NewTableSet folds into
// the tables. Options.Workers is deliberately excluded — it is an
// execution detail that never changes table content — so solvers with
// different parallelism budgets share entries.
type TableKey struct {
	P     Params
	L     float64
	M     int
	ZSpan float64
	Near  int
	Sub   int
}

// TableCache is a bounded, concurrency-safe cache of Green's-function
// table sets, shared across sweep frequencies, solvers and (in
// roughsimd) jobs. Concurrent requests for the same key are
// single-flighted: one caller builds (outside the cache lock, so builds
// for distinct frequencies proceed in parallel), the rest wait and
// share the result. Eviction is LRU by table count.
//
// Telemetry (tables.hits / tables.misses / tables.shared /
// tables.built / tables.evictions counters, tables.build_seconds
// histogram, tables.entries gauge) goes to the registry set via
// SetMetrics; a nil registry disables instrumentation.
type TableCache struct {
	capacity int
	metrics  atomic.Pointer[telemetry.Registry]
	builds   atomic.Int64

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[TableKey]*list.Element
	calls map[TableKey]*tableCall
}

type tableEntry struct {
	key TableKey
	ts  *TableSet
}

type tableCall struct {
	done chan struct{}
	ts   *TableSet
}

// DefaultTableCacheCap bounds a cache built with capacity ≤ 0. Table
// sets are a few MB each at production grids, so the default keeps the
// worst case well under typical service memory.
const DefaultTableCacheCap = 32

// NewTableCache builds a cache holding up to capacity table sets
// (DefaultTableCacheCap when capacity ≤ 0).
func NewTableCache(capacity int, m *telemetry.Registry) *TableCache {
	if capacity <= 0 {
		capacity = DefaultTableCacheCap
	}
	c := &TableCache{
		capacity: capacity,
		ll:       list.New(),
		items:    map[TableKey]*list.Element{},
		calls:    map[TableKey]*tableCall{},
	}
	c.SetMetrics(m)
	return c
}

// SetMetrics points the cache's instrumentation at r (nil disables it).
// Safe to call concurrently with Get.
func (c *TableCache) SetMetrics(r *telemetry.Registry) {
	if r != nil {
		c.metrics.Store(r)
	}
}

func (c *TableCache) reg() *telemetry.Registry { return c.metrics.Load() }

// Len returns the number of cached table sets.
func (c *TableCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Builds returns how many table sets this cache has constructed — the
// quantity the dedup tests assert on (one build per distinct key, no
// matter how many concurrent callers).
func (c *TableCache) Builds() int64 { return c.builds.Load() }

// Get returns the table set for the given assembly inputs, building it
// at most once across all concurrent callers. Waiters block until the
// builder finishes (NewTableSet is not cancellable; the wait is bounded
// by one build).
func (c *TableCache) Get(p Params, L float64, M int, zspan float64, opt Options) *TableSet {
	return c.GetCtx(context.Background(), p, L, M, zspan, opt)
}

// GetCtx is Get with trace propagation: a build forced by a cache miss
// runs under a "tables.build" span of the context's trace (hits and
// shared waits add no span — they are lock-bounded).
func (c *TableCache) GetCtx(ctx context.Context, p Params, L float64, M int, zspan float64, opt Options) *TableSet {
	opt = opt.withDefaults()
	key := TableKey{P: p, L: L, M: M, ZSpan: zspan, Near: opt.NearRadius, Sub: opt.NearSubdiv}

	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		ts := el.Value.(*tableEntry).ts
		c.mu.Unlock()
		c.reg().Counter("tables.hits").Inc()
		return ts
	}
	if cl, ok := c.calls[key]; ok {
		c.mu.Unlock()
		c.reg().Counter("tables.shared").Inc()
		<-cl.done
		return cl.ts
	}
	cl := &tableCall{done: make(chan struct{})}
	c.calls[key] = cl
	c.mu.Unlock()
	c.reg().Counter("tables.misses").Inc()

	_, sp := trace.StartSpan(ctx, "tables.build")
	sp.SetAttr("grid", M)
	start := time.Now()
	ts := NewTableSet(p, L, M, zspan, opt)
	sp.End()
	c.builds.Add(1)
	c.reg().Counter("tables.built").Inc()
	c.reg().Histogram("tables.build_seconds").Observe(time.Since(start).Seconds())

	c.mu.Lock()
	delete(c.calls, key)
	c.insertLocked(key, ts)
	c.mu.Unlock()
	cl.ts = ts
	close(cl.done)
	return ts
}

// insertLocked adds the table to the LRU, evicting past capacity.
// Caller holds c.mu.
func (c *TableCache) insertLocked(key TableKey, ts *TableSet) {
	if el, ok := c.items[key]; ok {
		el.Value.(*tableEntry).ts = ts
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&tableEntry{key: key, ts: ts})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*tableEntry).key)
		c.reg().Counter("tables.evictions").Inc()
	}
	c.reg().Gauge("tables.entries").Set(float64(c.ll.Len()))
}
