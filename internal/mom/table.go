package mom

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/greens"
	"roughsim/internal/surface"
)

// TableSet is a per-frequency acceleration structure for MoM assembly.
//
// Observation and source points of the collocation grid differ laterally
// by a finite set of offsets — (i + s/sub)·h per axis — while the
// vertical offset Δz = f_i − f_j varies continuously with the surface
// realization. The periodic Green's functions and their gradients are
// therefore tabulated once per lateral offset as Chebyshev interpolants
// in Δz over [−ZSpan, ZSpan], and every subsequent assembly (every SSCM
// collocation node, every Monte-Carlo sample at that frequency) reduces
// to Clenshaw evaluations: for the paper's Fig. 7 this replaces millions
// of Ewald/image-series evaluations per sample by one-time table
// construction.
type TableSet struct {
	L     float64
	M     int
	ZSpan float64
	Sub   int // near-field subdivision factor the tables cover
	Near  int // near-field radius the tables cover

	g1, g2 *tabulated
	// Exact evaluators retained for self terms.
	exact1, exact2 *greens.Periodic3D
}

const chebDegree = 32 // interpolation nodes per offset

// tabulated interpolates one medium's G and ∇G.
//
// What is stored is the smooth remainder G − G_free(central image): the
// free-space term e^{jkR}/(4πR) of the nearest image is sharply peaked
// in Δz for small lateral offsets (scale ~ρ, far below any reasonable
// node count), so it is subtracted before fitting and added back exactly
// (one complex exponential) at evaluation time. The remainder — distant
// images plus the spectral part — varies on the lattice scale L and is
// captured to ~1e−9 by the 20-node fit.
type tabulated struct {
	m, sub, near int
	h            float64
	zspan        float64
	k            complex128
	l            float64
	g            *greens.Periodic3D
	subShells    int // free-space image shells evaluated exactly (direct mode)
	ewaldCentral bool
	// far[(dy*m+dx)] and nearTab[subOffsetIndex] hold Chebyshev
	// coefficients for (G, Gx, Gy, Gz).
	far     [][4][]complex128
	nearTab [][4][]complex128
	nearDim int // sub-offsets per axis = (2·near+1)·sub
}

// NewTableSet builds tables for both media at one frequency. zspan must
// bound |f_i − f_j| + the second-order tilt corrections of every surface
// that will be assembled against it.
func NewTableSet(p Params, L float64, M int, zspan float64, opt Options) *TableSet {
	opt = opt.withDefaults()
	ts := &TableSet{
		L: L, M: M, ZSpan: zspan, Sub: opt.NearSubdiv, Near: opt.NearRadius,
		exact1: greens.NewPeriodic3D(p.K1, L),
		exact2: greens.NewPeriodic3D(p.K2, L),
	}
	ts.g1 = newTabulated(ts.exact1, L, M, zspan, opt)
	ts.g2 = newTabulated(ts.exact2, L, M, zspan, opt)
	return ts
}

func chebNodes(n int, span float64) []float64 {
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		x[k] = span * math.Cos((float64(k)+0.5)*math.Pi/float64(n))
	}
	return x
}

// chebCoeffs converts samples at the standard Chebyshev nodes into
// expansion coefficients (plain O(n²) transform; n is small).
func chebCoeffs(samples []complex128) []complex128 {
	n := len(samples)
	out := make([]complex128, n)
	for j := 0; j < n; j++ {
		var s complex128
		for k := 0; k < n; k++ {
			s += samples[k] * complex(math.Cos(float64(j)*(float64(k)+0.5)*math.Pi/float64(n)), 0)
		}
		out[j] = s * complex(2/float64(n), 0)
	}
	out[0] /= 2
	return out
}

// clenshaw evaluates a Chebyshev expansion at t ∈ [−1, 1].
func clenshaw(c []complex128, t float64) complex128 {
	var b1, b2 complex128
	tt := complex(2*t, 0)
	for j := len(c) - 1; j >= 1; j-- {
		b1, b2 = c[j]+tt*b1-b2, b1
	}
	return c[0] + complex(t, 0)*b1 - b2
}

func newTabulated(g *greens.Periodic3D, L float64, M int, zspan float64, opt Options) *tabulated {
	h := L / float64(M)
	t := &tabulated{m: M, sub: opt.NearSubdiv, near: opt.NearRadius, h: h, zspan: zspan, k: g.K, l: L, g: g}
	if g.UsesEwald() {
		// The spatial central Ewald term is the only sub-period-scale
		// part (it carries the |Δz| kink at small lateral offsets);
		// evaluate it exactly and interpolate the smooth remainder.
		t.ewaldCentral = true
	} else {
		// Direct-sum media (strong loss): the whole first image shell
		// still carries phase across the Δz span; evaluate it exactly
		// and interpolate only the tiny (≲e^{−2·Im(k)·L}) remainder.
		t.subShells = 1
	}
	nodes := chebNodes(chebDegree, zspan)

	// Far table: one entry per wrapped grid offset. The near offsets are
	// also filled (they are cheap and keep indexing uniform), but
	// assembly never reads the (0,0) entry (self terms stay exact).
	t.far = make([][4][]complex128, M*M)
	t.nearDim = (2*opt.NearRadius + 1) * opt.NearSubdiv
	t.nearTab = make([][4][]complex128, t.nearDim*t.nearDim)

	var wg sync.WaitGroup
	workers := opt.Workers
	jobs := make(chan int)
	samples := func(dx, dy float64) [4][]complex128 {
		var smp [4][]complex128
		for q := 0; q < 4; q++ {
			smp[q] = make([]complex128, chebDegree)
		}
		for k, z := range nodes {
			v, gr := g.EvalGrad(dx, dy, z)
			fv, fg := t.freeImages(dx, dy, z)
			smp[0][k] = v - fv
			smp[1][k] = gr[0] - fg[0]
			smp[2][k] = gr[1] - fg[1]
			smp[3][k] = gr[2] - fg[2]
		}
		for q := 0; q < 4; q++ {
			smp[q] = chebCoeffs(smp[q])
		}
		return smp
	}

	// Far offsets.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				iy, ix := idx/M, idx%M
				if ix == 0 && iy == 0 {
					continue // self cell handled exactly
				}
				t.far[idx] = samples(float64(ix)*h, float64(iy)*h)
			}
		}()
	}
	for idx := 0; idx < M*M; idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	// Near sub-offsets: lateral values (i + (s+0.5)/sub − 0.5 − …)·h
	// relative to the observation point, spanning the near window.
	wg = sync.WaitGroup{}
	jobs = make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				ax := idx % t.nearDim
				ay := idx / t.nearDim
				dx := t.nearOffset(ax)
				dy := t.nearOffset(ay)
				t.nearTab[idx] = samples(dx, dy)
			}
		}()
	}
	for idx := 0; idx < t.nearDim*t.nearDim; idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	return t
}

// nearOffset maps a near-table axis index to its lateral offset: the
// observation sits at cell offset c ∈ [−near, near] with sub-cell shift
// o ∈ sub points, combined as (c − o) where o = ((s+0.5)/sub − 0.5)·h.
func (t *tabulated) nearOffset(a int) float64 {
	c := a/t.sub - t.near
	s := a % t.sub
	o := ((float64(s)+0.5)/float64(t.sub) - 0.5) * t.h
	return float64(c)*t.h - o
}

// nearIndex is the inverse of nearOffset for cell offset c and sub index s.
func (t *tabulated) nearIndex(c, s int) int {
	return (c+t.near)*t.sub + s
}

// freeImages returns the exactly evaluated sharp part of the kernel:
// the spatial central Ewald term (Ewald-mode media) or the free-space
// image sum over the central subShells shells (direct-mode media), with
// Δ-gradients, at the period-wrapped lateral offset.
func (t *tabulated) freeImages(dx, dy, dz float64) (complex128, [3]complex128) {
	if t.ewaldCentral {
		return t.g.SpatialShell(dx, dy, dz)
	}
	dx = wrapLen(dx, t.l)
	dy = wrapLen(dy, t.l)
	var v complex128
	var grad [3]complex128
	for p := -t.subShells; p <= t.subShells; p++ {
		for q := -t.subShells; q <= t.subShells; q++ {
			rx := dx - float64(p)*t.l
			ry := dy - float64(q)*t.l
			r := math.Sqrt(rx*rx + ry*ry + dz*dz)
			ekr := cmplx.Exp(complex(0, 1) * t.k * complex(r, 0))
			v += ekr / complex(4*math.Pi*r, 0)
			dvdr := ekr * (complex(0, 1)*t.k*complex(r, 0) - 1) / complex(4*math.Pi*r*r, 0)
			grad[0] += dvdr * complex(rx/r, 0)
			grad[1] += dvdr * complex(ry/r, 0)
			grad[2] += dvdr * complex(dz/r, 0)
		}
	}
	return v, grad
}

// wrapLen maps x into [−L/2, L/2).
func wrapLen(x, l float64) float64 {
	x = math.Mod(x, l)
	if x >= l/2 {
		x -= l
	} else if x < -l/2 {
		x += l
	}
	return x
}

// evalFar interpolates G and ∇G at wrapped grid offset (ix, iy) and
// height difference dz.
func (t *tabulated) evalFar(ix, iy int, dz float64) (complex128, [3]complex128) {
	e := &t.far[iy*t.m+ix]
	tt := dz / t.zspan
	fv, fg := t.freeImages(float64(ix)*t.h, float64(iy)*t.h, dz)
	return clenshaw(e[0], tt) + fv, [3]complex128{
		clenshaw(e[1], tt) + fg[0],
		clenshaw(e[2], tt) + fg[1],
		clenshaw(e[3], tt) + fg[2],
	}
}

// evalNear interpolates at near-table axis indices (ax, ay).
func (t *tabulated) evalNear(ax, ay int, dz float64) (complex128, [3]complex128) {
	e := &t.nearTab[ay*t.nearDim+ax]
	tt := dz / t.zspan
	fv, fg := t.freeImages(t.nearOffset(ax), t.nearOffset(ay), dz)
	return clenshaw(e[0], tt) + fv, [3]complex128{
		clenshaw(e[1], tt) + fg[0],
		clenshaw(e[2], tt) + fg[1],
		clenshaw(e[3], tt) + fg[2],
	}
}

// AssembleTabulated builds the dense system using the tables; it is
// numerically interchangeable with Assemble (the tests bound the
// difference) at a fraction of the cost per surface.
func AssembleTabulated(s *surface.Surface, p Params, ts *TableSet, opt Options) (*System, error) {
	opt = opt.withDefaults()
	if s.M != ts.M || s.L != ts.L {
		return nil, fmt.Errorf("mom: surface grid %gx%d does not match table %gx%d", s.L, s.M, ts.L, ts.M)
	}
	if opt.NearSubdiv != ts.Sub || opt.NearRadius != ts.Near {
		return nil, fmt.Errorf("mom: options (near=%d sub=%d) do not match table (near=%d sub=%d)",
			opt.NearRadius, opt.NearSubdiv, ts.Near, ts.Sub)
	}
	m := s.M
	n := m * m
	h := s.Step()
	var zmax float64
	for _, v := range s.H {
		if a := math.Abs(v); a > zmax {
			zmax = a
		}
	}
	// Tilted sub-cells can push |Δz| slightly past 2·max|f|.
	if 2.2*zmax > ts.ZSpan {
		return nil, fmt.Errorf("mom: surface height range %g exceeds table span %g", 2.2*zmax, ts.ZSpan)
	}

	fx, fy := s.Gradients()
	fxx, fyy, fxy := s.SecondDerivs()

	a := cmplxmat.New(2*n, 2*n)
	rhs := make([]complex128, 2*n)

	selfSing := complex(h*math.Log(1+math.Sqrt2)/math.Pi, 0)
	s1Self := selfSing + complex(h*h, 0)*ts.exact1.EvalRegularized()
	s2Self := selfSing + complex(h*h, 0)*ts.exact2.EvalRegularized()

	area := complex(h*h, 0)
	sub := opt.NearSubdiv
	subArea := complex(h*h/float64(sub*sub), 0)

	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				assembleRowTabulated(a, rhs, s, p, ts, i,
					fx, fy, fxx, fyy, fxy,
					s1Self, s2Self, area, subArea, opt)
			}
		}()
	}
	for i := 0; i < n; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
	return &System{N: n, Matrix: a, RHS: rhs, Step: h}, nil
}

func assembleRowTabulated(a *cmplxmat.Matrix, rhs []complex128, s *surface.Surface, p Params, ts *TableSet, i int,
	fx, fy, fxx, fyy, fxy []float64, s1Self, s2Self, area, subArea complex128, opt Options) {

	m := s.M
	n := m * m
	h := s.Step()
	iy, ix := i/m, i%m
	zi := s.H[i]
	row1 := a.Row(i)
	row2 := a.Row(n + i)
	sub := opt.NearSubdiv
	for j := 0; j < n; j++ {
		jy, jx := j/m, j%m
		var s1v, s2v, d1, d2 complex128
		if j == i {
			s1v, s2v = s1Self, s2Self
			curv := complex((fxx[i]+fyy[i])*h*math.Log(1+math.Sqrt2)/(4*math.Pi), 0)
			d1, d2 = curv, curv
		} else {
			dzc := zi - s.H[j]
			cx := wrapOffset(ix-jx, m)
			cy := wrapOffset(iy-jy, m)
			if absInt(cx) <= opt.NearRadius && absInt(cy) <= opt.NearRadius {
				for sy := 0; sy < sub; sy++ {
					oy := ((float64(sy)+0.5)/float64(sub) - 0.5) * h
					ayi := ts.g1.nearIndex(cy, sy)
					for sx := 0; sx < sub; sx++ {
						ox := ((float64(sx)+0.5)/float64(sub) - 0.5) * h
						axi := ts.g1.nearIndex(cx, sx)
						ddz := dzc - (fx[j]*ox + fy[j]*oy +
							0.5*fxx[j]*ox*ox + 0.5*fyy[j]*oy*oy + fxy[j]*ox*oy)
						v1, gr1 := ts.g1.evalNear(axi, ayi, ddz)
						v2, gr2 := ts.g2.evalNear(axi, ayi, ddz)
						s1v += v1 * subArea
						s2v += v2 * subArea
						snx := -(fx[j] + fxx[j]*ox + fxy[j]*oy)
						sny := -(fy[j] + fyy[j]*oy + fxy[j]*ox)
						d1 += -(complex(snx, 0)*gr1[0] + complex(sny, 0)*gr1[1] + gr1[2]) * subArea
						d2 += -(complex(snx, 0)*gr2[0] + complex(sny, 0)*gr2[1] + gr2[2]) * subArea
					}
				}
			} else {
				// Far: the table is indexed by the positive wrapped
				// offset (ix−jx mod m, iy−jy mod m).
				px := ((ix-jx)%m + m) % m
				py := ((iy-jy)%m + m) % m
				v1, gr1 := ts.g1.evalFar(px, py, dzc)
				v2, gr2 := ts.g2.evalFar(px, py, dzc)
				s1v = v1 * area
				s2v = v2 * area
				jnx, jny := -fx[j], -fy[j]
				d1 = -(complex(jnx, 0)*gr1[0] + complex(jny, 0)*gr1[1] + gr1[2]) * area
				d2 = -(complex(jnx, 0)*gr2[0] + complex(jny, 0)*gr2[1] + gr2[2]) * area
			}
		}
		row1[j] = -d1
		row1[n+j] = p.Beta * s1v
		row2[j] = d2
		row2[n+j] = -s2v
	}
	row1[i] += 0.5
	row2[i] += 0.5
	rhs[i] = cmplx.Exp(complex(0, -1) * p.K1 * complex(zi, 0))
}

func wrapOffset(d, m int) int {
	d = ((d % m) + m) % m
	if d > m/2 {
		d -= m
	}
	return d
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
