package mom

import (
	"runtime"
	"sync"
	"testing"

	"roughsim/internal/rng"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

// TestNewTabulatedHonorsWorkers is the regression test for the table
// builder ignoring Options.Workers: building with Workers=1 and with
// the full CPU count must produce bitwise-identical tables (each worker
// writes disjoint columns), and therefore bitwise-identical assembled
// systems.
func TestNewTabulatedHonorsWorkers(t *testing.T) {
	c := surface.NewGaussianCorr(1*um, 1*um)
	L := 5 * um
	m := 6
	kl := surface.NewKL(c, L, m)
	surf := kl.Sample(rng.New(7))
	p := paramsAt(5 * units.GHz)

	one := NewTableSet(p, L, m, 8*um, Options{Workers: 1})
	all := NewTableSet(p, L, m, 8*um, Options{Workers: runtime.NumCPU()})

	for mi, pair := range [][2]*tabulated{{one.g1, all.g1}, {one.g2, all.g2}} {
		a, b := pair[0], pair[1]
		for i := range a.far {
			for q := 0; q < 4; q++ {
				for k := range a.far[i][q] {
					if a.far[i][q][k] != b.far[i][q][k] {
						t.Fatalf("medium %d far table differs at [%d][%d][%d]", mi+1, i, q, k)
					}
				}
			}
		}
		for i := range a.nearTab {
			for q := 0; q < 4; q++ {
				for k := range a.nearTab[i][q] {
					if a.nearTab[i][q][k] != b.nearTab[i][q][k] {
						t.Fatalf("medium %d near table differs at [%d][%d][%d]", mi+1, i, q, k)
					}
				}
			}
		}
	}

	s1, err := AssembleTabulated(surf, p, one, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sn, err := AssembleTabulated(surf, p, all, Options{Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.Matrix.Data {
		if s1.Matrix.Data[i] != sn.Matrix.Data[i] {
			t.Fatalf("assembled matrix differs at %d: %v vs %v", i, s1.Matrix.Data[i], sn.Matrix.Data[i])
		}
	}
	for i := range s1.RHS {
		if s1.RHS[i] != sn.RHS[i] {
			t.Fatalf("assembled RHS differs at %d", i)
		}
	}
}

// TestTableCacheSingleFlight hammers one key from many goroutines and
// checks the cache built exactly once and every caller shares the same
// TableSet; a second frequency costs exactly one more build, and
// Workers (an execution detail) never splits the key.
func TestTableCacheSingleFlight(t *testing.T) {
	tc := NewTableCache(4, nil)
	p := paramsAt(5 * units.GHz)
	L, m, zspan := 5*um, 6, 2*um

	const callers = 8
	got := make([]*TableSet, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = tc.Get(p, L, m, zspan, Options{Workers: 1 + i%2})
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d received a different TableSet", i)
		}
	}
	if b := tc.Builds(); b != 1 {
		t.Fatalf("builds = %d, want 1", b)
	}

	if ts2 := tc.Get(paramsAt(6*units.GHz), L, m, zspan, Options{}); ts2 == got[0] {
		t.Fatal("distinct frequency shared a table set")
	}
	if b := tc.Builds(); b != 2 {
		t.Fatalf("builds after second frequency = %d, want 2", b)
	}
	if n := tc.Len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
}

// TestTableCacheLRUEviction fills a capacity-2 cache with three keys
// and checks the least-recently-used one is evicted (so re-requesting
// it rebuilds) while the recently-touched one survives.
func TestTableCacheLRUEviction(t *testing.T) {
	tc := NewTableCache(2, nil)
	L, m, zspan := 5*um, 6, 2*um
	opt := Options{Workers: 1}
	f1, f2, f3 := paramsAt(4*units.GHz), paramsAt(5*units.GHz), paramsAt(6*units.GHz)

	ts1 := tc.Get(f1, L, m, zspan, opt)
	tc.Get(f2, L, m, zspan, opt)
	tc.Get(f1, L, m, zspan, opt) // touch f1 → f2 becomes LRU
	tc.Get(f3, L, m, zspan, opt) // evicts f2
	if n := tc.Len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
	if b := tc.Builds(); b != 3 {
		t.Fatalf("builds = %d, want 3", b)
	}
	if got := tc.Get(f1, L, m, zspan, opt); got != ts1 {
		t.Fatal("f1 should have survived eviction")
	}
	tc.Get(f2, L, m, zspan, opt) // rebuild of the evicted entry
	if b := tc.Builds(); b != 4 {
		t.Fatalf("builds after re-request = %d, want 4", b)
	}
}
