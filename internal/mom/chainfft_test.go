package mom

import (
	"context"
	"math"
	"testing"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/resilience"
	"roughsim/internal/rng"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

// operatorSystem builds a lazy operator system whose dense assembler
// counts its invocations, so tests can assert the fft-gmres fast path
// never materializes the matrix.
func operatorSystem(s *surface.Surface, p Params, opt Options) (*System, *int) {
	calls := new(int)
	sys := NewOperatorSystem(s, p, opt, nil, func() (*cmplxmat.Matrix, error) {
		*calls++
		return Assemble(s, p, opt).Matrix, nil
	})
	return sys, calls
}

// fftAttempts counts report attempts on the fft-gmres stage.
func fftAttempts(rep *SolveReport) (total, skipped int) {
	for _, a := range rep.Attempts {
		if a.Stage == StageFFT {
			total++
			if a.Skipped {
				skipped++
			}
		}
	}
	return
}

func TestChainFFTStageWinsAndMatchesDense(t *testing.T) {
	L := 5 * um
	m := 12
	s := mildSurface(m, L, 0.01*um)
	p := paramsAt(5 * units.GHz)
	opt := Options{FFTMinCells: 1} // small test grid, real gates otherwise

	sys, denseCalls := operatorSystem(s, p, opt)
	if !sys.FFTAdmitted() {
		t.Fatalf("surface not admitted: %v", sys.FFTRejection())
	}
	sol, err := sys.SolveResilient(context.Background(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Report.Winner != StageFFT {
		for _, a := range sol.Report.Attempts {
			t.Logf("attempt %q skipped=%v err=%v", a.Stage, a.Skipped, a.Err)
		}
		t.Fatalf("winner = %q, want %q", sol.Report.Winner, StageFFT)
	}
	if *denseCalls != 0 || sys.DenseAssembled() {
		t.Fatalf("fft win materialized the dense matrix (%d calls)", *denseCalls)
	}

	denseSol, err := Assemble(s, p, opt).SolveResilient(context.Background(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sol.Pabs-denseSol.Pabs) / denseSol.Pabs; d > 1e-6 {
		t.Fatalf("fft-chain Pabs %g vs dense-chain %g (rel dev %g)", sol.Pabs, denseSol.Pabs, d)
	}
}

func TestChainOverBoundSurfaceSkipsFFTWithoutRetry(t *testing.T) {
	L := 5 * um
	m := 12
	// σ = 0.08 μm passes the operator's hard convergence bound but its
	// a-priori model error (≫ 1e-6) fails the chain's FFTModelTol gate.
	s := mildSurface(m, L, 0.08*um)
	p := paramsAt(5 * units.GHz)
	opt := Options{FFTMinCells: 1}

	sys, denseCalls := operatorSystem(s, p, opt)
	if sys.FFTAdmitted() {
		t.Fatal("over-bound surface unexpectedly admitted")
	}
	if kind := resilience.Classify(sys.FFTRejection()); kind != resilience.KindNumerical {
		t.Fatalf("rejection kind = %v, want numerical", kind)
	}
	// Retries > 0 must not re-attempt the deterministic rejection.
	sol, err := sys.SolveResilient(context.Background(),
		SolveOptions{Policy: resilience.Policy{Retries: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Report.Winner != StageGMRES {
		t.Fatalf("winner = %q, want %q", sol.Report.Winner, StageGMRES)
	}
	total, skipped := fftAttempts(sol.Report)
	if total != 1 || skipped != 1 {
		t.Fatalf("fft attempts = %d (skipped %d), want exactly 1 skipped", total, skipped)
	}
	a := sol.Report.Attempts[0]
	if a.Stage != StageFFT || !a.Skipped || a.Kind != resilience.KindNumerical {
		t.Fatalf("first attempt = %+v, want skipped numerical fft-gmres", a)
	}
	if sol.Report.Failed() != 0 {
		t.Fatalf("skipped rejection counted as %d failures", sol.Report.Failed())
	}
	if *denseCalls != 1 || !sys.DenseAssembled() {
		t.Fatalf("dense matrix materialized %d times, want exactly once", *denseCalls)
	}
}

func TestChainInjectedFFTFailureFallsBack(t *testing.T) {
	L := 5 * um
	m := 12
	s := mildSurface(m, L, 0.01*um)
	p := paramsAt(5 * units.GHz)
	opt := Options{FFTMinCells: 1}

	sys, denseCalls := operatorSystem(s, p, opt)
	if !sys.FFTAdmitted() {
		t.Fatalf("surface not admitted: %v", sys.FFTRejection())
	}
	inj := resilience.NewInjector(resilience.FaultSpec{
		Op: StageFFT, Fraction: 1, Kind: resilience.KindConvergence,
	})
	sol, err := sys.SolveResilient(context.Background(), SolveOptions{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Report.Winner != StageGMRES {
		t.Fatalf("winner = %q, want %q", sol.Report.Winner, StageGMRES)
	}
	if len(sol.Report.Attempts) == 0 || !sol.Report.Attempts[0].Injected {
		t.Fatalf("first attempt not the injected fft failure: %+v", sol.Report.Attempts)
	}
	if *denseCalls != 1 {
		t.Fatalf("dense materializations = %d, want 1", *denseCalls)
	}

	denseSol, err := Assemble(s, p, opt).SolveResilient(context.Background(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sol.Pabs-denseSol.Pabs) / denseSol.Pabs; d > 1e-6 {
		t.Fatalf("fallback Pabs %g vs dense-chain %g (rel dev %g)", sol.Pabs, denseSol.Pabs, d)
	}
}

func TestChainSmallGridSkipsFFTStage(t *testing.T) {
	L := 5 * um
	m := 8 // 64 cells < default FFTMinCells
	s := mildSurface(m, L, 0.01*um)
	p := paramsAt(5 * units.GHz)

	sys, denseCalls := operatorSystem(s, p, Options{})
	if sys.FFTAdmitted() {
		t.Fatal("small grid unexpectedly admitted to the FFT stage")
	}
	sol, err := sys.SolveResilient(context.Background(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Report.Winner != StageGMRES {
		t.Fatalf("winner = %q, want %q", sol.Report.Winner, StageGMRES)
	}
	if *denseCalls != 1 {
		t.Fatalf("dense materializations = %d, want 1", *denseCalls)
	}
}

func TestNewFFTOperatorTypedRejections(t *testing.T) {
	L := 5 * um
	m := 10
	p := paramsAt(5 * units.GHz)

	if _, err := NewFFTOperator(mildSurface(m, L, 0.01*um), p, 0, Options{}); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("order rejection classified %v, want invalid-input", resilience.Classify(err))
	}

	c := surface.NewGaussianCorr(1*um, 1.5*um)
	steep := surface.NewKL(c, L, m).SampleTruncated(rng.New(4), 8)
	_, err := NewFFTOperator(steep, p, 3, Options{})
	if resilience.Classify(err) != resilience.KindNumerical {
		t.Fatalf("bound rejection classified %v, want numerical", resilience.Classify(err))
	}
}

func TestFFTOperatorSolveHonorsCancellation(t *testing.T) {
	L := 5 * um
	m := 12
	s := mildSurface(m, L, 0.01*um)
	p := paramsAt(5 * units.GHz)
	op, err := NewFFTOperator(s, p, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := op.Solve(ctx, op.RHS(p), 1e-12); resilience.Classify(err) != resilience.KindCanceled {
		t.Fatalf("cancelled solve classified %v (err %v), want canceled", resilience.Classify(err), err)
	}
}

func TestFFTOperatorBuildWorkersBitwise(t *testing.T) {
	L := 5 * um
	m := 10
	s := mildSurface(m, L, 0.05*um)
	p := paramsAt(5 * units.GHz)

	op1, err := NewFFTOperator(s, p, 3, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	opN, err := NewFFTOperator(s, p, 3, Options{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	for med := 0; med < 2; med++ {
		for q := 0; q <= 3; q++ {
			for idx := range op1.realK[med].g[q] {
				if op1.realK[med].g[q][idx] != opN.realK[med].g[q][idx] ||
					op1.realK[med].gx[q][idx] != opN.realK[med].gx[q][idx] ||
					op1.realK[med].gy[q][idx] != opN.realK[med].gy[q][idx] ||
					op1.realK[med].gz[q][idx] != opN.realK[med].gz[q][idx] ||
					op1.spec[med].g[q][idx] != opN.spec[med].g[q][idx] {
					t.Fatalf("kernel fit differs between worker counts at med=%d q=%d idx=%d", med, q, idx)
				}
			}
		}
	}
	if len(op1.nearEntries) != len(opN.nearEntries) {
		t.Fatalf("near-entry counts differ: %d vs %d", len(op1.nearEntries), len(opN.nearEntries))
	}
	for i := range op1.nearEntries {
		if op1.nearEntries[i] != opN.nearEntries[i] {
			t.Fatalf("near entry %d differs between worker counts", i)
		}
	}
}

func TestFFTOperatorTabulatedMatchesExactBuild(t *testing.T) {
	L := 5 * um
	m := 12
	s := mildSurface(m, L, 0.05*um)
	p := paramsAt(5 * units.GHz)
	opt := Options{}
	ts := NewTableSet(p, L, m, 10*um, opt)

	exact, err := NewFFTOperator(s, p, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewFFTOperatorTabulated(s, p, ts, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	n2 := 2 * m * m
	x := make([]complex128, n2)
	for i := range x {
		x[i] = complex(math.Sin(float64(3*i+1)), math.Cos(float64(2*i+1)))
	}
	ye := make([]complex128, n2)
	yt := make([]complex128, n2)
	exact.MatVec(ye, x)
	tab.MatVec(yt, x)
	if d := cmplxmat.Norm2(cmplxmat.Sub(yt, ye)) / cmplxmat.Norm2(ye); d > 1e-6 {
		t.Fatalf("tabulated operator matvec deviates from exact build by %g", d)
	}
}
