package mom

import (
	"context"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/resilience"
)

// Stage names of the resilient solve chain, in fallback order. They are
// also the op names the fault injector matches on.
const (
	StageGMRES        = "gmres"        // matrix-free restarted GMRES
	StageGMRESPrecond = "gmres-jacobi" // restarted GMRES, Jacobi-preconditioned, tighter budget
	StageBiCGSTAB     = "bicgstab"     // stabilized bi-conjugate gradients
	StageDenseLU      = "lu"           // dense LU with partial pivoting
)

// SolveOptions configures System.SolveResilient.
type SolveOptions struct {
	// Tol is the accepted relative residual of the verified solution
	// (default 1e-8). Every stage's candidate is verified against the
	// original (unpreconditioned) system before being accepted.
	Tol float64
	// Policy controls per-stage retries.
	Policy resilience.Policy
	// Injector, when set, deterministically fails stages (by stage name
	// and Key) for testing the fallback path.
	Injector *resilience.Injector
	// Key identifies this solve to the fault injector (e.g. a sample
	// index).
	Key uint64
}

// SolveReport is the per-stage accounting of one resilient solve.
type SolveReport struct {
	resilience.Report
	// RelRes is the independently verified relative residual of the
	// winning stage's solution.
	RelRes float64
}

// SolveResilient solves the system through the fallback chain
// GMRES → Jacobi-preconditioned GMRES → BiCGSTAB → dense LU, verifying
// the true residual (and finiteness) of every stage's candidate before
// accepting it, and recording per-stage accounting on the returned
// Solution. Cancellation is honored between stages.
func (sys *System) SolveResilient(ctx context.Context, opt SolveOptions) (*Solution, error) {
	n2 := 2 * sys.N
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	mv := func(y, x []complex128) {
		copy(y, sys.Matrix.MulVec(x))
	}

	var x []complex128
	report := &SolveReport{}

	// verify accepts a candidate only if it is finite and its true
	// residual against the original system is within 10× the target —
	// the same drift guard GMRES applies internally.
	verify := func(cand []complex128) error {
		if cmplxmat.HasNonFinite(cand) {
			return resilience.Errorf(resilience.KindNumerical, "mom.verify",
				"non-finite entries in candidate solution")
		}
		r := make([]complex128, n2)
		mv(r, cand)
		for i := range r {
			r[i] = sys.RHS[i] - r[i]
		}
		bnorm := cmplxmat.Norm2(sys.RHS)
		rr := 0.0
		if bnorm > 0 {
			rr = cmplxmat.Norm2(r) / bnorm
		}
		if rr > 10*tol {
			return resilience.Errorf(resilience.KindConvergence, "mom.verify",
				"verified residual %.3e exceeds %.3e", rr, 10*tol)
		}
		x = cand
		report.RelRes = rr
		return nil
	}

	// Jacobi (diagonal) left preconditioner for the second GMRES stage:
	// solve D⁻¹A·x = D⁻¹b. The MoM diagonal is dominated by the ½ jump
	// terms plus the singular self-integrals, so D⁻¹ rebalances the two
	// block rows when β is small.
	precond := func() (cmplxmat.MatVec, []complex128) {
		dinv := make([]complex128, n2)
		for i := 0; i < n2; i++ {
			d := sys.Matrix.At(i, i)
			if d == 0 {
				d = 1
			}
			dinv[i] = 1 / d
		}
		pmv := func(y, xx []complex128) {
			mv(y, xx)
			for i := range y {
				y[i] *= dinv[i]
			}
		}
		pb := make([]complex128, n2)
		for i := range pb {
			pb[i] = sys.RHS[i] * dinv[i]
		}
		return pmv, pb
	}

	stages := []resilience.Stage{
		{Name: StageGMRES, Run: func(context.Context) error {
			c, _, err := cmplxmat.GMRES(n2, mv, sys.RHS, nil,
				cmplxmat.IterOpts{Tol: tol, Restart: 60})
			if err != nil {
				return err
			}
			return verify(c)
		}},
		{Name: StageGMRESPrecond, Run: func(context.Context) error {
			pmv, pb := precond()
			c, _, err := cmplxmat.GMRES(n2, pmv, pb, nil,
				cmplxmat.IterOpts{Tol: tol / 10, Restart: 120, MaxIter: 30 * n2})
			if err != nil {
				return err
			}
			return verify(c)
		}},
		{Name: StageBiCGSTAB, Run: func(context.Context) error {
			c, _, err := cmplxmat.BiCGSTAB(n2, mv, sys.RHS, nil,
				cmplxmat.IterOpts{Tol: tol, MaxIter: 30 * n2})
			if err != nil {
				return err
			}
			return verify(c)
		}},
		{Name: StageDenseLU, Run: func(context.Context) error {
			c, err := cmplxmat.SolveDense(sys.Matrix, sys.RHS)
			if err != nil {
				return err
			}
			return verify(c)
		}},
	}

	rep, err := opt.Policy.Execute(ctx, "mom.solve", opt.Injector, opt.Key, stages)
	report.Report = rep
	if err != nil {
		return nil, err
	}
	sol := sys.solutionFrom(x)
	sol.Report = report
	return sol, nil
}
