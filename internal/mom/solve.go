package mom

import (
	"context"
	"time"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
)

// Stage names of the resilient solve chain, in fallback order. They are
// also the op names the fault injector matches on.
const (
	StageFFT          = "fft-gmres"    // FFT-accelerated operator, preconditioned GMRES (matrix-free)
	StageGMRES        = "gmres"        // matrix-free restarted GMRES on the dense matvec
	StageGMRESPrecond = "gmres-jacobi" // restarted GMRES, Jacobi-preconditioned, tighter budget
	StageBiCGSTAB     = "bicgstab"     // stabilized bi-conjugate gradients
	StageDenseLU      = "lu"           // dense LU with partial pivoting
)

// SolveOptions configures System.SolveResilient.
type SolveOptions struct {
	// Tol is the accepted relative residual of the verified solution
	// (default 1e-8). Every stage's candidate is verified against the
	// original (unpreconditioned) system before being accepted.
	Tol float64
	// Policy controls per-stage retries.
	Policy resilience.Policy
	// Injector, when set, deterministically fails stages (by stage name
	// and Key) for testing the fallback path.
	Injector *resilience.Injector
	// Key identifies this solve to the fault injector (e.g. a sample
	// index).
	Key uint64
	// Metrics, when non-nil, receives the chain's stage timings
	// (mom.fft.solve_seconds for the FFT stage). The registry is
	// nil-safe, so leaving it unset disables instrumentation.
	Metrics *telemetry.Registry
}

// SolveReport is the per-stage accounting of one resilient solve.
type SolveReport struct {
	resilience.Report
	// RelRes is the independently verified relative residual of the
	// winning stage's solution.
	RelRes float64
}

// SolveResilient solves the system through the fallback chain
// fft-gmres → GMRES → Jacobi-preconditioned GMRES → BiCGSTAB → dense
// LU, verifying the true residual (and finiteness) of every stage's
// candidate before accepting it, and recording per-stage accounting on
// the returned Solution. Cancellation is honored between stages (and,
// for the FFT stage, between GMRES restarts).
//
// The fft-gmres stage only exists for systems built with
// NewOperatorSystem whose surface passed the admissibility gates; its
// candidate is verified through the operator's own MatVec, so a solve
// it wins never touches (or assembles) the dense matrix. Dense stages
// of a lazily-built system materialize the matrix on first entry. A
// gate rejection is prepended to the report as a Skipped fft-gmres
// attempt: observable, but never retried and never counted as an
// execution failure.
func (sys *System) SolveResilient(ctx context.Context, opt SolveOptions) (*Solution, error) {
	n2 := 2 * sys.N
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	denseMV := func(y, x []complex128) {
		copy(y, sys.Matrix.MulVec(x))
	}

	var x []complex128
	report := &SolveReport{}

	// verify accepts a candidate only if it is finite and its true
	// residual — against the matvec of the stage family that produced it
	// — is within 10× the target, the same drift guard GMRES applies
	// internally.
	verify := func(cand []complex128, mv cmplxmat.MatVec) error {
		if cmplxmat.HasNonFinite(cand) {
			return resilience.Errorf(resilience.KindNumerical, "mom.verify",
				"non-finite entries in candidate solution")
		}
		r := make([]complex128, n2)
		mv(r, cand)
		for i := range r {
			r[i] = sys.RHS[i] - r[i]
		}
		bnorm := cmplxmat.Norm2(sys.RHS)
		rr := 0.0
		if bnorm > 0 {
			rr = cmplxmat.Norm2(r) / bnorm
		}
		if rr > 10*tol {
			return resilience.Errorf(resilience.KindConvergence, "mom.verify",
				"verified residual %.3e exceeds %.3e", rr, 10*tol)
		}
		x = cand
		report.RelRes = rr
		return nil
	}

	// Jacobi (diagonal) left preconditioner for the second GMRES stage:
	// solve D⁻¹A·x = D⁻¹b. The MoM diagonal is dominated by the ½ jump
	// terms plus the singular self-integrals, so D⁻¹ rebalances the two
	// block rows when β is small.
	precond := func() (cmplxmat.MatVec, []complex128) {
		dinv := make([]complex128, n2)
		for i := 0; i < n2; i++ {
			d := sys.Matrix.At(i, i)
			if d == 0 {
				d = 1
			}
			dinv[i] = 1 / d
		}
		pmv := func(y, xx []complex128) {
			denseMV(y, xx)
			for i := range y {
				y[i] *= dinv[i]
			}
		}
		pb := make([]complex128, n2)
		for i := range pb {
			pb[i] = sys.RHS[i] * dinv[i]
		}
		return pmv, pb
	}

	// dense wraps a dense-chain stage so a lazily-built system assembles
	// its matrix on first entry (no-op for the eager paths).
	dense := func(run func(context.Context) error) func(context.Context) error {
		return func(c context.Context) error {
			if err := sys.Materialize(); err != nil {
				return err
			}
			return run(c)
		}
	}

	var stages []resilience.Stage
	if sys.fft != nil {
		op := sys.fft
		stages = append(stages, resilience.Stage{Name: StageFFT, Run: func(c context.Context) error {
			_, sp := trace.StartSpan(c, "mom.fft.solve")
			start := time.Now()
			cand, _, err := op.solveVec(c, sys.RHS, tol)
			if err == nil {
				err = verify(cand, op.MatVec)
			}
			opt.Metrics.Histogram("mom.fft.solve_seconds").Observe(time.Since(start).Seconds())
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
			return err
		}})
	}
	stages = append(stages,
		resilience.Stage{Name: StageGMRES, Run: dense(func(context.Context) error {
			c, _, err := cmplxmat.GMRES(n2, denseMV, sys.RHS, nil,
				cmplxmat.IterOpts{Tol: tol, Restart: 60})
			if err != nil {
				return err
			}
			return verify(c, denseMV)
		})},
		resilience.Stage{Name: StageGMRESPrecond, Run: dense(func(context.Context) error {
			pmv, pb := precond()
			c, _, err := cmplxmat.GMRES(n2, pmv, pb, nil,
				cmplxmat.IterOpts{Tol: tol / 10, Restart: 120, MaxIter: 30 * n2})
			if err != nil {
				return err
			}
			return verify(c, denseMV)
		})},
		resilience.Stage{Name: StageBiCGSTAB, Run: dense(func(context.Context) error {
			c, _, err := cmplxmat.BiCGSTAB(n2, denseMV, sys.RHS, nil,
				cmplxmat.IterOpts{Tol: tol, MaxIter: 30 * n2})
			if err != nil {
				return err
			}
			return verify(c, denseMV)
		})},
		resilience.Stage{Name: StageDenseLU, Run: dense(func(context.Context) error {
			c, err := cmplxmat.SolveDense(sys.Matrix, sys.RHS)
			if err != nil {
				return err
			}
			return verify(c, denseMV)
		})},
	)

	rep, err := opt.Policy.Execute(ctx, "mom.solve", opt.Injector, opt.Key, stages)
	if sys.fft == nil && sys.fftRej != nil {
		// The FFT stage was gated off for this surface: record the typed
		// rejection for observability without ever having run (or
		// retried) the stage.
		rep.Attempts = append([]resilience.Attempt{{
			Stage:   StageFFT,
			Kind:    resilience.Classify(sys.fftRej),
			Err:     sys.fftRej,
			Skipped: true,
		}}, rep.Attempts...)
	}
	report.Report = rep
	if err != nil {
		return nil, err
	}
	sol := sys.solutionFrom(x)
	sol.Report = report
	return sol, nil
}
