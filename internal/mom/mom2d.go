package mom

import (
	"fmt"
	"math"
	"math/cmplx"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/greens"
	"roughsim/internal/surface"
)

// System2D is the assembled 2M×2M system of the 2D SWM variant: the
// surface is uniform along y, the problem reduces to a line integral
// equation over one period of the profile with the 1-D-periodic 2-D
// Green's function (Fig. 6 of the paper).
type System2D struct {
	N      int
	Matrix *cmplxmat.Matrix
	RHS    []complex128
	Step   float64
}

// Assemble2D builds the dense system for a profile realization.
func Assemble2D(p *surface.Profile, par Params, opt Options) *System2D {
	opt = opt.withDefaults()
	m := p.M
	h := p.Step()
	fx := p.Gradient()
	fxx := p.SecondDeriv()

	g1 := greens.NewPeriodic2D(par.K1, p.L)
	g2 := greens.NewPeriodic2D(par.K2, p.L)

	a := cmplxmat.New(2*m, 2*m)
	rhs := make([]complex128, 2*m)

	// Self-cell singular integral of the 2-D log kernel:
	// ∫_{−h/2}^{h/2} −ln|x|/(2π) dx = (h/2π)·(1 − ln(h/2)).
	selfSing := complex(h/(2*math.Pi)*(1-math.Log(h/2)), 0)
	s1Self := selfSing + complex(h, 0)*g1.EvalRegularized()
	s2Self := selfSing + complex(h, 0)*g2.EvalRegularized()

	sub := opt.NearSubdiv
	for i := 0; i < m; i++ {
		xi := float64(i) * h
		zi := p.H[i]
		row1 := a.Row(i)
		row2 := a.Row(m + i)
		for j := 0; j < m; j++ {
			var s1, s2, d1, d2 complex128
			jn := [2]float64{-fx[j], 1}
			if i == j {
				s1, s2 = s1Self, s2Self
				// PV double-layer self term on a curved line: for the
				// local graph z ≈ f″x²/2 the static kernel gives the
				// constant n̂′·∇′G = f″/(4π), so the cell integral is
				// f″·h/(4π) (2-D analogue of the 3-D curvature term).
				curv := complex(fxx[i]*h/(4*math.Pi), 0)
				d1, d2 = curv, curv
			} else {
				dxc := xi - float64(j)*h
				dzc := zi - p.H[j]
				di := i - j
				di = ((di % m) + m) % m
				if di > m/2 {
					di -= m
				}
				if di < 0 {
					di = -di
				}
				if di <= opt.NearRadius {
					// Second-order source geometry, as in the 3-D path.
					for sx := 0; sx < sub; sx++ {
						ox := ((float64(sx)+0.5)/float64(sub) - 0.5) * h
						ddz := dzc - (fx[j]*ox + 0.5*fxx[j]*ox*ox)
						v1, gr1 := g1.EvalGrad(dxc-ox, ddz)
						v2, gr2 := g2.EvalGrad(dxc-ox, ddz)
						w := complex(h/float64(sub), 0)
						s1 += v1 * w
						s2 += v2 * w
						snx := -(fx[j] + fxx[j]*ox)
						d1 += -(complex(snx, 0)*gr1[0] + gr1[1]) * w
						d2 += -(complex(snx, 0)*gr2[0] + gr2[1]) * w
					}
				} else {
					v1, gr1 := g1.EvalGrad(dxc, dzc)
					v2, gr2 := g2.EvalGrad(dxc, dzc)
					w := complex(h, 0)
					s1 = v1 * w
					s2 = v2 * w
					d1 = -(complex(jn[0], 0)*gr1[0] + complex(jn[1], 0)*gr1[1]) * w
					d2 = -(complex(jn[0], 0)*gr2[0] + complex(jn[1], 0)*gr2[1]) * w
				}
			}
			row1[j] = -d1
			row1[m+j] = par.Beta * s1
			row2[j] = d2
			row2[m+j] = -s2
		}
		row1[i] += 0.5
		row2[i] += 0.5
		rhs[i] = cmplx.Exp(complex(0, -1) * par.K1 * complex(zi, 0))
	}
	return &System2D{N: m, Matrix: a, RHS: rhs, Step: h}
}

// Solve factors and solves the dense 2-D system. Pabs is per unit length
// in y: (h/2)·Σ Re{ψ*·u}.
func (sys *System2D) Solve() (*Solution, error) {
	x, err := cmplxmat.SolveDense(sys.Matrix, sys.RHS)
	if err != nil {
		return nil, fmt.Errorf("mom: 2D dense solve: %w", err)
	}
	n := sys.N
	sol := &Solution{Psi: x[:n], U: x[n : 2*n]}
	var p float64
	for i := 0; i < n; i++ {
		p += real(sol.Psi[i])*real(sol.U[i]) + imag(sol.Psi[i])*imag(sol.U[i])
	}
	sol.Pabs = sys.Step / 2 * p
	return sol, nil
}

// FlatPabsAnalytic2D returns the analytic flat absorbed power per unit y
// for one period L: (L/2)·|T|²·Re{−j·k₂}.
func FlatPabsAnalytic2D(p Params, L float64) float64 {
	_, t := FlatTransmission(p)
	mag := real(t)*real(t) + imag(t)*imag(t)
	return L / 2 * mag * real(complex(0, -1)*p.K2)
}
