package mom

import (
	"math"
	"math/cmplx"
	"testing"

	"roughsim/internal/greens"
	"roughsim/internal/rng"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

func TestTabulatedMatchesExactAssembly(t *testing.T) {
	c := surface.NewGaussianCorr(1*um, 1*um)
	L := 5 * um
	m := 10
	kl := surface.NewKL(c, L, m)
	surf := kl.Sample(rng.New(21))
	f := 5 * units.GHz
	p := paramsAt(f)
	opt := Options{}

	exact := Assemble(surf, p, opt)
	ts := NewTableSet(p, L, m, 8*um, opt)
	tab, err := AssembleTabulated(surf, p, ts, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Entrywise matrix agreement relative to the matrix scale.
	scale := exact.Matrix.MaxAbs()
	var worst float64
	for i := range exact.Matrix.Data {
		if d := cmplx.Abs(exact.Matrix.Data[i]-tab.Matrix.Data[i]) / scale; d > worst {
			worst = d
		}
	}
	if worst > 1e-7 {
		t.Fatalf("tabulated matrix deviates: worst rel %g", worst)
	}

	se, err := exact.Solve()
	if err != nil {
		t.Fatal(err)
	}
	st, err := tab.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(se.Pabs-st.Pabs) / se.Pabs; d > 1e-6 {
		t.Fatalf("tabulated Pabs %g vs exact %g (rel %g)", st.Pabs, se.Pabs, d)
	}
}

func TestTableInterpolationErrorAcrossSkinDepthRange(t *testing.T) {
	// The tables must reproduce the direct Ewald/image-series kernels to
	// interpolation precision over the paper's whole 1–9 GHz sweep, where
	// the conductor's skin depth δ shrinks from ~2 μm to ~0.7 μm and the
	// medium-2 kernel becomes progressively sharper. Sample both media's
	// far and near tables at off-node heights and compare value and
	// gradient against the exact evaluators the tables were built from.
	L := 5 * um
	m := 8
	zspan := 2 * um
	opt := Options{}.withDefaults()
	// Off-node Δz samples: Chebyshev nodes cluster at the span edges, so
	// include mid-interval points where interpolation error peaks.
	dzs := []float64{-0.93 * zspan, -0.41 * zspan, -0.077 * zspan, 0.013 * zspan, 0.55 * zspan, 0.89 * zspan}

	for _, fGHz := range []float64{1, 5, 9} {
		f := fGHz * units.GHz
		p := paramsAt(f)
		delta := units.SkinDepthCopper(f)
		if delta < 0.5*um || delta > 2.5*um {
			t.Fatalf("f=%g GHz: skin depth %g m outside the expected 1–9 GHz range", fGHz, delta)
		}
		ts := NewTableSet(p, L, m, zspan, opt)

		for mi, tb := range []*tabulated{ts.g1, ts.g2} {
			exact := []*greens.Periodic3D{ts.exact1, ts.exact2}[mi]
			var worst float64
			check := func(label string, dx, dy float64, got complex128, gotGr [3]complex128, dz float64) {
				want, wantGr := exact.EvalGrad(dx, dy, dz)
				// Gradients are ~1/ρ² larger than values near the
				// origin; normalize each component by its own magnitude
				// (with the value's scale as a floor) so the bound is a
				// true relative error everywhere.
				floor := cmplx.Abs(want)
				if d := cmplx.Abs(got-want) / (floor + 1e-300); d > worst {
					worst = d
				}
				for q := 0; q < 3; q++ {
					ref := cmplx.Abs(wantGr[q])
					if ref < floor {
						ref = floor
					}
					if d := cmplx.Abs(gotGr[q]-wantGr[q]) / (ref + 1e-300); d > worst {
						worst = d
					}
				}
				if worst > 1e-6 {
					t.Fatalf("f=%g GHz medium %d %s (dx=%g dy=%g dz=%g): rel err %g",
						fGHz, mi+1, label, dx, dy, dz, worst)
				}
			}

			// Far table: a spread of wrapped grid offsets (never (0,0) —
			// assembly keeps the self cell exact).
			for _, off := range [][2]int{{1, 0}, {0, 3}, {2, 2}, {4, 1}, {3, 6}, {7, 7}} {
				ix, iy := off[0], off[1]
				for _, dz := range dzs {
					v, gr := tb.evalFar(ix, iy, dz)
					check("far", float64(ix)*tb.h, float64(iy)*tb.h, v, gr, dz)
				}
			}
			// Near table: every cell offset at two sub-offsets, including
			// the smallest lateral separations where the kernel peaks.
			for c := -tb.near; c <= tb.near; c++ {
				for _, s := range []int{0, tb.sub - 1} {
					ai := tb.nearIndex(c, s)
					for _, dz := range dzs {
						v, gr := tb.evalNear(ai, ai, dz)
						check("near", tb.nearOffset(ai), tb.nearOffset(ai), v, gr, dz)
					}
				}
			}
			t.Logf("f=%g GHz (δ=%.3g μm) medium %d: worst rel interp err %.3g", fGHz, delta/um, mi+1, worst)
		}
	}
}

func TestTabulatedRejectsMismatch(t *testing.T) {
	p := paramsAt(5 * units.GHz)
	ts := NewTableSet(p, 5*um, 8, 2*um, Options{})
	// Wrong grid.
	if _, err := AssembleTabulated(surface.NewFlat(5*um, 10), p, ts, Options{}); err == nil {
		t.Fatal("expected grid mismatch error")
	}
	// Height out of span.
	s := surface.NewFlat(5*um, 8)
	s.H[0] = 3 * um
	if _, err := AssembleTabulated(s, p, ts, Options{}); err == nil {
		t.Fatal("expected span error")
	}
	// Option mismatch.
	if _, err := AssembleTabulated(surface.NewFlat(5*um, 8), p, ts, Options{NearSubdiv: 2}); err == nil {
		t.Fatal("expected option mismatch error")
	}
}

func TestChebyshevInterpolationMachinery(t *testing.T) {
	// Interpolate a known smooth complex function and check accuracy.
	span := 3.0
	nodes := chebNodes(chebDegree, span)
	smp := make([]complex128, chebDegree)
	f := func(z float64) complex128 {
		// Smooth on [−span, span]: nearest pole at z = −5.
		return cmplx.Exp(complex(0, 1.3*z)) / complex(5+z, 0)
	}
	for k, z := range nodes {
		smp[k] = f(z)
	}
	coef := chebCoeffs(smp)
	for _, z := range []float64{-2.9, -1.1, 0, 0.37, 2.5} {
		got := clenshaw(coef, z/span)
		want := f(z)
		if cmplx.Abs(got-want) > 1e-9*(1+cmplx.Abs(want)) {
			t.Fatalf("chebyshev interp at %g: %v vs %v", z, got, want)
		}
	}
}

func TestNearOffsetIndexRoundTrip(t *testing.T) {
	tb := &tabulated{sub: 4, near: 2, h: 0.5}
	tb.nearDim = (2*tb.near + 1) * tb.sub
	for c := -2; c <= 2; c++ {
		for s := 0; s < 4; s++ {
			idx := tb.nearIndex(c, s)
			if idx < 0 || idx >= tb.nearDim {
				t.Fatalf("index out of range: c=%d s=%d idx=%d", c, s, idx)
			}
			// The offset of this index must equal c·h − sub-shift.
			o := ((float64(s)+0.5)/4 - 0.5) * tb.h
			want := float64(c)*tb.h - o
			if got := tb.nearOffset(idx); math.Abs(got-want) > 1e-15 {
				t.Fatalf("offset mismatch c=%d s=%d: %g vs %g", c, s, got, want)
			}
		}
	}
}

func TestWrapOffset(t *testing.T) {
	cases := []struct{ d, m, want int }{
		{0, 8, 0}, {1, 8, 1}, {4, 8, 4}, {5, 8, -3}, {7, 8, -1}, {-1, 8, -1}, {-7, 8, 1}, {9, 8, 1},
	}
	for _, c := range cases {
		if got := wrapOffset(c.d, c.m); got != c.want {
			t.Errorf("wrapOffset(%d, %d) = %d, want %d", c.d, c.m, got, c.want)
		}
	}
}
