package mom

import (
	"context"
	"math"
	"testing"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/rng"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

// mildSurface returns a realization smooth/shallow enough for the
// Taylor-FFT operator's convergence bound (σ ≪ near-field radius·h).
func mildSurface(m int, L, sigma float64) *surface.Surface {
	c := surface.NewGaussianCorr(sigma, L/4)
	kl := surface.NewKL(c, L, m)
	return kl.SampleTruncated(rng.New(17), 10)
}

func TestFFTOperatorMatchesDenseMatVec(t *testing.T) {
	L := 5 * um
	m := 12
	s := mildSurface(m, L, 0.08*um)
	p := paramsAt(5 * units.GHz)
	opt := Options{}

	op, err := NewFFTOperator(s, p, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	sys := Assemble(s, p, opt)

	src := rng.New(2)
	n2 := 2 * m * m
	x := make([]complex128, n2)
	for i := range x {
		x[i] = complex(src.NormFloat64(), src.NormFloat64())
	}
	yDense := sys.Matrix.MulVec(x)
	yFFT := make([]complex128, n2)
	op.MatVec(yFFT, x)

	num := cmplxmat.Norm2(cmplxmat.Sub(yFFT, yDense))
	den := cmplxmat.Norm2(yDense)
	if num/den > 2e-3 {
		t.Fatalf("FFT matvec deviates from dense by %g", num/den)
	}
}

func TestFFTOperatorOrderConvergence(t *testing.T) {
	// Raising the Taylor order must shrink the matvec error.
	L := 5 * um
	m := 10
	s := mildSurface(m, L, 0.1*um)
	p := paramsAt(5 * units.GHz)
	sys := Assemble(s, p, Options{})
	src := rng.New(3)
	n2 := 2 * m * m
	x := make([]complex128, n2)
	for i := range x {
		x[i] = complex(src.NormFloat64(), src.NormFloat64())
	}
	yDense := sys.Matrix.MulVec(x)

	var prev float64 = math.Inf(1)
	for _, order := range []int{1, 2, 4} {
		op, err := NewFFTOperator(s, p, order, Options{})
		if err != nil {
			t.Fatal(err)
		}
		y := make([]complex128, n2)
		op.MatVec(y, x)
		e := cmplxmat.Norm2(cmplxmat.Sub(y, yDense)) / cmplxmat.Norm2(yDense)
		if e > prev*1.5 {
			t.Fatalf("order %d error %g did not improve on %g", order, e, prev)
		}
		prev = e
	}
	if prev > 5e-3 {
		t.Fatalf("order-4 matvec error %g too large", prev)
	}
}

func TestFFTOperatorSolveMatchesDense(t *testing.T) {
	L := 5 * um
	m := 12
	s := mildSurface(m, L, 0.08*um)
	p := paramsAt(5 * units.GHz)

	dense, err := Assemble(s, p, Options{}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewFFTOperator(s, p, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := op.Solve(context.Background(), op.RHS(p), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sol.Pabs-dense.Pabs) / dense.Pabs; d > 5e-3 {
		t.Fatalf("FFT-operator Pabs %g vs dense %g (rel %g)", sol.Pabs, dense.Pabs, d)
	}
}

func TestFFTOperatorRejectsSteepSurface(t *testing.T) {
	L := 5 * um
	m := 10
	c := surface.NewGaussianCorr(1*um, 1.5*um)
	kl := surface.NewKL(c, L, m)
	s := kl.SampleTruncated(rng.New(4), 8) // heights ~μm ≫ bound
	p := paramsAt(5 * units.GHz)
	if _, err := NewFFTOperator(s, p, 3, Options{}); err == nil {
		t.Fatal("expected convergence-bound rejection for a steep surface")
	}
}
