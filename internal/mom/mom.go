// Package mom discretizes the coupled two-medium scalar surface integral
// equations (7a)/(7b) of the paper with the method of moments — pulse
// basis functions on the L×L doubly-periodic patch grid and point
// collocation at cell centers — producing the block system (9):
//
//	[ ½I − D₁ ,  β·S₁ ] [Ψ]   [Ψin]
//	[ ½I + D₂ ,  −S₂  ] [U] = [ 0 ]
//
// where S_i is the single-layer operator of the periodic Green's function
// G_i^{pq} and D_i the double-layer operator with the source-point normal
// derivative (Jacobian absorbed into U = √(1+f_x²+f_y²)·n̂·∇ψ₂ as in the
// paper). The ½ free terms are the jump constants of the double-layer
// potential; the paper's eq. (7) writes the limit form with the jump
// absorbed.
//
// Self-cell singular integrals are extracted analytically (the 1/(4πR)
// static kernel over a square cell has a closed form), near cells use
// subdivided quadrature, and far cells one-point quadrature — adequate at
// the paper's Δ = η/8 resolution and verified against analytic flat-
// surface transmission in the tests.
package mom

import (
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/greens"
	"roughsim/internal/resilience"
	"roughsim/internal/surface"
)

// Params bundles the physical inputs of a solve.
type Params struct {
	K1   complex128 // dielectric wavenumber ω√(με₁)
	K2   complex128 // conductor wavenumber (1+j)/δ
	Beta complex128 // continuity ratio β = ε₁/ε₂ = −jωε₁ρ
}

// Options tunes the discretization.
type Options struct {
	// NearRadius is the cell-index radius within which source integrals
	// are evaluated by subdivided quadrature instead of the centroid
	// rule. Default 2.
	NearRadius int
	// NearSubdiv is the subdivision factor per axis for near cells.
	// Default 4.
	NearSubdiv int
	// Workers bounds assembly parallelism; default NumCPU.
	Workers int

	// FFTOrder is the polynomial order of the FFT-accelerated operator
	// stage systems built with NewOperatorSystem may enter before the
	// dense chain. 0 selects the default (6); a negative value disables
	// the FFT stage entirely.
	FFTOrder int
	// FFTModelTol bounds the a-priori kernel-model error
	// (2·zmax/ρmin)^{order+1} above which the FFT stage is skipped for a
	// surface (the operator would converge but deviate from the dense
	// discretization by more than this). Default 1e-6.
	FFTModelTol float64
	// FFTMinCells is the smallest grid (N = M² cells) for which the FFT
	// operator's build cost pays off; smaller systems go straight to the
	// dense chain. Default 400.
	FFTMinCells int
}

func (o Options) withDefaults() Options {
	if o.NearRadius <= 0 {
		o.NearRadius = 2
	}
	if o.NearSubdiv <= 0 {
		o.NearSubdiv = 4
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.FFTOrder == 0 {
		o.FFTOrder = 6
	}
	if o.FFTModelTol <= 0 {
		o.FFTModelTol = 1e-6
	}
	if o.FFTMinCells <= 0 {
		o.FFTMinCells = 400
	}
	return o
}

// System is the assembled dense MoM system — or, when built with
// NewOperatorSystem, a lazily-assembled one: the FFT-accelerated
// operator stands in for the matrix and the dense form only
// materializes if a dense fallback stage actually runs.
type System struct {
	N      int // surface unknowns per field (grid cells)
	Matrix *cmplxmat.Matrix
	RHS    []complex128
	Step   float64 // grid spacing h

	// Lazy-assembly state (set by NewOperatorSystem; zero for the eager
	// Assemble/AssembleTabulated paths): fft is the admitted
	// FFT-accelerated operator, fftRej the typed rejection when the
	// surface was not admitted, denseFn assembles the dense matrix on
	// first demand.
	fft       *FFTOperator
	fftRej    error
	denseFn   func() (*cmplxmat.Matrix, error)
	denseOnce sync.Once
	denseErr  error
}

// NewOperatorSystem builds a matrix-free System: the FFT-accelerated
// operator is constructed up front when the admissibility gates pass —
// the grid is at least Options.FFTMinCells, the a-priori kernel-model
// error is within Options.FFTModelTol, and the height range sits inside
// the operator's hard convergence bound — and the dense matrix is only
// assembled (through dense, exactly once) if a dense fallback stage of
// SolveResilient actually runs. When ts is non-nil and its Δz span
// covers the operator's fit interval, the build reads the Green's
// tables instead of running Ewald sums.
//
// A rejected surface costs nothing beyond the gate checks: the typed
// rejection is kept and surfaces in SolveReport.Attempts as a Skipped
// fft-gmres attempt, and the first dense stage materializes the matrix.
func NewOperatorSystem(s *surface.Surface, p Params, opt Options, ts *TableSet, dense func() (*cmplxmat.Matrix, error)) *System {
	opt = opt.withDefaults()
	n := s.M * s.M
	sys := &System{N: n, RHS: RHSVector(s, p), Step: s.Step(), denseFn: dense}
	if opt.FFTOrder < 0 {
		return sys
	}
	if n < opt.FFTMinCells {
		sys.fftRej = resilience.Errorf(resilience.KindInvalidInput, "mom.fftop",
			"grid of %d cells below FFT-stage threshold %d", n, opt.FFTMinCells)
		return sys
	}
	zmax := surfaceZMax(s)
	rhoMin := float64(opt.NearRadius+1) * s.Step()
	if est := fftModelEstimate(zmax, rhoMin, opt.FFTOrder); est > opt.FFTModelTol {
		sys.fftRej = resilience.Errorf(resilience.KindNumerical, "mom.fftop",
			"a-priori kernel-model error %.2e exceeds tolerance %.2e", est, opt.FFTModelTol)
		return sys
	}
	var op *FFTOperator
	var err error
	if ts != nil {
		op, err = NewFFTOperatorTabulated(s, p, ts, opt.FFTOrder, opt)
	}
	if op == nil {
		// No tables, or the tables don't cover the fit span: fall back to
		// exact kernel evaluation (still O(N·order) Ewald sums, far below
		// the O(N²) dense assembly).
		op, err = NewFFTOperator(s, p, opt.FFTOrder, opt)
	}
	if err != nil {
		sys.fftRej = err
		return sys
	}
	sys.fft = op
	return sys
}

// FFTAdmitted reports whether the system carries an FFT-accelerated
// operator stage.
func (sys *System) FFTAdmitted() bool { return sys.fft != nil }

// FFTRejection returns the typed reason the FFT stage was not admitted
// (nil when admitted, or when the system was never built for it).
func (sys *System) FFTRejection() error { return sys.fftRej }

// DenseAssembled reports whether the dense matrix exists — for a
// lazily-built system, whether any dense fallback stage forced
// materialization.
func (sys *System) DenseAssembled() bool { return sys.Matrix != nil }

// Materialize assembles the dense matrix of a lazily-built system
// (no-op when it already exists). SolveResilient calls it before any
// dense stage runs, so solves won by the FFT stage never pay the O(N²)
// assembly.
func (sys *System) Materialize() error {
	if sys.Matrix != nil {
		return nil
	}
	if sys.denseFn == nil {
		return resilience.Errorf(resilience.KindInvalidInput, "mom.materialize",
			"system has neither a dense matrix nor a dense assembler")
	}
	sys.denseOnce.Do(func() {
		m, err := sys.denseFn()
		if err != nil {
			sys.denseErr = err
			return
		}
		sys.Matrix = m
	})
	return sys.denseErr
}

// Assemble builds the dense 2N×2N system for a surface realization.
func Assemble(s *surface.Surface, p Params, opt Options) *System {
	opt = opt.withDefaults()
	m := s.M
	n := m * m
	h := s.Step()
	fx, fy := s.Gradients()
	fxx, fyy, fxy := s.SecondDerivs()

	g1 := greens.NewPeriodic3D(p.K1, s.L)
	g2 := greens.NewPeriodic3D(p.K2, s.L)

	a := cmplxmat.New(2*n, 2*n)
	rhs := make([]complex128, 2*n)

	// Self-cell static singular integral: ∫_cell 1/(4πR) dA for a square
	// cell of side h with the observation point at its center:
	// (1/4π)·4h·asinh(1) = h·ln(1+√2)/π.
	selfSing := complex(h*math.Log(1+math.Sqrt2)/math.Pi, 0)
	reg1 := g1.EvalRegularized()
	reg2 := g2.EvalRegularized()
	s1Self := selfSing + complex(h*h, 0)*reg1
	s2Self := selfSing + complex(h*h, 0)*reg2

	area := complex(h*h, 0)
	sub := opt.NearSubdiv
	subArea := complex(h*h/float64(sub*sub), 0)

	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				iy, ix := i/m, i%m
				xi := float64(ix) * h
				yi := float64(iy) * h
				zi := s.H[i]
				row1 := a.Row(i)
				row2 := a.Row(n + i)
				for j := 0; j < n; j++ {
					jy, jx := j/m, j%m
					var s1, s2, d1, d2 complex128
					jn := [3]float64{-fx[j], -fy[j], 1} // J·n̂ at source cell
					if j == i {
						s1, s2 = s1Self, s2Self
						// PV double-layer self term: the flat-cell part
						// vanishes by odd symmetry, but the surface
						// curvature leaves a first-order residue. For
						// the local graph z ≈ (f_xx·x² + f_yy·y²)/2,
						// n̂′·∇′G_static = (f_xx·x²+f_yy·y²)/(8πρ³), and
						// integrating over the square cell gives
						// (f_xx+f_yy)·h·ln(1+√2)/(4π). This term is the
						// same order as the roughness perturbation
						// itself and is required for SWM → SPM2
						// convergence (see the spm2 cross-test).
						curv := complex((fxx[i]+fyy[i])*h*math.Log(1+math.Sqrt2)/(4*math.Pi), 0)
						d1 = curv
						d2 = curv
					} else {
						dxc := xi - float64(jx)*h
						dyc := yi - float64(jy)*h
						dzc := zi - s.H[j]
						if nearCell(ix-jx, iy-jy, m, opt.NearRadius) {
							// Subdivided source-cell quadrature with the
							// local second-order surface geometry:
							// staircase plaquettes with a constant
							// normal bias near interactions at the same
							// order as the roughness perturbation.
							for sy := 0; sy < sub; sy++ {
								oy := ((float64(sy)+0.5)/float64(sub) - 0.5) * h
								for sx := 0; sx < sub; sx++ {
									ox := ((float64(sx)+0.5)/float64(sub) - 0.5) * h
									ddx := dxc - ox
									ddy := dyc - oy
									ddz := dzc - (fx[j]*ox + fy[j]*oy +
										0.5*fxx[j]*ox*ox + 0.5*fyy[j]*oy*oy + fxy[j]*ox*oy)
									v1, gr1 := g1.EvalGrad(ddx, ddy, ddz)
									v2, gr2 := g2.EvalGrad(ddx, ddy, ddz)
									s1 += v1 * subArea
									s2 += v2 * subArea
									// Local normal (Jacobian-weighted)
									// at the sub-point.
									snx := -(fx[j] + fxx[j]*ox + fxy[j]*oy)
									sny := -(fy[j] + fyy[j]*oy + fxy[j]*ox)
									// ∂G/∂n′ = J·n̂·∇′G = −J·n̂·∇_Δ G.
									d1 += -(complex(snx, 0)*gr1[0] + complex(sny, 0)*gr1[1] + gr1[2]) * subArea
									d2 += -(complex(snx, 0)*gr2[0] + complex(sny, 0)*gr2[1] + gr2[2]) * subArea
								}
							}
						} else {
							v1, gr1 := g1.EvalGrad(dxc, dyc, dzc)
							v2, gr2 := g2.EvalGrad(dxc, dyc, dzc)
							s1 = v1 * area
							s2 = v2 * area
							d1 = -(complex(jn[0], 0)*gr1[0] + complex(jn[1], 0)*gr1[1] + complex(jn[2], 0)*gr1[2]) * area
							d2 = -(complex(jn[0], 0)*gr2[0] + complex(jn[1], 0)*gr2[1] + complex(jn[2], 0)*gr2[2]) * area
						}
					}
					// Block (1,1): ½I − D₁ ; block (1,2): β·S₁.
					row1[j] = -d1
					row1[n+j] = p.Beta * s1
					// Block (2,1): ½I + D₂ ; block (2,2): −S₂.
					row2[j] = d2
					row2[n+j] = -s2
				}
				row1[i] += 0.5
				row2[i] += 0.5
				// Incident field at the surface point: exp(−j·k₁·f_i).
				rhs[i] = cmplx.Exp(complex(0, -1) * p.K1 * complex(zi, 0))
			}
		}()
	}
	for i := 0; i < n; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()

	return &System{N: n, Matrix: a, RHS: rhs, Step: h}
}

// nearCell reports whether the periodic cell-index offset is within the
// near-field radius.
func nearCell(dx, dy, m, r int) bool {
	dx = ((dx % m) + m) % m
	dy = ((dy % m) + m) % m
	if dx > m/2 {
		dx -= m
	}
	if dy > m/2 {
		dy -= m
	}
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx <= r && dy <= r
}

// Solution carries the solved surface fields.
type Solution struct {
	Psi []complex128 // ψ at cell centers
	U   []complex128 // Jacobian-weighted normal derivative of ψ₂
	// Pabs is the absorbed power functional of eq. (10):
	// (h²/2)·Σ Re{ψ*·u} (up to the constant ρ factor, which cancels in
	// the Pr/Ps ratio).
	Pabs float64
	// Report carries the per-stage accounting when the solution came
	// from SolveResilient; nil for the direct Solve/SolveGMRES paths.
	Report *SolveReport
}

// Solve factors and solves the dense system.
func (sys *System) Solve() (*Solution, error) {
	x, err := cmplxmat.SolveDense(sys.Matrix, sys.RHS)
	if err != nil {
		return nil, fmt.Errorf("mom: dense solve: %w", err)
	}
	return sys.solutionFrom(x), nil
}

// SolveGMRES solves the system iteratively with the dense matvec —
// the reference iterative path (the FFT-accelerated operator plugs in
// the same way through cmplxmat.GMRES).
func (sys *System) SolveGMRES(tol float64) (*Solution, float64, error) {
	n2 := 2 * sys.N
	mv := func(y, x []complex128) {
		copy(y, sys.Matrix.MulVec(x))
	}
	x, rr, err := cmplxmat.GMRES(n2, mv, sys.RHS, nil, cmplxmat.IterOpts{Tol: tol, Restart: 80, MaxIter: 4000})
	if err != nil {
		return nil, rr, fmt.Errorf("mom: GMRES: %w", err)
	}
	return sys.solutionFrom(x), rr, nil
}

func (sys *System) solutionFrom(x []complex128) *Solution {
	n := sys.N
	sol := &Solution{Psi: x[:n], U: x[n : 2*n]}
	var p float64
	for i := 0; i < n; i++ {
		ps := sol.Psi[i]
		u := sol.U[i]
		p += real(ps)*real(u) + imag(ps)*imag(u) // Re{ψ*·u}
	}
	sol.Pabs = sys.Step * sys.Step / 2 * p
	return sol
}

// RHSVector returns the incident-field right-hand side of the SWM
// system for surf: e^{−jk₁·f_i} on the ψ block, zero on the u block —
// the same vector Assemble fills. It is the only frequency-dependent
// part of the system outside the matrix, so the batched sweep engine
// recomputes it exactly at frequencies whose matrix is interpolated.
func RHSVector(s *surface.Surface, p Params) []complex128 {
	rhs := make([]complex128, 2*len(s.H))
	for i, z := range s.H {
		rhs[i] = cmplx.Exp(complex(0, -1) * p.K1 * complex(z, 0))
	}
	return rhs
}

// FlatTransmission returns the analytic flat-interface solution of the
// two-medium scalar problem under unit normal incidence:
// reflection R = (1−ζ)/(1+ζ) and transmission T = 2/(1+ζ) with
// ζ = β·k₂/k₁. The analytic absorbed power per area is
// |T|²·Re{−j·k₂}/2 = |T|²/(2δ).
func FlatTransmission(p Params) (refl, trans complex128) {
	zeta := p.Beta * p.K2 / p.K1
	return (1 - zeta) / (1 + zeta), 2 / (1 + zeta)
}

// FlatPabsAnalytic returns the analytic eq.-(10) functional for a flat
// patch of area L²: (L²/2)·|T|²·Re{−j·k₂}.
func FlatPabsAnalytic(p Params, L float64) float64 {
	_, t := FlatTransmission(p)
	mag := real(t)*real(t) + imag(t)*imag(t)
	return L * L / 2 * mag * real(complex(0, -1)*p.K2)
}
