package mom

import (
	"math"
	"math/cmplx"
	"testing"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/rng"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

const um = 1e-6

// paramsAt builds the paper's material parameters at frequency f.
func paramsAt(f float64) Params {
	return Params{
		K1:   complex(units.WavenumberDielectric(f, 3.7), 0),
		K2:   units.WavenumberConductor(f, units.CopperResistivity),
		Beta: units.Beta(f, 3.7, units.CopperResistivity),
	}
}

func TestFlatSurfaceMatchesAnalyticTransmission(t *testing.T) {
	// The decisive end-to-end check of the whole discretization: on a
	// flat surface the solved ψ must be the uniform analytic transmission
	// coefficient T, u must be −j·k₂·T, and Pabs must match
	// |T|²·L²/(2δ).
	f := 5 * units.GHz
	p := paramsAt(f)
	L := 5 * um
	// Discretization bias shrinks fast with the grid: measured −2.4% at
	// M=8 and −0.4% at M=12.
	tols := map[int]float64{8: 0.03, 12: 0.01}
	for _, m := range []int{8, 12} {
		s := surface.NewFlat(L, m)
		sys := Assemble(s, p, Options{})
		sol, err := sys.Solve()
		if err != nil {
			t.Fatal(err)
		}
		_, trans := FlatTransmission(p)
		for i, ps := range sol.Psi {
			if d := cmplx.Abs(ps-trans) / cmplx.Abs(trans); d > 2e-2 {
				t.Fatalf("M=%d: ψ[%d] = %v, want T = %v (rel %g)", m, i, ps, trans, d)
			}
		}
		wantU := complex(0, -1) * p.K2 * trans
		for i, u := range sol.U {
			if d := cmplx.Abs(u-wantU) / cmplx.Abs(wantU); d > 2e-2 {
				t.Fatalf("M=%d: u[%d] = %v, want %v (rel %g)", m, i, u, wantU, d)
			}
		}
		want := FlatPabsAnalytic(p, L)
		if d := math.Abs(sol.Pabs-want) / want; d > tols[m] {
			t.Fatalf("M=%d: Pabs = %g, want %g (rel %g)", m, sol.Pabs, want, d)
		}
	}
}

func TestFlatSurfaceUniformity(t *testing.T) {
	// On a flat surface the solution must be constant across the patch
	// to solver precision (translation invariance).
	p := paramsAt(2 * units.GHz)
	s := surface.NewFlat(5*um, 10)
	sys := Assemble(s, p, Options{})
	sol, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sol.Psi); i++ {
		if cmplx.Abs(sol.Psi[i]-sol.Psi[0]) > 1e-8*cmplx.Abs(sol.Psi[0]) {
			t.Fatalf("ψ varies on a flat surface: %v vs %v", sol.Psi[i], sol.Psi[0])
		}
	}
}

func TestRoughSurfaceIncreasesAbsorption(t *testing.T) {
	// The physical headline: roughness increases loss, K = Pr/Ps > 1,
	// and K grows with frequency (σ/δ grows).
	c := surface.NewGaussianCorr(1*um, 1*um)
	L := 5 * um
	m := 12
	kl := surface.NewKL(c, L, m)
	src := rng.New(7)
	// Band-limited realization: at h = η/2.4 the grid resolves only the
	// dominant KL modes; sampling the full rank would alias grid-scale
	// slopes (see core's resolution guard).
	surf := kl.SampleTruncated(src, 24)

	var prevK float64
	for _, fGHz := range []float64{2, 5, 9} {
		p := paramsAt(fGHz * units.GHz)
		rough, err := Assemble(surf, p, Options{}).Solve()
		if err != nil {
			t.Fatal(err)
		}
		flat, err := Assemble(surface.NewFlat(L, m), p, Options{}).Solve()
		if err != nil {
			t.Fatal(err)
		}
		k := rough.Pabs / flat.Pabs
		if k <= 1.0 {
			t.Fatalf("f=%g GHz: K = %g, want > 1", fGHz, k)
		}
		if k > 4 {
			t.Fatalf("f=%g GHz: K = %g suspiciously large", fGHz, k)
		}
		if k < prevK*0.97 {
			t.Fatalf("K decreased substantially with f: %g after %g", k, prevK)
		}
		prevK = k
	}
}

func TestGMRESMatchesDense(t *testing.T) {
	c := surface.NewGaussianCorr(1*um, 1*um)
	kl := surface.NewKL(c, 5*um, 10)
	surf := kl.Sample(rng.New(3))
	p := paramsAt(5 * units.GHz)
	sys := Assemble(surf, p, Options{})
	dense, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	iter, _, err := sys.SolveGMRES(1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(dense.Pabs-iter.Pabs) / dense.Pabs; d > 1e-6 {
		t.Fatalf("GMRES Pabs %g vs dense %g (rel %g)", iter.Pabs, dense.Pabs, d)
	}
	diff := cmplxmat.Norm2(cmplxmat.Sub(dense.Psi, iter.Psi)) / cmplxmat.Norm2(dense.Psi)
	if diff > 1e-6 {
		t.Fatalf("GMRES ψ differs from dense by %g", diff)
	}
}

func TestGridRefinementConverges(t *testing.T) {
	// K(f) must be stable under grid refinement (the discretization
	// converges). Uses a deterministic mode surface so refinement
	// compares the same geometry.
	L := 5 * um
	p := paramsAt(5 * units.GHz)
	kAt := func(m int) float64 {
		s := surface.NewFlat(L, m)
		for iy := 0; iy < m; iy++ {
			for ix := 0; ix < m; ix++ {
				x := float64(ix) / float64(m)
				y := float64(iy) / float64(m)
				s.H[iy*m+ix] = 0.7 * um * math.Cos(2*math.Pi*x) * math.Cos(2*math.Pi*y)
			}
		}
		rough, err := Assemble(s, p, Options{}).Solve()
		if err != nil {
			t.Fatal(err)
		}
		flat, err := Assemble(surface.NewFlat(L, m), p, Options{}).Solve()
		if err != nil {
			t.Fatal(err)
		}
		return rough.Pabs / flat.Pabs
	}
	k8 := kAt(8)
	k16 := kAt(16)
	if math.Abs(k16-k8)/k8 > 0.08 {
		t.Fatalf("poor grid convergence: K(8)=%g K(16)=%g", k8, k16)
	}
}

func TestEnergyBounds(t *testing.T) {
	// Absorbed power must stay positive and bounded by a physical factor
	// of the flat value for moderate roughness.
	c := surface.NewGaussianCorr(0.5*um, 2*um)
	kl := surface.NewKL(c, 10*um, 12)
	src := rng.New(11)
	p := paramsAt(4 * units.GHz)
	flat, err := Assemble(surface.NewFlat(10*um, 12), p, Options{}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		surf := kl.Sample(src)
		sol, err := Assemble(surf, p, Options{}).Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Pabs <= 0 {
			t.Fatalf("trial %d: non-positive absorbed power %g", trial, sol.Pabs)
		}
		k := sol.Pabs / flat.Pabs
		if k < 0.9 || k > 3 {
			t.Fatalf("trial %d: K = %g outside physical range for mild roughness", trial, k)
		}
	}
}

func TestFlat2DMatchesAnalytic(t *testing.T) {
	f := 5 * units.GHz
	p := paramsAt(f)
	L := 5 * um
	prof := surface.NewFlatProfile(L, 24)
	sys := Assemble2D(prof, p, Options{})
	sol, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	_, trans := FlatTransmission(p)
	for i, ps := range sol.Psi {
		if d := cmplx.Abs(ps-trans) / cmplx.Abs(trans); d > 2e-2 {
			t.Fatalf("2D ψ[%d] = %v, want %v (rel %g)", i, ps, trans, d)
		}
	}
	want := FlatPabsAnalytic2D(p, L)
	if d := math.Abs(sol.Pabs-want) / want; d > 2e-2 {
		t.Fatalf("2D Pabs = %g, want %g", sol.Pabs, want)
	}
}

func TestRough2DIncreasesAbsorption(t *testing.T) {
	c := surface.NewGaussianCorr(1*um, 1*um)
	L := 5 * um
	m := 48
	kl := surface.NewKL1D(c, L, m)
	prof := kl.Sample(rng.New(5))
	p := paramsAt(5 * units.GHz)
	rough, err := Assemble2D(prof, p, Options{}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Assemble2D(surface.NewFlatProfile(L, m), p, Options{}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	k := rough.Pabs / flat.Pabs
	if k <= 1.0 || k > 3 {
		t.Fatalf("2D K = %g, want in (1, 3]", k)
	}
}

func TestFlatTransmissionLimit(t *testing.T) {
	// For a good conductor ζ ≪ 1 so T ≈ 2 (tangential H doubles at a
	// conductor surface) and R ≈ 1.
	p := paramsAt(5 * units.GHz)
	r, tr := FlatTransmission(p)
	if cmplx.Abs(tr-2) > 0.01 {
		t.Fatalf("T = %v, want ≈ 2", tr)
	}
	if cmplx.Abs(r-1) > 0.01 {
		t.Fatalf("R = %v, want ≈ 1", r)
	}
}
