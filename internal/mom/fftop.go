package mom

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/fft"
	"roughsim/internal/greens"
	"roughsim/internal/resilience"
	"roughsim/internal/specfun"
	"roughsim/internal/surface"
)

// FFTOperator is the O(N log N) matrix-free form of the MoM system (9),
// implementing the FFT-based iterative strategy the paper cites ([17]):
// over the height range of the surface the kernels are replaced by
// per-lateral-offset polynomials in Δz,
//
//	G(Δρ, Δz) ≈ Σ_{q ≤ P} c_q(Δρ)·Δz^q,
//
// fitted at Chebyshev nodes of the occupied interval (a near-minimax
// variant of the Taylor expansion in the reference method). With
// Δz = f_i − f_j the powers split into observation and source factors,
// so the far interactions become P+1 two-dimensional cyclic convolutions
// per kernel family, evaluated by FFT. Close pairs — where the
// polynomial model cannot converge across the height range — are
// corrected with exact entries.
//
// Validity: the polynomial error decays like (Δz-range/ρ)^{P+1} with ρ
// the lateral pair distance, so the operator requires
// max|f_i − f_j| ≲ NearRadius·h — the slightly-rough / finely-gridded
// regime, as in ref. [17]. Construction returns a typed
// resilience.KindNumerical error outside it; use the dense or tabulated
// paths there (the resilient solve chain does exactly that).
type FFTOperator struct {
	N     int
	Order int

	m    int
	h    float64
	l    float64
	beta complex128

	f            []float64
	fpow         [][]float64
	jnx, jny     []float64
	spec         [2]kernelFamilies // spectral kernels (FFT of c_q·h²)
	realK        [2]kernelFamilies // real-space kernels for near model
	nearEntries  []nearEntry
	diag1, diag2 complex128
	curv         []float64
}

// kernelFamilies holds the four per-order kernel sets of one medium.
type kernelFamilies struct {
	g, gx, gy, gz [][]complex128 // [order+1][m*m]
}

type nearEntry struct {
	i, j           int
	s1, s2, d1, d2 complex128 // exact − polynomial-model corrections
}

// kernelSource evaluates one medium's periodic Green's function (and
// its Δ-gradient) at the lattice geometries the operator build needs.
// Two implementations exist: exact Ewald/image evaluation, and the
// Chebyshev-in-Δz Green's tables a tabulated solver already owns — the
// latter makes the operator build near-free on the production path.
type kernelSource interface {
	// gridEval evaluates at the wrapped grid offset (ix, iy) ∈ [0, m)²
	// and height difference dz.
	gridEval(ix, iy int, dz float64) (complex128, [3]complex128)
	// nearEval evaluates at cell offset (cx, cy) ∈ [−near, near] with
	// sub-cell indices (sx, sy) and height difference dz.
	nearEval(cx, cy, sx, sy int, dz float64) (complex128, [3]complex128)
	// regularized is the medium's regularized self value (see
	// greens.Periodic3D.EvalRegularized).
	regularized() complex128
}

// exactSource evaluates through the Ewald/image machinery directly.
type exactSource struct {
	g   *greens.Periodic3D
	h   float64
	sub int
}

func (e exactSource) gridEval(ix, iy int, dz float64) (complex128, [3]complex128) {
	return e.g.EvalGrad(float64(ix)*e.h, float64(iy)*e.h, dz)
}

func (e exactSource) nearEval(cx, cy, sx, sy int, dz float64) (complex128, [3]complex128) {
	ox := ((float64(sx)+0.5)/float64(e.sub) - 0.5) * e.h
	oy := ((float64(sy)+0.5)/float64(e.sub) - 0.5) * e.h
	return e.g.EvalGrad(float64(cx)*e.h-ox, float64(cy)*e.h-oy, dz)
}

func (e exactSource) regularized() complex128 { return e.g.EvalRegularized() }

// tabSource evaluates through a solver's Green's tables.
type tabSource struct{ t *tabulated }

func (s tabSource) gridEval(ix, iy int, dz float64) (complex128, [3]complex128) {
	return s.t.evalFar(ix, iy, dz)
}

func (s tabSource) nearEval(cx, cy, sx, sy int, dz float64) (complex128, [3]complex128) {
	return s.t.evalNear(s.t.nearIndex(cx, sx), s.t.nearIndex(cy, sy), dz)
}

func (s tabSource) regularized() complex128 { return s.t.g.EvalRegularized() }

// fftModelEstimate is the a-priori relative model error of the order-P
// polynomial kernel expansion for a surface of height range 2·zmax on a
// grid whose closest uncorrected pair sits at lateral distance rhoMin:
// the expansion error decays like (Δz-range/ρ)^{P+1} and the near
// corrections fix every pair inside rhoMin exactly, so the worst
// surviving pair dominates. The solve chain admits the operator only
// when this estimate is below Options.FFTModelTol.
func fftModelEstimate(zmax, rhoMin float64, order int) float64 {
	if zmax == 0 {
		return 0
	}
	return math.Pow(2*zmax/rhoMin, float64(order+1))
}

// surfaceZMax returns max|f| over the surface heights.
func surfaceZMax(s *surface.Surface) float64 {
	var zmax float64
	for _, v := range s.H {
		if a := math.Abs(v); a > zmax {
			zmax = a
		}
	}
	return zmax
}

// NewFFTOperator builds the operator at polynomial order (≥ 1, typically
// 3–8) for the given surface, evaluating the kernels exactly. Rejections
// are typed: resilience.KindInvalidInput for a bad order,
// resilience.KindNumerical when the surface's height range exceeds the
// operator's convergence bound — both deterministic, so callers (and the
// retry policy) must fall back rather than retry.
func NewFFTOperator(s *surface.Surface, p Params, order int, opt Options) (*FFTOperator, error) {
	opt = opt.withDefaults()
	if err := checkFFTAdmissible(s, order, opt); err != nil {
		return nil, err
	}
	h := s.Step()
	g1 := greens.NewPeriodic3D(p.K1, s.L)
	g2 := greens.NewPeriodic3D(p.K2, s.L)
	return buildFFTOperator(s, p, order, opt,
		exactSource{g: g1, h: h, sub: opt.NearSubdiv},
		exactSource{g: g2, h: h, sub: opt.NearSubdiv})
}

// NewFFTOperatorTabulated is NewFFTOperator evaluating the kernels
// through a tabulated solver's Green's tables instead of exact Ewald
// sums, which removes nearly all transcendental work from the build.
// The tables must match the surface grid and options, and their Δz span
// must cover both the near-correction quadrature (2.2·zmax, as for
// AssembleTabulated) and the polynomial fit interval.
func NewFFTOperatorTabulated(s *surface.Surface, p Params, ts *TableSet, order int, opt Options) (*FFTOperator, error) {
	opt = opt.withDefaults()
	if err := checkFFTAdmissible(s, order, opt); err != nil {
		return nil, err
	}
	if s.M != ts.M || s.L != ts.L {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "mom.fftop",
			"surface grid %gx%d does not match table %gx%d", s.L, s.M, ts.L, ts.M)
	}
	if opt.NearSubdiv != ts.Sub || opt.NearRadius != ts.Near {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "mom.fftop",
			"options (near=%d sub=%d) do not match table (near=%d sub=%d)",
			opt.NearRadius, opt.NearSubdiv, ts.Near, ts.Sub)
	}
	zmax := surfaceZMax(s)
	if need := math.Max(2.2*zmax, fitSpan(zmax, s.Step())); need > ts.ZSpan {
		return nil, resilience.Errorf(resilience.KindNumerical, "mom.fftop",
			"operator fit span %g exceeds table span %g", need, ts.ZSpan)
	}
	return buildFFTOperator(s, p, order, opt, tabSource{ts.g1}, tabSource{ts.g2})
}

// checkFFTAdmissible applies the operator's deterministic admissibility
// checks: order validation and the polynomial convergence bound.
func checkFFTAdmissible(s *surface.Surface, order int, opt Options) error {
	if order < 1 {
		return resilience.Errorf(resilience.KindInvalidInput, "mom.fftop",
			"FFT operator order must be ≥ 1 (got %d)", order)
	}
	zmax := surfaceZMax(s)
	rhoMin := float64(opt.NearRadius+1) * s.Step()
	if 2*zmax > 0.8*rhoMin {
		return resilience.Errorf(resilience.KindNumerical, "mom.fftop",
			"height range %.3g exceeds FFT-operator convergence bound %.3g (σ too large for this grid; use dense/tabulated assembly)", 2*zmax, 0.8*rhoMin)
	}
	return nil
}

// fitSpan is the Δz interval half-width the polynomial kernels are
// fitted over: slightly past the occupied ±zmax, or a small fraction of
// the cell for an exactly flat surface (a degenerate fit interval would
// make the Vandermonde system singular).
func fitSpan(zmax, h float64) float64 {
	if zmax == 0 {
		return h / 4
	}
	return 2.05 * zmax
}

// buildFFTOperator constructs the operator from per-medium kernel
// sources. The kernel fits and near corrections — the two costly loops —
// are spread over Options.Workers; both are bitwise deterministic in the
// worker count because every slot is computed independently.
func buildFFTOperator(s *surface.Surface, p Params, order int, opt Options, src1, src2 kernelSource) (*FFTOperator, error) {
	m := s.M
	n := m * m
	h := s.Step()
	zmax := surfaceZMax(s)

	op := &FFTOperator{N: n, Order: order, m: m, h: h, l: s.L, beta: p.Beta, f: s.H}
	fx, fy := s.Gradients()
	fxx, fyy, _ := s.SecondDerivs()
	op.jnx = make([]float64, n)
	op.jny = make([]float64, n)
	for i := range fx {
		op.jnx[i] = -fx[i]
		op.jny[i] = -fy[i]
	}
	op.curv = make([]float64, n)
	for i := range op.curv {
		op.curv[i] = (fxx[i] + fyy[i]) * h * math.Log(1+math.Sqrt2) / (4 * math.Pi)
	}
	op.fpow = make([][]float64, order+1)
	for q := 0; q <= order; q++ {
		op.fpow[q] = make([]float64, n)
		for i := range op.fpow[q] {
			op.fpow[q][i] = math.Pow(s.H[i], float64(q))
		}
	}

	zfit := fitSpan(zmax, h)
	for med, src := range []kernelSource{src1, src2} {
		rk := fitKernels(src, m, h, order, zfit, opt.Workers)
		op.realK[med] = rk
		var sp kernelFamilies
		sp.g = make([][]complex128, order+1)
		sp.gx = make([][]complex128, order+1)
		sp.gy = make([][]complex128, order+1)
		sp.gz = make([][]complex128, order+1)
		for q := 0; q <= order; q++ {
			sp.g[q] = fft.Forward2D(rk.g[q], m, m)
			sp.gx[q] = fft.Forward2D(rk.gx[q], m, m)
			sp.gy[q] = fft.Forward2D(rk.gy[q], m, m)
			sp.gz[q] = fft.Forward2D(rk.gz[q], m, m)
		}
		op.spec[med] = sp
	}

	selfSing := complex(h*math.Log(1+math.Sqrt2)/math.Pi, 0)
	op.diag1 = selfSing + complex(h*h, 0)*src1.regularized()
	op.diag2 = selfSing + complex(h*h, 0)*src2.regularized()

	op.buildNearCorrections(s, src1, src2, opt)
	return op, nil
}

// fitKernels samples G and ∇G at Chebyshev z-nodes for every lateral
// grid offset and converts the samples into polynomial coefficients in
// Δz (already scaled by the cell area h²). The (0,0) offset is zeroed;
// near corrections supply it exactly. The per-offset fits are
// independent, so they run across the worker budget with bitwise
// deterministic results.
func fitKernels(src kernelSource, m int, h float64, order int, zfit float64, workers int) kernelFamilies {
	n := m * m
	nodes := make([]float64, order+1)
	for s := range nodes {
		nodes[s] = zfit * math.Cos((float64(s)+0.5)*math.Pi/float64(order+1))
	}
	inv := vandermondeInverse(nodes)

	var kf kernelFamilies
	kf.g = make([][]complex128, order+1)
	kf.gx = make([][]complex128, order+1)
	kf.gy = make([][]complex128, order+1)
	kf.gz = make([][]complex128, order+1)
	for q := range kf.g {
		kf.g[q] = make([]complex128, n)
		kf.gx[q] = make([]complex128, n)
		kf.gy[q] = make([]complex128, n)
		kf.gz[q] = make([]complex128, n)
	}
	area := complex(h*h, 0)
	var wg sync.WaitGroup
	offsets := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sampG := make([]complex128, order+1)
			sampX := make([]complex128, order+1)
			sampY := make([]complex128, order+1)
			sampZ := make([]complex128, order+1)
			for idx := range offsets {
				iy, ix := idx/m, idx%m
				for s, z := range nodes {
					v, gr := src.gridEval(ix, iy, z)
					sampG[s] = v * area
					sampX[s] = gr[0] * area
					sampY[s] = gr[1] * area
					sampZ[s] = gr[2] * area
				}
				for q := 0; q <= order; q++ {
					var cg, cx, cy, cz complex128
					for s := 0; s <= order; s++ {
						w := complex(inv[q][s], 0)
						cg += w * sampG[s]
						cx += w * sampX[s]
						cy += w * sampY[s]
						cz += w * sampZ[s]
					}
					kf.g[q][idx] = cg
					kf.gx[q][idx] = cx
					kf.gy[q][idx] = cy
					kf.gz[q][idx] = cz
				}
			}
		}()
	}
	for idx := 1; idx < n; idx++ { // (0,0) stays zero: supplied by near corrections
		offsets <- idx
	}
	close(offsets)
	wg.Wait()
	return kf
}

// vandermondeInverse returns the inverse of V[s][q] = nodes[s]^q, so
// coefficients = inv · samples.
func vandermondeInverse(nodes []float64) [][]float64 {
	n := len(nodes)
	a := make([][]float64, n)
	inv := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		inv[i] = make([]float64, n)
		inv[i][i] = 1
		p := 1.0
		for q := 0; q < n; q++ {
			a[i][q] = p
			p *= nodes[i]
		}
	}
	// Gauss–Jordan with partial pivoting (n ≤ ~8).
	for c := 0; c < n; c++ {
		p := c
		for r := c + 1; r < n; r++ {
			if math.Abs(a[r][c]) > math.Abs(a[p][c]) {
				p = r
			}
		}
		a[c], a[p] = a[p], a[c]
		inv[c], inv[p] = inv[p], inv[c]
		pv := a[c][c]
		for q := 0; q < n; q++ {
			a[c][q] /= pv
			inv[c][q] /= pv
		}
		for r := 0; r < n; r++ {
			if r == c || a[r][c] == 0 {
				continue
			}
			fac := a[r][c]
			for q := 0; q < n; q++ {
				a[r][q] -= fac * a[c][q]
				inv[r][q] -= fac * inv[c][q]
			}
		}
	}
	// inv currently maps samples → solution of V·x = e, i.e. V⁻¹ rows:
	// x[q] = Σ_s inv[q][s]·samples[s].
	return inv
}

// modelEntry evaluates the polynomial-model S and D entries for a pair.
func (op *FFTOperator) modelEntry(med, i, j int) (sv, dv complex128) {
	m := op.m
	px := ((i%m-j%m)%m + m) % m
	py := ((i/m-j/m)%m + m) % m
	idx := py*m + px
	dz := op.f[i] - op.f[j]
	rk := op.realK[med]
	var zp complex128 = 1
	for q := 0; q <= op.Order; q++ {
		sv += rk.g[q][idx] * zp
		dv += -(complex(op.jnx[j], 0)*rk.gx[q][idx] +
			complex(op.jny[j], 0)*rk.gy[q][idx] + rk.gz[q][idx]) * zp
		zp *= complex(dz, 0)
	}
	return sv, dv
}

// nearChebOrder is the per-lateral-point Chebyshev order used to cache
// the near kernel's Δz dependence during the near-correction build. The
// nearest used lateral point sits at ρ ≳ 0.6h while |Δz| spans ≲ 0.25h
// for any admitted surface, so the Bernstein convergence factor is ≳ 5
// and 17 nodes leave the fit at rounding level (~1e-13 relative).
const nearChebOrder = 16

// nearChebCache holds, per (lateral cell offset, sub-cell) point, a
// Chebyshev fit in Δz of the near kernel's value and Δ-gradient. The
// near-correction loop queries the same few hundred lateral points at
// N·win²·sub² different heights; fitting each point once turns ~10⁶
// exact kernel evaluations (Ewald sums for the dielectric medium) into
// a few thousand plus cheap Clenshaw evaluations.
type nearChebCache struct {
	dim  int     // per-axis index count = (2·near+1)·sub
	span float64 // |Δz| half-range the fit covers (0 for flat surfaces)
	c    [][4][]complex128
}

func (nc *nearChebCache) eval(ax, ay int, dz float64) (complex128, [3]complex128) {
	e := &nc.c[ax*nc.dim+ay]
	var t float64
	if nc.span > 0 {
		t = dz / nc.span
	}
	return clenshaw(e[0], t), [3]complex128{
		clenshaw(e[1], t), clenshaw(e[2], t), clenshaw(e[3], t),
	}
}

// fitNearCheb samples src at Chebyshev Δz-nodes for every near lateral
// point and converts the samples to coefficient vectors. span == 0
// (flat surface) degenerates to a single node at Δz = 0, making the
// cached value bitwise identical to a direct evaluation. The (0,0) cell
// block is skipped: it can sit at ρ = 0 (singular) and the correction
// loop never queries it because the self pair is excluded.
func fitNearCheb(src kernelSource, opt Options, span float64, workers int) *nearChebCache {
	near, sub := opt.NearRadius, opt.NearSubdiv
	dim := (2*near + 1) * sub
	nc := &nearChebCache{dim: dim, span: span, c: make([][4][]complex128, dim*dim)}
	nn := nearChebOrder + 1
	if span == 0 {
		nn = 1
	}
	nodes := make([]float64, nn)
	for k := range nodes {
		nodes[k] = span * math.Cos((float64(k)+0.5)*math.Pi/float64(nn))
	}
	var wg sync.WaitGroup
	pts := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			samp := [4][]complex128{}
			for q := range samp {
				samp[q] = make([]complex128, nn)
			}
			for idx := range pts {
				ax, ay := idx/dim, idx%dim
				cx, sx := ax/sub-near, ax%sub
				cy, sy := ay/sub-near, ay%sub
				if cx == 0 && cy == 0 {
					continue
				}
				for k, z := range nodes {
					v, gr := src.nearEval(cx, cy, sx, sy, z)
					samp[0][k] = v
					samp[1][k] = gr[0]
					samp[2][k] = gr[1]
					samp[3][k] = gr[2]
				}
				for q := range samp {
					nc.c[idx][q] = chebCoeffs(samp[q])
				}
			}
		}()
	}
	for idx := 0; idx < dim*dim; idx++ {
		pts <- idx
	}
	close(pts)
	wg.Wait()
	return nc
}

// buildNearCorrections precomputes exact−model deltas for close pairs
// (including the self offset, whose model contribution must be removed
// because the exact diagonal is applied separately). Each observation
// row's window is computed independently into a preallocated slot, so
// the loop parallelizes over the worker budget with a bitwise
// deterministic result.
func (op *FFTOperator) buildNearCorrections(s *surface.Surface, src1, src2 kernelSource, opt Options) {
	m := op.m
	h := op.h
	fx, fy := s.Gradients()
	fxx, fyy, fxy := s.SecondDerivs()
	sub := opt.NearSubdiv
	subArea := complex(h*h/float64(sub*sub), 0)
	win := 2*opt.NearRadius + 1
	op.nearEntries = make([]nearEntry, op.N*win*win)

	// Exact bound on |Δz| seen by the correction loop: the height
	// difference range plus the largest quadratic-surface sub-cell shift.
	var fmin, fmax float64
	for _, v := range s.H {
		fmin = math.Min(fmin, v)
		fmax = math.Max(fmax, v)
	}
	var maxShift float64
	ho := h / 2
	for j := range s.H {
		sh := (math.Abs(fx[j])+math.Abs(fy[j]))*ho +
			0.5*(math.Abs(fxx[j])+math.Abs(fyy[j]))*ho*ho + math.Abs(fxy[j])*ho*ho
		maxShift = math.Max(maxShift, sh)
	}
	span := (fmax - fmin) + maxShift

	nc1 := fitNearCheb(src1, opt, span, opt.Workers)
	nc2 := fitNearCheb(src2, opt, span, opt.Workers)

	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				iy, ix := i/m, i%m
				for dyC := -opt.NearRadius; dyC <= opt.NearRadius; dyC++ {
					for dxC := -opt.NearRadius; dxC <= opt.NearRadius; dxC++ {
						jx := ((ix-dxC)%m + m) % m
						jy := ((iy-dyC)%m + m) % m
						j := jy*m + jx
						var s1, s2, d1, d2 complex128
						if j != i {
							dzc := s.H[i] - s.H[j]
							for sy := 0; sy < sub; sy++ {
								oy := ((float64(sy)+0.5)/float64(sub) - 0.5) * h
								ay := (dyC+opt.NearRadius)*sub + sy
								for sx := 0; sx < sub; sx++ {
									ox := ((float64(sx)+0.5)/float64(sub) - 0.5) * h
									ddz := dzc - (fx[j]*ox + fy[j]*oy +
										0.5*fxx[j]*ox*ox + 0.5*fyy[j]*oy*oy + fxy[j]*ox*oy)
									ax := (dxC+opt.NearRadius)*sub + sx
									v1, gr1 := nc1.eval(ax, ay, ddz)
									v2, gr2 := nc2.eval(ax, ay, ddz)
									s1 += v1 * subArea
									s2 += v2 * subArea
									snx := -(fx[j] + fxx[j]*ox + fxy[j]*oy)
									sny := -(fy[j] + fyy[j]*oy + fxy[j]*ox)
									d1 += -(complex(snx, 0)*gr1[0] + complex(sny, 0)*gr1[1] + gr1[2]) * subArea
									d2 += -(complex(snx, 0)*gr2[0] + complex(sny, 0)*gr2[1] + gr2[2]) * subArea
								}
							}
						}
						t1s, t1d := op.modelEntry(0, i, j)
						t2s, t2d := op.modelEntry(1, i, j)
						op.nearEntries[i*win*win+(dyC+opt.NearRadius)*win+(dxC+opt.NearRadius)] = nearEntry{
							i: i, j: j,
							s1: s1 - t1s, s2: s2 - t2s,
							d1: d1 - t1d, d2: d2 - t2d,
						}
					}
				}
			}
		}()
	}
	for i := 0; i < op.N; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
}

// MatVec applies the full 2N×2N system (9) to x = [Ψ; U], writing y.
func (op *FFTOperator) MatVec(y, x []complex128) {
	n := op.N
	m := op.m
	psi := x[:n]
	u := x[n : 2*n]

	// S·v  = Σ_l f^l ⊙ IFFT[ Σ_q binom(l+q,l)·Ĝ_{l+q} ⊙ FFT[(−f)^q ⊙ v] ]
	// D·v uses the (gx, gy) families against source-normal-weighted v and
	// the gz family against plain v. The forward transforms of the
	// q-weighted input fields depend only on the input vector, so they
	// are computed once and shared by both media.
	fwdS := func(v []complex128) [][]complex128 {
		srcs := make([][]complex128, op.Order+1)
		for q := 0; q <= op.Order; q++ {
			pv := make([]complex128, n)
			sign := 1.0
			if q%2 == 1 {
				sign = -1
			}
			for i := range pv {
				pv[i] = complex(sign*op.fpow[q][i], 0) * v[i]
			}
			srcs[q] = fft.Forward2D(pv, m, m)
		}
		return srcs
	}
	applyS := func(med int, srcs [][]complex128) []complex128 {
		sp := op.spec[med]
		out := make([]complex128, n)
		for l := 0; l <= op.Order; l++ {
			acc := make([]complex128, n)
			for q := 0; l+q <= op.Order; q++ {
				b := complex(specfun.Binomial(l+q, l), 0)
				kh := sp.g[l+q]
				sq := srcs[q]
				for idx := range acc {
					acc[idx] += b * kh[idx] * sq[idx]
				}
			}
			conv := fft.Inverse2D(acc, m, m)
			for i := range out {
				out[i] += conv[i] * complex(op.fpow[l][i], 0)
			}
		}
		return out
	}
	fwdD := func(v []complex128) (plain, wx, wy [][]complex128) {
		plain = make([][]complex128, op.Order+1)
		wx = make([][]complex128, op.Order+1)
		wy = make([][]complex128, op.Order+1)
		for q := 0; q <= op.Order; q++ {
			pv := make([]complex128, n)
			px := make([]complex128, n)
			py := make([]complex128, n)
			sign := 1.0
			if q%2 == 1 {
				sign = -1
			}
			for i := range pv {
				base := complex(sign*op.fpow[q][i], 0) * v[i]
				pv[i] = base
				px[i] = base * complex(op.jnx[i], 0)
				py[i] = base * complex(op.jny[i], 0)
			}
			plain[q] = fft.Forward2D(pv, m, m)
			wx[q] = fft.Forward2D(px, m, m)
			wy[q] = fft.Forward2D(py, m, m)
		}
		return plain, wx, wy
	}
	applyD := func(med int, plain, wx, wy [][]complex128) []complex128 {
		sp := op.spec[med]
		out := make([]complex128, n)
		for l := 0; l <= op.Order; l++ {
			acc := make([]complex128, n)
			for q := 0; l+q <= op.Order; q++ {
				b := complex(specfun.Binomial(l+q, l), 0)
				gx := sp.gx[l+q]
				gy := sp.gy[l+q]
				gz := sp.gz[l+q]
				for idx := range acc {
					acc[idx] += b * -(gx[idx]*wx[q][idx] + gy[idx]*wy[q][idx] + gz[idx]*plain[q][idx])
				}
			}
			conv := fft.Inverse2D(acc, m, m)
			for i := range out {
				out[i] += conv[i] * complex(op.fpow[l][i], 0)
			}
		}
		return out
	}

	srcs := fwdS(u)
	plain, wx, wy := fwdD(psi)
	s1u := applyS(0, srcs)
	s2u := applyS(1, srcs)
	d1p := applyD(0, plain, wx, wy)
	d2p := applyD(1, plain, wx, wy)

	for i := 0; i < n; i++ {
		cv := complex(op.curv[i], 0)
		y[i] = 0.5*psi[i] - d1p[i] - cv*psi[i] + op.beta*(s1u[i]+op.diag1*u[i])
		y[n+i] = 0.5*psi[i] + d2p[i] + cv*psi[i] - s2u[i] - op.diag2*u[i]
	}
	for _, e := range op.nearEntries {
		y[e.i] += -e.d1*psi[e.j] + op.beta*e.s1*u[e.j]
		y[e.i+n] += e.d2*psi[e.j] - e.s2*u[e.j]
	}
}

// Solve runs GMRES with the FFT matvec, left-preconditioned by the
// block-Jacobi inverse of the per-node 2×2 diagonal
//
//	[ ½ − curv_i ,  β·S₁,ii ]
//	[ ½ + curv_i , −S₂,ii   ]
//
// which captures the dominant local coupling between ψ_i and u_i and
// roughly halves the Krylov iteration count. The context is checked
// between GMRES restarts, so a cancelled job or a daemon drain stops a
// long solve promptly instead of waiting for the next chain stage.
func (op *FFTOperator) Solve(ctx context.Context, rhs []complex128, tol float64) (*Solution, float64, error) {
	x, rr, err := op.solveVec(ctx, rhs, tol)
	if err != nil {
		return nil, rr, err
	}
	sol := &Solution{Psi: x[:op.N], U: x[op.N : 2*op.N]}
	var p float64
	for i := 0; i < op.N; i++ {
		p += real(sol.Psi[i])*real(sol.U[i]) + imag(sol.Psi[i])*imag(sol.U[i])
	}
	sol.Pabs = op.h * op.h / 2 * p
	return sol, rr, nil
}

// solveVec is the raw preconditioned GMRES run behind Solve; the solve
// chain uses it directly so it can verify the candidate against the
// operator's own MatVec before accepting it.
func (op *FFTOperator) solveVec(ctx context.Context, rhs []complex128, tol float64) ([]complex128, float64, error) {
	n2 := 2 * op.N
	pre := op.blockJacobi()
	// Right preconditioning — solve (A·M⁻¹)·y = b, then x = M⁻¹·y — so
	// the GMRES residual IS the true residual of the original system and
	// the chain's verification threshold applies to it directly (left
	// preconditioning would skew the relative residual by the
	// preconditioner's conditioning, which is large when β is small).
	mv := func(y, x []complex128) {
		tmp := make([]complex128, n2)
		pre(tmp, x)
		op.MatVec(y, tmp)
	}
	y, rr, err := cmplxmat.GMRES(n2, mv, rhs, nil,
		cmplxmat.IterOpts{Tol: tol, Restart: 80, MaxIter: 6000, Check: ctx.Err})
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, rr, resilience.New(resilience.KindCanceled, "mom.fftop.solve", ctxErr)
		}
		return nil, rr, fmt.Errorf("mom: FFT-operator GMRES: %w", err)
	}
	x := make([]complex128, n2)
	pre(x, y)
	return x, rr, nil
}

// blockJacobi returns the application of the inverse 2×2 node-diagonal.
func (op *FFTOperator) blockJacobi() func(y, x []complex128) {
	n := op.N
	inv := make([][4]complex128, n)
	for i := 0; i < n; i++ {
		cv := complex(op.curv[i], 0)
		a := 0.5 - cv
		b := op.beta * op.diag1
		c := 0.5 + cv
		d := -op.diag2
		det := a*d - b*c
		inv[i] = [4]complex128{d / det, -b / det, -c / det, a / det}
	}
	return func(y, x []complex128) {
		for i := 0; i < n; i++ {
			p, u := x[i], x[n+i]
			y[i] = inv[i][0]*p + inv[i][1]*u
			y[n+i] = inv[i][2]*p + inv[i][3]*u
		}
	}
}

// RHS builds the incident-field right-hand side for the operator's surface.
func (op *FFTOperator) RHS(p Params) []complex128 {
	rhs := make([]complex128, 2*op.N)
	for i := 0; i < op.N; i++ {
		rhs[i] = cmplx.Exp(complex(0, -1) * p.K1 * complex(op.f[i], 0))
	}
	return rhs
}
