package mom

import (
	"fmt"
	"math"
	"math/cmplx"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/fft"
	"roughsim/internal/greens"
	"roughsim/internal/specfun"
	"roughsim/internal/surface"
)

// FFTOperator is the O(N log N) matrix-free form of the MoM system (9),
// implementing the FFT-based iterative strategy the paper cites ([17]):
// over the height range of the surface the kernels are replaced by
// per-lateral-offset polynomials in Δz,
//
//	G(Δρ, Δz) ≈ Σ_{q ≤ P} c_q(Δρ)·Δz^q,
//
// fitted at Chebyshev nodes of the occupied interval (a near-minimax
// variant of the Taylor expansion in the reference method). With
// Δz = f_i − f_j the powers split into observation and source factors,
// so the far interactions become P+1 two-dimensional cyclic convolutions
// per kernel family, evaluated by FFT. Close pairs — where the
// polynomial model cannot converge across the height range — are
// corrected with exact entries.
//
// Validity: the polynomial error decays like (Δz-range/ρ)^{P+1} with ρ
// the lateral pair distance, so the operator requires
// max|f_i − f_j| ≲ NearRadius·h — the slightly-rough / finely-gridded
// regime, as in ref. [17]. Construction returns an error outside it;
// use the dense or tabulated paths there.
type FFTOperator struct {
	N     int
	Order int

	m    int
	h    float64
	l    float64
	beta complex128

	f            []float64
	fpow         [][]float64
	jnx, jny     []float64
	spec         [2]kernelFamilies // spectral kernels (FFT of c_q·h²)
	realK        [2]kernelFamilies // real-space kernels for near model
	nearEntries  []nearEntry
	diag1, diag2 complex128
	curv         []float64
}

// kernelFamilies holds the four per-order kernel sets of one medium.
type kernelFamilies struct {
	g, gx, gy, gz [][]complex128 // [order+1][m*m]
}

type nearEntry struct {
	i, j           int
	s1, s2, d1, d2 complex128 // exact − polynomial-model corrections
}

// NewFFTOperator builds the operator at polynomial order (≥ 1, typically
// 3–6) for the given surface.
func NewFFTOperator(s *surface.Surface, p Params, order int, opt Options) (*FFTOperator, error) {
	opt = opt.withDefaults()
	if order < 1 {
		return nil, fmt.Errorf("mom: FFT operator order must be ≥ 1")
	}
	m := s.M
	n := m * m
	h := s.Step()
	var zmax float64
	for _, v := range s.H {
		if a := math.Abs(v); a > zmax {
			zmax = a
		}
	}
	rhoMin := float64(opt.NearRadius+1) * h
	if 2*zmax > 0.8*rhoMin {
		return nil, fmt.Errorf("mom: height range %.3g exceeds FFT-operator convergence bound %.3g (σ too large for this grid; use dense/tabulated assembly)", 2*zmax, 0.8*rhoMin)
	}

	g1 := greens.NewPeriodic3D(p.K1, s.L)
	g2 := greens.NewPeriodic3D(p.K2, s.L)

	op := &FFTOperator{N: n, Order: order, m: m, h: h, l: s.L, beta: p.Beta, f: s.H}
	fx, fy := s.Gradients()
	fxx, fyy, _ := s.SecondDerivs()
	op.jnx = make([]float64, n)
	op.jny = make([]float64, n)
	for i := range fx {
		op.jnx[i] = -fx[i]
		op.jny[i] = -fy[i]
	}
	op.curv = make([]float64, n)
	for i := range op.curv {
		op.curv[i] = (fxx[i] + fyy[i]) * h * math.Log(1+math.Sqrt2) / (4 * math.Pi)
	}
	op.fpow = make([][]float64, order+1)
	for q := 0; q <= order; q++ {
		op.fpow[q] = make([]float64, n)
		for i := range op.fpow[q] {
			op.fpow[q][i] = math.Pow(s.H[i], float64(q))
		}
	}

	zfit := 2.05 * zmax
	if zfit == 0 {
		zfit = h / 4
	}
	for med, g := range []*greens.Periodic3D{g1, g2} {
		rk := fitKernels(g, m, h, order, zfit)
		op.realK[med] = rk
		var sp kernelFamilies
		sp.g = make([][]complex128, order+1)
		sp.gx = make([][]complex128, order+1)
		sp.gy = make([][]complex128, order+1)
		sp.gz = make([][]complex128, order+1)
		for q := 0; q <= order; q++ {
			sp.g[q] = fft.Forward2D(rk.g[q], m, m)
			sp.gx[q] = fft.Forward2D(rk.gx[q], m, m)
			sp.gy[q] = fft.Forward2D(rk.gy[q], m, m)
			sp.gz[q] = fft.Forward2D(rk.gz[q], m, m)
		}
		op.spec[med] = sp
	}

	selfSing := complex(h*math.Log(1+math.Sqrt2)/math.Pi, 0)
	op.diag1 = selfSing + complex(h*h, 0)*g1.EvalRegularized()
	op.diag2 = selfSing + complex(h*h, 0)*g2.EvalRegularized()

	op.buildNearCorrections(s, g1, g2, opt)
	return op, nil
}

// fitKernels samples G and ∇G at Chebyshev z-nodes for every lateral
// grid offset and converts the samples into polynomial coefficients in
// Δz (already scaled by the cell area h²). The (0,0) offset is zeroed;
// near corrections supply it exactly.
func fitKernels(g *greens.Periodic3D, m int, h float64, order int, zfit float64) kernelFamilies {
	n := m * m
	nodes := make([]float64, order+1)
	for s := range nodes {
		nodes[s] = zfit * math.Cos((float64(s)+0.5)*math.Pi/float64(order+1))
	}
	inv := vandermondeInverse(nodes)

	var kf kernelFamilies
	kf.g = make([][]complex128, order+1)
	kf.gx = make([][]complex128, order+1)
	kf.gy = make([][]complex128, order+1)
	kf.gz = make([][]complex128, order+1)
	for q := range kf.g {
		kf.g[q] = make([]complex128, n)
		kf.gx[q] = make([]complex128, n)
		kf.gy[q] = make([]complex128, n)
		kf.gz[q] = make([]complex128, n)
	}
	area := complex(h*h, 0)
	sampG := make([]complex128, order+1)
	sampX := make([]complex128, order+1)
	sampY := make([]complex128, order+1)
	sampZ := make([]complex128, order+1)
	for iy := 0; iy < m; iy++ {
		for ix := 0; ix < m; ix++ {
			if ix == 0 && iy == 0 {
				continue
			}
			idx := iy*m + ix
			for s, z := range nodes {
				v, gr := g.EvalGrad(float64(ix)*h, float64(iy)*h, z)
				sampG[s] = v * area
				sampX[s] = gr[0] * area
				sampY[s] = gr[1] * area
				sampZ[s] = gr[2] * area
			}
			for q := 0; q <= order; q++ {
				var cg, cx, cy, cz complex128
				for s := 0; s <= order; s++ {
					w := complex(inv[q][s], 0)
					cg += w * sampG[s]
					cx += w * sampX[s]
					cy += w * sampY[s]
					cz += w * sampZ[s]
				}
				kf.g[q][idx] = cg
				kf.gx[q][idx] = cx
				kf.gy[q][idx] = cy
				kf.gz[q][idx] = cz
			}
		}
	}
	return kf
}

// vandermondeInverse returns the inverse of V[s][q] = nodes[s]^q, so
// coefficients = inv · samples.
func vandermondeInverse(nodes []float64) [][]float64 {
	n := len(nodes)
	a := make([][]float64, n)
	inv := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		inv[i] = make([]float64, n)
		inv[i][i] = 1
		p := 1.0
		for q := 0; q < n; q++ {
			a[i][q] = p
			p *= nodes[i]
		}
	}
	// Gauss–Jordan with partial pivoting (n ≤ ~8).
	for c := 0; c < n; c++ {
		p := c
		for r := c + 1; r < n; r++ {
			if math.Abs(a[r][c]) > math.Abs(a[p][c]) {
				p = r
			}
		}
		a[c], a[p] = a[p], a[c]
		inv[c], inv[p] = inv[p], inv[c]
		pv := a[c][c]
		for q := 0; q < n; q++ {
			a[c][q] /= pv
			inv[c][q] /= pv
		}
		for r := 0; r < n; r++ {
			if r == c || a[r][c] == 0 {
				continue
			}
			fac := a[r][c]
			for q := 0; q < n; q++ {
				a[r][q] -= fac * a[c][q]
				inv[r][q] -= fac * inv[c][q]
			}
		}
	}
	// inv currently maps samples → solution of V·x = e, i.e. V⁻¹ rows:
	// x[q] = Σ_s inv[q][s]·samples[s].
	return inv
}

// modelEntry evaluates the polynomial-model S and D entries for a pair.
func (op *FFTOperator) modelEntry(med, i, j int) (sv, dv complex128) {
	m := op.m
	px := ((i%m-j%m)%m + m) % m
	py := ((i/m-j/m)%m + m) % m
	idx := py*m + px
	dz := op.f[i] - op.f[j]
	rk := op.realK[med]
	var zp complex128 = 1
	for q := 0; q <= op.Order; q++ {
		sv += rk.g[q][idx] * zp
		dv += -(complex(op.jnx[j], 0)*rk.gx[q][idx] +
			complex(op.jny[j], 0)*rk.gy[q][idx] + rk.gz[q][idx]) * zp
		zp *= complex(dz, 0)
	}
	return sv, dv
}

// buildNearCorrections precomputes exact−model deltas for close pairs
// (including the self offset, whose model contribution must be removed
// because the exact diagonal is applied separately).
func (op *FFTOperator) buildNearCorrections(s *surface.Surface, g1, g2 *greens.Periodic3D, opt Options) {
	m := op.m
	h := op.h
	fx, fy := s.Gradients()
	fxx, fyy, fxy := s.SecondDerivs()
	sub := opt.NearSubdiv
	subArea := complex(h*h/float64(sub*sub), 0)
	for i := 0; i < op.N; i++ {
		iy, ix := i/m, i%m
		for dyC := -opt.NearRadius; dyC <= opt.NearRadius; dyC++ {
			for dxC := -opt.NearRadius; dxC <= opt.NearRadius; dxC++ {
				jx := ((ix-dxC)%m + m) % m
				jy := ((iy-dyC)%m + m) % m
				j := jy*m + jx
				var s1, s2, d1, d2 complex128
				if j != i {
					dxc := float64(ix)*h - float64(jx)*h
					dyc := float64(iy)*h - float64(jy)*h
					dzc := s.H[i] - s.H[j]
					for sy := 0; sy < sub; sy++ {
						oy := ((float64(sy)+0.5)/float64(sub) - 0.5) * h
						for sx := 0; sx < sub; sx++ {
							ox := ((float64(sx)+0.5)/float64(sub) - 0.5) * h
							ddz := dzc - (fx[j]*ox + fy[j]*oy +
								0.5*fxx[j]*ox*ox + 0.5*fyy[j]*oy*oy + fxy[j]*ox*oy)
							v1, gr1 := g1.EvalGrad(dxc-ox, dyc-oy, ddz)
							v2, gr2 := g2.EvalGrad(dxc-ox, dyc-oy, ddz)
							s1 += v1 * subArea
							s2 += v2 * subArea
							snx := -(fx[j] + fxx[j]*ox + fxy[j]*oy)
							sny := -(fy[j] + fyy[j]*oy + fxy[j]*ox)
							d1 += -(complex(snx, 0)*gr1[0] + complex(sny, 0)*gr1[1] + gr1[2]) * subArea
							d2 += -(complex(snx, 0)*gr2[0] + complex(sny, 0)*gr2[1] + gr2[2]) * subArea
						}
					}
				}
				t1s, t1d := op.modelEntry(0, i, j)
				t2s, t2d := op.modelEntry(1, i, j)
				op.nearEntries = append(op.nearEntries, nearEntry{
					i: i, j: j,
					s1: s1 - t1s, s2: s2 - t2s,
					d1: d1 - t1d, d2: d2 - t2d,
				})
			}
		}
	}
}

// MatVec applies the full 2N×2N system (9) to x = [Ψ; U], writing y.
func (op *FFTOperator) MatVec(y, x []complex128) {
	n := op.N
	m := op.m
	psi := x[:n]
	u := x[n : 2*n]

	// S·v  = Σ_l f^l ⊙ IFFT[ Σ_q binom(l+q,l)·Ĝ_{l+q} ⊙ FFT[(−f)^q ⊙ v] ]
	// D·v uses the (gx, gy) families against source-normal-weighted v and
	// the gz family against plain v.
	applyS := func(med int, v []complex128) []complex128 {
		sp := op.spec[med]
		srcs := make([][]complex128, op.Order+1)
		for q := 0; q <= op.Order; q++ {
			pv := make([]complex128, n)
			sign := 1.0
			if q%2 == 1 {
				sign = -1
			}
			for i := range pv {
				pv[i] = complex(sign*op.fpow[q][i], 0) * v[i]
			}
			srcs[q] = fft.Forward2D(pv, m, m)
		}
		out := make([]complex128, n)
		for l := 0; l <= op.Order; l++ {
			acc := make([]complex128, n)
			for q := 0; l+q <= op.Order; q++ {
				b := complex(specfun.Binomial(l+q, l), 0)
				kh := sp.g[l+q]
				sq := srcs[q]
				for idx := range acc {
					acc[idx] += b * kh[idx] * sq[idx]
				}
			}
			conv := fft.Inverse2D(acc, m, m)
			for i := range out {
				out[i] += conv[i] * complex(op.fpow[l][i], 0)
			}
		}
		return out
	}
	applyD := func(med int, v []complex128) []complex128 {
		sp := op.spec[med]
		plain := make([][]complex128, op.Order+1)
		wx := make([][]complex128, op.Order+1)
		wy := make([][]complex128, op.Order+1)
		for q := 0; q <= op.Order; q++ {
			pv := make([]complex128, n)
			px := make([]complex128, n)
			py := make([]complex128, n)
			sign := 1.0
			if q%2 == 1 {
				sign = -1
			}
			for i := range pv {
				base := complex(sign*op.fpow[q][i], 0) * v[i]
				pv[i] = base
				px[i] = base * complex(op.jnx[i], 0)
				py[i] = base * complex(op.jny[i], 0)
			}
			plain[q] = fft.Forward2D(pv, m, m)
			wx[q] = fft.Forward2D(px, m, m)
			wy[q] = fft.Forward2D(py, m, m)
		}
		out := make([]complex128, n)
		for l := 0; l <= op.Order; l++ {
			acc := make([]complex128, n)
			for q := 0; l+q <= op.Order; q++ {
				b := complex(specfun.Binomial(l+q, l), 0)
				gx := sp.gx[l+q]
				gy := sp.gy[l+q]
				gz := sp.gz[l+q]
				for idx := range acc {
					acc[idx] += b * -(gx[idx]*wx[q][idx] + gy[idx]*wy[q][idx] + gz[idx]*plain[q][idx])
				}
			}
			conv := fft.Inverse2D(acc, m, m)
			for i := range out {
				out[i] += conv[i] * complex(op.fpow[l][i], 0)
			}
		}
		return out
	}

	s1u := applyS(0, u)
	s2u := applyS(1, u)
	d1p := applyD(0, psi)
	d2p := applyD(1, psi)

	for i := 0; i < n; i++ {
		cv := complex(op.curv[i], 0)
		y[i] = 0.5*psi[i] - d1p[i] - cv*psi[i] + op.beta*(s1u[i]+op.diag1*u[i])
		y[n+i] = 0.5*psi[i] + d2p[i] + cv*psi[i] - s2u[i] - op.diag2*u[i]
	}
	for _, e := range op.nearEntries {
		y[e.i] += -e.d1*psi[e.j] + op.beta*e.s1*u[e.j]
		y[e.i+n] += e.d2*psi[e.j] - e.s2*u[e.j]
	}
}

// Solve runs GMRES with the FFT matvec, left-preconditioned by the
// block-Jacobi inverse of the per-node 2×2 diagonal
//
//	[ ½ − curv_i ,  β·S₁,ii ]
//	[ ½ + curv_i , −S₂,ii   ]
//
// which captures the dominant local coupling between ψ_i and u_i and
// roughly halves the Krylov iteration count.
func (op *FFTOperator) Solve(rhs []complex128, tol float64) (*Solution, float64, error) {
	n2 := 2 * op.N
	pre := op.blockJacobi()
	mv := func(y, x []complex128) {
		tmp := make([]complex128, n2)
		op.MatVec(tmp, x)
		pre(y, tmp)
	}
	prhs := make([]complex128, n2)
	pre(prhs, rhs)
	x, rr, err := cmplxmat.GMRES(n2, mv, prhs, nil, cmplxmat.IterOpts{Tol: tol, Restart: 80, MaxIter: 6000})
	if err != nil {
		return nil, rr, fmt.Errorf("mom: FFT-operator GMRES: %w", err)
	}
	sol := &Solution{Psi: x[:op.N], U: x[op.N : 2*op.N]}
	var p float64
	for i := 0; i < op.N; i++ {
		p += real(sol.Psi[i])*real(sol.U[i]) + imag(sol.Psi[i])*imag(sol.U[i])
	}
	sol.Pabs = op.h * op.h / 2 * p
	return sol, rr, nil
}

// blockJacobi returns the application of the inverse 2×2 node-diagonal.
func (op *FFTOperator) blockJacobi() func(y, x []complex128) {
	n := op.N
	inv := make([][4]complex128, n)
	for i := 0; i < n; i++ {
		cv := complex(op.curv[i], 0)
		a := 0.5 - cv
		b := op.beta * op.diag1
		c := 0.5 + cv
		d := -op.diag2
		det := a*d - b*c
		inv[i] = [4]complex128{d / det, -b / det, -c / det, a / det}
	}
	return func(y, x []complex128) {
		for i := 0; i < n; i++ {
			p, u := x[i], x[n+i]
			y[i] = inv[i][0]*p + inv[i][1]*u
			y[n+i] = inv[i][2]*p + inv[i][3]*u
		}
	}
}

// RHS builds the incident-field right-hand side for the operator's surface.
func (op *FFTOperator) RHS(p Params) []complex128 {
	rhs := make([]complex128, 2*op.N)
	for i := 0; i < op.N; i++ {
		rhs[i] = cmplx.Exp(complex(0, -1) * p.K1 * complex(op.f[i], 0))
	}
	return rhs
}
