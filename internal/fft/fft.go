// Package fft implements the fast Fourier transforms used for spectral
// surface synthesis and for the FFT-accelerated MoM matrix-vector
// product: an iterative radix-2 transform for power-of-two lengths,
// Bluestein's algorithm for arbitrary lengths, 2-D transforms, and fast
// cyclic convolution.
//
// Conventions: Forward computes X[k] = Σ_n x[n]·exp(−2πi·kn/N) (no
// scaling); Inverse divides by N so Inverse(Forward(x)) == x.
package fft

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// Forward computes the unscaled forward DFT of x in place-free fashion:
// the input slice is not modified and a new slice is returned.
func Forward(x []complex128) []complex128 {
	out := append([]complex128(nil), x...)
	transform(out, false)
	return out
}

// Inverse computes the inverse DFT (scaled by 1/N) of x, returning a new
// slice.
func Inverse(x []complex128) []complex128 {
	out := append([]complex128(nil), x...)
	transform(out, true)
	return out
}

// transform dispatches on length: radix-2 in place for powers of two,
// Bluestein otherwise.
func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// radix2 performs an in-place iterative Cooley–Tukey FFT; len(x) must be
// a power of two. No 1/N scaling is applied.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	levels := bits.TrailingZeros(uint(n))
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - levels))
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Rect(1, ang)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// reducing it to a cyclic convolution of power-of-two length.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign·iπ·k²/n). Use k² mod 2n to keep the angle
	// argument small (k² overflows float accuracy for large k).
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * chirp[k]
	}
}

// Forward2D computes the 2-D DFT of an ny×nx array stored row-major
// (rows of length nx). A new slice is returned.
func Forward2D(x []complex128, ny, nx int) []complex128 {
	return transform2D(x, ny, nx, false)
}

// Inverse2D computes the 2-D inverse DFT with 1/(nx·ny) scaling.
func Inverse2D(x []complex128, ny, nx int) []complex128 {
	return transform2D(x, ny, nx, true)
}

func transform2D(x []complex128, ny, nx int, inverse bool) []complex128 {
	if len(x) != ny*nx {
		panic("fft: 2D transform shape mismatch")
	}
	out := append([]complex128(nil), x...)
	// Rows.
	for r := 0; r < ny; r++ {
		row := out[r*nx : (r+1)*nx]
		transform(row, inverse)
	}
	// Columns.
	col := make([]complex128, ny)
	for c := 0; c < nx; c++ {
		for r := 0; r < ny; r++ {
			col[r] = out[r*nx+c]
		}
		transform(col, inverse)
		for r := 0; r < ny; r++ {
			out[r*nx+c] = col[r]
		}
	}
	return out
}

// CyclicConvolve returns the cyclic (circular) convolution of two
// equal-length sequences: out[k] = Σ_j a[j]·b[(k−j) mod n].
func CyclicConvolve(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("fft: CyclicConvolve length mismatch")
	}
	fa := Forward(a)
	fb := Forward(b)
	for i := range fa {
		fa[i] *= fb[i]
	}
	out := fa
	transform(out, true) // includes the 1/N scaling
	return out
}

// CyclicConvolve2D returns the 2-D circular convolution of two ny×nx
// arrays (row-major).
func CyclicConvolve2D(a, b []complex128, ny, nx int) []complex128 {
	fa := Forward2D(a, ny, nx)
	fb := Forward2D(b, ny, nx)
	for i := range fa {
		fa[i] *= fb[i]
	}
	return Inverse2D(fa, ny, nx)
}
