package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Rect(1, ang)
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func randVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Powers of two exercise radix-2; others exercise Bluestein.
	for _, n := range []int{1, 2, 4, 8, 16, 64, 3, 5, 7, 12, 15, 33, 100} {
		x := randVec(rng, n)
		got := Forward(x)
		want := naiveDFT(x, false)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff %g", n, d)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(130)
		x := randVec(rng, n)
		y := Inverse(Forward(x))
		return maxDiff(x, y) <= 1e-9*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{16, 37, 128} {
		x := randVec(rng, n)
		fx := Forward(x)
		var ex, ef float64
		for i := range x {
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(fx[i])*real(fx[i]) + imag(fx[i])*imag(fx[i])
		}
		if math.Abs(ef-float64(n)*ex)/(float64(n)*ex) > 1e-10 {
			t.Errorf("n=%d: Parseval violated: %g vs %g", n, ef, float64(n)*ex)
		}
	}
}

func TestDeltaFunctionTransform(t *testing.T) {
	// DFT of a delta at 0 is all-ones.
	n := 32
	x := make([]complex128, n)
	x[0] = 1
	fx := Forward(x)
	for i, v := range fx {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("delta transform bin %d = %v, want 1", i, v)
		}
	}
}

func TestForward2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ny, nx := 6, 10
	x := randVec(rng, ny*nx)
	got := Forward2D(x, ny, nx)
	// Naive 2D.
	want := make([]complex128, ny*nx)
	for ky := 0; ky < ny; ky++ {
		for kx := 0; kx < nx; kx++ {
			var s complex128
			for jy := 0; jy < ny; jy++ {
				for jx := 0; jx < nx; jx++ {
					ang := -2 * math.Pi * (float64(ky*jy)/float64(ny) + float64(kx*jx)/float64(nx))
					s += x[jy*nx+jx] * cmplx.Rect(1, ang)
				}
			}
			want[ky*nx+kx] = s
		}
	}
	if d := maxDiff(got, want); d > 1e-8 {
		t.Fatalf("2D FFT max diff %g", d)
	}
}

func TestInverse2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ny, nx := 12, 20
	x := randVec(rng, ny*nx)
	y := Inverse2D(Forward2D(x, ny, nx), ny, nx)
	if d := maxDiff(x, y); d > 1e-9 {
		t.Fatalf("2D round trip max diff %g", d)
	}
}

func TestCyclicConvolve(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, n := range []int{4, 9, 16, 31} {
		a := randVec(rng, n)
		b := randVec(rng, n)
		got := CyclicConvolve(a, b)
		want := make([]complex128, n)
		for k := 0; k < n; k++ {
			var s complex128
			for j := 0; j < n; j++ {
				s += a[j] * b[((k-j)%n+n)%n]
			}
			want[k] = s
		}
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: convolution max diff %g", n, d)
		}
	}
}

func TestCyclicConvolve2D(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	ny, nx := 5, 7
	a := randVec(rng, ny*nx)
	b := randVec(rng, ny*nx)
	got := CyclicConvolve2D(a, b, ny, nx)
	want := make([]complex128, ny*nx)
	for ky := 0; ky < ny; ky++ {
		for kx := 0; kx < nx; kx++ {
			var s complex128
			for jy := 0; jy < ny; jy++ {
				for jx := 0; jx < nx; jx++ {
					iy := ((ky-jy)%ny + ny) % ny
					ix := ((kx-jx)%nx + nx) % nx
					s += a[jy*nx+jx] * b[iy*nx+ix]
				}
			}
			want[ky*nx+kx] = s
		}
	}
	if d := maxDiff(got, want); d > 1e-9 {
		t.Fatalf("2D convolution max diff %g", d)
	}
}

func TestLinearity(t *testing.T) {
	f := func(seed int64, ar, ai float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		alpha := complex(math.Mod(ar, 3), math.Mod(ai, 3))
		x := randVec(rng, n)
		y := randVec(rng, n)
		z := make([]complex128, n)
		for i := range z {
			z[i] = alpha*x[i] + y[i]
		}
		fz := Forward(z)
		fx := Forward(x)
		fy := Forward(y)
		for i := range fz {
			if cmplx.Abs(fz[i]-(alpha*fx[i]+fy[i])) > 1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
