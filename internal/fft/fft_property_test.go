package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShiftTheorem(t *testing.T) {
	// DFT[x shifted by s][k] = e^{−2πi·ks/N}·DFT[x][k].
	f := func(seed int64, shiftRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(56)
		s := int(shiftRaw) % n
		x := randVec(rng, n)
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[((i-s)%n+n)%n]
		}
		fx := Forward(x)
		fs := Forward(shifted)
		for k := 0; k < n; k++ {
			ph := cmplx.Rect(1, -2*math.Pi*float64(k)*float64(s)/float64(n))
			if cmplx.Abs(fs[k]-ph*fx[k]) > 1e-9*float64(n)*(1+cmplx.Abs(fx[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConjugateSymmetryOfRealInput(t *testing.T) {
	// Real input ⇒ X[N−k] = conj(X[k]).
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{16, 21, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
		}
		fx := Forward(x)
		for k := 1; k < n; k++ {
			if cmplx.Abs(fx[n-k]-cmplx.Conj(fx[k])) > 1e-9*float64(n) {
				t.Fatalf("n=%d k=%d: Hermitian symmetry violated", n, k)
			}
		}
	}
}

func TestConvolutionTheoremCommutes(t *testing.T) {
	// a ⊛ b == b ⊛ a.
	rng := rand.New(rand.NewSource(78))
	for _, n := range []int{8, 17, 32} {
		a := randVec(rng, n)
		b := randVec(rng, n)
		ab := CyclicConvolve(a, b)
		ba := CyclicConvolve(b, a)
		if d := maxDiff(ab, ba); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: convolution not commutative, diff %g", n, d)
		}
	}
}
