package quadrature

import (
	"math"
	"testing"

	"roughsim/internal/specfun"
)

func TestGaussLegendreNodes(t *testing.T) {
	// 2-point rule: ±1/√3, weights 1.
	r := GaussLegendre(2)
	if math.Abs(r.X[0]+1/math.Sqrt(3)) > 1e-12 || math.Abs(r.X[1]-1/math.Sqrt(3)) > 1e-12 {
		t.Fatalf("GL2 nodes %v", r.X)
	}
	if math.Abs(r.W[0]-1) > 1e-12 || math.Abs(r.W[1]-1) > 1e-12 {
		t.Fatalf("GL2 weights %v", r.W)
	}
}

func TestGaussLegendreExactness(t *testing.T) {
	// n-point rule is exact for polynomials up to degree 2n−1.
	for _, n := range []int{1, 2, 3, 5, 10, 20} {
		r := GaussLegendre(n)
		for deg := 0; deg <= 2*n-1; deg++ {
			got := r.Integrate(func(x float64) float64 { return math.Pow(x, float64(deg)) })
			want := 0.0
			if deg%2 == 0 {
				want = 2 / float64(deg+1)
			}
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("n=%d deg=%d: %g want %g", n, deg, got, want)
			}
		}
	}
}

func TestGaussLegendreOnInterval(t *testing.T) {
	// ∫₀^π sin = 2.
	r := GaussLegendreOn(12, 0, math.Pi)
	if got := r.Integrate(math.Sin); math.Abs(got-2) > 1e-12 {
		t.Fatalf("∫ sin = %g", got)
	}
}

func TestGaussHermitePhysMoments(t *testing.T) {
	// ∫ x^{2m} e^{−x²} dx = Γ(m+1/2) = √π·(2m−1)!!/2^m.
	r := GaussHermitePhys(8)
	wants := []float64{math.SqrtPi, math.SqrtPi / 2, 3 * math.SqrtPi / 4, 15 * math.SqrtPi / 8}
	for m, want := range wants {
		got := r.Integrate(func(x float64) float64 { return math.Pow(x, float64(2*m)) })
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("moment 2m=%d: %g want %g", 2*m, got, want)
		}
	}
}

func TestGaussHermiteProbMoments(t *testing.T) {
	// Standard normal moments: 1, 1, 3, 15 for x⁰, x², x⁴, x⁶.
	r := GaussHermiteProb(10)
	wants := map[int]float64{0: 1, 1: 0, 2: 1, 3: 0, 4: 3, 5: 0, 6: 15}
	for deg, want := range wants {
		got := r.Integrate(func(x float64) float64 { return math.Pow(x, float64(deg)) })
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("E[x^%d] = %g, want %g", deg, got, want)
		}
	}
}

func TestGaussHermiteProbOrthogonality(t *testing.T) {
	// E[Heₙ Heₘ] = n!·δₙₘ must hold exactly for n+m ≤ 2·npts−1.
	r := GaussHermiteProb(8)
	for n := 0; n <= 5; n++ {
		for m := 0; m <= 5; m++ {
			got := r.Integrate(func(x float64) float64 {
				return specfun.HermiteProb(n, x) * specfun.HermiteProb(m, x)
			})
			want := 0.0
			if n == m {
				want = specfun.Factorial(n)
			}
			if math.Abs(got-want) > 1e-8*(1+want) {
				t.Errorf("E[He%d He%d] = %g, want %g", n, m, got, want)
			}
		}
	}
}

func TestTrapezoid(t *testing.T) {
	got := Trapezoid(func(x float64) float64 { return x * x }, 0, 1, 2000)
	if math.Abs(got-1.0/3) > 1e-6 {
		t.Fatalf("trapezoid ∫x² = %g", got)
	}
}

func TestTensorGridGaussian(t *testing.T) {
	// E[x₁²·x₂⁴] = 1·3 = 3 over iid standard normals.
	g := TensorGrid(2, 5, GaussHermiteProb)
	if g.Len() != 25 {
		t.Fatalf("tensor grid size %d, want 25", g.Len())
	}
	got := g.Integrate(func(x []float64) float64 { return x[0] * x[0] * x[1] * x[1] * x[1] * x[1] })
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("E[x²y⁴] = %g, want 3", got)
	}
}

func TestSmolyakLevel1Count(t *testing.T) {
	// Level-1 Smolyak over linear-growth Hermite: 2d+1 points. The paper's
	// Table I reports 33 points for the Gaussian-CF case, i.e. d = 16.
	for _, d := range []int{4, 10, 16, 19} {
		g := SmolyakHermite(d, 1)
		if g.Len() != 2*d+1 {
			t.Errorf("d=%d: level-1 count %d, want %d", d, g.Len(), 2*d+1)
		}
	}
}

func TestSmolyakWeightsSumToOne(t *testing.T) {
	// The grid integrates the constant 1 exactly (weights sum to μ0 = 1).
	for _, d := range []int{3, 8, 16} {
		for k := 0; k <= 2; k++ {
			g := SmolyakHermite(d, k)
			got := g.Integrate(func([]float64) float64 { return 1 })
			if math.Abs(got-1) > 1e-10 {
				t.Errorf("d=%d k=%d: Σw = %g", d, k, got)
			}
		}
	}
}

func TestSmolyakPolynomialExactness(t *testing.T) {
	// Level-k Smolyak with Gauss rules integrates total-degree ≤ 2k+1
	// polynomials of standard normals exactly.
	d := 5
	g2 := SmolyakHermite(d, 2)
	// E[x₀²] = 1.
	if got := g2.Integrate(func(x []float64) float64 { return x[0] * x[0] }); math.Abs(got-1) > 1e-9 {
		t.Errorf("E[x²] = %g", got)
	}
	// E[x₀² x₁²] = 1 (total degree 4 ≤ 5).
	if got := g2.Integrate(func(x []float64) float64 { return x[0] * x[0] * x[1] * x[1] }); math.Abs(got-1) > 1e-9 {
		t.Errorf("E[x₀²x₁²] = %g", got)
	}
	// E[x₀⁴] = 3.
	if got := g2.Integrate(func(x []float64) float64 { return math.Pow(x[0], 4) }); math.Abs(got-3) > 1e-9 {
		t.Errorf("E[x⁴] = %g", got)
	}
	// Odd moments vanish.
	if got := g2.Integrate(func(x []float64) float64 { return x[0] * x[1] * x[2] }); math.Abs(got) > 1e-9 {
		t.Errorf("E[xyz] = %g", got)
	}
}

func TestSmolyakMatchesTensorSmallDim(t *testing.T) {
	// In d=2 a level-2 sparse grid and a full 5×5 tensor grid must agree
	// on a smooth non-polynomial integrand to good accuracy.
	f := func(x []float64) float64 { return math.Exp(0.3*x[0] - 0.2*x[1]) }
	want := math.Exp((0.3*0.3 + 0.2*0.2) / 2) // E[e^{aX+bY}] = e^{(a²+b²)/2}
	tg := TensorGrid(2, 9, GaussHermiteProb)
	sg := SmolyakHermite(2, 3)
	if got := tg.Integrate(f); math.Abs(got-want) > 1e-6 {
		t.Errorf("tensor: %g want %g", got, want)
	}
	if got := sg.Integrate(f); math.Abs(got-want) > 1e-4 {
		t.Errorf("smolyak: %g want %g", got, want)
	}
}

func TestSmolyakCountsGrowth(t *testing.T) {
	// Sparse-grid size must grow polynomially, staying far below the
	// tensor grid: that is the whole point of SSCM vs MC (Table I).
	d := 16
	g1 := SmolyakHermite(d, 1)
	g2 := SmolyakHermite(d, 2)
	if g1.Len() != 33 {
		t.Errorf("level-1 d=16 count = %d, want 33 (paper Table I)", g1.Len())
	}
	if g2.Len() <= g1.Len() || g2.Len() > 1500 {
		t.Errorf("level-2 d=16 count = %d, expected a few hundred", g2.Len())
	}
}
