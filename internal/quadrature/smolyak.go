package quadrature

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"roughsim/internal/specfun"
)

// GridPoint is one node of a multi-dimensional quadrature grid.
type GridPoint struct {
	X []float64
	W float64
}

// Grid is a multi-dimensional quadrature rule for expectations over d
// iid standard normal variables (or whatever weight the 1-D factory
// encodes).
type Grid struct {
	Dim    int
	Points []GridPoint
}

// Integrate applies the grid to f.
func (g *Grid) Integrate(f func(x []float64) float64) float64 {
	var s float64
	for _, p := range g.Points {
		s += p.W * f(p.X)
	}
	return s
}

// Len returns the number of distinct sampling points — the quantity
// Table I of the paper reports.
func (g *Grid) Len() int { return len(g.Points) }

// Growth maps a Smolyak level l = 1, 2, 3… to the size of the 1-D rule
// used at that level.
type Growth func(level int) int

// LinearGrowth is n_l = 2l−1 (1, 3, 5, …): the standard choice for
// Gauss rules in sparse-grid collocation, keeping the center point at
// every level.
func LinearGrowth(l int) int { return 2*l - 1 }

// SlowGrowth is n_l = l (1, 2, 3, …), the most frugal choice.
func SlowGrowth(l int) int { return l }

// TensorGrid builds the full tensor product of the n-point 1-D rule in
// d dimensions: n^d points. Only sensible for very small d; it is the
// brute-force reference the sparse grid is tested against.
func TensorGrid(d, n int, rule func(int) Rule1D) *Grid {
	r := rule(n)
	total := 1
	for i := 0; i < d; i++ {
		total *= n
	}
	g := &Grid{Dim: d}
	idx := make([]int, d)
	for p := 0; p < total; p++ {
		x := make([]float64, d)
		w := 1.0
		for i := 0; i < d; i++ {
			x[i] = r.X[idx[i]]
			w *= r.W[idx[i]]
		}
		g.Points = append(g.Points, GridPoint{X: x, W: w})
		for i := d - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < n {
				break
			}
			idx[i] = 0
		}
	}
	return g
}

// Smolyak builds the level-k Smolyak sparse grid in d dimensions
// (k = 1 reproduces the paper's "1st-order SSCM" grids, k = 2 the
// "2nd-order" grids). rule builds the n-point 1-D rule; growth maps
// levels to rule sizes. Points shared between tensor terms are merged
// and their weights combined.
func Smolyak(d, k int, growth Growth, rule func(int) Rule1D) *Grid {
	if d <= 0 || k < 0 {
		panic("quadrature: Smolyak needs d ≥ 1, k ≥ 0")
	}
	q := d + k
	// Cache 1-D rules by level.
	rules := map[int]Rule1D{}
	getRule := func(l int) Rule1D {
		if r, ok := rules[l]; ok {
			return r
		}
		r := rule(growth(l))
		rules[l] = r
		return r
	}

	acc := map[string]*GridPoint{}
	key := func(x []float64) string {
		var b strings.Builder
		for _, v := range x {
			// Quantize to merge nodes that differ only by eigensolver
			// round-off (e.g. the Hermite center node coming out as
			// ~1e−17 instead of 0). Node magnitudes are O(1–10), so an
			// absolute 1e−9 snap is far below any node spacing.
			q := math.Round(v * 1e9)
			if q == 0 {
				q = 0 // normalize −0
			}
			fmt.Fprintf(&b, "%.0f|", q)
		}
		return b.String()
	}

	// Enumerate multi-indices l ∈ ℕ^d (each ≥ 1) with
	// max(d, q−d+1) ≤ |l| ≤ q, via recursion over coordinates that
	// exceed 1 (at most k of them, so this is cheap even for d ~ 20).
	lo := q - d + 1
	if lo < d {
		lo = d
	}
	l := make([]int, d)
	for i := range l {
		l[i] = 1
	}
	addTensor := func() {
		sum := 0
		for _, li := range l {
			sum += li
		}
		if sum < lo || sum > q {
			return
		}
		coeff := math.Pow(-1, float64(q-sum)) * specfun.Binomial(d-1, q-sum)
		if coeff == 0 {
			return
		}
		// Tensor product of the per-coordinate rules.
		rs := make([]Rule1D, d)
		total := 1
		for i := 0; i < d; i++ {
			rs[i] = getRule(l[i])
			total *= len(rs[i].X)
		}
		idx := make([]int, d)
		for p := 0; p < total; p++ {
			x := make([]float64, d)
			w := coeff
			for i := 0; i < d; i++ {
				x[i] = rs[i].X[idx[i]]
				w *= rs[i].W[idx[i]]
			}
			kk := key(x)
			if gp, ok := acc[kk]; ok {
				gp.W += w
			} else {
				acc[kk] = &GridPoint{X: x, W: w}
			}
			for i := d - 1; i >= 0; i-- {
				idx[i]++
				if idx[i] < len(rs[i].X) {
					break
				}
				idx[i] = 0
			}
		}
	}
	// Recursive enumeration: choose which coordinates exceed level 1.
	var recurse func(start, budget int)
	recurse = func(start, budget int) {
		addTensor()
		if budget == 0 {
			return
		}
		for i := start; i < d; i++ {
			l[i]++
			recurse(i, budget-1)
			l[i]--
		}
	}
	recurse(0, k)

	g := &Grid{Dim: d}
	keys := make([]string, 0, len(acc))
	for kk := range acc {
		keys = append(keys, kk)
	}
	sort.Strings(keys) // deterministic ordering
	for _, kk := range keys {
		gp := acc[kk]
		if math.Abs(gp.W) < 1e-15 {
			continue // exact cancellations between tensor terms
		}
		g.Points = append(g.Points, *gp)
	}
	return g
}

// SmolyakHermite is the sparse grid the SSCM solver uses: level-k
// Smolyak over probabilists' Gauss–Hermite rules with linear growth.
func SmolyakHermite(d, k int) *Grid {
	return Smolyak(d, k, LinearGrowth, GaussHermiteProb)
}
