// Package quadrature builds the numerical integration rules used across
// roughsim: Gauss–Legendre (PSD integrals of the SPM2 baseline),
// Gauss–Hermite in both physicists' and probabilists' normalizations
// (stochastic collocation), full tensor grids, and Smolyak sparse grids —
// the sampling-point engine of the SSCM solver (Table I of the paper).
package quadrature

import (
	"fmt"
	"math"

	"roughsim/internal/eigen"
)

// Rule1D is a one-dimensional quadrature rule: ∫ f(x) w(x) dx ≈ Σ Wᵢ f(Xᵢ).
type Rule1D struct {
	X []float64
	W []float64
}

// golubWelsch computes nodes and weights from the symmetric Jacobi
// matrix of a three-term recurrence p_{k+1} = (x−a_k)p_k − b_k p_{k−1},
// where b_k > 0 and mu0 = ∫ w(x) dx.
func golubWelsch(a, b []float64, mu0 float64) Rule1D {
	n := len(a)
	d := append([]float64(nil), a...)
	e := make([]float64, n)
	for k := 1; k < n; k++ {
		e[k] = math.Sqrt(b[k])
	}
	z := make([]float64, n*n)
	for i := 0; i < n; i++ {
		z[i*n+i] = 1
	}
	if err := eigen.TridiagQL(d, e, z, n); err != nil {
		panic(fmt.Sprintf("quadrature: Golub–Welsch eigen failure: %v", err))
	}
	r := Rule1D{X: make([]float64, n), W: make([]float64, n)}
	// Sort nodes ascending, weights from first eigenvector components.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d[idx[j]] < d[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	for r2, id := range idx {
		r.X[r2] = d[id]
		v0 := z[0*n+id]
		r.W[r2] = mu0 * v0 * v0
	}
	return r
}

// GaussLegendre returns the n-point Gauss–Legendre rule on [−1, 1].
func GaussLegendre(n int) Rule1D {
	if n <= 0 {
		panic("quadrature: GaussLegendre needs n ≥ 1")
	}
	a := make([]float64, n)
	b := make([]float64, n)
	for k := 1; k < n; k++ {
		fk := float64(k)
		b[k] = fk * fk / (4*fk*fk - 1)
	}
	return golubWelsch(a, b, 2)
}

// GaussLegendreOn returns the n-point Gauss–Legendre rule mapped to
// [lo, hi].
func GaussLegendreOn(n int, lo, hi float64) Rule1D {
	r := GaussLegendre(n)
	half := (hi - lo) / 2
	mid := (hi + lo) / 2
	out := Rule1D{X: make([]float64, n), W: make([]float64, n)}
	for i := range r.X {
		out.X[i] = mid + half*r.X[i]
		out.W[i] = half * r.W[i]
	}
	return out
}

// GaussHermitePhys returns the n-point Gauss–Hermite rule for the weight
// exp(−x²) on ℝ.
func GaussHermitePhys(n int) Rule1D {
	if n <= 0 {
		panic("quadrature: GaussHermitePhys needs n ≥ 1")
	}
	a := make([]float64, n)
	b := make([]float64, n)
	for k := 1; k < n; k++ {
		b[k] = float64(k) / 2
	}
	return golubWelsch(a, b, math.SqrtPi)
}

// GaussHermiteProb returns the n-point rule for the standard normal
// weight exp(−x²/2)/√(2π): the natural rule for expectations over iid
// standard normal KL coordinates.
func GaussHermiteProb(n int) Rule1D {
	if n <= 0 {
		panic("quadrature: GaussHermiteProb needs n ≥ 1")
	}
	a := make([]float64, n)
	b := make([]float64, n)
	for k := 1; k < n; k++ {
		b[k] = float64(k)
	}
	return golubWelsch(a, b, 1)
}

// Integrate applies a rule to a function.
func (r Rule1D) Integrate(f func(float64) float64) float64 {
	var s float64
	for i, x := range r.X {
		s += r.W[i] * f(x)
	}
	return s
}

// Trapezoid returns the composite trapezoid approximation of
// ∫_lo^hi f(x) dx with n panels.
func Trapezoid(f func(float64) float64, lo, hi float64, n int) float64 {
	if n <= 0 || hi <= lo {
		panic("quadrature: invalid Trapezoid spec")
	}
	h := (hi - lo) / float64(n)
	s := (f(lo) + f(hi)) / 2
	for i := 1; i < n; i++ {
		s += f(lo + float64(i)*h)
	}
	return s * h
}
