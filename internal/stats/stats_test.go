package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); math.Abs(m-5) > 1e-15 {
		t.Fatalf("mean %g, want 5", m)
	}
	// Sample variance with n−1: Σ(x−5)² = 32, /7.
	if v := Variance(x); math.Abs(v-32.0/7) > 1e-12 {
		t.Fatalf("variance %g, want %g", v, 32.0/7)
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("F(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestECDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		e := NewECDF(s)
		prev := -1.0
		for x := -4.0; x <= 4.0; x += 0.1 {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileInverse(t *testing.T) {
	// For a large uniform sample, Quantile(q) ≈ q.
	rng := rand.New(rand.NewSource(31))
	s := make([]float64, 50000)
	for i := range s {
		s[i] = rng.Float64()
	}
	e := NewECDF(s)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if got := e.Quantile(q); math.Abs(got-q) > 0.01 {
			t.Errorf("Quantile(%g) = %g", q, got)
		}
	}
}

func TestKSDistanceIdentical(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if d := KSDistance(NewECDF(s), NewECDF(s)); d != 0 {
		t.Fatalf("KS of identical samples = %g, want 0", d)
	}
}

func TestKSDistanceDisjoint(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3})
	b := NewECDF([]float64{10, 11, 12})
	if d := KSDistance(a, b); math.Abs(d-1) > 1e-15 {
		t.Fatalf("KS of disjoint samples = %g, want 1", d)
	}
}

func TestKSDistanceGaussianShift(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 20000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 0.5
	}
	d := KSDistance(NewECDF(a), NewECDF(b))
	// Theoretical KS between N(0,1) and N(0.5,1) is 2Φ(0.25)−1 ≈ 0.1974.
	want := 2*NormalCDF(0.25) - 1
	if math.Abs(d-want) > 0.02 {
		t.Fatalf("KS = %g, want ≈ %g", d, want)
	}
}

func TestHistogram(t *testing.T) {
	h, err := Histogram([]float64{0.1, 0.2, 0.9, -5, 5}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// −5 clamps to bin 0, 5 clamps to bin 1.
	if h[0] != 3 || h[1] != 2 {
		t.Fatalf("histogram %v, want [3 2]", h)
	}
	if _, err := Histogram(nil, 1, 0, 2); err == nil {
		t.Fatal("expected error for inverted range")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := make([]float64, 5000)
	var r Running
	for i := range x {
		x[i] = rng.NormFloat64()*3 + 1
		r.Push(x[i])
	}
	if math.Abs(r.Mean()-Mean(x)) > 1e-10 {
		t.Errorf("running mean %g vs batch %g", r.Mean(), Mean(x))
	}
	if math.Abs(r.Variance()-Variance(x)) > 1e-8 {
		t.Errorf("running variance %g vs batch %g", r.Variance(), Variance(x))
	}
	if r.N() != len(x) {
		t.Errorf("running N %d", r.N())
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Φ(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sample := make([]float64, 400)
	for i := range sample {
		sample[i] = rng.NormFloat64()*2 + 5
	}
	lo, hi := BootstrapCI(sample, 0.95, 2000, 9)
	m := Mean(sample)
	if !(lo < m && m < hi) {
		t.Fatalf("CI [%g, %g] does not bracket the sample mean %g", lo, hi, m)
	}
	// Width ≈ 2·1.96·sd/√n = 2·1.96·2/20 ≈ 0.39.
	if w := hi - lo; w < 0.2 || w > 0.7 {
		t.Fatalf("CI width %g implausible", w)
	}
	// True mean inside (it is, with overwhelming probability).
	if !(lo < 5.2 && hi > 4.8) {
		t.Fatalf("CI [%g, %g] far from the true mean", lo, hi)
	}
}

func TestBootstrapCIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty sample")
		}
	}()
	BootstrapCI(nil, 0.95, 100, 1)
}
