// Package stats provides the descriptive statistics used by the
// Monte-Carlo and SSCM drivers: moments, empirical CDFs, quantiles,
// histograms and the Kolmogorov–Smirnov distance used to compare the
// SSCM surrogate distribution against brute-force Monte-Carlo (Fig. 7).
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x. It panics on empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		panic("stats: Mean of empty slice")
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (n−1 denominator).
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MeanStdErr returns the mean and its standard error.
func MeanStdErr(x []float64) (mean, stderr float64) {
	mean = Mean(x)
	if len(x) > 1 {
		stderr = StdDev(x) / math.Sqrt(float64(len(x)))
	}
	return mean, stderr
}

// ECDF is an empirical cumulative distribution function built from a
// sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (the input is copied).
func NewECDF(sample []float64) *ECDF {
	if len(sample) == 0 {
		panic("stats: NewECDF of empty sample")
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns F(x) = P(X ≤ x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	// Number of sample points ≤ x.
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-th empirical quantile, q ∈ [0, 1], with linear
// interpolation between order statistics.
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	pos := q * float64(len(e.sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(e.sorted) {
		return e.sorted[len(e.sorted)-1]
	}
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac
}

// Support returns the min and max of the sample.
func (e *ECDF) Support() (lo, hi float64) {
	return e.sorted[0], e.sorted[len(e.sorted)-1]
}

// Len returns the sample size behind the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// KSDistance returns the Kolmogorov–Smirnov statistic
// sup_x |F₁(x) − F₂(x)| between two ECDFs, evaluated at every jump point
// of both (where the supremum of step functions is attained).
func KSDistance(a, b *ECDF) float64 {
	var d float64
	check := func(x float64) {
		// Evaluate just below and at x to capture both sides of a jump.
		below := math.Nextafter(x, math.Inf(-1))
		if v := math.Abs(a.At(below) - b.At(below)); v > d {
			d = v
		}
		if v := math.Abs(a.At(x) - b.At(x)); v > d {
			d = v
		}
	}
	for _, x := range a.sorted {
		check(x)
	}
	for _, x := range b.sorted {
		check(x)
	}
	return d
}

// Histogram bins sample values into nbins equal-width bins over
// [lo, hi], returning the bin counts. Values outside the range are
// clamped into the edge bins.
func Histogram(sample []float64, lo, hi float64, nbins int) ([]int, error) {
	if nbins <= 0 || hi <= lo {
		return nil, errors.New("stats: invalid histogram spec")
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, v := range sample {
		i := int((v - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts, nil
}

// Running accumulates streaming mean/variance (Welford) so Monte-Carlo
// drivers can track convergence without storing every sample.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Push adds a sample.
func (r *Running) Push(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples pushed.
func (r *Running) N() int { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the running unbiased variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdErr returns the standard error of the running mean.
func (r *Running) StdErr() float64 {
	if r.n < 2 {
		return math.Inf(1)
	}
	return math.Sqrt(r.Variance() / float64(r.n))
}

// NormalCDF returns Φ(x), the standard normal CDF.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of a sample at the given level (e.g. 0.95), using nBoot
// resamples driven by the deterministic seed.
func BootstrapCI(sample []float64, level float64, nBoot int, seed uint64) (lo, hi float64) {
	if len(sample) == 0 || level <= 0 || level >= 1 || nBoot <= 0 {
		panic("stats: invalid BootstrapCI arguments")
	}
	// Small linear-congruential stream keeps this package dependency
	// free; quality is ample for resampling indices.
	state := seed*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	means := make([]float64, nBoot)
	for b := 0; b < nBoot; b++ {
		var s float64
		for range sample {
			s += sample[next(len(sample))]
		}
		means[b] = s / float64(len(sample))
	}
	e := NewECDF(means)
	alpha := (1 - level) / 2
	return e.Quantile(alpha), e.Quantile(1 - alpha)
}
