package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"time"

	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
)

// WorkerConfig sizes one worker process. Zero values select the
// defaults noted on each field.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// ID names the worker in leases and telemetry labels (default a
	// random "worker-<hex>" tag).
	ID string
	// Poll is the idle claim interval (default 500ms).
	Poll time.Duration
	// RequestTimeout bounds every coordinator HTTP call (default 30s).
	RequestTimeout time.Duration
	// Grace bounds how long an in-flight solve may run on after Run's
	// context is canceled — the drain window (default 2m).
	Grace time.Duration
	// Metrics receives worker telemetry; default a fresh registry.
	Metrics *telemetry.Registry
	// Log receives worker events; default slog.Default().
	Log *slog.Logger
	// Solve computes one claimed task's column (required); usually
	// (*Columns).Solve.
	Solve func(ctx context.Context, t Task) ([]float64, error)
	// OnClaim observes each granted lease before the solve starts
	// (test hook; may be nil).
	OnClaim func(t Task)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ID == "" {
		c.ID = fmt.Sprintf("worker-%08x", rand.Uint32())
	}
	if c.Poll <= 0 {
		c.Poll = 500 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Grace <= 0 {
		c.Grace = 2 * time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	return c
}

// Worker pulls column tasks from a coordinator, solves them, and pushes
// the results back: claim → solve (with a renewal heartbeat) →
// complete. It is deliberately stateless — all durable state lives on
// the coordinator — so killing a worker at any instant loses at most
// the lease it holds, which expires and re-queues.
type Worker struct {
	cfg    WorkerConfig
	client *Client
}

// NewWorker validates cfg and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.Coordinator == "" {
		return nil, errors.New("cluster: worker needs a coordinator URL")
	}
	if cfg.Solve == nil {
		return nil, errors.New("cluster: worker needs a Solve function")
	}
	return &Worker{
		cfg:    cfg,
		client: NewClient(cfg.Coordinator, cfg.RequestTimeout, cfg.ID),
	}, nil
}

// ID returns the worker's lease identity.
func (w *Worker) ID() string { return w.cfg.ID }

// Run claims and solves tasks until ctx is canceled, then drains: the
// in-flight solve gets up to Grace to finish and report before the
// worker leaves. Run only returns ctx's error.
func (w *Worker) Run(ctx context.Context) error {
	w.cfg.Log.Info("cluster.worker: running",
		"worker", w.cfg.ID, "coordinator", w.cfg.Coordinator)
	for ctx.Err() == nil {
		task, token, ttl, err := w.client.Claim(ctx, w.cfg.ID)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			w.cfg.Metrics.Counter("worker.claim_errors").Inc()
			w.cfg.Log.Warn("cluster.worker: claim failed", "worker", w.cfg.ID, "error", err)
			w.sleep(ctx, w.cfg.Poll)
			continue
		}
		if task == nil {
			w.sleep(ctx, w.cfg.Poll)
			continue
		}
		w.cfg.Metrics.Counter("worker.claims").Inc()
		if w.cfg.OnClaim != nil {
			w.cfg.OnClaim(*task)
		}
		w.process(ctx, *task, token, ttl)
	}
	// Graceful departure: hand any still-pending lease back immediately
	// instead of letting the coordinator wait out the TTL.
	leaveCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), w.cfg.RequestTimeout)
	defer cancel()
	if err := w.client.Leave(leaveCtx, w.cfg.ID); err != nil {
		w.cfg.Log.Warn("cluster.worker: leave failed", "worker", w.cfg.ID, "error", err)
	}
	w.cfg.Log.Info("cluster.worker: drained", "worker", w.cfg.ID)
	return ctx.Err()
}

// process runs one leased task to completion (or stale abandonment).
// The solve survives Run-context cancellation for up to Grace so a
// SIGTERM drains cleanly instead of discarding minutes of work.
func (w *Worker) process(ctx context.Context, task Task, token string, ttl time.Duration) {
	runCtx, cancelRun := context.WithCancel(context.WithoutCancel(ctx))
	defer cancelRun()
	drainDone := make(chan struct{})
	defer close(drainDone)
	go func() {
		select {
		case <-drainDone:
		case <-ctx.Done():
			t := time.NewTimer(w.cfg.Grace)
			defer t.Stop()
			select {
			case <-drainDone:
			case <-t.C:
				cancelRun()
			}
		}
	}()

	// Renewal heartbeat: extend the lease at TTL/3 while the solve runs.
	// A stale renew means the coordinator already re-queued the task —
	// cancel the solve, its result would be discarded anyway.
	heartbeat := ttl / 3
	if heartbeat < 50*time.Millisecond {
		heartbeat = 50 * time.Millisecond
	}
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		tick := time.NewTicker(heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-tick.C:
				if err := w.client.Renew(runCtx, task.ID, token); err != nil {
					if errors.Is(err, ErrStale) {
						w.cfg.Metrics.Counter("worker.stale").Inc()
						w.cfg.Log.Warn("cluster.worker: lease lapsed mid-solve",
							"worker", w.cfg.ID, "task", task.ID)
						cancelRun()
						return
					}
					if runCtx.Err() == nil {
						w.cfg.Log.Warn("cluster.worker: renew failed",
							"worker", w.cfg.ID, "task", task.ID, "error", err)
					}
				}
			}
		}
	}()

	col, solveErr := w.cfg.Solve(runCtx, task)
	interrupted := runCtx.Err() != nil // read BEFORE our own cancel below
	cancelRun()
	<-renewDone

	if interrupted && solveErr != nil {
		// Canceled by staleness or drain-grace expiry: nothing to report.
		return
	}
	req := CompleteRequest{TaskID: task.ID, Token: token, Worker: w.cfg.ID}
	if solveErr != nil {
		w.cfg.Metrics.Counter("worker.errors").Inc()
		req.Error = solveErr.Error()
		req.Kind = resilience.Classify(solveErr).String()
	} else {
		w.cfg.Metrics.Counter("worker.solved").Inc()
		req.Column = col
	}
	// Completion must outlive Run-context cancellation too: the column is
	// computed, losing it to a drain race would waste the whole solve.
	compCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), w.cfg.RequestTimeout)
	defer cancel()
	if err := w.client.Complete(compCtx, req); err != nil {
		if errors.Is(err, ErrStale) {
			w.cfg.Metrics.Counter("worker.stale").Inc()
			return
		}
		w.cfg.Metrics.Counter("worker.complete_errors").Inc()
		w.cfg.Log.Warn("cluster.worker: complete failed",
			"worker", w.cfg.ID, "task", task.ID, "error", err)
	}
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
