package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"roughsim/internal/resilience"
)

// fakeCoordinator is an httptest-backed claim/renew/complete endpoint
// set with a scripted task list.
type fakeCoordinator struct {
	mu        sync.Mutex
	tasks     []Task
	token     string
	completes []CompleteRequest
	renews    int
	leaves    int
	staleAll  bool // reject every renew/complete with 409
}

func (f *fakeCoordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ClaimPath, func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if len(f.tasks) == 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		task := f.tasks[0]
		f.tasks = f.tasks[1:]
		json.NewEncoder(w).Encode(ClaimResponse{Task: task, Token: f.token, TTLMs: 200})
	})
	mux.HandleFunc("POST "+RenewPath, func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.renews++
		if f.staleAll {
			w.WriteHeader(http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST "+CompletePath, func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		body, _ := io.ReadAll(r.Body)
		json.Unmarshal(body, &req)
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.staleAll {
			w.WriteHeader(http.StatusConflict)
			return
		}
		f.completes = append(f.completes, req)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST "+LeavePath, func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.leaves++
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func runTestWorker(t *testing.T, fc *fakeCoordinator, solve func(context.Context, Task) ([]float64, error), wait func() bool) {
	t.Helper()
	srv := httptest.NewServer(fc.handler())
	defer srv.Close()
	w, err := NewWorker(WorkerConfig{
		Coordinator: srv.URL,
		ID:          "w-test",
		Poll:        10 * time.Millisecond,
		Grace:       time.Second,
		Solve:       solve,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	deadline := time.Now().Add(10 * time.Second)
	for !wait() {
		if time.Now().After(deadline) {
			cancel()
			<-done
			t.Fatal("worker never reached the expected state")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}
}

func TestWorkerSolvesAndCompletes(t *testing.T) {
	fc := &fakeCoordinator{tasks: []Task{{ID: "t1", Node: 3}}, token: "tok"}
	runTestWorker(t, fc,
		func(ctx context.Context, task Task) ([]float64, error) {
			return []float64{float64(task.Node), 0.5}, nil
		},
		func() bool {
			fc.mu.Lock()
			defer fc.mu.Unlock()
			return len(fc.completes) == 1
		})
	got := fc.completes[0]
	if got.TaskID != "t1" || got.Token != "tok" || got.Worker != "w-test" {
		t.Fatalf("bad completion %+v", got)
	}
	if got.Error != "" || len(got.Column) != 2 || got.Column[0] != 3 {
		t.Fatalf("bad column %+v", got)
	}
	if fc.leaves != 1 {
		t.Fatalf("worker left %d times, want 1 graceful leave", fc.leaves)
	}
}

func TestWorkerReportsClassifiedError(t *testing.T) {
	fc := &fakeCoordinator{tasks: []Task{{ID: "t1"}}, token: "tok"}
	runTestWorker(t, fc,
		func(ctx context.Context, task Task) ([]float64, error) {
			return nil, resilience.Errorf(resilience.KindSingular, "test", "singular system")
		},
		func() bool {
			fc.mu.Lock()
			defer fc.mu.Unlock()
			return len(fc.completes) == 1
		})
	got := fc.completes[0]
	if got.Error == "" || got.Kind != resilience.KindSingular.String() {
		t.Fatalf("error not classified on the wire: %+v", got)
	}
	if len(got.Column) != 0 {
		t.Fatalf("failed completion carries a column: %+v", got)
	}
}

// A lease the coordinator no longer honors cancels the solve: the
// renewal heartbeat sees 409 and tears the run context down.
func TestWorkerStaleLeaseCancelsSolve(t *testing.T) {
	fc := &fakeCoordinator{tasks: []Task{{ID: "t1"}}, token: "tok", staleAll: true}
	canceled := make(chan struct{})
	runTestWorker(t, fc,
		func(ctx context.Context, task Task) ([]float64, error) {
			select {
			case <-ctx.Done():
				close(canceled)
				return nil, ctx.Err()
			case <-time.After(30 * time.Second):
				return []float64{1}, nil
			}
		},
		func() bool {
			select {
			case <-canceled:
				return true
			default:
				return false
			}
		})
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if len(fc.completes) != 0 {
		t.Fatalf("stale solve still reported a completion: %+v", fc.completes)
	}
}

func TestWorkerConfigValidation(t *testing.T) {
	if _, err := NewWorker(WorkerConfig{Solve: func(context.Context, Task) ([]float64, error) { return nil, nil }}); err == nil {
		t.Fatal("missing coordinator URL accepted")
	}
	if _, err := NewWorker(WorkerConfig{Coordinator: "http://x"}); err == nil {
		t.Fatal("missing Solve accepted")
	}
}

func TestClientStatuses(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ClaimPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST "+RenewPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := NewClient(srv.URL, time.Second, "w")
	task, _, _, err := c.Claim(context.Background(), "w")
	if err != nil || task != nil {
		t.Fatalf("204 claim: task=%v err=%v, want nil/nil", task, err)
	}
	if err := c.Renew(context.Background(), "t", "tok"); !errors.Is(err, ErrStale) {
		t.Fatalf("409 renew returned %v, want ErrStale", err)
	}
}
