// Package cluster is the distributed compute plane of roughsimd: the
// consistent-hash ring that routes /k queries and sweep submissions to
// warm shards, the wire protocol of the coordinator's claim/renew/
// complete endpoints, and the worker loop that pulls column tasks,
// solves them, and pushes the results back.
//
// The unit of distribution is one sweep column (see
// sweepengine.ColumnPlan): a task carries the residual sweep config plus
// a collocation node index, is content-addressed by the column's
// checkpoint key, and its result — the solver's float64 column,
// round-tripped losslessly through JSON — feeds back into the
// coordinator's checkpoint store, so a distributed sweep is bitwise
// identical to a single-process one. Work distribution is pull-based:
// workers claim at their own pace, so joining a worker rebalances load
// by itself and losing one only strands leases that expire and re-queue.
package cluster

import "roughsim"

// Coordinator endpoint paths of the compute plane.
const (
	ClaimPath    = "/v1/cluster/claim"
	RenewPath    = "/v1/cluster/renew"
	CompletePath = "/v1/cluster/complete"
	LeavePath    = "/v1/cluster/leave"
)

// Task is one claimable column unit.
type Task struct {
	// ID is the column's content address (the checkpoint key), so an
	// offer is idempotent and a completed column verifiable bitwise.
	ID string `json:"id"`
	// JobID is the sweep job the column belongs to (journal labeling).
	JobID string `json:"job_id"`
	// Config is the residual sweep (Freqs = the cache-missing subset).
	Config roughsim.SweepConfig `json:"config"`
	// Node is the collocation node index, or sweepengine.FlatRefNode for
	// the interpolated path's flat-reference vector.
	Node int `json:"node"`
	// Ps is the flat-reference vector an interpolated-path node column
	// divides by; empty for exact-path and flat-reference tasks.
	Ps []float64 `json:"ps,omitempty"`
}

// ClaimRequest asks for one task lease.
type ClaimRequest struct {
	Worker string `json:"worker"`
}

// ClaimResponse grants one (204 means nothing is pending).
type ClaimResponse struct {
	Task  Task   `json:"task"`
	Token string `json:"token"`
	TTLMs int64  `json:"ttl_ms"`
}

// RenewRequest extends a lease while the solve is still running.
type RenewRequest struct {
	TaskID string `json:"task_id"`
	Token  string `json:"token"`
}

// CompleteRequest finishes a lease: a column on success, a classified
// error otherwise (Kind is a resilience.Kind label — deterministic
// rejections are never re-queued by the coordinator).
type CompleteRequest struct {
	TaskID string    `json:"task_id"`
	Token  string    `json:"token"`
	Worker string    `json:"worker"`
	Column []float64 `json:"column,omitempty"`
	Error  string    `json:"error,omitempty"`
	Kind   string    `json:"kind,omitempty"`
}

// LeaveRequest announces a graceful departure, re-queueing any lease
// the worker still holds without waiting out its TTL.
type LeaveRequest struct {
	Worker string `json:"worker"`
}
