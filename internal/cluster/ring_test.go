package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := NewRing(members)
	r2 := NewRing([]string{"http://c:3", "http://a:1", "http://b:2", "http://a:1"})
	if r1 == nil || r2 == nil {
		t.Fatal("nil ring for non-empty members")
	}
	hit := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		o := r1.Owner(key)
		if o2 := r2.Owner(key); o2 != o {
			// Placement must be order- and duplicate-insensitive.
			t.Fatalf("owner(%q) differs across member orderings: %q vs %q", key, o, o2)
		}
		hit[o]++
	}
	for _, m := range members {
		if hit[m] == 0 {
			t.Fatalf("member %q owns no keys (distribution %v)", m, hit)
		}
	}
}

func TestRingMinimalReshuffle(t *testing.T) {
	before := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"})
	after := NewRing([]string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"})
	moved := 0
	const n = 2000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		if before.Owner(key) != after.Owner(key) {
			if after.Owner(key) != "http://d:4" {
				t.Fatalf("key %q moved between surviving members", key)
			}
			moved++
		}
	}
	// Consistent hashing moves ~1/4 of the space to the new member; 45%
	// leaves generous slack over hash variance while still catching a
	// modulo-style full reshuffle.
	if moved == 0 || moved > n*45/100 {
		t.Fatalf("moved %d/%d keys; want a small non-zero fraction", moved, n)
	}
}

func TestRingEmptyAndNil(t *testing.T) {
	if r := NewRing(nil); r != nil {
		t.Fatal("empty member list should yield a nil ring")
	}
	var r *Ring
	if o := r.Owner("k"); o != "" {
		t.Fatalf("nil ring owner = %q, want empty", o)
	}
	if ms := r.Members(); ms != nil {
		t.Fatalf("nil ring members = %v", ms)
	}
}
