package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"roughsim/internal/resilience"
)

// ErrStale reports a renew or complete the coordinator rejected because
// the lease is no longer current (expired and re-queued, canceled, or
// finished by someone else). The worker discards the work — the
// coordinator's re-queued execution is authoritative.
var ErrStale = errors.New("cluster: stale lease")

// NewHTTPClient returns the explicit-timeout client all intra-cluster
// HTTP goes through. http.DefaultClient has no timeout at all, so one
// hung peer would pin a goroutine forever; every call here is bounded.
func NewHTTPClient(timeout time.Duration) *http.Client {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &http.Client{Timeout: timeout}
}

// Client talks to one coordinator. Transient transport failures and
// 5xx responses retry under the resilience backoff (deterministic
// jitter keyed by the worker), so a coordinator restart or a dropped
// connection does not lose a computed column.
type Client struct {
	base     string
	hc       *http.Client
	backoff  resilience.Backoff
	attempts int
	key      uint64
}

// NewClient builds a coordinator client with per-request timeout and a
// bounded retry schedule keyed by name (the worker ID).
func NewClient(base string, timeout time.Duration, name string) *Client {
	return &Client{
		base:     strings.TrimRight(base, "/"),
		hc:       NewHTTPClient(timeout),
		backoff:  resilience.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.2},
		attempts: 4,
		key:      fnv1a(name),
	}
}

// Claim asks for one task. A nil task (with nil error) means nothing is
// pending right now.
func (c *Client) Claim(ctx context.Context, worker string) (*Task, string, time.Duration, error) {
	status, body, err := c.postJSON(ctx, ClaimPath, ClaimRequest{Worker: worker})
	if err != nil {
		return nil, "", 0, err
	}
	if status == http.StatusNoContent {
		return nil, "", 0, nil
	}
	if status != http.StatusOK {
		return nil, "", 0, fmt.Errorf("cluster: claim: unexpected status %d: %s", status, body)
	}
	var resp ClaimResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, "", 0, fmt.Errorf("cluster: claim: decode: %w", err)
	}
	return &resp.Task, resp.Token, time.Duration(resp.TTLMs) * time.Millisecond, nil
}

// Renew extends the lease; ErrStale when the coordinator no longer
// honors it (abandon the solve — its result would be discarded anyway).
func (c *Client) Renew(ctx context.Context, taskID, token string) error {
	return c.expectAck(ctx, RenewPath, RenewRequest{TaskID: taskID, Token: token}, "renew")
}

// Complete reports a finished task; ErrStale when the lease lapsed
// first (the column is discarded idempotently on the coordinator).
func (c *Client) Complete(ctx context.Context, req CompleteRequest) error {
	return c.expectAck(ctx, CompletePath, req, "complete")
}

// Leave announces a graceful departure.
func (c *Client) Leave(ctx context.Context, worker string) error {
	return c.expectAck(ctx, LeavePath, LeaveRequest{Worker: worker}, "leave")
}

func (c *Client) expectAck(ctx context.Context, path string, req any, op string) error {
	status, body, err := c.postJSON(ctx, path, req)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusNoContent, http.StatusOK:
		return nil
	case http.StatusConflict:
		return ErrStale
	default:
		return fmt.Errorf("cluster: %s: unexpected status %d: %s", op, status, body)
	}
}

// postJSON POSTs a JSON body, retrying transport errors and 5xx
// responses under the backoff. Definitive responses (2xx, 4xx) return
// immediately.
func (c *Client) postJSON(ctx context.Context, path string, v any) (int, []byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: encode %s: %w", path, err)
	}
	var lastErr error
	for attempt := 1; attempt <= c.attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err == nil {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if rerr != nil {
				err = rerr
			} else if resp.StatusCode >= 500 {
				lastErr = fmt.Errorf("cluster: %s: status %d: %s", path, resp.StatusCode, body)
				err = lastErr
			} else {
				return resp.StatusCode, body, nil
			}
		}
		lastErr = err
		if attempt < c.attempts {
			d := c.backoff.Delay(attempt, c.key)
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return 0, nil, ctx.Err()
			case <-t.C:
			}
		}
	}
	return 0, nil, fmt.Errorf("cluster: %s failed after %d attempts: %w", path, c.attempts, lastErr)
}
