package cluster

import (
	"context"
	"sync"

	"roughsim"
	"roughsim/internal/telemetry"
)

// Columns is the worker-side column solver: it memoizes constructed
// simulations (KL modes are expensive) keyed by the frequency-
// independent part of the config and shares one Green's-function table
// cache across tasks — the worker's mirror of the server's simFor, so a
// worker grinding through one sweep's columns builds its solver state
// once.
type Columns struct {
	metrics *telemetry.Registry
	tables  *roughsim.TableCache

	mu   sync.Mutex
	sims map[string]*roughsim.Simulation
}

const simCacheCap = 32

// NewColumns builds a solver pool publishing telemetry to m (nil
// disables it).
func NewColumns(m *telemetry.Registry) *Columns {
	if m == nil {
		m = telemetry.NewRegistry()
	}
	return &Columns{
		metrics: m,
		tables:  roughsim.NewTableCache(0, m),
		sims:    map[string]*roughsim.Simulation{},
	}
}

// Solve computes one claimed task's column.
func (c *Columns) Solve(ctx context.Context, t Task) ([]float64, error) {
	cfg := t.Config.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim, err := c.simFor(cfg)
	if err != nil {
		return nil, err
	}
	return sim.SweepColumn(ctx, cfg.Freqs, t.Node, t.Ps)
}

func (c *Columns) simFor(cfg roughsim.SweepConfig) (*roughsim.Simulation, error) {
	key := cfg.KeyAt(1).String()
	c.mu.Lock()
	defer c.mu.Unlock()
	if sim, ok := c.sims[key]; ok {
		return sim, nil
	}
	sim, err := roughsim.NewSimulation(cfg.Stack, cfg.Spec, cfg.Acc)
	if err != nil {
		return nil, err
	}
	sim.WithMetrics(c.metrics).WithTableCache(c.tables)
	if len(c.sims) >= simCacheCap {
		c.sims = map[string]*roughsim.Simulation{}
	}
	c.sims[key] = sim
	return sim, nil
}
