package cluster

import (
	"sort"
)

// Ring is a consistent-hash ring over shard base URLs. Each member owns
// the keys that hash onto its virtual nodes, so /k queries and sweep
// submissions for one content address always land on the same shard —
// the one whose caches are warm for it — and membership changes move
// only ~1/n of the key space.
type Ring struct {
	points  []ringPoint
	members []string
}

type ringPoint struct {
	hash   uint64
	member string
}

const virtualNodes = 64

// NewRing builds a ring over members (order-insensitive; duplicates are
// folded). An empty member list yields a nil ring, whose Owner returns
// "".
func NewRing(members []string) *Ring {
	seen := map[string]bool{}
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{mix(fnv1a(m + "#" + itoa(v))), m})
		}
	}
	if len(r.members) == 0 {
		return nil
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	sort.Strings(r.members)
	return r
}

// Owner returns the member owning key (the first virtual node at or
// clockwise after the key's hash).
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := mix(fnv1a(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the ring's distinct members, sorted.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.members...)
}

// fnv1a is the 64-bit FNV-1a hash — the same seed-free family the
// resilience jitter and job-ID hashing use, so placement is
// deterministic across processes and restarts.
func fnv1a(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is a 64-bit avalanche finalizer (the murmur3/splitmix constants).
// FNV-1a alone clusters hashes of near-identical strings — virtual
// nodes of one member can then bunch into a thin arc and own almost no
// keyspace — so every ring position passes through a full avalanche.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// itoa avoids pulling strconv into the hot hash loop's call graph.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
