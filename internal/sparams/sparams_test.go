package sparams

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
	"roughsim/internal/txline"
	"roughsim/internal/units"
)

func testLine() txline.Microstrip {
	return txline.Microstrip{
		Width:    300e-6,
		Height:   170e-6,
		EpsR:     4.1,
		TanDelta: 0.018,
		Rho:      units.CopperResistivity,
	}
}

func testGrid() []float64 {
	var fs []float64
	for fG := 1.0; fG <= 9; fG++ {
		fs = append(fs, fG*units.GHz)
	}
	return fs
}

// risingK mimics a physical roughness profile: K rises from ~1 toward a
// saturation value.
func risingK(freqs []float64) []float64 {
	ks := make([]float64, len(freqs))
	for i, f := range freqs {
		ks[i] = 1 + 0.6*f/(f+4e9)
	}
	return ks
}

func fakeResolver(source string, maxRelErr float64) Resolver {
	return ResolverFunc(func(_ context.Context, freqs []float64) (Resolution, error) {
		return Resolution{K: risingK(freqs), Source: source, MaxRelErr: maxRelErr}, nil
	})
}

func testRequest() Request {
	return Request{
		Key:     "test-key",
		Line:    testLine(),
		LengthM: 0.05,
		Z0:      50,
		Freqs:   testGrid(),
	}
}

func TestGenerateHappyPath(t *testing.T) {
	m := telemetry.NewRegistry()
	art, err := Generate(context.Background(), testRequest(), fakeResolver("surrogate", 0.003), m)
	if err != nil {
		t.Fatal(err)
	}
	if art.Key != "test-key" || art.Source != "surrogate" || art.KMaxRelErr != 0.003 {
		t.Fatalf("provenance wrong: %+v", art)
	}
	if art.Points != 9 || art.FMinHz != 1*units.GHz || art.FMaxHz != 9*units.GHz {
		t.Fatalf("band wrong: %+v", art)
	}
	if !art.Gates.PassivityOK || !art.Gates.CausalityOK {
		t.Fatalf("gates failed on a physical line: %s", art.Gates)
	}
	if art.Gates.WorstSMax <= 0 || art.Gates.WorstSMax > 1 {
		t.Fatalf("worst σ_max %g outside (0,1]", art.Gates.WorstSMax)
	}
	// The Touchstone body must be a complete .s2p: option line + 9 rows.
	if !strings.Contains(art.Touchstone, "# HZ S RI R 50") {
		t.Fatalf("missing option line:\n%.80s", art.Touchstone)
	}
	rows := 0
	for _, line := range strings.Split(strings.TrimSpace(art.Touchstone), "\n") {
		if !strings.HasPrefix(line, "!") && !strings.HasPrefix(line, "#") {
			rows++
		}
	}
	if rows != 9 {
		t.Fatalf("touchstone has %d data rows, want 9", rows)
	}
	snap := counters(m)
	if snap["sparams.generated"] != 1 {
		t.Fatalf("sparams.generated = %d", snap["sparams.generated"])
	}
	if snap[`sparams.resolve{source="surrogate"}`] != 1 {
		t.Fatalf("resolve counter missing: %v", snap)
	}
}

func counters(m *telemetry.Registry) map[string]int64 {
	return m.Snapshot().Counters
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(context.Background(), testRequest(), fakeResolver("exact", 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(context.Background(), testRequest(), fakeResolver("exact", 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Touchstone != b.Touchstone {
		t.Fatal("identical requests produced different Touchstone bytes")
	}
}

func TestGenerateResolverErrors(t *testing.T) {
	req := testRequest()
	// Length mismatch is a numerical-contract violation.
	short := ResolverFunc(func(_ context.Context, freqs []float64) (Resolution, error) {
		return Resolution{K: []float64{1.1, 1.2}, Source: "exact"}, nil
	})
	_, err := Generate(context.Background(), req, short, nil)
	if err == nil || resilience.Classify(err) != resilience.KindNumerical {
		t.Fatalf("length mismatch: got %v", err)
	}
	// A NaN in the resolved profile must fail in the correction phase.
	poisoned := ResolverFunc(func(_ context.Context, freqs []float64) (Resolution, error) {
		ks := risingK(freqs)
		ks[3] = math.NaN()
		return Resolution{K: ks, Source: "exact"}, nil
	})
	if _, err := Generate(context.Background(), req, poisoned, nil); err == nil {
		t.Fatal("NaN K accepted")
	}
	// Nil resolver is an input error.
	if _, err := Generate(context.Background(), req, nil, nil); err == nil {
		t.Fatal("nil resolver accepted")
	}
}

func TestRequestValidate(t *testing.T) {
	mut := func(f func(*Request)) Request {
		r := testRequest()
		f(&r)
		return r
	}
	cases := []struct {
		name string
		req  Request
		want string // substring of the error
	}{
		{"zero-length", mut(func(r *Request) { r.LengthM = 0 }), "length_m"},
		{"nan-length", mut(func(r *Request) { r.LengthM = math.NaN() }), "length_m"},
		{"bad-z0", mut(func(r *Request) { r.Z0 = -50 }), "z0"},
		{"short-grid", mut(func(r *Request) { r.Freqs = []float64{1e9, 2e9, 3e9} }), "4 points"},
		{"dup-freq", mut(func(r *Request) { r.Freqs = []float64{1e9, 2e9, 2e9, 3e9} }), "strictly increasing"},
		{"nan-freq", mut(func(r *Request) { r.Freqs = []float64{1e9, math.NaN(), 3e9, 4e9} }), "freqs[1]"},
		{"neg-tol", mut(func(r *Request) { r.PassivityTol = -1 }), "passivity_tol"},
		{"bad-line", mut(func(r *Request) { r.Line.Width = 0 }), "width"},
		// 2 m line sampled every 4 GHz: > 13 cycles between samples —
		// group delay would alias.
		{"aliased-grid", mut(func(r *Request) {
			r.LengthM = 2
			r.Freqs = []float64{1e9, 5e9, 9e9, 13e9}
		}), "too coarse"},
	}
	for _, tc := range cases {
		err := tc.req.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if resilience.Classify(err) != resilience.KindInvalidInput {
			t.Fatalf("%s: classified %v", tc.name, resilience.Classify(err))
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
	if err := testRequest().Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

// syntheticSweep builds a sweep with the phase of a nominal-delay line
// but caller-controlled magnitudes.
func syntheticSweep(freqs []float64, mag func(f float64) float64, delay float64) []txline.SParams {
	out := make([]txline.SParams, len(freqs))
	for i, f := range freqs {
		ph := -2 * math.Pi * f * delay
		out[i] = txline.SParams{
			F:   f,
			S21: complex(mag(f)*math.Cos(ph), mag(f)*math.Sin(ph)),
		}
	}
	return out
}

func TestPassivityGateViolations(t *testing.T) {
	m := telemetry.NewRegistry()
	req := testRequest()
	// |S21| > 1 at two samples: an active network must be rejected with
	// every offending frequency in the report.
	mag := func(f float64) float64 {
		if f == 3*units.GHz || f == 7*units.GHz {
			return 1.02
		}
		return 0.9
	}
	sweep := syntheticSweep(req.Freqs, mag, 1e-12)
	_, err := runGates(sweep, req, m)
	if err == nil {
		t.Fatal("active network passed the passivity gate")
	}
	var ge *GateError
	if !errors.As(err, &ge) {
		t.Fatalf("not a GateError: %T %v", err, err)
	}
	if ge.Gate != "passivity" {
		t.Fatalf("gate %q, want passivity", ge.Gate)
	}
	if resilience.Classify(err) != resilience.KindNumerical {
		t.Fatalf("classified %v, want numerical", resilience.Classify(err))
	}
	if len(ge.Report.PassivityViolations) != 2 {
		t.Fatalf("violations: %+v", ge.Report.PassivityViolations)
	}
	if ge.Report.PassivityViolations[0].FreqHz != 3*units.GHz ||
		ge.Report.PassivityViolations[1].FreqHz != 7*units.GHz {
		t.Fatalf("violation freqs: %+v", ge.Report.PassivityViolations)
	}
	if !strings.Contains(err.Error(), "2 of 9") {
		t.Fatalf("error not descriptive: %v", err)
	}
	snap := counters(m)
	if snap[`sparams.gates{gate="passivity",outcome="fail"}`] != 1 {
		t.Fatalf("gate counter missing: %v", snap)
	}
}

func TestCausalityGateViolation(t *testing.T) {
	req := testRequest()
	// A negative delay (phase advancing with frequency) is anti-causal.
	sweep := syntheticSweep(req.Freqs, func(float64) float64 { return 0.9 }, -30e-12)
	_, err := runGates(sweep, req, nil2())
	var ge *GateError
	if err == nil || !errors.As(err, &ge) || ge.Gate != "causality" {
		t.Fatalf("anti-causal sweep: got %v", err)
	}
	if ge.Report.MinGroupDelayS >= 0 {
		t.Fatalf("report delay %g, want negative", ge.Report.MinGroupDelayS)
	}
	// The report still carries the (passing) passivity evidence.
	if !ge.Report.PassivityOK {
		t.Fatal("passivity evidence lost")
	}
}

func TestFiniteGate(t *testing.T) {
	req := testRequest()
	sweep := syntheticSweep(req.Freqs, func(float64) float64 { return 0.9 }, 1e-12)
	sweep[4].S21 = complex(math.NaN(), 0)
	_, err := runGates(sweep, req, nil2())
	var ge *GateError
	if err == nil || !errors.As(err, &ge) || ge.Gate != "finite" {
		t.Fatalf("NaN sweep: got %v", err)
	}
}

func nil2() *telemetry.Registry { return telemetry.NewRegistry() }
