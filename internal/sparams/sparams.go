// Package sparams is the S-parameter artifact subsystem of roughsimd:
// it turns a geometry + band request and a resolved roughness profile
// K(f) into a validated two-port Touchstone artifact — the
// designer-consumable endpoint of the whole pipeline.
//
// The generation pipeline has four phases, each under its own trace
// span and metrics:
//
//	resolve   K(f) on the request grid (surrogate fast path or the
//	          exact sweep chain — the Resolver abstracts which)
//	correct   build the causal complex correction K_c(f) = K + jX via
//	          the Kramers–Kronig transform (txline.CausalRoughness)
//	cascade   per-frequency RLGC → ABCD → S over the user band
//	validate  hard gates: passivity (singular values of S ≤ 1 at every
//	          sample) and causality (positive unwrapped group delay),
//	          each with a typed violation report
//
// Only an artifact that passes every gate is returned; gate failures
// come back as *GateError wrapped in the resilience taxonomy, carrying
// the full per-frequency violation list.
package sparams

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
	"roughsim/internal/txline"
)

// Request is one S-parameter generation: the line geometry, the length,
// the reference impedance and the frequency grid. Key is the artifact's
// content address (assigned by the caller; echoed into the artifact).
type Request struct {
	Key     string
	Line    txline.Microstrip
	LengthM float64
	Z0      float64
	// Freqs is the evaluation grid, strictly increasing, ≥ 4 points
	// (the causal correction needs a grid to transform over).
	Freqs []float64
	// PassivityTol is the slack over the unit singular-value bound
	// (default defaultPassivityTol when 0).
	PassivityTol float64
}

// defaultPassivityTol absorbs float roundoff in the |S| bound; a real
// passivity violation of a lossy line model is orders of magnitude
// larger.
const defaultPassivityTol = 1e-9

// Validate checks the request, naming the offending field in a typed
// invalid-input error.
func (r Request) Validate() error {
	const op = "sparams.Request"
	if err := r.Line.Validate(); err != nil {
		return err
	}
	if !(r.LengthM > 0) || math.IsInf(r.LengthM, 0) {
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"length_m must be positive and finite (got %g)", r.LengthM)
	}
	if !(r.Z0 > 0) || math.IsInf(r.Z0, 0) {
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"z0 must be positive and finite (got %g)", r.Z0)
	}
	if len(r.Freqs) < 4 {
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"frequency grid needs ≥ 4 points (got %d)", len(r.Freqs))
	}
	prev := 0.0
	for i, f := range r.Freqs {
		if !(f > 0) || math.IsInf(f, 0) {
			return resilience.Errorf(resilience.KindInvalidInput, op,
				"freqs[%d] must be positive and finite (got %g Hz)", i, f)
		}
		if f <= prev {
			return resilience.Errorf(resilience.KindInvalidInput, op,
				"freqs must be strictly increasing (freqs[%d]=%g Hz after %g Hz)", i, f, prev)
		}
		prev = f
	}
	if !(r.PassivityTol >= 0) || math.IsInf(r.PassivityTol, 0) {
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"passivity_tol must be ≥ 0 and finite (got %g)", r.PassivityTol)
	}
	// The group-delay causality gate unwraps phase between consecutive
	// samples; an aliased grid (phase step ≥ π) would make the unwrap —
	// and therefore the gate verdict — ambiguous, so it is rejected
	// up front as a request problem, not a gate failure.
	delay := r.LengthM * math.Sqrt(r.Line.EffectivePermittivity()) / 299792458.0
	for i := 1; i < len(r.Freqs); i++ {
		if step := delay * (r.Freqs[i] - r.Freqs[i-1]); step > 0.45 {
			return resilience.Errorf(resilience.KindInvalidInput, op,
				"freqs grid too coarse for a %g m line: phase step %.2f cycles between %g and %g Hz (need < 0.45; add points or shorten the band)",
				r.LengthM, step, r.Freqs[i-1], r.Freqs[i])
		}
	}
	return nil
}

// passivityTol returns the effective gate slack.
func (r Request) passivityTol() float64 {
	if r.PassivityTol > 0 {
		return r.PassivityTol
	}
	return defaultPassivityTol
}

// Resolution is a resolved roughness profile: K at each request
// frequency plus its provenance.
type Resolution struct {
	// K matches the request grid 1:1.
	K []float64
	// Source is "surrogate" (admitted closed-form model) or "exact"
	// (the sweep solve chain).
	Source string
	// MaxRelErr is the surrogate's validation-time max relative error
	// (0 for exact resolution); it propagates into the artifact so a
	// consumer knows the K tolerance under the gates.
	MaxRelErr float64
}

// Resolver produces K(f) on a frequency grid. The server implementation
// tries the surrogate registry first and falls back to the exact sweep
// chain; the library implementation runs the exact chain directly.
type Resolver interface {
	ResolveK(ctx context.Context, freqs []float64) (Resolution, error)
}

// ResolverFunc adapts a function to Resolver.
type ResolverFunc func(ctx context.Context, freqs []float64) (Resolution, error)

// ResolveK calls f.
func (f ResolverFunc) ResolveK(ctx context.Context, freqs []float64) (Resolution, error) {
	return f(ctx, freqs)
}

// Artifact is the validated outcome: the Touchstone text plus the
// provenance and gate report a consumer needs to trust it. It is what
// the content-addressed artifact store persists and GET /v1/sparams
// serves.
type Artifact struct {
	Key    string  `json:"key"`
	Z0     float64 `json:"z0"`
	FMinHz float64 `json:"fmin_hz"`
	FMaxHz float64 `json:"fmax_hz"`
	Points int     `json:"points"`
	// Source and KMaxRelErr carry the resolution provenance (see
	// Resolution).
	Source     string     `json:"source"`
	KMaxRelErr float64    `json:"k_max_rel_err,omitempty"`
	Gates      GateReport `json:"gates"`
	// Touchstone is the complete .s2p file body (Touchstone 1.x, # HZ S
	// RI R z0).
	Touchstone string `json:"touchstone"`
	// Config echoes the originating request (the facade's SParamConfig
	// JSON), so an artifact is self-describing; raw so it survives
	// store round trips verbatim.
	Config json.RawMessage `json:"config,omitempty"`
}

// Generate runs the full pipeline for one request. m may be nil
// (library use); the server passes its registry so sparams.* series
// land in /metrics.
func Generate(ctx context.Context, req Request, res Resolver, m *telemetry.Registry) (*Artifact, error) {
	if m == nil {
		m = telemetry.NewRegistry()
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if res == nil {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "sparams.Generate", "nil resolver")
	}
	start := time.Now()

	// Phase 1: resolve K(f) on the request grid.
	rctx, span := trace.StartSpan(ctx, "sparams.resolve")
	kres, err := res.ResolveK(rctx, req.Freqs)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("sparams: resolve K: %w", err)
	}
	if len(kres.K) != len(req.Freqs) {
		return nil, resilience.Errorf(resilience.KindNumerical, "sparams.resolve",
			"resolver returned %d K values for %d frequencies", len(kres.K), len(req.Freqs))
	}
	m.CounterL("sparams.resolve", telemetry.L("source", kres.Source)).Inc()

	// Phase 2: causal correction K_c = K + jX (Kramers–Kronig). The
	// constructor rejects NaN/Inf/K<1 samples, so a poisoned resolution
	// fails here with a typed error instead of contaminating the cascade.
	_, span = trace.StartSpan(ctx, "sparams.correct")
	causal, err := txline.NewCausalRoughness(req.Freqs, kres.K)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("sparams: causal correction: %w", err)
	}

	// Phase 3: cascade RLGC → ABCD → S at every sample.
	_, span = trace.StartSpan(ctx, "sparams.cascade")
	sweep := make([]txline.SParams, len(req.Freqs))
	for i, f := range req.Freqs {
		if err := ctx.Err(); err != nil {
			span.End()
			return nil, err
		}
		r, l, c, g, err := req.Line.RLGCCausal(f, causal.Factor(f))
		if err != nil {
			span.End()
			return nil, fmt.Errorf("sparams: cascade at %g Hz: %w", f, err)
		}
		abcd, err := txline.LineABCD(f, req.LengthM, r, l, c, g)
		if err != nil {
			span.End()
			return nil, fmt.Errorf("sparams: cascade at %g Hz: %w", f, err)
		}
		sweep[i] = txline.SParams{F: f, S11: abcd.S11(req.Z0), S21: abcd.S21(req.Z0)}
	}
	span.End()

	// Phase 4: hard validation gates.
	_, span = trace.StartSpan(ctx, "sparams.validate")
	report, err := runGates(sweep, req, m)
	span.End()
	if err != nil {
		return nil, err
	}

	var buf bytes.Buffer
	if err := txline.WriteTouchstone(&buf, req.Z0, sweep); err != nil {
		return nil, fmt.Errorf("sparams: write touchstone: %w", err)
	}
	m.Counter("sparams.generated").Inc()
	m.Histogram("sparams.generate_seconds").Observe(time.Since(start).Seconds())
	return &Artifact{
		Key:        req.Key,
		Z0:         req.Z0,
		FMinHz:     req.Freqs[0],
		FMaxHz:     req.Freqs[len(req.Freqs)-1],
		Points:     len(req.Freqs),
		Source:     kres.Source,
		KMaxRelErr: kres.MaxRelErr,
		Gates:      report,
		Touchstone: buf.String(),
	}, nil
}
