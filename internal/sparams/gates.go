package sparams

import (
	"fmt"
	"math"
	"math/cmplx"

	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
	"roughsim/internal/txline"
)

// GateReport is the validation evidence attached to every artifact: the
// worst-case margins of each gate, and — when a gate fails — the full
// per-frequency violation list.
type GateReport struct {
	// Passivity: at every sample the singular values of the reciprocal
	// symmetric 2-port, |S11±S21|, must stay ≤ 1+tol.
	PassivityTol        float64              `json:"passivity_tol"`
	WorstSMax           float64              `json:"worst_s_max"`
	WorstSMaxFreqHz     float64              `json:"worst_s_max_freq_hz"`
	PassivityOK         bool                 `json:"passivity_ok"`
	PassivityViolations []PassivityViolation `json:"passivity_violations,omitempty"`
	// Causality: the unwrapped-phase group delay of S21 must stay
	// positive (up to a small numerical floor) on every segment.
	MinGroupDelayS      float64 `json:"min_group_delay_s"`
	MinGroupDelayFreqHz float64 `json:"min_group_delay_freq_hz"`
	CausalityOK         bool    `json:"causality_ok"`
}

// PassivityViolation is one sample where the network would amplify.
type PassivityViolation struct {
	FreqHz float64 `json:"freq_hz"`
	SMax   float64 `json:"s_max"`
}

// GateError reports a failed validation gate with the complete report,
// so a caller can see every offending frequency, not just the first.
type GateError struct {
	// Gate is "passivity", "causality" or "finite".
	Gate   string
	Report GateReport
	err    error
}

func (e *GateError) Error() string { return e.err.Error() }

// Unwrap exposes the resilience classification (KindNumerical).
func (e *GateError) Unwrap() error { return e.err }

// gateFail builds the typed error for one failed gate.
func gateFail(gate string, report GateReport, format string, args ...any) *GateError {
	return &GateError{
		Gate:   gate,
		Report: report,
		err:    resilience.Errorf(resilience.KindNumerical, "sparams.gate."+gate, format, args...),
	}
}

// runGates runs every validation gate over the cascaded sweep and
// returns the evidence report. The sweep is already strictly increasing
// in frequency (the cascade preserves the validated request grid).
func runGates(sweep []txline.SParams, req Request, m *telemetry.Registry) (GateReport, error) {
	report := GateReport{PassivityTol: req.passivityTol()}

	// Gate 0: every S value must be finite — a NaN anywhere would make
	// the remaining gates vacuously "pass" comparisons.
	for _, s := range sweep {
		if isBadC(s.S11) || isBadC(s.S21) {
			m.CounterL("sparams.gates", telemetry.L("gate", "finite"), telemetry.L("outcome", "fail")).Inc()
			return report, gateFail("finite", report,
				"non-finite S-parameters at %g Hz (S11=%v, S21=%v)", s.F, s.S11, s.S21)
		}
	}
	m.CounterL("sparams.gates", telemetry.L("gate", "finite"), telemetry.L("outcome", "pass")).Inc()

	// Gate 1: passivity. The cascaded line is reciprocal (S12=S21) and
	// symmetric (S22=S11), so S = U·diag(S11+S21, S11−S21)·Uᵀ with
	// orthogonal U — the exact singular values are |S11±S21| and the
	// bound below is the true σ_max(S) ≤ 1 test, not an estimate.
	report.PassivityOK = true
	for _, s := range sweep {
		sMax := math.Max(cmplx.Abs(s.S11+s.S21), cmplx.Abs(s.S11-s.S21))
		if sMax > report.WorstSMax {
			report.WorstSMax = sMax
			report.WorstSMaxFreqHz = s.F
		}
		if sMax > 1+report.PassivityTol {
			report.PassivityOK = false
			report.PassivityViolations = append(report.PassivityViolations,
				PassivityViolation{FreqHz: s.F, SMax: sMax})
		}
	}
	m.Histogram("sparams.passivity_margin").Observe(1 - report.WorstSMax)
	if !report.PassivityOK {
		m.CounterL("sparams.gates", telemetry.L("gate", "passivity"), telemetry.L("outcome", "fail")).Inc()
		v0 := report.PassivityViolations[0]
		return report, gateFail("passivity", report,
			"passivity violated at %d of %d samples (first: σ_max=%.9g at %g Hz, bound 1+%g)",
			len(report.PassivityViolations), len(sweep), v0.SMax, v0.FreqHz, report.PassivityTol)
	}
	m.CounterL("sparams.gates", telemetry.L("gate", "passivity"), telemetry.L("outcome", "pass")).Inc()

	// Gate 2: causality. A causal passive line delays: the group delay
	// from the unwrapped S21 phase must stay positive on every segment.
	// A small negative floor (1% of the nominal TEM delay) absorbs
	// dispersion ripple near band edges without admitting a genuinely
	// anti-causal response.
	gd := txline.GroupDelay(sweep)
	nominal := req.LengthM * math.Sqrt(req.Line.EffectivePermittivity()) / 299792458.0
	floor := -0.01 * nominal
	report.CausalityOK = true
	report.MinGroupDelayS = math.Inf(1)
	for i, d := range gd {
		if d < report.MinGroupDelayS {
			report.MinGroupDelayS = d
			// Attribute the segment to its midpoint frequency.
			report.MinGroupDelayFreqHz = 0.5 * (sweep[i].F + sweep[i+1].F)
		}
		if d < floor {
			report.CausalityOK = false
		}
	}
	if !report.CausalityOK {
		m.CounterL("sparams.gates", telemetry.L("gate", "causality"), telemetry.L("outcome", "fail")).Inc()
		return report, gateFail("causality", report,
			"causality violated: group delay %.4g s near %g Hz (floor %.4g s, nominal TEM delay %.4g s)",
			report.MinGroupDelayS, report.MinGroupDelayFreqHz, floor, nominal)
	}
	m.CounterL("sparams.gates", telemetry.L("gate", "causality"), telemetry.L("outcome", "pass")).Inc()
	return report, nil
}

func isBadC(c complex128) bool {
	return cmplx.IsNaN(c) || cmplx.IsInf(c)
}

// String summarizes the report for logs.
func (r GateReport) String() string {
	return fmt.Sprintf("passivity ok=%t σ_max=%.6g@%gHz; causality ok=%t min_gd=%.4gs@%gHz",
		r.PassivityOK, r.WorstSMax, r.WorstSMaxFreqHz,
		r.CausalityOK, r.MinGroupDelayS, r.MinGroupDelayFreqHz)
}
