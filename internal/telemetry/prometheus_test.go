package telemetry

import (
	"flag"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a deterministic registry exercising every
// exposition feature: plain and labeled counters/gauges, custom-bucket
// histograms with the +Inf bucket, label escaping, and the
// dropped-sample counter fed by a NaN observation.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("cache.hits").Add(42)
	r.CounterL("solve.stage_win", L("stage", "gmres")).Add(7)
	r.CounterL("solve.stage_win", L("stage", "lu")).Inc()
	r.Gauge("queue.depth").Set(3)
	r.GaugeL("pool.size", L("tier", "we\"ird\\va\nlue")).Set(1.5)
	h := r.HistogramBuckets("queue.wait_seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.05, 5, math.NaN()} {
		h.Observe(v)
	}
	hl := r.HistogramL("sweep.stage_seconds", []float64{0.1, 1}, L("stage", "solve"))
	hl.Observe(0.5)
	hl.Observe(math.Inf(1))
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusParses walks the exposition line by line with the
// grammar every Prometheus scraper applies: comment lines are # TYPE
// or # HELP, sample lines are <name>[{labels}] <value> with balanced
// quotes, and histogram bucket counts are cumulative.
func TestPrometheusParses(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	assertPrometheusParses(t, b.String())
}

// assertPrometheusParses is shared with the server's e2e scrape test.
func assertPrometheusParses(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) < 4 || parts[1] != "TYPE" {
				t.Fatalf("line %d: bad comment %q", ln+1, line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		// <name>[{labels}] <value>
		rest := line
		name := rest
		if i := strings.IndexAny(rest, "{ "); i >= 0 {
			name = rest[:i]
		}
		if name == "" || !isPromName(name) {
			t.Fatalf("line %d: bad metric name in %q", ln+1, line)
		}
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			j := strings.LastIndexByte(rest, '}')
			if j < i {
				t.Fatalf("line %d: unbalanced braces %q", ln+1, line)
			}
			if unescapedQuotes(rest[i:j+1])%2 != 0 {
				t.Fatalf("line %d: unbalanced quotes %q", ln+1, line)
			}
			rest = rest[j+1:]
		} else {
			rest = rest[len(name):]
		}
		val := strings.TrimSpace(rest)
		if val == "" || strings.ContainsAny(val, " \t") {
			t.Fatalf("line %d: bad value %q", ln+1, line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if typed[name] == "" && typed[base] == "" {
			t.Fatalf("line %d: sample %q precedes its # TYPE", ln+1, name)
		}
	}
	if len(typed) == 0 {
		t.Fatal("no typed families in exposition")
	}
}

// unescapedQuotes counts quote characters that are not backslash
// escaped (the label-value escaping rule of the text format).
func unescapedQuotes(s string) int {
	n, esc := 0, false
	for _, r := range s {
		switch {
		case esc:
			esc = false
		case r == '\\':
			esc = true
		case r == '"':
			n++
		}
	}
	return n
}

func isPromName(s string) bool {
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return s != ""
}

// TestHandlerContentNegotiation: JSON stays the default; Prometheus
// text is served on ?format=prometheus and on scraper Accept headers.
func TestHandlerContentNegotiation(t *testing.T) {
	r := goldenRegistry()
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type = %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE cache_hits counter") {
		t.Fatalf("no exposition body: %s", rec.Body.String())
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scraper Accept served %q", ct)
	}
	assertPrometheusParses(t, rec.Body.String())
}
