package telemetry

// Hand-rolled Prometheus text exposition (format version 0.0.4) of the
// registry — no client_golang dependency. The mapping from the
// registry's dotted names:
//
//   - names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* (dots → "_");
//   - counters and gauges emit one sample per labeled series;
//   - histograms emit cumulative name_bucket{le="…"} samples (with the
//     mandatory le="+Inf"), name_sum and name_count, and — because this
//     registry rejects non-finite observations instead of poisoning the
//     sum — a name_dropped counter with the rejected-sample count;
//   - output is fully deterministic: families sort by output name,
//     series by their canonical label encoding (golden-testable).

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the whole registry in Prometheus text
// exposition format. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the entries under the read lock, then format outside it.
	r.mu.RLock()
	counters := make([]*counterEntry, 0, len(r.counters))
	for _, e := range r.counters {
		counters = append(counters, e)
	}
	gauges := make([]*gaugeEntry, 0, len(r.gauges))
	for _, e := range r.gauges {
		gauges = append(gauges, e)
	}
	histograms := make([]*histogramEntry, 0, len(r.histograms))
	for _, e := range r.histograms {
		histograms = append(histograms, e)
	}
	r.mu.RUnlock()

	var b strings.Builder
	writeFamilies(&b, "counter", counters, func(b *strings.Builder, e *counterEntry) {
		fmt.Fprintf(b, "%s%s %d\n", promName(e.name), promLabels(e.labels, "", 0), e.c.Value())
	})
	writeFamilies(&b, "gauge", gauges, func(b *strings.Builder, e *gaugeEntry) {
		fmt.Fprintf(b, "%s%s %s\n", promName(e.name), promLabels(e.labels, "", 0), promFloat(e.g.Value()))
	})
	writeHistograms(&b, histograms)
	_, err := io.WriteString(w, b.String())
	return err
}

// entryLike lets writeFamilies sort and group the three metric kinds
// with one implementation.
type entryLike interface {
	ident() series
}

func (s series) ident() series { return s }

// writeFamilies groups entries by metric name, emits one # TYPE line
// per family and one sample line per series, all deterministically
// sorted.
func writeFamilies[E entryLike](b *strings.Builder, typ string, entries []E, emit func(*strings.Builder, E)) {
	sort.Slice(entries, func(i, j int) bool {
		si, sj := entries[i].ident(), entries[j].ident()
		if si.name != sj.name {
			return si.name < sj.name
		}
		return seriesKey(si.name, si.labels) < seriesKey(sj.name, sj.labels)
	})
	last := ""
	for _, e := range entries {
		s := e.ident()
		if s.name != last {
			fmt.Fprintf(b, "# TYPE %s %s\n", promName(s.name), typ)
			last = s.name
		}
		emit(b, e)
	}
}

// writeHistograms emits the histogram families: cumulative buckets with
// the mandatory +Inf, _sum, _count, and a _dropped counter family for
// the non-finite observations the registry rejected.
func writeHistograms(b *strings.Builder, entries []*histogramEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return seriesKey(entries[i].name, entries[i].labels) < seriesKey(entries[j].name, entries[j].labels)
	})
	last := ""
	for _, e := range entries {
		name := promName(e.name)
		if e.name != last {
			fmt.Fprintf(b, "# TYPE %s histogram\n", name)
			last = e.name
		}
		h := e.h
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", name, promLabels(e.labels, "le", bound), cum)
		}
		count := h.Count()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, promLabelsInf(e.labels), count)
		fmt.Fprintf(b, "%s_sum%s %s\n", name, promLabels(e.labels, "", 0), promFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", name, promLabels(e.labels, "", 0), count)
	}
	// Dropped-sample counters ride in their own family per histogram
	// name, after all histogram families (they are a different type).
	last = ""
	for _, e := range entries {
		if e.name != last {
			fmt.Fprintf(b, "# TYPE %s_dropped counter\n", promName(e.name))
			last = e.name
		}
		fmt.Fprintf(b, "%s_dropped%s %d\n", promName(e.name), promLabels(e.labels, "", 0), e.h.Dropped())
	}
}

// promName sanitizes a dotted metric name into the Prometheus
// identifier alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promLabels renders the label set, optionally with a trailing le
// bucket label (leKey non-empty). Returns "" for an empty set.
func promLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(promFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promLabelsInf renders the label set with le="+Inf".
func promLabelsInf(labels []Label) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		b.WriteString(promName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`",`)
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

// promFloat formats a float the way the exposition format expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
