package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a.b").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	if v := r.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{0.0005, 0.003, 0.003, 10, 1e9} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-(0.0005+0.003+0.003+10+1e9)) > 1e-6 {
		t.Fatalf("sum = %g", h.Sum())
	}
	s := r.Snapshot().Histograms["lat"]
	// Cumulative counts must be monotone and end at ≤ Count (the 1e9
	// observation lands in the implicit +Inf bucket).
	prev := int64(0)
	for _, b := range s.Buckets {
		if b.Count < prev {
			t.Fatalf("bucket counts not cumulative: %+v", s.Buckets)
		}
		prev = b.Count
	}
	if prev != 4 {
		t.Fatalf("finite-bucket cumulative = %d, want 4", prev)
	}
}

func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
	if v := r.Gauge("g").Value(); v != 8000 {
		t.Fatalf("gauge = %g, want 8000", v)
	}
	if v := r.Histogram("h").Count(); v != 8000 {
		t.Fatalf("histogram count = %d, want 8000", v)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.hits").Add(3)
	r.Gauge("queue.depth").Set(2)
	r.Histogram("solve.seconds").Observe(0.25)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if s.Counters["cache.hits"] != 3 || s.Gauges["queue.depth"] != 2 {
		t.Fatalf("snapshot round-trip: %+v", s)
	}
	if s.Histograms["solve.seconds"].Count != 1 {
		t.Fatalf("histogram round-trip: %+v", s.Histograms)
	}
}
