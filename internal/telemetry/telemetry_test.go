package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a.b").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	if v := r.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{0.0005, 0.003, 0.003, 10, 1e9} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-(0.0005+0.003+0.003+10+1e9)) > 1e-6 {
		t.Fatalf("sum = %g", h.Sum())
	}
	s := r.Snapshot().Histograms["lat"]
	// Cumulative counts must be monotone and end at ≤ Count (the 1e9
	// observation lands in the implicit +Inf bucket).
	prev := int64(0)
	for _, b := range s.Buckets {
		if b.Count < prev {
			t.Fatalf("bucket counts not cumulative: %+v", s.Buckets)
		}
		prev = b.Count
	}
	if prev != 4 {
		t.Fatalf("finite-bucket cumulative = %d, want 4", prev)
	}
}

func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
	if v := r.Gauge("g").Value(); v != 8000 {
		t.Fatalf("gauge = %g, want 8000", v)
	}
	if v := r.Histogram("h").Count(); v != 8000 {
		t.Fatalf("histogram count = %d, want 8000", v)
	}
}

// TestHistogramRejectsNonFinite is the regression test for the
// sum-poisoning bug: a NaN (or ±Inf) observation must not corrupt
// Sum(), must not count as an observation, and must leave the JSON
// exposition of /metrics serviceable. Rejected samples are accounted
// in Dropped.
func TestHistogramRejectsNonFinite(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(1.5)
	if got := h.Sum(); got != 2.0 {
		t.Fatalf("sum poisoned: %g, want 2", got)
	}
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2 (non-finite must not count)", got)
	}
	if got := h.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	// The exposition endpoint must keep working: encoding/json rejects
	// NaN, so a poisoned sum would 500 the /metrics handler.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d after NaN observation: %s", rec.Code, rec.Body.String())
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("snapshot unmarshal: %v", err)
	}
	if s.Histograms["lat"].Dropped != 3 {
		t.Fatalf("snapshot dropped = %d, want 3", s.Histograms["lat"].Dropped)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	r.CounterL("wins", L("stage", "gmres")).Add(3)
	r.CounterL("wins", L("stage", "lu")).Add(1)
	// Label order must not matter: the series key is canonical.
	a := r.CounterL("multi", L("b", "2"), L("a", "1"))
	b := r.CounterL("multi", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order created distinct series")
	}
	a.Inc()
	s := r.Snapshot()
	if s.Counters[`wins{stage="gmres"}`] != 3 || s.Counters[`wins{stage="lu"}`] != 1 {
		t.Fatalf("labeled snapshot keys: %+v", s.Counters)
	}
	if s.Counters[`multi{a="1",b="2"}`] != 1 {
		t.Fatalf("canonical multi-label key missing: %+v", s.Counters)
	}
	// Nil registry stays a no-op for the labeled API too.
	var nr *Registry
	nr.CounterL("x", L("k", "v")).Inc()
	nr.HistogramL("y", nil, L("k", "v")).Observe(1)
}

func TestCustomBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("wait", []float64{0.01, 0.1, 1})
	h.Observe(0.05)
	h.Observe(20)
	s := r.Snapshot().Histograms["wait"]
	if len(s.Buckets) != 3 {
		t.Fatalf("buckets = %d, want 3", len(s.Buckets))
	}
	if s.Buckets[0].Count != 0 || s.Buckets[1].Count != 1 || s.Buckets[2].Count != 1 {
		t.Fatalf("cumulative custom buckets wrong: %+v", s.Buckets)
	}
	if s.Count != 2 {
		t.Fatalf("count = %d (the 20 lands only in +Inf)", s.Count)
	}
	// First creation wins: a later call with different bounds returns
	// the same histogram.
	if r.HistogramBuckets("wait", []float64{5}) != h {
		t.Fatal("re-registration changed the histogram")
	}
	if got := ExpBuckets(1e-4, 4, 3); len(got) != 3 || got[2] != 1.6e-3 {
		t.Fatalf("ExpBuckets: %v", got)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.hits").Add(3)
	r.Gauge("queue.depth").Set(2)
	r.Histogram("solve.seconds").Observe(0.25)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if s.Counters["cache.hits"] != 3 || s.Gauges["queue.depth"] != 2 {
		t.Fatalf("snapshot round-trip: %+v", s)
	}
	if s.Histograms["solve.seconds"].Count != 1 {
		t.Fatalf("histogram round-trip: %+v", s.Histograms)
	}
}
