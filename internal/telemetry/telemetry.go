// Package telemetry is the observability layer of the service tier: a
// small metrics registry (counters, gauges, histograms) shared by the
// solver core, the stochastic drivers, the result cache and the job
// queue, with an expvar-style JSON snapshot served at /metrics.
//
// The design constraints, in order:
//
//  1. Hot-path cost. Counters and histogram observations sit inside the
//     per-sample solver loop, so every mutation is a single atomic op —
//     no locks, no allocation after metric creation.
//  2. Optionality. Every producer takes a *Registry that may be nil
//     (library use without a service around it); all methods are
//     nil-receiver safe no-ops, so call sites never branch.
//  3. One place. The registry is handed down from roughsimd through the
//     facade into core/sscm/montecarlo, so cache hit rate, queue depth,
//     solve latency and fallback-stage counts are observable together.
//
// Metric names are flat dotted strings ("cache.hits", "solve.seconds");
// the full catalogue is documented in DESIGN.md §8.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued metric that can move both ways (queue depth,
// in-flight jobs). The value is stored as IEEE-754 bits in an atomic
// word; Add uses a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add offsets the gauge by dv (no-op on a nil receiver).
func (g *Gauge) Add(dv float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + dv)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed cumulative buckets
// (Prometheus-style "le" semantics) plus a running count and sum.
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float bits, CAS-updated
}

// DefBuckets are the default latency buckets in seconds: 1 ms … ~524 s
// in powers of two, wide enough for both a single Clenshaw-table solve
// and a full high-resolution sweep.
var DefBuckets = func() []float64 {
	b := make([]float64, 20)
	v := 1e-3
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Observe records one sample (no-op on a nil receiver).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose bound is ≥ v; sort.SearchFloat64s is fine here
	// (≤ ~20 bounds, branch-predictable), and the slice is immutable.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is a valid no-op
// sink: Counter/Gauge/Histogram return nil metrics whose methods do
// nothing.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating on first use) the named histogram with
// DefBuckets bounds.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = &Histogram{bounds: DefBuckets, counts: make([]atomic.Int64, len(DefBuckets))}
	r.histograms[name] = h
	return h
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Buckets []struct {
		LE    float64 `json:"le"`
		Count int64   `json:"count"`
	} `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every metric. Nil registries
// snapshot as empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			hs.Buckets = append(hs.Buckets, struct {
				LE    float64 `json:"le"`
				Count int64   `json:"count"`
			}{b, cum})
		}
		s.Histograms[name] = hs
	}
	return s
}

// Handler serves the registry snapshot as indented JSON — the /metrics
// endpoint of roughsimd.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Snapshot()); err != nil {
			http.Error(w, fmt.Sprintf("telemetry: %v", err), http.StatusInternalServerError)
		}
	})
}
