// Package telemetry is the observability layer of the service tier: a
// small metrics registry (counters, gauges, histograms — optionally
// labeled) shared by the solver core, the stochastic drivers, the
// result cache and the job queue, with an expvar-style JSON snapshot
// and a Prometheus text exposition served at /metrics.
//
// The design constraints, in order:
//
//  1. Hot-path cost. Counters and histogram observations sit inside the
//     per-sample solver loop, so every mutation is a single atomic op —
//     no locks, no allocation after metric creation.
//  2. Optionality. Every producer takes a *Registry that may be nil
//     (library use without a service around it); all methods are
//     nil-receiver safe no-ops, so call sites never branch.
//  3. One place. The registry is handed down from roughsimd through the
//     facade into core/sscm/montecarlo, so cache hit rate, queue depth,
//     solve latency and fallback-stage counts are observable together.
//
// Metric names are flat dotted strings ("cache.hits", "solve.seconds");
// labeled series append a canonical {k="v"} suffix. The full catalogue
// is documented in DESIGN.md §8 and §10.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued metric that can move both ways (queue depth,
// in-flight jobs). The value is stored as IEEE-754 bits in an atomic
// word; Add uses a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add offsets the gauge by dv (no-op on a nil receiver).
func (g *Gauge) Add(dv float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + dv)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed cumulative buckets
// (Prometheus-style "le" semantics) plus a running count and sum.
// Non-finite observations are rejected into a dropped-sample counter:
// a single NaN folded into the CAS sum loop would poison Sum() forever
// and break the JSON exposition (encoding/json rejects NaN).
type Histogram struct {
	bounds  []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float bits, CAS-updated
	dropped atomic.Int64  // non-finite observations rejected
}

// DefBuckets are the default latency buckets in seconds: 1 ms … ~524 s
// in powers of two, wide enough for both a single Clenshaw-table solve
// and a full high-resolution sweep.
var DefBuckets = ExpBuckets(1e-3, 2, 20)

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor — the shape latency distributions want.
// Invalid arguments yield nil, which every histogram constructor treats
// as "use DefBuckets".
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Observe records one sample (no-op on a nil receiver). NaN and ±Inf
// samples are counted in Dropped instead of being folded in.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.dropped.Add(1)
		return
	}
	// First bucket whose bound is ≥ v; sort.SearchFloat64s is fine here
	// (≤ ~20 bounds, branch-predictable), and the slice is immutable.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of (finite) observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Dropped returns how many non-finite observations were rejected.
func (h *Histogram) Dropped() int64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// Label is one key/value dimension of a labeled metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey canonically encodes a metric name plus labels: the plain
// name when unlabeled (so existing JSON snapshot keys are unchanged),
// otherwise name{k="v",…} with keys sorted. The encoded form is both
// the registry map key and the JSON snapshot key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// series carries the decoded identity of one registered metric, kept
// alongside the metric so the Prometheus writer never re-parses keys.
type series struct {
	name   string
	labels []Label // canonically sorted
}

type counterEntry struct {
	series
	c *Counter
}
type gaugeEntry struct {
	series
	g *Gauge
}
type histogramEntry struct {
	series
	h *Histogram
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is a valid no-op
// sink: Counter/Gauge/Histogram return nil metrics whose methods do
// nothing.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*counterEntry
	gauges     map[string]*gaugeEntry
	histograms map[string]*histogramEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*counterEntry{},
		gauges:     map[string]*gaugeEntry{},
		histograms: map[string]*histogramEntry{},
	}
}

// sortedLabels returns a canonically sorted copy.
func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter { return r.CounterL(name) }

// CounterL returns (creating on first use) the labeled counter series.
func (r *Registry) CounterL(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.RLock()
	e, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return e.c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.counters[key]; ok {
		return e.c
	}
	e = &counterEntry{series: series{name: name, labels: sortedLabels(labels)}, c: &Counter{}}
	r.counters[key] = e
	return e.c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return r.GaugeL(name) }

// GaugeL returns (creating on first use) the labeled gauge series.
func (r *Registry) GaugeL(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.RLock()
	e, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return e.g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.gauges[key]; ok {
		return e.g
	}
	e = &gaugeEntry{series: series{name: name, labels: sortedLabels(labels)}, g: &Gauge{}}
	r.gauges[key] = e
	return e.g
}

// Histogram returns (creating on first use) the named histogram with
// DefBuckets bounds.
func (r *Registry) Histogram(name string) *Histogram { return r.HistogramL(name, nil) }

// HistogramBuckets returns (creating on first use) the named histogram
// with custom bucket bounds (sorted ascending; nil selects DefBuckets).
// Bounds are fixed at creation: later calls with different bounds
// return the existing histogram.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	return r.HistogramL(name, bounds)
}

// HistogramL returns (creating on first use) the labeled histogram
// series with the given bucket bounds (nil selects DefBuckets).
func (r *Registry) HistogramL(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.RLock()
	e, ok := r.histograms[key]
	r.mu.RUnlock()
	if ok {
		return e.h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.histograms[key]; ok {
		return e.h
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	} else {
		bounds = append([]float64(nil), bounds...)
		sort.Float64s(bounds)
	}
	e = &histogramEntry{
		series: series{name: name, labels: sortedLabels(labels)},
		h:      &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))},
	}
	r.histograms[key] = e
	return e.h
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Dropped int64   `json:"dropped,omitempty"`
	Buckets []struct {
		LE    float64 `json:"le"`
		Count int64   `json:"count"`
	} `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric, shaped for JSON.
// Labeled series appear under their canonical name{k="v"} key.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every metric. Nil registries
// snapshot as empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for key, e := range r.counters {
		s.Counters[key] = e.c.Value()
	}
	for key, e := range r.gauges {
		s.Gauges[key] = e.g.Value()
	}
	for key, e := range r.histograms {
		h := e.h
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Dropped: h.Dropped()}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			hs.Buckets = append(hs.Buckets, struct {
				LE    float64 `json:"le"`
				Count int64   `json:"count"`
			}{b, cum})
		}
		s.Histograms[key] = hs
	}
	return s
}

// Handler serves the registry as the /metrics endpoint of roughsimd:
// an indented JSON snapshot by default, or Prometheus text exposition
// when the request asks for it (?format=prometheus, or an Accept
// header naming text/plain or openmetrics — what Prometheus scrapers
// send).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantsPrometheus(req) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := r.WritePrometheus(w); err != nil {
				http.Error(w, fmt.Sprintf("telemetry: %v", err), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Snapshot()); err != nil {
			http.Error(w, fmt.Sprintf("telemetry: %v", err), http.StatusInternalServerError)
		}
	})
}

// wantsPrometheus decides the exposition format of one request. An
// explicit ?format= wins; otherwise the Accept header decides (JSON
// stays the default for bare curl / existing clients).
func wantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}
