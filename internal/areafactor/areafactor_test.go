package areafactor

import (
	"math"
	"testing"

	"roughsim/internal/rng"
	"roughsim/internal/surface"
)

const um = 1e-6

func TestFlatLimit(t *testing.T) {
	if k := Gaussian(0, 1*um); k != 1 {
		t.Fatalf("K(σ=0) = %g", k)
	}
	// σ ≪ η: K → 1.
	if k := Gaussian(0.001*um, 1*um); math.Abs(k-1) > 1e-5 {
		t.Fatalf("smooth limit K = %g", k)
	}
}

func TestSmallSlopeExpansion(t *testing.T) {
	// For small σ/η the exact integral matches 1 + 2(σ/η)² up to the
	// next term, −E[|∇f|⁴]/8 = −4(σ/η)⁴.
	for _, r := range []float64{0.02, 0.05, 0.1} {
		exact := Gaussian(r*um, 1*um)
		approx := SmallSlope(r*um, 1*um)
		if math.Abs(exact-approx) > 6*math.Pow(r, 4)+1e-12 {
			t.Errorf("σ/η=%g: exact %g vs expansion %g", r, exact, approx)
		}
	}
}

func TestMonotoneInRoughness(t *testing.T) {
	prev := 1.0
	for _, r := range []float64{0.1, 0.3, 0.5, 1, 2} {
		k := Gaussian(r*um, 1*um)
		if k <= prev {
			t.Fatalf("K not increasing with σ/η: %g after %g", k, prev)
		}
		prev = k
	}
}

func TestSampledAreaMatchesAnalytic(t *testing.T) {
	// Monte-Carlo area ratio of synthesized surfaces vs the closed
	// integral. The grid band-limits slopes, so sampled slightly low.
	sigma := 0.4 * um
	eta := 1.0 * um
	kl := surface.NewKL(surface.NewGaussianCorr(sigma, eta), 6*um, 32)
	src := rng.New(404)
	var sum float64
	const nSamp = 120
	for i := 0; i < nSamp; i++ {
		sum += OfSurface(kl.Sample(src))
	}
	got := sum / nSamp
	want := Gaussian(sigma, eta)
	if math.Abs(got-want)/(want-1) > 0.15 {
		t.Fatalf("sampled area ratio %g vs analytic %g", got, want)
	}
}

func TestFlatSurfaceAreaIsOne(t *testing.T) {
	if k := OfSurface(surface.NewFlat(5*um, 8)); k != 1 {
		t.Fatalf("flat area ratio %g", k)
	}
}

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for η ≤ 0")
		}
	}()
	Gaussian(1*um, 0)
}
