// Package areafactor implements the geometric-optics (Kirchhoff /
// tangent-plane) limit of roughness loss: when the skin depth is far
// smaller than every curvature radius of the surface, each surface
// element dissipates like tilted flat metal and the loss enhancement is
// simply the true-area ratio
//
//	K_area = E[ sqrt(1 + |∇f|²) ] ≥ 1.
//
// This is the high-frequency asymptote every roughness model must
// approach from below (the "surface area" or Ampère model of the SI
// literature) and a useful upper-bound companion to SPM2 (low-frequency
// side) and HBM in the validity comparisons of the paper.
package areafactor

import (
	"math"

	"roughsim/internal/quadrature"
	"roughsim/internal/surface"
)

// Gaussian returns K_area for an isotropic Gaussian process with RMS
// height sigma and correlation length eta.
//
// The slope components are iid N(0, s²) with s² = 2σ²/η², so
// g = |∇f|² / s² is chi-squared with 2 degrees of freedom (Exp(1/2)…
// i.e. g ~ Exp(mean 2)) and
//
//	K = E[sqrt(1 + s²·g)] = ∫₀^∞ sqrt(1 + 2s²·t)·e^{−t} dt,
//
// evaluated by Gauss–Legendre panels (a closed form exists via erfc but
// the quadrature is exact to machine precision here and keeps the code
// transparent).
func Gaussian(sigma, eta float64) float64 {
	if sigma < 0 || eta <= 0 {
		panic("areafactor: need σ ≥ 0, η > 0")
	}
	if sigma == 0 {
		return 1
	}
	s2 := 2 * sigma * sigma / (eta * eta)
	// ∫₀^∞ sqrt(1+2s²t)·e^{−t} dt over panels to t = 40.
	var sum float64
	const panels = 40
	for i := 0; i < panels; i++ {
		r := quadrature.GaussLegendreOn(10, float64(i), float64(i+1))
		sum += r.Integrate(func(t float64) float64 {
			return math.Sqrt(1+2*s2*t) * math.Exp(-t)
		})
	}
	return sum
}

// OfSurface returns the sampled true-area ratio of one realization:
// (1/N)·Σ sqrt(1 + fx² + fy²).
func OfSurface(s *surface.Surface) float64 {
	fx, fy := s.Gradients()
	var sum float64
	for i := range fx {
		sum += math.Sqrt(1 + fx[i]*fx[i] + fy[i]*fy[i])
	}
	return sum / float64(len(fx))
}

// SmallSlope returns the second-order expansion K ≈ 1 + E[|∇f|²]/2 for
// an isotropic Gaussian process: with E[f_x²] = E[f_y²] = 2σ²/η² this is
// 1 + 2·(σ/η)². Useful as a cross-check and for quick estimates.
func SmallSlope(sigma, eta float64) float64 {
	r := sigma / eta
	return 1 + 2*r*r
}
