package specfun

import (
	"fmt"
	"math"
)

// EulerGamma is the Euler–Mascheroni constant.
const EulerGamma = 0.5772156649015328606

// E1 returns the exponential integral E₁(x) = ∫₁^∞ e^(−xt)/t dt for x > 0.
//
// For x ≤ 1 it uses the alternating power series
// E₁(x) = −γ − ln x + Σ_{k≥1} (−1)^{k+1} x^k/(k·k!); for larger x the
// modified Lentz continued fraction. Accuracy is near machine precision
// over the whole positive axis.
func E1(x float64) float64 {
	if x <= 0 {
		panic("specfun: E1 requires x > 0")
	}
	if x <= 1 {
		sum := -EulerGamma - math.Log(x)
		term := 1.0
		for k := 1; k <= 60; k++ {
			term *= -x / float64(k)
			add := -term / float64(k)
			sum += add
			if math.Abs(add) < 1e-17*math.Abs(sum) {
				break
			}
		}
		return sum
	}
	// Continued fraction: E₁(x) = e^(−x)·(1/(x+1−1/(x+3−4/(x+5−…)))).
	const tiny = 1e-300
	b := x + 1
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 200; i++ {
		a := -float64(i) * float64(i)
		b += 2
		d = 1 / (a*d + b)
		c = b + a/c
		del := c * d
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return h * math.Exp(-x)
}

// En returns the generalized exponential integral
// Eₙ(x) = ∫₁^∞ e^(−xt)/tⁿ dt for n ≥ 0, x > 0 (x ≥ 0 allowed for n ≥ 2).
//
// E₀(x) = e^(−x)/x; higher orders follow from the upward recurrence
// Eₙ₊₁(x) = (e^(−x) − x·Eₙ(x))/n, which is numerically stable for the
// x ≲ n regime in which the Ewald spatial series uses it; for x ≫ 1 the
// continued fraction is used directly at each order.
func En(n int, x float64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("specfun: En order %d < 0", n))
	}
	if x < 0 {
		panic("specfun: En requires x ≥ 0")
	}
	if x == 0 {
		if n >= 2 {
			return 1 / float64(n-1)
		}
		panic("specfun: En(n≤1, 0) diverges")
	}
	switch n {
	case 0:
		return math.Exp(-x) / x
	case 1:
		return E1(x)
	}
	if x > 1.5 {
		// Continued fraction for general n (Numerical Recipes §6.3):
		// Eₙ(x) = e^(−x)·(1/(x+n−1·n/(x+n+2−2(n+1)/(x+n+4−…)))).
		const tiny = 1e-300
		b := x + float64(n)
		c := 1 / tiny
		d := 1 / b
		h := d
		for i := 1; i <= 300; i++ {
			a := -float64(i) * float64(n-1+i)
			b += 2
			d = 1 / (a*d + b)
			c = b + a/c
			del := c * d
			h *= del
			if math.Abs(del-1) < 1e-16 {
				break
			}
		}
		return h * math.Exp(-x)
	}
	// Upward recurrence from E₁.
	e := E1(x)
	em := math.Exp(-x)
	for k := 1; k < n; k++ {
		e = (em - x*e) / float64(k)
	}
	return e
}
