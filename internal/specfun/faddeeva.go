// Package specfun provides the special functions that the roughsim
// numerics need and the Go standard library lacks: the Faddeeva function
// w(z) and the complementary error function of complex argument (used by
// the Ewald representation of periodic Green's functions), exponential
// integrals Eₙ (used by the 1D-periodic Ewald split), and probabilists'
// Hermite polynomials (used by the polynomial-chaos machinery of SSCM).
package specfun

import (
	"math"
	"math/cmplx"
)

// weidemanN is the number of terms in the Weideman rational expansion of
// the Faddeeva function. 36 terms give ~1e-13 relative accuracy over the
// upper half-plane, which is far below the discretization error of any
// solver in this repository.
const weidemanN = 36

// weidemanL is the optimal conformal-map parameter L = sqrt(N/sqrt(2)).
var weidemanL = math.Sqrt(weidemanN / math.Sqrt2)

// weidemanA holds the polynomial coefficients of the expansion,
// a[0]·Z^(N-1) + … + a[N-1], computed once at package init by discrete
// Fourier analysis of f(t) = (L²+t²)·exp(−t²) on the mapped circle
// (J.A.C. Weideman, SIAM J. Numer. Anal. 31 (1994) 1497–1518).
var weidemanA = computeWeidemanCoeffs()

func computeWeidemanCoeffs() [weidemanN]float64 {
	const n = weidemanN
	const m = 2 * n
	const m2 = 2 * m
	l := weidemanL

	// Sample f at t = L·tan(θ/2), θ_k = kπ/M for k = −M+1 … M−1, plus a
	// zero sample at θ = π where t → ∞ (f → 0). Following the reference
	// implementation we place the samples in fftshift order and take a
	// plain DFT; only the real parts of the first N+1 output bins matter.
	var f [m2]float64
	for k := -m + 1; k <= m-1; k++ {
		theta := float64(k) * math.Pi / float64(m)
		t := l * math.Tan(theta/2)
		val := math.Exp(-t*t) * (l*l + t*t)
		// Pre-shift layout is [0, f(k=−M+1), …, f(k=M−1)], so sample k
		// sits at index k+M; fftshift then rotates index p to
		// (p+M) mod M2, landing sample k at (k+2M) mod 2M. The θ=π
		// zero sample lands at index M, which the zero-initialized
		// array already provides.
		idx := (k + m2) % m2
		f[idx] = val
	}

	// Plain O(M²) DFT: this runs once at init on 144 points.
	var a [weidemanN]float64
	for bin := 1; bin <= n; bin++ {
		var re float64
		for i := 0; i < m2; i++ {
			re += f[i] * math.Cos(2*math.Pi*float64(bin)*float64(i)/float64(m2))
		}
		a[n-bin] = re / float64(m2)
	}
	return a
}

// Faddeeva returns w(z) = exp(−z²)·erfc(−iz), the scaled complex error
// function, for any complex z.
//
// For Im z ≥ 0 it uses the Weideman rational expansion, which is
// uniformly accurate there. For Im z < 0 it applies the reflection
// w(z) = 2·exp(−z²) − w(−z); the exp(−z²) term grows like
// exp(Im(z)²−Re(z)²), so — as with every implementation of w — results
// overflow for arguments deep in the lower half-plane. Callers in this
// repository only evaluate moderate arguments there.
func Faddeeva(z complex128) complex128 {
	if imag(z) >= 0 {
		return faddeevaUpper(z)
	}
	return 2*cmplx.Exp(-z*z) - faddeevaUpper(-z)
}

func faddeevaUpper(z complex128) complex128 {
	l := complex(weidemanL, 0)
	iz := complex(-imag(z), real(z)) // i·z
	den := l - iz
	zz := (l + iz) / den
	// Horner evaluation of the degree N−1 polynomial in zz.
	p := complex(0, 0)
	for _, c := range weidemanA {
		p = p*zz + complex(c, 0)
	}
	return 2*p/(den*den) + complex(1/math.SqrtPi, 0)/den
}

// Erfc returns erfc(z) = exp(−z²)·w(iz) for complex z. For arguments with
// large |z|² the unscaled result under/overflows; use ExpMulErfc when an
// exponential prefactor is available to absorb the scale (as in Ewald
// sums).
func Erfc(z complex128) complex128 {
	iz := complex(-imag(z), real(z))
	return cmplx.Exp(-z*z) * Faddeeva(iz)
}

// Erf returns erf(z) = 1 − erfc(z) for complex z.
func Erf(z complex128) complex128 { return 1 - Erfc(z) }

// ExpMulErfc returns exp(c)·erfc(z) evaluated as exp(c−z²)·w(iz), which
// stays finite whenever the combined exponent is moderate even if exp(c)
// or erfc(z) alone would overflow/underflow. This is exactly the
// combination that appears in the spectral and spatial parts of the Ewald
// representation of periodic Green's functions.
func ExpMulErfc(c, z complex128) complex128 {
	iz := complex(-imag(z), real(z))
	if imag(iz) >= 0 {
		return cmplx.Exp(c-z*z) * faddeevaUpper(iz)
	}
	// w(iz) = 2·exp(z²) − w(−iz): fold the exp(z²) into the prefactor so
	// the large exponentials combine before they overflow.
	return 2*cmplx.Exp(c) - cmplx.Exp(c-z*z)*faddeevaUpper(-iz)
}

// Erfcx returns the real scaled complementary error function
// erfcx(x) = exp(x²)·erfc(x) = w(ix) for real x.
func Erfcx(x float64) float64 {
	if x >= 0 {
		return real(faddeevaUpper(complex(0, x)))
	}
	// erfcx(−x) = 2·exp(x²) − erfcx(x); overflows for x ≲ −27, as it must.
	return 2*math.Exp(x*x) - real(faddeevaUpper(complex(0, -x)))
}
