package specfun

import (
	"math"
	"math/cmplx"
	"testing"
)

// faddeevaIntegral evaluates w(z) for Im z > 0 directly from the defining
// integral w(z) = (i/π) ∫ exp(−t²)/(z−t) dt over the real line, using a
// fine trapezoid on [−9, 9]. Slow but independent of the rational
// expansion — it arbitrates the implementation.
func faddeevaIntegral(z complex128) complex128 {
	const a = 9.0
	const n = 400001
	h := 2 * a / float64(n-1)
	var sum complex128
	for i := 0; i < n; i++ {
		t := -a + float64(i)*h
		v := complex(math.Exp(-t*t), 0) / (z - complex(t, 0))
		if i == 0 || i == n-1 {
			v /= 2
		}
		sum += v
	}
	return complex(0, 1) / math.Pi * sum * complex(h, 0)
}

func TestFaddeevaAgainstDefiningIntegral(t *testing.T) {
	if testing.Short() {
		t.Skip("integral reference is slow")
	}
	pts := []complex128{
		complex(0.5, 0.5),
		complex(1, 1),
		complex(2, 3),
		complex(5, 0.5),
		complex(-2, 0.8),
		complex(0.1, 2.5),
		complex(8, 4),
	}
	for _, z := range pts {
		ref := faddeevaIntegral(z)
		got := Faddeeva(z)
		if d := cmplx.Abs(got-ref) / cmplx.Abs(ref); d > 1e-7 {
			t.Errorf("w(%v): impl %v vs integral %v (rel err %g)", z, got, ref, d)
		}
	}
}
