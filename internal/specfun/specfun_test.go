package specfun

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func cAbsDiff(a, b complex128) float64 { return cmplx.Abs(a - b) }

func TestFaddeevaAtZero(t *testing.T) {
	// w(0) = 1 exactly.
	if d := cAbsDiff(Faddeeva(0), 1); d > 1e-12 {
		t.Fatalf("w(0) = %v, |err| = %g", Faddeeva(0), d)
	}
}

func TestFaddeevaKnownValues(t *testing.T) {
	// Reference values computed with mpmath (50 digits).
	cases := []struct {
		z    complex128
		want complex128
	}{
		{complex(1, 0), complex(0.36787944117144233, 0.60715770584139372)},
		{complex(0, 1), complex(0.42758357615580700, 0)},
		{complex(1, 1), complex(0.30474420525691259, 0.20821893820283162)},
		// The following two values are cross-validated by
		// TestFaddeevaAgainstDefiningIntegral.
		{complex(2, 3), complex(0.13075746966984855, 0.08111265047745664)},
		{complex(-1, 1), complex(0.30474420525691259, -0.20821893820283162)},
		{complex(5, 0.5), complex(0.011900325522593992, 0.1139727186318868)},
	}
	for _, c := range cases {
		got := Faddeeva(c.z)
		if d := cAbsDiff(got, c.want) / cmplx.Abs(c.want); d > 1e-10 {
			t.Errorf("w(%v) = %v, want %v (rel err %g)", c.z, got, c.want, d)
		}
	}
}

func TestFaddeevaSymmetry(t *testing.T) {
	// w(−conj(z)) = conj(w(z)) for all z.
	f := func(re, im float64) bool {
		re = math.Mod(re, 10)
		im = math.Abs(math.Mod(im, 10))
		z := complex(re, im)
		lhs := Faddeeva(-cmplx.Conj(z))
		rhs := cmplx.Conj(Faddeeva(z))
		return cAbsDiff(lhs, rhs) <= 1e-10*(1+cmplx.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaddeevaLowerHalfPlane(t *testing.T) {
	// Reflection identity: w(z) + w(−z) = 2·exp(−z²).
	for _, z := range []complex128{complex(0.3, -0.7), complex(2, -1), complex(-1.5, -0.2)} {
		lhs := Faddeeva(z) + Faddeeva(-z)
		rhs := 2 * cmplx.Exp(-z*z)
		if d := cAbsDiff(lhs, rhs) / cmplx.Abs(rhs); d > 1e-10 {
			t.Errorf("reflection identity at %v: rel err %g", z, d)
		}
	}
}

func TestErfcRealAxisMatchesStdlib(t *testing.T) {
	for x := -3.0; x <= 6.0; x += 0.25 {
		got := Erfc(complex(x, 0))
		want := math.Erfc(x)
		if math.Abs(real(got)-want) > 1e-11*(1+math.Abs(want)) || math.Abs(imag(got)) > 1e-11 {
			t.Errorf("Erfc(%g) = %v, want %g", x, got, want)
		}
	}
}

func TestErfcxMatchesDefinition(t *testing.T) {
	for x := -5.0; x <= 10.0; x += 0.5 {
		got := Erfcx(x)
		want := math.Exp(x*x) * math.Erfc(x)
		if x > 5 {
			// Direct product underflows in accuracy; use asymptotic sanity:
			// erfcx(x) ≈ 1/(x√π).
			approx := 1 / (x * math.SqrtPi)
			if math.Abs(got-approx)/approx > 0.02 {
				t.Errorf("Erfcx(%g) = %g, asymptotic %g", x, got, approx)
			}
			continue
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("Erfcx(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestExpMulErfcConsistency(t *testing.T) {
	// For moderate arguments ExpMulErfc(c, z) must equal exp(c)·Erfc(z).
	cases := []struct{ c, z complex128 }{
		{complex(0.5, 1), complex(0.3, 0.4)},
		{complex(-1, 2), complex(1.5, -0.7)},
		{complex(2, -3), complex(-0.8, 1.2)},
	}
	for _, tc := range cases {
		got := ExpMulErfc(tc.c, tc.z)
		want := cmplx.Exp(tc.c) * Erfc(tc.z)
		if d := cAbsDiff(got, want) / (1 + cmplx.Abs(want)); d > 1e-10 {
			t.Errorf("ExpMulErfc(%v, %v): rel err %g", tc.c, tc.z, d)
		}
	}
}

func TestExpMulErfcLargeArgs(t *testing.T) {
	// exp(c)·erfc(z) with exp(c) overflowing alone but the product finite:
	// c = z² means the product equals erfcx(z) scaled.
	z := complex(30, 2)
	got := ExpMulErfc(z*z, z)
	// exp(z²)·erfc(z) = w(iz); compare against Faddeeva directly.
	want := Faddeeva(complex(-imag(z), real(z)))
	if d := cAbsDiff(got, want) / cmplx.Abs(want); d > 1e-9 {
		t.Fatalf("ExpMulErfc large-arg: got %v want %v rel err %g", got, want, d)
	}
	if cmplx.IsInf(got) || cmplx.IsNaN(got) {
		t.Fatalf("ExpMulErfc overflowed: %v", got)
	}
}

func TestE1KnownValues(t *testing.T) {
	// Abramowitz & Stegun table values.
	cases := []struct{ x, want float64 }{
		{0.1, 1.8229239584193906},
		{0.5, 0.5597735947761607},
		{1.0, 0.21938393439552029},
		{2.0, 0.048900510708061120},
		{5.0, 0.0011482955912753257},
		{10.0, 4.156968929685324e-06},
	}
	for _, c := range cases {
		got := E1(c.x)
		if math.Abs(got-c.want)/c.want > 1e-12 {
			t.Errorf("E1(%g) = %.16g, want %.16g", c.x, got, c.want)
		}
	}
}

func TestEnRecurrenceIdentity(t *testing.T) {
	// n·Eₙ₊₁(x) = e^(−x) − x·Eₙ(x) must hold at the accuracy level of
	// the implementation for mixed series/CF regimes.
	for _, x := range []float64{0.2, 0.9, 1.4, 2.5, 7.0} {
		for n := 1; n <= 8; n++ {
			lhs := float64(n) * En(n+1, x)
			rhs := math.Exp(-x) - x*En(n, x)
			if math.Abs(lhs-rhs) > 1e-12*(math.Abs(lhs)+math.Abs(rhs)+1e-30) {
				t.Errorf("recurrence fails at n=%d x=%g: %g vs %g", n, x, lhs, rhs)
			}
		}
	}
}

func TestEnAtZero(t *testing.T) {
	if got := En(3, 0); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("E3(0) = %g, want 0.5", got)
	}
	if got := En(2, 0); math.Abs(got-1) > 1e-15 {
		t.Fatalf("E2(0) = %g, want 1", got)
	}
}

func TestHermiteProbValues(t *testing.T) {
	// He0=1, He1=x, He2=x²−1, He3=x³−3x, He4=x⁴−6x²+3.
	for _, x := range []float64{-2.3, -0.5, 0, 0.7, 1.9} {
		checks := []struct {
			n    int
			want float64
		}{
			{0, 1},
			{1, x},
			{2, x*x - 1},
			{3, x*x*x - 3*x},
			{4, x*x*x*x - 6*x*x + 3},
		}
		for _, c := range checks {
			if got := HermiteProb(c.n, x); math.Abs(got-c.want) > 1e-12*(1+math.Abs(c.want)) {
				t.Errorf("He%d(%g) = %g, want %g", c.n, x, got, c.want)
			}
		}
	}
}

func TestHermitePhysRelation(t *testing.T) {
	// Hₙ(x) = 2^(n/2)·Heₙ(√2·x).
	f := func(xr float64, nr uint8) bool {
		x := math.Mod(xr, 4)
		n := int(nr % 10)
		lhs := HermitePhys(n, x)
		rhs := math.Pow(2, float64(n)/2) * HermiteProb(n, math.Sqrt2*x)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHermiteProbOrthogonality(t *testing.T) {
	// ∫ Heₙ Heₘ φ(x) dx = n!·δₙₘ via fine trapezoid on [−12, 12].
	const nPts = 20001
	const a = 12.0
	h := 2 * a / float64(nPts-1)
	inner := func(n, m int) float64 {
		var s float64
		for i := 0; i < nPts; i++ {
			x := -a + float64(i)*h
			w := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
			v := HermiteProb(n, x) * HermiteProb(m, x) * w
			if i == 0 || i == nPts-1 {
				v /= 2
			}
			s += v
		}
		return s * h
	}
	for n := 0; n <= 5; n++ {
		for m := 0; m <= 5; m++ {
			got := inner(n, m)
			want := 0.0
			if n == m {
				want = Factorial(n)
			}
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Errorf("⟨He%d, He%d⟩ = %g, want %g", n, m, got, want)
			}
		}
	}
}

func TestFactorialAndBinomial(t *testing.T) {
	if Factorial(0) != 1 || Factorial(5) != 120 || Factorial(10) != 3628800 {
		t.Fatal("Factorial basic values wrong")
	}
	if Binomial(5, 2) != 10 || Binomial(10, 0) != 1 || Binomial(4, 5) != 0 {
		t.Fatal("Binomial basic values wrong")
	}
	// Pascal identity.
	for n := 1; n <= 20; n++ {
		for k := 1; k < n; k++ {
			if math.Abs(Binomial(n, k)-(Binomial(n-1, k-1)+Binomial(n-1, k))) > 1e-9 {
				t.Fatalf("Pascal identity fails at n=%d k=%d", n, k)
			}
		}
	}
}
