package specfun

import "math"

// HermiteProb returns the probabilists' Hermite polynomial Heₙ(x),
// orthogonal under the standard normal weight exp(−x²/2)/√(2π) with
// ⟨Heₙ, Heₘ⟩ = n!·δₙₘ. These are the basis of the Homogeneous (Wiener)
// Chaos expansion used by the SSCM solver.
func HermiteProb(n int, x float64) float64 {
	if n < 0 {
		panic("specfun: HermiteProb order < 0")
	}
	if n == 0 {
		return 1
	}
	hm, h := 1.0, x
	for k := 1; k < n; k++ {
		hm, h = h, x*h-float64(k)*hm
	}
	return h
}

// HermitePhys returns the physicists' Hermite polynomial Hₙ(x),
// orthogonal under exp(−x²) — the weight of the Gauss–Hermite rule.
// Hₙ(x) = 2^(n/2)·Heₙ(√2·x).
func HermitePhys(n int, x float64) float64 {
	if n < 0 {
		panic("specfun: HermitePhys order < 0")
	}
	if n == 0 {
		return 1
	}
	hm, h := 1.0, 2*x
	for k := 1; k < n; k++ {
		hm, h = h, 2*x*h-2*float64(k)*hm
	}
	return h
}

// Factorial returns n! as a float64; exact up to n = 170, +Inf beyond.
func Factorial(n int) float64 {
	if n < 0 {
		panic("specfun: Factorial of negative n")
	}
	f := 1.0
	for k := 2; k <= n; k++ {
		f *= float64(k)
	}
	return f
}

// Binomial returns the binomial coefficient C(n, k) as a float64.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// LogFactorial returns ln(n!) via math.Lgamma, valid for all n ≥ 0.
func LogFactorial(n int) float64 {
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}
