package txline

import (
	"math"
	"math/cmplx"
	"sort"

	"roughsim/internal/resilience"
	"roughsim/internal/units"
)

// CausalRoughness converts a real loss-enhancement profile K(f) into the
// complex, causality-consistent correction factor for the conductor's
// internal impedance.
//
// Multiplying only the series resistance by K(f) — the naive use of the
// roughness factor — produces a non-causal line model: extra loss must
// be accompanied by extra internal inductance (this is the point of the
// "causal transmission line modeling" methodology of Hall et al. [5]).
// The smooth-conductor internal impedance Z_int ∝ (1+j)·Rs(f) is already
// causal, so it suffices to build a causal multiplicative correction
// K_c(f) with Re K_c = K: by the Kramers–Kronig relation for a function
// analytic in the upper half-plane that tends to a real constant K(∞),
//
//	Im K_c(f) = (2f/π)·P∫₀^∞ [K(∞) − K(ν)] / (ν² − f²) dν
//
// The transform is evaluated numerically from K samples on a frequency
// grid with singularity extraction; beyond the grid K is extrapolated as
// its last value (the saturating behaviour all roughness models share).
type CausalRoughness struct {
	freqs []float64
	k     []float64
	kInf  float64
}

// NewCausalRoughness builds the correction from K samples at the given
// frequencies (Hz). Frequencies must be positive, finite and distinct;
// they are sorted internally. K samples must be ≥ 1 and finite (NaN and
// ±Inf are rejected, not silently absorbed into the quadrature). At
// least 4 points are required.
func NewCausalRoughness(freqs, k []float64) (*CausalRoughness, error) {
	const op = "txline.NewCausalRoughness"
	if len(freqs) != len(k) || len(freqs) < 4 {
		return nil, resilience.Errorf(resilience.KindInvalidInput, op,
			"causal roughness needs ≥ 4 matched samples (got %d freqs, %d K values)", len(freqs), len(k))
	}
	type pair struct{ f, k float64 }
	ps := make([]pair, len(freqs))
	for i := range freqs {
		// !(f > 0) catches NaN as well as non-positive values.
		if !(freqs[i] > 0) || math.IsInf(freqs[i], 0) {
			return nil, resilience.Errorf(resilience.KindInvalidInput, op,
				"sample %d: frequency must be positive and finite (got %g Hz)", i, freqs[i])
		}
		if math.IsNaN(k[i]) || math.IsInf(k[i], 0) {
			return nil, resilience.Errorf(resilience.KindNumerical, op,
				"sample %d: K(%g Hz) is not finite (%g)", i, freqs[i], k[i])
		}
		if k[i] < 1 {
			return nil, resilience.Errorf(resilience.KindInvalidInput, op,
				"sample %d: K(%g Hz) = %g < 1 is unphysical", i, freqs[i], k[i])
		}
		ps[i] = pair{freqs[i], k[i]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].f < ps[b].f })
	c := &CausalRoughness{}
	for i, p := range ps {
		if i > 0 && p.f == ps[i-1].f {
			return nil, resilience.Errorf(resilience.KindInvalidInput, op,
				"duplicate frequency sample %g Hz", p.f)
		}
		c.freqs = append(c.freqs, p.f)
		c.k = append(c.k, p.k)
	}
	c.kInf = c.k[len(c.k)-1]
	return c, nil
}

// K returns the interpolated real factor at f (clamped to the sample
// range, matching the saturating physics).
func (c *CausalRoughness) K(f float64) float64 {
	n := len(c.freqs)
	if f <= c.freqs[0] {
		return c.k[0]
	}
	if f >= c.freqs[n-1] {
		return c.kInf
	}
	i := sort.SearchFloat64s(c.freqs, f)
	lo, hi := i-1, i
	t := (f - c.freqs[lo]) / (c.freqs[hi] - c.freqs[lo])
	return c.k[lo]*(1-t) + c.k[hi]*t
}

// Factor returns the complex causal correction K_c(f) = K(f) + j·X(f).
func (c *CausalRoughness) Factor(f float64) complex128 {
	return complex(c.K(f), c.hilbert(f))
}

// hilbert evaluates the Kramers–Kronig integral by composite midpoint
// quadrature on a log-spaced grid with the principal-value singularity
// removed analytically:
//
//	X(f) = (2f/π)·∫ [g(f) − g(ν)]/(ν²−f²) dν + (g(f)·2f/π)·P∫ dν/(ν²−f²)
//	     (with g = K − K(∞), combined from the singularity-extracted
//	      smooth part and the closed-form principal value),
//
// where g = K − K(∞); the second integral over (0, νmax) is
// (1/f)·ln|(νmax−f)/(νmax+f)|·… evaluated in closed form, and g vanishes
// beyond the sampled band so the integration range is finite.
func (c *CausalRoughness) hilbert(f float64) float64 {
	fMax := c.freqs[len(c.freqs)-1]
	// Integration covers (0, νmax]; above νmax, g ≡ 0.
	nuMax := fMax
	g := func(nu float64) float64 { return c.K(nu) - c.kInf }
	gf := 0.0
	if f < nuMax {
		gf = g(f)
	}
	const n = 4000
	var sum float64
	// Linear grid is adequate: the integrand is smooth after the
	// singularity extraction and the band is at most a few decades.
	h := nuMax / n
	for i := 0; i < n; i++ {
		nu := (float64(i) + 0.5) * h
		den := nu*nu - f*f
		if math.Abs(den) < 1e-12*f*f+1e-300 {
			continue
		}
		sum += (g(nu) - gf) / den * h
	}
	x := 2 * f / math.Pi * sum
	// Closed-form principal value of ∫₀^{νmax} dν/(ν²−f²)
	//  = (1/2f)·ln|(νmax−f)/(νmax+f)| for f ≠ νmax.
	if gf != 0 && math.Abs(nuMax-f) > 1e-12*f {
		pv := 1 / (2 * f) * math.Log(math.Abs((nuMax-f)/(nuMax+f)))
		x += 2 * f / math.Pi * gf * pv
	}
	return x
}

// RLGCCausal returns per-unit-length parameters with the complex causal
// roughness correction applied to the internal impedance: the series
// branch becomes jωL_ext + (1+j)·(2Rs/w)·K_c(f), so r absorbs
// Re{(1+j)·K_c} and l gains the internal contribution Im{(1+j)·K_c}/ω.
func (ms Microstrip) RLGCCausal(f float64, kc complex128) (r, l, cc, g float64, err error) {
	const op = "txline.RLGCCausal"
	if err := ms.Validate(); err != nil {
		return 0, 0, 0, 0, err
	}
	if !finitePositive(f) {
		return 0, 0, 0, 0, resilience.Errorf(resilience.KindInvalidInput, op,
			"frequency must be positive and finite (got %g Hz)", f)
	}
	if math.IsNaN(real(kc)) || math.IsNaN(imag(kc)) || cmplx.IsInf(kc) {
		return 0, 0, 0, 0, resilience.Errorf(resilience.KindNumerical, op,
			"correction factor is not finite (%v)", kc)
	}
	if real(kc) < 1 {
		return 0, 0, 0, 0, resilience.Errorf(resilience.KindInvalidInput, op,
			"Re K_c = %g < 1 is unphysical", real(kc))
	}
	z0 := ms.Z0()
	ee := ms.EffectivePermittivity()
	v := units.C0 / math.Sqrt(ee)
	lext := z0 / v
	cc = 1 / (z0 * v)
	rs := units.SurfaceResistance(f, ms.Rho)
	zint := complex(1, 1) * complex(2*rs/ms.Width, 0) * kc
	r = real(zint)
	w := units.AngularFreq(f)
	l = lext + imag(zint)/w
	g = w * cc * ms.TanDelta
	return r, l, cc, g, nil
}

// InsertionLossDBCausal is InsertionLossDB with the causal correction.
func InsertionLossDBCausal(ms Microstrip, ell, f, z0 float64, c *CausalRoughness) (float64, error) {
	r, l, cc, g, err := ms.RLGCCausal(f, c.Factor(f))
	if err != nil {
		return 0, err
	}
	m, err := LineABCD(f, ell, r, l, cc, g)
	if err != nil {
		return 0, err
	}
	return -20 * math.Log10(cmplxAbs(m.S21(z0))), nil
}

func cmplxAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }
