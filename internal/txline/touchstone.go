package txline

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"
)

// SParams is one two-port sample. The line models here are reciprocal
// and symmetric (S12 = S21, S22 = S11).
type SParams struct {
	F        float64 // Hz
	S11, S21 complex128
}

// SweepSParams evaluates the two-port S-parameters of a length-ell
// microstrip over a frequency list under a roughness model, referenced
// to z0.
func SweepSParams(ms Microstrip, ell, z0 float64, freqs []float64, kr RoughnessModel) ([]SParams, error) {
	out := make([]SParams, 0, len(freqs))
	for _, f := range freqs {
		r, l, c, g, err := ms.RLGC(f, kr(f))
		if err != nil {
			return nil, err
		}
		m, err := LineABCD(f, ell, r, l, c, g)
		if err != nil {
			return nil, err
		}
		out = append(out, SParams{F: f, S11: m.S11(z0), S21: m.S21(z0)})
	}
	return out, nil
}

// WriteTouchstone emits the sweep in Touchstone 1.x two-port format
// (# HZ S RI R z0), the interchange format every SI tool reads. Sample
// ordering follows the spec: S11 S21 S12 S22 per frequency row.
func WriteTouchstone(w io.Writer, z0 float64, sweep []SParams) error {
	if len(sweep) == 0 {
		return fmt.Errorf("txline: empty S-parameter sweep")
	}
	if _, err := fmt.Fprintf(w, "! roughsim transmission-line model\n# HZ S RI R %g\n", z0); err != nil {
		return err
	}
	prev := 0.0
	for i, s := range sweep {
		// Touchstone 1.x requires strictly increasing frequencies; most SI
		// tools misparse duplicates or reordered rows silently, so both are
		// hard errors here with the row index and both values named.
		if !(s.F > 0) || math.IsInf(s.F, 0) {
			return fmt.Errorf("txline: touchstone row %d: frequency must be positive and finite (got %g)", i, s.F)
		}
		if s.F == prev {
			return fmt.Errorf("txline: touchstone row %d: duplicate frequency %g Hz", i, s.F)
		}
		if s.F < prev {
			return fmt.Errorf("txline: touchstone row %d: frequencies must be strictly increasing (%g Hz after %g Hz)", i, s.F, prev)
		}
		prev = s.F
		s12 := s.S21 // reciprocity
		s22 := s.S11 // symmetry
		if _, err := fmt.Fprintf(w, "%.10g %.10g %.10g %.10g %.10g %.10g %.10g %.10g %.10g\n",
			s.F,
			real(s.S11), imag(s.S11),
			real(s.S21), imag(s.S21),
			real(s12), imag(s12),
			real(s22), imag(s22)); err != nil {
			return err
		}
	}
	return nil
}

// PassivityCheck returns the largest power gain Σ|S_i1|² over the sweep;
// a passive network keeps it ≤ 1 (plus numerical slack).
func PassivityCheck(sweep []SParams) float64 {
	var worst float64
	for _, s := range sweep {
		p := cmplx.Abs(s.S11)*cmplx.Abs(s.S11) + cmplx.Abs(s.S21)*cmplx.Abs(s.S21)
		if p > worst {
			worst = p
		}
	}
	return worst
}

// GroupDelay estimates the S21 group delay −dφ/dω between consecutive
// sweep samples (length len(sweep)−1), a causality smoke test: a
// passive causal line has positive, slowly varying delay.
func GroupDelay(sweep []SParams) []float64 {
	if len(sweep) < 2 {
		return nil
	}
	out := make([]float64, len(sweep)-1)
	prevPhase := cmplx.Phase(sweep[0].S21)
	for i := 1; i < len(sweep); i++ {
		ph := cmplx.Phase(sweep[i].S21)
		dph := ph - prevPhase
		// Unwrap.
		for dph > math.Pi {
			dph -= 2 * math.Pi
		}
		for dph < -math.Pi {
			dph += 2 * math.Pi
		}
		dw := 2 * math.Pi * (sweep[i].F - sweep[i-1].F)
		out[i-1] = -dph / dw
		prevPhase = ph
	}
	return out
}
