// Package txline applies the roughness loss-enhancement factor K(f) to a
// transmission-line model of a PCB interconnect — the application that
// motivates the paper's introduction (insertion loss and signal
// integrity prediction).
//
// The line is a microstrip described by the Hammerstad–Jensen closed
// forms; its series resistance is the skin-effect value scaled by K(f)
// from any roughness model (SWM, SPM2, HBM, or the empirical formula),
// and the resulting RLGC cascade yields S-parameters and insertion loss.
package txline

import (
	"math"
	"math/cmplx"

	"roughsim/internal/resilience"
	"roughsim/internal/units"
)

// Microstrip is a surface trace over a reference plane.
type Microstrip struct {
	Width    float64 // trace width w (m)
	Height   float64 // dielectric height h (m)
	EpsR     float64 // substrate relative permittivity
	TanDelta float64 // substrate loss tangent
	Rho      float64 // conductor resistivity (Ω·m)
}

// finitePositive reports whether v is a finite value > 0 (NaN fails
// every comparison, so !(v > 0) catches it too).
func finitePositive(v float64) bool { return v > 0 && !math.IsInf(v, 0) }

// Validate checks the geometry and material fields, naming the
// offending field in a typed invalid-input error so an API tier can
// map it straight to a 400.
func (ms Microstrip) Validate() error {
	const op = "txline.Microstrip"
	switch {
	case !finitePositive(ms.Width):
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"width must be positive and finite (got %g)", ms.Width)
	case !finitePositive(ms.Height):
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"height must be positive and finite (got %g)", ms.Height)
	case !(ms.EpsR >= 1) || math.IsInf(ms.EpsR, 0):
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"eps_r must be ≥ 1 and finite (got %g)", ms.EpsR)
	case !(ms.TanDelta >= 0) || math.IsInf(ms.TanDelta, 0):
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"tan_delta must be ≥ 0 and finite (got %g)", ms.TanDelta)
	case !finitePositive(ms.Rho):
		return resilience.Errorf(resilience.KindInvalidInput, op,
			"rho must be positive and finite (got %g)", ms.Rho)
	}
	return nil
}

// EffectivePermittivity returns the quasi-static ε_eff of the microstrip
// (Hammerstad–Jensen).
func (ms Microstrip) EffectivePermittivity() float64 {
	u := ms.Width / ms.Height
	return (ms.EpsR+1)/2 + (ms.EpsR-1)/2/math.Sqrt(1+12/u)
}

// Z0 returns the quasi-static characteristic impedance (Ω).
func (ms Microstrip) Z0() float64 {
	u := ms.Width / ms.Height
	ee := ms.EffectivePermittivity()
	if u >= 1 {
		return 120 * math.Pi / (math.Sqrt(ee) * (u + 1.393 + 0.667*math.Log(u+1.444)))
	}
	return 60 / math.Sqrt(ee) * math.Log(8/u+u/4)
}

// RLGC returns the per-unit-length parameters at frequency f with the
// roughness factor kr applied to the series resistance (kr = 1 for a
// smooth conductor). Out-of-domain input yields a typed invalid-input
// error (never a panic): an API tier maps it to a 400 naming the field.
func (ms Microstrip) RLGC(f, kr float64) (r, l, c, g float64, err error) {
	const op = "txline.RLGC"
	if err := ms.Validate(); err != nil {
		return 0, 0, 0, 0, err
	}
	if !finitePositive(f) {
		return 0, 0, 0, 0, resilience.Errorf(resilience.KindInvalidInput, op,
			"frequency must be positive and finite (got %g Hz)", f)
	}
	if !(kr >= 1) || math.IsInf(kr, 0) {
		return 0, 0, 0, 0, resilience.Errorf(resilience.KindInvalidInput, op,
			"roughness factor must be ≥ 1 and finite (got kr=%g)", kr)
	}
	z0 := ms.Z0()
	ee := ms.EffectivePermittivity()
	v := units.C0 / math.Sqrt(ee)
	l = z0 / v
	c = 1 / (z0 * v)
	// Skin-effect resistance of trace + return path (the return plane
	// contributes roughly an equal share at w ≈ few·h); both surfaces
	// are roughened in the paper's scenario.
	rs := units.SurfaceResistance(f, ms.Rho)
	r = 2 * rs / ms.Width * kr
	g = units.AngularFreq(f) * c * ms.TanDelta
	return r, l, c, g, nil
}

// ABCD is a 2×2 complex transmission (chain) matrix.
type ABCD struct{ A, B, C, D complex128 }

// Mul returns m·n (cascade).
func (m ABCD) Mul(n ABCD) ABCD {
	return ABCD{
		A: m.A*n.A + m.B*n.C,
		B: m.A*n.B + m.B*n.D,
		C: m.C*n.A + m.D*n.C,
		D: m.C*n.B + m.D*n.D,
	}
}

// LineABCD returns the chain matrix of a uniform line of length ell with
// per-unit-length RLGC values at frequency f. Out-of-domain input yields
// a typed invalid-input error naming the offending parameter.
func LineABCD(f, ell, r, l, c, g float64) (ABCD, error) {
	const op = "txline.LineABCD"
	switch {
	case !finitePositive(f):
		return ABCD{}, resilience.Errorf(resilience.KindInvalidInput, op,
			"frequency must be positive and finite (got %g Hz)", f)
	case !finitePositive(ell):
		return ABCD{}, resilience.Errorf(resilience.KindInvalidInput, op,
			"length must be positive and finite (got %g m)", ell)
	case !(r >= 0) || math.IsInf(r, 0):
		return ABCD{}, resilience.Errorf(resilience.KindInvalidInput, op,
			"series resistance must be ≥ 0 and finite (got %g Ω/m)", r)
	case !finitePositive(l):
		return ABCD{}, resilience.Errorf(resilience.KindInvalidInput, op,
			"series inductance must be positive and finite (got %g H/m)", l)
	case !finitePositive(c):
		return ABCD{}, resilience.Errorf(resilience.KindInvalidInput, op,
			"shunt capacitance must be positive and finite (got %g F/m)", c)
	case !(g >= 0) || math.IsInf(g, 0):
		return ABCD{}, resilience.Errorf(resilience.KindInvalidInput, op,
			"shunt conductance must be ≥ 0 and finite (got %g S/m)", g)
	}
	w := units.AngularFreq(f)
	zs := complex(r, w*l)
	yp := complex(g, w*c)
	gamma := cmplx.Sqrt(zs * yp)
	zc := cmplx.Sqrt(zs / yp)
	gl := gamma * complex(ell, 0)
	return ABCD{
		A: cmplx.Cosh(gl),
		B: zc * cmplx.Sinh(gl),
		C: cmplx.Sinh(gl) / zc,
		D: cmplx.Cosh(gl),
	}, nil
}

// S21 converts a chain matrix to the forward transmission coefficient in
// a z0-referenced system.
func (m ABCD) S21(z0 float64) complex128 {
	z := complex(z0, 0)
	den := m.A + m.B/z + m.C*z + m.D
	return 2 / den
}

// S11 returns the input reflection coefficient in a z0 system.
func (m ABCD) S11(z0 float64) complex128 {
	z := complex(z0, 0)
	den := m.A + m.B/z + m.C*z + m.D
	return (m.A + m.B/z - m.C*z - m.D) / den
}

// RoughnessModel maps frequency to the loss enhancement factor K(f) ≥ 1.
type RoughnessModel func(f float64) float64

// Smooth is the K ≡ 1 reference model.
func Smooth(float64) float64 { return 1 }

// InsertionLossDB returns −20·log10|S21| of a length-ell microstrip at
// frequency f under the given roughness model, referenced to z0.
func InsertionLossDB(ms Microstrip, ell, f, z0 float64, kr RoughnessModel) (float64, error) {
	r, l, c, g, err := ms.RLGC(f, kr(f))
	if err != nil {
		return 0, err
	}
	m, err := LineABCD(f, ell, r, l, c, g)
	if err != nil {
		return 0, err
	}
	return -20 * math.Log10(cmplx.Abs(m.S21(z0))), nil
}

// AttenuationNpPerM returns the real part of the propagation constant
// (Np/m) at f — the per-meter loss the paper's Rf ∝ √f discussion is
// about.
func AttenuationNpPerM(ms Microstrip, f float64, kr RoughnessModel) (float64, error) {
	r, l, c, g, err := ms.RLGC(f, kr(f))
	if err != nil {
		return 0, err
	}
	w := units.AngularFreq(f)
	gamma := cmplx.Sqrt(complex(r, w*l) * complex(g, w*c))
	return real(gamma), nil
}
