package txline

import (
	"math"
	"math/cmplx"
	"testing"

	"roughsim/internal/core"
	"roughsim/internal/resilience"
	"roughsim/internal/units"
)

// fr4Line is a representative 50Ω-ish PCB microstrip.
func fr4Line() Microstrip {
	return Microstrip{
		Width:    300e-6,
		Height:   170e-6,
		EpsR:     4.1,
		TanDelta: 0.02,
		Rho:      units.CopperResistivity,
	}
}

// mustRLGC / mustABCD / mustIL / mustAtten unwrap the error returns for
// tests exercising in-domain inputs.
func mustRLGC(t *testing.T, ms Microstrip, f, kr float64) (r, l, c, g float64) {
	t.Helper()
	r, l, c, g, err := ms.RLGC(f, kr)
	if err != nil {
		t.Fatal(err)
	}
	return r, l, c, g
}

func mustABCD(t *testing.T, f, ell, r, l, c, g float64) ABCD {
	t.Helper()
	m, err := LineABCD(f, ell, r, l, c, g)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustIL(t *testing.T, ms Microstrip, ell, f, z0 float64, kr RoughnessModel) float64 {
	t.Helper()
	il, err := InsertionLossDB(ms, ell, f, z0, kr)
	if err != nil {
		t.Fatal(err)
	}
	return il
}

func mustAtten(t *testing.T, ms Microstrip, f float64, kr RoughnessModel) float64 {
	t.Helper()
	a, err := AttenuationNpPerM(ms, f, kr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestEffectivePermittivityBounds(t *testing.T) {
	ms := fr4Line()
	ee := ms.EffectivePermittivity()
	if ee <= 1 || ee >= ms.EpsR {
		t.Fatalf("ε_eff = %g must lie between 1 and εr=%g", ee, ms.EpsR)
	}
}

func TestZ0Reasonable(t *testing.T) {
	z0 := fr4Line().Z0()
	if z0 < 30 || z0 > 90 {
		t.Fatalf("Z0 = %g Ω outside plausible microstrip range", z0)
	}
	// Wider trace ⇒ lower impedance.
	wide := fr4Line()
	wide.Width *= 2
	if wide.Z0() >= z0 {
		t.Fatalf("Z0 must fall with width: %g vs %g", wide.Z0(), z0)
	}
}

func TestLosslessLineIsUnitary(t *testing.T) {
	// R = G = 0: |S11|² + |S21|² = 1 at any frequency/length.
	ms := fr4Line()
	_, l, c, _ := mustRLGC(t, ms, 1*units.GHz, 1)
	m := mustABCD(t, 1*units.GHz, 0.1, 0, l, c, 0)
	s11 := m.S11(50)
	s21 := m.S21(50)
	sum := cmplx.Abs(s11)*cmplx.Abs(s11) + cmplx.Abs(s21)*cmplx.Abs(s21)
	if math.Abs(sum-1) > 1e-10 {
		t.Fatalf("lossless line not unitary: |S11|²+|S21|² = %g", sum)
	}
}

func TestPassivity(t *testing.T) {
	ms := fr4Line()
	for _, fGHz := range []float64{0.1, 1, 5, 10, 20} {
		il := mustIL(t, ms, 0.2, fGHz*units.GHz, 50, Smooth)
		if il < 0 {
			t.Fatalf("negative insertion loss (gain) at %g GHz: %g dB", fGHz, il)
		}
	}
}

func TestMatchedLineS21Magnitude(t *testing.T) {
	// When referenced to its own impedance, |S21| = e^{−αℓ} exactly.
	ms := fr4Line()
	f := 5 * units.GHz
	r, l, c, g := mustRLGC(t, ms, f, 1)
	w := units.AngularFreq(f)
	zc := cmplx.Sqrt(complex(r, w*l) / complex(g, w*c))
	alpha := real(cmplx.Sqrt(complex(r, w*l) * complex(g, w*c)))
	ell := 0.15
	s21 := mustABCD(t, f, ell, r, l, c, g).S21(real(zc))
	// Small mismatch from the imaginary part of Zc.
	if d := math.Abs(cmplx.Abs(s21)-math.Exp(-alpha*ell)) / math.Exp(-alpha*ell); d > 0.02 {
		t.Fatalf("matched |S21| = %g vs e^{−αℓ} = %g", cmplx.Abs(s21), math.Exp(-alpha*ell))
	}
}

func TestRoughnessIncreasesLoss(t *testing.T) {
	ms := fr4Line()
	mat := core.PaperMaterial()
	rough := func(f float64) float64 { k, _ := mat.EmpiricalAt(1e-6, f); return k }
	for _, fGHz := range []float64{1, 5, 10} {
		f := fGHz * units.GHz
		smooth := mustIL(t, ms, 0.3, f, 50, Smooth)
		withR := mustIL(t, ms, 0.3, f, 50, rough)
		if withR <= smooth {
			t.Fatalf("f=%g GHz: rough IL %g ≤ smooth IL %g", fGHz, withR, smooth)
		}
	}
}

func TestConductorAttenuationScalesRootF(t *testing.T) {
	// With tanδ = 0 and smooth conductor, α ∝ √f in the skin-effect
	// regime (the classical law the paper says roughness breaks).
	ms := fr4Line()
	ms.TanDelta = 0
	a1 := mustAtten(t, ms, 1*units.GHz, Smooth)
	a4 := mustAtten(t, ms, 4*units.GHz, Smooth)
	if math.Abs(a4/a1-2) > 0.05 {
		t.Fatalf("α(4GHz)/α(1GHz) = %g, want ≈ 2", a4/a1)
	}
	// And roughness breaks the law: with the empirical K the ratio
	// exceeds 2.
	mat := core.PaperMaterial()
	rough := func(f float64) float64 { k, _ := mat.EmpiricalAt(2e-6, f); return k }
	r1 := mustAtten(t, ms, 1*units.GHz, rough)
	r4 := mustAtten(t, ms, 4*units.GHz, rough)
	if r4/r1 <= a4/a1 {
		t.Fatalf("roughness should steepen the α(f) slope: %g vs %g", r4/r1, a4/a1)
	}
}

func TestCascadeAssociativity(t *testing.T) {
	// Two half-length segments must equal one full segment.
	ms := fr4Line()
	f := 3 * units.GHz
	r, l, c, g := mustRLGC(t, ms, f, 1.3)
	full := mustABCD(t, f, 0.2, r, l, c, g)
	half := mustABCD(t, f, 0.1, r, l, c, g)
	two := half.Mul(half)
	for _, pair := range [][2]complex128{{full.A, two.A}, {full.B, two.B}, {full.C, two.C}, {full.D, two.D}} {
		if cmplx.Abs(pair[0]-pair[1]) > 1e-9*(1+cmplx.Abs(pair[0])) {
			t.Fatalf("cascade mismatch: %v vs %v", pair[0], pair[1])
		}
	}
}

func TestRLGCTypedErrors(t *testing.T) {
	// Out-of-domain input must come back as a classified invalid-input
	// error (the API tier maps it to a 400), never as a panic.
	cases := []struct {
		name string
		call func() error
	}{
		{"kr<1", func() error { _, _, _, _, err := fr4Line().RLGC(1*units.GHz, 0.5); return err }},
		{"f<=0", func() error { _, _, _, _, err := fr4Line().RLGC(0, 1); return err }},
		{"f=NaN", func() error { _, _, _, _, err := fr4Line().RLGC(math.NaN(), 1); return err }},
		{"kr=NaN", func() error { _, _, _, _, err := fr4Line().RLGC(1*units.GHz, math.NaN()); return err }},
		{"bad-width", func() error {
			ms := fr4Line()
			ms.Width = -1
			_, _, _, _, err := ms.RLGC(1*units.GHz, 1)
			return err
		}},
		{"abcd-f<=0", func() error { _, err := LineABCD(0, 0.1, 0, 1e-7, 1e-10, 0); return err }},
		{"abcd-l<=0", func() error { _, err := LineABCD(1*units.GHz, 0.1, 0, 0, 1e-10, 0); return err }},
		{"abcd-r=NaN", func() error { _, err := LineABCD(1*units.GHz, 0.1, math.NaN(), 1e-7, 1e-10, 0); return err }},
	}
	for _, tc := range cases {
		err := tc.call()
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if kind := resilience.Classify(err); kind != resilience.KindInvalidInput {
			t.Fatalf("%s: classified %v, want invalid-input (%v)", tc.name, kind, err)
		}
	}
}
