package txline

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"roughsim/internal/units"
)

func sweepFreqs() []float64 {
	var fs []float64
	for fG := 1.0; fG <= 10; fG++ {
		fs = append(fs, fG*units.GHz)
	}
	return fs
}

func mustSweepS(t *testing.T, ms Microstrip, ell, z0 float64, freqs []float64, kr RoughnessModel) []SParams {
	t.Helper()
	sweep, err := SweepSParams(ms, ell, z0, freqs, kr)
	if err != nil {
		t.Fatal(err)
	}
	return sweep
}

func TestSweepAndTouchstone(t *testing.T) {
	ms := fr4Line()
	sweep := mustSweepS(t, ms, 0.1, 50, sweepFreqs(), Smooth)
	if len(sweep) != 10 {
		t.Fatalf("sweep length %d", len(sweep))
	}
	var buf bytes.Buffer
	if err := WriteTouchstone(&buf, 50, sweep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# HZ S RI R 50") {
		t.Fatalf("missing option line:\n%s", out[:80])
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 2 header/comment lines + 10 data rows.
	if len(lines) != 12 {
		t.Fatalf("line count %d", len(lines))
	}
	if fields := strings.Fields(lines[2]); len(fields) != 9 {
		t.Fatalf("data row has %d fields, want 9", len(fields))
	}
}

func TestTouchstoneRejectsBadSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTouchstone(&buf, 50, nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	sweep := []SParams{{F: 2e9}, {F: 1e9}}
	err := WriteTouchstone(&buf, 50, sweep)
	if err == nil {
		t.Fatal("non-monotone frequencies accepted")
	}
	if !strings.Contains(err.Error(), "strictly increasing") {
		t.Fatalf("non-monotone error not descriptive: %v", err)
	}
}

func TestTouchstoneRejectsDuplicateFrequency(t *testing.T) {
	// Touchstone 1.x requires strictly increasing rows; a duplicate must
	// be rejected with an error naming the repeated frequency, not
	// silently emitted for an SI tool to misparse.
	sweep := []SParams{{F: 1e9, S21: 1}, {F: 2e9, S21: 1}, {F: 2e9, S21: 1}, {F: 3e9, S21: 1}}
	var buf bytes.Buffer
	err := WriteTouchstone(&buf, 50, sweep)
	if err == nil {
		t.Fatal("duplicate frequency accepted")
	}
	if !strings.Contains(err.Error(), "duplicate") || !strings.Contains(err.Error(), "2e+09") {
		t.Fatalf("duplicate error not descriptive: %v", err)
	}
	// Non-finite frequencies are equally fatal.
	if err := WriteTouchstone(&buf, 50, []SParams{{F: math.NaN(), S21: 1}}); err == nil {
		t.Fatal("NaN frequency accepted")
	}
}

func TestSweepPassivity(t *testing.T) {
	ms := fr4Line()
	matK := func(f float64) float64 { return 1 + 0.5*f/(f+5e9) } // rising K
	sweep := mustSweepS(t, ms, 0.3, 50, sweepFreqs(), matK)
	if p := PassivityCheck(sweep); p > 1.0+1e-9 {
		t.Fatalf("line is active: max power gain %g", p)
	}
}

func TestGroupDelayPositiveAndNearTEM(t *testing.T) {
	ms := fr4Line()
	// Keep the per-sample phase step below π (delay·Δf < ½) so the
	// unwrap in GroupDelay is unambiguous: 5 cm at 1 GHz spacing.
	ell := 0.05
	sweep := mustSweepS(t, ms, ell, 50, sweepFreqs(), Smooth)
	gd := GroupDelay(sweep)
	// Expected delay ≈ ell/v = ell·sqrt(ε_eff)/c.
	want := ell / (units.C0 / sqrtEff(ms))
	for i, d := range gd {
		if d <= 0 {
			t.Fatalf("negative group delay at segment %d: %g", i, d)
		}
		if d < 0.5*want || d > 2*want {
			t.Fatalf("group delay %g far from TEM estimate %g", d, want)
		}
	}
}

func sqrtEff(ms Microstrip) float64 {
	return math.Sqrt(ms.EffectivePermittivity())
}
