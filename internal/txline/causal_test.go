package txline

import (
	"math"
	"testing"

	"roughsim/internal/core"
	"roughsim/internal/units"
)

func TestCausalRoughnessValidation(t *testing.T) {
	if _, err := NewCausalRoughness([]float64{1, 2}, []float64{1, 1}); err == nil {
		t.Fatal("too few samples accepted")
	}
	if _, err := NewCausalRoughness([]float64{0, 1, 2, 3}, []float64{1, 1, 1, 1}); err == nil {
		t.Fatal("zero frequency accepted")
	}
	if _, err := NewCausalRoughness([]float64{1, 2, 3, 4}, []float64{1, 0.5, 1, 1}); err == nil {
		t.Fatal("K < 1 accepted")
	}
}

func TestCausalInterpolation(t *testing.T) {
	c, err := NewCausalRoughness(
		[]float64{1e9, 2e9, 3e9, 4e9},
		[]float64{1.1, 1.2, 1.3, 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.K(2.5e9); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("K(2.5GHz) = %g", got)
	}
	// Clamping outside the band.
	if c.K(0.1e9) != 1.1 || c.K(10e9) != 1.4 {
		t.Fatal("clamping broken")
	}
}

func TestKramersKronigAgainstAnalyticPair(t *testing.T) {
	// H(jω) = 1 + a·jω/(jω+b) is causal and minimum-phase with
	// Re H = 1 + a·ω²/(ω²+b²) and Im H = a·b·ω/(ω²+b²). Feeding Re H as
	// the "K(f)" samples must reproduce Im H. The numerical transform
	// truncates at the band edge, so compare in the middle of a wide
	// band.
	a := 0.5
	b := 2 * math.Pi * 3e9
	n := 400
	freqs := make([]float64, n)
	ks := make([]float64, n)
	for i := 0; i < n; i++ {
		f := (float64(i) + 1) * 0.25e9 // 0.25–100 GHz
		w := 2 * math.Pi * f
		freqs[i] = f
		ks[i] = 1 + a*w*w/(w*w+b*b)
	}
	c, err := NewCausalRoughness(freqs, ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, fG := range []float64{2, 3, 5, 8} {
		f := fG * 1e9
		w := 2 * math.Pi * f
		want := a * b * w / (w*w + b*b)
		got := imag(c.Factor(f))
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("f=%g GHz: Im Kc = %g, want %g", fG, got, want)
		}
	}
}

func TestCausalFactorSignsAndMagnitude(t *testing.T) {
	// For a monotonically rising K(f) the reactive part is positive
	// (added internal inductance) inside the band.
	// The sample band must extend to where K has genuinely saturated
	// (the transform treats K as constant beyond the band, and
	// truncating the rise mid-way distorts the in-band reactance).
	mat := core.PaperMaterial()
	var freqs, ks []float64
	for fG := 0.5; fG <= 400; fG += 1 {
		freqs = append(freqs, fG*1e9)
		k, err := mat.EmpiricalAt(1e-6, fG*1e9)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}
	c, err := NewCausalRoughness(freqs, ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, fG := range []float64{2, 5, 10} {
		kc := c.Factor(fG * 1e9)
		// The sign of Im Kc alone is shape-dependent (it is the Hilbert
		// transform of K − K∞); what causal physics demands is that the
		// total internal reactance of Z_int ∝ (1+j)·Kc stays inductive:
		// Re Kc + Im Kc > 0.
		if real(kc)+imag(kc) <= 0 {
			t.Errorf("f=%g GHz: internal reactance (ReKc+ImKc) = %g, want > 0", fG, real(kc)+imag(kc))
		}
		if math.Abs(imag(kc)) > real(kc) {
			t.Errorf("f=%g GHz: |reactive correction| %g exceeds resistive %g", fG, imag(kc), real(kc))
		}
	}
}

func TestRLGCCausalReducesToSmooth(t *testing.T) {
	// K_c = 1 must reproduce the smooth-line series resistance and add
	// exactly the smooth internal inductance.
	ms := fr4Line()
	f := 5 * units.GHz
	rSm, lSm, cSm, gSm := ms.RLGC(f, 1)
	r, l, c, g := ms.RLGCCausal(f, 1)
	if math.Abs(r-rSm)/rSm > 1e-12 || c != cSm || g != gSm {
		t.Fatalf("causal with Kc=1 deviates: r=%g vs %g", r, rSm)
	}
	// Internal inductance: Rs/(ω)·2/w.
	w := units.AngularFreq(f)
	wantL := lSm + rSm/w
	if math.Abs(l-wantL)/wantL > 1e-12 {
		t.Fatalf("internal inductance wrong: %g vs %g", l, wantL)
	}
}

func TestCausalInsertionLossClose(t *testing.T) {
	// The causal correction changes the phase structure but the loss
	// magnitude stays near the non-causal model.
	ms := fr4Line()
	mat := core.PaperMaterial()
	var freqs, ks []float64
	for fG := 0.5; fG <= 30; fG += 0.5 {
		freqs = append(freqs, fG*1e9)
		k, err := mat.EmpiricalAt(1.5e-6, fG*1e9)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}
	c, err := NewCausalRoughness(freqs, ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, fG := range []float64{2, 5, 10} {
		f := fG * 1e9
		causal := InsertionLossDBCausal(ms, 0.2, f, 50, c)
		naive := InsertionLossDB(ms, 0.2, f, 50, func(ff float64) float64 { return c.K(ff) })
		if causal <= 0 {
			t.Fatalf("f=%g GHz: non-positive causal IL %g", fG, causal)
		}
		if math.Abs(causal-naive)/naive > 0.15 {
			t.Errorf("f=%g GHz: causal IL %g vs naive %g", fG, causal, naive)
		}
	}
}
