package txline

import (
	"math"
	"testing"

	"roughsim/internal/core"
	"roughsim/internal/units"
)

func TestCausalRoughnessValidation(t *testing.T) {
	if _, err := NewCausalRoughness([]float64{1, 2}, []float64{1, 1}); err == nil {
		t.Fatal("too few samples accepted")
	}
	if _, err := NewCausalRoughness([]float64{0, 1, 2, 3}, []float64{1, 1, 1, 1}); err == nil {
		t.Fatal("zero frequency accepted")
	}
	if _, err := NewCausalRoughness([]float64{1, 2, 3, 4}, []float64{1, 0.5, 1, 1}); err == nil {
		t.Fatal("K < 1 accepted")
	}
}

func TestCausalRoughnessRejectsNonFinite(t *testing.T) {
	// NaN fails every ordered comparison, so a plain `f <= 0` check lets
	// it through silently — these must all be hard, typed rejections.
	cases := []struct {
		name     string
		freqs, k []float64
	}{
		{"nan-freq", []float64{1e9, math.NaN(), 3e9, 4e9}, []float64{1.1, 1.2, 1.3, 1.4}},
		{"inf-freq", []float64{1e9, 2e9, math.Inf(1), 4e9}, []float64{1.1, 1.2, 1.3, 1.4}},
		{"nan-k", []float64{1e9, 2e9, 3e9, 4e9}, []float64{1.1, math.NaN(), 1.3, 1.4}},
		{"inf-k", []float64{1e9, 2e9, 3e9, 4e9}, []float64{1.1, 1.2, math.Inf(1), 1.4}},
		{"neg-inf-k", []float64{1e9, 2e9, 3e9, 4e9}, []float64{1.1, 1.2, math.Inf(-1), 1.4}},
		{"duplicate-freq", []float64{1e9, 2e9, 2e9, 4e9}, []float64{1.1, 1.2, 1.3, 1.4}},
	}
	for _, tc := range cases {
		if _, err := NewCausalRoughness(tc.freqs, tc.k); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCausalRoughnessSingleAndUnsortedGrid(t *testing.T) {
	// A single-point grid (even replicated to four samples it is a
	// degenerate duplicate grid) must be rejected, not divide by zero in
	// the interpolator.
	if _, err := NewCausalRoughness([]float64{1e9}, []float64{1.2}); err == nil {
		t.Fatal("single-point grid accepted")
	}
	if _, err := NewCausalRoughness(
		[]float64{1e9, 1e9, 1e9, 1e9}, []float64{1.2, 1.2, 1.2, 1.2}); err == nil {
		t.Fatal("replicated single-frequency grid accepted")
	}
	// An unsorted grid is legal input: the constructor sorts, and the
	// result must be identical to the sorted build.
	sortedF := []float64{1e9, 2e9, 3e9, 4e9, 6e9, 9e9}
	sortedK := []float64{1.10, 1.20, 1.28, 1.34, 1.42, 1.48}
	shuffledF := []float64{4e9, 1e9, 9e9, 3e9, 6e9, 2e9}
	shuffledK := []float64{1.34, 1.10, 1.48, 1.28, 1.42, 1.20}
	a, err := NewCausalRoughness(sortedF, sortedK)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCausalRoughness(shuffledF, shuffledK)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.5e9, 1.5e9, 2.5e9, 5e9, 8e9, 20e9} {
		if a.K(f) != b.K(f) {
			t.Fatalf("K(%g) differs across input order: %g vs %g", f, a.K(f), b.K(f))
		}
		if a.Factor(f) != b.Factor(f) {
			t.Fatalf("Factor(%g) differs across input order", f)
		}
	}
}

func TestKramersKronigDebyeReference(t *testing.T) {
	// Saturating-tail accuracy against an exact analytic pair: the Debye
	// profile K(f) = K∞ − A/(1 + (f/f0)²) saturates to K∞ like every
	// physical roughness model, and its exact Hilbert partner under the
	// transform this package computes, X(f) = (2f/π)·P∫ [K(ν)−K∞]/(ν²−f²) dν,
	// is
	//
	//	X(f) = +A·(f0·f)/(f0² + f²)
	//
	// (from P∫₀^∞ dν/(ν²−f²) = 0 and ∫₀^∞ dν/(ν²+f0²) = π/(2f0)).
	// Sampling far past f0 makes the truncated tail negligible, so the
	// quadrature must land within a few percent of the closed form.
	const (
		kInf = 1.6
		A    = 0.5
		f0   = 2e9
	)
	// Log-spaced samples from far below f0 (where K ≈ K(0)) to ~1000·f0
	// (tail saturated): the constructor's clamp outside the sampled band
	// then matches the true Debye profile to ~1e-3 on both ends.
	const n = 3000
	fmin, fmax := 0.02e9, 2000e9
	freqs := make([]float64, n)
	ks := make([]float64, n)
	for i := 0; i < n; i++ {
		f := fmin * math.Pow(fmax/fmin, float64(i)/(n-1))
		freqs[i] = f
		ks[i] = kInf - A/(1+(f/f0)*(f/f0))
	}
	c, err := NewCausalRoughness(freqs, ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, fG := range []float64{2, 4, 8, 16} {
		f := fG * 1e9
		want := A * f0 * f / (f0*f0 + f*f)
		got := imag(c.Factor(f))
		if math.Abs(got-want) > 0.04*math.Abs(want) {
			t.Errorf("f=%g GHz: Im Kc = %g, want %g (Debye closed form)", fG, got, want)
		}
	}
}

func TestCausalInterpolation(t *testing.T) {
	c, err := NewCausalRoughness(
		[]float64{1e9, 2e9, 3e9, 4e9},
		[]float64{1.1, 1.2, 1.3, 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.K(2.5e9); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("K(2.5GHz) = %g", got)
	}
	// Clamping outside the band.
	if c.K(0.1e9) != 1.1 || c.K(10e9) != 1.4 {
		t.Fatal("clamping broken")
	}
}

func TestKramersKronigAgainstAnalyticPair(t *testing.T) {
	// H(jω) = 1 + a·jω/(jω+b) is causal and minimum-phase with
	// Re H = 1 + a·ω²/(ω²+b²) and Im H = a·b·ω/(ω²+b²). Feeding Re H as
	// the "K(f)" samples must reproduce Im H. The numerical transform
	// truncates at the band edge, so compare in the middle of a wide
	// band.
	a := 0.5
	b := 2 * math.Pi * 3e9
	n := 400
	freqs := make([]float64, n)
	ks := make([]float64, n)
	for i := 0; i < n; i++ {
		f := (float64(i) + 1) * 0.25e9 // 0.25–100 GHz
		w := 2 * math.Pi * f
		freqs[i] = f
		ks[i] = 1 + a*w*w/(w*w+b*b)
	}
	c, err := NewCausalRoughness(freqs, ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, fG := range []float64{2, 3, 5, 8} {
		f := fG * 1e9
		w := 2 * math.Pi * f
		want := a * b * w / (w*w + b*b)
		got := imag(c.Factor(f))
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("f=%g GHz: Im Kc = %g, want %g", fG, got, want)
		}
	}
}

func TestCausalFactorSignsAndMagnitude(t *testing.T) {
	// For a monotonically rising K(f) the reactive part is positive
	// (added internal inductance) inside the band.
	// The sample band must extend to where K has genuinely saturated
	// (the transform treats K as constant beyond the band, and
	// truncating the rise mid-way distorts the in-band reactance).
	mat := core.PaperMaterial()
	var freqs, ks []float64
	for fG := 0.5; fG <= 400; fG += 1 {
		freqs = append(freqs, fG*1e9)
		k, err := mat.EmpiricalAt(1e-6, fG*1e9)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}
	c, err := NewCausalRoughness(freqs, ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, fG := range []float64{2, 5, 10} {
		kc := c.Factor(fG * 1e9)
		// The sign of Im Kc alone is shape-dependent (it is the Hilbert
		// transform of K − K∞); what causal physics demands is that the
		// total internal reactance of Z_int ∝ (1+j)·Kc stays inductive:
		// Re Kc + Im Kc > 0.
		if real(kc)+imag(kc) <= 0 {
			t.Errorf("f=%g GHz: internal reactance (ReKc+ImKc) = %g, want > 0", fG, real(kc)+imag(kc))
		}
		if math.Abs(imag(kc)) > real(kc) {
			t.Errorf("f=%g GHz: |reactive correction| %g exceeds resistive %g", fG, imag(kc), real(kc))
		}
	}
}

func TestRLGCCausalReducesToSmooth(t *testing.T) {
	// K_c = 1 must reproduce the smooth-line series resistance and add
	// exactly the smooth internal inductance.
	ms := fr4Line()
	f := 5 * units.GHz
	rSm, lSm, cSm, gSm := mustRLGC(t, ms, f, 1)
	r, l, c, g, err := ms.RLGCCausal(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-rSm)/rSm > 1e-12 || c != cSm || g != gSm {
		t.Fatalf("causal with Kc=1 deviates: r=%g vs %g", r, rSm)
	}
	// Internal inductance: Rs/(ω)·2/w.
	w := units.AngularFreq(f)
	wantL := lSm + rSm/w
	if math.Abs(l-wantL)/wantL > 1e-12 {
		t.Fatalf("internal inductance wrong: %g vs %g", l, wantL)
	}
}

func TestCausalInsertionLossClose(t *testing.T) {
	// The causal correction changes the phase structure but the loss
	// magnitude stays near the non-causal model.
	ms := fr4Line()
	mat := core.PaperMaterial()
	var freqs, ks []float64
	for fG := 0.5; fG <= 30; fG += 0.5 {
		freqs = append(freqs, fG*1e9)
		k, err := mat.EmpiricalAt(1.5e-6, fG*1e9)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}
	c, err := NewCausalRoughness(freqs, ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, fG := range []float64{2, 5, 10} {
		f := fG * 1e9
		causal, err := InsertionLossDBCausal(ms, 0.2, f, 50, c)
		if err != nil {
			t.Fatal(err)
		}
		naive := mustIL(t, ms, 0.2, f, 50, func(ff float64) float64 { return c.K(ff) })
		if causal <= 0 {
			t.Fatalf("f=%g GHz: non-positive causal IL %g", fG, causal)
		}
		if math.Abs(causal-naive)/naive > 0.15 {
			t.Errorf("f=%g GHz: causal IL %g vs naive %g", fG, causal, naive)
		}
	}
}
