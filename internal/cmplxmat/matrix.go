// Package cmplxmat implements the dense complex linear algebra the MoM
// solver needs: matrices in row-major storage, LU factorization with
// partial pivoting, triangular solves, and Krylov iterative solvers
// (restarted GMRES and BiCGSTAB) that work against any matrix-vector
// product, so the FFT-accelerated MoM operator can plug in without
// materializing the matrix.
package cmplxmat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense complex matrix in row-major order.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("cmplxmat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M·x, allocating y.
func (m *Matrix) MulVec(x []complex128) []complex128 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("cmplxmat: MulVec length %d != cols %d", len(x), m.Cols))
	}
	y := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns M·B, allocating the result.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("cmplxmat: Mul shape mismatch")
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MaxAbs returns the largest element magnitude (entrywise ∞-like norm).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm2 returns the Euclidean norm of a complex vector.
func Norm2(x []complex128) float64 {
	var s float64
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// HasNonFinite reports whether any entry of x carries a NaN or Inf
// component.
func HasNonFinite(x []complex128) bool {
	for _, v := range x {
		re, im := real(v), imag(v)
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			return true
		}
	}
	return false
}

// Dot returns the conjugated inner product ⟨x, y⟩ = Σ conj(x_i)·y_i.
func Dot(x, y []complex128) complex128 {
	if len(x) != len(y) {
		panic("cmplxmat: Dot length mismatch")
	}
	var s complex128
	for i, v := range x {
		s += cmplx.Conj(v) * y[i]
	}
	return s
}

// Axpy computes y += a·x in place.
func Axpy(a complex128, x, y []complex128) {
	if len(x) != len(y) {
		panic("cmplxmat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies x by a in place.
func Scale(a complex128, x []complex128) {
	for i := range x {
		x[i] *= a
	}
}

// Sub returns x − y, allocating the result.
func Sub(x, y []complex128) []complex128 {
	if len(x) != len(y) {
		panic("cmplxmat: Sub length mismatch")
	}
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}
