package cmplxmat

import (
	"errors"
	"math/cmplx"
)

// ErrSingular is returned when LU factorization meets a pivot that is
// exactly zero (the matrix is singular to working precision).
var ErrSingular = errors.New("cmplxmat: matrix is singular")

// LU holds a compact LU factorization with partial pivoting: P·A = L·U,
// with L unit-lower-triangular and U upper-triangular stored together.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factor computes the LU factorization of a square matrix A. A is not
// modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("cmplxmat: Factor requires a square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at/below the diagonal.
		p := k
		best := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu.At(i, k)); a > best {
				best, p = a, i
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b for one right-hand side, allocating x.
func (f *LU) Solve(b []complex128) []complex128 {
	n := f.lu.Rows
	if len(b) != n {
		panic("cmplxmat: LU Solve rhs length mismatch")
	}
	x := make([]complex128, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit L.
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() complex128 {
	d := complex(float64(f.sign), 0)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveDense factors A and solves A·x = b in one call (convenience for
// one-shot solves; reuse Factor for repeated right-hand sides).
func SolveDense(a *Matrix, b []complex128) ([]complex128, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
