package cmplxmat

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// MatVec is a matrix-free operator: it must write A·x into y (both of
// length n) without retaining the slices.
type MatVec func(y, x []complex128)

// IterOpts controls the Krylov solvers.
type IterOpts struct {
	Tol     float64 // relative residual target (default 1e-10)
	MaxIter int     // total matvec budget (default 10·n, at least 200)
	Restart int     // GMRES restart length (default min(n, 60))
	// Check, when non-nil, is consulted at every GMRES restart boundary
	// (and every BiCGSTAB iteration); a non-nil return aborts the solve
	// with that error and the best iterate so far. Callers use it to
	// honor context cancellation inside long solves without threading a
	// context through this package.
	Check func() error
}

func (o IterOpts) withDefaults(n int) IterOpts {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 200 {
			o.MaxIter = 200
		}
	}
	if o.Restart <= 0 {
		o.Restart = 60
	}
	if o.Restart > n {
		o.Restart = n
	}
	return o
}

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget before reaching the residual tolerance.
var ErrNoConvergence = errors.New("cmplxmat: iterative solver did not converge")

// GMRES solves A·x = b with restarted GMRES(m) using the matrix-free
// operator mv. It returns the solution and the achieved relative
// residual. x0 may be nil for a zero initial guess.
func GMRES(n int, mv MatVec, b, x0 []complex128, opts IterOpts) ([]complex128, float64, error) {
	opts = opts.withDefaults(n)
	if len(b) != n {
		panic("cmplxmat: GMRES rhs length mismatch")
	}
	x := make([]complex128, n)
	if x0 != nil {
		copy(x, x0)
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, 0, nil
	}

	m := opts.Restart
	// Arnoldi basis and Hessenberg in column-major-ish layouts.
	v := make([][]complex128, m+1)
	for i := range v {
		v[i] = make([]complex128, n)
	}
	h := make([][]complex128, m+1) // h[i][j], i row, j column
	for i := range h {
		h[i] = make([]complex128, m)
	}
	cs := make([]complex128, m)
	sn := make([]complex128, m)
	g := make([]complex128, m+1)
	w := make([]complex128, n)

	matvecs := 0
	relres := math.Inf(1)
	for matvecs < opts.MaxIter {
		if opts.Check != nil {
			if err := opts.Check(); err != nil {
				return x, relres, err
			}
		}
		// r = b − A·x
		mv(w, x)
		matvecs++
		for i := range w {
			w[i] = b[i] - w[i]
		}
		beta := Norm2(w)
		relres = beta / bnorm
		if relres <= opts.Tol {
			return x, relres, nil
		}
		inv := complex(1/beta, 0)
		for i := range w {
			v[0][i] = w[i] * inv
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = complex(beta, 0)

		j := 0
		for ; j < m && matvecs < opts.MaxIter; j++ {
			mv(w, v[j])
			matvecs++
			// Modified Gram–Schmidt.
			for i := 0; i <= j; i++ {
				hij := Dot(v[i], w)
				h[i][j] = hij
				Axpy(-hij, v[i], w)
			}
			// One reorthogonalization pass keeps the basis clean for
			// ill-conditioned MoM operators.
			for i := 0; i <= j; i++ {
				c := Dot(v[i], w)
				h[i][j] += c
				Axpy(-c, v[i], w)
			}
			hj1 := Norm2(w)
			h[j+1][j] = complex(hj1, 0)
			if hj1 > 0 {
				inv := complex(1/hj1, 0)
				for i := range w {
					v[j+1][i] = w[i] * inv
				}
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < j; i++ {
				t := cs[i]*h[i][j] + sn[i]*h[i+1][j]
				h[i+1][j] = -cmplx.Conj(sn[i])*h[i][j] + cmplx.Conj(cs[i])*h[i+1][j]
				h[i][j] = t
			}
			// New rotation eliminating h[j+1][j].
			c, s := givens(h[j][j], h[j+1][j])
			cs[j], sn[j] = c, s
			h[j][j] = c*h[j][j] + s*h[j+1][j]
			h[j+1][j] = 0
			g[j+1] = -cmplx.Conj(s) * g[j]
			g[j] = c * g[j]
			relres = cmplx.Abs(g[j+1]) / bnorm
			if relres <= opts.Tol || hj1 == 0 {
				j++
				break
			}
		}
		// Solve the j×j triangular system and update x.
		y := make([]complex128, j)
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			for k := i + 1; k < j; k++ {
				s -= h[i][k] * y[k]
			}
			if h[i][i] == 0 {
				return x, relres, fmt.Errorf("%w: GMRES breakdown (zero diagonal)", ErrNoConvergence)
			}
			y[i] = s / h[i][i]
		}
		for i := 0; i < j; i++ {
			Axpy(y[i], v[i], x)
		}
		if relres <= opts.Tol {
			// Recompute the true residual to guard against drift.
			mv(w, x)
			matvecs++
			for i := range w {
				w[i] = b[i] - w[i]
			}
			relres = Norm2(w) / bnorm
			if relres <= 10*opts.Tol {
				return x, relres, nil
			}
		}
	}
	return x, relres, fmt.Errorf("%w: relres=%.3e after %d matvecs", ErrNoConvergence, relres, opts.MaxIter)
}

// givens returns a complex Givens rotation (c real ≥ 0, s complex) with
// [c s; −conj(s) conj(c)]·[a; b] = [r; 0].
func givens(a, b complex128) (c, s complex128) {
	if b == 0 {
		return 1, 0
	}
	if a == 0 {
		return 0, 1
	}
	na, nb := cmplx.Abs(a), cmplx.Abs(b)
	r := math.Hypot(na, nb)
	alpha := a / complex(na, 0)
	c = complex(na/r, 0)
	s = alpha * cmplx.Conj(b) / complex(r, 0)
	return c, s
}

// BiCGSTAB solves A·x = b with the stabilized bi-conjugate gradient
// method. Cheaper per iteration than GMRES but less robust; the MoM
// solver uses it as an optional alternative.
func BiCGSTAB(n int, mv MatVec, b, x0 []complex128, opts IterOpts) ([]complex128, float64, error) {
	opts = opts.withDefaults(n)
	x := make([]complex128, n)
	if x0 != nil {
		copy(x, x0)
	}
	r := make([]complex128, n)
	mv(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, 0, nil
	}
	rhat := append([]complex128(nil), r...)
	var rho, alpha, omega complex128 = 1, 1, 1
	vv := make([]complex128, n)
	p := make([]complex128, n)
	s := make([]complex128, n)
	t := make([]complex128, n)
	relres := Norm2(r) / bnorm
	for it := 0; it < opts.MaxIter; it++ {
		if opts.Check != nil {
			if err := opts.Check(); err != nil {
				return x, relres, err
			}
		}
		if relres <= opts.Tol {
			return x, relres, nil
		}
		rhoNew := Dot(rhat, r)
		if rhoNew == 0 {
			return x, relres, fmt.Errorf("%w: BiCGSTAB breakdown (rho=0)", ErrNoConvergence)
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*vv[i])
		}
		mv(vv, p)
		den := Dot(rhat, vv)
		if den == 0 {
			return x, relres, fmt.Errorf("%w: BiCGSTAB breakdown (rhat·v=0)", ErrNoConvergence)
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*vv[i]
		}
		if Norm2(s)/bnorm <= opts.Tol {
			Axpy(alpha, p, x)
			relres = Norm2(s) / bnorm
			return x, relres, nil
		}
		mv(t, s)
		tt := Dot(t, t)
		if tt == 0 {
			return x, relres, fmt.Errorf("%w: BiCGSTAB breakdown (t=0)", ErrNoConvergence)
		}
		omega = Dot(t, s) / tt
		for i := range x {
			x[i] += alpha*p[i] + omega*s[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		relres = Norm2(r) / bnorm
	}
	return x, relres, fmt.Errorf("%w: relres=%.3e", ErrNoConvergence, relres)
}
