package cmplxmat

import (
	"errors"
	"testing"
)

// TestIterCheckAbortsSolvers exercises the IterOpts.Check hook both
// solvers consult: a failing check must abort the solve with the
// check's error, and a passing one must leave convergence untouched.
func TestIterCheckAbortsSolvers(t *testing.T) {
	n := 8
	mv := func(y, x []complex128) {
		for i := range y {
			y[i] = complex(2+float64(i), 0) * x[i]
		}
	}
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(1, 1)
	}
	sentinel := errors.New("drain requested")
	fail := func() error { return sentinel }

	if _, _, err := GMRES(n, mv, b, nil, IterOpts{Tol: 1e-12, Check: fail}); !errors.Is(err, sentinel) {
		t.Fatalf("GMRES with failing check returned %v, want sentinel", err)
	}
	if _, _, err := BiCGSTAB(n, mv, b, nil, IterOpts{Tol: 1e-12, Check: fail}); !errors.Is(err, sentinel) {
		t.Fatalf("BiCGSTAB with failing check returned %v, want sentinel", err)
	}

	pass := func() error { return nil }
	if _, rr, err := GMRES(n, mv, b, nil, IterOpts{Tol: 1e-12, Check: pass}); err != nil || rr > 1e-12 {
		t.Fatalf("GMRES with passing check: err=%v relres=%g", err, rr)
	}
	if _, rr, err := BiCGSTAB(n, mv, b, nil, IterOpts{Tol: 1e-12, Check: pass}); err != nil || rr > 1e-12 {
		t.Fatalf("BiCGSTAB with passing check: err=%v relres=%g", err, rr)
	}
}
