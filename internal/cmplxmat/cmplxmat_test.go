package cmplxmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func residual(a *Matrix, x, b []complex128) float64 {
	r := a.MulVec(x)
	for i := range r {
		r[i] -= b[i]
	}
	return Norm2(r) / Norm2(b)
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 8, 25, 60} {
		a := randomMatrix(rng, n)
		b := randomVec(rng, n)
		x, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := residual(a, x, b); r > 1e-10 {
			t.Errorf("n=%d: residual %g", n, r)
		}
	}
}

func TestLUReuseFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 20
	a := randomMatrix(rng, n)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		b := randomVec(rng, n)
		x := f.Solve(b)
		if r := residual(a, x, b); r > 1e-10 {
			t.Errorf("rhs %d: residual %g", k, r)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := New(3, 3)
	// Rank-1 matrix.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, complex(float64(i+1)*float64(j+1), 0))
		}
	}
	if _, err := Factor(a); err == nil {
		t.Fatal("expected ErrSingular for a rank-1 matrix")
	}
}

func TestLUDeterminant(t *testing.T) {
	// 2x2 with known determinant.
	a := New(2, 2)
	a.Set(0, 0, complex(1, 1))
	a.Set(0, 1, complex(2, 0))
	a.Set(1, 0, complex(0, 1))
	a.Set(1, 1, complex(3, -1))
	want := complex(1, 1)*complex(3, -1) - complex(2, 0)*complex(0, 1)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := cmplx.Abs(f.Det()-want) / cmplx.Abs(want); d > 1e-12 {
		t.Fatalf("det = %v, want %v", f.Det(), want)
	}
}

func TestLUIdentity(t *testing.T) {
	n := 7
	a := New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(float64(i), -float64(i))
	}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != b[i] {
			t.Fatalf("identity solve x[%d]=%v want %v", i, x[i], b[i])
		}
	}
}

func TestGMRESDenseOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{5, 30, 80} {
		// Diagonally dominant to keep GMRES honest without preconditioning.
		a := randomMatrix(rng, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, complex(float64(n), float64(n)/2))
		}
		b := randomVec(rng, n)
		mv := func(y, x []complex128) { copy(y, a.MulVec(x)) }
		x, rr, err := GMRES(n, mv, b, nil, IterOpts{Tol: 1e-11})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := residual(a, x, b); r > 1e-9 {
			t.Errorf("n=%d: true residual %g (reported %g)", n, r, rr)
		}
	}
}

func TestGMRESMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 40
	a := randomMatrix(rng, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, complex(8, 0))
	}
	b := randomVec(rng, n)
	xd, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mv := func(y, x []complex128) { copy(y, a.MulVec(x)) }
	xi, _, err := GMRES(n, mv, b, nil, IterOpts{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	diff := Sub(xd, xi)
	if Norm2(diff)/Norm2(xd) > 1e-9 {
		t.Fatalf("GMRES vs LU mismatch: %g", Norm2(diff)/Norm2(xd))
	}
}

func TestGMRESRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 50
	a := randomMatrix(rng, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, complex(12, 3))
	}
	b := randomVec(rng, n)
	mv := func(y, x []complex128) { copy(y, a.MulVec(x)) }
	// Force multiple restarts with a short Krylov space.
	x, _, err := GMRES(n, mv, b, nil, IterOpts{Tol: 1e-10, Restart: 5, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-8 {
		t.Fatalf("restarted GMRES residual %g", r)
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	n := 10
	mv := func(y, x []complex128) { copy(y, x) }
	x, rr, err := GMRES(n, mv, make([]complex128, n), nil, IterOpts{})
	if err != nil || rr != 0 {
		t.Fatalf("zero rhs: err=%v rr=%g", err, rr)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

func TestBiCGSTAB(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 60
	a := randomMatrix(rng, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, complex(15, 5))
	}
	b := randomVec(rng, n)
	mv := func(y, x []complex128) { copy(y, a.MulVec(x)) }
	x, _, err := BiCGSTAB(n, mv, b, nil, IterOpts{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-8 {
		t.Fatalf("BiCGSTAB residual %g", r)
	}
}

func TestDotAxpyProperties(t *testing.T) {
	// ⟨x, x⟩ = ‖x‖² and Axpy linearity, property-based.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		x := randomVec(rng, n)
		y := randomVec(rng, n)
		nx := Norm2(x)
		if math.Abs(real(Dot(x, x))-nx*nx) > 1e-9*(1+nx*nx) {
			return false
		}
		if math.Abs(imag(Dot(x, x))) > 1e-9*(1+nx*nx) {
			return false
		}
		// (x−y) + y == x via Axpy.
		d := Sub(x, y)
		Axpy(1, y, d)
		return Norm2(Sub(d, x)) <= 1e-9*(1+nx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 12)
	b := randomMatrix(rng, 12)
	x := randomVec(rng, 12)
	// (A·B)·x == A·(B·x)
	lhs := a.Mul(b).MulVec(x)
	rhs := a.MulVec(b.MulVec(x))
	if Norm2(Sub(lhs, rhs))/Norm2(rhs) > 1e-12 {
		t.Fatal("matrix multiply is inconsistent with matvec composition")
	}
}

func TestGivensProperty(t *testing.T) {
	f := func(ar, ai, br, bi float64) bool {
		a := complex(math.Mod(ar, 5), math.Mod(ai, 5))
		b := complex(math.Mod(br, 5), math.Mod(bi, 5))
		c, s := givens(a, b)
		// Unitary: |c|² + |s|² = 1.
		if math.Abs(cmplx.Abs(c)*cmplx.Abs(c)+cmplx.Abs(s)*cmplx.Abs(s)-1) > 1e-12 {
			return false
		}
		// Elimination: −conj(s)·a + conj(c)·b == 0.
		elim := -cmplx.Conj(s)*a + cmplx.Conj(c)*b
		return cmplx.Abs(elim) <= 1e-10*(1+cmplx.Abs(a)+cmplx.Abs(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
