// Package trace is the per-request observability layer of roughsimd: a
// lightweight, dependency-free span tracer that answers "where did this
// sweep spend its time" — queue wait vs. surface synthesis vs.
// Green's-function table builds vs. MoM assembly vs. the resilient
// solve chain vs. the PC surrogate fit.
//
// It deliberately mirrors the design constraints of internal/telemetry:
//
//  1. Optionality. Spans propagate through context.Context; a context
//     without a trace yields nil spans whose methods are no-ops, so the
//     solver core pays nothing when tracing is off (library use).
//  2. Boundedness. The span tree of one trace is capped (overflow spans
//     are detached: they still feed the per-stage aggregate but are not
//     retained individually) and the Recorder keeps only a ring of the
//     most recent traces.
//  3. Monotonic timing. All durations come from time.Time values carrying
//     Go's monotonic clock reading, so spans are immune to wall-clock
//     steps.
//
// One trace is created per sweep job (ID = job ID) by the jobs queue;
// the server serves the full span tree at /debug/trace/{id} and folds
// the compact per-stage rollup into job status payloads.
package trace

import (
	"context"
	"sort"
	"sync"
	"time"
)

// maxSpans bounds the retained span tree of one trace. Spans started
// past the cap are detached — timed and folded into the per-stage
// aggregate, but not linked into the tree — so a pathological sweep
// (every (frequency × node) unit solving) cannot balloon one trace.
const maxSpans = 2048

// Attr is one key/value annotation on a span (solve winner, anchor
// count, cache hit…). Values should be JSON-marshalable.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed stage of a trace. A nil *Span is a valid no-op:
// every method returns immediately, so instrumented code never branches
// on whether tracing is enabled.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
	detached bool
}

// stageAgg accumulates per-name totals across every span of a trace —
// including detached overflow spans — so the compact job-status rollup
// is complete even when the tree is truncated.
type stageAgg struct {
	count int64
	dur   time.Duration
}

// Trace is the span tree of one unit of work (one sweep job). All
// methods are safe for concurrent use; a nil *Trace is a valid no-op.
type Trace struct {
	id    string
	begin time.Time

	mu      sync.Mutex
	root    *Span
	nspans  int
	dropped int64
	stages  map[string]*stageAgg
}

// New starts a trace whose root span is named "job". The root ends at
// Finish.
func New(id string) *Trace {
	tr := &Trace{id: id, begin: time.Now(), stages: map[string]*stageAgg{}}
	tr.root = &Span{tr: tr, name: "job", start: tr.begin}
	tr.nspans = 1
	return tr
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span (idempotent).
func (t *Trace) Finish() { t.Root().End() }

// StartChild starts a sub-span of s. On a nil receiver it returns nil,
// so instrumentation composes without branching. Children may be
// started concurrently from multiple goroutines.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	tr := s.tr
	c := &Span{tr: tr, name: name, start: time.Now()}
	tr.mu.Lock()
	if tr.nspans >= maxSpans {
		tr.dropped++
		c.detached = true
	} else {
		tr.nspans++
		s.children = append(s.children, c)
	}
	tr.mu.Unlock()
	return c
}

// End stops the span's clock and folds it into the trace's per-stage
// aggregate (idempotent, nil-safe).
func (s *Span) End() {
	if s == nil {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !s.end.IsZero() {
		return
	}
	s.end = time.Now()
	agg := tr.stages[s.name]
	if agg == nil {
		agg = &stageAgg{}
		tr.stages[s.name] = agg
	}
	agg.count++
	agg.dur += s.end.Sub(s.start)
}

// SetAttr annotates the span (nil-safe). A repeated key keeps the last
// value.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the current span, or nil when ctx carries no
// trace.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's current span and returns a
// derived context carrying it. On an untraced context it returns (ctx,
// nil) without allocating, so library call paths pay (almost) nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	cur := SpanFromContext(ctx)
	if cur == nil {
		return ctx, nil
	}
	s := cur.StartChild(name)
	if s == nil || s.detached {
		// Overflow spans still time their stage but are not the current
		// span of anything: their children would be dropped anyway.
		return ctx, s
	}
	return ContextWithSpan(ctx, s), s
}

// SpanSummary is the JSON shape of one span. Offsets and durations are
// seconds relative to the trace begin; a span still running reports its
// duration so far with InProgress set.
type SpanSummary struct {
	Name            string         `json:"name"`
	StartSeconds    float64        `json:"start_s"`
	DurationSeconds float64        `json:"duration_s"`
	InProgress      bool           `json:"in_progress,omitempty"`
	Attrs           map[string]any `json:"attrs,omitempty"`
	Children        []*SpanSummary `json:"children,omitempty"`
}

// StageTotal is the per-stage rollup entry: how many spans of this name
// ran and their total time, across the whole trace (including spans
// dropped from the tree).
type StageTotal struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Summary is the full point-in-time export of a trace.
type Summary struct {
	ID              string       `json:"id"`
	Begin           time.Time    `json:"begin"`
	DurationSeconds float64      `json:"duration_s"`
	SpansDropped    int64        `json:"spans_dropped,omitempty"`
	Stages          []StageTotal `json:"stages"`
	Spans           *SpanSummary `json:"spans"`
}

// StageSummary is the compact rollup embedded in job status payloads.
type StageSummary struct {
	ID              string       `json:"id"`
	DurationSeconds float64      `json:"duration_s"`
	Stages          []StageTotal `json:"stages"`
}

// Summary exports the trace (nil-safe: nil on a nil trace). Safe to
// call while the trace is still running.
func (t *Trace) Summary() *Summary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	return &Summary{
		ID:              t.id,
		Begin:           t.begin,
		DurationSeconds: t.root.durationLocked(now).Seconds(),
		SpansDropped:    t.dropped,
		Stages:          t.stagesLocked(),
		Spans:           t.root.summaryLocked(t.begin, now),
	}
}

// Stages exports the compact per-stage rollup (nil-safe).
func (t *Trace) Stages() *StageSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &StageSummary{
		ID:              t.id,
		DurationSeconds: t.root.durationLocked(time.Now()).Seconds(),
		Stages:          t.stagesLocked(),
	}
}

// stagesLocked snapshots the aggregate sorted by name (deterministic
// JSON). Caller holds t.mu.
func (t *Trace) stagesLocked() []StageTotal {
	out := make([]StageTotal, 0, len(t.stages))
	for name, agg := range t.stages {
		out = append(out, StageTotal{Name: name, Count: agg.count, Seconds: agg.dur.Seconds()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// durationLocked returns the span's duration, using now for a span
// still running. Caller holds tr.mu.
func (s *Span) durationLocked(now time.Time) time.Duration {
	if s.end.IsZero() {
		return now.Sub(s.start)
	}
	return s.end.Sub(s.start)
}

// summaryLocked exports the subtree rooted at s. Caller holds tr.mu.
func (s *Span) summaryLocked(begin, now time.Time) *SpanSummary {
	out := &SpanSummary{
		Name:            s.name,
		StartSeconds:    s.start.Sub(begin).Seconds(),
		DurationSeconds: s.durationLocked(now).Seconds(),
		InProgress:      s.end.IsZero(),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.summaryLocked(begin, now))
	}
	return out
}

// Recorder keeps the most recent traces in a bounded ring, keyed by
// trace ID. A nil *Recorder is a valid no-op source of nil traces.
type Recorder struct {
	mu       sync.Mutex
	capacity int
	order    []string // oldest first
	byID     map[string]*Trace
}

// DefaultRecorderCap bounds a recorder built with capacity ≤ 0.
const DefaultRecorderCap = 128

// NewRecorder builds a ring holding up to capacity traces
// (DefaultRecorderCap when capacity ≤ 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{capacity: capacity, byID: map[string]*Trace{}}
}

// New creates and registers a trace, evicting the oldest past capacity
// (nil-safe: returns nil on a nil recorder).
func (r *Recorder) New(id string) *Trace {
	if r == nil {
		return nil
	}
	tr := New(id)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; !ok {
		r.order = append(r.order, id)
	}
	r.byID[id] = tr
	for len(r.order) > r.capacity {
		delete(r.byID, r.order[0])
		r.order = r.order[1:]
	}
	return tr
}

// Remove drops a trace from the ring (a job rejected after its trace
// was created). Nil-safe; unknown IDs are ignored.
func (r *Recorder) Remove(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; !ok {
		return
	}
	delete(r.byID, id)
	for i, v := range r.order {
		if v == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// Get returns the trace with the given ID, or nil.
func (r *Recorder) Get(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Recent returns the compact rollups of the most recent traces, newest
// first, at most n (all retained traces when n ≤ 0).
func (r *Recorder) Recent(n int) []*StageSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	r.mu.Unlock()
	if n <= 0 || n > len(ids) {
		n = len(ids)
	}
	out := make([]*StageSummary, 0, n)
	for i := len(ids) - 1; i >= 0 && len(out) < n; i-- {
		if tr := r.Get(ids[i]); tr != nil {
			out = append(out, tr.Stages())
		}
	}
	return out
}
