package trace

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Trace
	tr.Finish()
	if tr.Summary() != nil || tr.Stages() != nil || tr.ID() != "" {
		t.Fatal("nil trace should export nothing")
	}
	var sp *Span
	sp.End()
	sp.SetAttr("k", 1)
	if c := sp.StartChild("x"); c != nil {
		t.Fatalf("nil span child = %v", c)
	}
	var rec *Recorder
	if rec.New("a") != nil || rec.Get("a") != nil || rec.Recent(5) != nil {
		t.Fatal("nil recorder should be a no-op")
	}
	// An untraced context starts no spans and allocates no trace.
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "stage")
	if s != nil || ctx2 != ctx {
		t.Fatal("untraced context must stay untraced")
	}
}

func TestSpanTreeAndStages(t *testing.T) {
	tr := New("job-1")
	ctx := ContextWithSpan(context.Background(), tr.Root())

	ctx1, a := StartSpan(ctx, "assemble")
	_, a1 := StartSpan(ctx1, "tables.build")
	a1.SetAttr("hit", false)
	time.Sleep(time.Millisecond)
	a1.End()
	a.End()
	_, b := StartSpan(ctx, "solve")
	b.SetAttr("winner", "gmres")
	b.SetAttr("winner", "lu") // last wins
	b.End()
	tr.Finish()

	sum := tr.Summary()
	if sum.ID != "job-1" || sum.Spans == nil || sum.Spans.Name != "job" {
		t.Fatalf("summary root: %+v", sum)
	}
	if len(sum.Spans.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(sum.Spans.Children))
	}
	asm := sum.Spans.Children[0]
	if asm.Name != "assemble" || len(asm.Children) != 1 || asm.Children[0].Name != "tables.build" {
		t.Fatalf("nesting wrong: %+v", asm)
	}
	if asm.Children[0].DurationSeconds <= 0 || asm.DurationSeconds < asm.Children[0].DurationSeconds {
		t.Fatalf("child duration must be positive and ≤ parent: %+v", asm)
	}
	if got := sum.Spans.Children[1].Attrs["winner"]; got != "lu" {
		t.Fatalf("attr = %v, want lu", got)
	}
	stages := map[string]StageTotal{}
	for _, st := range sum.Stages {
		stages[st.Name] = st
	}
	for _, name := range []string{"job", "assemble", "tables.build", "solve"} {
		if stages[name].Count != 1 {
			t.Fatalf("stage %q count = %d, want 1 (%+v)", name, stages[name].Count, sum.Stages)
		}
	}
	if _, err := json.Marshal(sum); err != nil {
		t.Fatalf("summary not JSON-marshalable: %v", err)
	}
}

func TestEndIsIdempotentAndInProgress(t *testing.T) {
	tr := New("j")
	_, s := StartSpan(ContextWithSpan(context.Background(), tr.Root()), "stage")
	// A summary of a running trace reports in-progress spans.
	sum := tr.Summary()
	if !sum.Spans.InProgress || !sum.Spans.Children[0].InProgress {
		t.Fatalf("running spans should be in progress: %+v", sum.Spans)
	}
	s.End()
	d1 := tr.Summary().Spans.Children[0].DurationSeconds
	time.Sleep(2 * time.Millisecond)
	s.End() // must not extend
	d2 := tr.Summary().Spans.Children[0].DurationSeconds
	if d1 != d2 {
		t.Fatalf("double End extended the span: %g vs %g", d1, d2)
	}
}

// TestSpanCapDetachesButAggregates floods one trace past maxSpans: the
// tree must stay bounded while the per-stage aggregate counts every
// span.
func TestSpanCapDetachesButAggregates(t *testing.T) {
	tr := New("big")
	n := maxSpans + 500
	for i := 0; i < n; i++ {
		sp := tr.Root().StartChild("unit")
		sp.End()
	}
	tr.Finish()
	sum := tr.Summary()
	if len(sum.Spans.Children) != maxSpans-1 {
		t.Fatalf("retained children = %d, want %d", len(sum.Spans.Children), maxSpans-1)
	}
	if sum.SpansDropped != int64(n-(maxSpans-1)) {
		t.Fatalf("dropped = %d, want %d", sum.SpansDropped, n-(maxSpans-1))
	}
	var units StageTotal
	for _, st := range sum.Stages {
		if st.Name == "unit" {
			units = st
		}
	}
	if units.Count != int64(n) {
		t.Fatalf("aggregate count = %d, want %d (dropped spans must still aggregate)", units.Count, n)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("conc")
	ctx := ContextWithSpan(context.Background(), tr.Root())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, sp := StartSpan(ctx, "solve")
				sp.SetAttr("w", w)
				_, inner := StartSpan(c, "inner")
				inner.End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	tr.Finish()
	sum := tr.Summary()
	stages := map[string]StageTotal{}
	for _, st := range sum.Stages {
		stages[st.Name] = st
	}
	if stages["solve"].Count != 400 || stages["inner"].Count != 400 {
		t.Fatalf("concurrent aggregate: %+v", sum.Stages)
	}
}

func TestRecorderRing(t *testing.T) {
	rec := NewRecorder(2)
	rec.New("a").Finish()
	rec.New("b").Finish()
	rec.New("c").Finish()
	if rec.Get("a") != nil {
		t.Fatal("oldest trace should be evicted")
	}
	if rec.Get("b") == nil || rec.Get("c") == nil {
		t.Fatal("recent traces missing")
	}
	recent := rec.Recent(0)
	if len(recent) != 2 || recent[0].ID != "c" || recent[1].ID != "b" {
		t.Fatalf("recent order: %+v", recent)
	}
	if one := rec.Recent(1); len(one) != 1 || one[0].ID != "c" {
		t.Fatalf("recent(1): %+v", one)
	}
}
