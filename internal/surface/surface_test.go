package surface

import (
	"math"
	"testing"

	"roughsim/internal/quadrature"
	"roughsim/internal/rng"
)

const um = 1e-6

func TestGaussianCorrBasics(t *testing.T) {
	c := NewGaussianCorr(1*um, 2*um)
	if math.Abs(c.At(0)-um*um) > 1e-30 {
		t.Fatalf("C(0) = %g, want σ²", c.At(0))
	}
	// At d = η the CF is σ²/e.
	if got, want := c.At(2*um), um*um/math.E; math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("C(η) = %g, want %g", got, want)
	}
	if c.At(20*um) > 1e-40 {
		t.Fatal("CF must vanish at large lags")
	}
}

func TestPSDNormalization(t *testing.T) {
	// σ² = 2π·∫₀^∞ W(k)·k dk for every CF.
	cases := []struct {
		c   Corr
		tol float64
	}{
		{NewGaussianCorr(1*um, 1*um), 1e-6},
		{NewGaussianCorr(0.5*um, 3*um), 1e-6},
		// The exponential PSD decays only like k⁻³, so the truncated
		// integral misses an O(σ²/(ηK)) tail ≈ 1.1% at K = 60/μm.
		{NewExpCorr(1*um, 1.5*um), 0.02},
	}
	for _, tc := range cases {
		c := tc.c
		upper := 60.0 / (1 * um)
		var sum float64
		n := 400
		for i := 0; i < n; i++ {
			r := quadrature.GaussLegendreOn(8, float64(i)*upper/float64(n), float64(i+1)*upper/float64(n))
			sum += r.Integrate(func(k float64) float64 { return c.PSD(k) * k })
		}
		got := 2 * math.Pi * sum
		want := c.Sigma() * c.Sigma()
		if math.Abs(got-want)/want > tc.tol {
			t.Errorf("%s: ∫PSD = %g, want σ² = %g", c.Name(), got, want)
		}
	}
}

func TestMeasuredCorrPSD(t *testing.T) {
	c := NewMeasuredCorr(1*um, 1.4*um, 0.53*um)
	if math.Abs(c.At(0)-um*um) > 1e-30 {
		t.Fatal("C(0) ≠ σ²")
	}
	// PSD non-negative at sample wavenumbers and integrates to ~σ².
	upper := 30.0 / um
	var sum float64
	n := 150
	for i := 0; i < n; i++ {
		r := quadrature.GaussLegendreOn(6, float64(i)*upper/float64(n), float64(i+1)*upper/float64(n))
		sum += r.Integrate(func(k float64) float64 {
			w := c.PSD(k)
			if w < -1e-22 {
				t.Fatalf("PSD negative at k=%g: %g", k, w)
			}
			if w < 0 {
				w = 0
			}
			return w * k
		})
	}
	got := 2 * math.Pi * sum
	want := um * um
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("CF(12) PSD integral %g, want ≈ %g", got, want)
	}
}

func TestKLTotalVariance(t *testing.T) {
	c := NewGaussianCorr(1*um, 1*um)
	kl := NewKL(c, 5*um, 24)
	got := kl.TotalVariance()
	want := um * um
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("KL total variance %g, want σ² = %g", got, want)
	}
}

func TestKLCapturedVarianceMonotone(t *testing.T) {
	kl := NewKL(NewGaussianCorr(1*um, 1*um), 5*um, 16)
	prev := 0.0
	for d := 1; d <= len(kl.Modes); d += 7 {
		f := kl.CapturedVariance(d)
		if f < prev-1e-12 || f > 1+1e-9 {
			t.Fatalf("captured variance not monotone in [0,1]: d=%d f=%g prev=%g", d, f, prev)
		}
		prev = f
	}
	if math.Abs(kl.CapturedVariance(len(kl.Modes))-1) > 1e-9 {
		t.Fatal("full truncation must capture all variance")
	}
}

func TestKLTruncationForVariance(t *testing.T) {
	kl := NewKL(NewGaussianCorr(1*um, 1*um), 5*um, 20)
	d := kl.TruncationForVariance(0.9)
	if d <= 0 || d > len(kl.Modes) {
		t.Fatalf("truncation %d out of range", d)
	}
	if kl.CapturedVariance(d) < 0.9 || (d > 1 && kl.CapturedVariance(d-1) >= 0.9) {
		t.Fatalf("TruncationForVariance(0.9) = %d is not minimal", d)
	}
}

func TestKLSingleModeRMS(t *testing.T) {
	// A unit coordinate on mode j yields a surface with RMS = √(λ_j)/M.
	kl := NewKL(NewGaussianCorr(1*um, 1*um), 5*um, 16)
	for j := 0; j < 5; j++ {
		xi := make([]float64, j+1)
		xi[j] = 1
		s := kl.Synthesize(xi)
		want := math.Sqrt(kl.Modes[j].Lambda) / 16
		if got := s.RMS(); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("mode %d RMS %g, want %g", j, got, want)
		}
	}
}

func TestKLModeOrthogonality(t *testing.T) {
	kl := NewKL(NewGaussianCorr(1*um, 2*um), 8*um, 12)
	// Build grid samples of a handful of modes and verify orthonormality.
	nm := 8
	vecs := make([][]float64, nm)
	for j := 0; j < nm; j++ {
		xi := make([]float64, j+1)
		xi[j] = 1
		s := kl.Synthesize(xi)
		v := make([]float64, len(s.H))
		scale := math.Sqrt(kl.Modes[j].Lambda)
		for i, h := range s.H {
			v[i] = h / scale
		}
		vecs[j] = v
	}
	for a := 0; a < nm; a++ {
		for b := a; b < nm; b++ {
			var dot float64
			for i := range vecs[a] {
				dot += vecs[a][i] * vecs[b][i]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Errorf("⟨v%d,v%d⟩ = %g, want %g", a, b, dot, want)
			}
		}
	}
}

func TestSampleStatistics(t *testing.T) {
	// Full-rank samples must reproduce σ² and the CF shape.
	c := NewGaussianCorr(1*um, 1*um)
	L := 5 * um
	M := 16
	kl := NewKL(c, L, M)
	src := rng.New(1234)
	const nSamp = 300
	var varSum float64
	corrSum := make([]float64, M/2+1)
	for s := 0; s < nSamp; s++ {
		surf := kl.Sample(src)
		for i, v := range surf.CorrEstimate() {
			corrSum[i] += v
		}
		r := surf.RMS()
		varSum += r * r
	}
	meanVar := varSum / nSamp
	if math.Abs(meanVar-um*um)/(um*um) > 0.1 {
		t.Errorf("sample variance %g, want ≈ %g", meanVar, um*um)
	}
	h := L / float64(M)
	for lag := 0; lag <= M/4; lag++ {
		got := corrSum[lag] / nSamp
		want := c.At(float64(lag) * h)
		if math.Abs(got-want) > 0.12*um*um {
			t.Errorf("lag %d: empirical C %g, target %g", lag, got, want)
		}
	}
}

func TestKLMatchesDenseCovariance(t *testing.T) {
	// The circulant eigenvalues must agree with a brute-force check:
	// C·v = λ·v for the dense periodic covariance matrix and the
	// synthesized mode vector.
	c := NewGaussianCorr(1*um, 1.3*um)
	L := 6 * um
	M := 8
	kl := NewKL(c, L, M)
	n := M * M
	h := L / float64(M)
	cov := make([]float64, n*n)
	for p := 0; p < n; p++ {
		py, px := p/M, p%M
		for q := 0; q < n; q++ {
			qy, qx := q/M, q%M
			dx := minImage(((px-qx)%M+M)%M, M) * h
			dy := minImage(((py-qy)%M+M)%M, M) * h
			cov[p*n+q] = c.At(math.Hypot(dx, dy))
		}
	}
	for j := 0; j < 6; j++ {
		xi := make([]float64, j+1)
		xi[j] = 1
		s := kl.Synthesize(xi)
		scale := math.Sqrt(kl.Modes[j].Lambda)
		var resid, nrm float64
		for p := 0; p < n; p++ {
			var cv float64
			for q := 0; q < n; q++ {
				cv += cov[p*n+q] * s.H[q] / scale
			}
			d := cv - kl.Modes[j].Lambda*s.H[p]/scale
			resid += d * d
			nrm += cv * cv
		}
		if math.Sqrt(resid) > 1e-8*math.Sqrt(nrm) {
			t.Errorf("mode %d: |Cv−λv|/|Cv| = %g", j, math.Sqrt(resid/nrm))
		}
	}
}

func TestGradientsSpectralAccuracy(t *testing.T) {
	// For a single Fourier mode surface the gradient is analytic.
	L := 5 * um
	M := 32
	s := NewFlat(L, M)
	kx := 2 * math.Pi * 2 / L
	ky := 2 * math.Pi * 1 / L
	amp := 0.3 * um
	for iy := 0; iy < M; iy++ {
		for ix := 0; ix < M; ix++ {
			x := float64(ix) * s.Step()
			y := float64(iy) * s.Step()
			s.H[iy*M+ix] = amp * math.Cos(kx*x+ky*y)
		}
	}
	fx, fy := s.Gradients()
	for iy := 0; iy < M; iy++ {
		for ix := 0; ix < M; ix++ {
			x := float64(ix) * s.Step()
			y := float64(iy) * s.Step()
			wx := -amp * kx * math.Sin(kx*x+ky*y)
			wy := -amp * ky * math.Sin(kx*x+ky*y)
			if math.Abs(fx[iy*M+ix]-wx) > 1e-9*amp*kx || math.Abs(fy[iy*M+ix]-wy) > 1e-9*amp*kx {
				t.Fatalf("gradient mismatch at (%d,%d)", ix, iy)
			}
		}
	}
}

func TestHalfSpheroid(t *testing.T) {
	L := 40 * um
	M := 64
	h := 5.8 * um
	a := 4.7 * um
	s := HalfSpheroid(L, M, h, a)
	// Peak at center.
	cx := M / 2
	if got := s.H[cx*M+cx]; math.Abs(got-h)/h > 1e-12 {
		t.Fatalf("peak height %g, want %g", got, h)
	}
	// Zero outside the base.
	if s.H[0] != 0 {
		t.Fatal("corner height should be 0")
	}
	// Height never negative nor above h.
	for _, v := range s.H {
		if v < 0 || v > h {
			t.Fatalf("height %g out of range", v)
		}
	}
}

func TestHalfSpheroidTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for spheroid not fitting the patch")
		}
	}()
	HalfSpheroid(10*um, 16, 1*um, 6*um)
}

func TestKL1DVarianceAndSampling(t *testing.T) {
	c := NewGaussianCorr(1*um, 1*um)
	kl := NewKL1D(c, 5*um, 64)
	if got := kl.TotalVariance(); math.Abs(got-um*um)/(um*um) > 0.01 {
		t.Fatalf("1D KL total variance %g", got)
	}
	src := rng.New(99)
	var varSum float64
	const nSamp = 400
	for i := 0; i < nSamp; i++ {
		p := kl.Sample(src)
		r := p.RMS()
		varSum += r * r
	}
	if got := varSum / nSamp; math.Abs(got-um*um)/(um*um) > 0.1 {
		t.Fatalf("1D sample variance %g", got)
	}
}

func TestProfileGradient(t *testing.T) {
	L := 5 * um
	M := 64
	p := NewFlatProfile(L, M)
	k := 2 * math.Pi * 3 / L
	for i := 0; i < M; i++ {
		p.H[i] = um * math.Sin(k*float64(i)*p.Step())
	}
	g := p.Gradient()
	for i := 0; i < M; i++ {
		want := um * k * math.Cos(k*float64(i)*p.Step())
		if math.Abs(g[i]-want) > 1e-9*um*k {
			t.Fatalf("profile gradient at %d: %g want %g", i, g[i], want)
		}
	}
}

func TestSurfaceAtWraps(t *testing.T) {
	s := NewFlat(1*um, 4)
	s.H[0] = 1
	if s.At(4, 0) != 1 || s.At(-4, 4) != 1 || s.At(0, -4) != 1 {
		t.Fatal("periodic indexing broken")
	}
}
