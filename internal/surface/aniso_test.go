package surface

import (
	"math"
	"testing"

	"roughsim/internal/rng"
)

func TestAnisoGaussianReducesToIso(t *testing.T) {
	iso := NewGaussianCorr(1*um, 2*um)
	ani := NewAnisoGaussianCorr(1*um, 2*um, 2*um)
	for _, d := range [][2]float64{{0, 0}, {1 * um, 0}, {0.5 * um, 1.2 * um}, {3 * um, 3 * um}} {
		want := iso.At(math.Hypot(d[0], d[1]))
		if got := ani.At2D(d[0], d[1]); math.Abs(got-want) > 1e-18 {
			t.Fatalf("At2D(%v) = %g, want %g", d, got, want)
		}
		wantW := iso.PSD(math.Hypot(d[0]/um/um, d[1]/um/um))
		_ = wantW // PSD comparison done below on a wavenumber grid
	}
	for _, k := range [][2]float64{{0, 0}, {1e6, 0}, {0.4e6, 0.9e6}} {
		want := iso.PSD(math.Hypot(k[0], k[1]))
		if got := ani.PSD2D(k[0], k[1]); math.Abs(got-want) > 1e-12*want+1e-40 {
			t.Fatalf("PSD2D(%v) = %g, want %g", k, got, want)
		}
	}
}

func TestAnisoPSDNormalization(t *testing.T) {
	// σ² = ∫∫ W dk² on a rectangular wavenumber grid.
	c := NewAnisoGaussianCorr(1*um, 1*um, 3*um)
	const n = 400
	kMaxX := 12.0 / (1 * um)
	kMaxY := 12.0 / (1 * um)
	hx := 2 * kMaxX / n
	hy := 2 * kMaxY / n
	var sum float64
	for i := 0; i < n; i++ {
		kx := -kMaxX + (float64(i)+0.5)*hx
		for j := 0; j < n; j++ {
			ky := -kMaxY + (float64(j)+0.5)*hy
			sum += c.PSD2D(kx, ky)
		}
	}
	sum *= hx * hy
	want := um * um
	if math.Abs(sum-want)/want > 1e-3 {
		t.Fatalf("∫∫W = %g, want %g", sum, want)
	}
}

func TestNewKL2DMatchesNewKLForIsotropic(t *testing.T) {
	iso := NewGaussianCorr(1*um, 1.3*um)
	a := NewKL(iso, 5*um, 12)
	b := NewKL2D(IsoCorr2D{C: iso}, 5*um, 12)
	if len(a.Modes) != len(b.Modes) {
		t.Fatalf("mode counts differ: %d vs %d", len(a.Modes), len(b.Modes))
	}
	for i := range a.Modes {
		if math.Abs(a.Modes[i].Lambda-b.Modes[i].Lambda) > 1e-9*a.Modes[0].Lambda {
			t.Fatalf("mode %d eigenvalue differs", i)
		}
	}
}

func TestAnisoKLVarianceAndDirectionality(t *testing.T) {
	// The patch must span ≥ 5 correlation lengths of the SLOWER axis for
	// the periodized spectrum to resolve the y-correlation.
	c := NewAnisoGaussianCorr(1*um, 0.8*um, 2.4*um)
	L := 12 * um
	M := 32
	kl := NewKL2D(c, L, M)
	if got := kl.TotalVariance(); math.Abs(got-um*um)/(um*um) > 0.02 {
		t.Fatalf("total variance %g", got)
	}
	// Sampled surfaces must be smoother along y (larger ηy): the RMS
	// x-slope exceeds the RMS y-slope.
	src := rng.New(77)
	var sx2, sy2 float64
	const nSamp = 60
	for s := 0; s < nSamp; s++ {
		surf := kl.Sample(src)
		fx, fy := surf.Gradients()
		for i := range fx {
			sx2 += fx[i] * fx[i]
			sy2 += fy[i] * fy[i]
		}
	}
	if sx2 <= 2*sy2 {
		t.Fatalf("anisotropy not realized: E[fx²]=%g vs E[fy²]=%g (want ratio ≈ (ηy/ηx)² = 9)", sx2, sy2)
	}
	// Theoretical ratio (ηy/ηx)² = 9 within sampling tolerance.
	ratio := sx2 / sy2
	if math.Abs(ratio-9)/9 > 0.25 {
		t.Fatalf("slope variance ratio %g, want ≈ 9", ratio)
	}
}
