// Package surface models the 3D random rough conductor surface of the
// paper: a stationary Gaussian process for the height f(x,y) over a
// doubly-periodic L×L patch, characterized by a correlation function
// (Sec. II), plus the deterministic hemispheroidal protrusions used in
// the HBM comparison (Fig. 5) and 1-D profiles for the 2D SWM variant.
package surface

import (
	"fmt"
	"math"

	"roughsim/internal/quadrature"
)

// Corr is an isotropic spatial correlation function C(d) of a stationary
// surface process, with its radial power spectral density.
type Corr interface {
	// Name identifies the CF in reports.
	Name() string
	// Sigma returns the RMS height σ (C(0) = σ²).
	Sigma() float64
	// At returns C(d) for lag distance d ≥ 0.
	At(d float64) float64
	// PSD returns W(k), the isotropic spectral density normalized so
	// that σ² = ∫∫ W(|k⊥|) d²k⊥ = 2π ∫₀^∞ W(k)·k dk.
	PSD(k float64) float64
}

// GaussianCorr is the paper's primary correlation function
// C(d) = σ²·exp(−d²/η²) with correlation length η (Fig. 2, 3, 6, 7).
type GaussianCorr struct {
	SigmaH float64 // σ, RMS height
	Eta    float64 // η, correlation length
}

// NewGaussianCorr validates and constructs a Gaussian CF.
func NewGaussianCorr(sigma, eta float64) GaussianCorr {
	if sigma <= 0 || eta <= 0 {
		panic("surface: Gaussian CF needs σ > 0, η > 0")
	}
	return GaussianCorr{SigmaH: sigma, Eta: eta}
}

func (c GaussianCorr) Name() string {
	return fmt.Sprintf("gaussian(σ=%.3g, η=%.3g)", c.SigmaH, c.Eta)
}
func (c GaussianCorr) Sigma() float64 { return c.SigmaH }

// At returns σ²·exp(−d²/η²).
func (c GaussianCorr) At(d float64) float64 {
	return c.SigmaH * c.SigmaH * math.Exp(-d*d/(c.Eta*c.Eta))
}

// PSD returns the exact transform W(k) = σ²η²/(4π)·exp(−k²η²/4).
func (c GaussianCorr) PSD(k float64) float64 {
	return c.SigmaH * c.SigmaH * c.Eta * c.Eta / (4 * math.Pi) * math.Exp(-k*k*c.Eta*c.Eta/4)
}

// ExpCorr is the exponential CF C(d) = σ²·exp(−d/η), a rougher process
// than Gaussian (non-differentiable sample paths); provided as an
// extension beyond the paper's two CFs.
type ExpCorr struct {
	SigmaH float64
	Eta    float64
}

// NewExpCorr validates and constructs an exponential CF.
func NewExpCorr(sigma, eta float64) ExpCorr {
	if sigma <= 0 || eta <= 0 {
		panic("surface: exponential CF needs σ > 0, η > 0")
	}
	return ExpCorr{SigmaH: sigma, Eta: eta}
}

func (c ExpCorr) Name() string   { return fmt.Sprintf("exp(σ=%.3g, η=%.3g)", c.SigmaH, c.Eta) }
func (c ExpCorr) Sigma() float64 { return c.SigmaH }

// At returns σ²·exp(−d/η).
func (c ExpCorr) At(d float64) float64 {
	return c.SigmaH * c.SigmaH * math.Exp(-d/c.Eta)
}

// PSD returns the exact transform σ²η²/(2π)·(1+k²η²)^(−3/2).
func (c ExpCorr) PSD(k float64) float64 {
	u := 1 + k*k*c.Eta*c.Eta
	return c.SigmaH * c.SigmaH * c.Eta * c.Eta / (2 * math.Pi) / (u * math.Sqrt(u))
}

// MeasuredCorr is the correlation function (12) extracted from the
// measurement data of Braunisch et al. [4]:
// C(d) = σ²·exp{−(d/η₁)·[1 − exp(−d/η₂)]}  (Fig. 4).
// Its PSD has no closed form and is computed by a numerically evaluated
// Hankel transform, cached on first use.
type MeasuredCorr struct {
	SigmaH     float64
	Eta1, Eta2 float64

	psdCache *hankelPSD
}

// NewMeasuredCorr constructs CF (12) with the paper's parameters when
// called as NewMeasuredCorr(1e-6, 1.4e-6, 0.53e-6).
func NewMeasuredCorr(sigma, eta1, eta2 float64) *MeasuredCorr {
	if sigma <= 0 || eta1 <= 0 || eta2 <= 0 {
		panic("surface: CF(12) needs positive σ, η₁, η₂")
	}
	c := &MeasuredCorr{SigmaH: sigma, Eta1: eta1, Eta2: eta2}
	c.psdCache = newHankelPSD(c.At, eta1+eta2)
	return c
}

func (c *MeasuredCorr) Name() string {
	return fmt.Sprintf("measured(σ=%.3g, η1=%.3g, η2=%.3g)", c.SigmaH, c.Eta1, c.Eta2)
}
func (c *MeasuredCorr) Sigma() float64 { return c.SigmaH }

// At returns C(d) per eq. (12).
func (c *MeasuredCorr) At(d float64) float64 {
	if d == 0 {
		return c.SigmaH * c.SigmaH
	}
	return c.SigmaH * c.SigmaH * math.Exp(-(d/c.Eta1)*(1-math.Exp(-d/c.Eta2)))
}

// PSD returns the numerically transformed spectral density.
func (c *MeasuredCorr) PSD(k float64) float64 { return c.psdCache.at(k) }

// hankelPSD evaluates W(k) = (1/2π)·∫₀^∞ C(d)·J₀(kd)·d dd by composite
// Gauss–Legendre panels out to many correlation lengths.
type hankelPSD struct {
	corr  func(float64) float64
	scale float64 // characteristic correlation length
}

func newHankelPSD(corr func(float64) float64, scale float64) *hankelPSD {
	return &hankelPSD{corr: corr, scale: scale}
}

func (h *hankelPSD) at(k float64) float64 {
	// Integrate to where C has decayed to ~1e−9 of C(0); CF (12) decays
	// like exp(−d/η₁) at large d, so 25·(η₁+η₂) is ample. Resolve the
	// J₀ oscillation: panel width ≤ min(scale/2, π/(2k)).
	upper := 25 * h.scale
	width := h.scale / 2
	if k > 0 {
		if w := math.Pi / (2 * k); w < width {
			width = w
		}
	}
	n := int(math.Ceil(upper / width))
	if n < 8 {
		n = 8
	}
	if n > 20000 {
		n = 20000
	}
	var sum float64
	step := upper / float64(n)
	for i := 0; i < n; i++ {
		r := quadrature.GaussLegendreOn(6, float64(i)*step, float64(i+1)*step)
		sum += r.Integrate(func(d float64) float64 { return h.corr(d) * math.J0(k*d) * d })
	}
	return sum / (2 * math.Pi)
}
