package surface

import (
	"fmt"
	"math"
)

// Corr2D generalizes Corr to anisotropic processes: the correlation is a
// function of the lag vector, not only of its magnitude. Every isotropic
// Corr is trivially a Corr2D through IsoCorr2D.
//
// Anisotropy matters in practice: rolled copper foils are smoother along
// the rolling direction than across it, so the loss enhancement depends
// on the current direction. The KL/SSCM machinery works unchanged with a
// Corr2D because the periodic-grid eigendecomposition (NewKL2D) never
// assumed isotropy.
type Corr2D interface {
	Name() string
	Sigma() float64
	// At2D returns C(dx, dy).
	At2D(dx, dy float64) float64
	// PSD2D returns W(kx, ky) with σ² = ∫∫ W dk².
	PSD2D(kx, ky float64) float64
}

// AnisoGaussianCorr is the elliptical Gaussian correlation
// C(dx, dy) = σ²·exp(−dx²/ηx² − dy²/ηy²).
type AnisoGaussianCorr struct {
	SigmaH float64
	EtaX   float64
	EtaY   float64
}

// NewAnisoGaussianCorr validates and constructs an elliptical Gaussian CF.
func NewAnisoGaussianCorr(sigma, etaX, etaY float64) AnisoGaussianCorr {
	if sigma <= 0 || etaX <= 0 || etaY <= 0 {
		panic("surface: anisotropic Gaussian CF needs positive σ, ηx, ηy")
	}
	return AnisoGaussianCorr{SigmaH: sigma, EtaX: etaX, EtaY: etaY}
}

func (c AnisoGaussianCorr) Name() string {
	return fmt.Sprintf("aniso-gaussian(σ=%.3g, ηx=%.3g, ηy=%.3g)", c.SigmaH, c.EtaX, c.EtaY)
}

// Sigma returns the RMS height.
func (c AnisoGaussianCorr) Sigma() float64 { return c.SigmaH }

// At2D returns C(dx, dy).
func (c AnisoGaussianCorr) At2D(dx, dy float64) float64 {
	return c.SigmaH * c.SigmaH *
		math.Exp(-dx*dx/(c.EtaX*c.EtaX)-dy*dy/(c.EtaY*c.EtaY))
}

// PSD2D returns the exact transform
// W = σ²·ηx·ηy/(4π)·exp(−kx²ηx²/4 − ky²ηy²/4).
func (c AnisoGaussianCorr) PSD2D(kx, ky float64) float64 {
	return c.SigmaH * c.SigmaH * c.EtaX * c.EtaY / (4 * math.Pi) *
		math.Exp(-kx*kx*c.EtaX*c.EtaX/4-ky*ky*c.EtaY*c.EtaY/4)
}

// IsoCorr2D adapts an isotropic Corr to the Corr2D interface.
type IsoCorr2D struct{ C Corr }

func (a IsoCorr2D) Name() string                 { return a.C.Name() }
func (a IsoCorr2D) Sigma() float64               { return a.C.Sigma() }
func (a IsoCorr2D) At2D(dx, dy float64) float64  { return a.C.At(math.Hypot(dx, dy)) }
func (a IsoCorr2D) PSD2D(kx, ky float64) float64 { return a.C.PSD(math.Hypot(kx, ky)) }

// NewKL2D builds the periodic KL decomposition from a (possibly
// anisotropic) 2-D correlation function; NewKL is the isotropic special
// case.
func NewKL2D(c Corr2D, L float64, M int) *KL {
	if L <= 0 || M < 2 {
		panic("surface: NewKL2D needs L > 0, M ≥ 2")
	}
	h := L / float64(M)
	stencil := make([]float64, M*M)
	for iy := 0; iy < M; iy++ {
		dy := minImage(iy, M) * h
		for ix := 0; ix < M; ix++ {
			dx := minImage(ix, M) * h
			stencil[iy*M+ix] = c.At2D(dx, dy)
		}
	}
	return newKLFromStencil(stencil, L, M)
}
