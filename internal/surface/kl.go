package surface

import (
	"fmt"
	"math"
	"sort"

	"roughsim/internal/fft"
	"roughsim/internal/rng"
)

// KL is the Karhunen–Loève expansion of the stationary height process on
// the periodic M×M grid. Because the covariance matrix of a stationary
// process on a periodic grid is block-circulant, its exact
// eigendecomposition is the 2-D DFT: eigenvalues are the DFT of the
// covariance stencil and eigenfunctions are Fourier (cosine/sine) modes.
// This replaces the O(N³) dense eigensolve the paper alludes to with an
// O(N log N) construction that is exact for the periodic patch; a test
// verifies it against the dense Jacobi solver on small grids.
//
// A truncated KL with d modes drives the SSCM collocation: the surface is
// f = Σ_{j<d} sqrt(λ_j)·ξ_j·v_j with iid standard normal ξ_j.
type KL struct {
	L     float64
	M     int
	Modes []KLMode // sorted by descending eigenvalue
	total float64  // Σ over all N eigenvalues (= M²·σ² for exact PSDs)
}

// KLMode is one real Fourier eigenmode of the periodic covariance.
type KLMode struct {
	Lambda float64 // eigenvalue of the N×N covariance matrix
	Mx, My int     // signed integer wavenumbers
	Sin    bool    // false: cosine mode; true: sine mode
	norm   float64 // 1/M (self-conjugate) or √2/M (paired)
}

// NewKL builds the exact periodic KL decomposition for correlation c on
// an M×M grid of period L. Distances use the minimum image convention,
// which periodizes the CF; for L ≳ 5η the wrap-around contribution is
// negligible, matching the paper's L = 5η patch choice.
func NewKL(c Corr, L float64, M int) *KL {
	if L <= 0 || M < 2 {
		panic("surface: NewKL needs L > 0, M ≥ 2")
	}
	h := L / float64(M)
	stencil := make([]float64, M*M)
	for iy := 0; iy < M; iy++ {
		dy := minImage(iy, M) * h
		for ix := 0; ix < M; ix++ {
			dx := minImage(ix, M) * h
			stencil[iy*M+ix] = c.At(math.Hypot(dx, dy))
		}
	}
	return newKLFromStencil(stencil, L, M)
}

// newKLFromStencil diagonalizes a periodic covariance stencil (the
// shared core of NewKL and NewKL2D).
func newKLFromStencil(stencil []float64, L float64, M int) *KL {
	n := M * M
	cs := make([]complex128, n)
	for i, v := range stencil {
		cs[i] = complex(v, 0)
	}
	spec := fft.Forward2D(cs, M, M)

	kl := &KL{L: L, M: M}
	seen := make([]bool, n)
	for iy := 0; iy < M; iy++ {
		for ix := 0; ix < M; ix++ {
			idx := iy*M + ix
			if seen[idx] {
				continue
			}
			lam := real(spec[idx])
			if lam < 0 {
				// Tiny negative values can appear for periodized CFs;
				// clamp (they are below double round-off of the trace).
				lam = 0
			}
			cx := (M - ix) % M
			cy := (M - iy) % M
			conj := cy*M + cx
			mx := int(waveIndex(ix, M))
			my := int(waveIndex(iy, M))
			if conj == idx {
				// Self-conjugate bin: single real cosine mode.
				seen[idx] = true
				kl.Modes = append(kl.Modes, KLMode{Lambda: lam, Mx: mx, My: my, norm: 1 / float64(M)})
			} else {
				seen[idx], seen[conj] = true, true
				nrm := math.Sqrt2 / float64(M)
				kl.Modes = append(kl.Modes,
					KLMode{Lambda: lam, Mx: mx, My: my, norm: nrm},
					KLMode{Lambda: lam, Mx: mx, My: my, Sin: true, norm: nrm},
				)
			}
		}
	}
	sort.SliceStable(kl.Modes, func(a, b int) bool { return kl.Modes[a].Lambda > kl.Modes[b].Lambda })
	for _, m := range kl.Modes {
		kl.total += m.Lambda
	}
	return kl
}

func minImage(i, m int) float64 {
	if i > m/2 {
		return float64(i - m)
	}
	return float64(i)
}

// TotalVariance returns the point variance of the full (untruncated)
// process, Σλ/N; for a well-resolved CF this equals σ².
func (k *KL) TotalVariance() float64 {
	return k.total / float64(k.M*k.M)
}

// CapturedVariance returns the fraction of the total variance carried by
// the first d modes.
func (k *KL) CapturedVariance(d int) float64 {
	if d > len(k.Modes) {
		d = len(k.Modes)
	}
	var s float64
	for _, m := range k.Modes[:d] {
		s += m.Lambda
	}
	return s / k.total
}

// TruncationForVariance returns the smallest d whose modes capture at
// least the given fraction of total variance.
func (k *KL) TruncationForVariance(frac float64) int {
	if frac <= 0 {
		return 0
	}
	target := frac * k.total
	var s float64
	for d, m := range k.Modes {
		s += m.Lambda
		if s >= target {
			return d + 1
		}
	}
	return len(k.Modes)
}

// Synthesize builds the surface realization for KL coordinates xi,
// using the first len(xi) modes: f = Σ sqrt(λ_j)·ξ_j·v_j.
func (k *KL) Synthesize(xi []float64) *Surface {
	d := len(xi)
	if d > len(k.Modes) {
		panic(fmt.Sprintf("surface: %d KL coordinates but only %d modes", d, len(k.Modes)))
	}
	m := k.M
	s := NewFlat(k.L, m)
	for j := 0; j < d; j++ {
		mode := k.Modes[j]
		amp := math.Sqrt(mode.Lambda) * xi[j] * mode.norm
		if amp == 0 {
			continue
		}
		for iy := 0; iy < m; iy++ {
			for ix := 0; ix < m; ix++ {
				ph := 2 * math.Pi * (float64(mode.Mx*ix) + float64(mode.My*iy)) / float64(m)
				var b float64
				if mode.Sin {
					b = math.Sin(ph)
				} else {
					b = math.Cos(ph)
				}
				s.H[iy*m+ix] += amp * b
			}
		}
	}
	return s
}

// Sample draws a full-rank realization (all modes) — the Monte-Carlo
// sampler. It is equivalent in distribution to spectral synthesis with
// Hermitian Gaussian spectra.
func (k *KL) Sample(src *rng.Source) *Surface {
	xi := src.NormVec(len(k.Modes))
	return k.Synthesize(xi)
}

// SampleTruncated draws a realization using only the first d modes, as
// the SSCM surrogate does.
func (k *KL) SampleTruncated(src *rng.Source, d int) *Surface {
	xi := src.NormVec(d)
	return k.Synthesize(xi)
}

// KL1D is the one-dimensional analogue for periodic profiles (2D SWM).
type KL1D struct {
	L     float64
	M     int
	Modes []KLMode // My unused (0)
	total float64
}

// NewKL1D builds the periodic KL decomposition of a 1-D profile process.
func NewKL1D(c Corr, L float64, M int) *KL1D {
	if L <= 0 || M < 2 {
		panic("surface: NewKL1D needs L > 0, M ≥ 2")
	}
	h := L / float64(M)
	stencil := make([]complex128, M)
	for i := 0; i < M; i++ {
		stencil[i] = complex(c.At(math.Abs(minImage(i, M))*h), 0)
	}
	spec := fft.Forward(stencil)
	kl := &KL1D{L: L, M: M}
	seen := make([]bool, M)
	for i := 0; i < M; i++ {
		if seen[i] {
			continue
		}
		lam := real(spec[i])
		if lam < 0 {
			lam = 0
		}
		conj := (M - i) % M
		mx := int(waveIndex(i, M))
		if conj == i {
			seen[i] = true
			kl.Modes = append(kl.Modes, KLMode{Lambda: lam, Mx: mx, norm: 1 / math.Sqrt(float64(M))})
		} else {
			seen[i], seen[conj] = true, true
			nrm := math.Sqrt2 / math.Sqrt(float64(M))
			kl.Modes = append(kl.Modes,
				KLMode{Lambda: lam, Mx: mx, norm: nrm},
				KLMode{Lambda: lam, Mx: mx, Sin: true, norm: nrm},
			)
		}
	}
	sort.SliceStable(kl.Modes, func(a, b int) bool { return kl.Modes[a].Lambda > kl.Modes[b].Lambda })
	for _, m := range kl.Modes {
		kl.total += m.Lambda
	}
	return kl
}

// TotalVariance returns Σλ/M.
func (k *KL1D) TotalVariance() float64 { return k.total / float64(k.M) }

// CapturedVariance returns the fraction of total variance carried by the
// first d modes.
func (k *KL1D) CapturedVariance(d int) float64 {
	if d > len(k.Modes) {
		d = len(k.Modes)
	}
	var s float64
	for _, m := range k.Modes[:d] {
		s += m.Lambda
	}
	return s / k.total
}

// TruncationForVariance returns the smallest d capturing at least frac
// of the total variance.
func (k *KL1D) TruncationForVariance(frac float64) int {
	if frac <= 0 {
		return 0
	}
	target := frac * k.total
	var s float64
	for d, m := range k.Modes {
		s += m.Lambda
		if s >= target {
			return d + 1
		}
	}
	return len(k.Modes)
}

// Synthesize builds the profile for the first len(xi) modes.
func (k *KL1D) Synthesize(xi []float64) *Profile {
	d := len(xi)
	if d > len(k.Modes) {
		panic("surface: too many KL1D coordinates")
	}
	p := NewFlatProfile(k.L, k.M)
	for j := 0; j < d; j++ {
		mode := k.Modes[j]
		amp := math.Sqrt(mode.Lambda) * xi[j] * mode.norm
		for i := 0; i < k.M; i++ {
			ph := 2 * math.Pi * float64(mode.Mx*i) / float64(k.M)
			if mode.Sin {
				p.H[i] += amp * math.Sin(ph)
			} else {
				p.H[i] += amp * math.Cos(ph)
			}
		}
	}
	return p
}

// Sample draws a full-rank profile realization.
func (k *KL1D) Sample(src *rng.Source) *Profile {
	return k.Synthesize(src.NormVec(len(k.Modes)))
}
