package surface

import (
	"errors"
	"math"
)

// Estimate holds surface-process parameters recovered from height maps,
// the measurement-to-model step the paper's Sec. II relies on ("the
// parameters of the stochastic process can be quantitatively extracted
// from real interconnect surface by measuring surface height as a
// function of position").
type Estimate struct {
	Sigma float64 // RMS height about the fitted mean plane
	Eta   float64 // Gaussian-CF correlation length fitted to the ACF
	// Corr is the circularly averaged empirical correlation at integer
	// lag cells (diagnostic; Corr[0] = σ²).
	Corr []float64
	// FitRMS is the relative RMS misfit of the Gaussian-CF model over
	// the fitted lag range — large values signal a non-Gaussian CF.
	FitRMS float64
}

// EstimateGaussian recovers (σ, η) of a Gaussian-CF model from one or
// more surface realizations on a common grid: the mean plane is removed
// per realization, the empirical correlation is averaged, and η is
// fitted by weighted least squares on ln C(d) = ln σ² − d²/η²
// (accuracy after the leveling-bias correction: σ to ~5%, η to ~10%)
// over the lags where the correlation remains significant.
func EstimateGaussian(samples []*Surface) (*Estimate, error) {
	if len(samples) == 0 {
		return nil, errors.New("surface: EstimateGaussian needs at least one realization")
	}
	m := samples[0].M
	L := samples[0].L
	lags := m/2 + 1
	acc := make([]float64, lags)
	for _, s := range samples {
		if s.M != m || s.L != L {
			return nil, errors.New("surface: realizations must share one grid")
		}
		// Remove the mean plane (measured maps carry tilt/offset).
		demeaned := &Surface{L: s.L, M: s.M, H: removePlane(s)}
		for i, v := range demeaned.CorrEstimate() {
			acc[i] += v
		}
	}
	for i := range acc {
		acc[i] /= float64(len(samples))
	}
	if acc[0] <= 0 {
		return nil, errors.New("surface: degenerate (flat) sample set")
	}

	// Leveling-bias correction: removing each patch's mean plane absorbs
	// the process's large-scale variance, which deflates the empirical
	// ACF by an approximately constant offset C̄ ≈ (1/L²)∫∫C — visible
	// as the ACF tail settling slightly below zero. Estimate the offset
	// from the outer-quarter lags (where the true CF has decayed) and
	// restore it.
	tailStart := 3 * lags / 4
	var tail float64
	for lag := tailStart; lag < lags; lag++ {
		tail += acc[lag]
	}
	offset := -tail / float64(lags-tailStart)
	if offset > 0 {
		for i := range acc {
			acc[i] += offset
		}
	}
	est := &Estimate{Sigma: math.Sqrt(acc[0]), Corr: acc}

	// Weighted LS on ln C vs d²: use lags with C > 0.05·C(0) (beyond
	// that the empirical ACF is noise-dominated), weight by C (delta
	// method for the log transform).
	h := L / float64(m)
	var sw, swx, swy, swxx, swxy float64
	var used int
	for lag := 0; lag < lags; lag++ {
		cv := acc[lag]
		if cv < 0.05*acc[0] {
			break
		}
		d := float64(lag) * h
		x := d * d
		y := math.Log(cv)
		w := cv * cv
		sw += w
		swx += w * x
		swy += w * y
		swxx += w * x * x
		swxy += w * x * y
		used++
	}
	if used < 3 {
		return nil, errors.New("surface: too few significant lags to fit η (patch too small?)")
	}
	den := sw*swxx - swx*swx
	if den <= 0 {
		return nil, errors.New("surface: singular η fit")
	}
	slope := (sw*swxy - swx*swy) / den
	if slope >= 0 {
		return nil, errors.New("surface: non-decaying empirical correlation")
	}
	est.Eta = 1 / math.Sqrt(-slope)

	// Misfit of the fitted model over the used range.
	var misfit, norm float64
	for lag := 0; lag < used; lag++ {
		d := float64(lag) * h
		model := acc[0] * math.Exp(-d*d/(est.Eta*est.Eta))
		misfit += (acc[lag] - model) * (acc[lag] - model)
		norm += acc[lag] * acc[lag]
	}
	est.FitRMS = math.Sqrt(misfit / norm)
	return est, nil
}

// removePlane subtracts the least-squares plane a + bx + cy from the
// heights and returns the residual field.
func removePlane(s *Surface) []float64 {
	m := s.M
	n := m * m
	// Normal equations for the orthogonal basis {1, x−x̄, y−ȳ} on the
	// uniform grid (diagonal system).
	var mean float64
	for _, v := range s.H {
		mean += v
	}
	mean /= float64(n)
	cbar := float64(m-1) / 2
	var sxz, syz, sxx float64
	for iy := 0; iy < m; iy++ {
		for ix := 0; ix < m; ix++ {
			v := s.H[iy*m+ix] - mean
			dx := float64(ix) - cbar
			dy := float64(iy) - cbar
			sxz += dx * v
			syz += dy * v
			sxx += dx * dx
		}
	}
	sxx /= float64(m) // per-row sum identical; total Σdx² = m·Σrow
	bx := 0.0
	by := 0.0
	if sxx > 0 {
		bx = sxz / (sxx * float64(m))
		by = syz / (sxx * float64(m))
	}
	out := make([]float64, n)
	for iy := 0; iy < m; iy++ {
		for ix := 0; ix < m; ix++ {
			dx := float64(ix) - cbar
			dy := float64(iy) - cbar
			out[iy*m+ix] = s.H[iy*m+ix] - mean - bx*dx - by*dy
		}
	}
	return out
}
