package surface

import (
	"fmt"
	"math"

	"roughsim/internal/fft"
)

// Surface is one realization of the conductor surface over a doubly
// periodic L×L patch sampled on an M×M grid (row-major: index = iy*M+ix,
// x = ix·h, y = iy·h, h = L/M).
type Surface struct {
	L float64   // patch period (m)
	M int       // grid points per side
	H []float64 // heights (m), len M·M

	// Optional analytic derivatives. When non-nil they are returned by
	// Gradients/SecondDerivs instead of spectral differentiation —
	// needed for shapes that are not band-limited (e.g. the Fig. 5
	// spheroid, whose rim makes spectral derivatives ring).
	AnFx, AnFy          []float64
	AnFxx, AnFyy, AnFxy []float64
}

// NewFlat returns the flat reference surface (all heights zero).
func NewFlat(L float64, M int) *Surface {
	if L <= 0 || M <= 0 {
		panic("surface: NewFlat needs L > 0, M > 0")
	}
	return &Surface{L: L, M: M, H: make([]float64, M*M)}
}

// Step returns the grid spacing h = L/M.
func (s *Surface) Step() float64 { return s.L / float64(s.M) }

// At returns the height at grid node (ix, iy) with periodic wrapping.
func (s *Surface) At(ix, iy int) float64 {
	m := s.M
	ix = ((ix % m) + m) % m
	iy = ((iy % m) + m) % m
	return s.H[iy*m+ix]
}

// Mean returns the mean height.
func (s *Surface) Mean() float64 {
	var sum float64
	for _, v := range s.H {
		sum += v
	}
	return sum / float64(len(s.H))
}

// RMS returns the root-mean-square height about zero (the model's mean
// plane), which estimates σ for a zero-mean process.
func (s *Surface) RMS() float64 {
	var sum float64
	for _, v := range s.H {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(s.H)))
}

// Gradients returns the surface derivatives f_x and f_y on the grid:
// the analytic ones when provided, otherwise spectral derivatives
// consistent with the doubly-periodic continuation of the surface.
func (s *Surface) Gradients() (fx, fy []float64) {
	if s.AnFx != nil && s.AnFy != nil {
		return s.AnFx, s.AnFy
	}
	m := s.M
	n := m * m
	c := make([]complex128, n)
	for i, v := range s.H {
		c[i] = complex(v, 0)
	}
	spec := fft.Forward2D(c, m, m)
	dx := make([]complex128, n)
	dy := make([]complex128, n)
	for iy := 0; iy < m; iy++ {
		ky := waveIndex(iy, m) * 2 * math.Pi / s.L
		for ix := 0; ix < m; ix++ {
			kx := waveIndex(ix, m) * 2 * math.Pi / s.L
			v := spec[iy*m+ix]
			// Zero the unmatched Nyquist derivative component: a real
			// signal's Nyquist mode has no well-defined odd derivative.
			kxe, kye := kx, ky
			if m%2 == 0 && ix == m/2 {
				kxe = 0
			}
			if m%2 == 0 && iy == m/2 {
				kye = 0
			}
			dx[iy*m+ix] = v * complex(0, kxe)
			dy[iy*m+ix] = v * complex(0, kye)
		}
	}
	gx := fft.Inverse2D(dx, m, m)
	gy := fft.Inverse2D(dy, m, m)
	fx = make([]float64, n)
	fy = make([]float64, n)
	for i := range fx {
		fx[i] = real(gx[i])
		fy[i] = real(gy[i])
	}
	return fx, fy
}

// SecondDerivs returns the spectral second derivatives f_xx, f_yy and
// the mixed f_xy on the grid — the MoM assembly needs the full local
// Hessian for the curvature correction of the double-layer self term and
// for second-order near-field source-cell geometry.
func (s *Surface) SecondDerivs() (fxx, fyy, fxy []float64) {
	if s.AnFxx != nil && s.AnFyy != nil && s.AnFxy != nil {
		return s.AnFxx, s.AnFyy, s.AnFxy
	}
	m := s.M
	n := m * m
	c := make([]complex128, n)
	for i, v := range s.H {
		c[i] = complex(v, 0)
	}
	spec := fft.Forward2D(c, m, m)
	dxx := make([]complex128, n)
	dyy := make([]complex128, n)
	dxy := make([]complex128, n)
	for iy := 0; iy < m; iy++ {
		ky := waveIndex(iy, m) * 2 * math.Pi / s.L
		kye := ky
		if m%2 == 0 && iy == m/2 {
			kye = 0 // unmatched Nyquist mode has no odd derivative
		}
		for ix := 0; ix < m; ix++ {
			kx := waveIndex(ix, m) * 2 * math.Pi / s.L
			kxe := kx
			if m%2 == 0 && ix == m/2 {
				kxe = 0
			}
			v := spec[iy*m+ix]
			dxx[iy*m+ix] = v * complex(-kx*kx, 0)
			dyy[iy*m+ix] = v * complex(-ky*ky, 0)
			dxy[iy*m+ix] = v * complex(-kxe*kye, 0)
		}
	}
	gx := fft.Inverse2D(dxx, m, m)
	gy := fft.Inverse2D(dyy, m, m)
	gxy := fft.Inverse2D(dxy, m, m)
	fxx = make([]float64, n)
	fyy = make([]float64, n)
	fxy = make([]float64, n)
	for i := range fxx {
		fxx[i] = real(gx[i])
		fyy[i] = real(gy[i])
		fxy[i] = real(gxy[i])
	}
	return fxx, fyy, fxy
}

// waveIndex maps a DFT bin to its signed integer wavenumber.
func waveIndex(i, m int) float64 {
	if i <= m/2 {
		return float64(i)
	}
	return float64(i - m)
}

// CorrEstimate returns the circularly averaged empirical correlation of
// the surface at integer lag cells (lag 0 … M/2), useful for verifying
// that synthesized surfaces honor the target CF.
func (s *Surface) CorrEstimate() []float64 {
	m := s.M
	out := make([]float64, m/2+1)
	for lag := 0; lag <= m/2; lag++ {
		var sum float64
		var cnt int
		for iy := 0; iy < m; iy++ {
			for ix := 0; ix < m; ix++ {
				v := s.H[iy*m+ix]
				sum += v * s.At(ix+lag, iy)
				sum += v * s.At(ix, iy+lag)
				cnt += 2
			}
		}
		out[lag] = sum / float64(cnt)
	}
	return out
}

// HalfSpheroid builds the deterministic protrusion of the Fig. 5
// experiment: a half-spheroid of height h and base radius a centered in
// the patch, on an otherwise flat plane:
// f(r) = h·sqrt(1 − r²/a²) for r < a, else 0.
func HalfSpheroid(L float64, M int, h, a float64) *Surface {
	if a >= L/2 {
		panic(fmt.Sprintf("surface: spheroid base radius %g must fit in half the patch %g", a, L/2))
	}
	s := NewFlat(L, M)
	step := L / float64(M)
	cx, cy := L/2, L/2
	for iy := 0; iy < M; iy++ {
		for ix := 0; ix < M; ix++ {
			dx := float64(ix)*step - cx
			dy := float64(iy)*step - cy
			r2 := (dx*dx + dy*dy) / (a * a)
			if r2 < 1 {
				s.H[iy*M+ix] = h * math.Sqrt(1-r2)
			}
		}
	}
	return s
}

// SmoothSpheroid builds a rim-regularized protrusion for the Fig. 5
// experiment: f(r) = h·(1 − r²/a²)^{3/2} for r < a, else 0. Unlike the
// exact half-spheroid its slope vanishes at the rim, so the surface is
// C¹ and its analytic derivatives (attached to the returned Surface) are
// bounded everywhere; the bulk shape and the volume-equivalent radius
// mapping to HBM are essentially unchanged.
func SmoothSpheroid(L float64, M int, h, a float64) *Surface {
	if a >= L/2 {
		panic(fmt.Sprintf("surface: spheroid base radius %g must fit in half the patch %g", a, L/2))
	}
	s := NewFlat(L, M)
	n := M * M
	s.AnFx = make([]float64, n)
	s.AnFy = make([]float64, n)
	s.AnFxx = make([]float64, n)
	s.AnFyy = make([]float64, n)
	s.AnFxy = make([]float64, n)
	step := L / float64(M)
	cx, cy := L/2, L/2
	a2 := a * a
	for iy := 0; iy < M; iy++ {
		for ix := 0; ix < M; ix++ {
			dx := float64(ix)*step - cx
			dy := float64(iy)*step - cy
			u := (dx*dx + dy*dy) / a2
			if u >= 1 {
				continue
			}
			i := iy*M + ix
			w := 1 - u
			sq := math.Sqrt(w)
			s.H[i] = h * w * sq // h·(1−u)^{3/2}
			// ∂u/∂x = 2x/a², f = h(1−u)^{3/2} ⇒ f_x = −3h√(1−u)·x/a².
			s.AnFx[i] = -3 * h * sq * dx / a2
			s.AnFy[i] = -3 * h * sq * dy / a2
			// f_xx = −3h/a²·[√(1−u) − x²/(a²√(1−u))]: the 1/√(1−u)
			// factor diverges at the rim (the C¹ surface is not C²
			// there); clamp it at √(1−u) ≥ 1/4, which caps the
			// curvature within the outermost few percent of the base
			// radius while leaving the bulk exact.
			inv := 1 / math.Max(sq, 0.25)
			s.AnFxx[i] = -3 * h / a2 * (sq - dx*dx/a2*inv)
			s.AnFyy[i] = -3 * h / a2 * (sq - dy*dy/a2*inv)
			s.AnFxy[i] = 3 * h * dx * dy / (a2 * a2) * inv
		}
	}
	return s
}

// Profile is a 1-D periodic surface profile (uniform along y), used by
// the 2D SWM variant of Fig. 6.
type Profile struct {
	L float64
	M int
	H []float64 // len M
}

// NewFlatProfile returns an all-zero profile.
func NewFlatProfile(L float64, M int) *Profile {
	if L <= 0 || M <= 0 {
		panic("surface: NewFlatProfile needs L > 0, M > 0")
	}
	return &Profile{L: L, M: M, H: make([]float64, M)}
}

// Step returns the grid spacing.
func (p *Profile) Step() float64 { return p.L / float64(p.M) }

// RMS returns the RMS height of the profile.
func (p *Profile) RMS() float64 {
	var sum float64
	for _, v := range p.H {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(p.H)))
}

// SecondDeriv returns the spectral second derivative d²f/dx² of the
// periodic profile (needed for the 2D MoM curvature self term).
func (p *Profile) SecondDeriv() []float64 {
	m := p.M
	c := make([]complex128, m)
	for i, v := range p.H {
		c[i] = complex(v, 0)
	}
	spec := fft.Forward(c)
	for i := 0; i < m; i++ {
		k := waveIndex(i, m) * 2 * math.Pi / p.L
		spec[i] *= complex(-k*k, 0)
	}
	g := fft.Inverse(spec)
	out := make([]float64, m)
	for i := range out {
		out[i] = real(g[i])
	}
	return out
}

// Gradient returns the spectral derivative df/dx of the periodic profile.
func (p *Profile) Gradient() []float64 {
	m := p.M
	c := make([]complex128, m)
	for i, v := range p.H {
		c[i] = complex(v, 0)
	}
	spec := fft.Forward(c)
	for i := 0; i < m; i++ {
		k := waveIndex(i, m) * 2 * math.Pi / p.L
		if m%2 == 0 && i == m/2 {
			k = 0
		}
		spec[i] *= complex(0, k)
	}
	g := fft.Inverse(spec)
	out := make([]float64, m)
	for i := range out {
		out[i] = real(g[i])
	}
	return out
}
