package surface

import (
	"math"
	"testing"

	"roughsim/internal/rng"
)

func TestEstimateGaussianRecoversParameters(t *testing.T) {
	// Round trip: synthesize from a known (σ, η), re-estimate.
	sigma := 0.8 * um
	eta := 1.2 * um
	c := NewGaussianCorr(sigma, eta)
	kl := NewKL(c, 6*um, 24)
	src := rng.New(314)
	var samples []*Surface
	for i := 0; i < 80; i++ {
		samples = append(samples, kl.Sample(src))
	}
	est, err := EstimateGaussian(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Sigma-sigma)/sigma > 0.06 {
		t.Errorf("σ̂ = %g, want %g", est.Sigma, sigma)
	}
	// Residual leveling bias shortens the apparent correlation length by
	// a few percent even after the offset correction (the plane removal
	// is not a pure DC subtraction); 12%% is the documented accuracy.
	if math.Abs(est.Eta-eta)/eta > 0.12 {
		t.Errorf("η̂ = %g, want %g", est.Eta, eta)
	}
	if est.FitRMS > 0.05 {
		t.Errorf("Gaussian fit misfit %g too large for Gaussian data", est.FitRMS)
	}
}

func TestEstimateGaussianRemovesTilt(t *testing.T) {
	// Adding a plane (measurement tilt) must not bias the estimates.
	sigma := 0.5 * um
	eta := 1.0 * um
	kl := NewKL(NewGaussianCorr(sigma, eta), 5*um, 20)
	src := rng.New(99)
	var plain, tilted []*Surface
	for i := 0; i < 60; i++ {
		s := kl.Sample(src)
		plain = append(plain, s)
		tcopy := NewFlat(s.L, s.M)
		copy(tcopy.H, s.H)
		for iy := 0; iy < s.M; iy++ {
			for ix := 0; ix < s.M; ix++ {
				tcopy.H[iy*s.M+ix] += 3*um + 0.4*float64(ix)*s.Step() - 0.2*float64(iy)*s.Step()
			}
		}
		tilted = append(tilted, tcopy)
	}
	a, err := EstimateGaussian(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateGaussian(tilted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Sigma-b.Sigma)/a.Sigma > 0.02 {
		t.Errorf("tilt biased σ̂: %g vs %g", a.Sigma, b.Sigma)
	}
	if math.Abs(a.Eta-b.Eta)/a.Eta > 0.05 {
		t.Errorf("tilt biased η̂: %g vs %g", a.Eta, b.Eta)
	}
}

func TestEstimateGaussianDetectsNonGaussianCF(t *testing.T) {
	// Data generated with the exponential CF must show a worse Gaussian
	// misfit than Gaussian data does.
	src := rng.New(5)
	klG := NewKL(NewGaussianCorr(1*um, 1.2*um), 6*um, 24)
	klE := NewKL(NewExpCorr(1*um, 1.2*um), 6*um, 24)
	var sg, se []*Surface
	for i := 0; i < 60; i++ {
		sg = append(sg, klG.Sample(src))
		se = append(se, klE.Sample(src))
	}
	a, err := EstimateGaussian(sg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateGaussian(se)
	if err != nil {
		t.Fatal(err)
	}
	if b.FitRMS <= a.FitRMS {
		t.Errorf("exponential data misfit %g not larger than Gaussian %g", b.FitRMS, a.FitRMS)
	}
}

func TestEstimateGaussianErrors(t *testing.T) {
	if _, err := EstimateGaussian(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	flat := NewFlat(5*um, 8)
	if _, err := EstimateGaussian([]*Surface{flat}); err == nil {
		t.Fatal("flat input accepted")
	}
	a := NewFlat(5*um, 8)
	b := NewFlat(6*um, 8)
	if _, err := EstimateGaussian([]*Surface{a, b}); err == nil {
		t.Fatal("mismatched grids accepted")
	}
}
