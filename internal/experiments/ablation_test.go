package experiments

import (
	"math"
	"testing"
)

func TestAblationGridConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-backed experiment")
	}
	r, err := AblationGrid(Bench())
	if err != nil {
		t.Fatal(err)
	}
	k := r.Find("K")
	if len(k.Y) < 3 {
		t.Fatalf("too few grid points: %v", k.X)
	}
	// Successive refinements approach a limit: the last two values agree
	// much better than the first two.
	first := math.Abs(k.Y[1] - k.Y[0])
	last := math.Abs(k.Y[len(k.Y)-1] - k.Y[len(k.Y)-2])
	if last > first {
		t.Fatalf("no convergence trend: deltas %g → %g (K series %v)", first, last, k.Y)
	}
	for _, v := range k.Y {
		if v < 1 || v > 2.5 {
			t.Fatalf("K out of range: %v", k.Y)
		}
	}
}

func TestAblationKLDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-backed experiment")
	}
	r, err := AblationKLDepth(Bench())
	if err != nil {
		t.Fatal(err)
	}
	capt := r.Find("captured")
	mean := r.Find("mean K")
	// Captured variance strictly increases with depth.
	for i := 1; i < len(capt.Y); i++ {
		if capt.Y[i] <= capt.Y[i-1] {
			t.Fatalf("captured variance not increasing: %v", capt.Y)
		}
	}
	// Mean K grows (weakly) as more roughness is represented.
	if mean.Y[len(mean.Y)-1] < mean.Y[0] {
		t.Fatalf("mean K decreased with KL depth: %v", mean.Y)
	}
}

func TestAblationSolvers(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-backed experiment")
	}
	r, err := AblationSolvers(Bench())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Series[0]
	if len(s.Y) != 7 {
		t.Fatalf("want 7 timings, got %d", len(s.Y))
	}
	for i, v := range s.Y {
		if v <= 0 {
			t.Fatalf("timing %d non-positive: %v", i, s.Y)
		}
	}
	// Tabulated assembly (index 2) must beat exact assembly (index 0).
	if s.Y[2] >= s.Y[0] {
		t.Fatalf("tabulated assembly %g ms not faster than exact %g ms", s.Y[2], s.Y[0])
	}
}
