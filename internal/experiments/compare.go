package experiments

import (
	"math"

	"roughsim/internal/core"
	"roughsim/internal/hbm"
	"roughsim/internal/spm2"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

// This file is the cross-model comparison aggregation behind campaign
// artifacts: every campaign CSV row carries, next to the SWM K(f), the
// three analytic baselines of the paper's validity study — SPM2, the
// hemispherical boss model (HBM) and the Morgan/Hammerstad empirical
// formula — evaluated for the row's surface process. It reuses the
// exact baseline code paths of the figure harnesses, so a campaign
// column and the corresponding paper exhibit are the same numbers.

// Comparison holds the analytic baselines at one frequency.
type Comparison struct {
	SPM2      float64
	HBM       float64
	Empirical float64
}

// CompareCell describes one campaign cell (a material stack and a
// surface process) for baseline evaluation.
type CompareCell struct {
	EpsR float64 // dielectric relative permittivity
	Rho  float64 // conductor resistivity (Ω·m)

	Sigma float64 // RMS height (m); 0 selects the flat limit (K ≡ 1)
	Eta   float64 // correlation length (m); ηx when EtaY > 0
	EtaY  float64 // transverse correlation length; > 0 = anisotropic Gaussian

	// Corr is the cell's correlation function (isotropic path; ignored
	// when EtaY > 0, may be nil when Sigma = 0).
	Corr surface.Corr
}

// BossRadius maps the random process onto the hemispherical boss
// baseline: one boss per (2η)×(2ηy) correlation tile, its radius chosen
// so the boss's mean-square height over the tile equals the process
// variance σ² (a hemisphere of radius a contributes ⟨h²⟩ = πa⁴/(2A)
// over tile area A, so a = (2σ²A/π)^¼).
func (c CompareCell) BossRadius() float64 {
	if !(c.Sigma > 0) {
		return 0
	}
	return math.Pow(2*c.Sigma*c.Sigma*c.TileArea()/math.Pi, 0.25)
}

// TileArea is the correlation tile (2η)×(2ηy) the boss sits on (ηy = η
// for isotropic processes).
func (c CompareCell) TileArea() float64 {
	etaY := c.EtaY
	if etaY <= 0 {
		etaY = c.Eta
	}
	return 4 * c.Eta * etaY
}

// Baselines evaluates the three analytic models at frequency f. A flat
// cell (σ = 0) is exactly lossless-excess: every model returns K = 1.
// An out-of-domain empirical input yields NaN (the campaign CSV leaves
// the column empty), matching roughsim.EmpiricalLossFactor.
func (c CompareCell) Baselines(f float64) Comparison {
	if !(c.Sigma > 0) {
		return Comparison{SPM2: 1, HBM: 1, Empirical: 1}
	}
	mat := core.Material{EpsR: c.EpsR, Rho: c.Rho}
	p := mat.Params(f)
	sp := spm2.Params{K1: p.K1, K2: p.K2, Beta: p.Beta}
	var kSPM2 float64
	if c.EtaY > 0 {
		// Mirrors Simulation.SPM2LossFactor's anisotropic path.
		ac := surface.NewAnisoGaussianCorr(c.Sigma, c.Eta, c.EtaY)
		etaMin := math.Min(c.Eta, c.EtaY)
		kSPM2 = spm2.LossFactorAniso(sp, ac.PSD2D, 40/etaMin, 0, 0)
	} else {
		kSPM2 = spm2.LossFactorCorr(sp, c.Corr, c.Eta)
	}
	kHBM := hbm.Model{Radius: c.BossRadius(), Tile: c.TileArea(), Rho: c.Rho}.LossFactor(f)
	kEmp, err := core.Empirical(c.Sigma, units.SkinDepth(c.Rho, f, units.Mu0))
	if err != nil {
		kEmp = math.NaN()
	}
	return Comparison{SPM2: kSPM2, HBM: kHBM, Empirical: kEmp}
}
