// Package experiments reproduces every figure and table of the paper's
// evaluation section (Sec. IV). Each function regenerates one exhibit as
// a structured Result that cmd/figures renders to CSV/ASCII and the
// repository benchmarks time. Paper-vs-measured notes live in
// EXPERIMENTS.md.
//
// All experiments use the paper's material stack: ρ = 1.67 μΩ·cm,
// εr = 3.7, patch L = 5η. The Config resolution trades fidelity for
// runtime; Config.Paper() selects the paper's Δ = η/8 discretization.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"roughsim/internal/core"
	"roughsim/internal/hbm"
	"roughsim/internal/mom"
	"roughsim/internal/montecarlo"
	"roughsim/internal/rng"
	"roughsim/internal/spm2"
	"roughsim/internal/sscm"
	"roughsim/internal/stats"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

const um = 1e-6

// Config scales the experiments.
type Config struct {
	// M is the 3D grid per side (the paper's Δ = η/8 with L = 5η gives
	// M = 40).
	M int
	// LOverEta is the patch period in correlation lengths (paper: 5).
	LOverEta float64
	// KLDim is the stochastic dimension d of the truncated KL expansion
	// (paper: 16 for the Gaussian CF — Table I's 2d+1 = 33).
	KLDim int
	// MCSamples is the Monte-Carlo sample count of Fig. 7 (paper: 5000).
	MCSamples int
	// M2D is the 1-D grid for the 2D SWM variant.
	M2D int
	// MFig5 is the grid for the (taller, wider) Fig. 5 spheroid patch.
	MFig5 int
	// FreqStride subsamples each figure's frequency list (1 = full).
	FreqStride int
	// Workers bounds parallel solver evaluations.
	Workers int
	// Seed drives every random draw.
	Seed uint64
}

// Default returns a laptop-scale configuration that preserves every
// qualitative feature of the paper's exhibits (minutes, not hours).
func Default() Config {
	return Config{
		M: 16, LOverEta: 5, KLDim: 16, MCSamples: 2000,
		M2D: 64, MFig5: 28, FreqStride: 1, Workers: 0, Seed: 20090424,
	}
}

// Paper returns the paper-resolution configuration (Δ = η/8, MC 5000).
// Expect hours of runtime on a desktop.
func Paper() Config {
	c := Default()
	c.M = 40
	c.MCSamples = 5000
	c.MFig5 = 48
	return c
}

// Bench returns a deliberately small configuration for Go benchmarks.
func Bench() Config {
	return Config{
		M: 10, LOverEta: 4, KLDim: 8, MCSamples: 24,
		M2D: 32, MFig5: 16, FreqStride: 2, Workers: 0, Seed: 7,
	}
}

// Series is one plotted curve.
type Series struct {
	Label string
	X, Y  []float64
}

// Result is one regenerated exhibit.
type Result struct {
	Name   string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// WriteCSV emits the result as wide-format CSV (x, one column per series).
func (r *Result) WriteCSV(w io.Writer) error {
	fmt.Fprintf(w, "# %s — %s\n", r.Name, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintf(w, "%s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(w, ",%s", s.Label)
	}
	fmt.Fprintln(w)
	// Series may share one x grid (wide format) or not (long format).
	common := true
	for _, s := range r.Series[1:] {
		if len(s.X) != len(r.Series[0].X) {
			common = false
			break
		}
		for i := range s.X {
			if s.X[i] != r.Series[0].X[i] {
				common = false
				break
			}
		}
	}
	if common {
		for i, x := range r.Series[0].X {
			fmt.Fprintf(w, "%g", x)
			for _, s := range r.Series {
				fmt.Fprintf(w, ",%g", s.Y[i])
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	// Long format fallback.
	for _, s := range r.Series {
		for i := range s.X {
			fmt.Fprintf(w, "%g,%s,%g\n", s.X[i], s.Label, s.Y[i])
		}
	}
	return nil
}

// WriteTable renders an aligned ASCII table.
func (r *Result) WriteTable(w io.Writer) error {
	fmt.Fprintf(w, "%s — %s\n", r.Name, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(tw, "\t%s", s.Label)
	}
	fmt.Fprintln(tw)
	n := 0
	for _, s := range r.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		wrote := false
		for si, s := range r.Series {
			if i < len(s.X) {
				if !wrote {
					fmt.Fprintf(tw, "%.4g", s.X[i])
					wrote = true
				}
				_ = si
				fmt.Fprintf(tw, "\t%.4f", s.Y[i])
			} else {
				fmt.Fprintf(tw, "\t")
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// zspanFor bounds the table span for random surfaces of deviation sigma.
func zspanFor(sigma float64) float64 { return 14 * sigma }

// stride subsamples a frequency list per the configuration.
func (cfg Config) stride(freqs []float64) []float64 {
	st := cfg.FreqStride
	if st <= 1 {
		return freqs
	}
	var out []float64
	for i := 0; i < len(freqs); i += st {
		out = append(out, freqs[i])
	}
	if out[len(out)-1] != freqs[len(freqs)-1] {
		out = append(out, freqs[len(freqs)-1])
	}
	return out
}

// meanLossSWM computes the SSCM (order-1) mean K(f) for a correlation
// function, reusing one tabulated solver across frequencies.
func meanLossSWM(cfg Config, c surface.Corr, eta float64, freqs []float64) ([]float64, error) {
	mat := core.PaperMaterial()
	L := cfg.LOverEta * eta
	solver, err := core.NewSolverTabulated(mat, L, cfg.M, zspanFor(c.Sigma()), mom.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	kl := surface.NewKL(c, L, cfg.M)
	d := cfg.KLDim
	if d > len(kl.Modes) {
		d = len(kl.Modes)
	}
	out := make([]float64, len(freqs))
	for i, f := range freqs {
		eval := func(xi []float64) (float64, error) {
			return solver.LossFactor(kl.Synthesize(xi), f)
		}
		res, err := sscm.Run(context.Background(), d, 1, eval, sscm.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("experiments: SSCM at f=%g: %w", f, err)
		}
		out[i] = res.PCE.Mean()
	}
	return out, nil
}

// spm2Curve evaluates the SPM2 baseline over the frequency list.
func spm2Curve(c surface.Corr, eta float64, freqs []float64) []float64 {
	mat := core.PaperMaterial()
	out := make([]float64, len(freqs))
	for i, f := range freqs {
		p := mat.Params(f)
		out[i] = spm2.LossFactorCorr(spm2.Params{K1: p.K1, K2: p.K2, Beta: p.Beta}, c, eta)
	}
	return out
}

// Fig2 regenerates the surface-synthesis exhibit: a sampled realization
// of the Gaussian-CF surface (σ = η = 1 μm) with its measured statistics
// against the targets.
func Fig2(cfg Config) (*Result, error) {
	c := surface.NewGaussianCorr(1*um, 1*um)
	L := cfg.LOverEta * 1 * um
	m := cfg.M
	kl := surface.NewKL(c, L, m)
	// Average the empirical CF over several realizations.
	src := rng.New(cfg.Seed)
	const nAvg = 64
	lags := m/2 + 1
	acc := make([]float64, lags)
	var varAcc float64
	for s := 0; s < nAvg; s++ {
		surf := kl.Sample(src)
		for i, v := range surf.CorrEstimate() {
			acc[i] += v
		}
		r := surf.RMS()
		varAcc += r * r
	}
	h := L / float64(m)
	emp := Series{Label: "empirical CF"}
	tgt := Series{Label: "target CF"}
	for lag := 0; lag < lags; lag++ {
		d := float64(lag) * h
		emp.X = append(emp.X, d/um)
		emp.Y = append(emp.Y, acc[lag]/nAvg/(um*um))
		tgt.X = append(tgt.X, d/um)
		tgt.Y = append(tgt.Y, c.At(d)/(um*um))
	}
	return &Result{
		Name:   "fig2",
		Title:  "3D random rough surface synthesis (Gaussian CF, σ=η=1 μm)",
		XLabel: "lag (μm)",
		YLabel: "C(d) (μm²)",
		Series: []Series{emp, tgt},
		Notes: []string{
			fmt.Sprintf("sampled variance %.4g μm² (target 1.0)", varAcc/nAvg/(um*um)),
		},
	}, nil
}

// Fig3 regenerates Fig. 3: SWM vs SPM2 vs the empirical formula for the
// Gaussian CF with σ = 1 μm and η ∈ {1, 2, 3} μm over 0.5–9 GHz.
func Fig3(cfg Config) (*Result, error) {
	freqs := cfg.stride([]float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	res := &Result{
		Name:   "fig3",
		Title:  "SWM vs SPM2 and empirical formula (Gaussian CF, σ=1 μm)",
		XLabel: "f (GHz)",
		YLabel: "Pr/Ps",
	}
	mat := core.PaperMaterial()
	empir := Series{Label: "Empirical"}
	for _, fG := range freqs {
		ke, err := mat.EmpiricalAt(1*um, fG*units.GHz)
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig3 empirical at %g GHz: %w", fG, err)
		}
		empir.X = append(empir.X, fG)
		empir.Y = append(empir.Y, ke)
	}
	res.Series = append(res.Series, empir)
	for _, etaUM := range []float64{1, 2, 3} {
		eta := etaUM * um
		c := surface.NewGaussianCorr(1*um, eta)
		fs := make([]float64, len(freqs))
		for i, fG := range freqs {
			fs[i] = fG * units.GHz
		}
		swmY, err := meanLossSWM(cfg, c, eta, fs)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series,
			Series{Label: fmt.Sprintf("SWM (η=%gμm)", etaUM), X: freqs, Y: swmY},
			Series{Label: fmt.Sprintf("SPM2 (η=%gμm)", etaUM), X: freqs, Y: spm2Curve(c, eta, fs)},
		)
	}
	return res, nil
}

// Fig4 regenerates Fig. 4: SWM vs SPM2 under the measurement-extracted
// CF (12) (σ=1 μm, η₁=1.4 μm, η₂=0.53 μm) over 0.1–10 GHz.
func Fig4(cfg Config) (*Result, error) {
	freqs := cfg.stride([]float64{0.1, 0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	c := surface.NewMeasuredCorr(1*um, 1.4*um, 0.53*um)
	eta := 1.4 * um
	fs := make([]float64, len(freqs))
	for i, fG := range freqs {
		fs[i] = fG * units.GHz
	}
	swmY, err := meanLossSWM(cfg, c, eta, fs)
	if err != nil {
		return nil, err
	}
	return &Result{
		Name:   "fig4",
		Title:  "SWM vs SPM2 with extracted CF (12) (σ=1, η1=1.4, η2=0.53 μm)",
		XLabel: "f (GHz)",
		YLabel: "Pr/Ps",
		Series: []Series{
			{Label: "SWM", X: freqs, Y: swmY},
			{Label: "SPM2", X: freqs, Y: spm2Curve(c, eta, fs)},
		},
	}, nil
}

// Fig5 regenerates Fig. 5: SWM on the deterministic half-spheroid
// (h=5.8 μm, base diameter 9.4 μm) vs the hemispherical boss model over
// 1–20 GHz.
func Fig5(cfg Config) (*Result, error) {
	freqs := cfg.stride([]float64{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20})
	hgt := 5.8 * um
	baseR := 4.7 * um
	L := 10 * um // tile sized so neighbouring bosses nearly touch ([5])
	m := cfg.MFig5
	mat := core.PaperMaterial()
	solver, err := core.NewSolverTabulated(mat, L, m, 2.4*hgt, mom.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	surf := surface.SmoothSpheroid(L, m, hgt, baseR)

	swm := Series{Label: "SWM"}
	hb := Series{Label: "HBM"}
	model := hbm.Model{
		Radius: hbm.EquivalentSphereRadius(hgt, baseR),
		Tile:   L * L,
		Rho:    mat.Rho,
	}
	for _, fG := range freqs {
		f := fG * units.GHz
		k, err := solver.LossFactor(surf, f)
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig5 at %g GHz: %w", fG, err)
		}
		swm.X = append(swm.X, fG)
		swm.Y = append(swm.Y, k)
		hb.X = append(hb.X, fG)
		hb.Y = append(hb.Y, model.LossFactor(f))
	}
	// The SWM curve is trustworthy only while the grid resolves the skin
	// depth (the paper refines to Δ = δ/5 here); report the validity
	// edge so coarse-configuration outputs are read correctly.
	hStep := L / float64(m)
	fValid := 0.0
	for _, fG := range freqs {
		if mat.SkinDepth(fG*units.GHz)/2 >= hStep {
			fValid = fG
		}
	}
	return &Result{
		Name:   "fig5",
		Title:  "SWM vs HBM, conducting half-spheroid (h=5.8 μm, d=9.4 μm)",
		XLabel: "f (GHz)",
		YLabel: "Pr/Ps",
		Series: []Series{swm, hb},
		Notes: []string{
			"spheroid rim regularized (C¹ profile); HBM uses the volume-equivalent sphere radius",
			fmt.Sprintf("grid Δ=%.2f μm resolves δ/2 only up to ≈%g GHz; refine (e.g. -paper) beyond", hStep*1e6, fValid),
		},
	}, nil
}

// Fig6 regenerates Fig. 6: 3D SWM vs the 2D SWM variant for the Gaussian
// CF with σ = 1 μm, η ∈ {1, 2} μm.
func Fig6(cfg Config) (*Result, error) {
	freqs := cfg.stride([]float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	res := &Result{
		Name:   "fig6",
		Title:  "3D SWM vs 2D SWM (Gaussian CF, σ=1 μm)",
		XLabel: "f (GHz)",
		YLabel: "Pr/Ps",
	}
	mat := core.PaperMaterial()
	for _, etaUM := range []float64{1, 2} {
		eta := etaUM * um
		c := surface.NewGaussianCorr(1*um, eta)
		fs := make([]float64, len(freqs))
		for i, fG := range freqs {
			fs[i] = fG * units.GHz
		}
		y3, err := meanLossSWM(cfg, c, eta, fs)
		if err != nil {
			return nil, err
		}
		// 2D variant: KL over profiles, same SSCM machinery. The 2D
		// truncation is variance-matched to the 3D one so the comparison
		// feeds both solvers the same fraction of surface roughness.
		L := cfg.LOverEta * eta
		kl3 := surface.NewKL(c, L, cfg.M)
		d3 := cfg.KLDim
		if d3 > len(kl3.Modes) {
			d3 = len(kl3.Modes)
		}
		frac := kl3.CapturedVariance(d3)
		solver, err := core.NewSolver(mat, L, cfg.M2D, mom.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		kl1 := surface.NewKL1D(c, L, cfg.M2D)
		d := kl1.TruncationForVariance(frac)
		if d > len(kl1.Modes) {
			d = len(kl1.Modes)
		}
		y2 := make([]float64, len(fs))
		for i, f := range fs {
			eval := func(xi []float64) (float64, error) {
				return solver.LossFactor2D(kl1.Synthesize(xi), f)
			}
			r, err := sscm.Run(context.Background(), d, 1, eval, sscm.Options{Workers: cfg.Workers})
			if err != nil {
				return nil, fmt.Errorf("experiments: Fig6 2D SSCM: %w", err)
			}
			y2[i] = r.PCE.Mean()
		}
		res.Series = append(res.Series,
			Series{Label: fmt.Sprintf("3D SWM (η=%gμm)", etaUM), X: freqs, Y: y3},
			Series{Label: fmt.Sprintf("2D SWM (η=%gμm)", etaUM), X: freqs, Y: y2},
		)
	}
	return res, nil
}

// Fig7 regenerates Fig. 7: the CDF of K at 5 GHz (σ = η = 1 μm) from
// Monte-Carlo against the 1st- and 2nd-order SSCM surrogates.
func Fig7(cfg Config) (*Result, error) {
	f := 5 * units.GHz
	c := surface.NewGaussianCorr(1*um, 1*um)
	L := cfg.LOverEta * 1 * um
	mat := core.PaperMaterial()
	solver, err := core.NewSolverTabulated(mat, L, cfg.M, zspanFor(c.Sigma()), mom.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	kl := surface.NewKL(c, L, cfg.M)
	// Monte-Carlo draws excite every retained mode at up to ±3–4σ
	// simultaneously, so the stochastic dimension must be resolution
	// matched: retain only modes whose wavelength spans ≥ 8 grid cells
	// (the SPM2 cross-validation's accuracy threshold). SSCM nodes are
	// tamer, but the comparison must use one common process.
	d := resolutionMatchedDim(kl, cfg.KLDim)
	eval := func(xi []float64) (float64, error) {
		return solver.LossFactor(kl.Synthesize(xi), f)
	}

	// Monte-Carlo reference over the same band-limited process.
	mc, err := montecarlo.Run(context.Background(), d, cfg.MCSamples, eval, montecarlo.Options{Workers: cfg.Workers, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig7 MC: %w", err)
	}

	res := &Result{
		Name:   "fig7",
		Title:  "CDF of Pr/Ps (σ=η=1 μm, f=5 GHz)",
		XLabel: "Pr/Ps",
		YLabel: "F(x)",
	}
	addCDF := func(label string, sample []float64) {
		e := stats.NewECDF(sample)
		lo, hi := e.Support()
		s := Series{Label: label}
		const pts = 41
		for i := 0; i < pts; i++ {
			x := lo + (hi-lo)*float64(i)/float64(pts-1)
			s.X = append(s.X, x)
			s.Y = append(s.Y, e.At(x))
		}
		res.Series = append(res.Series, s)
	}
	addCDF(fmt.Sprintf("MC (%d runs)", cfg.MCSamples), mc.Samples)

	var ks []float64
	for _, order := range []int{1, 2} {
		r, err := sscm.Run(context.Background(), d, order, eval, sscm.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig7 SSCM order %d: %w", order, err)
		}
		sur := r.PCE.Sample(20000, cfg.Seed+uint64(order))
		addCDF(fmt.Sprintf("%d-SSCM (%d pts)", order, r.Points), sur)
		ks = append(ks, stats.KSDistance(stats.NewECDF(mc.Samples), stats.NewECDF(sur)))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("stochastic dimension d=%d (resolution-matched from %d)", d, cfg.KLDim),
		fmt.Sprintf("MC mean %.4f ± %.4f", mc.Mean, mc.StdErr),
		fmt.Sprintf("KS distance to MC: 1st-SSCM %.4f, 2nd-SSCM %.4f", ks[0], ks[1]),
	)
	return res, nil
}

// resolutionMatchedDim clamps a KL truncation so every retained mode's
// wavelength spans at least 8 grid cells of the solver's mesh.
func resolutionMatchedDim(kl *surface.KL, d int) int {
	if d > len(kl.Modes) {
		d = len(kl.Modes)
	}
	h := kl.L / float64(kl.M)
	kMax := 2 * math.Pi / (8 * h)
	for j := 0; j < d; j++ {
		m := kl.Modes[j]
		k := 2 * math.Pi * math.Hypot(float64(m.Mx), float64(m.My)) / kl.L
		if k > kMax {
			return j
		}
	}
	return d
}

// Table1 regenerates Table I: the number of sampling points each method
// needs (MC vs sparse-grid SSCM) for the two correlation functions.
func Table1(cfg Config) (*Result, error) {
	type row struct {
		cf string
		d  int
	}
	rows := []row{
		{"Gaussian", 16},
		{"CF (12)", 19},
	}
	res := &Result{
		Name:   "table1",
		Title:  "Number of sampling points (MC vs SSCM)",
		XLabel: "row",
		YLabel: "points",
	}
	mcS := Series{Label: "MC"}
	s1 := Series{Label: "1st-SSCM"}
	s2 := Series{Label: "2nd-SSCM"}
	for i, r := range rows {
		mcS.X = append(mcS.X, float64(i+1))
		mcS.Y = append(mcS.Y, 5000)
		s1.X = append(s1.X, float64(i+1))
		s1.Y = append(s1.Y, float64(sscm.GridSize(r.d, 1)))
		s2.X = append(s2.X, float64(i+1))
		s2.Y = append(s2.Y, float64(sscm.GridSize(r.d, 2)))
		res.Notes = append(res.Notes, fmt.Sprintf("row %d: %s CF, KL dimension d=%d", i+1, r.cf, r.d))
	}
	res.Series = []Series{mcS, s1, s2}
	res.Notes = append(res.Notes,
		"paper reports 33/345 (Gaussian) and 39/462 (CF 12); level-1 counts match exactly,",
		"level-2 counts depend on the 1-D rule growth (ours: linear-growth Gauss–Hermite)")
	return res, nil
}

// All runs every exhibit with the given configuration.
func All(cfg Config) ([]*Result, error) {
	type gen struct {
		name string
		fn   func(Config) (*Result, error)
	}
	gens := []gen{
		{"fig2", Fig2}, {"fig3", Fig3}, {"fig4", Fig4}, {"fig5", Fig5},
		{"fig6", Fig6}, {"fig7", Fig7}, {"table1", Table1},
	}
	var out []*Result
	for _, g := range gens {
		r, err := g.fn(cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", g.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Monotone reports whether a series is non-decreasing within tol — used
// by acceptance tests on the regenerated exhibits.
func (s Series) Monotone(tol float64) bool {
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1]-tol {
			return false
		}
	}
	return true
}

// Find returns the series with the given label prefix, or nil.
func (r *Result) Find(prefix string) *Series {
	for i := range r.Series {
		if len(r.Series[i].Label) >= len(prefix) && r.Series[i].Label[:len(prefix)] == prefix {
			return &r.Series[i]
		}
	}
	return nil
}
