package experiments

import (
	"math"
	"testing"

	"roughsim/internal/core"
	"roughsim/internal/hbm"
	"roughsim/internal/spm2"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

// The campaign comparison columns must be the same numbers the baseline
// packages produce when called directly — no drift between a campaign
// CSV and the corresponding paper exhibit.
func TestBaselinesAgreeWithDirectCalls(t *testing.T) {
	const (
		sigma = 0.4 * um
		eta   = 1.0 * um
		f     = 5e9
	)
	mat := core.PaperMaterial()
	corr := surface.NewGaussianCorr(sigma, eta)
	cell := CompareCell{EpsR: mat.EpsR, Rho: mat.Rho, Sigma: sigma, Eta: eta, Corr: corr}
	got := cell.Baselines(f)

	p := mat.Params(f)
	wantSPM2 := spm2.LossFactorCorr(spm2.Params{K1: p.K1, K2: p.K2, Beta: p.Beta}, corr, eta)
	if got.SPM2 != wantSPM2 {
		t.Errorf("SPM2 = %v, direct call = %v", got.SPM2, wantSPM2)
	}

	tile := 4 * eta * eta
	a := math.Pow(2*sigma*sigma*tile/math.Pi, 0.25)
	wantHBM := hbm.Model{Radius: a, Tile: tile, Rho: mat.Rho}.LossFactor(f)
	if got.HBM != wantHBM {
		t.Errorf("HBM = %v, direct call = %v", got.HBM, wantHBM)
	}
	if !(got.HBM > 0) || math.IsInf(got.HBM, 0) {
		t.Errorf("HBM = %v, want finite and positive", got.HBM)
	}
	// In the strong-skin-effect regime (δ ≪ a) the boss dissipates more
	// than the flat disc it replaces, so K must exceed 1 there. (At 5 GHz
	// δ ≈ a and the Hall model legitimately dips below 1.)
	if k := cell.Baselines(100e9).HBM; k <= 1 {
		t.Errorf("HBM(100 GHz) = %v, want > 1 in the PEC limit", k)
	}

	wantEmp, err := core.Empirical(sigma, units.SkinDepth(mat.Rho, f, units.Mu0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Empirical != wantEmp {
		t.Errorf("Empirical = %v, direct call = %v", got.Empirical, wantEmp)
	}
}

// The anisotropic path must match Simulation.SPM2LossFactor's formula.
func TestBaselinesAnisoMatchesSPM2Aniso(t *testing.T) {
	const (
		sigma = 0.3 * um
		etaX  = 1.0 * um
		etaY  = 2.0 * um
		f     = 4e9
	)
	mat := core.PaperMaterial()
	cell := CompareCell{EpsR: mat.EpsR, Rho: mat.Rho, Sigma: sigma, Eta: etaX, EtaY: etaY}
	got := cell.Baselines(f)

	p := mat.Params(f)
	ac := surface.NewAnisoGaussianCorr(sigma, etaX, etaY)
	want := spm2.LossFactorAniso(spm2.Params{K1: p.K1, K2: p.K2, Beta: p.Beta},
		ac.PSD2D, 40/math.Min(etaX, etaY), 0, 0)
	if got.SPM2 != want {
		t.Errorf("aniso SPM2 = %v, direct call = %v", got.SPM2, want)
	}
	if cell.TileArea() != 4*etaX*etaY {
		t.Errorf("tile = %v, want %v", cell.TileArea(), 4*etaX*etaY)
	}
}

// A flat-surface campaign row reports K ≡ 1 across every model.
func TestBaselinesFlatSurfaceIsUnity(t *testing.T) {
	mat := core.PaperMaterial()
	cell := CompareCell{EpsR: mat.EpsR, Rho: mat.Rho, Sigma: 0, Eta: 1 * um}
	for _, f := range []float64{1e9, 5e9, 9e9} {
		got := cell.Baselines(f)
		if got.SPM2 != 1 || got.HBM != 1 || got.Empirical != 1 {
			t.Errorf("flat cell at %g Hz: %+v, want K ≡ 1 across all models", f, got)
		}
	}
	if cell.BossRadius() != 0 {
		t.Errorf("flat boss radius = %v, want 0", cell.BossRadius())
	}
}
