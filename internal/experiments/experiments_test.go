package experiments

import (
	"bytes"
	"strings"
	"testing"

	"roughsim/internal/core"
	"roughsim/internal/surface"
)

// The experiment tests run the Bench configuration: deliberately coarse,
// but every qualitative feature of the paper's exhibits must survive.

func TestFig2SurfaceStatistics(t *testing.T) {
	r, err := Fig2(Bench())
	if err != nil {
		t.Fatal(err)
	}
	emp := r.Find("empirical")
	tgt := r.Find("target")
	if emp == nil || tgt == nil {
		t.Fatal("missing series")
	}
	// Lag-0 value (the variance) within 15% of σ² = 1 μm².
	if d := emp.Y[0] - tgt.Y[0]; d > 0.15 || d < -0.15 {
		t.Fatalf("variance mismatch: emp %g vs target %g", emp.Y[0], tgt.Y[0])
	}
	// Empirical CF decays.
	if emp.Y[len(emp.Y)-1] > 0.5*emp.Y[0] {
		t.Fatalf("empirical CF does not decay: %v", emp.Y)
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-backed experiment")
	}
	r, err := Fig3(Bench())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 7 {
		t.Fatalf("want 7 series (empirical + 3×SWM + 3×SPM2), got %d", len(r.Series))
	}
	for _, s := range r.Series {
		// Every K curve exceeds 1 and grows with frequency.
		for i, y := range s.Y {
			if y < 0.98 {
				t.Errorf("%s: K[%d] = %g < 1", s.Label, i, y)
			}
		}
		if !s.Monotone(0.02) {
			t.Errorf("%s not (approximately) increasing: %v", s.Label, s.Y)
		}
	}
	// Rougher surface (smaller η) loses more at the top frequency: the
	// ordering SWM(η=1) > SWM(η=2) > SWM(η=3) — the paper's headline.
	last := func(lbl string) float64 {
		s := r.Find(lbl)
		if s == nil {
			t.Fatalf("missing %s", lbl)
		}
		return s.Y[len(s.Y)-1]
	}
	k1, k2, k3 := last("SWM (η=1μm)"), last("SWM (η=2μm)"), last("SWM (η=3μm)")
	if !(k1 > k2 && k2 > k3) {
		t.Fatalf("η ordering violated: %g, %g, %g", k1, k2, k3)
	}
	// Smooth case agrees with SPM2 better than the rough case does.
	s1 := last("SPM2 (η=1μm)")
	s3 := last("SPM2 (η=3μm)")
	rough := absf(k1-s1) / (s1 - 1)
	smooth := absf(k3-s3) / (s3 - 1)
	if smooth > rough+0.3 {
		t.Fatalf("SWM/SPM2 agreement should be best for the smoothest case: smooth %g rough %g", smooth, rough)
	}
}

func TestFig4Agreement(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-backed experiment")
	}
	r, err := Fig4(Bench())
	if err != nil {
		t.Fatal(err)
	}
	swm := r.Find("SWM")
	sp := r.Find("SPM2")
	// Under the measurement-extracted CF the two methods agree (the
	// paper's "good agreement" claim). At the bench scale the KL
	// truncation carries only part of CF (12)'s heavy-tailed variance,
	// so compare the truncation-corrected excess: (K−1)/capture must
	// bracket the SPM2 excess within a factor band. Low frequencies are
	// skipped: the excess there is within discretization noise.
	cfg := Bench()
	c := surface.NewMeasuredCorr(1e-6, 1.4e-6, 0.53e-6)
	kl := surface.NewKL(c, cfg.LOverEta*1.4e-6, cfg.M)
	capture := kl.CapturedVariance(cfg.KLDim)
	for i := range swm.Y {
		spEx := sp.Y[i] - 1
		if spEx < 0.15 {
			continue
		}
		corr := (swm.Y[i] - 1) / capture
		if corr < 0.4*spEx || corr > 1.7*spEx {
			t.Errorf("f=%g: corrected SWM excess %g vs SPM2 excess %g (capture %.2f)",
				swm.X[i], corr, spEx, capture)
		}
	}
	// And both curves rise monotonically.
	if !swm.Monotone(0.01) || !sp.Monotone(0.001) {
		t.Errorf("curves not monotone: SWM %v, SPM2 %v", swm.Y, sp.Y)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-backed experiment")
	}
	r, err := Fig5(Bench())
	if err != nil {
		t.Fatal(err)
	}
	swm := r.Find("SWM")
	hb := r.Find("HBM")
	// Both curves increase with frequency.
	for _, s := range []*Series{swm, hb} {
		if !s.Monotone(0.05) {
			t.Errorf("%s not increasing: %v", s.Label, s.Y)
		}
	}
	// Quantitative agreement with HBM is only meaningful where the grid
	// resolves the skin depth (the paper uses Δ = δ/5 here); at the
	// Bench grid that limits the check to the lower frequencies.
	cfg := Bench()
	h := 10 * um / float64(cfg.MFig5)
	mat := core.PaperMaterial()
	checked := 0
	for i := range swm.Y {
		delta := mat.SkinDepth(swm.X[i] * 1e9)
		if h > delta {
			continue
		}
		ratio := swm.Y[i] / hb.Y[i]
		if ratio < 0.55 || ratio > 1.7 {
			t.Errorf("f=%g: SWM/HBM = %g", swm.X[i], ratio)
		}
		checked++
	}
	if checked == 0 {
		// All points under-resolved: at least demand a rising SWM curve
		// clearly above 1.
		if swm.Y[len(swm.Y)-1] < 1.2 {
			t.Errorf("SWM shows no boss enhancement: %v", swm.Y)
		}
	}
}

func TestFig6ThreeDExceedsTwoD(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-backed experiment")
	}
	r, err := Fig6(Bench())
	if err != nil {
		t.Fatal(err)
	}
	for _, eta := range []string{"η=1μm", "η=2μm"} {
		s3 := r.Find("3D SWM (" + eta)
		s2 := r.Find("2D SWM (" + eta)
		if s3 == nil || s2 == nil {
			t.Fatalf("missing series for %s", eta)
		}
		// The 3D loss enhancement exceeds the 2D one (the paper's Fig. 6
		// message), at least at the higher frequencies.
		n := len(s3.Y)
		for i := n / 2; i < n; i++ {
			if s3.Y[i] <= s2.Y[i] {
				t.Errorf("%s f=%g: 3D K %g ≤ 2D K %g", eta, s3.X[i], s3.Y[i], s2.Y[i])
			}
		}
	}
}

func TestFig7SSCMMatchesMC(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-backed experiment")
	}
	r, err := Fig7(Bench())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("want 3 CDFs, got %d", len(r.Series))
	}
	// All CDFs are monotone from ~0 to ~1.
	for _, s := range r.Series {
		if !s.Monotone(1e-9) {
			t.Errorf("%s CDF not monotone", s.Label)
		}
		if s.Y[0] > 0.2 || s.Y[len(s.Y)-1] < 0.95 {
			t.Errorf("%s CDF range [%g, %g]", s.Label, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
	// The KS note exists and was computed.
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "KS distance") {
			found = true
		}
	}
	if !found {
		t.Fatal("missing KS note")
	}
}

func TestTable1Counts(t *testing.T) {
	r, err := Table1(Default())
	if err != nil {
		t.Fatal(err)
	}
	s1 := r.Find("1st-SSCM")
	if s1.Y[0] != 33 || s1.Y[1] != 39 {
		t.Fatalf("1st-SSCM counts %v, want [33 39] (paper Table I)", s1.Y)
	}
	s2 := r.Find("2nd-SSCM")
	mc := r.Find("MC")
	for i := range s2.Y {
		if s2.Y[i] >= mc.Y[i]/5 {
			t.Errorf("2nd-SSCM %g not ≪ MC %g", s2.Y[i], mc.Y[i])
		}
	}
}

func TestResultWriters(t *testing.T) {
	r := &Result{
		Name: "t", Title: "T", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{5, 6}},
		},
		Notes: []string{"n1"},
	}
	var csv, tbl bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "x,a,b") || !strings.Contains(csv.String(), "1,3,5") {
		t.Fatalf("CSV malformed:\n%s", csv.String())
	}
	if !strings.Contains(tbl.String(), "n1") {
		t.Fatalf("table missing note:\n%s", tbl.String())
	}
	// Mismatched grids fall back to long format.
	r.Series[1].X = []float64{9}
	r.Series[1].Y = []float64{9}
	csv.Reset()
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "9,b,9") {
		t.Fatalf("long CSV malformed:\n%s", csv.String())
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
