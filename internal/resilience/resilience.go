// Package resilience is the execution-robustness layer shared by the
// solver and the stochastic drivers: a typed classification of the
// failure modes a long stochastic sweep meets in practice (iterative-
// solver non-convergence, singular assemblies, invalid input, NaN/Inf
// contamination, worker panics, cancellation), a configurable
// retry-with-fallback policy for running a chain of solver stages, and
// a deterministic fault-injection hook so every recovery path can be
// exercised in tests without depending on numerically fragile inputs.
//
// Production surface-integral codes treat iterative breakdown as an
// expected event to recover from, not a fatal error; this package gives
// the rest of the repository one vocabulary for doing the same.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"roughsim/internal/cmplxmat"
)

// Kind classifies a failure by its cause.
type Kind int

const (
	// KindUnknown is an unclassified failure.
	KindUnknown Kind = iota
	// KindConvergence: an iterative solver exhausted its budget or a
	// verified residual stayed above tolerance.
	KindConvergence
	// KindSingular: a factorization met a singular (to working
	// precision) matrix.
	KindSingular
	// KindInvalidInput: the caller supplied out-of-domain arguments.
	KindInvalidInput
	// KindNumerical: NaN or Inf contaminated a result.
	KindNumerical
	// KindPanic: a worker panicked and the panic was recovered into an
	// error.
	KindPanic
	// KindCanceled: the context was cancelled or its deadline expired.
	KindCanceled
)

// String returns the short accounting label of the kind.
func (k Kind) String() string {
	switch k {
	case KindConvergence:
		return "convergence"
	case KindSingular:
		return "singular"
	case KindInvalidInput:
		return "invalid-input"
	case KindNumerical:
		return "numerical"
	case KindPanic:
		return "panic"
	case KindCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// ParseKind is the inverse of Kind.String: it decodes the accounting
// label back into the kind, so a classification can cross a process
// boundary (journal records, the distributed tier's wire protocol).
// Unrecognized labels decode as KindUnknown.
func ParseKind(s string) Kind {
	switch s {
	case "convergence":
		return KindConvergence
	case "singular":
		return KindSingular
	case "invalid-input":
		return KindInvalidInput
	case "numerical":
		return KindNumerical
	case "panic":
		return KindPanic
	case "canceled":
		return KindCanceled
	default:
		return KindUnknown
	}
}

// Error is a classified failure. It wraps the underlying cause so that
// errors.Is / errors.As keep working through the classification.
type Error struct {
	Kind Kind
	Op   string // the operation that failed, e.g. "mom.solve"
	Err  error  // underlying cause (may be nil)
}

// New wraps err with a classification. err may be nil.
func New(kind Kind, op string, err error) *Error {
	return &Error{Kind: kind, Op: op, Err: err}
}

// Errorf builds a classified error from a format string.
func Errorf(kind Kind, op, format string, args ...any) *Error {
	return &Error{Kind: kind, Op: op, Err: fmt.Errorf(format, args...)}
}

func (e *Error) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("%s: %s", e.Op, e.Kind)
	}
	return fmt.Sprintf("%s: %s: %v", e.Op, e.Kind, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Classify walks the error chain and returns the failure kind:
// an embedded *Error's kind, context cancellation, or the known solver
// sentinels (cmplxmat.ErrNoConvergence, cmplxmat.ErrSingular).
func Classify(err error) Kind {
	if err == nil {
		return KindUnknown
	}
	var re *Error
	if errors.As(err, &re) {
		return re.Kind
	}
	var inj *InjectedFault
	if errors.As(err, &inj) {
		if inj.Panic {
			return KindPanic
		}
		return inj.Kind
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return KindCanceled
	}
	if errors.Is(err, cmplxmat.ErrNoConvergence) {
		return KindConvergence
	}
	if errors.Is(err, cmplxmat.ErrSingular) {
		return KindSingular
	}
	return KindUnknown
}

// Stage is one step of a fallback chain.
type Stage struct {
	Name string
	Run  func(ctx context.Context) error
}

// Attempt records one stage execution (or injected failure).
type Attempt struct {
	Stage    string
	Kind     Kind  // classification when Err != nil
	Err      error // nil on success
	Injected bool  // the failure came from the fault injector
	// Skipped marks a stage that was never executed because a
	// deterministic admissibility check rejected it up front (e.g. the
	// FFT-operator stage on an over-bound surface). Skipped attempts are
	// recorded for observability but are not execution failures: retry
	// budget is never spent on them.
	Skipped bool
}

// Report is the per-stage accounting of one chain execution.
type Report struct {
	Attempts []Attempt
	Winner   string // name of the stage that succeeded; "" if none
}

// Failed returns the number of failed execution attempts. Skipped
// attempts (stages gated off by a deterministic admissibility check)
// carry their rejection error for observability but never ran, so they
// are not counted.
func (r *Report) Failed() int {
	n := 0
	for _, a := range r.Attempts {
		if a.Err != nil && !a.Skipped {
			n++
		}
	}
	return n
}

// Policy configures how a fallback chain is executed.
type Policy struct {
	// Retries is the number of extra attempts per stage before falling
	// through to the next one. Default 0: each stage runs once.
	Retries int
	// RetryOn reports whether a failure kind is worth retrying; nil
	// retries convergence and numerical failures only (see Retryable —
	// retrying an invalid input or a singular matrix cannot help).
	RetryOn func(Kind) bool
	// Backoff is the wait schedule between retries of one stage (not
	// between stages: falling through to the next solver immediately is
	// the point of a fallback chain). The zero value keeps retries
	// immediate.
	Backoff Backoff
}

func (p Policy) retryable(k Kind) bool {
	if p.RetryOn != nil {
		return p.RetryOn(k)
	}
	return Retryable(k)
}

// Execute runs the stages in order until one succeeds, consulting the
// injector (which may be nil) before each attempt. The returned Report
// records every attempt; on total failure the returned error carries the
// classification of the last attempt and wraps its cause. Cancellation
// is checked between attempts and returned as ctx.Err().
func (p Policy) Execute(ctx context.Context, op string, inj *Injector, key uint64, stages []Stage) (Report, error) {
	var rep Report
	var lastErr error
	for _, st := range stages {
		for attempt := 0; attempt <= p.Retries; attempt++ {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			var err error
			injected := false
			if f := inj.Fault(st.Name, key); f != nil {
				err = New(f.Kind, op+"."+st.Name, f)
				injected = true
			} else {
				err = st.Run(ctx)
			}
			if err == nil {
				rep.Attempts = append(rep.Attempts, Attempt{Stage: st.Name})
				rep.Winner = st.Name
				return rep, nil
			}
			kind := Classify(err)
			rep.Attempts = append(rep.Attempts, Attempt{Stage: st.Name, Kind: kind, Err: err, Injected: injected})
			lastErr = err
			if !p.retryable(kind) {
				break
			}
			if attempt < p.Retries {
				if d := p.Backoff.Delay(attempt+1, key); d > 0 {
					t := time.NewTimer(d)
					select {
					case <-ctx.Done():
						t.Stop()
						return rep, ctx.Err()
					case <-t.C:
					}
				}
			}
		}
	}
	return rep, New(Classify(lastErr), op,
		fmt.Errorf("all %d fallback stages failed: %w", len(stages), lastErr))
}
