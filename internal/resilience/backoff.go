package resilience

import (
	"math"
	"time"
)

// Backoff is a deterministic exponential-backoff-with-jitter schedule
// for retrying transient failures (queue re-enqueues, fallback-chain
// retries). The zero value disables waiting entirely, so existing call
// sites keep their immediate-retry behavior.
type Backoff struct {
	// Base is the delay after the first failed attempt; 0 disables
	// backoff.
	Base time.Duration
	// Factor is the per-attempt growth (default 2).
	Factor float64
	// Max caps the delay (0 means uncapped).
	Max time.Duration
	// Jitter spreads the delay by ±Jitter fraction (in [0, 1)) to
	// decorrelate retry storms. The jitter is deterministic — derived
	// from (key, attempt) through the same seed-free hash the fault
	// injector uses — so tests and replays are reproducible.
	Jitter float64
}

// Delay returns the wait before the retry that follows the attempt-th
// failure (attempt is 1-based). key decorrelates the jitter of distinct
// jobs that fail in lockstep.
func (b Backoff) Delay(attempt int, key uint64) time.Duration {
	if b.Base <= 0 || attempt <= 0 {
		return 0
	}
	factor := b.Factor
	if factor <= 0 {
		factor = 2
	}
	d := float64(b.Base) * math.Pow(factor, float64(attempt-1))
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if j := b.Jitter; j > 0 && j < 1 {
		u := faultHash("backoff", key^(uint64(attempt)*0x9e3779b97f4a7c15))
		d *= 1 - j + 2*j*u
		if b.Max > 0 && d > float64(b.Max) {
			d = float64(b.Max)
		}
	}
	return time.Duration(d)
}

// Retryable reports whether a failure of kind k can plausibly succeed
// on another attempt: iterative-solver non-convergence and numerical
// contamination are load- and conditioning-dependent, so they are;
// everything else (invalid input, a singular system, a recovered
// panic, cancellation) is permanent — retrying cannot change the
// outcome, so callers fail fast instead of burning attempts.
func Retryable(k Kind) bool {
	return k == KindConvergence || k == KindNumerical
}

// Permanent is the complement of Retryable: the failure
// classifications for which retry budget must not be spent.
func Permanent(k Kind) bool { return !Retryable(k) }
