package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"roughsim/internal/cmplxmat"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Kind
	}{
		{nil, KindUnknown},
		{errors.New("plain"), KindUnknown},
		{cmplxmat.ErrNoConvergence, KindConvergence},
		{fmt.Errorf("stage: %w", cmplxmat.ErrNoConvergence), KindConvergence},
		{cmplxmat.ErrSingular, KindSingular},
		{context.Canceled, KindCanceled},
		{context.DeadlineExceeded, KindCanceled},
		{New(KindNumerical, "op", errors.New("NaN")), KindNumerical},
		{fmt.Errorf("wrap: %w", Errorf(KindInvalidInput, "op", "bad L")), KindInvalidInput},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestErrorUnwrapChain(t *testing.T) {
	base := errors.New("base")
	e := New(KindConvergence, "mom.solve", fmt.Errorf("stage gmres: %w", base))
	if !errors.Is(e, base) {
		t.Fatal("errors.Is through resilience.Error failed")
	}
	var re *Error
	if !errors.As(fmt.Errorf("outer: %w", e), &re) || re.Kind != KindConvergence || re.Op != "mom.solve" {
		t.Fatalf("errors.As failed: %+v", re)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindUnknown:      "unknown",
		KindConvergence:  "convergence",
		KindSingular:     "singular",
		KindInvalidInput: "invalid-input",
		KindNumerical:    "numerical",
		KindPanic:        "panic",
		KindCanceled:     "canceled",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var inj *Injector
	if f := inj.Fault("any", 3); f != nil {
		t.Fatal("nil injector must inject nothing")
	}
	if inj.Matches("any", 3) {
		t.Fatal("nil injector must match nothing")
	}
}

func TestInjectorKeysFirstMatchWins(t *testing.T) {
	inj := NewInjector(
		FaultSpec{Op: "op", Keys: []uint64{5}, Panic: true},
		FaultSpec{Op: "op", Fraction: 1, Kind: KindConvergence},
	)
	f := inj.Fault("op", 5)
	if f == nil || !f.Panic {
		t.Fatalf("key-listed spec must win over the blanket fraction: %+v", f)
	}
	f = inj.Fault("op", 6)
	if f == nil || f.Panic || f.Kind != KindConvergence {
		t.Fatalf("non-listed key must fall through to the fraction spec: %+v", f)
	}
	if inj.Fault("other", 5) != nil {
		t.Fatal("op mismatch must not inject")
	}
}

func TestInjectorFractionDeterministicAndUniform(t *testing.T) {
	inj := NewInjector(FaultSpec{Op: "mc.sample", Fraction: 0.1, Kind: KindConvergence})
	const n = 10000
	hits := 0
	for i := uint64(0); i < n; i++ {
		a := inj.Fault("mc.sample", i)
		b := inj.Fault("mc.sample", i)
		if (a == nil) != (b == nil) {
			t.Fatalf("injection not deterministic at key %d", i)
		}
		if a != nil {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("hit fraction %g, want ≈ 0.1", frac)
	}
}

func TestInjectedFaultIsError(t *testing.T) {
	inj := NewInjector(FaultSpec{Op: "op", Fraction: 1, Kind: KindSingular})
	f := inj.Fault("op", 0)
	if f == nil {
		t.Fatal("expected fault")
	}
	var err error = f
	if Classify(err) != KindSingular {
		t.Fatalf("injected fault classified as %v", Classify(err))
	}
}

func TestPolicyExecuteFallbackOrder(t *testing.T) {
	var ran []string
	stages := []Stage{
		{Name: "a", Run: func(ctx context.Context) error { ran = append(ran, "a"); return cmplxmat.ErrNoConvergence }},
		{Name: "b", Run: func(ctx context.Context) error { ran = append(ran, "b"); return cmplxmat.ErrNoConvergence }},
		{Name: "c", Run: func(ctx context.Context) error { ran = append(ran, "c"); return nil }},
		{Name: "d", Run: func(ctx context.Context) error { t.Fatal("stage after winner must not run"); return nil }},
	}
	var p Policy
	rep, err := p.Execute(context.Background(), "test", nil, 0, stages)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Winner != "c" || rep.Failed() != 2 {
		t.Fatalf("report: %+v", rep)
	}
	if len(ran) != 3 || ran[0] != "a" || ran[1] != "b" || ran[2] != "c" {
		t.Fatalf("stage order: %v", ran)
	}
	if len(rep.Attempts) != 3 || rep.Attempts[0].Kind != KindConvergence || rep.Attempts[2].Err != nil {
		t.Fatalf("attempts: %+v", rep.Attempts)
	}
}

func TestPolicyExecuteAllFail(t *testing.T) {
	stages := []Stage{
		{Name: "a", Run: func(ctx context.Context) error { return cmplxmat.ErrNoConvergence }},
		{Name: "b", Run: func(ctx context.Context) error { return cmplxmat.ErrSingular }},
	}
	var p Policy
	rep, err := p.Execute(context.Background(), "test", nil, 0, stages)
	if err == nil || rep.Winner != "" {
		t.Fatal("expected failure when every stage fails")
	}
	if Classify(err) != KindSingular {
		t.Fatalf("final error should classify as the last failure: %v", err)
	}
	if !errors.Is(err, cmplxmat.ErrSingular) {
		t.Fatal("final error must wrap the last stage error")
	}
	if len(rep.Attempts) != 2 {
		t.Fatalf("attempts: %+v", rep.Attempts)
	}
}

func TestPolicyExecuteInjection(t *testing.T) {
	inj := NewInjector(FaultSpec{Op: "a", Fraction: 1, Kind: KindConvergence})
	calls := 0
	stages := []Stage{
		{Name: "a", Run: func(ctx context.Context) error { calls++; return nil }},
		{Name: "b", Run: func(ctx context.Context) error { return nil }},
	}
	var p Policy
	rep, err := p.Execute(context.Background(), "test", inj, 42, stages)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("injected stage must fail without running")
	}
	if rep.Winner != "b" || !rep.Attempts[0].Injected {
		t.Fatalf("report: %+v", rep)
	}
}

func TestPolicyExecuteRetries(t *testing.T) {
	fails := 2
	stages := []Stage{
		{Name: "a", Run: func(ctx context.Context) error {
			if fails > 0 {
				fails--
				return cmplxmat.ErrNoConvergence
			}
			return nil
		}},
	}
	p := Policy{Retries: 2}
	rep, err := p.Execute(context.Background(), "test", nil, 0, stages)
	if err != nil {
		t.Fatalf("retries should have recovered the flaky stage: %v", err)
	}
	if rep.Winner != "a" || len(rep.Attempts) != 3 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestPolicyExecuteNoRetryOnInvalidInput(t *testing.T) {
	calls := 0
	stages := []Stage{
		{Name: "a", Run: func(ctx context.Context) error {
			calls++
			return Errorf(KindInvalidInput, "a", "bad geometry")
		}},
	}
	p := Policy{Retries: 5}
	if _, err := p.Execute(context.Background(), "test", nil, 0, stages); err == nil {
		t.Fatal("expected failure")
	}
	if calls != 1 {
		t.Fatalf("invalid-input must not be retried, ran %d times", calls)
	}
}

func TestPolicyExecuteCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stages := []Stage{
		{Name: "a", Run: func(ctx context.Context) error { t.Fatal("must not run"); return nil }},
	}
	var p Policy
	_, err := p.Execute(ctx, "test", nil, 0, stages)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}
