package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffZeroValueIsImmediate(t *testing.T) {
	var b Backoff
	if d := b.Delay(1, 42); d != 0 {
		t.Fatalf("zero backoff delays %v", d)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 60 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 60, 60} // ms, factor 2, capped
	for i, w := range want {
		if d := b.Delay(i+1, 7); d != w*time.Millisecond {
			t.Fatalf("delay(%d) = %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Jitter: 0.5}
	seen := map[time.Duration]bool{}
	for attempt := 1; attempt <= 4; attempt++ {
		for key := uint64(0); key < 8; key++ {
			d1 := b.Delay(attempt, key)
			d2 := b.Delay(attempt, key)
			if d1 != d2 {
				t.Fatalf("jitter not deterministic: %v vs %v", d1, d2)
			}
			nominal := float64(100*time.Millisecond) * pow2(attempt-1)
			lo, hi := time.Duration(0.5*nominal), time.Duration(1.5*nominal)
			if d1 < lo || d1 > hi {
				t.Fatalf("delay(%d, %d) = %v outside [%v, %v]", attempt, key, d1, lo, hi)
			}
			seen[d1] = true
		}
	}
	if len(seen) < 8 {
		t.Fatalf("jitter produced only %d distinct delays over 32 (attempt, key) pairs", len(seen))
	}
}

func pow2(n int) float64 {
	f := 1.0
	for i := 0; i < n; i++ {
		f *= 2
	}
	return f
}

func TestPermanentComplementOfRetryable(t *testing.T) {
	for _, k := range []Kind{KindUnknown, KindConvergence, KindSingular,
		KindInvalidInput, KindNumerical, KindPanic, KindCanceled} {
		if Retryable(k) == Permanent(k) {
			t.Fatalf("kind %v both retryable and permanent", k)
		}
	}
	if !Retryable(KindConvergence) || !Retryable(KindNumerical) {
		t.Fatal("convergence and numerical failures must be retryable")
	}
	if !Permanent(KindInvalidInput) || !Permanent(KindSingular) || !Permanent(KindCanceled) {
		t.Fatal("invalid input, singular and canceled must be permanent")
	}
}

// Execute must honor the policy backoff between same-stage retries and
// remain promptly cancelable while sleeping.
func TestPolicyBackoffBetweenRetries(t *testing.T) {
	calls := 0
	p := Policy{Retries: 2, Backoff: Backoff{Base: 20 * time.Millisecond}}
	start := time.Now()
	_, err := p.Execute(context.Background(), "op", nil, 0, []Stage{{
		Name: "s",
		Run: func(context.Context) error {
			calls++
			if calls < 3 {
				return New(KindConvergence, "op.s", errors.New("transient"))
			}
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Two retries: 20ms + 40ms of scheduled backoff.
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("retries completed in %v; backoff not applied", elapsed)
	}
}

func TestPolicyBackoffCancelableMidSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Retries: 1, Backoff: Backoff{Base: time.Hour}}
	done := make(chan error, 1)
	go func() {
		_, err := p.Execute(ctx, "op", nil, 0, []Stage{{
			Name: "s",
			Run: func(context.Context) error {
				return New(KindConvergence, "op.s", errors.New("transient"))
			},
		}})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Execute did not abort the backoff sleep on cancel")
	}
}

// The process-level chaos point fires only for Exit specs and is
// deterministic in its occurrence key.
func TestInjectorCrash(t *testing.T) {
	exits := []int{}
	realExit := osExit
	osExit = func(code int) { exits = append(exits, code) }
	defer func() { osExit = realExit }()

	spec, err := ParseCrashSpec("sweep.checkpoint:2")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(spec)
	inj.Crash("sweep.checkpoint", 1)
	inj.Crash("other.op", 2)
	if len(exits) != 0 {
		t.Fatalf("crash fired early: %v", exits)
	}
	inj.Crash("sweep.checkpoint", 2)
	if len(exits) != 1 || exits[0] != crashStatus {
		t.Fatalf("exits = %v, want one exit with status %d", exits, crashStatus)
	}

	// Error-kind specs must never exit the process.
	errInj := NewInjector(FaultSpec{Op: "x", Fraction: 1, Kind: KindConvergence})
	errInj.Crash("x", 1)
	if len(exits) != 1 {
		t.Fatal("non-Exit spec crashed the process")
	}
	// Nil injector: free no-op.
	var nilInj *Injector
	nilInj.Crash("x", 1)
}

func TestParseCrashSpecRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "op", "op:", ":3", "op:0", "op:-1", "op:x"} {
		if _, err := ParseCrashSpec(s); err == nil {
			t.Fatalf("ParseCrashSpec(%q) accepted", s)
		}
	}
}
