package resilience

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// FaultSpec selects a deterministic subset of (op, key) pairs to fail.
// A spec matches an op exactly; within an op it matches the explicit
// Keys plus a pseudo-random (but seed-free, scheduling-independent)
// Fraction of all keys, chosen by hashing (op, key).
type FaultSpec struct {
	Op       string
	Fraction float64  // fraction of keys to fail in [0, 1]
	Keys     []uint64 // explicit keys to fail
	Kind     Kind     // classification of the injected failure
	Panic    bool     // deliver the fault as a panic instead of an error
	// Exit escalates the fault to process level: a match terminates the
	// process immediately with the SIGKILL-like status 137 (no deferred
	// functions, no flushes), simulating a crash/OOM-kill at exactly
	// this point. Delivered only through Injector.Crash — error-path
	// call sites never exit.
	Exit bool
}

func (s *FaultSpec) matches(key uint64) bool {
	for _, k := range s.Keys {
		if k == key {
			return true
		}
	}
	return s.Fraction > 0 && faultHash(s.Op, key) < s.Fraction
}

// Injector deterministically injects failures for testing the recovery
// paths. The zero/nil injector injects nothing, so production call sites
// can consult it unconditionally.
type Injector struct {
	specs []FaultSpec
}

// NewInjector builds an injector from fault specs. Specs are consulted
// in order; the first match for an (op, key) pair wins.
func NewInjector(specs ...FaultSpec) *Injector {
	return &Injector{specs: specs}
}

// InjectedFault is the failure an Injector delivers. It implements
// error so it can flow through ordinary error plumbing.
type InjectedFault struct {
	Op    string
	Key   uint64
	Kind  Kind
	Panic bool
	Exit  bool
}

func (f *InjectedFault) Error() string {
	return fmt.Sprintf("injected %s fault at %s key %d", f.Kind, f.Op, f.Key)
}

// Fault returns the fault to deliver for (op, key), or nil. Safe on a
// nil receiver.
func (in *Injector) Fault(op string, key uint64) *InjectedFault {
	if in == nil {
		return nil
	}
	for i := range in.specs {
		s := &in.specs[i]
		if s.Op == op && s.matches(key) {
			return &InjectedFault{Op: op, Key: key, Kind: s.Kind, Panic: s.Panic, Exit: s.Exit}
		}
	}
	return nil
}

// Matches reports whether Fault would deliver for (op, key) — used by
// tests to compute the expected failure accounting independently of
// scheduling.
func (in *Injector) Matches(op string, key uint64) bool {
	return in.Fault(op, key) != nil
}

// osExit is swapped out by tests; production always terminates.
var osExit = os.Exit

// crashStatus mimics the wait status of a SIGKILLed process, so a
// chaos-induced self-crash is indistinguishable from kill -9 to the
// supervisor.
const crashStatus = 137

// Crash consults the injector at a process-level chaos point: when a
// spec with Exit set matches (op, key), the process terminates
// immediately — no deferred functions, no fsync, no graceful drain —
// exactly like a kill -9 at that instruction. Call sites thread a
// monotone occurrence counter as key ("crash at the n-th checkpoint
// write"), which keeps process-level chaos as deterministic as the
// error-level faults. Nil-safe and free when no spec matches, so
// durability-critical paths can consult it unconditionally.
func (in *Injector) Crash(op string, key uint64) {
	if f := in.Fault(op, key); f != nil && f.Exit {
		osExit(crashStatus)
	}
}

// ParseCrashSpec parses the CLI chaos vocabulary "op:n" — crash the
// process at the n-th consultation of the named chaos point (1-based)
// — into a process-exit FaultSpec. Used by roughsimd's -chaos flag and
// the chaos harness scripts.
func ParseCrashSpec(s string) (FaultSpec, error) {
	op, nth, ok := strings.Cut(s, ":")
	if !ok || op == "" {
		return FaultSpec{}, fmt.Errorf("resilience: chaos spec %q: want \"op:n\"", s)
	}
	n, err := strconv.ParseUint(nth, 10, 64)
	if err != nil || n == 0 {
		return FaultSpec{}, fmt.Errorf("resilience: chaos spec %q: occurrence must be a positive integer", s)
	}
	return FaultSpec{Op: op, Keys: []uint64{n}, Exit: true, Kind: KindPanic}, nil
}

// faultHash maps (op, key) to a uniform [0, 1) value: FNV-1a over the op
// mixed with the key through a splitmix64 finalizer. Deterministic
// across platforms and independent of goroutine scheduling.
func faultHash(op string, key uint64) float64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(op); i++ {
		h ^= uint64(op[i])
		h *= 1099511628211
	}
	h ^= key * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}
