// Package journal is the durability substrate of roughsimd: an
// append-only, fsync'd, CRC-checked write-ahead log of job lifecycle
// records. The daemon appends a record at every observable transition
// of a sweep job (submitted, started, anchor checkpoint done,
// completed, failed, canceled) and replays the log on boot, so a crash
// — kill -9, OOM, power loss — loses no accepted work: unfinished
// sweeps are re-enqueued with their attempt history, and their
// completed anchor checkpoints (persisted separately through the
// content-addressed result cache) are skipped on resume.
//
// On-disk format: a flat sequence of frames, each
//
//	uint32 payload length (big-endian)
//	uint32 IEEE CRC-32 of the payload
//	payload (one JSON-encoded, schema-versioned Record)
//
// Appends are a single write followed by fsync, so every record the
// journal has acknowledged survives a crash. Replay is torn-tail
// tolerant by construction: a crash mid-append leaves a short or
// CRC-mismatching final frame, which Open detects and discards —
// everything before it is intact because frames are never rewritten.
//
// Open also compacts: after folding the old log into its set of
// still-pending jobs, it atomically rewrites the file to contain
// exactly one submitted record per pending job (temp file + fsync +
// rename + directory fsync), so the journal stays proportional to the
// live work set instead of growing with history across restarts.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"roughsim/internal/telemetry"
)

// Op is the lifecycle transition a record describes.
type Op string

const (
	// OpSubmitted: a job was accepted; Config carries the payload replay
	// needs to reconstruct it.
	OpSubmitted Op = "submitted"
	// OpStarted: a worker picked the job up for its Attempt-th attempt.
	OpStarted Op = "started"
	// OpAnchorDone: one anchor checkpoint of the job's sweep was
	// persisted (Anchor is the collocation-node index; -1 is the flat
	// reference).
	OpAnchorDone Op = "anchor-done"
	// OpCompleted: the job succeeded; replay drops it.
	OpCompleted Op = "completed"
	// OpFailed: the job failed terminally (retries exhausted or the
	// failure kind is permanent); replay drops it.
	OpFailed Op = "failed"
	// OpCanceled: the job was canceled by the user; replay drops it.
	// Jobs canceled by a shutdown drain are deliberately NOT journaled
	// as canceled, so they stay pending and resume on restart.
	OpCanceled Op = "canceled"

	// OpLeaseGranted: a cluster worker claimed one column task of the job
	// (Anchor is the column's node index, Worker the claimant, Key the
	// task's content address). Observability only: the authoritative
	// column durability is the checkpoint cache's anchor-done record.
	OpLeaseGranted Op = "lease-granted"
	// OpLeaseExpired: a granted lease lapsed without completing and its
	// task re-queued — the journaled trace of a worker loss. Fold counts
	// these per job as Pending.LeaseLosses.
	OpLeaseExpired Op = "lease-expired"

	// OpCampaignSubmitted: a campaign was accepted; JobID carries the
	// campaign's content-addressed ID and Config its CampaignConfig, so
	// a replay restarts the study under the ID clients already hold.
	OpCampaignSubmitted Op = "campaign-submitted"
	// OpCampaignCellDone: one cell of a campaign reached a durable
	// result (Anchor is the cell index, wire-offset like checkpoint
	// anchors). Observability only: resume re-derives finished cells
	// from the result cache, not from these records.
	OpCampaignCellDone Op = "campaign-cell-done"
	// OpCampaignCompleted / OpCampaignFailed / OpCampaignCanceled are
	// the campaign terminal records; replay drops the campaign.
	// Campaigns interrupted by a shutdown drain are deliberately NOT
	// journaled as canceled, so they resume on restart.
	OpCampaignCompleted Op = "campaign-completed"
	OpCampaignFailed    Op = "campaign-failed"
	OpCampaignCanceled  Op = "campaign-canceled"

	// OpSparamsSubmitted: an S-parameter artifact job was accepted;
	// Config carries the SParamConfig JSON. It shares the sweep job
	// lifecycle (started / terminal ops under the same JobID) but is
	// kept a distinct submission op so replay re-dispatches it to the
	// S-parameter runner, not the sweep runner.
	OpSparamsSubmitted Op = "sparams-submitted"
)

// SchemaVersion tags every record; bump it when the meaning of a field
// changes so replay can skip (not misread) stale records.
const SchemaVersion = 1

// Record is one journaled lifecycle transition.
type Record struct {
	Schema  int    `json:"v"`
	Seq     uint64 `json:"seq"`
	Unix    int64  `json:"t"` // append time, unix nanoseconds
	Op      Op     `json:"op"`
	JobID   string `json:"job"`
	Key     string `json:"key,omitempty"` // sweep content address (hex)
	Attempt int    `json:"attempt,omitempty"`
	// Anchor is the checkpoint index of an anchor-done record, offset
	// by two on the wire so both node 0 and the flat reference (-1)
	// survive omitempty; use the WithAnchor/AnchorNode accessors.
	Anchor int `json:"anchor,omitempty"`
	// Config is the opaque job payload (the sweep config JSON) replay
	// hands back to the submitter.
	Config json.RawMessage `json:"config,omitempty"`
	Error  string          `json:"error,omitempty"`
	Kind   string          `json:"kind,omitempty"` // resilience.Kind label
	// Worker labels cluster lease records with the worker involved.
	Worker string `json:"worker,omitempty"`
}

// WithAnchor returns a copy of r carrying node as its anchor index
// (wire-offset so node -1, the flat reference, round-trips omitempty).
func (r Record) WithAnchor(node int) Record {
	r.Anchor = node + 2
	return r
}

// AnchorNode returns the checkpoint node index of an anchor-done
// record.
func (r Record) AnchorNode() int { return r.Anchor - 2 }

// Pending is one unfinished job reconstructed by replay.
type Pending struct {
	JobID string
	Key   string
	// Op is the submission op that created the job (OpSubmitted or
	// OpSparamsSubmitted) — replay dispatches on it, and compact
	// re-emits it so the distinction survives restarts.
	Op Op
	// Config is the submitted payload, verbatim.
	Config json.RawMessage
	// Attempts is how many times a worker started the job before the
	// crash; the submitter folds it into the job's remaining budget.
	Attempts int
	// AnchorsDone counts the anchor checkpoints journaled for the job —
	// observability for "how much of the sweep survives".
	AnchorsDone int
	// LeaseLosses counts the lease expiries journaled for the job —
	// observability for "how many workers died under this sweep".
	LeaseLosses int
}

// PendingCampaign is one unfinished campaign reconstructed by replay.
type PendingCampaign struct {
	// ID is the campaign's content-addressed identity (also the
	// record's JobID on the wire).
	ID  string
	Key string
	// Config is the submitted CampaignConfig, verbatim.
	Config json.RawMessage
	// CellsDone counts the cell-done records journaled before the crash
	// — observability for "how much of the campaign survives" (resume
	// re-derives finished cells from the result cache).
	CellsDone int
}

// Replay is everything a journal replay surfaces: the jobs and the
// campaigns still unfinished at the last crash or shutdown, each in
// submission order.
type Replay struct {
	Jobs      []Pending
	Campaigns []PendingCampaign
}

const (
	frameHeader = 8        // uint32 length + uint32 crc
	maxRecord   = 16 << 20 // sanity bound on one record; larger lengths read as torn tail
)

// Journal is an open write-ahead log. Appends are safe for concurrent
// use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seq  uint64

	appends, tornTails, schemaSkips *telemetry.Counter
	pendingG, pendingCampG          *telemetry.Gauge
}

// Open replays (and compacts) the journal at path, creating it when
// absent, and returns the log opened for append plus the jobs and
// campaigns still pending at the last crash or shutdown, in submission
// order.
func Open(path string, m *telemetry.Registry) (*Journal, Replay, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, Replay{}, fmt.Errorf("journal: mkdir: %w", err)
	}
	j := &Journal{
		path:         path,
		appends:      m.Counter("journal.appends"),
		tornTails:    m.Counter("journal.torn_tails"),
		schemaSkips:  m.Counter("journal.schema_skips"),
		pendingG:     m.Gauge("journal.pending_jobs"),
		pendingCampG: m.Gauge("journal.pending_campaigns"),
	}
	recs, torn, err := readAll(path)
	if err != nil {
		return nil, Replay{}, err
	}
	if torn {
		j.tornTails.Inc()
	}
	var kept []Record
	for _, r := range recs {
		if r.Schema != SchemaVersion {
			j.schemaSkips.Inc()
			continue
		}
		kept = append(kept, r)
	}
	rep := Replay{Jobs: Fold(kept), Campaigns: FoldCampaigns(kept)}
	if err := j.compact(rep); err != nil {
		return nil, Replay{}, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, Replay{}, fmt.Errorf("journal: open for append: %w", err)
	}
	j.f = f
	j.seq = uint64(len(rep.Jobs) + len(rep.Campaigns))
	j.pendingG.Set(float64(len(rep.Jobs)))
	j.pendingCampG.Set(float64(len(rep.Campaigns)))
	return j, rep, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append durably writes one record: the frame is written and fsynced
// before Append returns, so an acknowledged record survives any crash.
// Seq, Unix and Schema are filled in by the journal.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	j.seq++
	r.Schema = SchemaVersion
	r.Seq = j.seq
	r.Unix = time.Now().UnixNano()
	frame, err := encodeFrame(r)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.appends.Inc()
	return nil
}

// Close releases the journal file. Records already appended stay
// durable; further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// compact atomically rewrites the journal to one submitted record per
// pending job and campaign (temp file + fsync + rename + directory
// fsync), bounding the file to the live work set. Cell-done records
// are dropped: resume re-derives finished cells from the result cache.
func (j *Journal) compact(rep Replay) error {
	tmp, err := os.CreateTemp(filepath.Dir(j.path), "journal-*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	now := time.Now().UnixNano()
	seq := uint64(0)
	var frames [][]byte
	for _, p := range rep.Jobs {
		seq++
		op := p.Op
		if op == "" {
			op = OpSubmitted
		}
		frame, err := encodeFrame(Record{
			Schema: SchemaVersion, Seq: seq, Unix: now,
			Op: op, JobID: p.JobID, Key: p.Key,
			Attempt: p.Attempts, Config: p.Config,
		})
		if err != nil {
			tmp.Close()
			return err
		}
		frames = append(frames, frame)
	}
	for _, c := range rep.Campaigns {
		seq++
		frame, err := encodeFrame(Record{
			Schema: SchemaVersion, Seq: seq, Unix: now,
			Op: OpCampaignSubmitted, JobID: c.ID, Key: c.Key, Config: c.Config,
		})
		if err != nil {
			tmp.Close()
			return err
		}
		frames = append(frames, frame)
	}
	for _, frame := range frames {
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	syncDir(filepath.Dir(j.path))
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable; best-effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// encodeFrame marshals r and wraps it in a length+CRC frame.
func encodeFrame(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("journal: encode: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// readAll parses every intact frame of the file at path. torn reports
// whether a trailing partial or corrupt frame was discarded; a missing
// file reads as an empty journal.
func readAll(path string) (recs []Record, torn bool, err error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("journal: read: %w", err)
	}
	for off := 0; off < len(b); {
		if len(b)-off < frameHeader {
			return recs, true, nil
		}
		n := int(binary.BigEndian.Uint32(b[off : off+4]))
		if n > maxRecord || n > len(b)-off-frameHeader {
			return recs, true, nil
		}
		payload := b[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(b[off+4:off+8]) {
			return recs, true, nil
		}
		var r Record
		if json.Unmarshal(payload, &r) != nil {
			// A CRC-valid frame that is not JSON means a writer bug or
			// foreign file; treat like a torn tail rather than failing boot.
			return recs, true, nil
		}
		recs = append(recs, r)
		off += frameHeader + n
	}
	return recs, false, nil
}

// ReadAll parses every intact record of the journal at path without
// opening it for append — the inspection/debugging entry point.
func ReadAll(path string) ([]Record, error) {
	recs, _, err := readAll(path)
	return recs, err
}

// Fold reduces a record sequence to the jobs still pending at its end:
// a submission op (submitted, sparams-submitted) creates a job, started
// advances its attempt count, anchor-done counts a persisted
// checkpoint, and every terminal op (completed, failed, canceled)
// removes it. Order of first submission is preserved.
func Fold(recs []Record) []Pending {
	byID := map[string]*Pending{}
	var order []string
	for _, r := range recs {
		switch r.Op {
		case OpSubmitted, OpSparamsSubmitted:
			if _, ok := byID[r.JobID]; ok {
				continue
			}
			byID[r.JobID] = &Pending{JobID: r.JobID, Key: r.Key, Op: r.Op, Config: r.Config, Attempts: r.Attempt}
			order = append(order, r.JobID)
		case OpStarted:
			if p, ok := byID[r.JobID]; ok && r.Attempt > p.Attempts {
				p.Attempts = r.Attempt
			}
		case OpAnchorDone:
			if p, ok := byID[r.JobID]; ok {
				p.AnchorsDone++
			}
		case OpLeaseExpired:
			if p, ok := byID[r.JobID]; ok {
				p.LeaseLosses++
			}
		case OpCompleted, OpFailed, OpCanceled:
			delete(byID, r.JobID)
		}
	}
	out := make([]Pending, 0, len(byID))
	for _, id := range order {
		if p, ok := byID[id]; ok {
			out = append(out, *p)
		}
	}
	return out
}

// FoldCampaigns reduces a record sequence to the campaigns still
// pending at its end: campaign-submitted creates one, campaign-cell-
// done counts a durable cell, and every campaign terminal op removes
// it. Order of first submission is preserved.
func FoldCampaigns(recs []Record) []PendingCampaign {
	byID := map[string]*PendingCampaign{}
	var order []string
	for _, r := range recs {
		switch r.Op {
		case OpCampaignSubmitted:
			if _, ok := byID[r.JobID]; ok {
				continue
			}
			byID[r.JobID] = &PendingCampaign{ID: r.JobID, Key: r.Key, Config: r.Config}
			order = append(order, r.JobID)
		case OpCampaignCellDone:
			if c, ok := byID[r.JobID]; ok {
				c.CellsDone++
			}
		case OpCampaignCompleted, OpCampaignFailed, OpCampaignCanceled:
			delete(byID, r.JobID)
		}
	}
	out := make([]PendingCampaign, 0, len(byID))
	for _, id := range order {
		if c, ok := byID[id]; ok {
			out = append(out, *c)
		}
	}
	return out
}
