package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"roughsim/internal/telemetry"
)

func openT(t *testing.T, path string) (*Journal, []Pending) {
	t.Helper()
	j, rep, err := Open(path, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rep.Jobs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, pending := openT(t, path)
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending jobs", len(pending))
	}
	cfg := json.RawMessage(`{"freqs_hz":[1e9]}`)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Append(Record{Op: OpSubmitted, JobID: "a", Key: "k-a", Config: cfg}))
	must(j.Append(Record{Op: OpStarted, JobID: "a", Attempt: 1}))
	must(j.Append(Record{Op: OpSubmitted, JobID: "b", Key: "k-b", Config: cfg}))
	must(j.Append(Record{Op: OpAnchorDone, JobID: "a"}.WithAnchor(-1)))
	must(j.Append(Record{Op: OpAnchorDone, JobID: "a"}.WithAnchor(3)))
	must(j.Append(Record{Op: OpSubmitted, JobID: "c", Key: "k-c", Config: cfg}))
	must(j.Append(Record{Op: OpCompleted, JobID: "c"}))
	j.Close()

	_, pending = openT(t, path)
	if len(pending) != 2 {
		t.Fatalf("pending = %d jobs, want 2 (a, b)", len(pending))
	}
	a, b := pending[0], pending[1]
	if a.JobID != "a" || b.JobID != "b" {
		t.Fatalf("pending order = %q, %q; want a, b", a.JobID, b.JobID)
	}
	if a.Attempts != 1 || a.AnchorsDone != 2 || a.Key != "k-a" {
		t.Fatalf("job a replayed as %+v", a)
	}
	if string(a.Config) != string(cfg) {
		t.Fatalf("config round-trip: %s", a.Config)
	}
	if b.Attempts != 0 || b.AnchorsDone != 0 {
		t.Fatalf("job b replayed as %+v", b)
	}
}

func TestAnchorWireOffsetRoundTrips(t *testing.T) {
	for _, node := range []int{-1, 0, 1, 7} {
		r := Record{Op: OpAnchorDone}.WithAnchor(node)
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back Record
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back.AnchorNode() != node {
			t.Fatalf("anchor %d round-tripped to %d", node, back.AnchorNode())
		}
	}
}

// A torn tail — the partial frame a kill -9 mid-append leaves — must be
// discarded on replay without losing the records before it.
func TestTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openT(t, path)
	if err := j.Append(Record{Op: OpSubmitted, JobID: "a", Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpSubmitted, JobID: "b", Key: "k"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	for name, tear := range map[string]func([]byte) []byte{
		"short-frame":    func(b []byte) []byte { return append(b, 0x00, 0x00, 0x01) },
		"length-runaway": func(b []byte) []byte { return append(b, 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 'x') },
		"crc-mismatch": func(b []byte) []byte {
			// A full frame whose payload does not match its CRC.
			return append(b, 0, 0, 0, 2, 0xde, 0xad, 0xbe, 0xef, '{', '}')
		},
	} {
		t.Run(name, func(t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			torn := filepath.Join(t.TempDir(), "wal")
			if err := os.WriteFile(torn, tear(append([]byte(nil), b...)), 0o644); err != nil {
				t.Fatal(err)
			}
			m := telemetry.NewRegistry()
			jr, rep, err := Open(torn, m)
			if err != nil {
				t.Fatalf("torn journal failed to open: %v", err)
			}
			defer jr.Close()
			if len(rep.Jobs) != 2 {
				t.Fatalf("pending = %d, want the 2 intact records", len(rep.Jobs))
			}
			if n := m.Counter("journal.torn_tails").Value(); n != 1 {
				t.Fatalf("torn_tails = %d, want 1", n)
			}
			// The rewrite (compaction) must have healed the file: a second
			// open sees no tear.
			m2 := telemetry.NewRegistry()
			jr2, rep2, err := Open(torn, m2)
			if err != nil {
				t.Fatal(err)
			}
			defer jr2.Close()
			if len(rep2.Jobs) != 2 || m2.Counter("journal.torn_tails").Value() != 0 {
				t.Fatalf("reopen after heal: %d pending, torn=%d", len(rep2.Jobs),
					m2.Counter("journal.torn_tails").Value())
			}
		})
	}
}

// Compaction keeps the file proportional to the live work set: finished
// jobs leave no bytes behind after a reopen.
func TestCompactionBoundsGrowth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openT(t, path)
	for i := 0; i < 200; i++ {
		id := string(rune('a'+i%26)) + "-job"
		if err := j.Append(Record{Op: OpSubmitted, JobID: id, Key: "k"}); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Op: OpCompleted, JobID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(Record{Op: OpSubmitted, JobID: "live", Key: "k"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	before, _ := os.Stat(path)

	_, pending := openT(t, path)
	if len(pending) != 1 || pending[0].JobID != "live" {
		t.Fatalf("pending = %+v, want only job live", pending)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size()/10 {
		t.Fatalf("compaction left %d of %d bytes", after.Size(), before.Size())
	}
}

// Records with an unknown schema version are skipped, not misread.
func TestUnknownSchemaSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	future, err := encodeFrame(Record{Schema: SchemaVersion + 1, Op: OpSubmitted, JobID: "x", Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	// encodeFrame preserves the schema we set? Append overwrites it, but
	// encodeFrame does not — verify the fixture is what we think.
	var check Record
	if err := json.Unmarshal(future[frameHeader:], &check); err != nil || check.Schema != SchemaVersion+1 {
		t.Fatalf("fixture schema = %d, err %v", check.Schema, err)
	}
	if err := os.WriteFile(path, future, 0o644); err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewRegistry()
	jr, rep, err := Open(path, m)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if len(rep.Jobs) != 0 {
		t.Fatalf("future-schema record replayed: %+v", rep.Jobs)
	}
	if m.Counter("journal.schema_skips").Value() != 1 {
		t.Fatal("schema skip not counted")
	}
}

func TestFoldSemantics(t *testing.T) {
	recs := []Record{
		{Op: OpSubmitted, JobID: "a", Key: "ka", Attempt: 2}, // compacted record carries prior attempts
		{Op: OpStarted, JobID: "a", Attempt: 3},
		{Op: OpSubmitted, JobID: "dup", Key: "k1"},
		{Op: OpSubmitted, JobID: "dup", Key: "k2"},  // duplicate submit ignored
		{Op: OpStarted, JobID: "ghost", Attempt: 1}, // started without submitted: ignored
		{Op: OpSubmitted, JobID: "f", Key: "kf"},
		{Op: OpFailed, JobID: "f", Kind: "invalid-input"},
		{Op: OpSubmitted, JobID: "c", Key: "kc"},
		{Op: OpCanceled, JobID: "c"},
	}
	pending := Fold(recs)
	if len(pending) != 2 {
		t.Fatalf("pending = %+v, want a and dup", pending)
	}
	if pending[0].JobID != "a" || pending[0].Attempts != 3 {
		t.Fatalf("job a folded as %+v", pending[0])
	}
	if pending[1].JobID != "dup" || pending[1].Key != "k1" {
		t.Fatalf("dup folded as %+v", pending[1])
	}
}

// Lease lifecycle records fold into loss observability without changing
// which jobs replay, and the Worker label survives the wire round-trip.
func TestFoldLeaseRecords(t *testing.T) {
	recs := []Record{
		{Op: OpSubmitted, JobID: "a", Key: "ka"},
		Record{Op: OpLeaseGranted, JobID: "a", Key: "col-0", Worker: "w1"}.WithAnchor(0),
		Record{Op: OpLeaseExpired, JobID: "a", Key: "col-0", Worker: "w1"}.WithAnchor(0),
		Record{Op: OpLeaseGranted, JobID: "a", Key: "col-0", Worker: "w2"}.WithAnchor(0),
		Record{Op: OpLeaseExpired, JobID: "ghost", Worker: "wx"}.WithAnchor(1), // no submit: ignored
		{Op: OpSubmitted, JobID: "b", Key: "kb"},
		Record{Op: OpLeaseExpired, JobID: "b", Worker: "w1"}.WithAnchor(-1),
		{Op: OpCompleted, JobID: "b"},
	}
	pending := Fold(recs)
	if len(pending) != 1 || pending[0].JobID != "a" {
		t.Fatalf("pending = %+v, want only a (lease records must not resurrect b)", pending)
	}
	if pending[0].LeaseLosses != 1 {
		t.Fatalf("job a folded %d lease losses, want 1", pending[0].LeaseLosses)
	}

	// The Worker field and flat-reference anchor survive an append/replay
	// round-trip through the file format.
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	j, _, err := Open(path, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpSubmitted, JobID: "a", Key: "ka"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpLeaseExpired, JobID: "a", Key: "col", Worker: "w9"}.WithAnchor(-1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	recs2, torn, err := readAll(path)
	if err != nil || torn {
		t.Fatalf("readAll: torn=%v err=%v", torn, err)
	}
	last := recs2[len(recs2)-1]
	if last.Op != OpLeaseExpired || last.Worker != "w9" || last.AnchorNode() != -1 {
		t.Fatalf("lease record round-tripped as %+v", last)
	}
	rep := Fold(recs2)
	if len(rep) != 1 || rep[0].LeaseLosses != 1 {
		t.Fatalf("replayed fold = %+v", rep)
	}
}

func TestFoldCampaignsSemantics(t *testing.T) {
	cfg := json.RawMessage(`{"band":{"fmin_hz":1e9,"fmax_hz":2e9}}`)
	recs := []Record{
		{Op: OpCampaignSubmitted, JobID: "camp-a", Key: "camp-a", Config: cfg},
		Record{Op: OpCampaignCellDone, JobID: "camp-a"}.WithAnchor(0),
		Record{Op: OpCampaignCellDone, JobID: "camp-a"}.WithAnchor(2),
		{Op: OpCampaignSubmitted, JobID: "camp-a", Key: "other"}, // duplicate submit ignored
		{Op: OpCampaignSubmitted, JobID: "camp-done", Key: "camp-done"},
		{Op: OpCampaignCompleted, JobID: "camp-done"},
		{Op: OpCampaignSubmitted, JobID: "camp-x", Key: "camp-x"},
		{Op: OpCampaignCanceled, JobID: "camp-x"},
		{Op: OpCampaignCellDone, JobID: "ghost"}, // cell-done without submitted: ignored
	}
	camps := FoldCampaigns(recs)
	if len(camps) != 1 {
		t.Fatalf("pending campaigns = %+v, want only camp-a", camps)
	}
	c := camps[0]
	if c.ID != "camp-a" || c.Key != "camp-a" || c.CellsDone != 2 || string(c.Config) != string(cfg) {
		t.Fatalf("camp-a folded as %+v", c)
	}
	// Job folding must not see campaign records as jobs.
	if jobs := Fold(recs); len(jobs) != 0 {
		t.Fatalf("campaign records folded into jobs: %+v", jobs)
	}
}

// A pending campaign must survive compaction (reopen) verbatim, and its
// terminal record must drop it.
func TestCampaignCompactionRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openT(t, path)
	cfg := json.RawMessage(`{"cells":[{"cf":"gaussian","sigma":4e-7,"eta":1e-6}],"freqs_hz":[1e9]}`)
	appends := []Record{
		{Op: OpCampaignSubmitted, JobID: "camp-1", Key: "camp-1", Config: cfg},
		Record{Op: OpCampaignCellDone, JobID: "camp-1"}.WithAnchor(0),
		{Op: OpSubmitted, JobID: "job-1", Key: "kj"},
	}
	for _, r := range appends {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	m := telemetry.NewRegistry()
	j2, rep, err := Open(path, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 1 || rep.Jobs[0].JobID != "job-1" {
		t.Fatalf("jobs = %+v", rep.Jobs)
	}
	if len(rep.Campaigns) != 1 {
		t.Fatalf("campaigns = %+v", rep.Campaigns)
	}
	c := rep.Campaigns[0]
	if c.ID != "camp-1" || string(c.Config) != string(cfg) {
		t.Fatalf("campaign replayed as %+v", c)
	}
	// Compaction drops cell-done records (CellsDone is re-derived from
	// the result cache on resume, not from the journal).
	if g := m.Gauge("journal.pending_campaigns").Value(); g != 1 {
		t.Fatalf("pending_campaigns gauge = %g, want 1", g)
	}
	if err := j2.Append(Record{Op: OpCampaignCompleted, JobID: "camp-1"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	_, rep2, err := Open(path, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Campaigns) != 0 {
		t.Fatalf("completed campaign still pending: %+v", rep2.Campaigns)
	}
	if len(rep2.Jobs) != 1 {
		t.Fatalf("job lost across campaign compaction: %+v", rep2.Jobs)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openT(t, path)
	j.Close()
	if err := j.Append(Record{Op: OpSubmitted, JobID: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestSparamsSubmissionOpSurvivesCompaction(t *testing.T) {
	// A sparams job must replay to the S-parameter runner, not the sweep
	// runner — so the submission op has to survive fold AND the compact
	// rewrite (which re-emits one submission record per pending job).
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openT(t, path)
	cfg := json.RawMessage(`{"fmin_hz":1e9}`)
	if err := j.Append(Record{Op: OpSparamsSubmitted, JobID: "sp", Key: "k-sp", Config: cfg}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpSubmitted, JobID: "sw", Key: "k-sw", Config: cfg}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpStarted, JobID: "sp", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Two reopen cycles: the second replays records produced by compact,
	// catching any hardcoded op in the rewrite path.
	for cycle := 1; cycle <= 2; cycle++ {
		_, pending := openT(t, path)
		if len(pending) != 2 {
			t.Fatalf("cycle %d: pending = %d, want 2", cycle, len(pending))
		}
		sp, sw := pending[0], pending[1]
		if sp.JobID != "sp" || sp.Op != OpSparamsSubmitted {
			t.Fatalf("cycle %d: sparams job replayed as %+v", cycle, sp)
		}
		if sp.Attempts != 1 || string(sp.Config) != string(cfg) {
			t.Fatalf("cycle %d: sparams job lost state: %+v", cycle, sp)
		}
		if sw.JobID != "sw" || sw.Op != OpSubmitted {
			t.Fatalf("cycle %d: sweep job replayed as %+v", cycle, sw)
		}
	}
}
