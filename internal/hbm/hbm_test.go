package hbm

import (
	"math"
	"math/cmplx"
	"testing"

	"roughsim/internal/units"
)

const um = 1e-6

func TestPolarizabilityPECLimit(t *testing.T) {
	// a ≫ δ: α_m → −a³/2.
	a := 10 * um
	alpha := MagneticPolarizability(a, 0.01*um)
	want := -a * a * a / 2
	if cmplx.Abs(alpha-complex(want, 0))/math.Abs(want) > 0.01 {
		t.Fatalf("PEC limit: α = %v, want ≈ %g", alpha, want)
	}
}

func TestPolarizabilitySmallSphereLimit(t *testing.T) {
	// a ≪ δ: α_m → a³·x²/30 with x² = 2j·(a/δ)² (expansion of the
	// bracket: −x²/15).
	a := 0.05 * um
	delta := 10 * um
	alpha := MagneticPolarizability(a, delta)
	x2 := complex(0, 2) * complex(a/delta*a/delta, 0)
	want := complex(a*a*a/30, 0) * x2
	if cmplx.Abs(alpha-want)/cmplx.Abs(want) > 0.01 {
		t.Fatalf("small-sphere limit: α = %v, want %v", alpha, want)
	}
}

func TestHemisphereAbsorbedRatioPECLimit(t *testing.T) {
	// Strong skin effect: hemisphere dissipates like 3πa² of flat metal.
	a := 10 * um
	for _, delta := range []float64{0.2 * um, 0.1 * um} {
		got := HemisphereAbsorbedRatio(a, delta)
		// First-order correction is O(δ/a); at δ/a = 0.01–0.02 we should
		// be within a few percent of 3πa².
		want := 3 * math.Pi * a * a
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("δ=%g: effective area %g, want ≈ %g", delta, got, want)
		}
	}
}

func TestHemisphereAbsorbedRatioMonotone(t *testing.T) {
	// At fixed a, a smaller skin depth cannot decrease the effective
	// absorbing area below the flat base — K ≥ 1 territory.
	a := 5 * um
	prev := 0.0
	for _, f := range []float64{1, 2, 5, 10, 20} {
		delta := units.SkinDepthCopper(f * units.GHz)
		got := HemisphereAbsorbedRatio(a, delta)
		if got < prev {
			t.Fatalf("effective area decreased with frequency: %g after %g", got, prev)
		}
		prev = got
	}
}

func TestModelLossFactorRange(t *testing.T) {
	// Fig. 5 regime: volume-equivalent hemisphere of the half-spheroid
	// (h=5.8, b=4.7 μm) on a tile sized so bosses nearly touch.
	a := EquivalentSphereRadius(5.8*um, 4.7*um)
	m := Model{Radius: a, Tile: 97e-12, Rho: units.CopperResistivity}
	kLow := m.LossFactor(1 * units.GHz)
	kHigh := m.LossFactor(20 * units.GHz)
	if kLow <= 1 || kHigh <= kLow {
		t.Fatalf("K(1GHz)=%g K(20GHz)=%g: want increasing and > 1", kLow, kHigh)
	}
	// The paper's Fig. 5 spans roughly 1.8 → 2.8 over 1–20 GHz.
	if kHigh < 1.8 || kHigh > 4 {
		t.Fatalf("K(20GHz) = %g outside the plausible Fig. 5 band", kHigh)
	}
}

func TestModelFlatLimit(t *testing.T) {
	// A vanishing boss density (huge tile) gives K → 1.
	m := Model{Radius: 1 * um, Tile: 1e-6, Rho: units.CopperResistivity}
	if k := m.LossFactor(10 * units.GHz); math.Abs(k-1) > 1e-4 {
		t.Fatalf("dilute limit K = %g, want ≈ 1", k)
	}
}

func TestHuraySnowball(t *testing.T) {
	// High-frequency saturation: K → 1 + (3/2)·N·4πa²/A.
	a := 0.5 * um
	tile := 100e-12
	kSat := 1 + 1.5*4*math.Pi*a*a/tile
	k := HuraySnowball(1000*units.GHz, a, tile, 1, units.CopperResistivity)
	if math.Abs(k-kSat)/kSat > 0.05 {
		t.Fatalf("saturation K = %g, want ≈ %g", k, kSat)
	}
	// Low frequency: K → 1.
	k = HuraySnowball(0.001*units.GHz, a, tile, 1, units.CopperResistivity)
	if k > 1.02 {
		t.Fatalf("low-f K = %g, want ≈ 1", k)
	}
	// Monotone in f.
	prev := 0.0
	for _, f := range []float64{0.1, 1, 5, 10, 50} {
		v := HuraySnowball(f*units.GHz, a, tile, 1, units.CopperResistivity)
		if v < prev {
			t.Fatalf("Huray K not monotone")
		}
		prev = v
	}
}

func TestEquivalentSphereRadius(t *testing.T) {
	// Volume matching: (2/3)πr³ = (2/3)π·b²·h.
	r := EquivalentSphereRadius(5.8*um, 4.7*um)
	if math.Abs(r*r*r-4.7*4.7*5.8*um*um*um)/(r*r*r) > 1e-12 {
		t.Fatalf("volume mismatch: r = %g", r)
	}
	// A hemisphere maps to itself.
	if got := EquivalentSphereRadius(2*um, 2*um); math.Abs(got-2*um) > 1e-18 {
		t.Fatalf("hemisphere should map to its own radius, got %g", got)
	}
}

func TestScatteringNegligibleAtGHz(t *testing.T) {
	a := EquivalentSphereRadius(5.8*um, 4.7*um)
	m1 := Model{Radius: a, Tile: 97e-12, Rho: units.CopperResistivity}
	m2 := m1
	m2.IncludeScattering = true
	m2.EpsR = 3.7
	k1 := m1.LossFactor(20 * units.GHz)
	k2 := m2.LossFactor(20 * units.GHz)
	if math.Abs(k2-k1) > 1e-3 {
		t.Fatalf("dipole scattering should be negligible at 20 GHz: %g vs %g", k1, k2)
	}
}
