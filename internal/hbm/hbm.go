// Package hbm implements the hemispherical-boss model baselines used in
// the paper's Fig. 5 comparison (Hall et al. 2007 [5]) and the related
// Huray "snowball" closed form that grew out of it.
//
// The model replaces surface protrusions by conducting hemispheres of
// radius a on a flat tile of area A. The power the boss dissipates is
// obtained from the exact magnetic polarizability of a conducting sphere
// with finite skin depth (Landau & Lifshitz, Electrodynamics of
// Continuous Media, §59):
//
//	α_m = −(a³/2)·[1 − 3/x² + (3/x)·cot(x)],  x = (1+j)·a/δ
//
// (Gaussian convention, magnetic moment m = α_m·H). The two limits are
// the classical checks: α_m → −a³/2 as a/δ → ∞ (perfect conductor) and
// α_m → j·a⁵/(15δ²)·2... → x²·a³/30 as a/δ → 0 (weakly lossy).
//
// Absorbed power of the full sphere in a uniform tangential magnetic
// field H: P_abs = (ωμ₀/2)·Im(4π·α_m)·|H|²; a hemisphere on a ground
// plane absorbs half of that. In the strong-skin-effect limit this gives
// the textbook result that a hemisphere dissipates like 3× its base
// area of flat conductor.
package hbm

import (
	"math"
	"math/cmplx"

	"roughsim/internal/units"
)

// MagneticPolarizability returns α_m (Gaussian convention, units m³)
// of a conducting sphere of radius a at skin depth delta.
func MagneticPolarizability(a, delta float64) complex128 {
	if a <= 0 || delta <= 0 {
		panic("hbm: MagneticPolarizability needs a > 0, δ > 0")
	}
	x := complex(a/delta, a/delta) // (1+j)·a/δ, Im x > 0
	// cot(x) = j·(e^{2jx}+1)/(e^{2jx}−1), stable for Im x > 0.
	e := cmplx.Exp(2i * x)
	cot := 1i * (e + 1) / (e - 1)
	return -complex(a*a*a/2, 0) * (1 - 3/(x*x) + 3/x*cot)
}

// HemisphereAbsorbedRatio returns the power a hemispherical boss of
// radius a dissipates, normalized to the flat-conductor dissipation per
// unit area at the same |H|: an effective "absorbing area" in m².
// In the PEC limit (a ≫ δ) it tends to 3πa².
func HemisphereAbsorbedRatio(a, delta float64) float64 {
	alpha := MagneticPolarizability(a, delta)
	// P_abs(sphere) = (ωμ₀/2)·Im(4πα)·|H|²; hemisphere: half.
	// P_flat/area = Rs·|H|²/2 = (ωμ₀δ/4)·|H|².
	// Ratio = (ωμ₀/2·4π·Imα/2) / (ωμ₀δ/4) = 4π·Im(α)/δ.
	im := imag(alpha)
	if im < 0 {
		// The sign convention of Im α depends on the assumed time
		// dependence; dissipation is positive by definition.
		im = -im
	}
	return 4 * math.Pi * im / delta
}

// Model is a hemispherical-boss description of a rough surface: bosses
// of radius A on tiles of area Tile (one boss per tile).
type Model struct {
	Radius float64 // boss radius a (m)
	Tile   float64 // tile area per boss (m²)
	Rho    float64 // conductor resistivity (Ω·m)
	// IncludeScattering adds the (tiny at GHz scales) dipole
	// re-radiation term, counted at half weight as in Hall's
	// formulation.
	IncludeScattering bool
	// EpsR is the dielectric constant used for the scattering
	// wavenumber (only relevant with IncludeScattering).
	EpsR float64
}

// LossFactor returns K(f) = P_rough/P_smooth for the boss model:
// the boss's absorbed power replaces the flat dissipation of its base
// disc, the rest of the tile dissipates as flat metal.
func (m Model) LossFactor(f float64) float64 {
	if m.Radius <= 0 || m.Tile <= 0 {
		panic("hbm: Model needs Radius > 0, Tile > 0")
	}
	delta := units.SkinDepth(m.Rho, f, units.Mu0)
	eff := HemisphereAbsorbedRatio(m.Radius, delta)
	base := math.Pi * m.Radius * m.Radius
	k := (eff + (m.Tile - base)) / m.Tile
	if m.IncludeScattering {
		k += m.scatteringTerm(f, delta)
	}
	return k
}

// scatteringTerm returns the half-weighted scattered power of the boss's
// magnetic dipole normalized to the tile's flat dissipation. It scales
// like (k₁a)³·(a/δ) and is negligible for μm bosses below ~100 GHz; it
// is included for completeness of the Hall formulation.
func (m Model) scatteringTerm(f, delta float64) float64 {
	epsR := m.EpsR
	if epsR <= 0 {
		epsR = 1
	}
	k1 := units.WavenumberDielectric(f, epsR)
	alpha := 4 * math.Pi * cmplx.Abs(MagneticPolarizability(m.Radius, delta))
	// P_scat(sphere dipole) = (μ₀ω k₁³ /(12π))·|αH|²; half space: /2.
	// Normalize by tile flat power (ωμ₀δ/4)·|H|²·Tile.
	ps := units.Mu0 * units.AngularFreq(f) * k1 * k1 * k1 / (12 * math.Pi) * alpha * alpha / 2
	pf := units.AngularFreq(f) * units.Mu0 * delta / 4 * m.Tile
	return ps / pf
}

// HuraySnowball evaluates the canonical Huray roughness factor for a
// single ball size:
//
//	K(f) = 1 + (3/2)·(N·4πa²/A_tile) / (1 + δ/a + δ²/(2a²))
//
// the industry-standard closed form derived from the same hemispherical
// boss physics (the 3/2 prefactor is the PEC sphere's absorption
// enhancement over its cross-section).
func HuraySnowball(f, a, tile float64, n int, rho float64) float64 {
	if a <= 0 || tile <= 0 || n < 0 {
		panic("hbm: HuraySnowball needs a > 0, tile > 0, n ≥ 0")
	}
	delta := units.SkinDepth(rho, f, units.Mu0)
	area := float64(n) * 4 * math.Pi * a * a / tile
	return 1 + 1.5*area/(1+delta/a+delta*delta/(2*a*a))
}

// EquivalentSphereRadius maps a half-spheroid protrusion (height h, base
// radius b) to the radius of the volume-matched hemisphere, the mapping
// used to compare HBM against the SWM solve of the Fig. 5 half-spheroid.
func EquivalentSphereRadius(h, b float64) float64 {
	if h <= 0 || b <= 0 {
		panic("hbm: EquivalentSphereRadius needs h > 0, b > 0")
	}
	return math.Cbrt(b * b * h)
}
