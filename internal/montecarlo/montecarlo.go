// Package montecarlo provides the brute-force reference estimator the
// paper compares SSCM against (Fig. 7, Table I): parallel evaluation of
// the loss factor over iid standard-normal KL coordinate draws, with
// streaming convergence tracking.
//
// The driver is built for long production sweeps: a fixed worker pool
// (not a goroutine per sample), panic recovery with stacks, context
// cancellation, and graceful degradation — up to a configurable
// fraction of failed samples is tolerated and reported as per-cause
// accounting on a partial Result instead of discarding the run.
package montecarlo

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"roughsim/internal/resilience"
	"roughsim/internal/rng"
	"roughsim/internal/stats"
	"roughsim/internal/telemetry"
)

// Evaluator maps KL coordinates to the quantity of interest; it must be
// safe for concurrent calls (mirrors sscm.Evaluator).
type Evaluator func(xi []float64) (float64, error)

// FaultOpSample is the fault-injection op consulted once per sample
// index; a Panic spec makes the worker panic (exercising recovery).
const FaultOpSample = "mc.sample"

// Options tunes the driver.
type Options struct {
	Workers int    // fixed worker-pool size; default NumCPU
	Seed    uint64 // base seed; each sample uses an independent stream
	// MaxFailFrac is the tolerated fraction of failed samples in [0, 1].
	// Within budget, Run returns a partial Result carrying per-cause
	// failure accounting; past it, Run fails with the first sample
	// error. Default 0: any failure aborts the run (the historical
	// behavior).
	MaxFailFrac float64
	// Injector deterministically injects per-sample faults for testing
	// the degradation path; nil injects nothing.
	Injector *resilience.Injector
	// Metrics, when non-nil, receives mc.* telemetry (run/sample
	// counters, per-cause failure counts).
	Metrics *telemetry.Registry
}

// Failure records one failed sample.
type Failure struct {
	Index int
	Kind  resilience.Kind
	Err   error
}

// Result of a Monte-Carlo run. When failures were tolerated the result
// is partial: Samples holds only the successful evaluations (in sample-
// index order) and the statistics are computed over them.
type Result struct {
	Samples []float64
	Mean    float64
	StdErr  float64
	// Requested is the number of samples asked for; len(Samples) +
	// len(Failures) == Requested.
	Requested int
	// Failures lists the failed samples in index order.
	Failures []Failure
	// FailureCounts aggregates the failures by classified cause.
	FailureCounts map[resilience.Kind]int
}

// Failed returns the number of failed samples.
func (r *Result) Failed() int { return len(r.Failures) }

// Run draws n samples of eval over d-dimensional standard normal
// coordinates using a fixed pool of opt.Workers goroutines pulling from
// a shared index channel. Sampling is deterministic given Seed: sample i
// always uses stream i, independent of scheduling — and the injected
// fault set, keyed by sample index, is equally scheduling-independent.
// A cancelled ctx stops the run promptly with ctx.Err().
func Run(ctx context.Context, d, n int, eval Evaluator, opt Options) (*Result, error) {
	if d <= 0 || n <= 0 {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "montecarlo.Run",
			"invalid d=%d n=%d", d, n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	vals := make([]float64, n)
	errs := make([]error, n)
	done := make([]bool, n)

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				vals[i], errs[i] = evalSample(i, d, eval, opt)
				done[i] = true
			}
		}()
	}
	// The feeder stops handing out indices as soon as ctx is cancelled;
	// in-flight evaluations drain before Run returns.
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	opt.Metrics.Counter("mc.runs").Inc()
	res := &Result{Requested: n, FailureCounts: map[resilience.Kind]int{}}
	for i := 0; i < n; i++ {
		if !done[i] {
			// Unreachable without cancellation (handled above), but keep
			// the accounting honest.
			errs[i] = resilience.Errorf(resilience.KindUnknown, "montecarlo.Run", "sample %d not evaluated", i)
		}
		if errs[i] != nil {
			res.Failures = append(res.Failures, Failure{Index: i, Kind: resilience.Classify(errs[i]), Err: errs[i]})
			continue
		}
		res.Samples = append(res.Samples, vals[i])
	}
	for _, f := range res.Failures {
		res.FailureCounts[f.Kind]++
		opt.Metrics.Counter("mc.samples_failed." + f.Kind.String()).Inc()
	}
	opt.Metrics.Counter("mc.samples_ok").Add(int64(len(res.Samples)))
	budget := int(opt.MaxFailFrac * float64(n))
	if len(res.Failures) > budget {
		first := res.Failures[0]
		return nil, resilience.New(first.Kind, "montecarlo.Run",
			fmt.Errorf("%d of %d samples failed (budget %d); sample %d: %w",
				len(res.Failures), n, budget, first.Index, first.Err))
	}
	if len(res.Samples) == 0 {
		return nil, resilience.Errorf(resilience.KindNumerical, "montecarlo.Run",
			"no successful samples out of %d", n)
	}
	res.Mean, res.StdErr = stats.MeanStdErr(res.Samples)
	return res, nil
}

// evalSample runs one sample with panic recovery: a panicking evaluator
// (or an injected panic) becomes a classified error carrying the stack.
func evalSample(i, d int, eval Evaluator, opt Options) (v float64, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = resilience.Errorf(resilience.KindPanic, "montecarlo.sample",
				"sample %d panicked: %v\n%s", i, p, debug.Stack())
		}
	}()
	if f := opt.Injector.Fault(FaultOpSample, uint64(i)); f != nil {
		if f.Panic {
			panic(f)
		}
		return 0, resilience.New(f.Kind, "montecarlo.sample", f)
	}
	src := rng.NewStream(opt.Seed, uint64(i)+1)
	return eval(src.NormVec(d))
}

// SamplesForTolerance estimates how many MC samples are needed to reach
// a target standard error, from a pilot run's sample standard deviation:
// n = (sd/tol)². This quantifies the paper's "5000 samples for 1%"
// remark against the measured variance of K.
func SamplesForTolerance(sd, tol float64) (int, error) {
	if tol <= 0 {
		return 0, resilience.Errorf(resilience.KindInvalidInput, "montecarlo.SamplesForTolerance",
			"tolerance must be positive (got %g)", tol)
	}
	n := sd / tol
	return int(n*n) + 1, nil
}
