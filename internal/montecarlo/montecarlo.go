// Package montecarlo provides the brute-force reference estimator the
// paper compares SSCM against (Fig. 7, Table I): parallel evaluation of
// the loss factor over iid standard-normal KL coordinate draws, with
// streaming convergence tracking.
package montecarlo

import (
	"fmt"
	"runtime"
	"sync"

	"roughsim/internal/rng"
	"roughsim/internal/stats"
)

// Evaluator maps KL coordinates to the quantity of interest; it must be
// safe for concurrent calls (mirrors sscm.Evaluator).
type Evaluator func(xi []float64) (float64, error)

// Options tunes the driver.
type Options struct {
	Workers int    // default NumCPU
	Seed    uint64 // base seed; each sample uses an independent stream
}

// Result of a Monte-Carlo run.
type Result struct {
	Samples []float64
	Mean    float64
	StdErr  float64
}

// Run draws n samples of eval over d-dimensional standard normal
// coordinates. Sampling is deterministic given Seed: sample i always
// uses stream i, independent of scheduling.
func Run(d, n int, eval Evaluator, opt Options) (*Result, error) {
	if d <= 0 || n <= 0 {
		return nil, fmt.Errorf("montecarlo: invalid d=%d n=%d", d, n)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	samples := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			src := rng.NewStream(opt.Seed, uint64(i)+1)
			samples[i], errs[i] = eval(src.NormVec(d))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("montecarlo: sample evaluation: %w", err)
		}
	}
	mean, se := stats.MeanStdErr(samples)
	return &Result{Samples: samples, Mean: mean, StdErr: se}, nil
}

// SamplesForTolerance estimates how many MC samples are needed to reach
// a target standard error, from a pilot run's sample standard deviation:
// n = (sd/tol)². This quantifies the paper's "5000 samples for 1%"
// remark against the measured variance of K.
func SamplesForTolerance(sd, tol float64) int {
	if tol <= 0 {
		panic("montecarlo: tolerance must be positive")
	}
	n := sd / tol
	return int(n*n) + 1
}
