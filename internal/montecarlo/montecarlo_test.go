package montecarlo

import (
	"errors"
	"math"
	"testing"
)

func TestMeanOfLinearFunction(t *testing.T) {
	// E[1 + 0.5ξ₀ − 0.2ξ₁] = 1; sd = sqrt(0.25+0.04).
	f := func(xi []float64) (float64, error) { return 1 + 0.5*xi[0] - 0.2*xi[1], nil }
	res, err := Run(2, 20000, f, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-1) > 4*res.StdErr+1e-9 {
		t.Fatalf("mean %g ± %g, want 1", res.Mean, res.StdErr)
	}
	wantSd := math.Sqrt(0.29)
	gotSd := res.StdErr * math.Sqrt(20000)
	if math.Abs(gotSd-wantSd)/wantSd > 0.05 {
		t.Fatalf("sd %g, want %g", gotSd, wantSd)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	f := func(xi []float64) (float64, error) { return xi[0] * xi[0], nil }
	a, err := Run(1, 100, f, Options{Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(1, 100, f, Options{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs across worker counts: %g vs %g", i, a.Samples[i], b.Samples[i])
		}
	}
}

func TestErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	f := func(xi []float64) (float64, error) { return 0, boom }
	if _, err := Run(1, 10, f, Options{}); !errors.Is(err, boom) {
		t.Fatalf("expected wrapped evaluator error, got %v", err)
	}
}

func TestSamplesForTolerance(t *testing.T) {
	// sd = 0.07, tol = 0.001 ⇒ 4900 samples: the paper's "5000 samples
	// for ~1% convergence" regime.
	n := SamplesForTolerance(0.07, 0.001)
	if n < 4800 || n > 5000 {
		t.Fatalf("n = %d, want ≈ 4900", n)
	}
}

func TestRejectsBadArgs(t *testing.T) {
	f := func(xi []float64) (float64, error) { return 0, nil }
	if _, err := Run(0, 10, f, Options{}); err == nil {
		t.Fatal("expected error for d=0")
	}
	if _, err := Run(1, 0, f, Options{}); err == nil {
		t.Fatal("expected error for n=0")
	}
}
