package montecarlo

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"roughsim/internal/resilience"
)

func bg() context.Context { return context.Background() }

func TestMeanOfLinearFunction(t *testing.T) {
	// E[1 + 0.5ξ₀ − 0.2ξ₁] = 1; sd = sqrt(0.25+0.04).
	f := func(xi []float64) (float64, error) { return 1 + 0.5*xi[0] - 0.2*xi[1], nil }
	res, err := Run(bg(), 2, 20000, f, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-1) > 4*res.StdErr+1e-9 {
		t.Fatalf("mean %g ± %g, want 1", res.Mean, res.StdErr)
	}
	wantSd := math.Sqrt(0.29)
	gotSd := res.StdErr * math.Sqrt(20000)
	if math.Abs(gotSd-wantSd)/wantSd > 0.05 {
		t.Fatalf("sd %g, want %g", gotSd, wantSd)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	f := func(xi []float64) (float64, error) { return xi[0] * xi[0], nil }
	a, err := Run(bg(), 1, 100, f, Options{Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(bg(), 1, 100, f, Options{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs across worker counts: %g vs %g", i, a.Samples[i], b.Samples[i])
		}
	}
}

func TestErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	f := func(xi []float64) (float64, error) { return 0, boom }
	if _, err := Run(bg(), 1, 10, f, Options{}); !errors.Is(err, boom) {
		t.Fatalf("expected wrapped evaluator error, got %v", err)
	}
}

func TestWorkerPoolBounded(t *testing.T) {
	// The driver must run a fixed pool of opt.Workers goroutines, not one
	// goroutine per sample: the observed evaluator concurrency can never
	// exceed the pool size.
	const workers = 3
	var inFlight, peak int64
	f := func(xi []float64) (float64, error) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
				break
			}
		}
		s := 0.0
		for i := 0; i < 2000; i++ { // keep the sample busy long enough to overlap
			s += float64(i) * xi[0]
		}
		atomic.AddInt64(&inFlight, -1)
		return s, nil
	}
	if _, err := Run(bg(), 1, 500, f, Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p > workers {
		t.Fatalf("observed %d concurrent evaluations, pool is %d", p, workers)
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var seen int64
	f := func(xi []float64) (float64, error) {
		if atomic.AddInt64(&seen, 1) == 3 {
			cancel()
		}
		return xi[0], nil
	}
	_, err := Run(ctx, 1, 100000, f, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if n := atomic.LoadInt64(&seen); n >= 100000 {
		t.Fatalf("cancellation did not stop the run early (evaluated %d)", n)
	}
}

func TestPanicRecoveredIntoError(t *testing.T) {
	f := func(xi []float64) (float64, error) {
		if xi[0] > -100 { // always
			panic("solver exploded")
		}
		return 0, nil
	}
	_, err := Run(bg(), 1, 4, f, Options{Workers: 2})
	if err == nil {
		t.Fatal("expected error from panicking evaluator")
	}
	if resilience.Classify(err) != resilience.KindPanic {
		t.Fatalf("expected panic classification, got %v: %v", resilience.Classify(err), err)
	}
	if !strings.Contains(err.Error(), "solver exploded") || !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("expected recovered panic with stack, got: %v", err)
	}
}

// TestPartialResultAccounting is the acceptance scenario of the
// resilience layer: fault injection fails ~10% of 200 samples (classified
// as convergence failures) and panics one worker; the run must complete,
// return a partial result with exact per-cause counts, and its mean must
// match the fault-free run within the reported standard error.
func TestPartialResultAccounting(t *testing.T) {
	const n = 200
	eval := func(xi []float64) (float64, error) {
		return 2 + 0.05*xi[0] + 0.03*xi[1]*xi[1], nil
	}
	inj := resilience.NewInjector(
		resilience.FaultSpec{Op: FaultOpSample, Keys: []uint64{7}, Panic: true},
		resilience.FaultSpec{Op: FaultOpSample, Fraction: 0.1, Kind: resilience.KindConvergence},
	)
	// Expected failure set, computed independently of scheduling.
	wantKinds := map[resilience.Kind]int{}
	wantFailed := 0
	for i := 0; i < n; i++ {
		if f := inj.Fault(FaultOpSample, uint64(i)); f != nil {
			wantFailed++
			if f.Panic {
				wantKinds[resilience.KindPanic]++
			} else {
				wantKinds[f.Kind]++
			}
		}
	}
	if wantKinds[resilience.KindPanic] != 1 {
		t.Fatalf("test setup: want exactly 1 panic, got %d", wantKinds[resilience.KindPanic])
	}
	if c := wantKinds[resilience.KindConvergence]; c < 10 || c > 35 {
		t.Fatalf("test setup: injected convergence failures = %d, want ≈ 20", c)
	}

	free, err := Run(bg(), 2, n, eval, Options{Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Run(bg(), 2, n, eval, Options{Seed: 11, Workers: 4, Injector: inj, MaxFailFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}

	if part.Requested != n || part.Failed() != wantFailed || len(part.Samples) != n-wantFailed {
		t.Fatalf("partial accounting: requested %d, failed %d (want %d), samples %d",
			part.Requested, part.Failed(), wantFailed, len(part.Samples))
	}
	if len(part.FailureCounts) != len(wantKinds) {
		t.Fatalf("failure kinds %v, want %v", part.FailureCounts, wantKinds)
	}
	for k, c := range wantKinds {
		if part.FailureCounts[k] != c {
			t.Fatalf("failure count for %v = %d, want %d (all: %v)", k, part.FailureCounts[k], c, wantKinds)
		}
	}
	// Failures are reported in index order with their causes.
	for i := 1; i < len(part.Failures); i++ {
		if part.Failures[i].Index <= part.Failures[i-1].Index {
			t.Fatal("failures not in index order")
		}
	}
	if math.Abs(part.Mean-free.Mean) > part.StdErr {
		t.Fatalf("partial mean %g vs fault-free %g differs by more than the reported stderr %g",
			part.Mean, free.Mean, part.StdErr)
	}
}

func TestFailureBudgetExceeded(t *testing.T) {
	inj := resilience.NewInjector(resilience.FaultSpec{
		Op: FaultOpSample, Fraction: 0.5, Kind: resilience.KindConvergence,
	})
	eval := func(xi []float64) (float64, error) { return 1, nil }
	_, err := Run(bg(), 1, 100, eval, Options{Injector: inj, MaxFailFrac: 0.1})
	if err == nil {
		t.Fatal("expected failure-budget error")
	}
	if resilience.Classify(err) != resilience.KindConvergence {
		t.Fatalf("budget error should carry the first failure's kind, got %v", err)
	}
}

func TestSamplesForTolerance(t *testing.T) {
	// sd = 0.07, tol = 0.001 ⇒ 4900 samples: the paper's "5000 samples
	// for ~1% convergence" regime.
	n, err := SamplesForTolerance(0.07, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if n < 4800 || n > 5000 {
		t.Fatalf("n = %d, want ≈ 4900", n)
	}
	if _, err := SamplesForTolerance(0.07, 0); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("expected invalid-input error for tol=0, got %v", err)
	}
}

func TestRejectsBadArgs(t *testing.T) {
	f := func(xi []float64) (float64, error) { return 0, nil }
	if _, err := Run(bg(), 0, 10, f, Options{}); err == nil {
		t.Fatal("expected error for d=0")
	}
	if _, err := Run(bg(), 1, 0, f, Options{}); err == nil {
		t.Fatal("expected error for n=0")
	}
}
