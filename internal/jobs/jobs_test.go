package jobs

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
)

func await(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

func TestFIFOOrderAndResult(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(1, 8, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	var order []int
	var jobsList []*Job
	for i := 0; i < 4; i++ {
		i := i
		j, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
			order = append(order, i) // single worker ⇒ no race
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobsList = append(jobsList, j)
	}
	for i, j := range jobsList {
		await(t, j)
		v, err := j.Result()
		if err != nil || v.(int) != i*i {
			t.Fatalf("job %d: v=%v err=%v", i, v, err)
		}
		if s := j.Snapshot(); s.Status != StatusSucceeded {
			t.Fatalf("job %d status %s", i, s.Status)
		}
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v not FIFO", order)
		}
	}
	if n := m.Counter("queue.jobs_completed").Value(); n != 4 {
		t.Fatalf("completed = %d", n)
	}
}

func TestBoundedQueueRejectsWhenFull(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(1, 1, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	// One running (occupying the worker) + one queued fills the system.
	j1, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	if n := m.Counter("queue.jobs_rejected").Value(); n != 1 {
		t.Fatalf("rejected = %d", n)
	}
	close(block)
	await(t, j1)
	await(t, j2)
}

func TestPerJobTimeout(t *testing.T) {
	q, err := NewQueue(1, 2, 30*time.Millisecond, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	j, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	if s := j.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", s.Status)
	}
}

func TestCancelRunningJob(t *testing.T) {
	q, err := NewQueue(1, 2, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	started := make(chan struct{})
	j, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !q.Cancel(j.ID) {
		t.Fatal("cancel returned false")
	}
	await(t, j)
	if s := j.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("status = %s", s.Status)
	}
	if q.Cancel("no-such-id") {
		t.Fatal("cancel of unknown id must return false")
	}
}

func TestCanceledWhileQueuedNeverRuns(t *testing.T) {
	q, err := NewQueue(1, 2, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	j1, _ := q.Submit(func(context.Context, func(int, int)) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started
	var ran atomic.Bool
	j2, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		if ctx.Err() == nil {
			ran.Store(true)
		}
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	q.Cancel(j2.ID)
	close(block)
	await(t, j1)
	await(t, j2)
	if ran.Load() {
		t.Fatal("canceled queued job must not run its body")
	}
	if s := j2.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("status = %s", s.Status)
	}
}

func TestPanicIsRecoveredAndClassified(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(2, 2, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	j, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	_, jerr := j.Result()
	if resilience.Classify(jerr) != resilience.KindPanic {
		t.Fatalf("err = %v, want panic classification", jerr)
	}
	// The worker survived: the queue still executes jobs.
	j2, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	await(t, j2)
	if v, err := j2.Result(); err != nil || v.(string) != "ok" {
		t.Fatalf("post-panic job: v=%v err=%v", v, err)
	}
	if n := m.Counter("queue.jobs_failed").Value(); n != 1 {
		t.Fatalf("failed = %d", n)
	}
}

func TestProgressReporting(t *testing.T) {
	q, err := NewQueue(1, 1, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	j, err := q.Submit(func(_ context.Context, progress func(int, int)) (any, error) {
		for i := 1; i <= 3; i++ {
			progress(i, 3)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	if s := j.Snapshot(); s.Done != 3 || s.Total != 3 {
		t.Fatalf("progress %d/%d", s.Done, s.Total)
	}
}

func TestGracefulDrainFinishesQueuedWork(t *testing.T) {
	q, err := NewQueue(2, 8, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	var last *Job
	for i := 0; i < 6; i++ {
		last, err = q.Submit(func(context.Context, func(int, int)) (any, error) {
			time.Sleep(5 * time.Millisecond)
			ran.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 6 {
		t.Fatalf("drain finished %d of 6 jobs", n)
	}
	await(t, last)
	if _, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain submit: %v", err)
	}
	// A second Drain is a no-op.
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	q, err := NewQueue(1, 2, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	j, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		close(started)
		<-ctx.Done() // only queue escalation can stop this job
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v", err)
	}
	await(t, j)
	if s := j.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("straggler status = %s", s.Status)
	}
}

// TestQueueWaitIsMeasured is the regression test for the unmeasured
// queue-wait bug: with one worker blocked, a second job's wait between
// Submit and pickup must land in queue.wait_seconds and in the job's
// Info snapshot.
func TestQueueWaitIsMeasured(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(1, 8, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	release := make(chan struct{})
	first, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the second job accumulate queue wait
	close(release)
	await(t, first)
	await(t, second)

	if got := second.Snapshot().QueueWaitSeconds; got < 0.02 {
		t.Fatalf("second job queue_wait_seconds = %g, want ≥ 0.02", got)
	}
	if first.Snapshot().QueueWaitSeconds <= 0 {
		t.Fatal("first job should still record a (tiny) positive queue wait")
	}
	hs := m.Snapshot().Histograms["queue.wait_seconds"]
	if hs.Count != 2 {
		t.Fatalf("queue.wait_seconds count = %d, want 2", hs.Count)
	}
	if hs.Sum < 0.02 {
		t.Fatalf("queue.wait_seconds sum = %g, want ≥ 0.02", hs.Sum)
	}
}

// TestChangedBroadcast verifies the event-driven subscription: a
// channel obtained before a change closes at that change, and the
// subscribe-then-snapshot pattern cannot miss updates.
func TestChangedBroadcast(t *testing.T) {
	q, err := NewQueue(1, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	step := make(chan struct{})
	j, err := q.Submit(func(ctx context.Context, progress func(int, int)) (any, error) {
		progress(0, 2)
		<-step
		progress(1, 2)
		<-step
		progress(2, 2)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := []int64{}
	var last Info
	sends := 0
	deadline := time.After(10 * time.Second)
	for !last.Status.Terminal() {
		ch := j.Changed() // subscribe BEFORE snapshot
		info := j.Snapshot()
		if info.Done != last.Done || info.Status != last.Status {
			if info.Done != last.Done {
				seen = append(seen, info.Done)
			}
			last = info
			continue // re-check: more changes may have landed already
		}
		// Nothing new: release the runner. The job consumes exactly two
		// steps; the cap keeps a stale snapshot from over-sending.
		if sends < 2 {
			step <- struct{}{}
			sends++
			continue
		}
		select {
		case <-ch:
		case <-deadline:
			t.Fatalf("no change signal; last %+v", last)
		}
	}
	if len(seen) == 0 || seen[len(seen)-1] != 2 {
		t.Fatalf("progress changes seen: %v", seen)
	}
	// After the terminal notify, Changed() must simply never fire again
	// (no goroutine is left signaling) — give it a moment to prove it.
	select {
	case <-j.Changed():
		t.Fatal("Changed fired after terminal state")
	case <-time.After(20 * time.Millisecond):
	}
}

// TestJobTraceSpans: with a tracer attached, every job yields a trace
// whose queue.wait and job.run spans nest under the root and whose
// stage rollup is complete.
func TestJobTraceSpans(t *testing.T) {
	rec := trace.NewRecorder(8)
	q, err := NewQueue(1, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	q.SetTracer(rec)
	j, err := q.Submit(func(ctx context.Context, progress func(int, int)) (any, error) {
		_, sp := trace.StartSpan(ctx, "sweep.synthesize")
		sp.End()
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	tr := rec.Get(j.ID)
	if tr == nil || j.Trace() != tr {
		t.Fatal("job trace not recorded")
	}
	sum := tr.Summary()
	if sum.Spans.InProgress {
		t.Fatal("root span not finished")
	}
	names := map[string]bool{}
	for _, c := range sum.Spans.Children {
		names[c.Name] = true
	}
	if !names["queue.wait"] || !names["job.run"] {
		t.Fatalf("root children: %+v", sum.Spans.Children)
	}
	var runSpan *trace.SpanSummary
	for _, c := range sum.Spans.Children {
		if c.Name == "job.run" {
			runSpan = c
		}
	}
	if len(runSpan.Children) != 1 || runSpan.Children[0].Name != "sweep.synthesize" {
		t.Fatalf("runner spans must nest under job.run: %+v", runSpan)
	}
	if got := sum.Spans.Attrs["status"]; got != string(StatusSucceeded) {
		t.Fatalf("root status attr = %v", got)
	}
	// A full queue must not leak a trace for the rejected job.
	q2, err := NewQueue(1, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Drain(context.Background())
	release := make(chan struct{})
	defer close(release) // LIFO: runs before Drain, unblocking the worker
	started := make(chan struct{})
	q2.SetTracer(rec)
	if _, err := q2.Submit(func(context.Context, func(int, int)) (any, error) {
		close(started)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started // worker holds the first job; the buffer is empty
	if _, err := q2.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err) // fills the buffer
	}
	if rj, err := q2.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }); err == nil {
		t.Fatalf("expected queue full, got job %v", rj.ID)
	} else if got := len(rec.Recent(0)); got != 3 {
		t.Fatalf("rejected job left a trace: %d recorded, want 3", got)
	}
}
