package jobs

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
)

func await(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

func TestFIFOOrderAndResult(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(1, 8, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	var order []int
	var jobsList []*Job
	for i := 0; i < 4; i++ {
		i := i
		j, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
			order = append(order, i) // single worker ⇒ no race
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobsList = append(jobsList, j)
	}
	for i, j := range jobsList {
		await(t, j)
		v, err := j.Result()
		if err != nil || v.(int) != i*i {
			t.Fatalf("job %d: v=%v err=%v", i, v, err)
		}
		if s := j.Snapshot(); s.Status != StatusSucceeded {
			t.Fatalf("job %d status %s", i, s.Status)
		}
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v not FIFO", order)
		}
	}
	if n := m.Counter("queue.jobs_completed").Value(); n != 4 {
		t.Fatalf("completed = %d", n)
	}
}

func TestBoundedQueueRejectsWhenFull(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(1, 1, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	// One running (occupying the worker) + one queued fills the system.
	j1, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	if n := m.Counter("queue.jobs_rejected").Value(); n != 1 {
		t.Fatalf("rejected = %d", n)
	}
	close(block)
	await(t, j1)
	await(t, j2)
}

func TestPerJobTimeout(t *testing.T) {
	q, err := NewQueue(1, 2, 30*time.Millisecond, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	j, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	if s := j.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", s.Status)
	}
}

func TestCancelRunningJob(t *testing.T) {
	q, err := NewQueue(1, 2, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	started := make(chan struct{})
	j, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !q.Cancel(j.ID) {
		t.Fatal("cancel returned false")
	}
	await(t, j)
	if s := j.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("status = %s", s.Status)
	}
	if q.Cancel("no-such-id") {
		t.Fatal("cancel of unknown id must return false")
	}
}

func TestCanceledWhileQueuedNeverRuns(t *testing.T) {
	q, err := NewQueue(1, 2, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	j1, _ := q.Submit(func(context.Context, func(int, int)) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started
	var ran atomic.Bool
	j2, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		if ctx.Err() == nil {
			ran.Store(true)
		}
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	q.Cancel(j2.ID)
	close(block)
	await(t, j1)
	await(t, j2)
	if ran.Load() {
		t.Fatal("canceled queued job must not run its body")
	}
	if s := j2.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("status = %s", s.Status)
	}
}

func TestPanicIsRecoveredAndClassified(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(2, 2, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	j, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	_, jerr := j.Result()
	if resilience.Classify(jerr) != resilience.KindPanic {
		t.Fatalf("err = %v, want panic classification", jerr)
	}
	// The worker survived: the queue still executes jobs.
	j2, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	await(t, j2)
	if v, err := j2.Result(); err != nil || v.(string) != "ok" {
		t.Fatalf("post-panic job: v=%v err=%v", v, err)
	}
	if n := m.Counter("queue.jobs_failed").Value(); n != 1 {
		t.Fatalf("failed = %d", n)
	}
}

func TestProgressReporting(t *testing.T) {
	q, err := NewQueue(1, 1, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	j, err := q.Submit(func(_ context.Context, progress func(int, int)) (any, error) {
		for i := 1; i <= 3; i++ {
			progress(i, 3)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	if s := j.Snapshot(); s.Done != 3 || s.Total != 3 {
		t.Fatalf("progress %d/%d", s.Done, s.Total)
	}
}

func TestGracefulDrainFinishesQueuedWork(t *testing.T) {
	q, err := NewQueue(2, 8, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	var last *Job
	for i := 0; i < 6; i++ {
		last, err = q.Submit(func(context.Context, func(int, int)) (any, error) {
			time.Sleep(5 * time.Millisecond)
			ran.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 6 {
		t.Fatalf("drain finished %d of 6 jobs", n)
	}
	await(t, last)
	if _, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain submit: %v", err)
	}
	// A second Drain is a no-op.
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	q, err := NewQueue(1, 2, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	j, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		close(started)
		<-ctx.Done() // only queue escalation can stop this job
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v", err)
	}
	await(t, j)
	if s := j.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("straggler status = %s", s.Status)
	}
}
