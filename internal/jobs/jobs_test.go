package jobs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
)

func await(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

func TestFIFOOrderAndResult(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(1, 8, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	var order []int
	var jobsList []*Job
	for i := 0; i < 4; i++ {
		i := i
		j, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
			order = append(order, i) // single worker ⇒ no race
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobsList = append(jobsList, j)
	}
	for i, j := range jobsList {
		await(t, j)
		v, err := j.Result()
		if err != nil || v.(int) != i*i {
			t.Fatalf("job %d: v=%v err=%v", i, v, err)
		}
		if s := j.Snapshot(); s.Status != StatusSucceeded {
			t.Fatalf("job %d status %s", i, s.Status)
		}
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v not FIFO", order)
		}
	}
	if n := m.Counter("queue.jobs_completed").Value(); n != 4 {
		t.Fatalf("completed = %d", n)
	}
}

func TestBoundedQueueRejectsWhenFull(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(1, 1, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	// One running (occupying the worker) + one queued fills the system.
	j1, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	if n := m.Counter("queue.jobs_rejected").Value(); n != 1 {
		t.Fatalf("rejected = %d", n)
	}
	close(block)
	await(t, j1)
	await(t, j2)
}

func TestPerJobTimeout(t *testing.T) {
	q, err := NewQueue(1, 2, 30*time.Millisecond, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	j, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	if s := j.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", s.Status)
	}
}

func TestCancelRunningJob(t *testing.T) {
	q, err := NewQueue(1, 2, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	started := make(chan struct{})
	j, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !q.Cancel(j.ID) {
		t.Fatal("cancel returned false")
	}
	await(t, j)
	if s := j.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("status = %s", s.Status)
	}
	if q.Cancel("no-such-id") {
		t.Fatal("cancel of unknown id must return false")
	}
}

func TestCanceledWhileQueuedNeverRuns(t *testing.T) {
	q, err := NewQueue(1, 2, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	j1, _ := q.Submit(func(context.Context, func(int, int)) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started
	var ran atomic.Bool
	j2, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		if ctx.Err() == nil {
			ran.Store(true)
		}
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	q.Cancel(j2.ID)
	close(block)
	await(t, j1)
	await(t, j2)
	if ran.Load() {
		t.Fatal("canceled queued job must not run its body")
	}
	if s := j2.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("status = %s", s.Status)
	}
}

func TestPanicIsRecoveredAndClassified(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(2, 2, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	j, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	_, jerr := j.Result()
	if resilience.Classify(jerr) != resilience.KindPanic {
		t.Fatalf("err = %v, want panic classification", jerr)
	}
	// The worker survived: the queue still executes jobs.
	j2, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	await(t, j2)
	if v, err := j2.Result(); err != nil || v.(string) != "ok" {
		t.Fatalf("post-panic job: v=%v err=%v", v, err)
	}
	if n := m.Counter("queue.jobs_failed").Value(); n != 1 {
		t.Fatalf("failed = %d", n)
	}
}

func TestProgressReporting(t *testing.T) {
	q, err := NewQueue(1, 1, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	j, err := q.Submit(func(_ context.Context, progress func(int, int)) (any, error) {
		for i := 1; i <= 3; i++ {
			progress(i, 3)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	if s := j.Snapshot(); s.Done != 3 || s.Total != 3 {
		t.Fatalf("progress %d/%d", s.Done, s.Total)
	}
}

func TestGracefulDrainFinishesQueuedWork(t *testing.T) {
	q, err := NewQueue(2, 8, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	var last *Job
	for i := 0; i < 6; i++ {
		last, err = q.Submit(func(context.Context, func(int, int)) (any, error) {
			time.Sleep(5 * time.Millisecond)
			ran.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 6 {
		t.Fatalf("drain finished %d of 6 jobs", n)
	}
	await(t, last)
	if _, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain submit: %v", err)
	}
	// A second Drain is a no-op.
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	q, err := NewQueue(1, 2, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	j, err := q.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		close(started)
		<-ctx.Done() // only queue escalation can stop this job
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v", err)
	}
	await(t, j)
	if s := j.Snapshot(); s.Status != StatusCanceled {
		t.Fatalf("straggler status = %s", s.Status)
	}
}

// TestQueueWaitIsMeasured is the regression test for the unmeasured
// queue-wait bug: with one worker blocked, a second job's wait between
// Submit and pickup must land in queue.wait_seconds and in the job's
// Info snapshot.
func TestQueueWaitIsMeasured(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(1, 8, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	release := make(chan struct{})
	first, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := q.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the second job accumulate queue wait
	close(release)
	await(t, first)
	await(t, second)

	if got := second.Snapshot().QueueWaitSeconds; got < 0.02 {
		t.Fatalf("second job queue_wait_seconds = %g, want ≥ 0.02", got)
	}
	if first.Snapshot().QueueWaitSeconds <= 0 {
		t.Fatal("first job should still record a (tiny) positive queue wait")
	}
	hs := m.Snapshot().Histograms["queue.wait_seconds"]
	if hs.Count != 2 {
		t.Fatalf("queue.wait_seconds count = %d, want 2", hs.Count)
	}
	if hs.Sum < 0.02 {
		t.Fatalf("queue.wait_seconds sum = %g, want ≥ 0.02", hs.Sum)
	}
}

// TestChangedBroadcast verifies the event-driven subscription: a
// channel obtained before a change closes at that change, and the
// subscribe-then-snapshot pattern cannot miss updates.
func TestChangedBroadcast(t *testing.T) {
	q, err := NewQueue(1, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	step := make(chan struct{})
	j, err := q.Submit(func(ctx context.Context, progress func(int, int)) (any, error) {
		progress(0, 2)
		<-step
		progress(1, 2)
		<-step
		progress(2, 2)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := []int64{}
	var last Info
	sends := 0
	deadline := time.After(10 * time.Second)
	for !last.Status.Terminal() {
		ch := j.Changed() // subscribe BEFORE snapshot
		info := j.Snapshot()
		if info.Done != last.Done || info.Status != last.Status {
			if info.Done != last.Done {
				seen = append(seen, info.Done)
			}
			last = info
			continue // re-check: more changes may have landed already
		}
		// Nothing new: release the runner. The job consumes exactly two
		// steps; the cap keeps a stale snapshot from over-sending.
		if sends < 2 {
			step <- struct{}{}
			sends++
			continue
		}
		select {
		case <-ch:
		case <-deadline:
			t.Fatalf("no change signal; last %+v", last)
		}
	}
	if len(seen) == 0 || seen[len(seen)-1] != 2 {
		t.Fatalf("progress changes seen: %v", seen)
	}
	// After the terminal notify, Changed() must simply never fire again
	// (no goroutine is left signaling) — give it a moment to prove it.
	select {
	case <-j.Changed():
		t.Fatal("Changed fired after terminal state")
	case <-time.After(20 * time.Millisecond):
	}
}

// TestJobTraceSpans: with a tracer attached, every job yields a trace
// whose queue.wait and job.run spans nest under the root and whose
// stage rollup is complete.
func TestJobTraceSpans(t *testing.T) {
	rec := trace.NewRecorder(8)
	q, err := NewQueue(1, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())
	q.SetTracer(rec)
	j, err := q.Submit(func(ctx context.Context, progress func(int, int)) (any, error) {
		_, sp := trace.StartSpan(ctx, "sweep.synthesize")
		sp.End()
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	tr := rec.Get(j.ID)
	if tr == nil || j.Trace() != tr {
		t.Fatal("job trace not recorded")
	}
	sum := tr.Summary()
	if sum.Spans.InProgress {
		t.Fatal("root span not finished")
	}
	names := map[string]bool{}
	for _, c := range sum.Spans.Children {
		names[c.Name] = true
	}
	if !names["queue.wait"] || !names["job.run"] {
		t.Fatalf("root children: %+v", sum.Spans.Children)
	}
	var runSpan *trace.SpanSummary
	for _, c := range sum.Spans.Children {
		if c.Name == "job.run" {
			runSpan = c
		}
	}
	if len(runSpan.Children) != 1 || runSpan.Children[0].Name != "sweep.synthesize" {
		t.Fatalf("runner spans must nest under job.run: %+v", runSpan)
	}
	if got := sum.Spans.Attrs["status"]; got != string(StatusSucceeded) {
		t.Fatalf("root status attr = %v", got)
	}
	// A full queue must not leak a trace for the rejected job.
	q2, err := NewQueue(1, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Drain(context.Background())
	release := make(chan struct{})
	defer close(release) // LIFO: runs before Drain, unblocking the worker
	started := make(chan struct{})
	q2.SetTracer(rec)
	if _, err := q2.Submit(func(context.Context, func(int, int)) (any, error) {
		close(started)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started // worker holds the first job; the buffer is empty
	if _, err := q2.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err) // fills the buffer
	}
	if rj, err := q2.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }); err == nil {
		t.Fatalf("expected queue full, got job %v", rj.ID)
	} else if got := len(rec.Recent(0)); got != 3 {
		t.Fatalf("rejected job left a trace: %d recorded, want 3", got)
	}
}

func transientErr() error {
	return resilience.Errorf(resilience.KindConvergence, "test.op", "transient")
}

// A retryable failure below the attempt bound must re-enqueue the job
// and eventually succeed, with the pickup count visible in snapshots.
func TestRetryableFailureRetriesThenSucceeds(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(1, 4, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())

	var calls atomic.Int64
	j, err := q.SubmitOpts(func(ctx context.Context, _ func(int, int)) (any, error) {
		if calls.Add(1) < 3 {
			return nil, transientErr()
		}
		meta, ok := MetaFrom(ctx)
		if !ok || meta.Attempt != 3 {
			return nil, errors.New("runner context meta missing or wrong")
		}
		return "ok", nil
	}, SubmitOptions{MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	if v, err := j.Result(); err != nil || v != "ok" {
		t.Fatalf("result = %v, %v", v, err)
	}
	info := j.Snapshot()
	if info.Attempt != 3 || info.MaxAttempts != 3 {
		t.Fatalf("attempt accounting = %d/%d, want 3/3", info.Attempt, info.MaxAttempts)
	}
	if got := m.Counter("queue.jobs_retried").Value(); got != 2 {
		t.Fatalf("jobs_retried = %d, want 2", got)
	}
}

// Permanent failure kinds must not consume retry budget.
func TestPermanentFailureDoesNotRetry(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(1, 4, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())

	var calls atomic.Int64
	j, err := q.SubmitOpts(func(context.Context, func(int, int)) (any, error) {
		calls.Add(1)
		return nil, resilience.Errorf(resilience.KindInvalidInput, "test.op", "bad input")
	}, SubmitOptions{MaxAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	if calls.Load() != 1 {
		t.Fatalf("permanent failure ran %d times", calls.Load())
	}
	if info := j.Snapshot(); info.Status != StatusFailed {
		t.Fatalf("status = %s, want failed", info.Status)
	}
	if got := m.Counter("queue.jobs_retried").Value(); got != 0 {
		t.Fatalf("jobs_retried = %d, want 0", got)
	}
}

// Exhausting the attempt budget terminalizes with the last error.
func TestRetryBudgetExhausted(t *testing.T) {
	q, err := NewQueue(1, 4, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())

	var calls atomic.Int64
	j, err := q.SubmitOpts(func(context.Context, func(int, int)) (any, error) {
		calls.Add(1)
		return nil, transientErr()
	}, SubmitOptions{MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	if calls.Load() != 3 {
		t.Fatalf("ran %d times, want 3", calls.Load())
	}
	_, jerr := j.Result()
	if resilience.Classify(jerr) != resilience.KindConvergence {
		t.Fatalf("final error %v lost its classification", jerr)
	}
}

// The backoff schedule must actually separate attempts in time.
func TestRetryHonorsBackoff(t *testing.T) {
	q, err := NewQueue(1, 4, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())

	var calls atomic.Int64
	start := time.Now()
	j, err := q.SubmitOpts(func(context.Context, func(int, int)) (any, error) {
		if calls.Add(1) < 3 {
			return nil, transientErr()
		}
		return nil, nil
	}, SubmitOptions{MaxAttempts: 3, Backoff: resilience.Backoff{Base: 25 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	await(t, j)
	// Two parks: 25ms + 50ms of scheduled backoff.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("3 attempts in %v; backoff not applied", elapsed)
	}
}

// Draining while a job waits out its backoff abandons the job without a
// terminal transition and counts it in jobs.dropped_at_shutdown.
func TestDrainDropsRetryWaiters(t *testing.T) {
	m := telemetry.NewRegistry()
	q, err := NewQueue(1, 4, 0, m)
	if err != nil {
		t.Fatal(err)
	}

	running := make(chan struct{}, 8)
	j, err := q.SubmitOpts(func(context.Context, func(int, int)) (any, error) {
		running <- struct{}{}
		return nil, transientErr()
	}, SubmitOptions{MaxAttempts: 2, Backoff: resilience.Backoff{Base: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	// Wait until the job is parked on its hour-long backoff timer.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if info := j.Snapshot(); info.Status == StatusQueued && info.Attempt == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never parked for retry")
		}
		time.Sleep(time.Millisecond)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := m.Counter("jobs.dropped_at_shutdown").Value(); got != 1 {
		t.Fatalf("dropped_at_shutdown = %d, want 1", got)
	}
	if info := j.Snapshot(); info.Status.Terminal() {
		t.Fatalf("abandoned job terminalized as %s; must stay replayable", info.Status)
	}
}

// Canceling a job parked on a backoff timer terminalizes it immediately
// instead of waiting out the backoff.
func TestCancelParkedRetry(t *testing.T) {
	q, err := NewQueue(1, 4, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())

	j, err := q.SubmitOpts(func(context.Context, func(int, int)) (any, error) {
		return nil, transientErr()
	}, SubmitOptions{MaxAttempts: 2, Backoff: resilience.Backoff{Base: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); ; {
		if info := j.Snapshot(); info.Status == StatusQueued && info.Attempt == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never parked for retry")
		}
		time.Sleep(time.Millisecond)
	}
	if !q.Cancel(j.ID) {
		t.Fatal("cancel refused")
	}
	await(t, j)
	if info := j.Snapshot(); info.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", info.Status)
	}
}

// The terminal observer fires exactly once per job, after the terminal
// status is visible, including for retried jobs.
func TestObserverFiresOncePerTerminalJob(t *testing.T) {
	q, err := NewQueue(2, 8, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())

	var mu sync.Mutex
	seen := map[string][]Status{}
	q.SetObserver(func(j *Job) {
		mu.Lock()
		seen[j.ID] = append(seen[j.ID], j.Snapshot().Status)
		mu.Unlock()
	})

	var calls atomic.Int64
	ok, err := q.SubmitOpts(func(context.Context, func(int, int)) (any, error) {
		if calls.Add(1) < 2 {
			return nil, transientErr()
		}
		return nil, nil
	}, SubmitOptions{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := q.Submit(func(context.Context, func(int, int)) (any, error) {
		return nil, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	await(t, ok)
	await(t, bad)
	mu.Lock()
	defer mu.Unlock()
	if got := seen[ok.ID]; len(got) != 1 || got[0] != StatusSucceeded {
		t.Fatalf("observer for retried job saw %v", got)
	}
	if got := seen[bad.ID]; len(got) != 1 || got[0] != StatusFailed {
		t.Fatalf("observer for failed job saw %v", got)
	}
}

// Explicit IDs (journal replay) round-trip, and duplicates are refused.
func TestExplicitIDAndDuplicateRejection(t *testing.T) {
	q, err := NewQueue(1, 4, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(context.Background())

	block := make(chan struct{})
	j, err := q.SubmitOpts(func(context.Context, func(int, int)) (any, error) {
		<-block
		return nil, nil
	}, SubmitOptions{ID: "replayed-job-1", Attempt: 2, MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "replayed-job-1" {
		t.Fatalf("ID = %s", j.ID)
	}
	if _, err := q.SubmitOpts(func(context.Context, func(int, int)) (any, error) {
		return nil, nil
	}, SubmitOptions{ID: "replayed-job-1"}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	close(block)
	await(t, j)
	// Replay with spent budget still got its one attempt: seeded 2, ran once.
	if info := j.Snapshot(); info.Attempt != 3 {
		t.Fatalf("attempt = %d, want 3 (seeded 2 + 1 run)", info.Attempt)
	}
}
