package jobs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
)

// The lease state machine of the distributed compute plane. A LeaseTable
// holds column-granular tasks the coordinator offers; workers claim one
// at a time over HTTP, renew the lease while computing, and complete it
// with a result or a classified error. Losing a worker is an expected
// event, not a failure: an expired lease re-queues its task (exactly
// once per loss, bounded by MaxLosses), and a result arriving after its
// lease expired — the worker was slow, not dead — is discarded
// idempotently by token mismatch, so a task can never complete twice
// with conflicting results. Deterministic rejections (invalid input,
// singular systems, recovered panics) fail the task immediately: the
// resilience taxonomy says retrying them cannot change the outcome.
//
// The table is intentionally independent of the wire format: payloads
// are opaque, so the queue package stays free of HTTP and the cluster
// package free of lease bookkeeping.

// ErrStaleLease reports a renew or complete whose lease is no longer
// current: the task is unknown, finished, canceled, or re-leased to
// another worker after an expiry. Callers discard the operation — the
// authoritative result is (or will be) someone else's.
var ErrStaleLease = errors.New("jobs: stale or unknown lease")

// LeaseOptions wires a LeaseTable.
type LeaseOptions struct {
	// TTL is how long a claim stays valid without a renew (default 30s).
	TTL time.Duration
	// MaxLosses bounds how many times one task survives losing its
	// worker (lease expiry or a retryable completion error) before it
	// fails (default 3).
	MaxLosses int
	// Metrics receives lease.* telemetry; nil disables it.
	Metrics *telemetry.Registry
	// OnGrant/OnExpire observe lease grants and expiries (the server
	// journals them). Called outside the table lock; nil funcs skipped.
	OnGrant  func(taskID, worker string, payload any)
	OnExpire func(taskID, worker string, payload any)
}

// Lease is one granted claim.
type Lease struct {
	TaskID  string
	Token   string
	Payload any
	TTL     time.Duration
}

type taskState int

const (
	taskPending taskState = iota
	taskLeased
	taskDone
)

type leaseTask struct {
	id      string
	payload any
	state   taskState
	worker  string
	token   string
	expires time.Time
	losses  int
	result  any
	err     error
	done    chan struct{}
}

// LeaseTable is the coordinator-side claim/renew/complete ledger. All
// methods are safe for concurrent use.
type LeaseTable struct {
	opt LeaseOptions

	mu      sync.Mutex
	tasks   map[string]*leaseTask
	order   []string // claim order; entries whose task is not pending are skipped
	workers map[string]time.Time
	changed chan struct{}

	stop     chan struct{}
	stopOnce sync.Once

	m      *telemetry.Registry
	tasksG *telemetry.Gauge
	workG  *telemetry.Gauge
}

// NewLeaseTable builds the table and starts its expiry scanner.
func NewLeaseTable(opt LeaseOptions) *LeaseTable {
	if opt.TTL <= 0 {
		opt.TTL = 30 * time.Second
	}
	if opt.MaxLosses <= 0 {
		opt.MaxLosses = 3
	}
	if opt.Metrics == nil {
		opt.Metrics = telemetry.NewRegistry()
	}
	lt := &LeaseTable{
		opt:     opt,
		tasks:   map[string]*leaseTask{},
		workers: map[string]time.Time{},
		changed: make(chan struct{}),
		stop:    make(chan struct{}),
		m:       opt.Metrics,
		tasksG:  opt.Metrics.Gauge("lease.tasks"),
		workG:   opt.Metrics.Gauge("cluster.workers"),
	}
	go lt.scan()
	return lt
}

// Close stops the expiry scanner. Outstanding tasks stay readable.
func (lt *LeaseTable) Close() {
	if lt == nil {
		return
	}
	lt.stopOnce.Do(func() { close(lt.stop) })
}

// scan expires lapsed leases on a period well under the TTL.
func (lt *LeaseTable) scan() {
	period := lt.opt.TTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-lt.stop:
			return
		case now := <-tick.C:
			lt.expire(now)
		}
	}
}

// expire re-queues (or, past MaxLosses, fails) every task whose lease
// lapsed, and forgets workers not seen within the liveness window.
func (lt *LeaseTable) expire(now time.Time) {
	type lost struct {
		id      string
		worker  string
		payload any
	}
	var expired []lost
	lt.mu.Lock()
	for id, t := range lt.tasks {
		if t.state != taskLeased || now.Before(t.expires) {
			continue
		}
		expired = append(expired, lost{id, t.worker, t.payload})
		lt.m.CounterL("lease.expired", telemetry.L("worker", t.worker)).Inc()
		lt.loseLocked(t, fmt.Errorf("jobs: lease lost %d times (worker %s expired)", t.losses+1, t.worker))
	}
	window := 2 * lt.opt.TTL
	for w, seen := range lt.workers {
		if now.Sub(seen) > window {
			delete(lt.workers, w)
		}
	}
	lt.workG.Set(float64(len(lt.workers)))
	if len(expired) > 0 {
		lt.notifyLocked()
	}
	lt.mu.Unlock()
	if lt.opt.OnExpire != nil {
		for _, e := range expired {
			lt.opt.OnExpire(e.id, e.worker, e.payload)
		}
	}
}

// loseLocked records one worker loss for a leased task: back to pending
// (exactly one re-queue per loss), or terminally failed with failErr
// once the loss budget is spent. Caller holds lt.mu.
func (lt *LeaseTable) loseLocked(t *leaseTask, failErr error) {
	t.losses++
	t.worker, t.token = "", ""
	if t.losses > lt.opt.MaxLosses {
		lt.m.Counter("lease.exhausted").Inc()
		t.state = taskDone
		t.err = failErr
		close(t.done)
		return
	}
	lt.m.Counter("lease.requeued").Inc()
	t.state = taskPending
	lt.order = append(lt.order, t.id)
}

// Offer adds a task (idempotently by ID: a duplicate offer returns the
// existing task's done channel without resetting any state) and returns
// the channel that closes when the task finishes.
func (lt *LeaseTable) Offer(id string, payload any) <-chan struct{} {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if t, ok := lt.tasks[id]; ok {
		return t.done
	}
	t := &leaseTask{id: id, payload: payload, state: taskPending, done: make(chan struct{})}
	lt.tasks[id] = t
	lt.order = append(lt.order, id)
	lt.tasksG.Set(float64(len(lt.tasks)))
	lt.m.Counter("lease.offered").Inc()
	lt.notifyLocked()
	return t.done
}

// Claim leases the oldest pending task to worker (registering the
// worker as live either way); ok is false when nothing is pending.
func (lt *LeaseTable) Claim(worker string) (Lease, bool) {
	lt.mu.Lock()
	lt.touchLocked(worker)
	var t *leaseTask
	for len(lt.order) > 0 {
		id := lt.order[0]
		lt.order = lt.order[1:]
		if c, ok := lt.tasks[id]; ok && c.state == taskPending {
			t = c
			break
		}
	}
	if t == nil {
		lt.mu.Unlock()
		return Lease{}, false
	}
	t.state = taskLeased
	t.worker = worker
	t.token = newID()
	t.expires = time.Now().Add(lt.opt.TTL)
	lease := Lease{TaskID: t.id, Token: t.token, Payload: t.payload, TTL: lt.opt.TTL}
	lt.m.CounterL("lease.claims", telemetry.L("worker", worker)).Inc()
	lt.mu.Unlock()
	if lt.opt.OnGrant != nil {
		lt.opt.OnGrant(lease.TaskID, worker, lease.Payload)
	}
	return lease, true
}

// Renew extends a current lease by one TTL; ErrStaleLease otherwise.
func (lt *LeaseTable) Renew(id, token string) error {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	t, ok := lt.tasks[id]
	if !ok || t.state != taskLeased || t.token != token {
		lt.m.Counter("lease.stale_renews").Inc()
		return ErrStaleLease
	}
	t.expires = time.Now().Add(lt.opt.TTL)
	lt.touchLocked(t.worker)
	lt.m.Counter("lease.renews").Inc()
	return nil
}

// Complete finishes a leased task. A stale token (the lease expired and
// the task was re-queued or re-leased) discards the completion
// idempotently with ErrStaleLease — the re-queued execution's result is
// the authoritative one. taskErr, when non-nil, is routed through the
// resilience taxonomy: a deterministic rejection (invalid input,
// singular, panic) fails the task immediately; anything else counts as
// one loss and re-queues within the MaxLosses budget.
func (lt *LeaseTable) Complete(id, token string, result any, taskErr error) error {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	t, ok := lt.tasks[id]
	if !ok || t.state != taskLeased || t.token != token {
		lt.m.Counter("lease.stale_results").Inc()
		return ErrStaleLease
	}
	worker := t.worker
	lt.touchLocked(worker)
	if taskErr != nil {
		switch resilience.Classify(taskErr) {
		case resilience.KindInvalidInput, resilience.KindSingular, resilience.KindPanic:
			// Deterministic rejection: re-running it cannot change the
			// outcome, so it must never burn re-queue budget.
			lt.m.Counter("lease.rejected").Inc()
			t.state = taskDone
			t.worker, t.token = "", ""
			t.err = taskErr
			close(t.done)
		default:
			lt.loseLocked(t, taskErr)
		}
		lt.notifyLocked()
		return nil
	}
	t.state = taskDone
	t.worker, t.token = "", ""
	t.result = result
	close(t.done)
	lt.m.CounterL("lease.completes", telemetry.L("worker", worker)).Inc()
	lt.notifyLocked()
	return nil
}

// Result returns a task's outcome. done is false while it is still
// pending or leased; an unknown (canceled or forgotten) task reads as
// done with ErrStaleLease, so a waiter can never deadlock on it.
func (lt *LeaseTable) Result(id string) (result any, err error, done bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	t, ok := lt.tasks[id]
	if !ok {
		return nil, ErrStaleLease, true
	}
	if t.state != taskDone {
		return nil, nil, false
	}
	return t.result, t.err, true
}

// Cancel abandons a task: it is removed from the table (closing its
// done channel with a canceled error if still unfinished) and any
// in-flight completion for it becomes a stale no-op.
func (lt *LeaseTable) Cancel(id string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	t, ok := lt.tasks[id]
	if !ok {
		return
	}
	if t.state != taskDone {
		t.err = resilience.Errorf(resilience.KindCanceled, "jobs.lease", "task canceled")
		t.state = taskDone
		close(t.done)
	}
	delete(lt.tasks, id)
	lt.tasksG.Set(float64(len(lt.tasks)))
	lt.notifyLocked()
}

// Forget drops a finished task's record (the caller consumed its
// result). Unfinished tasks are left alone.
func (lt *LeaseTable) Forget(id string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if t, ok := lt.tasks[id]; ok && t.state == taskDone {
		delete(lt.tasks, id)
		lt.tasksG.Set(float64(len(lt.tasks)))
	}
}

// Leave removes a departing worker (graceful drain): its leased tasks
// re-queue immediately — a rebalance, deliberately not charged against
// any task's loss budget — instead of waiting out their TTLs.
func (lt *LeaseTable) Leave(worker string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	delete(lt.workers, worker)
	lt.workG.Set(float64(len(lt.workers)))
	for _, t := range lt.tasks {
		if t.state == taskLeased && t.worker == worker {
			t.state = taskPending
			t.worker, t.token = "", ""
			lt.order = append(lt.order, t.id)
			lt.m.Counter("lease.rebalanced").Inc()
		}
	}
	lt.notifyLocked()
}

// LiveWorkers counts workers seen (claim, renew, complete) within the
// liveness window — the coordinator dispatches remotely only when this
// is positive.
func (lt *LeaseTable) LiveWorkers() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	n, window := 0, 2*lt.opt.TTL
	now := time.Now()
	for _, seen := range lt.workers {
		if now.Sub(seen) <= window {
			n++
		}
	}
	return n
}

// Changed returns a channel closed at the table's next observable
// change (offer, completion, expiry, cancel). Subscribe before reading
// Result so no transition can be missed.
func (lt *LeaseTable) Changed() <-chan struct{} {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.changed
}

func (lt *LeaseTable) notifyLocked() {
	close(lt.changed)
	lt.changed = make(chan struct{})
}

func (lt *LeaseTable) touchLocked(worker string) {
	lt.workers[worker] = time.Now()
	lt.workG.Set(float64(len(lt.workers)))
}
