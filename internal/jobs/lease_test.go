package jobs

import (
	"errors"
	"testing"
	"time"

	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
)

func testLeaseTable(t *testing.T, opt LeaseOptions) *LeaseTable {
	t.Helper()
	lt := NewLeaseTable(opt)
	t.Cleanup(lt.Close)
	return lt
}

func counter(m *telemetry.Registry, name string) int64 {
	return m.Counter(name).Value()
}

func TestLeaseClaimCompleteRoundTrip(t *testing.T) {
	m := telemetry.NewRegistry()
	lt := testLeaseTable(t, LeaseOptions{TTL: time.Second, Metrics: m})
	done := lt.Offer("t1", "payload")
	lease, ok := lt.Claim("w1")
	if !ok {
		t.Fatal("claim found nothing")
	}
	if lease.TaskID != "t1" || lease.Payload != "payload" || lease.Token == "" {
		t.Fatalf("bad lease: %+v", lease)
	}
	if _, ok := lt.Claim("w2"); ok {
		t.Fatal("second claim should find nothing: the only task is leased")
	}
	if err := lt.Complete("t1", lease.Token, []float64{1, 2}, nil); err != nil {
		t.Fatalf("complete: %v", err)
	}
	select {
	case <-done:
	default:
		t.Fatal("done channel not closed after completion")
	}
	res, err, finished := lt.Result("t1")
	if !finished || err != nil {
		t.Fatalf("result: done=%v err=%v", finished, err)
	}
	if col := res.([]float64); len(col) != 2 || col[0] != 1 {
		t.Fatalf("wrong result %v", col)
	}
	if lt.LiveWorkers() != 2 {
		t.Fatalf("LiveWorkers = %d, want 2 (both claimants touched)", lt.LiveWorkers())
	}
}

func TestLeaseOfferIdempotent(t *testing.T) {
	lt := testLeaseTable(t, LeaseOptions{TTL: time.Second})
	d1 := lt.Offer("t1", 1)
	d2 := lt.Offer("t1", 2)
	if d1 != d2 {
		t.Fatal("duplicate offer returned a different done channel")
	}
	lease, ok := lt.Claim("w")
	if !ok || lease.Payload != 1 {
		t.Fatalf("duplicate offer reset the payload: %+v", lease)
	}
	if _, ok := lt.Claim("w"); ok {
		t.Fatal("duplicate offer enqueued the task twice")
	}
}

// One lease expiry re-queues the task exactly once; the late completion
// from the lost worker is discarded idempotently by token mismatch.
func TestLeaseExpiryRequeuesOnceAndDiscardsStaleResult(t *testing.T) {
	m := telemetry.NewRegistry()
	lt := testLeaseTable(t, LeaseOptions{TTL: 30 * time.Millisecond, Metrics: m})
	lt.Offer("t1", nil)
	old, ok := lt.Claim("w-lost")
	if !ok {
		t.Fatal("claim failed")
	}
	deadline := time.Now().Add(5 * time.Second)
	var fresh Lease
	for {
		if fresh, ok = lt.Claim("w-live"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired task never re-queued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := counter(m, "lease.requeued"); got != 1 {
		t.Fatalf("lease.requeued = %v, want exactly 1 per loss", got)
	}
	// The lost worker finally reports: stale token, discarded, and the
	// authoritative in-flight lease is untouched.
	if err := lt.Complete("t1", old.Token, []float64{9}, nil); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("stale complete returned %v, want ErrStaleLease", err)
	}
	if got := counter(m, "lease.stale_results"); got != 1 {
		t.Fatalf("lease.stale_results = %v, want 1", got)
	}
	if _, _, done := lt.Result("t1"); done {
		t.Fatal("stale completion finished the task")
	}
	if err := lt.Complete("t1", fresh.Token, []float64{7}, nil); err != nil {
		t.Fatalf("authoritative complete: %v", err)
	}
	res, err, done := lt.Result("t1")
	if !done || err != nil || res.([]float64)[0] != 7 {
		t.Fatalf("authoritative result lost: %v %v %v", res, err, done)
	}
}

func TestLeaseExhaustionAfterMaxLosses(t *testing.T) {
	m := telemetry.NewRegistry()
	lt := testLeaseTable(t, LeaseOptions{TTL: 20 * time.Millisecond, MaxLosses: 2, Metrics: m})
	done := lt.Offer("t1", nil)
	losses := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := lt.Claim("w"); ok {
			losses++
		}
		select {
		case <-done:
			_, err, finished := lt.Result("t1")
			if !finished || err == nil {
				t.Fatalf("exhausted task should fail: done=%v err=%v", finished, err)
			}
			if losses != 3 {
				// MaxLosses=2 budgets two re-queues: three claims total.
				t.Fatalf("task was claimed %d times, want 3", losses)
			}
			if got := counter(m, "lease.exhausted"); got != 1 {
				t.Fatalf("lease.exhausted = %v, want 1", got)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("task never exhausted (claims so far: %d)", losses)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A deterministic rejection fails the task immediately: re-running
// invalid input cannot change the outcome, so it must not burn budget.
func TestLeasePermanentErrorFailsImmediately(t *testing.T) {
	m := telemetry.NewRegistry()
	lt := testLeaseTable(t, LeaseOptions{TTL: time.Second, Metrics: m})
	lt.Offer("t1", nil)
	lease, _ := lt.Claim("w")
	bad := resilience.Errorf(resilience.KindInvalidInput, "test", "bad input")
	if err := lt.Complete("t1", lease.Token, nil, bad); err != nil {
		t.Fatalf("complete: %v", err)
	}
	_, err, done := lt.Result("t1")
	if !done || resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("want immediate invalid-input failure, got done=%v err=%v", done, err)
	}
	if got := counter(m, "lease.requeued"); got != 0 {
		t.Fatalf("deterministic rejection was re-queued %v times", got)
	}
	if got := counter(m, "lease.rejected"); got != 1 {
		t.Fatalf("lease.rejected = %v, want 1", got)
	}
}

// A retryable completion error counts as one loss and re-queues.
func TestLeaseRetryableErrorRequeues(t *testing.T) {
	m := telemetry.NewRegistry()
	lt := testLeaseTable(t, LeaseOptions{TTL: time.Second, Metrics: m})
	lt.Offer("t1", nil)
	lease, _ := lt.Claim("w")
	flaky := resilience.Errorf(resilience.KindNumerical, "test", "transient")
	if err := lt.Complete("t1", lease.Token, nil, flaky); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if _, _, done := lt.Result("t1"); done {
		t.Fatal("retryable error finished the task")
	}
	if _, ok := lt.Claim("w2"); !ok {
		t.Fatal("retryable error did not re-queue the task")
	}
	if got := counter(m, "lease.requeued"); got != 1 {
		t.Fatalf("lease.requeued = %v, want 1", got)
	}
}

// Leave re-queues a departing worker's leases without charging losses.
func TestLeaseLeaveRebalances(t *testing.T) {
	m := telemetry.NewRegistry()
	lt := testLeaseTable(t, LeaseOptions{TTL: time.Minute, Metrics: m})
	lt.Offer("t1", nil)
	old, _ := lt.Claim("w-drain")
	lt.Leave("w-drain")
	lease, ok := lt.Claim("w-live")
	if !ok {
		t.Fatal("leave did not re-queue the lease")
	}
	if got := counter(m, "lease.rebalanced"); got != 1 {
		t.Fatalf("lease.rebalanced = %v, want 1", got)
	}
	if got := counter(m, "lease.requeued"); got != 0 {
		t.Fatalf("graceful leave charged a loss: requeued=%v", got)
	}
	if err := lt.Complete("t1", old.Token, nil, nil); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("pre-leave token still valid: %v", err)
	}
	if err := lt.Complete("t1", lease.Token, []float64{1}, nil); err != nil {
		t.Fatalf("post-rebalance complete: %v", err)
	}
}

func TestLeaseCancelAndForget(t *testing.T) {
	lt := testLeaseTable(t, LeaseOptions{TTL: time.Second})
	done := lt.Offer("t1", nil)
	lease, _ := lt.Claim("w")
	lt.Cancel("t1")
	select {
	case <-done:
	default:
		t.Fatal("cancel left the done channel open")
	}
	// Canceled and forgotten tasks read as done (stale) so no waiter can
	// deadlock, and an in-flight completion is a no-op.
	if _, err, finished := lt.Result("t1"); !finished || !errors.Is(err, ErrStaleLease) {
		t.Fatalf("canceled task: done=%v err=%v", finished, err)
	}
	if err := lt.Complete("t1", lease.Token, []float64{1}, nil); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("completion after cancel: %v", err)
	}

	lt.Offer("t2", nil)
	l2, _ := lt.Claim("w")
	lt.Forget("t2") // unfinished: must be left alone
	if err := lt.Complete("t2", l2.Token, []float64{1}, nil); err != nil {
		t.Fatalf("forget removed an unfinished task: %v", err)
	}
	lt.Forget("t2")
	if _, err, finished := lt.Result("t2"); !finished || !errors.Is(err, ErrStaleLease) {
		t.Fatalf("forgotten task: done=%v err=%v", finished, err)
	}
}

func TestLeaseChangedSignalsOnCompletion(t *testing.T) {
	lt := testLeaseTable(t, LeaseOptions{TTL: time.Second})
	lt.Offer("t1", nil)
	lease, _ := lt.Claim("w")
	ch := lt.Changed()
	go lt.Complete("t1", lease.Token, []float64{1}, nil)
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("Changed never signaled the completion")
	}
}
