// Package jobs is the execution tier of roughsimd: a bounded FIFO queue
// drained by a fixed pool of workers, with per-job context deadlines,
// explicit cancellation, progress reporting for streaming endpoints,
// and graceful drain on shutdown (stop intake, finish what is running,
// escalate to cancellation only when the drain deadline expires).
//
// It deliberately reuses the repository's resilience conventions: job
// failures are classified through resilience.Classify, worker panics
// are recovered into classified errors instead of killing the daemon,
// and every state transition is observable through telemetry (queue
// depth, running gauge, submitted/completed/failed/rejected counters,
// job latency histogram).
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
)

// Status is the lifecycle state of a job.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusCanceled  Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCanceled
}

// Runner is the work a job performs. It must honor ctx (per-job
// deadline, explicit cancel, queue shutdown) and may report progress
// (monotone done out of total) for streaming consumers.
type Runner func(ctx context.Context, progress func(done, total int)) (any, error)

// Job is one unit of queued work. All accessors are safe for
// concurrent use.
type Job struct {
	ID string

	run    Runner
	ctx    context.Context // derived from the queue base at Submit
	cancel context.CancelFunc
	done   chan struct{}

	trace    *trace.Trace // per-job trace (nil when the queue has no tracer)
	waitSpan *trace.Span  // queue.wait span, Submit → worker pickup

	mu        sync.Mutex
	status    Status
	result    any
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	queueWait time.Duration
	changed   chan struct{} // closed and replaced on every observable change

	progDone, progTotal atomic.Int64
}

// Info is a point-in-time snapshot of a job, shaped for JSON.
type Info struct {
	ID        string    `json:"id"`
	Status    Status    `json:"status"`
	Error     string    `json:"error,omitempty"`
	Done      int64     `json:"progress_done"`
	Total     int64     `json:"progress_total"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// QueueWaitSeconds is Submit → worker-pickup latency, 0 until the
	// job leaves the queue.
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := Info{
		ID:               j.ID,
		Status:           j.status,
		Done:             j.progDone.Load(),
		Total:            j.progTotal.Load(),
		Submitted:        j.submitted,
		Started:          j.started,
		Finished:         j.finished,
		QueueWaitSeconds: j.queueWait.Seconds(),
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// Done closes when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Changed returns a channel closed at the job's next observable change
// (status transition or progress update). Streaming consumers wait on
// it instead of polling: subscribe with Changed() BEFORE reading
// Snapshot(), then block — any change between the two closes the
// returned channel, so no update can be missed.
func (j *Job) Changed() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.changed
}

// notifyLocked wakes every Changed() waiter. Caller holds j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// Trace returns the job's trace (nil when tracing is disabled).
func (j *Job) Trace() *trace.Trace { return j.trace }

// Result returns the job's outcome; valid only after Done() closes.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Queue errors.
var (
	// ErrQueueFull: the bounded FIFO is at capacity; the caller should
	// shed load (the server maps this to 503).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed: the queue is draining or closed and accepts no work.
	ErrClosed = errors.New("jobs: queue closed")
)

// Queue is a bounded FIFO drained by a fixed worker pool.
type Queue struct {
	ch      chan *Job
	timeout time.Duration
	base    context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	depth                                  *telemetry.Gauge
	running                                *telemetry.Gauge
	submitted, completed, failed, rejected *telemetry.Counter
	canceled                               *telemetry.Counter
	jobSeconds                             *telemetry.Histogram
	waitSeconds                            *telemetry.Histogram

	tracer *trace.Recorder
}

// NewQueue starts workers goroutines draining a FIFO of at most
// capacity queued jobs. jobTimeout > 0 bounds each job's run time.
func NewQueue(workers, capacity int, jobTimeout time.Duration, m *telemetry.Registry) (*Queue, error) {
	if workers <= 0 || capacity <= 0 {
		return nil, fmt.Errorf("jobs: need workers > 0 and capacity > 0 (got %d, %d)", workers, capacity)
	}
	base, cancel := context.WithCancel(context.Background())
	q := &Queue{
		ch:         make(chan *Job, capacity),
		timeout:    jobTimeout,
		base:       base,
		cancel:     cancel,
		jobs:       map[string]*Job{},
		depth:      m.Gauge("queue.depth"),
		running:    m.Gauge("queue.running"),
		submitted:  m.Counter("queue.jobs_submitted"),
		completed:  m.Counter("queue.jobs_completed"),
		failed:     m.Counter("queue.jobs_failed"),
		rejected:   m.Counter("queue.jobs_rejected"),
		canceled:   m.Counter("queue.jobs_canceled"),
		jobSeconds: m.Histogram("queue.job_seconds"),
		// Queue wait is routinely sub-millisecond on an idle service, so
		// its buckets start two decades below the job-latency ones.
		waitSeconds: m.HistogramBuckets("queue.wait_seconds", telemetry.ExpBuckets(1e-5, 4, 16)),
	}
	for w := 0; w < workers; w++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q, nil
}

// SetTracer attaches a trace recorder: every job submitted afterwards
// gets a trace (ID = job ID) with a queue.wait span covering Submit →
// worker pickup and a job.run span wrapping the runner, propagated to
// the runner through its context. Call before serving traffic; a nil
// recorder disables tracing.
func (q *Queue) SetTracer(rec *trace.Recorder) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tracer = rec
}

// newID returns a random 128-bit hex job ID.
func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Submit enqueues run, returning ErrQueueFull when the FIFO is at
// capacity and ErrClosed after Drain has begun.
func (q *Queue) Submit(run Runner) (*Job, error) {
	j := &Job{ID: newID(), run: run, status: StatusQueued, submitted: time.Now(),
		done: make(chan struct{}), changed: make(chan struct{})}
	j.ctx, j.cancel = context.WithCancel(q.base)

	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		j.cancel()
		q.rejected.Inc()
		return nil, ErrClosed
	}
	// The trace must exist before the job is visible to a worker: runJob
	// reads j.trace/j.waitSpan without locking, relying on the channel
	// send as the happens-before edge.
	tracer := q.tracer
	if tracer != nil {
		j.trace = tracer.New(j.ID)
		j.waitSpan = j.trace.Root().StartChild("queue.wait")
	}
	select {
	case q.ch <- j:
		q.jobs[j.ID] = j
		q.mu.Unlock()
	default:
		q.mu.Unlock()
		tracer.Remove(j.ID)
		j.cancel()
		q.rejected.Inc()
		return nil, ErrQueueFull
	}
	q.submitted.Inc()
	q.depth.Set(float64(len(q.ch)))
	return j, nil
}

// Get returns the job with the given ID.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Cancel cancels a queued or running job: the job's context expires,
// which a running Runner observes directly and the worker translates
// into StatusCanceled when it reaches (or finishes) the job.
func (q *Queue) Cancel(id string) bool {
	j, ok := q.Get(id)
	if !ok {
		return false
	}
	j.cancel()
	return true
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.ch {
		q.depth.Set(float64(len(q.ch)))
		q.runJob(j)
	}
}

func (q *Queue) runJob(j *Job) {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.queueWait = j.started.Sub(j.submitted)
	j.notifyLocked()
	j.mu.Unlock()
	q.waitSeconds.Observe(j.queueWait.Seconds())
	j.waitSpan.End()
	q.running.Add(1)
	defer q.running.Add(-1)

	ctx := j.ctx
	if q.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.timeout)
		defer cancel()
	}
	if j.trace != nil {
		ctx = trace.ContextWithSpan(ctx, j.trace.Root())
	}
	runCtx, runSpan := trace.StartSpan(ctx, "job.run")
	progress := func(done, total int) {
		j.progDone.Store(int64(done))
		j.progTotal.Store(int64(total))
		j.mu.Lock()
		j.notifyLocked()
		j.mu.Unlock()
	}
	v, err := runRecovered(runCtx, j.run, progress)
	runSpan.End()

	j.mu.Lock()
	j.finished = time.Now()
	j.result, j.err = v, err
	switch {
	case err == nil:
		j.status = StatusSucceeded
		q.completed.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		resilience.Classify(err) == resilience.KindCanceled:
		j.status = StatusCanceled
		q.canceled.Inc()
	default:
		j.status = StatusFailed
		q.failed.Inc()
	}
	elapsed := j.finished.Sub(j.started)
	status := j.status
	close(j.done)
	j.notifyLocked()
	j.mu.Unlock()
	if j.trace != nil {
		j.trace.Root().SetAttr("status", string(status))
		j.trace.Finish()
	}
	q.jobSeconds.Observe(elapsed.Seconds())
}

// runRecovered invokes the runner with panic recovery, so one bad job
// cannot take down a worker (and with it the daemon).
func runRecovered(ctx context.Context, run Runner, progress func(int, int)) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = resilience.Errorf(resilience.KindPanic, "jobs.run",
				"job panicked: %v\n%s", p, debug.Stack())
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return run(ctx, progress)
}

// Drain gracefully shuts the queue down: new submissions are rejected,
// queued and running jobs are given until ctx expires to finish, then
// every remaining job is cancelled and the workers are joined. Drain
// returns nil when all work finished before the deadline.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	close(q.ch)
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Deadline: cancel everything still in flight and wait for the
		// workers to notice.
		q.cancel()
		<-done
		return ctx.Err()
	}
}
