// Package jobs is the execution tier of roughsimd: a bounded FIFO queue
// drained by a fixed pool of workers, with per-job context deadlines,
// explicit cancellation, progress reporting for streaming endpoints,
// and graceful drain on shutdown (stop intake, finish what is running,
// escalate to cancellation only when the drain deadline expires).
//
// It deliberately reuses the repository's resilience conventions: job
// failures are classified through resilience.Classify, worker panics
// are recovered into classified errors instead of killing the daemon,
// and every state transition is observable through telemetry (queue
// depth, running gauge, submitted/completed/failed/rejected counters,
// job latency histogram).
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
)

// Status is the lifecycle state of a job.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusCanceled  Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCanceled
}

// Runner is the work a job performs. It must honor ctx (per-job
// deadline, explicit cancel, queue shutdown) and may report progress
// (monotone done out of total) for streaming consumers.
type Runner func(ctx context.Context, progress func(done, total int)) (any, error)

// Job is one unit of queued work. All accessors are safe for
// concurrent use.
type Job struct {
	ID string

	run         Runner
	ctx         context.Context // derived from the queue base at Submit
	cancel      context.CancelFunc
	done        chan struct{}
	maxAttempts int
	backoff     resilience.Backoff
	idHash      uint64 // decorrelates backoff jitter across jobs

	trace    *trace.Trace // per-job trace (nil when the queue has no tracer)
	waitSpan *trace.Span  // queue.wait span, Submit → worker pickup

	mu           sync.Mutex
	status       Status
	result       any
	err          error
	submitted    time.Time
	started      time.Time
	finished     time.Time
	queueWait    time.Duration
	attempt      int           // attempts started so far (lease accounting)
	waitingRetry bool          // parked on a backoff timer, not in the channel
	retryTimer   *time.Timer   // the parked timer (drain stops it)
	changed      chan struct{} // closed and replaced on every observable change

	progDone, progTotal atomic.Int64
}

// Attempt returns how many times a worker has started this job.
func (j *Job) Attempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempt
}

// Info is a point-in-time snapshot of a job, shaped for JSON.
type Info struct {
	ID        string    `json:"id"`
	Status    Status    `json:"status"`
	Error     string    `json:"error,omitempty"`
	Done      int64     `json:"progress_done"`
	Total     int64     `json:"progress_total"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Attempt counts worker pickups; > 1 means the job was retried
	// after a transient failure (or resumed from a journal replay).
	Attempt     int `json:"attempt,omitempty"`
	MaxAttempts int `json:"max_attempts,omitempty"`
	// QueueWaitSeconds is Submit → worker-pickup latency, 0 until the
	// job leaves the queue.
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := Info{
		ID:               j.ID,
		Status:           j.status,
		Done:             j.progDone.Load(),
		Total:            j.progTotal.Load(),
		Submitted:        j.submitted,
		Started:          j.started,
		Finished:         j.finished,
		Attempt:          j.attempt,
		MaxAttempts:      j.maxAttempts,
		QueueWaitSeconds: j.queueWait.Seconds(),
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// Done closes when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Changed returns a channel closed at the job's next observable change
// (status transition or progress update). Streaming consumers wait on
// it instead of polling: subscribe with Changed() BEFORE reading
// Snapshot(), then block — any change between the two closes the
// returned channel, so no update can be missed.
func (j *Job) Changed() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.changed
}

// notifyLocked wakes every Changed() waiter. Caller holds j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// Trace returns the job's trace (nil when tracing is disabled).
func (j *Job) Trace() *trace.Trace { return j.trace }

// Result returns the job's outcome; valid only after Done() closes.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Queue errors.
var (
	// ErrQueueFull: the bounded FIFO is at capacity; the caller should
	// shed load (the server maps this to 503).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed: the queue is draining or closed and accepts no work.
	ErrClosed = errors.New("jobs: queue closed")
)

// Queue is a bounded FIFO drained by a fixed worker pool.
type Queue struct {
	ch      chan *Job
	timeout time.Duration
	base    context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	closed   bool
	observer func(*Job)

	depth                                  *telemetry.Gauge
	running                                *telemetry.Gauge
	submitted, completed, failed, rejected *telemetry.Counter
	canceled, retried, dropped             *telemetry.Counter
	jobSeconds                             *telemetry.Histogram
	waitSeconds                            *telemetry.Histogram

	tracer *trace.Recorder
}

// NewQueue starts workers goroutines draining a FIFO of at most
// capacity queued jobs. jobTimeout > 0 bounds each job's run time.
func NewQueue(workers, capacity int, jobTimeout time.Duration, m *telemetry.Registry) (*Queue, error) {
	if workers <= 0 || capacity <= 0 {
		return nil, fmt.Errorf("jobs: need workers > 0 and capacity > 0 (got %d, %d)", workers, capacity)
	}
	base, cancel := context.WithCancel(context.Background())
	q := &Queue{
		ch:         make(chan *Job, capacity),
		timeout:    jobTimeout,
		base:       base,
		cancel:     cancel,
		jobs:       map[string]*Job{},
		depth:      m.Gauge("queue.depth"),
		running:    m.Gauge("queue.running"),
		submitted:  m.Counter("queue.jobs_submitted"),
		completed:  m.Counter("queue.jobs_completed"),
		failed:     m.Counter("queue.jobs_failed"),
		rejected:   m.Counter("queue.jobs_rejected"),
		canceled:   m.Counter("queue.jobs_canceled"),
		retried:    m.Counter("queue.jobs_retried"),
		dropped:    m.Counter("jobs.dropped_at_shutdown"),
		jobSeconds: m.Histogram("queue.job_seconds"),
		// Queue wait is routinely sub-millisecond on an idle service, so
		// its buckets start two decades below the job-latency ones.
		waitSeconds: m.HistogramBuckets("queue.wait_seconds", telemetry.ExpBuckets(1e-5, 4, 16)),
	}
	for w := 0; w < workers; w++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q, nil
}

// SetTracer attaches a trace recorder: every job submitted afterwards
// gets a trace (ID = job ID) with a queue.wait span covering Submit →
// worker pickup and a job.run span wrapping the runner, propagated to
// the runner through its context. Call before serving traffic; a nil
// recorder disables tracing.
func (q *Queue) SetTracer(rec *trace.Recorder) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tracer = rec
}

// SetObserver registers fn to be called once per job, at the moment it
// reaches a terminal status (after the status is visible through
// Snapshot, outside the job's lock). The service tier uses it to funnel
// every outcome into one place: journal terminal records, checkpoint
// cleanup, circuit-breaker accounting. Call before serving traffic.
func (q *Queue) SetObserver(fn func(*Job)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.observer = fn
}

// Depth returns the number of queued (not yet picked up) jobs.
func (q *Queue) Depth() int { return len(q.ch) }

// Cap returns the queue's capacity.
func (q *Queue) Cap() int { return cap(q.ch) }

// Draining reports whether Drain has begun — terminal states reached
// after this point may be shutdown artifacts rather than real
// outcomes, which the journal must not record as terminal.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// NewID returns a fresh random job ID in the queue's format. The
// service tier pre-allocates IDs so a job can be journaled durably
// before it becomes visible in the queue.
func NewID() string { return newID() }

// newID returns a random 128-bit hex job ID.
func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// idHash folds a job ID into the 64-bit jitter key (FNV-1a).
func idHash(id string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// SubmitOptions extends Submit with lease/attempt accounting and
// journal-replay identity. The zero value reproduces plain Submit.
type SubmitOptions struct {
	// ID fixes the job ID instead of generating one — journal replay
	// resubmits a crashed job under its original ID so client-held
	// status URLs survive the restart. Duplicate IDs are rejected.
	ID string
	// Attempt seeds the attempt counter with work already spent before
	// this submission (prior attempts from a replayed journal).
	Attempt int
	// MaxAttempts bounds total attempts (default 1: no retry). A job
	// failing with a retryable kind (resilience.Retryable) below the
	// bound is re-enqueued after the Backoff delay; permanent failures
	// (invalid input, singular systems, cancellation) terminalize
	// immediately regardless of remaining budget.
	MaxAttempts int
	// Backoff schedules the delay between attempts (zero: immediate).
	Backoff resilience.Backoff
}

// Submit enqueues run, returning ErrQueueFull when the FIFO is at
// capacity and ErrClosed after Drain has begun.
func (q *Queue) Submit(run Runner) (*Job, error) {
	return q.SubmitOpts(run, SubmitOptions{})
}

// SubmitOpts enqueues run with explicit lease/retry options.
func (q *Queue) SubmitOpts(run Runner, opt SubmitOptions) (*Job, error) {
	id := opt.ID
	if id == "" {
		id = newID()
	}
	maxAttempts := opt.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	// A replayed job arrives with its budget partly spent; always leave
	// at least one attempt, or a crash loop could strand work as
	// permanently queued-but-unrunnable.
	if opt.Attempt >= maxAttempts {
		maxAttempts = opt.Attempt + 1
	}
	j := &Job{ID: id, run: run, status: StatusQueued, submitted: time.Now(),
		attempt: opt.Attempt, maxAttempts: maxAttempts, backoff: opt.Backoff,
		idHash: idHash(id),
		done:   make(chan struct{}), changed: make(chan struct{})}
	j.ctx, j.cancel = context.WithCancel(q.base)

	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		j.cancel()
		q.rejected.Inc()
		return nil, ErrClosed
	}
	if _, dup := q.jobs[j.ID]; dup {
		q.mu.Unlock()
		j.cancel()
		return nil, fmt.Errorf("jobs: duplicate job ID %s", j.ID)
	}
	// The trace must exist before the job is visible to a worker: runJob
	// reads j.trace/j.waitSpan without locking, relying on the channel
	// send as the happens-before edge.
	tracer := q.tracer
	if tracer != nil {
		j.trace = tracer.New(j.ID)
		j.waitSpan = j.trace.Root().StartChild("queue.wait")
	}
	select {
	case q.ch <- j:
		q.jobs[j.ID] = j
		q.mu.Unlock()
	default:
		q.mu.Unlock()
		tracer.Remove(j.ID)
		j.cancel()
		q.rejected.Inc()
		return nil, ErrQueueFull
	}
	q.submitted.Inc()
	q.depth.Set(float64(len(q.ch)))
	return j, nil
}

// Get returns the job with the given ID.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Cancel cancels a queued or running job: the job's context expires,
// which a running Runner observes directly and the worker translates
// into StatusCanceled when it reaches (or finishes) the job.
func (q *Queue) Cancel(id string) bool {
	j, ok := q.Get(id)
	if !ok {
		return false
	}
	j.cancel()
	// A job parked on a backoff timer has no worker watching its context;
	// stop the timer and terminalize it here instead of letting the
	// cancellation wait out the backoff.
	j.mu.Lock()
	if j.waitingRetry && j.retryTimer != nil && j.retryTimer.Stop() {
		j.waitingRetry = false
		j.retryTimer = nil
		j.mu.Unlock()
		q.finalize(j, StatusCanceled, nil)
		return true
	}
	j.mu.Unlock()
	return true
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.ch {
		q.depth.Set(float64(len(q.ch)))
		q.runJob(j)
	}
}

// Meta identifies the job execution a Runner invocation belongs to. The
// queue attaches it to every runner context so the service tier can tag
// journal records and checkpoints with the job that produced them.
type Meta struct {
	JobID   string
	Attempt int // 1-based pickup count, > 1 on a retry or replay
}

type metaKey struct{}

// MetaFrom extracts the job meta from a runner context; ok is false
// when ctx did not come from a queue worker.
func MetaFrom(ctx context.Context) (Meta, bool) {
	m, ok := ctx.Value(metaKey{}).(Meta)
	return m, ok
}

func (q *Queue) runJob(j *Job) {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.attempt++
	attempt := j.attempt
	firstPickup := j.queueWait == 0
	if firstPickup {
		j.queueWait = j.started.Sub(j.submitted)
	}
	wait := j.queueWait
	j.notifyLocked()
	j.mu.Unlock()
	if firstPickup {
		q.waitSeconds.Observe(wait.Seconds())
		j.waitSpan.End()
		j.waitSpan = nil
	}
	q.running.Add(1)
	defer q.running.Add(-1)

	ctx := j.ctx
	if q.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.timeout)
		defer cancel()
	}
	ctx = context.WithValue(ctx, metaKey{}, Meta{JobID: j.ID, Attempt: attempt})
	if j.trace != nil {
		ctx = trace.ContextWithSpan(ctx, j.trace.Root())
	}
	runCtx, runSpan := trace.StartSpan(ctx, "job.run")
	progress := func(done, total int) {
		j.progDone.Store(int64(done))
		j.progTotal.Store(int64(total))
		j.mu.Lock()
		j.notifyLocked()
		j.mu.Unlock()
	}
	v, err := runRecovered(runCtx, j.run, progress)
	runSpan.End()

	kind := resilience.Classify(err)
	canceled := err != nil && (errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) || kind == resilience.KindCanceled)

	if err != nil && !canceled && resilience.Retryable(kind) && attempt < j.maxAttempts {
		// Transient failure with attempt budget left: park the job on a
		// backoff timer instead of terminalizing. q.mu (taken first, never
		// inside j.mu) makes the park atomic with respect to Drain, so a
		// parked timer is either stopped by Drain's sweep or fires into a
		// requeue that sees the closed queue.
		q.mu.Lock()
		if !q.closed {
			j.mu.Lock()
			j.err = err
			j.status = StatusQueued
			j.waitingRetry = true
			j.retryTimer = time.AfterFunc(j.backoff.Delay(attempt, j.idHash),
				func() { q.requeue(j) })
			j.notifyLocked()
			j.mu.Unlock()
			q.mu.Unlock()
			q.retried.Inc()
			return
		}
		q.mu.Unlock()
		// Draining: abandon the retry without a terminal transition. No
		// terminal journal record is written, so a restart replays the
		// job; jobs.dropped_at_shutdown accounts for the abandoned work.
		j.mu.Lock()
		j.err = err
		j.status = StatusQueued
		j.notifyLocked()
		j.mu.Unlock()
		q.dropped.Inc()
		return
	}

	j.mu.Lock()
	j.finished = time.Now()
	j.result, j.err = v, err
	switch {
	case err == nil:
		j.status = StatusSucceeded
		q.completed.Inc()
	case canceled:
		j.status = StatusCanceled
		q.canceled.Inc()
	default:
		j.status = StatusFailed
		q.failed.Inc()
	}
	elapsed := j.finished.Sub(j.started)
	status := j.status
	close(j.done)
	j.notifyLocked()
	j.mu.Unlock()
	if j.trace != nil {
		j.trace.Root().SetAttr("status", string(status))
		j.trace.Finish()
	}
	q.jobSeconds.Observe(elapsed.Seconds())
	q.notifyObserver(j)
}

// requeue returns a backoff-parked job to the FIFO when its retry timer
// fires.
func (q *Queue) requeue(j *Job) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		// Queue drained while the job was parked: abandon it non-terminal
		// (see the drain comment in runJob).
		j.mu.Lock()
		stillParked := j.waitingRetry
		j.waitingRetry = false
		j.notifyLocked()
		j.mu.Unlock()
		if stillParked {
			q.dropped.Inc()
		}
		return
	}
	select {
	case q.ch <- j:
		q.mu.Unlock()
		j.mu.Lock()
		j.waitingRetry = false
		j.retryTimer = nil
		j.notifyLocked()
		j.mu.Unlock()
		q.depth.Set(float64(len(q.ch)))
	default:
		// No capacity left for the retry: fail the job with the error the
		// park preserved rather than wait unboundedly for a slot.
		q.mu.Unlock()
		j.mu.Lock()
		j.waitingRetry = false
		j.retryTimer = nil
		j.mu.Unlock()
		q.finalize(j, StatusFailed, nil)
	}
}

// finalize moves a non-running job to a terminal status from outside a
// worker (retry-requeue overflow, cancel-while-parked). err == nil
// keeps the job's last recorded error.
func (q *Queue) finalize(j *Job, status Status, err error) {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.finished = time.Now()
	if err != nil {
		j.err = err
	}
	j.status = status
	switch status {
	case StatusSucceeded:
		q.completed.Inc()
	case StatusCanceled:
		q.canceled.Inc()
	default:
		q.failed.Inc()
	}
	close(j.done)
	j.notifyLocked()
	j.mu.Unlock()
	if j.trace != nil {
		j.trace.Root().SetAttr("status", string(status))
		j.trace.Finish()
	}
	q.notifyObserver(j)
}

func (q *Queue) notifyObserver(j *Job) {
	q.mu.Lock()
	fn := q.observer
	q.mu.Unlock()
	if fn != nil {
		fn(j)
	}
}

// runRecovered invokes the runner with panic recovery, so one bad job
// cannot take down a worker (and with it the daemon).
func runRecovered(ctx context.Context, run Runner, progress func(int, int)) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = resilience.Errorf(resilience.KindPanic, "jobs.run",
				"job panicked: %v\n%s", p, debug.Stack())
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return run(ctx, progress)
}

// Drain gracefully shuts the queue down: new submissions are rejected,
// queued and running jobs are given until ctx expires to finish, then
// every remaining job is cancelled and the workers are joined. Jobs
// parked on retry-backoff timers are abandoned without a terminal
// transition — no terminal journal record is written for them, so a
// restart against the same journal replays them; the abandoned count is
// exposed as jobs.dropped_at_shutdown. Drain returns nil when all
// accepted work finished (or was so abandoned) before the deadline.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	close(q.ch)
	q.mu.Unlock()
	// First sweep now, so hour-long backoff timers cannot hold the drain
	// hostage; second sweep after the workers join, catching jobs parked
	// while the drain was in progress.
	q.dropRetryWaiters()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		q.dropRetryWaiters()
		return nil
	case <-ctx.Done():
		// Deadline: cancel everything still in flight and wait for the
		// workers to notice.
		q.cancel()
		<-done
		q.dropRetryWaiters()
		return ctx.Err()
	}
}

// dropRetryWaiters stops every pending retry timer and counts the
// parked jobs as dropped. A timer that already fired is counted by
// requeue's closed-queue path instead, never by both (waitingRetry is
// cleared under the job lock by whichever side wins).
func (q *Queue) dropRetryWaiters() {
	q.mu.Lock()
	parked := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		parked = append(parked, j)
	}
	q.mu.Unlock()
	for _, j := range parked {
		j.mu.Lock()
		if j.waitingRetry && j.retryTimer != nil && j.retryTimer.Stop() {
			j.waitingRetry = false
			j.retryTimer = nil
			q.dropped.Inc()
		}
		j.mu.Unlock()
	}
}
