// Package rng provides a small deterministic random number generator for
// reproducible surface realizations and Monte-Carlo runs.
//
// It implements PCG-XSH-RR 64/32 (O'Neill 2014) with an explicit state,
// so two streams with the same seed produce identical sequences on every
// platform and Go release — a property math/rand's default source does
// not guarantee across versions. Gaussian variates use the polar
// Box–Muller transform.
package rng

import "math"

// Source is a deterministic PCG32 stream.
type Source struct {
	state uint64
	inc   uint64
	// Cached second Box–Muller variate.
	gauss   float64
	hasGaus bool
}

// New returns a Source seeded from seed with the default stream.
func New(seed uint64) *Source {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a Source with an explicit stream selector, allowing
// independent parallel streams from one logical seed.
func NewStream(seed, stream uint64) *Source {
	s := &Source{inc: (stream << 1) | 1}
	s.state = 0
	s.next()
	s.state += seed
	s.next()
	return s
}

func (s *Source) next() uint32 {
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	hi := uint64(s.next())
	lo := uint64(s.next())
	return hi<<32 | lo
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// NormFloat64 returns a standard normal variate via polar Box–Muller.
func (s *Source) NormFloat64() float64 {
	if s.hasGaus {
		s.hasGaus = false
		return s.gauss
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		r2 := u*u + v*v
		if r2 >= 1 || r2 == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(r2) / r2)
		s.gauss = v * f
		s.hasGaus = true
		return u * f
	}
}

// NormVec fills a fresh slice of length n with iid standard normals.
func (s *Source) NormVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = s.NormFloat64()
	}
	return v
}
