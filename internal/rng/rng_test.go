package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(42, 1)
	b := NewStream(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams collide: %d/1000 equal outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	s := New(8)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	varc := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean %g, want 0.5", mean)
	}
	if math.Abs(varc-1.0/12) > 0.003 {
		t.Errorf("uniform variance %g, want %g", varc, 1.0/12)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(9)
	const n = 300000
	var sum, sum2, sum3, sum4 float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
		sum3 += v * v * v
		sum4 += v * v * v * v
	}
	mean := sum / n
	varc := sum2/n - mean*mean
	skew := sum3 / n
	kurt := sum4 / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %g", mean)
	}
	if math.Abs(varc-1) > 0.02 {
		t.Errorf("normal variance %g", varc)
	}
	if math.Abs(skew) > 0.03 {
		t.Errorf("normal skewness %g", skew)
	}
	if math.Abs(kurt-3) > 0.1 {
		t.Errorf("normal kurtosis %g, want 3", kurt)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(10)
	const n = 120000
	const k = 12
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[s.Intn(k)]++
	}
	want := float64(n) / k
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d count %d deviates from %g", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormVec(t *testing.T) {
	s := New(11)
	v := s.NormVec(1000)
	if len(v) != 1000 {
		t.Fatal("NormVec length")
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum/1000) > 0.15 {
		t.Errorf("NormVec mean %g too far from 0", sum/1000)
	}
}
