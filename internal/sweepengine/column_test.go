package sweepengine

import (
	"context"
	"sync"
	"testing"

	"roughsim/internal/resilience"
	"roughsim/internal/units"
)

// memCkpt is an in-memory Checkpoint recording every saved column.
type memCkpt struct {
	mu   sync.Mutex
	cols map[int][]float64
}

func newMemCkpt() *memCkpt { return &memCkpt{cols: map[int][]float64{}} }

func (c *memCkpt) Load(node int) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	col, ok := c.cols[node]
	return col, ok
}

func (c *memCkpt) Save(node int, col []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cols[node] = append([]float64(nil), col...)
}

// TestColumnMatchesRunExactPath: on the exact path, every column
// computed in isolation must be bitwise identical to the column Run
// checkpoints for the same node — that identity is what lets a remote
// worker stand in for a local engine worker.
func TestColumnMatchesRunExactPath(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	eng, _ := testEngine(t)
	freqs := []float64{4 * units.GHz, 5 * units.GHz}

	plan, err := eng.PlanColumns(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Interp {
		t.Fatal("short sweep planned the interpolated path")
	}
	if len(plan.Nodes) == 0 {
		t.Fatal("no non-flat nodes planned")
	}

	ck := newMemCkpt()
	eng.Checkpoint = ck
	res, err := eng.Run(context.Background(), freqs)
	if err != nil {
		t.Fatal(err)
	}
	eng.Checkpoint = nil

	if _, ok := ck.cols[FlatRefNode]; ok {
		t.Fatal("exact path checkpointed a flat-reference vector")
	}
	for _, node := range plan.Nodes {
		want, ok := ck.cols[node]
		if !ok {
			t.Fatalf("Run never checkpointed planned node %d", node)
		}
		got, err := eng.Column(context.Background(), freqs, node, nil)
		if err != nil {
			t.Fatalf("Column(%d): %v", node, err)
		}
		if len(got) != len(want) {
			t.Fatalf("node %d: column length %d vs %d", node, len(got), len(want))
		}
		for fi := range got {
			if got[fi] != want[fi] {
				t.Fatalf("node %d f[%d]: Column %v != Run checkpoint %v (not bitwise)",
					node, fi, got[fi], want[fi])
			}
		}
	}

	// Round-trip: a fresh run fed only Column outputs through the
	// checkpoint must reproduce Run's result bitwise without solving.
	fed := newMemCkpt()
	for _, node := range plan.Nodes {
		col, err := eng.Column(context.Background(), freqs, node, nil)
		if err != nil {
			t.Fatal(err)
		}
		fed.Save(node, col)
	}
	eng.Checkpoint = fed
	res2, err := eng.Run(context.Background(), freqs)
	if err != nil {
		t.Fatal(err)
	}
	for fi := range freqs {
		if res2.Mean[fi] != res.Mean[fi] {
			t.Fatalf("f[%d]: resumed-from-columns mean %v != direct %v", fi, res2.Mean[fi], res.Mean[fi])
		}
	}
}

// TestColumnMatchesRunInterpPath: same bitwise identity on the
// anchor-interpolated path, including the flat-reference unit every
// node column divides by.
func TestColumnMatchesRunInterpPath(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	eng, _ := testEngine(t)
	eng.Anchors = 5
	freqs := make([]float64, 8)
	for i := range freqs {
		freqs[i] = (4 + 2*float64(i)/7) * units.GHz
	}

	plan, err := eng.PlanColumns(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Interp || plan.Anchors != 5 {
		t.Fatalf("plan = %+v, want interpolated with 5 anchors", plan)
	}

	ck := newMemCkpt()
	eng.Checkpoint = ck
	if _, err := eng.Run(context.Background(), freqs); err != nil {
		t.Fatal(err)
	}
	eng.Checkpoint = nil

	wantPs, ok := ck.cols[FlatRefNode]
	if !ok {
		t.Fatal("interpolated run never checkpointed the flat reference")
	}
	ps, err := eng.Column(context.Background(), freqs, FlatRefNode, nil)
	if err != nil {
		t.Fatal(err)
	}
	for fi := range ps {
		if ps[fi] != wantPs[fi] {
			t.Fatalf("flat ref f[%d]: %v != %v (not bitwise)", fi, ps[fi], wantPs[fi])
		}
	}
	for _, node := range plan.Nodes {
		want, ok := ck.cols[node]
		if !ok {
			t.Fatalf("Run never checkpointed planned node %d", node)
		}
		got, err := eng.Column(context.Background(), freqs, node, ps)
		if err != nil {
			t.Fatalf("Column(%d): %v", node, err)
		}
		for fi := range got {
			if got[fi] != want[fi] {
				t.Fatalf("node %d f[%d]: Column %v != Run checkpoint %v (not bitwise)",
					node, fi, got[fi], want[fi])
			}
		}
	}
}

func TestColumnValidation(t *testing.T) {
	eng, _ := testEngine(t)
	shortFreqs := []float64{4 * units.GHz, 5 * units.GHz}
	// Flat reference on the exact path is meaningless.
	if _, err := eng.Column(context.Background(), shortFreqs, FlatRefNode, nil); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("flat ref on exact path: %v", err)
	}
	if _, err := eng.Column(context.Background(), shortFreqs, 1<<20, nil); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("node out of range: %v", err)
	}
	if _, err := eng.Column(context.Background(), nil, 0, nil); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("empty freqs: %v", err)
	}
	if _, err := (&Engine{}).PlanColumns([]float64{1e9}); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("missing solver: %v", err)
	}

	// Interpolated node column without its flat reference.
	eng.Anchors = 3
	freqs := make([]float64, 8)
	for i := range freqs {
		freqs[i] = (4 + 2*float64(i)/7) * units.GHz
	}
	plan, err := eng.PlanColumns(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Interp || len(plan.Nodes) == 0 {
		t.Fatalf("plan = %+v, want interpolated with nodes", plan)
	}
	if _, err := eng.Column(context.Background(), freqs, plan.Nodes[0], nil); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("interp column without ps: %v", err)
	}
}
