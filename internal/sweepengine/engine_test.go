package sweepengine

import (
	"context"
	"errors"
	"math"
	"testing"

	"roughsim/internal/core"
	"roughsim/internal/mom"
	"roughsim/internal/resilience"
	"roughsim/internal/sscm"
	"roughsim/internal/surface"
	"roughsim/internal/units"
)

const um = 1e-6

// testEngine builds a small tabulated solver and KL process matching
// the service tier's tiny test config (σ=0.4 μm, η=1 μm, 8×8 grid,
// d=2).
func testEngine(t *testing.T) (*Engine, *surface.KL) {
	t.Helper()
	sigma := 0.4 * um
	c := surface.NewGaussianCorr(sigma, 1*um)
	L := 5 * um
	M := 8
	kl := surface.NewKL(c, L, M)
	solver, err := core.NewSolverTabulated(core.PaperMaterial(), L, M, 14*sigma, mom.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &Engine{Solver: solver, Synth: kl.Synthesize, Dim: 2}, kl
}

// TestExactModeMatchesPointAtATime: a short sweep (fewer frequencies
// than anchors) takes the exact per-frequency path, which must be
// bitwise identical to evaluating the collocation by hand through an
// independent solver.
func TestExactModeMatchesPointAtATime(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	eng, kl := testEngine(t)
	freqs := []float64{4 * units.GHz, 5 * units.GHz}
	res, err := eng.Run(context.Background(), freqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnchorsUsed != 0 {
		t.Fatalf("short sweep used %d anchors, want exact path", res.AnchorsUsed)
	}

	base, err := core.NewSolverTabulated(core.PaperMaterial(), eng.Solver.L, eng.Solver.M, eng.Solver.ZSpan, mom.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range freqs {
		want, err := sscm.Run(context.Background(), eng.Dim, 1, func(xi []float64) (float64, error) {
			return base.LossFactor(kl.Synthesize(xi), f)
		}, sscm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Mean[fi] != want.PCE.Mean() {
			t.Fatalf("f=%g: batched mean %v != point-at-a-time %v",
				f, res.Mean[fi], want.PCE.Mean())
		}
	}
}

// TestInterpMatchesExact: the anchor-interpolated broadband path must
// agree with the exact path to well within the solver tolerance regime
// across the whole band.
func TestInterpMatchesExact(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	eng, _ := testEngine(t)
	freqs := make([]float64, 8)
	for i := range freqs {
		freqs[i] = (4 + 2*float64(i)/7) * units.GHz
	}

	eng.Anchors = len(freqs) // ≥ len(freqs) → exact path
	exact, err := eng.Run(context.Background(), freqs)
	if err != nil {
		t.Fatal(err)
	}
	if exact.AnchorsUsed != 0 {
		t.Fatal("forced exact run still interpolated")
	}

	eng.Anchors = 5
	interp, err := eng.Run(context.Background(), freqs)
	if err != nil {
		t.Fatal(err)
	}
	if interp.AnchorsUsed != 5 {
		t.Fatalf("anchors used = %d, want 5", interp.AnchorsUsed)
	}
	for fi, f := range freqs {
		ke, ki := exact.Mean[fi], interp.Mean[fi]
		if ke <= 1 {
			t.Fatalf("f=%g: exact K = %g, want > 1", f, ke)
		}
		if d := math.Abs(ki-ke) / ke; d > 5e-4 {
			t.Fatalf("f=%g: interp K %v vs exact %v (rel %g)", f, ki, ke, d)
		}
	}
}

// TestRunCancelled: a pre-cancelled context must stop the sweep with
// ctx's error.
func TestRunCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	eng, _ := testEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, []float64{4 * units.GHz, 5 * units.GHz}); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	eng, _ := testEngine(t)
	if _, err := eng.Run(context.Background(), nil); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("empty freqs: %v", err)
	}
	if _, err := (&Engine{}).Run(context.Background(), []float64{1e9}); resilience.Classify(err) != resilience.KindInvalidInput {
		t.Fatalf("missing solver: %v", err)
	}
}

// TestBaryWeights: the barycentric basis must be a partition of unity,
// collapse to a delta at a node, and reproduce polynomials of degree
// n−1 exactly (to round-off).
func TestBaryWeights(t *testing.T) {
	xs := ChebAnchors(6, 2, 3)
	for _, x := range []float64{2.0, 2.31, 2.5, 2.97, 3.0} {
		w := BaryWeights(xs, x)
		var sum float64
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("x=%g: weights sum to %g", x, sum)
		}
		// Reproduce p(t) = t³ − 2t + 1 (degree 3 < 6 nodes).
		p := func(t float64) float64 { return t*t*t - 2*t + 1 }
		var got float64
		for a, v := range w {
			got += v * p(xs[a])
		}
		if math.Abs(got-p(x)) > 1e-10*(1+math.Abs(p(x))) {
			t.Fatalf("x=%g: interp %g vs exact %g", x, got, p(x))
		}
	}
	w := BaryWeights(xs, xs[2])
	for a, v := range w {
		want := 0.0
		if a == 2 {
			want = 1
		}
		if v != want {
			t.Fatalf("coincident node weights %v", w)
		}
	}
}
