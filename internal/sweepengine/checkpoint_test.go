package sweepengine

import (
	"context"
	"sync"
	"testing"

	"roughsim/internal/telemetry"
	"roughsim/internal/units"
)

// mapCheckpoint is an in-memory Checkpoint for engine tests.
type mapCheckpoint struct {
	mu    sync.Mutex
	cols  map[int][]float64
	saves int
	loads int
}

func newMapCheckpoint() *mapCheckpoint {
	return &mapCheckpoint{cols: map[int][]float64{}}
}

func (m *mapCheckpoint) Load(node int) ([]float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.loads++
	col, ok := m.cols[node]
	return col, ok
}

func (m *mapCheckpoint) Save(node int, col []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.saves++
	m.cols[node] = append([]float64(nil), col...)
}

// TestExactSweepCheckpointResume: a second run over a populated
// checkpoint must not solve anything (node_solves == 0) and must
// reproduce the first run's values bit for bit; a partially populated
// checkpoint re-solves exactly the missing nodes.
func TestExactSweepCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	freqs := []float64{4 * units.GHz, 5 * units.GHz}

	eng, _ := testEngine(t)
	m1 := telemetry.NewRegistry()
	eng.Metrics = m1
	ckpt := newMapCheckpoint()
	eng.Checkpoint = ckpt
	res1, err := eng.Run(context.Background(), freqs)
	if err != nil {
		t.Fatal(err)
	}
	if res1.AnchorsUsed != 0 {
		t.Fatalf("short sweep used %d anchors, want exact path", res1.AnchorsUsed)
	}
	nonFlat := len(ckpt.cols)
	if nonFlat == 0 {
		t.Fatal("first run checkpointed nothing")
	}
	if got := m1.Counter("sweep.node_solves").Value(); got != int64(nonFlat) {
		t.Fatalf("node_solves = %d, want %d", got, nonFlat)
	}
	if got := m1.Counter("sweep.checkpoint_saves").Value(); got != int64(nonFlat) {
		t.Fatalf("checkpoint_saves = %d, want %d", got, nonFlat)
	}

	// Full resume: zero solves, bitwise-identical output.
	eng2, _ := testEngine(t)
	m2 := telemetry.NewRegistry()
	eng2.Metrics = m2
	eng2.Checkpoint = ckpt
	res2, err := eng2.Run(context.Background(), freqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Counter("sweep.node_solves").Value(); got != 0 {
		t.Fatalf("resume solved %d nodes, want 0", got)
	}
	if got := m2.Counter("sweep.checkpoint_hits").Value(); got != int64(nonFlat) {
		t.Fatalf("checkpoint_hits = %d, want %d", got, nonFlat)
	}
	for fi := range freqs {
		if res2.Mean[fi] != res1.Mean[fi] {
			t.Fatalf("f[%d]: resumed mean %v != original %v", fi, res2.Mean[fi], res1.Mean[fi])
		}
		for j := range res1.Values[fi] {
			if res2.Values[fi][j] != res1.Values[fi][j] {
				t.Fatalf("vals[%d][%d]: %v != %v", fi, j, res2.Values[fi][j], res1.Values[fi][j])
			}
		}
	}

	// Partial resume: drop one column, exactly one node re-solves.
	var victim int
	for node := range ckpt.cols {
		victim = node
		break
	}
	delete(ckpt.cols, victim)
	eng3, _ := testEngine(t)
	m3 := telemetry.NewRegistry()
	eng3.Metrics = m3
	eng3.Checkpoint = ckpt
	res3, err := eng3.Run(context.Background(), freqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := m3.Counter("sweep.node_solves").Value(); got != 1 {
		t.Fatalf("partial resume solved %d nodes, want 1", got)
	}
	for fi := range freqs {
		if res3.Mean[fi] != res1.Mean[fi] {
			t.Fatalf("partial resume f[%d]: %v != %v", fi, res3.Mean[fi], res1.Mean[fi])
		}
	}
}

// TestCheckpointWrongShapeIgnored: a column whose length does not match
// the sweep's frequency count must be ignored, not served.
func TestCheckpointWrongShapeIgnored(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	freqs := []float64{4 * units.GHz, 5 * units.GHz}
	ckpt := newMapCheckpoint()
	eng, _ := testEngine(t)
	m := telemetry.NewRegistry()
	eng.Metrics = m
	eng.Checkpoint = ckpt
	// Poison every plausible node with a wrong-length column.
	for j := -1; j < 16; j++ {
		ckpt.cols[j] = []float64{1, 2, 3}
	}
	if _, err := eng.Run(context.Background(), freqs); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("sweep.checkpoint_hits").Value(); got != 0 {
		t.Fatalf("wrong-shape columns produced %d hits", got)
	}
	if got := m.Counter("sweep.node_solves").Value(); got == 0 {
		t.Fatal("nothing was solved despite unusable checkpoints")
	}
}
