package sweepengine

// Checkpointing splits a sweep into its natural resumable units — one
// completed K column per collocation node, vals[·][j] over every sweep
// frequency — and persists each as soon as it finishes. A sweep
// restarted after a crash loads the completed columns back and
// re-solves only the nodes that never finished; because the columns are
// the solver's float64 outputs round-tripped losslessly, the resumed
// result is bitwise identical to an uninterrupted run.
//
// The interpolated broadband path has one extra unit with no
// collocation node of its own: the flat-reference absorbed-power vector
// Ps(f) the ratios divide by. It checkpoints under the reserved index
// FlatRefNode.

// FlatRefNode is the Checkpoint node index of the interpolated path's
// flat-reference absorbed-power vector (not a collocation node; exact
// sweeps never use it).
const FlatRefNode = -1

// Checkpoint persists completed per-node sweep columns. Load returns
// the previously saved column for a node (or false); Save persists a
// completed column. Implementations must be safe for concurrent use —
// the exact path saves from whichever worker finishes a node's last
// frequency — and must return columns exactly as saved (the engine
// validates only the length). The engine tolerates a Checkpoint that
// loses writes (it just re-solves); it must never serve a torn one.
type Checkpoint interface {
	Load(node int) ([]float64, bool)
	Save(node int, col []float64)
}

// loadColumn consults the checkpoint for node, insisting on the
// expected length so a checkpoint from a differently shaped sweep can
// never corrupt this one.
func (e *Engine) loadColumn(node, n int) ([]float64, bool) {
	if e.Checkpoint == nil {
		return nil, false
	}
	col, ok := e.Checkpoint.Load(node)
	if !ok || len(col) != n {
		return nil, false
	}
	e.Metrics.Counter("sweep.checkpoint_hits").Inc()
	return col, true
}

// saveColumn persists a completed column for node.
func (e *Engine) saveColumn(node int, col []float64) {
	if e.Checkpoint == nil {
		return
	}
	e.Checkpoint.Save(node, col)
	e.Metrics.Counter("sweep.checkpoint_saves").Inc()
}
