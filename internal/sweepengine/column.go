package sweepengine

import (
	"context"
	"math"

	"roughsim/internal/core"
	"roughsim/internal/resilience"
	"roughsim/internal/sscm"
	"roughsim/internal/surface"
)

// Column-granular execution: a sweep decomposes into independent units —
// one K column per non-flat collocation node, plus (on the interpolated
// path) the flat-reference absorbed-power vector — and each unit can be
// computed in isolation, on any process, from nothing but the sweep
// config and its node index. PlanColumns enumerates the units; Column
// computes one, running exactly the per-unit operations Run performs, so
// a column computed remotely and fed back through the Checkpoint medium
// leaves the final Run bitwise identical to a single-process sweep (the
// operator build is deterministic across worker counts, and checkpoint
// columns are the solver's own float64 outputs).

// ColumnPlan enumerates the independent column units of one sweep.
type ColumnPlan struct {
	// Interp reports whether the sweep takes the anchor-interpolated
	// broadband path; when true the flat-reference vector (FlatRefNode)
	// is an extra unit every node column divides by.
	Interp bool
	// Anchors is the anchor count of the interpolated path (0 when
	// Interp is false).
	Anchors int
	// Nodes lists the non-flat collocation node indices — the units that
	// need a solve. Flat nodes (K ≡ 1) are omitted: they cost nothing.
	Nodes []int
	// NumNodes is the total collocation node count of the sweep,
	// including flat ones.
	NumNodes int
}

// PlanColumns validates the sweep and returns its column decomposition
// without solving anything. The path choice (interpolated vs exact) and
// the flat-node detection are byte-for-byte the ones Run makes, so a
// scheduler can dispatch exactly the units Run would otherwise solve.
func (e *Engine) PlanColumns(freqs []float64) (*ColumnPlan, error) {
	nodes, err := e.columnNodes(freqs)
	if err != nil {
		return nil, err
	}
	plan := &ColumnPlan{NumNodes: len(nodes)}
	for j, xi := range nodes {
		s := e.Synth(xi)
		if maxAbs(s.H) == 0 {
			continue
		}
		if _, err := core.CheckResolution(s); err != nil {
			return nil, err
		}
		plan.Nodes = append(plan.Nodes, j)
	}
	fmin, fmax := freqBounds(freqs)
	if anchors := e.anchorCount(fmin, fmax); anchors < len(freqs) && fmax > fmin {
		plan.Interp = true
		plan.Anchors = anchors
	}
	return plan, nil
}

// Column computes one column unit for freqs: node ≥ 0 yields the K
// column of that collocation node (ones for a flat node), FlatRefNode
// yields the interpolated path's flat-reference absorbed-power vector.
// On the interpolated path a node column needs ps — the FlatRefNode
// vector over the same freqs — because K is the ratio Pr/Ps; the exact
// path ignores ps. The per-unit operations are exactly Run's, so the
// returned column is bitwise identical to the one Run would checkpoint.
func (e *Engine) Column(ctx context.Context, freqs []float64, node int, ps []float64) ([]float64, error) {
	nodes, err := e.columnNodes(freqs)
	if err != nil {
		return nil, err
	}
	fmin, fmax := freqBounds(freqs)
	anchors := e.anchorCount(fmin, fmax)
	interp := anchors < len(freqs) && fmax > fmin

	if node == FlatRefNode {
		if !interp {
			return nil, resilience.Errorf(resilience.KindInvalidInput, "sweepengine.Column",
				"flat-reference column requested but the sweep takes the exact path")
		}
		xs := ChebAnchors(anchors, math.Sqrt(fmin), math.Sqrt(fmax))
		return e.sweepPabs(ctx, surface.NewFlat(e.Solver.L, e.Solver.M), xs, freqs)
	}
	if node < 0 || node >= len(nodes) {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "sweepengine.Column",
			"node %d out of range [0, %d)", node, len(nodes))
	}
	surf := e.Synth(nodes[node])
	col := make([]float64, len(freqs))
	if maxAbs(surf.H) == 0 {
		for fi := range col {
			col[fi] = 1
		}
		return col, nil
	}
	if _, err := core.CheckResolution(surf); err != nil {
		return nil, err
	}
	e.Metrics.Counter("sweep.column_solves").Inc()
	if interp {
		if len(ps) != len(freqs) {
			return nil, resilience.Errorf(resilience.KindInvalidInput, "sweepengine.Column",
				"interpolated column needs the flat reference over all %d frequencies (got %d)",
				len(freqs), len(ps))
		}
		xs := ChebAnchors(anchors, math.Sqrt(fmin), math.Sqrt(fmax))
		pr, err := e.sweepPabs(ctx, surf, xs, freqs)
		if err != nil {
			return nil, err
		}
		for fi := range freqs {
			col[fi] = pr[fi] / ps[fi]
		}
		return col, nil
	}
	// Exact path: the same per-unit prepare-and-solve operations as
	// exactSweep, scheduled over this process's worker budget (the
	// operator build is deterministic across worker counts, so the
	// split does not perturb bits).
	w := e.workers()
	inner := 1
	if len(freqs) < w {
		inner = w / len(freqs)
	}
	err = forEach(ctx, len(freqs), w, func(ctx context.Context, fi int) error {
		f := freqs[fi]
		ref, err := e.Solver.FlatPabsCtx(ctx, f)
		if err != nil {
			return err
		}
		sys, err := e.Solver.PrepareSurfaceCtx(ctx, surf, f, inner)
		if err != nil {
			return err
		}
		sol, err := e.Solver.SolveSystem(ctx, sys)
		if err != nil {
			return err
		}
		col[fi] = sol.Pabs / ref
		return nil
	})
	if err != nil {
		return nil, err
	}
	return col, nil
}

// columnNodes is the shared Plan/Column prologue: the validation and
// collocation grid Run itself starts from.
func (e *Engine) columnNodes(freqs []float64) ([][]float64, error) {
	if e.Solver == nil || e.Synth == nil {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "sweepengine.Column",
			"engine needs a Solver and a Synth function")
	}
	if len(freqs) == 0 {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "sweepengine.Column",
			"sweep needs at least one frequency")
	}
	order := e.Order
	if order <= 0 {
		order = defaultOrder
	}
	return sscm.Nodes(e.Dim, order)
}

func freqBounds(freqs []float64) (fmin, fmax float64) {
	fmin, fmax = freqs[0], freqs[0]
	for _, f := range freqs[1:] {
		fmin = math.Min(fmin, f)
		fmax = math.Max(fmax, f)
	}
	return fmin, fmax
}
