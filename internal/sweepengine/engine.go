// Package sweepengine executes a whole K(f) frequency sweep as one
// planned unit instead of N independent per-frequency runs.
//
// The point-at-a-time path (Simulation.RunSweep) repeats three kinds of
// work at every frequency: it re-samples the KL collocation surfaces
// (which do not depend on frequency at all), it rebuilds the
// Green's-function tables (now shared through mom.TableCache), and it
// re-assembles the dense MoM system for every surface even though the
// matrix entries vary smoothly with frequency. The engine removes all
// three:
//
//   - Surface reuse. The Smolyak collocation nodes ξ and their
//     synthesized surfaces are computed once per sweep and shared by
//     every frequency; the center (ξ = 0) node is exactly flat, so its
//     loss factor is K ≡ 1 without any solve.
//
//   - Table reuse. Assembly goes through the solver's table cache, so
//     concurrent points — and concurrent sweeps sharing a cache — build
//     each frequency's tables exactly once.
//
//   - Matrix interpolation across frequency (broadband sweeps). The
//     conductor wavenumber k₂ = (1+j)/δ ∝ √f dominates the frequency
//     dependence of the kernel, so the matrix entries are smooth
//     (entire, in fact: products of complex exponentials and
//     polynomials) in x = √f. The engine assembles exact systems only
//     at a few Chebyshev anchor abscissae in x over the sweep band and
//     reconstructs each sweep frequency's matrix by barycentric
//     interpolation; the right-hand side (e^{−jk₁·f_i}) is recomputed
//     exactly, and the flat reference goes through the same
//     interpolation so the leading kernel error cancels in the ratio
//     K = Pr/Ps. Narrow or short sweeps, where anchors would not
//     amortize, fall back to the exact per-frequency path, which is
//     bitwise identical to the point-at-a-time baseline.
//
// A point-level scheduler spreads the independent (frequency × node)
// units over the worker budget with prompt context cancellation.
package sweepengine

import (
	"context"
	"math"
	"math/cmplx"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"roughsim/internal/cmplxmat"
	"roughsim/internal/core"
	"roughsim/internal/mom"
	"roughsim/internal/resilience"
	"roughsim/internal/sscm"
	"roughsim/internal/surface"
	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
)

// observeStage feeds the shared per-stage histogram (see core's
// counterpart — the series name must match across tiers).
func (e *Engine) observeStage(stage string, seconds float64) {
	e.Metrics.HistogramL("sweep.stage_seconds", nil, telemetry.L("stage", stage)).Observe(seconds)
}

// Engine plans and executes batched sweeps over a prebuilt solver and
// surface process. Configure the exported fields before Run; the zero
// values of the optional ones select the noted defaults.
type Engine struct {
	// Solver is the configured SWM solver (required).
	Solver *core.Solver
	// Synth maps KL coordinates ξ to a surface realization (required;
	// typically (*surface.KL).Synthesize). It must be deterministic.
	Synth func(xi []float64) *surface.Surface
	// Dim is the KL truncation d (required, ≥ 1).
	Dim int
	// Order is the SSCM order (default 1, the paper's 1st-SSCM).
	Order int
	// Workers bounds total parallelism (default GOMAXPROCS via the
	// solver's assembly default).
	Workers int
	// Anchors fixes the anchor count of the interpolated path; 0 picks
	// it adaptively from the band's phase swing.
	Anchors int
	// MaxAnchors caps the adaptive anchor count (default 12).
	MaxAnchors int
	// Metrics receives sweep.* engine telemetry; nil disables it.
	Metrics *telemetry.Registry
	// Checkpoint, when non-nil, persists each completed collocation-node
	// column K(·, ξ_j) — and, on the interpolated path, the
	// flat-reference power vector under FlatRefNode — as the sweep
	// progresses, and is consulted before solving so a resumed sweep
	// re-solves only the nodes that never completed (see checkpoint.go).
	Checkpoint Checkpoint
	// Progress, when non-nil, receives monotone (done, total) updates in
	// frequency units as the sweep advances.
	Progress func(done, total int)
}

// Result is the outcome of one batched sweep.
type Result struct {
	// Mean is E[K] per frequency, aligned with the freqs argument.
	Mean []float64
	// Values holds the raw collocation node values K(f_i, ξ_j) as
	// Values[freq][node], node-aligned with sscm.Nodes(Dim, Order) —
	// the projection inputs the broadband surrogate fitter consumes.
	Values [][]float64
	// AnchorsUsed is the anchor count of the interpolated path, or 0
	// when the sweep ran through the exact per-frequency path.
	AnchorsUsed int
}

const (
	defaultOrder      = 1
	defaultMaxAnchors = 12
	minAnchors        = 4
)

// Run executes the sweep and returns E[K] at every frequency.
func (e *Engine) Run(ctx context.Context, freqs []float64) (*Result, error) {
	if e.Solver == nil || e.Synth == nil {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "sweepengine.Run",
			"engine needs a Solver and a Synth function")
	}
	if len(freqs) == 0 {
		return nil, resilience.Errorf(resilience.KindInvalidInput, "sweepengine.Run",
			"sweep needs at least one frequency")
	}
	order := e.Order
	if order <= 0 {
		order = defaultOrder
	}
	nodes, err := sscm.Nodes(e.Dim, order)
	if err != nil {
		return nil, err
	}
	e.Metrics.Counter("sweep.batched_runs").Inc()

	// Synthesize (and resolution-check) every collocation surface once:
	// the surface process is frequency-independent, so this is per
	// sweep, not per point. Exactly flat realizations (the grid's
	// center node) need no solve at all: K = Pabs/Pabs ≡ 1.
	_, synthSpan := trace.StartSpan(ctx, "sweep.synthesize")
	synthStart := time.Now()
	surfs := make([]*surface.Surface, len(nodes))
	flat := make([]bool, len(nodes))
	nflat := 0
	for j, xi := range nodes {
		s := e.Synth(xi)
		if maxAbs(s.H) == 0 {
			flat[j] = true
			nflat++
			continue
		}
		if _, err := core.CheckResolution(s); err != nil {
			synthSpan.End()
			return nil, err
		}
		surfs[j] = s
	}
	synthSpan.SetAttr("nodes", len(nodes))
	synthSpan.SetAttr("flat", nflat)
	synthSpan.End()
	e.observeStage("sweep.synthesize", time.Since(synthStart).Seconds())

	fmin, fmax := freqs[0], freqs[0]
	for _, f := range freqs[1:] {
		fmin = math.Min(fmin, f)
		fmax = math.Max(fmax, f)
	}
	anchors := e.anchorCount(fmin, fmax)
	var vals [][]float64
	if anchors < len(freqs) && fmax > fmin {
		e.Metrics.Counter("sweep.interp_freqs").Add(int64(len(freqs)))
		sctx, span := trace.StartSpan(ctx, "sweep.interp")
		span.SetAttr("freqs", len(freqs))
		span.SetAttr("anchors", anchors)
		start := time.Now()
		vals, err = e.interpSweep(sctx, freqs, fmin, fmax, anchors, surfs, flat)
		span.End()
		e.observeStage("sweep.interp", time.Since(start).Seconds())
	} else {
		anchors = 0
		e.Metrics.Counter("sweep.exact_freqs").Add(int64(len(freqs)))
		sctx, span := trace.StartSpan(ctx, "sweep.exact")
		span.SetAttr("freqs", len(freqs))
		start := time.Now()
		vals, err = e.exactSweep(sctx, freqs, surfs, flat)
		span.End()
		e.observeStage("sweep.exact", time.Since(start).Seconds())
	}
	if err != nil {
		return nil, err
	}

	// Fit the PC surrogate per frequency from the collocation values.
	_, fitSpan := trace.StartSpan(ctx, "surrogate.fit")
	fitStart := time.Now()
	res := &Result{Mean: make([]float64, len(freqs)), Values: vals, AnchorsUsed: anchors}
	for fi := range freqs {
		r, err := sscm.FromValues(e.Dim, order, vals[fi])
		if err != nil {
			fitSpan.End()
			return nil, err
		}
		res.Mean[fi] = r.PCE.Mean()
	}
	fitSpan.End()
	e.observeStage("surrogate.fit", time.Since(fitStart).Seconds())
	e.progress(len(freqs), len(freqs))
	return res, nil
}

// anchorCount estimates how many Chebyshev anchors in x = √f the band
// [fmin, fmax] needs. The kernel's frequency dependence is dominated by
// e^{jk₂r} with |k₂| ∝ √f, i.e. a complex exponential that is linear in
// the interpolation variable, so the Chebyshev coefficients decay like
// Bessel functions of half the total phase-and-decay swing S across the
// band: a few nodes beyond S reach the solver-tolerance regime. The
// swing is measured at the longest wrapped propagation distance L/√2.
func (e *Engine) anchorCount(fmin, fmax float64) int {
	if e.Anchors > 0 {
		return e.Anchors
	}
	p1 := e.Solver.Mat.Params(fmin)
	p2 := e.Solver.Mat.Params(fmax)
	r := e.Solver.L / math.Sqrt2
	swing := (cmplx.Abs(p2.K2-p1.K2) + cmplx.Abs(p2.K1-p1.K1)) * r
	n := 5 + int(math.Ceil(swing))
	if n < minAnchors {
		n = minAnchors
	}
	maxA := e.MaxAnchors
	if maxA <= 0 {
		maxA = defaultMaxAnchors
	}
	if n > maxA {
		n = maxA
	}
	return n
}

// exactSweep evaluates every (frequency, node) unit through the
// operator prepare-and-solve path — the same path the point-at-a-time
// baseline takes, so results stay bitwise identical to it — scheduling
// the independent units across the worker budget. Returns vals[freq][node]. Flat nodes cost nothing
// (K ≡ 1), checkpointed nodes load their completed column instead of
// solving, and each remaining node's column is checkpointed the moment
// its last frequency lands (the per-node atomic countdown orders every
// worker's column writes before the save).
func (e *Engine) exactSweep(ctx context.Context, freqs []float64, surfs []*surface.Surface, flat []bool) ([][]float64, error) {
	nn := len(surfs)
	vals := make([][]float64, len(freqs))
	for fi := range vals {
		vals[fi] = make([]float64, nn)
	}
	remaining := make([]atomic.Int64, nn)
	type unit struct{ fi, j int }
	var todo []unit
	for j := 0; j < nn; j++ {
		if flat[j] {
			for fi := range freqs {
				vals[fi][j] = 1
			}
			continue
		}
		if col, ok := e.loadColumn(j, len(freqs)); ok {
			for fi := range freqs {
				vals[fi][j] = col[fi]
			}
			continue
		}
		remaining[j].Store(int64(len(freqs)))
		for fi := range freqs {
			todo = append(todo, unit{fi, j})
		}
	}
	if len(todo) == 0 {
		return vals, nil
	}
	w := e.workers()
	inner := 1
	if len(todo) < w {
		inner = w / len(todo)
	}
	var done atomic.Int64
	err := forEach(ctx, len(todo), w, func(ctx context.Context, u int) error {
		fi, j := todo[u].fi, todo[u].j
		f := freqs[fi]
		ref, err := e.Solver.FlatPabsCtx(ctx, f)
		if err != nil {
			return err
		}
		// Anchor solves route through the operator path: an admissible
		// surface wins the fft-gmres stage without ever assembling the
		// dense matrix; a rejected one materializes it lazily inside the
		// chain. Checkpoint semantics are unchanged either way — the K
		// column is computed from the solution, not the matrix.
		sys, err := e.Solver.PrepareSurfaceCtx(ctx, surfs[j], f, inner)
		if err != nil {
			return err
		}
		sol, err := e.Solver.SolveSystem(ctx, sys)
		if err != nil {
			return err
		}
		vals[fi][j] = sol.Pabs / ref
		if remaining[j].Add(-1) == 0 {
			// This worker observed every other worker's decrement for node
			// j, so (atomics being sequentially consistent) all of the
			// column's writes are visible here.
			e.Metrics.Counter("sweep.node_solves").Inc()
			col := make([]float64, len(freqs))
			for k := range freqs {
				col[k] = vals[k][j]
			}
			e.saveColumn(j, col)
		}
		e.progress(int(done.Add(1))*len(freqs)/len(todo), len(freqs))
		return nil
	})
	return vals, err
}

// interpSweep computes vals[freq][node] through the anchor-interpolated
// path: per surface, exact systems at the anchor frequencies only, then
// one interpolated matrix + exact RHS + solve per sweep frequency. The
// flat reference runs through the same interpolation so the leading
// kernel interpolation error cancels in the ratio.
func (e *Engine) interpSweep(ctx context.Context, freqs []float64, fmin, fmax float64, anchors int, surfs []*surface.Surface, flat []bool) ([][]float64, error) {
	xs := ChebAnchors(anchors, math.Sqrt(fmin), math.Sqrt(fmax))

	ps, ok := e.loadColumn(FlatRefNode, len(freqs))
	if !ok {
		e.Metrics.Counter("sweep.anchor_builds").Add(int64(anchors))
		var err error
		ps, err = e.sweepPabs(ctx, surface.NewFlat(e.Solver.L, e.Solver.M), xs, freqs)
		if err != nil {
			return nil, err
		}
		e.saveColumn(FlatRefNode, ps)
	}
	vals := make([][]float64, len(freqs))
	for fi := range vals {
		vals[fi] = make([]float64, len(surfs))
	}
	// Progress in frequency units: one chunk per surface (the flat
	// reference above counts as the first chunk).
	chunks := 1
	for j := range surfs {
		if !flat[j] {
			chunks++
		}
	}
	done := 1
	e.progress(done*len(freqs)/chunks, len(freqs))
	for j, surf := range surfs {
		if flat[j] {
			for fi := range freqs {
				vals[fi][j] = 1
			}
			continue
		}
		if col, ok := e.loadColumn(j, len(freqs)); ok {
			for fi := range freqs {
				vals[fi][j] = col[fi]
			}
			done++
			e.progress(done*len(freqs)/chunks, len(freqs))
			continue
		}
		pr, err := e.sweepPabs(ctx, surf, xs, freqs)
		if err != nil {
			return nil, err
		}
		e.Metrics.Counter("sweep.node_solves").Inc()
		col := make([]float64, len(freqs))
		for fi := range freqs {
			vals[fi][j] = pr[fi] / ps[fi]
			col[fi] = vals[fi][j]
		}
		e.saveColumn(j, col)
		done++
		e.progress(done*len(freqs)/chunks, len(freqs))
	}
	return vals, nil
}

// sweepPabs returns the absorbed power of one surface at every sweep
// frequency: exact assemblies at the anchor abscissae xs (in x = √f),
// then an interpolated matrix, exact RHS and resilient solve per
// frequency. A sweep frequency coinciding with an anchor reproduces the
// exact system bit-for-bit (the barycentric weights collapse to a
// delta and the RHS formula is the assembly's own).
func (e *Engine) sweepPabs(ctx context.Context, surf *surface.Surface, xs []float64, freqs []float64) ([]float64, error) {
	anch := make([]*mom.System, len(xs))
	for a, x := range xs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sys, err := e.Solver.AssembleSurfaceCtx(ctx, surf, x*x, e.workers())
		if err != nil {
			return nil, err
		}
		anch[a] = sys
	}
	out := make([]float64, len(freqs))
	err := forEach(ctx, len(freqs), e.workers(), func(ctx context.Context, fi int) error {
		f := freqs[fi]
		sys := interpSystem(anch, xs, math.Sqrt(f), surf, e.Solver.Mat.Params(f))
		sol, err := e.Solver.SolveSystem(ctx, sys)
		if err != nil {
			return err
		}
		out[fi] = sol.Pabs
		return nil
	})
	return out, err
}

// interpSystem builds the system at abscissa x from the anchor systems:
// entrywise barycentric interpolation of the matrix (the Lagrange basis
// sums to one, so frequency-independent entries — the ½ jump terms, the
// static self-singularity — are reproduced exactly up to round-off) and
// an exactly recomputed right-hand side.
func interpSystem(anch []*mom.System, xs []float64, x float64, surf *surface.Surface, p mom.Params) *mom.System {
	w := BaryWeights(xs, x)
	n := anch[0].N
	m := cmplxmat.New(2*n, 2*n)
	for a, wa := range w {
		if wa == 0 {
			continue
		}
		c := complex(wa, 0)
		src := anch[a].Matrix.Data
		dst := m.Data
		for i := range dst {
			dst[i] += c * src[i]
		}
	}
	return &mom.System{N: n, Matrix: m, RHS: mom.RHSVector(surf, p), Step: anch[0].Step}
}

// ChebAnchors places n Chebyshev–Gauss abscissae on [lo, hi]. Exported
// because the surrogate fitter anchors its broadband coefficient model
// on the same abscissae family (in x = √f) the engine interpolates
// matrices on.
func ChebAnchors(n int, lo, hi float64) []float64 {
	mid, half := (lo+hi)/2, (hi-lo)/2
	xs := make([]float64, n)
	for a := 0; a < n; a++ {
		xs[a] = mid + half*math.Cos((2*float64(a)+1)*math.Pi/(2*float64(n)))
	}
	return xs
}

// BaryWeights returns the Lagrange basis ℓ_a(x) for the Chebyshev–Gauss
// abscissae xs in barycentric form; a coincident x yields a delta.
// Exported for the surrogate model's coefficient interpolation.
func BaryWeights(xs []float64, x float64) []float64 {
	w := make([]float64, len(xs))
	for a, xa := range xs {
		if x == xa {
			w[a] = 1
			return w
		}
	}
	n := len(xs)
	var sum float64
	for a := range xs {
		ba := math.Sin((2*float64(a) + 1) * math.Pi / (2 * float64(n)))
		if a%2 == 1 {
			ba = -ba
		}
		w[a] = ba / (x - xs[a])
		sum += w[a]
	}
	for a := range w {
		w[a] /= sum
	}
	return w
}

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.NumCPU()
}

func (e *Engine) progress(done, total int) {
	if e.Progress != nil {
		e.Progress(done, total)
	}
}

func maxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// forEach runs fn(i) for i ∈ [0, n) across min(n, workers) goroutines.
// The first error wins; later units are skipped (not cancelled — units
// already running finish). A cancelled ctx stops feeding promptly and
// returns ctx.Err().
func forEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
