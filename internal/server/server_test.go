package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"roughsim"
	"roughsim/internal/jobs"
	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
)

// tinyConfig is a sweep small enough to solve in well under a second:
// an 8×8 grid with a 2-dimensional KL truncation means five collocation
// solves of a 128×128 system plus one flat reference.
func tinyConfig(freqs ...float64) roughsim.SweepConfig {
	return roughsim.SweepConfig{
		Spec:  roughsim.SurfaceSpec{Corr: roughsim.GaussianCF, Sigma: 0.4e-6, Eta: 1e-6},
		Acc:   roughsim.Accuracy{GridPerSide: 8, StochasticDim: 2},
		Freqs: freqs,
	}
}

type testServer struct {
	srv      *Server
	base     string
	client   *http.Client
	metrics  *telemetry.Registry
	serveErr chan error
}

func startServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	return &testServer{
		srv:      srv,
		base:     "http://" + l.Addr().String(),
		client:   &http.Client{},
		metrics:  cfg.Metrics,
		serveErr: errc,
	}
}

func (ts *testServer) shutdown(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-ts.serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
	ts.client.CloseIdleConnections()
}

func (ts *testServer) do(t *testing.T, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, ts.base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// submitAndWait submits cfg and polls until the job is terminal,
// returning the raw /result body.
func (ts *testServer) submitAndWait(t *testing.T, cfg roughsim.SweepConfig) []byte {
	t.Helper()
	code, body := ts.do(t, "POST", "/v1/sweeps", cfg)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info jobs.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return ts.waitResult(t, info.ID)
}

func (ts *testServer) waitResult(t *testing.T, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := ts.do(t, "GET", "/v1/sweeps/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		var info jobs.Info
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Status.Terminal() {
			if info.Status != jobs.StatusSucceeded {
				t.Fatalf("job %s ended %s: %s", id, info.Status, info.Error)
			}
			code, res := ts.do(t, "GET", "/v1/sweeps/"+id+"/result", nil)
			if code != http.StatusOK {
				t.Fatalf("result: %d %s", code, res)
			}
			return res
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", id, info)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEndToEndSingleFlightCacheAndDrain is the acceptance test of the
// service tier: the same sweep submitted twice concurrently and once
// more after completion must cost exactly one solver execution (the
// single-flight + cache behavior, observed via /metrics), return
// byte-identical results all three times, and the server must drain
// gracefully with no goroutine leaks.
func TestEndToEndSingleFlightCacheAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	baseline := runtime.NumGoroutine()
	ts := startServer(t, Config{Workers: 2, QueueDepth: 8, CacheSize: 64})
	cfg := tinyConfig(5e9)

	// Two concurrent identical submissions.
	var wg sync.WaitGroup
	results := make([][]byte, 3)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = ts.submitAndWait(t, cfg)
		}(i)
	}
	wg.Wait()
	// One more after completion: must be a pure cache hit.
	results[2] = ts.submitAndWait(t, cfg)

	for i := 1; i < 3; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("result %d differs:\n%s\nvs\n%s", i, results[0], results[i])
		}
	}
	var res roughsim.SweepResult
	if err := json.Unmarshal(results[0], &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || !(res.Points[0].KSWM > 1) {
		t.Fatalf("suspicious sweep result: %+v", res)
	}

	// Exactly one solver execution across all three jobs.
	code, body := ts.do(t, "GET", "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["sweep.points_computed"]; got != 1 {
		t.Fatalf("points_computed = %d, want 1 (metrics: %s)", got, body)
	}
	if got := snap.Counters["cache.hits"] + snap.Counters["cache.singleflight_shared"]; got < 2 {
		t.Fatalf("cache sharing = %d, want ≥ 2 (metrics: %s)", got, body)
	}
	if got := snap.Counters["queue.jobs_completed"]; got != 3 {
		t.Fatalf("jobs_completed = %d, want 3", got)
	}
	if snap.Counters["solve.count"] == 0 || snap.Histograms["solve.seconds"].Count == 0 {
		t.Fatalf("solver telemetry missing: %s", body)
	}

	// Graceful drain; submissions now shed with 503.
	ts.shutdown(t)
	// No goroutine leaks: the worker pool, SSE tickers and HTTP
	// machinery must all unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	ts := startServer(t, Config{})
	defer ts.shutdown(t)
	cases := []struct {
		name string
		body string
	}{
		{"empty freqs", `{"surface":{"cf":"gaussian","sigma":1e-6,"eta":1e-6},"freqs_hz":[]}`},
		{"negative freq", `{"surface":{"cf":"gaussian","sigma":1e-6,"eta":1e-6},"freqs_hz":[-1]}`},
		{"bad cf", `{"surface":{"cf":"fractal","sigma":1e-6,"eta":1e-6},"freqs_hz":[1e9]}`},
		{"unknown field", `{"surfaces":{},"freqs_hz":[1e9]}`},
		{"grid above limit", `{"surface":{"cf":"gaussian","sigma":1e-6,"eta":1e-6},"accuracy":{"grid":1000},"freqs_hz":[1e9]}`},
		{"dim above limit", `{"surface":{"cf":"gaussian","sigma":1e-6,"eta":1e-6},"accuracy":{"dim":1000},"freqs_hz":[1e9]}`},
		{"not json", `{{{`},
	}
	for _, c := range cases {
		req, _ := http.NewRequest("POST", ts.base+"/v1/sweeps", strings.NewReader(c.body))
		resp, err := ts.client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
}

func TestUnknownJobAndPrematureResult(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	ts := startServer(t, Config{})
	defer ts.shutdown(t)
	if code, _ := ts.do(t, "GET", "/v1/sweeps/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", code)
	}
	if code, _ := ts.do(t, "GET", "/v1/sweeps/nope/result", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job result = %d", code)
	}
	if code, _ := ts.do(t, "DELETE", "/v1/sweeps/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job cancel = %d", code)
	}
	// A freshly submitted job's result is a 409 until it terminates.
	code, body := ts.do(t, "POST", "/v1/sweeps", tinyConfig(5e9))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info jobs.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if code, _ := ts.do(t, "GET", "/v1/sweeps/"+info.ID+"/result", nil); code != http.StatusOK && code != http.StatusConflict {
		t.Fatalf("early result = %d, want 200 or 409", code)
	}
	ts.waitResult(t, info.ID)
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	ts := startServer(t, Config{})
	defer ts.shutdown(t)
	code, body := ts.do(t, "GET", "/healthz", nil)
	if code != http.StatusOK || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	code, body = ts.do(t, "GET", "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if snap.Counters["server.requests"] < 1 {
		t.Fatalf("request counter missing: %s", body)
	}
}

func TestDiskTierSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	dir := t.TempDir()
	cfg := tinyConfig(5e9)

	m1 := telemetry.NewRegistry()
	ts1 := startServer(t, Config{CacheDir: dir, Metrics: m1})
	first := ts1.submitAndWait(t, cfg)
	ts1.shutdown(t)

	// A fresh server process (fresh memory tier) must serve the same
	// record from disk without running the solver.
	m2 := telemetry.NewRegistry()
	ts2 := startServer(t, Config{CacheDir: dir, Metrics: m2})
	second := ts2.submitAndWait(t, cfg)
	ts2.shutdown(t)

	if !bytes.Equal(first, second) {
		t.Fatalf("disk-tier result differs:\n%s\nvs\n%s", first, second)
	}
	if got := m2.Counter("sweep.points_computed").Value(); got != 0 {
		t.Fatalf("restart recomputed %d points, want 0", got)
	}
	if got := m2.Counter("cache.disk_hits").Value(); got != 1 {
		t.Fatalf("disk_hits = %d, want 1", got)
	}
}

func TestStreamEmitsTerminalEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	ts := startServer(t, Config{})
	defer ts.shutdown(t)
	code, body := ts.do(t, "POST", "/v1/sweeps", tinyConfig(5e9, 6e9))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info jobs.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.client.Get(ts.base + "/v1/sweeps/" + info.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var sawDone bool
	var lastData string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
		if line == "event: done" {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatalf("no done event; last data %q", lastData)
	}
	var final jobs.Info
	if err := json.Unmarshal([]byte(lastData), &final); err != nil {
		t.Fatal(err)
	}
	if final.Status != jobs.StatusSucceeded || final.Done != 2 || final.Total != 2 {
		t.Fatalf("final stream snapshot: %+v", final)
	}
}

func TestShutdownShedsNewSubmissions(t *testing.T) {
	ts := startServer(t, Config{})
	ts.shutdown(t)
	// The listener is closed after drain, so reach the handler directly.
	req, _ := http.NewRequest("POST", "/v1/sweeps", bytes.NewReader(mustJSON(t, tinyConfig(5e9))))
	rec := newRecorder()
	ts.srv.Handler().ServeHTTP(rec, req)
	if rec.status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %d, want 503", rec.status)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// recorder is a minimal ResponseWriter (httptest.NewRecorder also
// works, but this keeps the Flusher assertion in handleStream honest
// about what it needs).
type recorder struct {
	status int
	header http.Header
	buf    bytes.Buffer
}

func newRecorder() *recorder { return &recorder{header: http.Header{}} }

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(s int)   { r.status = s }
func (r *recorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.buf.Write(b)
}

// TestStreamManyClientsEventDriven fans many SSE clients onto one
// controlled job: every client must observe the terminal event with the
// final progress, and the handlers sleep on the job's broadcast channel
// between changes (run under -race by scripts/verify.sh).
func TestStreamManyClientsEventDriven(t *testing.T) {
	ts := startServer(t, Config{})
	defer ts.shutdown(t)
	step := make(chan struct{})
	j, err := ts.srv.queue.Submit(func(ctx context.Context, progress func(int, int)) (any, error) {
		progress(0, 3)
		for i := 1; i <= 3; i++ {
			select {
			case <-step:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			progress(i, 3)
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 25
	finals := make([]jobs.Info, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := ts.client.Get(ts.base + "/v1/sweeps/" + j.ID + "/stream")
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			var lastData string
			sawDone := false
			for sc.Scan() {
				line := sc.Text()
				if strings.HasPrefix(line, "data: ") {
					lastData = strings.TrimPrefix(line, "data: ")
				}
				if line == "event: done" {
					sawDone = true
				}
			}
			if !sawDone {
				errs[c] = fmt.Errorf("stream ended without done event (last %q)", lastData)
				return
			}
			errs[c] = json.Unmarshal([]byte(lastData), &finals[c])
		}(c)
	}
	time.Sleep(50 * time.Millisecond) // let clients attach mid-run
	for i := 0; i < 3; i++ {
		step <- struct{}{}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	for c := range errs {
		if errs[c] != nil {
			t.Fatalf("client %d: %v", c, errs[c])
		}
		if finals[c].Status != jobs.StatusSucceeded || finals[c].Done != 3 || finals[c].Total != 3 {
			t.Fatalf("client %d final snapshot: %+v", c, finals[c])
		}
	}
}

// spanNames flattens a span subtree into the set of span names.
func spanNames(s *trace.SpanSummary, into map[string]bool) {
	if s == nil {
		return
	}
	into[s.Name] = true
	for _, c := range s.Children {
		spanNames(c, into)
	}
}

// TestTraceEndToEnd runs concurrent sweeps through the full HTTP tier
// and checks the observability surface: nested span trees at
// /debug/trace/{id}, stage rollups + queue wait in job status, the
// X-Trace-ID result header, recent-trace listing, and the stage
// histograms in the Prometheus exposition.
func TestTraceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	ts := startServer(t, Config{Workers: 2})
	defer ts.shutdown(t)

	cfgs := []roughsim.SweepConfig{tinyConfig(5e9, 8e9), tinyConfig(6e9)}
	ids := make([]string, len(cfgs))
	for i := range cfgs {
		code, body := ts.do(t, "POST", "/v1/sweeps", cfgs[i])
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %s", code, body)
		}
		var info jobs.Info
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		ids[i] = info.ID
	}
	for _, id := range ids {
		ts.waitResult(t, id)
	}

	for _, id := range ids {
		code, body := ts.do(t, "GET", "/debug/trace/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("trace %s: %d %s", id, code, body)
		}
		var sum trace.Summary
		if err := json.Unmarshal(body, &sum); err != nil {
			t.Fatal(err)
		}
		if sum.ID != id || sum.Spans == nil || sum.Spans.Name != "job" || sum.Spans.InProgress {
			t.Fatalf("trace root: %+v", sum)
		}
		var run *trace.SpanSummary
		rootKids := map[string]bool{}
		for _, c := range sum.Spans.Children {
			rootKids[c.Name] = true
			if c.Name == "job.run" {
				run = c
			}
		}
		if !rootKids["queue.wait"] || run == nil {
			t.Fatalf("root children: %v", rootKids)
		}
		nested := map[string]bool{}
		spanNames(run, nested)
		for _, want := range []string{"sweep.synthesize", "mom.assemble", "mom.solve"} {
			if !nested[want] {
				t.Fatalf("span %q missing under job.run: %v", want, nested)
			}
		}

		// The status payload carries the compact rollup and queue wait.
		code, body = ts.do(t, "GET", "/v1/sweeps/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		var st struct {
			jobs.Info
			Trace *trace.StageSummary `json:"trace"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.QueueWaitSeconds <= 0 {
			t.Fatalf("queue_wait_seconds missing from status: %s", body)
		}
		if st.Trace == nil || st.Trace.ID != id {
			t.Fatalf("status trace rollup: %s", body)
		}
		stages := map[string]bool{}
		for _, sg := range st.Trace.Stages {
			stages[sg.Name] = true
		}
		if !stages["queue.wait"] || !stages["job.run"] || !stages["mom.solve"] {
			t.Fatalf("rollup stages: %v", stages)
		}
	}

	// /result carries the trace out of band.
	resp, err := ts.client.Get(ts.base + "/v1/sweeps/" + ids[0] + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-ID"); got != ids[0] {
		t.Fatalf("X-Trace-ID = %q, want %q", got, ids[0])
	}

	// Recent traces, newest first.
	code, body := ts.do(t, "GET", "/debug/traces?n=10", nil)
	if code != http.StatusOK {
		t.Fatalf("traces: %d %s", code, body)
	}
	var recent []trace.StageSummary
	if err := json.Unmarshal(body, &recent); err != nil {
		t.Fatal(err)
	}
	if len(recent) < 2 {
		t.Fatalf("recent traces = %d, want ≥ 2", len(recent))
	}

	// The Prometheus exposition includes the per-stage histograms the CI
	// smoke test scrapes for.
	code, body = ts.do(t, "GET", "/metrics?format=prometheus", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE queue_wait_seconds histogram",
		"# TYPE sweep_stage_seconds histogram",
		`sweep_stage_seconds_bucket{stage="mom.solve",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestPprofIsOptIn: the profiler mounts only when asked for.
func TestPprofIsOptIn(t *testing.T) {
	ts := startServer(t, Config{EnablePprof: true})
	code, body := ts.do(t, "GET", "/debug/pprof/", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("pprof index: %d %s", code, body)
	}
	ts.shutdown(t)

	ts = startServer(t, Config{})
	defer ts.shutdown(t)
	if code, _ := ts.do(t, "GET", "/debug/pprof/", nil); code != http.StatusNotFound {
		t.Fatalf("pprof mounted without opt-in: %d", code)
	}
}
