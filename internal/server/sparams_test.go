package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"strings"
	"testing"
	"time"

	"roughsim"
	"roughsim/internal/jobs"
	"roughsim/internal/sparams"
	"roughsim/internal/surrogate"
	"roughsim/internal/telemetry"
)

// tinySPConfig rides the same tiny physics as tinyConfig: five
// frequency points over 1–9 GHz on a 2 cm microstrip keep the exact
// K-resolution path to five fast collocation sweeps.
func tinySPConfig() roughsim.SParamConfig {
	sweep := tinyConfig()
	return roughsim.SParamConfig{
		Spec: sweep.Spec,
		Acc:  sweep.Acc,
		Line: roughsim.LineGeometry{
			WidthM:   300e-6,
			HeightM:  170e-6,
			EpsR:     4.1,
			TanDelta: 0.018,
		},
		LengthM: 0.02,
		FMinHz:  1e9,
		FMaxHz:  9e9,
		Points:  5,
	}
}

// awaitSParamsJob polls GET /v1/sparams/{jobID} (the job-status branch
// of the artifact endpoint) until the generation job is terminal.
func (ts *testServer) awaitSParamsJob(t *testing.T, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := ts.do(t, "GET", "/v1/sparams/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("job status: %d %s", code, body)
		}
		var info jobs.Info
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Status.Terminal() {
			if info.Status != jobs.StatusSucceeded {
				t.Fatalf("sparams job %s ended %s: %s", id, info.Status, info.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sparams job %s not terminal in time", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// decodeAccepted unpacks the 202 payload of POST /v1/sparams.
func decodeAccepted(t *testing.T, body []byte) (key, jobID string) {
	t.Helper()
	var acc struct {
		Key string    `json:"key"`
		Job jobs.Info `json:"job"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatalf("accepted payload %s: %v", body, err)
	}
	return acc.Key, acc.Job.ID
}

// TestSParamsEndToEnd is the acceptance path of the S-parameter
// service: submit a geometry + band, poll the generation job, fetch the
// artifact as JSON and as a raw .s2p, then re-submit the identical
// request and prove it is served from the store with zero solver work.
func TestSParamsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("solver runs")
	}
	m := telemetry.NewRegistry()
	ts := startServer(t, durableConfig(t.TempDir(), m))
	defer ts.shutdown(t)

	cfg := tinySPConfig()
	code, body := ts.do(t, "POST", "/v1/sparams", cfg)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	key, jobID := decodeAccepted(t, body)
	if key != cfg.Key().String() {
		t.Fatalf("accepted key %s, config key %s", key, cfg.Key())
	}
	ts.awaitSParamsJob(t, jobID)

	// Artifact by content address, JSON form.
	code, body = ts.do(t, "GET", "/v1/sparams/"+key, nil)
	if code != http.StatusOK {
		t.Fatalf("artifact: %d %s", code, body)
	}
	var art sparams.Artifact
	if err := json.Unmarshal(body, &art); err != nil {
		t.Fatal(err)
	}
	if art.Key != key || art.Points != 5 || art.Source != "exact" {
		t.Fatalf("artifact provenance wrong: key=%s points=%d source=%q", art.Key, art.Points, art.Source)
	}
	if !art.Gates.PassivityOK || !art.Gates.CausalityOK {
		t.Fatalf("gates failed on served artifact: %s", art.Gates)
	}
	var echoed roughsim.SParamConfig
	if err := json.Unmarshal(art.Config, &echoed); err != nil || echoed.Points != 5 {
		t.Fatalf("config echo wrong: %s (%v)", art.Config, err)
	}

	// Raw Touchstone negotiation: query form and Accept form must both
	// return the byte-identical .s2p body.
	req, _ := http.NewRequest("GET", ts.base+"/v1/sparams/"+key+"?format=s2p", nil)
	resp, err := ts.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("s2p fetch: %d %s", resp.StatusCode, buf.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-touchstone" {
		t.Fatalf("s2p content type %q", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, ".s2p") {
		t.Fatalf("content disposition %q", cd)
	}
	if buf.String() != art.Touchstone {
		t.Fatal("negotiated .s2p body differs from artifact touchstone")
	}
	req, _ = http.NewRequest("GET", ts.base+"/v1/sparams/"+key, nil)
	req.Header.Set("Accept", "application/x-touchstone")
	resp, err = ts.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if buf.String() != art.Touchstone {
		t.Fatal("Accept-negotiated body differs from artifact touchstone")
	}

	// Identical re-POST: a pure store read. 200 with the same artifact,
	// no new solver executions, and the hit counter moves.
	solved := m.Counter("sweep.points_computed").Value()
	code, body = ts.do(t, "POST", "/v1/sparams", cfg)
	if code != http.StatusOK {
		t.Fatalf("re-POST: %d %s", code, body)
	}
	var art2 sparams.Artifact
	if err := json.Unmarshal(body, &art2); err != nil {
		t.Fatal(err)
	}
	if art2.Touchstone != art.Touchstone {
		t.Fatal("cache-served artifact differs from the generated one")
	}
	if got := m.Counter("sweep.points_computed").Value(); got != solved {
		t.Fatalf("re-POST computed %d new points, want 0", got-solved)
	}
	hits := m.Snapshot().Counters[`sparams.requests{outcome="hit"}`]
	if hits != 1 {
		t.Fatalf("hit counter = %d, want 1", hits)
	}
	if gen := m.Counter("sparams.generated").Value(); gen != 1 {
		t.Fatalf("generated counter = %d, want 1", gen)
	}
}

// TestSParamsRequestValidation: malformed and unknown-field bodies are
// client errors, and lookups of absent artifacts are clean 404s.
func TestSParamsRequestValidation(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, QueueDepth: 2})
	defer ts.shutdown(t)

	bad := tinySPConfig()
	bad.Points = 3
	if code, body := ts.do(t, "POST", "/v1/sparams", bad); code != http.StatusBadRequest {
		t.Fatalf("points=3 accepted: %d %s", code, body)
	}
	aliased := tinySPConfig()
	aliased.LengthM = 2 // 2 m line over 2 GHz steps aliases the phase
	code, body := ts.do(t, "POST", "/v1/sparams", aliased)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "too coarse") {
		t.Fatalf("aliased grid: %d %s", code, body)
	}
	if code, _ := ts.do(t, "POST", "/v1/sparams", map[string]any{"bogus_field": 1}); code != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", code)
	}
	if inv := ts.metrics.Snapshot().Counters[`sparams.requests{outcome="invalid"}`]; inv != 2 {
		t.Fatalf("invalid counter = %d, want 2", inv)
	}

	// A well-formed but unknown content address is a 404 with guidance;
	// a non-key ID falls through to job lookup, also 404.
	absent := strings.Repeat("ab", 32)
	code, body = ts.do(t, "GET", "/v1/sparams/"+absent, nil)
	if code != http.StatusNotFound || !strings.Contains(string(body), "POST /v1/sparams") {
		t.Fatalf("absent artifact: %d %s", code, body)
	}
	if code, _ = ts.do(t, "GET", "/v1/sparams/not-a-job", nil); code != http.StatusNotFound {
		t.Fatalf("bogus job id: %d", code)
	}
}

// TestSParamsSurrogateFastPath: with an admitted surrogate covering the
// band, generation resolves K(f) in closed form — the artifact records
// surrogate provenance and no sweep points are solved for it.
func TestSParamsSurrogateFastPath(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a surrogate through the exact solver")
	}
	m := telemetry.NewRegistry()
	ts := startServer(t, Config{Workers: 2, QueueDepth: 8, SurrogateDir: t.TempDir(), Metrics: m})
	defer ts.shutdown(t)

	cfg := tinySPConfig()
	scfg := roughsim.SurrogateConfig{
		Spec:    cfg.Spec,
		Acc:     cfg.Acc,
		FMinHz:  0.5e9,
		FMaxHz:  12e9,
		Anchors: 8,
		Tol:     0.05,
	}
	code, body := ts.do(t, "POST", "/v1/surrogates", scfg)
	if code != http.StatusAccepted {
		t.Fatalf("surrogate submit: %d %s", code, body)
	}
	var sub struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if rec := ts.awaitAdmission(t, sub.Key); rec.Status != surrogate.StatusAdmitted {
		t.Fatalf("surrogate %s: %s", rec.Status, rec.Reason)
	}

	solved := m.Counter("sweep.points_computed").Value()
	code, body = ts.do(t, "POST", "/v1/sparams", cfg)
	if code != http.StatusAccepted {
		t.Fatalf("sparams submit: %d %s", code, body)
	}
	key, jobID := decodeAccepted(t, body)
	ts.awaitSParamsJob(t, jobID)

	code, body = ts.do(t, "GET", "/v1/sparams/"+key, nil)
	if code != http.StatusOK {
		t.Fatalf("artifact: %d %s", code, body)
	}
	var art sparams.Artifact
	if err := json.Unmarshal(body, &art); err != nil {
		t.Fatal(err)
	}
	if art.Source != "surrogate" {
		t.Fatalf("source %q, want surrogate", art.Source)
	}
	if !(art.KMaxRelErr > 0) || art.KMaxRelErr > 0.05 {
		t.Fatalf("k_max_rel_err %g outside (0, 0.05]", art.KMaxRelErr)
	}
	if !art.Gates.PassivityOK || !art.Gates.CausalityOK {
		t.Fatalf("gates failed: %s", art.Gates)
	}
	if got := m.Counter("sweep.points_computed").Value(); got != solved {
		t.Fatalf("surrogate path solved %d sweep points, want 0", got-solved)
	}
	snap := m.Snapshot().Counters
	if snap[`sparams.k_path{path="surrogate"}`] != 1 {
		t.Fatalf("k_path counters: %v", snap)
	}
}

// TestSParamsChaosKillAndReplay kills the daemon — via the
// deterministic crash injector, indistinguishable from kill -9 — after
// K(f) is resolved but before the artifact persists, then restarts it
// against the same journal and cache. The contract: the generation job
// replays under its original ID, resolves every K point from the disk
// cache (zero re-solves), lands the artifact, and an identical re-POST
// is a pure store hit.
func TestSParamsChaosKillAndReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemons and runs solvers")
	}
	dir := t.TempDir()
	cfg := tinySPConfig()
	reqBody := mustJSON(t, cfg)

	// Phase 1: daemon armed to die at the first artifact persist.
	cmd1, addr1 := spawnHelper(t, dir, "sparams.artifact:1")
	code, _, body := httpJSON(t, "POST", "http://"+addr1+"/v1/sparams", reqBody)
	if code != http.StatusAccepted {
		cmd1.Process.Kill()
		t.Fatalf("submit: %d %s", code, body)
	}
	key, jobID := decodeAccepted(t, body)
	err := cmd1.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 137 {
		t.Fatalf("helper exit = %v, want chaos crash status 137", err)
	}

	// Phase 2: restart. The journaled job replays under its original ID;
	// every K point was cached before the crash, so the resume computes
	// nothing — it cascades, gates, and persists.
	cmd2, addr2 := spawnHelper(t, dir, "")
	base2 := "http://" + addr2
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, _, body = httpJSON(t, "GET", base2+"/v1/sparams/"+jobID, nil)
		if code != http.StatusOK {
			t.Fatalf("replayed job status: %d %s", code, body)
		}
		var info jobs.Info
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Status.Terminal() {
			if info.Status != jobs.StatusSucceeded {
				t.Fatalf("replayed job ended %s: %s", info.Status, info.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replayed job not terminal in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	counters := scrapeCounters(t, base2)
	if got := counters["journal.jobs_replayed"]; got != 1 {
		t.Errorf("jobs_replayed = %d, want 1", got)
	}
	if got := counters["sweep.points_computed"]; got != 0 {
		t.Errorf("points_computed on resume = %d, want 0 (K grid was cached before the crash)", got)
	}

	// The artifact is served, and its .s2p body is a well-formed
	// two-port Touchstone over the requested band.
	code, hdr, body := httpJSON(t, "GET", base2+"/v1/sparams/"+key+"?format=s2p", nil)
	if code != http.StatusOK {
		t.Fatalf("s2p after replay: %d %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-touchstone" {
		t.Fatalf("s2p content type %q", ct)
	}
	var dataRows int
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		switch {
		case strings.HasPrefix(line, "!"):
		case strings.HasPrefix(line, "#"):
			if !strings.HasPrefix(line, "# HZ S RI R 50") {
				t.Fatalf("option line %q", line)
			}
		default:
			if fields := strings.Fields(line); len(fields) != 9 {
				t.Fatalf("data row has %d columns: %q", len(fields), line)
			}
			dataRows++
		}
	}
	if dataRows != cfg.Points {
		t.Fatalf("s2p has %d data rows, want %d", dataRows, cfg.Points)
	}

	// Identical re-POST after the crash-and-replay: pure store hit.
	code, _, body = httpJSON(t, "POST", base2+"/v1/sparams", reqBody)
	if code != http.StatusOK {
		t.Fatalf("re-POST after replay: %d %s", code, body)
	}
	counters = scrapeCounters(t, base2)
	if got := counters[`sparams.requests{outcome="hit"}`]; got != 1 {
		t.Errorf("hit counter = %d, want 1", got)
	}
	stopHelper(t, cmd2)
}
