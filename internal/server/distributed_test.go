package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"roughsim/internal/cluster"
	"roughsim/internal/jobs"
	"roughsim/internal/telemetry"
)

// The distributed chaos drill: the test binary re-executes itself as a
// real coordinator daemon and two real worker daemons (three separate
// OS processes talking HTTP), then kills one worker with SIGKILL while
// it holds a column lease. The contract under test is the acceptance
// criterion of the distributed compute plane:
//
//   - the killed worker's lease expires and its column re-queues to the
//     surviving worker — the job completes under its original ID;
//   - the final result is byte-identical to a plain single-process
//     server's for the same sweep;
//   - the loss is visible in telemetry (lease.expired, lease.requeued).

// TestDistributedCoordinatorProcess is not a test: it is the
// coordinator daemon, run only when re-executed by the drill below.
func TestDistributedCoordinatorProcess(t *testing.T) {
	if os.Getenv("ROUGHSIMD_DIST_COORD") != "1" {
		t.Skip("helper process for TestDistributedKillWorkerMidSweep")
	}
	cfg := durableConfig(os.Getenv("ROUGHSIMD_DIST_DIR"), telemetry.NewRegistry())
	cfg.Workers = 2
	cfg.Cluster = ClusterConfig{Role: RoleCoordinator, LeaseTTL: 2 * time.Second}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("DIST_ADDR %s\n", l.Addr())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	select {
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("coordinator drain: %v", err)
		}
	case err := <-errc:
		t.Fatalf("coordinator serve: %v", err)
	}
}

// TestDistributedWorkerProcess is not a test: it is the worker daemon.
// ROUGHSIMD_DIST_DELAY stretches each solve so the parent can kill the
// process while it provably holds a lease (it prints CLAIMED first).
func TestDistributedWorkerProcess(t *testing.T) {
	id := os.Getenv("ROUGHSIMD_DIST_WORKER")
	if id == "" {
		t.Skip("helper process for TestDistributedKillWorkerMidSweep")
	}
	m := telemetry.NewRegistry()
	solve := cluster.NewColumns(m).Solve
	if d, err := time.ParseDuration(os.Getenv("ROUGHSIMD_DIST_DELAY")); err == nil && d > 0 {
		inner := solve
		solve = func(ctx context.Context, task cluster.Task) ([]float64, error) {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return inner(ctx, task)
		}
	}
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: os.Getenv("ROUGHSIMD_DIST_COORD_URL"),
		ID:          id,
		Poll:        20 * time.Millisecond,
		Grace:       10 * time.Second,
		Metrics:     m,
		Solve:       solve,
		OnClaim:     func(task cluster.Task) { fmt.Printf("CLAIMED node=%d\n", task.Node) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	w.Run(ctx)
}

// distProc is one spawned helper daemon plus the lines it prints.
type distProc struct {
	cmd   *exec.Cmd
	lines chan string
}

// spawnDist re-executes the test binary as helper `run` with env, and
// streams its stdout lines.
func spawnDist(t *testing.T, run string, env ...string) *distProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run="+run+"$", "-test.v")
	cmd.Env = append(os.Environ(), env...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &distProc{cmd: cmd, lines: make(chan string, 64)}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case p.lines <- sc.Text():
			default: // keep draining so the helper never blocks on a full pipe
			}
		}
		close(p.lines)
	}()
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return p
}

// waitLine blocks until a stdout line with the prefix arrives and
// returns the remainder.
func (p *distProc) waitLine(t *testing.T, prefix string, timeout time.Duration) string {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				t.Fatalf("helper exited before printing %q", prefix)
			}
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				return strings.TrimSpace(rest)
			}
		case <-deadline:
			t.Fatalf("no %q line within %v", prefix, timeout)
		}
	}
}

// sumCounterPrefix sums every series of one counter family across its
// labels (snapshot keys are `name` or `name{k="v"}`).
func sumCounterPrefix(counters map[string]int64, name string) int64 {
	var n int64
	for k, v := range counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			n += v
		}
	}
	return n
}

// distGauges scrapes /metrics gauges.
func distGauges(t *testing.T, base string) map[string]float64 {
	t.Helper()
	code, _, body := httpJSON(t, "GET", base+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, body)
	}
	var snap struct {
		Gauges map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	return snap.Gauges
}

// TestDistributedKillWorkerMidSweep is the multi-process drill.
func TestDistributedKillWorkerMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemons and runs solvers")
	}
	dir := t.TempDir()
	sweepBody := mustJSON(t, tinyConfig(5e9))

	coord := spawnDist(t, "TestDistributedCoordinatorProcess",
		"ROUGHSIMD_DIST_COORD=1", "ROUGHSIMD_DIST_DIR="+dir)
	base := "http://" + coord.waitLine(t, "DIST_ADDR ", 30*time.Second)

	// Worker B first, alone, with solves stretched far past the lease
	// TTL: it will claim the first column and sit on it until killed.
	victim := spawnDist(t, "TestDistributedWorkerProcess",
		"ROUGHSIMD_DIST_WORKER=w-victim",
		"ROUGHSIMD_DIST_COORD_URL="+base,
		"ROUGHSIMD_DIST_DELAY=10m")
	deadline := time.Now().Add(20 * time.Second)
	for distGauges(t, base)["cluster.workers"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never saw the victim worker")
		}
		time.Sleep(20 * time.Millisecond)
	}

	code, _, body := httpJSON(t, "POST", base+"/v1/sweeps", sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info jobs.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	// The victim provably holds a lease; the survivor joins, then the
	// victim dies mid-solve — kill -9, no drain, no Leave.
	victim.waitLine(t, "CLAIMED ", 30*time.Second)
	survivor := spawnDist(t, "TestDistributedWorkerProcess",
		"ROUGHSIMD_DIST_WORKER=w-survivor",
		"ROUGHSIMD_DIST_COORD_URL="+base)
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.cmd.Wait()

	// The job must still complete under its original ID: the victim's
	// lease expires (TTL 2s), its column re-queues, the survivor solves
	// it. Telemetry must show exactly that loss path.
	res := waitSucceeded(t, base, info.ID)
	counters := scrapeCounters(t, base)
	if got := sumCounterPrefix(counters, "lease.expired"); got < 1 {
		t.Errorf("lease.expired = %d, want ≥ 1 (the killed worker's lease)", got)
	}
	if got := counters["lease.requeued"]; got < 1 {
		t.Errorf("lease.requeued = %d, want ≥ 1", got)
	}
	if got := counters["lease.columns_remote"]; got < 1 {
		t.Errorf("lease.columns_remote = %d, want ≥ 1", got)
	}
	if got := counters[`lease.completes{worker="w-victim"}`]; got != 0 {
		t.Errorf("the killed worker completed %d columns, want 0", got)
	}

	// Drain the survivor and the coordinator gracefully.
	survivor.cmd.Process.Signal(syscall.SIGTERM)
	if err := survivor.cmd.Wait(); err != nil {
		t.Fatalf("survivor did not drain cleanly: %v", err)
	}
	coord.cmd.Process.Signal(syscall.SIGTERM)
	if err := coord.cmd.Wait(); err != nil {
		t.Fatalf("coordinator did not drain cleanly: %v", err)
	}

	// Byte-identical to a plain single-process run of the same sweep.
	ref := startServer(t, Config{Workers: 2, QueueDepth: 8, CacheSize: 64})
	defer ref.shutdown(t)
	want := ref.submitAndWait(t, tinyConfig(5e9))
	if !bytes.Equal(res, want) {
		t.Fatalf("distributed result differs from single-process:\ndistributed: %s\nreference:   %s", res, want)
	}
}
