package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"roughsim"
	"roughsim/internal/jobs"
	"roughsim/internal/rescache"
	"roughsim/internal/surrogate"
	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
)

// This file is the surrogate fast path of roughsimd: admitted K(f)
// models are served from the registry in microseconds, and everything
// else — building, rejected, out of band, cold — falls back to the
// exact sweep tier, transparently enqueueing the exact computation so
// a later identical query gets the exact answer from cache.
//
//	POST   /v1/surrogates        submit a roughsim.SurrogateConfig; 202 + build job
//	GET    /v1/surrogates        list admission records (+ in-flight builds)
//	GET    /v1/surrogates/{key}  one admission record
//	DELETE /v1/surrogates/{key}  evict from memory and disk
//	GET    /k?key=…&f=…          closed-form E[K], Var[K] (admitted), or fallback

// surrogateBuildPayload is the POST /v1/surrogates response: the
// content address to poll plus the admission job.
type surrogateBuildPayload struct {
	Key string `json:"key"`
	Job any    `json:"job"`
}

// kPayload is the GET /k success body (the fast path and the
// exact-cache fallback share it).
type kPayload struct {
	Key       string  `json:"key"`
	FreqHz    float64 `json:"freq_hz"`
	KSWM      float64 `json:"k_swm"`
	Variance  float64 `json:"variance,omitempty"`
	Source    string  `json:"source"` // "surrogate" | "exact-cache"
	MaxRelErr float64 `json:"max_rel_err,omitempty"`
}

// kFallbackPayload is the GET /k 202 body: the exact computation was
// enqueued; poll the job, then re-query.
type kFallbackPayload struct {
	Key    string `json:"key"`
	Reason string `json:"reason"`
	Job    any    `json:"job"`
}

func (s *Server) fallbackCounter(reason string) *telemetry.Counter {
	return s.metrics.CounterL("surrogate.fallback", telemetry.L("reason", reason))
}

// surrogateSource adapts the memoized Simulation for cfg to
// surrogate.Source (KL modes are built at most once per solver config,
// shared with the sweep tier).
func (s *Server) surrogateSource(cfg roughsim.SurrogateConfig) (surrogate.Source, error) {
	return s.simFor(roughsim.SweepConfig{Stack: cfg.Stack, Spec: cfg.Spec, Acc: cfg.Acc, Freqs: []float64{cfg.FMinHz}})
}

// handleSurrogateSubmit queues the fit → validate → admit pipeline for
// the posted config. Identical concurrent submissions share one build
// (registry single-flight); an already-resolved key returns its record
// without queueing.
func (s *Server) handleSurrogateSubmit(w http.ResponseWriter, r *http.Request) {
	var cfg roughsim.SurrogateConfig
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeDecodeError(w, err)
		return
	}
	cfg = cfg.WithDefaults()
	spec, err := cfg.FitSpec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.validate(roughsim.SweepConfig{Stack: cfg.Stack, Spec: cfg.Spec, Acc: cfg.Acc, Freqs: []float64{cfg.FMinHz, cfg.FMaxHz}}); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if rec, ok := s.surrogates.Peek(spec.Key); ok && rec.Status != surrogate.StatusBuilding {
		writeJSON(w, http.StatusOK, rec)
		return
	}
	job, err := s.queue.Submit(func(ctx context.Context, progress func(done, total int)) (any, error) {
		progress(0, 1)
		// Simulation construction (KL modes) happens on the worker, not
		// the request path.
		src, err := s.surrogateSource(cfg)
		if err != nil {
			return nil, err
		}
		rec, err := s.surrogates.GetOrBuild(ctx, src, spec)
		if err != nil {
			return nil, err
		}
		progress(1, 1)
		return rec, nil
	})
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeRetryError(w, http.StatusTooManyRequests, s.drainEstimate(s.queue.Depth()), err)
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, surrogateBuildPayload{Key: spec.Key.String(), Job: s.status(job)})
}

// handleSurrogateList serves every admission record the registry holds.
func (s *Server) handleSurrogateList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.surrogates.List())
}

func (s *Server) surrogateKey(w http.ResponseWriter, r *http.Request) (rescache.Key, bool) {
	key, err := rescache.ParseKey(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return rescache.Key{}, false
	}
	return key, true
}

func (s *Server) handleSurrogateGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.surrogateKey(w, r)
	if !ok {
		return
	}
	rec, ok := s.surrogates.Peek(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no surrogate %s", key))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleSurrogateEvict(w http.ResponseWriter, r *http.Request) {
	key, ok := s.surrogateKey(w, r)
	if !ok {
		return
	}
	if !s.surrogates.Evict(key) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no surrogate %s", key))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"evicted": key.String()})
}

// handleK is the low-latency query endpoint. The hot path — an
// admitted in-band model — is a registry lookup plus a closed-form
// evaluation, no queue, no solver, no allocation beyond the response.
// Every other case falls back to the exact tier: a cached exact point
// is served directly, anything else transparently enqueues the exact
// single-frequency sweep and returns 202 with the job to poll.
func (s *Server) handleK(w http.ResponseWriter, r *http.Request) {
	key, err := rescache.ParseKey(r.URL.Query().Get("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Shard routing: the owning shard holds the admitted surrogate and
	// the warm exact-point cache for this key.
	if s.routeAway(w, r, key.String()) {
		return
	}
	f, err := strconv.ParseFloat(r.URL.Query().Get("f"), 64)
	if err != nil || !(f > 0) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid frequency %q", r.URL.Query().Get("f")))
		return
	}

	rec, ok := s.surrogates.Get(key)
	if !ok {
		s.fallbackCounter("unknown").Inc()
		writeError(w, http.StatusNotFound, fmt.Errorf("no surrogate %s (submit it via POST /v1/surrogates)", key))
		return
	}
	if rec.Status == surrogate.StatusAdmitted && rec.Model.InBand(f) {
		start := time.Now()
		_, span := trace.StartSpan(r.Context(), "surrogate.eval")
		mean, merr := rec.Model.Mean(f)
		variance, verr := rec.Model.Variance(f)
		span.End()
		if merr == nil && verr == nil {
			s.surrogates.ObserveEval(time.Since(start).Seconds())
			writeJSON(w, http.StatusOK, kPayload{
				Key: rec.Key, FreqHz: f, KSWM: mean, Variance: variance,
				Source: "surrogate", MaxRelErr: rec.MaxRelErr,
			})
			return
		}
		writeError(w, http.StatusInternalServerError, errors.Join(merr, verr))
		return
	}
	s.fallbackK(w, rec, f)
}

// fallbackK serves GET /k for a non-servable record: exact cache hit
// when the point is already known, otherwise enqueue the exact
// single-frequency sweep.
func (s *Server) fallbackK(w http.ResponseWriter, rec *surrogate.Record, f float64) {
	reason := string(rec.Status)
	if rec.Status == surrogate.StatusAdmitted {
		reason = "out_of_band"
	}
	s.fallbackCounter(reason).Inc()

	var cfg roughsim.SurrogateConfig
	if err := json.Unmarshal(rec.Spec.Meta, &cfg); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("surrogate %s has no usable config for fallback: %w", rec.Key, err))
		return
	}
	sweep := roughsim.SweepConfig{Stack: cfg.Stack, Spec: cfg.Spec, Acc: cfg.Acc, Freqs: []float64{f}}.WithDefaults()
	if v, ok := s.cache.Get(sweep.KeyAt(f)); ok {
		pt := v.(roughsim.SweepPoint)
		writeJSON(w, http.StatusOK, kPayload{Key: rec.Key, FreqHz: f, KSWM: pt.KSWM, Source: "exact-cache"})
		return
	}
	// The cache read above is the fast path an open breaker preserves;
	// only the exact-solve enqueue below sits behind the gate. Cost 1
	// keeps single-point fallbacks admitted under queue pressure.
	if retry, err := s.admit(1); err != nil {
		writeRetryError(w, http.StatusTooManyRequests, retry, err)
		return
	}
	job, err := s.submitSweep(sweep)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeRetryError(w, http.StatusTooManyRequests, s.drainEstimate(s.queue.Depth()), err)
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, kFallbackPayload{Key: rec.Key, Reason: reason, Job: s.status(job)})
}
