package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"roughsim"
	"roughsim/internal/campaign"
	"roughsim/internal/jobs"
	"roughsim/internal/journal"
)

// This file wires the campaign engine into the HTTP tier: cells fan out
// through the same bounded queue as interactive sweeps (under the
// campaign's own concurrency cap), durability rides on one campaign
// journal record plus the content-addressed result cache, and the
// combined artifact is served as JSON or CSV.

// cellRunner adapts the server's queue + result cache to
// campaign.Runner.
type cellRunner struct{ s *Server }

func (r cellRunner) Submit(cfg roughsim.SweepConfig) (campaign.Handle, error) {
	id := jobs.NewID()
	// Cell jobs skip the per-job journal protocol: the campaign record
	// already covers them, and their results are durable in the cache.
	r.s.markUnjournaled(id)
	job, err := r.s.queue.SubmitOpts(r.s.runSweep(cfg), r.s.submitOptions(id, 0))
	if err != nil {
		r.s.clearUnjournaled(id)
		if errors.Is(err, jobs.ErrQueueFull) {
			// Backpressure, not failure: the engine parks and retries.
			return nil, fmt.Errorf("%w: %v", campaign.ErrBusy, err)
		}
		return nil, err
	}
	return cellHandle{job: job, q: r.s.queue}, nil
}

// Cached reports a complete sweep already in the result cache — how a
// resumed campaign skips every cell that finished before the crash.
func (r cellRunner) Cached(cfg roughsim.SweepConfig) (*roughsim.SweepResult, bool) {
	pts := make([]roughsim.SweepPoint, len(cfg.Freqs))
	for i, f := range cfg.Freqs {
		v, ok := r.s.cache.Get(cfg.KeyAt(f))
		if !ok {
			return nil, false
		}
		pts[i] = v.(roughsim.SweepPoint)
	}
	return &roughsim.SweepResult{Config: cfg, Points: pts}, true
}

// cellHandle exposes one queued cell job to the engine.
type cellHandle struct {
	job *jobs.Job
	q   *jobs.Queue
}

func (h cellHandle) ID() string            { return h.job.ID }
func (h cellHandle) Done() <-chan struct{} { return h.job.Done() }
func (h cellHandle) Cancel()               { h.q.Cancel(h.job.ID) }

func (h cellHandle) Result() (*roughsim.SweepResult, error) {
	v, err := h.job.Result()
	if err != nil {
		return nil, err
	}
	res, ok := v.(*roughsim.SweepResult)
	if !ok {
		return nil, fmt.Errorf("server: cell job %s returned %T, not a sweep result", h.job.ID, v)
	}
	return res, nil
}

func (s *Server) markUnjournaled(id string) {
	s.unjMu.Lock()
	s.unjournaled[id] = struct{}{}
	s.unjMu.Unlock()
}

func (s *Server) isUnjournaled(id string) bool {
	s.unjMu.Lock()
	_, ok := s.unjournaled[id]
	s.unjMu.Unlock()
	return ok
}

// clearUnjournaled removes the mark, reporting whether it was set.
func (s *Server) clearUnjournaled(id string) bool {
	s.unjMu.Lock()
	_, ok := s.unjournaled[id]
	delete(s.unjournaled, id)
	s.unjMu.Unlock()
	return ok
}

// campaignCellDone journals one finished cell. The chaos point sits
// BEFORE the append and after the cell's points are durable in the
// result cache — "crash at the n-th campaign cell" then leaves a
// journal that under-counts done cells, the state resume must tolerate
// (the cache probe, not the journal, decides what re-runs).
func (s *Server) campaignCellDone(id string, cell int) {
	n := s.campCellSeq.Add(1)
	s.chaos.Crash("campaign.cell", n)
	if s.journal == nil {
		return
	}
	s.journal.Append(journal.Record{
		Op: journal.OpCampaignCellDone, JobID: id,
	}.WithAnchor(cell))
}

// campaignTerminal closes the campaign out in the journal. Cancellation
// caused by the shutdown drain is deliberately NOT journaled — exactly
// like job terminals — so a restart resumes the campaign.
func (s *Server) campaignTerminal(id string, st campaign.Status, cerr error) {
	if st == campaign.StatusCanceled && s.queue.Draining() {
		return
	}
	if s.journal == nil {
		return
	}
	rec := journal.Record{JobID: id}
	switch st {
	case campaign.StatusSucceeded:
		rec.Op = journal.OpCampaignCompleted
	case campaign.StatusFailed:
		rec.Op = journal.OpCampaignFailed
	default:
		rec.Op = journal.OpCampaignCanceled
	}
	if cerr != nil {
		rec.Error = cerr.Error()
	}
	s.journal.Append(rec)
}

func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	var cfg roughsim.CampaignConfig
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeDecodeError(w, err)
		return
	}
	cfg = cfg.WithDefaults()
	cells, err := cfg.ExpandCells()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(cells) > s.cfg.MaxCampaignCells {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"campaign expands to %d cells; the service limit is %d", len(cells), s.cfg.MaxCampaignCells))
		return
	}
	for i, c := range cells {
		if err := s.validate(c); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cell %d: %w", i, err))
			return
		}
	}
	// A campaign is hours of batch work riding on the journal and the
	// cache's disk tier: refuse to accept one onto a wedged disk.
	if h := s.readiness(); !h.Ready {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("service not ready: %s", h.unready()))
		return
	}
	if wait, ok := s.brk.Allow(); !ok {
		writeRetryError(w, http.StatusTooManyRequests, wait,
			fmt.Errorf("circuit breaker open: exact-solve tier is failing; retry after cooldown"))
		return
	}
	id, err := cfg.ID()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Idempotent by content address: re-POSTing the same study returns
	// the existing campaign (200) instead of relaunching it.
	if c, ok := s.camps.Get(id); ok {
		writeJSON(w, http.StatusOK, c.Aggregate(false))
		return
	}
	if s.journal != nil {
		raw, err := json.Marshal(cfg)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("encode campaign for journal: %w", err))
			return
		}
		// Journal-before-start: an acknowledged campaign always survives
		// a crash.
		if err := s.journal.Append(journal.Record{
			Op: journal.OpCampaignSubmitted, JobID: id, Key: id, Config: raw,
		}); err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("journal campaign: %w", err))
			return
		}
	}
	c, created, err := s.camps.Start(cfg)
	if err != nil {
		s.campaignTerminal(id, campaign.StatusFailed, err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if !created {
		status = http.StatusOK
	}
	writeJSON(w, status, c.Aggregate(false))
}

func (s *Server) campaignByID(w http.ResponseWriter, r *http.Request) (*campaign.Campaign, bool) {
	c, ok := s.camps.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such campaign %q", r.PathValue("id")))
		return nil, false
	}
	return c, true
}

func (s *Server) handleCampaignList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.camps.List())
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.campaignByID(w, r); ok {
		writeJSON(w, http.StatusOK, c.Aggregate(true))
	}
}

// handleCampaignDelete cancels a running campaign; deleting a terminal
// one forgets it (its cell results stay cached).
func (s *Server) handleCampaignDelete(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignByID(w, r)
	if !ok {
		return
	}
	if agg := c.Aggregate(false); agg.Status.Terminal() {
		if err := s.camps.Remove(c.ID); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, agg)
		return
	}
	c.Cancel()
	writeJSON(w, http.StatusOK, c.Aggregate(false))
}

// handleCampaignEvents streams SSE aggregate progress: one "progress"
// event per observed change, then a final "done" event carrying the
// per-cell detail. Same event discipline as the sweep /stream handler.
func (s *Server) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignByID(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	defer rc.SetWriteDeadline(time.Time{})
	emit := func(event string, v any) error {
		b, _ := json.Marshal(v)
		rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout))
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}
	var last campaign.Aggregate
	first := true
	for {
		ch := c.Changed()
		agg := c.Aggregate(false)
		if first || campaignProgressed(last, agg) {
			if err := emit("progress", agg); err != nil {
				s.streamClosed(c.ID, err)
				return
			}
			last, first = agg, false
			continue
		}
		if agg.Status.Terminal() {
			if err := emit("done", c.Aggregate(true)); err != nil {
				s.streamClosed(c.ID, err)
			}
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func campaignProgressed(a, b campaign.Aggregate) bool {
	return a.Status != b.Status ||
		a.CellsDone != b.CellsDone || a.CellsRunning != b.CellsRunning ||
		a.CellsFailed != b.CellsFailed || a.CellsCached != b.CellsCached ||
		a.CellsCanceled != b.CellsCanceled
}

// handleCampaignResult serves the combined artifact with content
// negotiation: JSON by default, CSV via ?format=csv or Accept:
// text/csv.
func (s *Server) handleCampaignResult(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignByID(w, r)
	if !ok {
		return
	}
	agg := c.Aggregate(false)
	if !agg.Status.Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf("campaign %s is %s; result not ready", c.ID, agg.Status))
		return
	}
	art := c.Artifact()
	if r.URL.Query().Get("format") == "csv" || strings.Contains(r.Header.Get("Accept"), "text/csv") {
		w.Header().Set("Content-Type", "text/csv")
		w.WriteHeader(http.StatusOK)
		if err := art.WriteCSV(w); err != nil {
			s.log.Warn("campaign csv write failed", "campaign", c.ID, "err", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, art)
}

// healthFacet is one readiness probe result.
type healthFacet struct {
	Name  string `json:"name"`
	Path  string `json:"path"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// healthPayload is the /healthz body: liveness (it answered) plus
// readiness facets over the durable directories.
type healthPayload struct {
	Status string        `json:"status"` // "ok" | "degraded"
	Ready  bool          `json:"ready"`
	Facets []healthFacet `json:"facets,omitempty"`
}

func (h healthPayload) unready() string {
	var parts []string
	for _, f := range h.Facets {
		if !f.OK {
			parts = append(parts, fmt.Sprintf("%s (%s): %s", f.Name, f.Path, f.Error))
		}
	}
	return strings.Join(parts, "; ")
}

// readiness probes the journal and cache directories for writability —
// the two places a campaign's durability lives. Facets only exist for
// configured tiers: a memory-only server is always ready.
func (s *Server) readiness() healthPayload {
	h := healthPayload{Status: "ok", Ready: true}
	probe := func(name, dir string) {
		f := healthFacet{Name: name, Path: dir, OK: true}
		if err := probeDir(dir); err != nil {
			f.OK = false
			f.Error = err.Error()
			h.Ready = false
			h.Status = "degraded"
		}
		h.Facets = append(h.Facets, f)
	}
	if s.cfg.JournalPath != "" {
		probe("journal", filepath.Dir(s.cfg.JournalPath))
	}
	if s.cfg.CacheDir != "" {
		probe("cache", s.cfg.CacheDir)
	}
	return h
}

// probeDir verifies dir is (creatable and) writable by round-tripping a
// temp file — an actual write, not a permission-bit guess, so it also
// catches full and read-only filesystems.
func probeDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".healthz-*")
	if err != nil {
		return err
	}
	name := f.Name()
	if err := f.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Remove(name)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.readiness()
	status := http.StatusOK
	if !h.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
