// Package server is the HTTP tier of roughsimd: sweep jobs are
// submitted to a bounded queue, executed by a fixed worker pool, and
// their per-frequency K(f) records served from a content-addressed
// result cache, so identical work is computed once across requests,
// restarts (with a disk tier) and concurrent submissions
// (single-flight).
//
// API (all JSON):
//
//	POST /v1/sweeps            submit a roughsim.SweepConfig; 202 + job info
//	GET  /v1/sweeps/{id}       job status + progress
//	GET  /v1/sweeps/{id}/result  the roughsim.SweepResult (when succeeded)
//	GET  /v1/sweeps/{id}/stream  SSE progress events until terminal
//	DELETE /v1/sweeps/{id}     cancel a queued or running job
//	POST /v1/campaigns         submit a roughsim.CampaignConfig (a parameter
//	                           grid); 202 + aggregate, idempotent by content ID
//	GET  /v1/campaigns         list campaign aggregates
//	GET  /v1/campaigns/{id}    aggregate + per-cell detail
//	DELETE /v1/campaigns/{id}  cancel a running campaign / forget a terminal one
//	GET  /v1/campaigns/{id}/events  SSE aggregate progress until terminal
//	GET  /v1/campaigns/{id}/result  combined artifact (JSON; CSV with
//	                           ?format=csv or Accept: text/csv)
//	POST /v1/sparams           submit a roughsim.SParamConfig; 200 + artifact
//	                           on a store hit, else 202 + generation job
//	GET  /v1/sparams/{id}      artifact by content address (JSON; raw .s2p
//	                           with ?format=s2p or Accept:
//	                           application/x-touchstone) or job status
//	GET  /v1/sparams/{id}/stream  SSE progress of a generation job
//	POST /v1/surrogates        fit + validate + admit a broadband K(f) model
//	GET  /v1/surrogates        list surrogate admission records
//	GET  /v1/surrogates/{key}  one admission record
//	DELETE /v1/surrogates/{key}  evict a surrogate (memory + disk)
//	GET  /k?key=…&f=…          closed-form K query (sub-ms on admitted models;
//	                           falls back to the exact sweep tier otherwise)
//	GET  /metrics              telemetry snapshot (JSON; Prometheus text
//	                           on ?format=prometheus or a scraper Accept)
//	GET  /healthz              liveness + readiness facets (journal/cache
//	                           directory writability; 503 when degraded)
//	GET  /debug/trace/{id}     full span tree of a job's trace
//	GET  /debug/traces         per-stage rollups of recent traces
//	GET  /debug/pprof/...      stdlib profiler (only with EnablePprof)
//
// The record schema of /result is exactly what `roughsim -json` emits,
// so CLI and service outputs are diffable; /result carries the job's
// trace ID in an X-Trace-ID header instead of in the body.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"roughsim"
	"roughsim/internal/campaign"
	"roughsim/internal/cluster"
	"roughsim/internal/jobs"
	"roughsim/internal/journal"
	"roughsim/internal/rescache"
	"roughsim/internal/resilience"
	"roughsim/internal/surrogate"
	"roughsim/internal/telemetry"
	"roughsim/internal/trace"
)

// Config sizes the service tier. Zero values select the defaults noted
// on each field.
type Config struct {
	Workers    int           // queue worker pool (default 2)
	QueueDepth int           // bounded FIFO capacity (default 64)
	JobTimeout time.Duration // per-job deadline (default none)
	CacheSize  int           // memory-tier entries (default 4096)
	CacheDir   string        // disk tier directory ("" disables)
	// TableCacheSize bounds the shared Green's-function table cache
	// (table sets across all jobs and configs; default a service-sized
	// cap — see roughsim.NewTableCache).
	TableCacheSize int
	// SurrogateCap bounds the memory tier of the surrogate registry
	// (admission records; default 64).
	SurrogateCap int
	// SurrogateDir enables the surrogate registry's persistent tier
	// ("" disables): admitted models survive restarts.
	SurrogateDir string
	// Limits guard the service against pathological requests.
	MaxGrid  int // largest accepted GridPerSide (default 64)
	MaxDim   int // largest accepted StochasticDim (default 32)
	MaxFreqs int // longest accepted frequency list (default 256)
	// Metrics receives every tier's telemetry; default a fresh registry.
	Metrics *telemetry.Registry
	// TraceCapacity bounds the ring of retained job traces (default
	// trace.DefaultRecorderCap).
	TraceCapacity int
	// JournalPath enables the write-ahead job journal ("" disables):
	// every accepted sweep is durably recorded before its 202, and a
	// restart against the same path re-enqueues unfinished jobs under
	// their original IDs.
	JournalPath string
	// MaxAttempts bounds how many times a transiently failing job runs
	// before it fails permanently (default 3; 1 disables retries).
	MaxAttempts int
	// CampaignCells caps the sweep cells one campaign keeps in flight
	// (default Workers−1, floor 1), so batch campaigns cannot starve
	// interactive sweeps of the worker pool.
	CampaignCells int
	// MaxCampaignCells bounds the expanded cell count of an accepted
	// campaign (default 512).
	MaxCampaignCells int
	// RetryBase is the base of the exponential between-attempt backoff
	// (default 250ms).
	RetryBase time.Duration
	// Breaker tunes the exact-solve circuit breaker (see BreakerConfig).
	Breaker BreakerConfig
	// Chaos, when non-nil, injects deterministic faults (crash points)
	// for resilience testing. Never set it in production.
	Chaos *resilience.Injector
	// Cluster wires the distributed compute plane (see ClusterConfig);
	// the zero value keeps the server single-process.
	Cluster ClusterConfig
	// ReadHeaderTimeout/IdleTimeout harden the HTTP server against slow
	// or abandoned connections (defaults 10s / 2m).
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
	// StreamWriteTimeout bounds each SSE event write on /stream
	// (default 30s; long-lived streams stay open — only a single
	// stalled write tears a stream down).
	StreamWriteTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiler exposes stacks and heap contents.
	EnablePprof bool
	// Log receives the structured request log (key=value via slog).
	// Default discards, so library/test use stays silent.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.MaxGrid <= 0 {
		c.MaxGrid = 64
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 32
	}
	if c.MaxFreqs <= 0 {
		c.MaxFreqs = 256
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.CampaignCells <= 0 {
		c.CampaignCells = c.Workers - 1
		if c.CampaignCells < 1 {
			c.CampaignCells = 1
		}
	}
	if c.MaxCampaignCells <= 0 {
		c.MaxCampaignCells = 512
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 10 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.StreamWriteTimeout <= 0 {
		c.StreamWriteTimeout = 30 * time.Second
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server wires the queue, cache and metrics behind an http.Handler.
type Server struct {
	cfg     Config
	queue   *jobs.Queue
	cache   *rescache.Cache
	metrics *telemetry.Registry
	tracer  *trace.Recorder
	log     *slog.Logger
	reqID   atomic.Int64
	mux     *http.ServeMux
	http    *http.Server

	// surrogates is the content-addressed registry of broadband K(f)
	// models behind POST /v1/surrogates and the GET /k fast path.
	surrogates *surrogate.Registry

	// tables is the shared Green's-function table cache: every
	// simulation the server builds attaches to it, so concurrent sweeps
	// at overlapping frequency grids build each table exactly once.
	tables *roughsim.TableCache

	// sims memoizes constructed simulations (KL modes are expensive)
	// keyed by the frequency-independent part of the config. Bounded by
	// simCacheCap with whole-map reset — solver configs are few in
	// practice.
	simMu sync.Mutex
	sims  map[rescache.Key]*roughsim.Simulation

	// flights single-flight identical concurrent sweep jobs (keyed by
	// the whole-sweep content address): one job computes, the rest wait
	// and share the result.
	flightMu sync.Mutex
	flights  map[rescache.Key]*sweepFlight

	// journal is the write-ahead job journal (nil when disabled); see
	// durable.go for the submit/replay protocol.
	journal *journal.Journal

	// ckpts holds in-flight sweeps' per-node checkpoint columns —
	// deliberately a separate cache from the result cache: its disk tier
	// stores []float64 columns under its own codec, so a column can
	// never be misdecoded as a SweepPoint (or quarantined as one).
	ckpts *rescache.Cache

	// ckptCfgs remembers, per job, the residual sweep config whose
	// checkpoint keys the job may have written, so the terminal observer
	// can purge them.
	ckptMu   sync.Mutex
	ckptCfgs map[string]roughsim.SweepConfig
	ckptSeq  atomic.Uint64 // server-wide checkpoint-save ordinal (chaos occurrence key)
	// ckptWriteMu serializes checkpoint persistence so the save ordinal
	// is meaningful: "crash at the n-th save" then always leaves exactly
	// n-1 durable columns, independent of engine worker interleaving.
	ckptWriteMu sync.Mutex

	// brk is the exact-solve circuit breaker; chaos the fault injector.
	brk   *breaker
	chaos *resilience.Injector

	// camps is the campaign engine (batch parameter studies fanning out
	// through the same queue under their own concurrency cap).
	camps *campaign.Engine
	// unjournaled marks campaign cell jobs: their durability is the
	// campaign's journal record plus the result cache, so the per-job
	// journal protocol skips them.
	unjMu       sync.Mutex
	unjournaled map[string]struct{}
	// campCellSeq orders campaign cell completions server-wide (the
	// campaign.cell chaos occurrence key).
	campCellSeq atomic.Uint64

	// leases is the coordinator-side claim/renew/complete ledger of the
	// distributed compute plane (nil unless Role is coordinator); ring
	// the consistent-hash shard router (nil unless peers are configured).
	leases *jobs.LeaseTable
	ring   *cluster.Ring

	// sparArts is the content-addressed store of validated S-parameter
	// artifacts (POST /v1/sparams); sparInFlight/sparJobs track live
	// generation jobs both ways (address → job for request coalescing,
	// job → address for terminal cleanup); sparSeq orders artifact
	// persists server-wide (the sparams.artifact chaos occurrence key).
	sparArts     *rescache.Cache
	sparMu       sync.Mutex
	sparInFlight map[rescache.Key]string
	sparJobs     map[string]rescache.Key
	sparSeq      atomic.Uint64
}

// sweepFlight is one in-flight sweep computation.
type sweepFlight struct {
	done chan struct{}
	res  *roughsim.SweepResult
	err  error
}

const simCacheCap = 32

// pointCodec (de)serializes SweepPoints for the cache's disk tier.
func pointCodec() rescache.Codec {
	return rescache.Codec{
		Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		Decode: func(b []byte) (any, error) {
			var p roughsim.SweepPoint
			if err := json.Unmarshal(b, &p); err != nil {
				return nil, err
			}
			return p, nil
		},
	}
}

// New builds the server (starting its worker pool).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Cluster.validate(); err != nil {
		return nil, err
	}
	queue, err := jobs.NewQueue(cfg.Workers, cfg.QueueDepth, cfg.JobTimeout, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	cacheOpt := rescache.Options{Metrics: cfg.Metrics}
	if cfg.CacheDir != "" {
		cacheOpt.Dir = cfg.CacheDir
		cacheOpt.Codec = pointCodec()
	}
	cache, err := rescache.New(cfg.CacheSize, cacheOpt)
	if err != nil {
		queue.Drain(context.Background())
		return nil, err
	}
	// The checkpoint cache always exists (in-process retries resume from
	// it); the disk tier — what crash recovery needs — rides along with
	// the result cache's CacheDir.
	ckptOpt := rescache.Options{Metrics: cfg.Metrics}
	if cfg.CacheDir != "" {
		ckptOpt.Dir = filepath.Join(cfg.CacheDir, "checkpoints")
		ckptOpt.Codec = colCodec()
	}
	ckpts, err := rescache.New(cfg.CacheSize, ckptOpt)
	if err != nil {
		queue.Drain(context.Background())
		return nil, err
	}
	// The artifact store follows the same tiering as results: memory
	// always, disk under CacheDir/sparams so admitted artifacts survive
	// restarts (and crash replays find pre-crash artifacts).
	sparOpt := rescache.Options{Metrics: cfg.Metrics}
	if cfg.CacheDir != "" {
		sparOpt.Dir = filepath.Join(cfg.CacheDir, "sparams")
		sparOpt.Codec = artifactCodec()
	}
	sparArts, err := rescache.New(cfg.CacheSize, sparOpt)
	if err != nil {
		queue.Drain(context.Background())
		return nil, err
	}
	s := &Server{
		cfg:          cfg,
		queue:        queue,
		cache:        cache,
		metrics:      cfg.Metrics,
		tracer:       trace.NewRecorder(cfg.TraceCapacity),
		log:          cfg.Log,
		mux:          http.NewServeMux(),
		tables:       roughsim.NewTableCache(cfg.TableCacheSize, cfg.Metrics),
		surrogates:   surrogate.NewRegistry(cfg.SurrogateCap, cfg.SurrogateDir, cfg.Metrics),
		sims:         map[rescache.Key]*roughsim.Simulation{},
		flights:      map[rescache.Key]*sweepFlight{},
		ckpts:        ckpts,
		ckptCfgs:     map[string]roughsim.SweepConfig{},
		brk:          newBreaker(cfg.Breaker, cfg.Metrics),
		chaos:        cfg.Chaos,
		unjournaled:  map[string]struct{}{},
		sparArts:     sparArts,
		sparInFlight: map[rescache.Key]string{},
		sparJobs:     map[string]rescache.Key{},
	}
	queue.SetTracer(s.tracer)
	// The observer (journal terminal records, breaker outcomes,
	// checkpoint purge) must be live before replay re-enqueues anything.
	queue.SetObserver(s.observeTerminal)
	// The campaign engine fans cells out through the same queue; it must
	// exist before journal replay resumes pending campaigns.
	s.camps = campaign.NewEngine(campaign.Options{
		Runner:        cellRunner{s},
		MaxConcurrent: cfg.CampaignCells,
		Metrics:       cfg.Metrics,
		Tracer:        s.tracer,
		CellSeconds:   cfg.Metrics.Histogram("queue.job_seconds"),
		Hooks: campaign.Hooks{
			CellDone: s.campaignCellDone,
			Terminal: s.campaignTerminal,
		},
	})
	// The compute plane (lease table, cluster endpoints, shard ring) must
	// exist before journal replay re-enqueues jobs: a replayed sweep may
	// reach the dispatcher as soon as a queue worker picks it up.
	s.initCluster()
	if cfg.JournalPath != "" {
		jnl, rep, err := journal.Open(cfg.JournalPath, cfg.Metrics)
		if err != nil {
			queue.Drain(context.Background())
			return nil, fmt.Errorf("server: open journal: %w", err)
		}
		s.journal = jnl
		s.replayPending(rep)
	}
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleStream)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleCampaignSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleCampaignList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignStatus)
	s.mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCampaignDelete)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleCampaignEvents)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/result", s.handleCampaignResult)
	s.mux.HandleFunc("POST /v1/sparams", s.handleSParamsSubmit)
	s.mux.HandleFunc("GET /v1/sparams/{id}", s.handleSParamsGet)
	s.mux.HandleFunc("GET /v1/sparams/{id}/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/surrogates", s.handleSurrogateSubmit)
	s.mux.HandleFunc("GET /v1/surrogates", s.handleSurrogateList)
	s.mux.HandleFunc("GET /v1/surrogates/{key}", s.handleSurrogateGet)
	s.mux.HandleFunc("DELETE /v1/surrogates/{key}", s.handleSurrogateEvict)
	s.mux.HandleFunc("GET /k", s.handleK)
	s.mux.Handle("GET /metrics", cfg.Metrics.Handler())
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.http = &http.Server{
		Handler: s.instrument(s.mux),
		// Slow-loris / abandoned-connection hardening. No global
		// WriteTimeout: /stream is legitimately long-lived — its writes
		// are bounded per event instead (see handleStream).
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		IdleTimeout:       cfg.IdleTimeout,
	}
	return s, nil
}

// Handler returns the API handler (also useful under a test server).
func (s *Server) Handler() http.Handler { return s.http.Handler }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Shutdown drains gracefully: the queue stops accepting work and
// finishes (or, past ctx, cancels) in-flight jobs, then the HTTP
// listener closes idle connections and waits for handlers.
func (s *Server) Shutdown(ctx context.Context) error {
	qerr := s.queue.Drain(ctx)
	herr := s.http.Shutdown(ctx)
	// Stop the lease expiry scanner after the drain: in-flight sweeps may
	// still be collecting remote columns until the drain completes.
	s.leases.Close()
	// The journal closes only after the drain: terminal records for jobs
	// the drain completed must land before the file does.
	if s.journal != nil {
		if jerr := s.journal.Close(); jerr != nil && qerr == nil && herr == nil {
			return jerr
		}
	}
	if qerr != nil {
		return qerr
	}
	return herr
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Unwrap lets http.NewResponseController reach the connection through
// the wrapper (per-event write deadlines on /stream).
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// flushWriter adds Flush only when the wrapped writer supports it, so
// handleStream's Flusher check still reflects the real connection.
type flushWriter struct {
	*statusWriter
	fl http.Flusher
}

func (fw *flushWriter) Flush() { fw.fl.Flush() }

// instrument counts requests and writes one structured log line per
// request, scoped by a monotonically increasing request ID.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Counter("server.requests").Inc()
		id := s.reqID.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		var out http.ResponseWriter = sw
		if fl, ok := w.(http.Flusher); ok {
			out = &flushWriter{statusWriter: sw, fl: fl}
		}
		next.ServeHTTP(out, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.log.Info("request",
			"req_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"duration", time.Since(start).Round(time.Microsecond).String(),
		)
	})
}

// statusPayload is the job-status JSON: the queue's Info plus the
// compact per-stage trace rollup (omitted when tracing is off).
type statusPayload struct {
	jobs.Info
	Trace *trace.StageSummary `json:"trace,omitempty"`
}

func (s *Server) status(j *jobs.Job) statusPayload {
	return statusPayload{Info: j.Snapshot(), Trace: j.Trace().Stages()}
}

// simFor returns (building on first use) the Simulation for the
// frequency-independent part of cfg.
func (s *Server) simFor(cfg roughsim.SweepConfig) (*roughsim.Simulation, error) {
	// Key the sim cache by the config at a fixed pseudo-frequency: KeyAt
	// already canonicalizes exactly the frequency-independent fields
	// plus f, so a constant f keys the solver config alone.
	key := cfg.KeyAt(1)
	s.simMu.Lock()
	defer s.simMu.Unlock()
	if sim, ok := s.sims[key]; ok {
		return sim, nil
	}
	sim, err := roughsim.NewSimulation(cfg.Stack, cfg.Spec, cfg.Acc)
	if err != nil {
		return nil, err
	}
	sim.WithMetrics(s.metrics).WithTableCache(s.tables)
	if len(s.sims) >= simCacheCap {
		s.sims = map[rescache.Key]*roughsim.Simulation{}
	}
	s.sims[key] = sim
	return sim, nil
}

// runSweep is the job body: the whole sweep executes as one planned
// unit. Identical concurrent jobs are single-flighted at sweep
// granularity, already-cached points are served from the result cache,
// and only the missing frequencies go to the batched engine — which
// shares collocation surfaces and Green's-function tables across them
// (and, through the server-wide table cache, across jobs).
func (s *Server) runSweep(cfg roughsim.SweepConfig) jobs.Runner {
	return func(ctx context.Context, progress func(done, total int)) (any, error) {
		meta, hasMeta := jobs.MetaFrom(ctx)
		s.journalStarted(meta, hasMeta)
		total := len(cfg.Freqs)
		progress(0, total)
		key := cfg.Key()
		s.flightMu.Lock()
		if fl, ok := s.flights[key]; ok {
			s.flightMu.Unlock()
			s.metrics.Counter("cache.singleflight_shared").Inc()
			select {
			case <-fl.done:
				if fl.err != nil {
					return nil, fl.err
				}
				progress(total, total)
				return fl.res, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		fl := &sweepFlight{done: make(chan struct{})}
		s.flights[key] = fl
		s.flightMu.Unlock()

		fl.res, fl.err = s.computeSweep(ctx, cfg, progress)
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(fl.done)
		if fl.err != nil {
			return nil, fl.err
		}
		return fl.res, nil
	}
}

// computeSweep resolves each frequency from the result cache and runs
// the batched engine over the rest, writing fresh points back through
// both cache tiers.
func (s *Server) computeSweep(ctx context.Context, cfg roughsim.SweepConfig, progress func(done, total int)) (*roughsim.SweepResult, error) {
	total := len(cfg.Freqs)
	points := make([]roughsim.SweepPoint, total)
	missing := make([]int, 0, total)
	for i, f := range cfg.Freqs {
		if v, ok := s.cache.Get(cfg.KeyAt(f)); ok {
			points[i] = v.(roughsim.SweepPoint)
		} else {
			missing = append(missing, i)
		}
	}
	cached := total - len(missing)
	progress(cached, total)
	if len(missing) > 0 {
		sim, err := s.simFor(cfg)
		if err != nil {
			return nil, err
		}
		mf := make([]float64, len(missing))
		for k, idx := range missing {
			mf[k] = cfg.Freqs[idx]
		}
		// Checkpoints key on the residual sweep the engine actually
		// executes (Freqs = mf): column lengths and keys then match on
		// resume if and only if the same residual work repeats.
		ckptCfg := cfg
		ckptCfg.Freqs = mf
		var jobID string
		if meta, ok := jobs.MetaFrom(ctx); ok {
			jobID = meta.JobID
		}
		// With live cluster workers, fan the missing columns out first:
		// every column that comes back lands in the checkpoint store, so
		// the engine run below loads it as a checkpoint hit and solves
		// only what the workers never delivered.
		if s.dispatchable() {
			if derr := s.dispatchColumns(ctx, jobID, ckptCfg, sim); derr != nil {
				return nil, fmt.Errorf("server: sweep: %w", derr)
			}
		}
		pts, err := sim.SweepPointsCheckpointed(ctx, mf, func(done, mt int) {
			if mt > 0 {
				progress(cached+done*len(missing)/mt, total)
			}
		}, s.checkpointStore(jobID, ckptCfg))
		if err != nil {
			return nil, fmt.Errorf("server: sweep: %w", err)
		}
		for k, idx := range missing {
			s.metrics.Counter("sweep.points_computed").Inc()
			s.cache.Put(cfg.KeyAt(mf[k]), pts[k])
			points[idx] = pts[k]
		}
	}
	progress(total, total)
	return &roughsim.SweepResult{Config: cfg, Points: points}, nil
}

// validate applies the service limits on top of SweepConfig.Validate.
func (s *Server) validate(cfg roughsim.SweepConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Acc.GridPerSide > s.cfg.MaxGrid {
		return fmt.Errorf("grid %d exceeds the service limit %d", cfg.Acc.GridPerSide, s.cfg.MaxGrid)
	}
	if cfg.Acc.StochasticDim > s.cfg.MaxDim {
		return fmt.Errorf("dim %d exceeds the service limit %d", cfg.Acc.StochasticDim, s.cfg.MaxDim)
	}
	if len(cfg.Freqs) > s.cfg.MaxFreqs {
		return fmt.Errorf("%d frequencies exceed the service limit %d", len(cfg.Freqs), s.cfg.MaxFreqs)
	}
	return nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var cfg roughsim.SweepConfig
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeDecodeError(w, err)
		return
	}
	cfg = cfg.WithDefaults()
	if err := s.validate(cfg); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Shard routing: identical sweeps must land on the shard whose
	// caches are warm for them (307 preserves method and body).
	if s.routeAway(w, r, cfg.Key().String()) {
		return
	}
	if retry, err := s.admit(len(cfg.Freqs)); err != nil {
		writeRetryError(w, http.StatusTooManyRequests, retry, err)
		return
	}
	job, err := s.submitSweep(cfg)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		// Overload, not outage: tell the client when to come back.
		writeRetryError(w, http.StatusTooManyRequests, s.drainEstimate(s.queue.Depth()), err)
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.status(job))
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, s.status(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.job(w, r); !ok {
		return
	}
	s.queue.Cancel(r.PathValue("id"))
	j, _ := s.queue.Get(r.PathValue("id"))
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleTrace serves the full span tree of one job's trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.tracer.Get(r.PathValue("id"))
	if tr == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace for job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, tr.Summary())
}

// handleTraces serves the per-stage rollups of recent traces, newest
// first (?n= bounds the count).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	sums := s.tracer.Recent(n)
	if sums == nil {
		sums = []*trace.StageSummary{}
	}
	writeJSON(w, http.StatusOK, sums)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	info := j.Snapshot()
	if !info.Status.Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s; result not ready", info.ID, info.Status))
		return
	}
	v, err := j.Result()
	if err != nil {
		status := http.StatusInternalServerError
		if resilience.Classify(err) == resilience.KindInvalidInput {
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, err)
		return
	}
	// The result body stays byte-diffable with `roughsim -json`; the
	// trace travels out of band.
	if id := j.Trace().ID(); id != "" {
		w.Header().Set("X-Trace-ID", id)
	}
	writeJSON(w, http.StatusOK, v)
}

// handleStream serves Server-Sent Events: one "progress" event per
// observed change plus a final "done" event with the terminal status.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// The stream is long-lived by design, so the server has no global
	// write timeout; instead each event write gets its own deadline — a
	// client that stops reading stalls one write, times out, and the
	// stream tears down instead of pinning the handler forever. Deadline
	// errors are ignored: test recorders don't implement the controller.
	rc := http.NewResponseController(w)
	defer rc.SetWriteDeadline(time.Time{})

	// emit reports write failures so a disconnected client tears the
	// stream down immediately instead of waiting for the context branch
	// of the select below to win.
	emit := func(event string, v any) error {
		b, _ := json.Marshal(v)
		rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout))
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}
	// Event-driven: the handler sleeps on the job's broadcast channel and
	// wakes only on actual state changes — no polling tick. Subscribing
	// before snapshotting makes missed updates impossible: any change
	// after the snapshot closes the channel we are about to select on.
	var last jobs.Info
	for {
		ch := j.Changed()
		info := j.Snapshot()
		if info.Done != last.Done || info.Status != last.Status {
			if err := emit("progress", info); err != nil {
				s.streamClosed(info.ID, err)
				return
			}
			last = info
			continue // drain further changes before sleeping
		}
		if info.Status.Terminal() {
			if err := emit("done", statusPayload{Info: info, Trace: j.Trace().Stages()}); err != nil {
				s.streamClosed(info.ID, err)
			}
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// streamClosed accounts an SSE write that failed because the client
// went away (the terminal-event error the old loop silently dropped).
func (s *Server) streamClosed(jobID string, err error) {
	s.metrics.Counter("stream.client_gone").Inc()
	s.log.Warn("stream write failed", "job", jobID, "err", err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
