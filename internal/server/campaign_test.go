package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"roughsim"
	"roughsim/internal/campaign"
	"roughsim/internal/jobs"
)

// chaosCampaign is the acceptance workload: a 3×3 σ×η grid (the σ=0 row
// is three flat reference cells) over a 4-point band, plus two explicit
// cells that duplicate grid cells — 11 requested, 9 planned.
func chaosCampaign() roughsim.CampaignConfig {
	return roughsim.CampaignConfig{
		Acc: roughsim.Accuracy{GridPerSide: 8, StochasticDim: 2},
		Grid: roughsim.CampaignGrid{
			Sigmas: roughsim.Axis{Values: []float64{0, 0.2e-6, 0.4e-6}},
			Etas:   roughsim.Axis{Values: []float64{1e-6, 1.5e-6, 2e-6}},
		},
		Cells: []roughsim.SurfaceSpec{
			{Corr: roughsim.GaussianCF, Sigma: 0.4e-6, Eta: 1e-6},
			{Corr: roughsim.GaussianCF, Sigma: 0.2e-6, Eta: 2e-6},
		},
		Band: &roughsim.BandSpec{FMinHz: 1e9, FMaxHz: 9e9, Points: 4},
	}
}

// waitCampaign polls a campaign until terminal and returns the final
// aggregate (with per-cell detail).
func waitCampaign(t *testing.T, base, id string) campaign.Aggregate {
	t.Helper()
	deadline := time.Now().Add(180 * time.Second)
	for {
		code, _, body := httpJSON(t, "GET", base+"/v1/campaigns/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("campaign status %s: %d %s", id, code, body)
		}
		var agg campaign.Aggregate
		if err := json.Unmarshal(body, &agg); err != nil {
			t.Fatal(err)
		}
		if agg.Status.Terminal() {
			return agg
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s not terminal in time: %+v", id, agg)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func campaignCSV(t *testing.T, base, id string) []byte {
	t.Helper()
	code, hdr, body := httpJSON(t, "GET", base+"/v1/campaigns/"+id+"/result?format=csv", nil)
	if code != http.StatusOK {
		t.Fatalf("campaign csv: %d %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("csv Content-Type = %q", ct)
	}
	return body
}

// TestCampaignChaosKillAndResume is the campaign-level crash drill: a
// campaign survives kill -9 mid-run, resumes under its original ID
// re-running only unfinished cells (cached cells are not re-solved, the
// duplicates were folded once), and its CSV artifact is byte-identical
// to an uninterrupted run.
func TestCampaignChaosKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemons and runs solvers")
	}
	dir := t.TempDir()
	body := mustJSON(t, chaosCampaign())

	// Phase 1: the grid expands σ-slowest, so cell-done events 1-3 are
	// the flat σ=0 row; arming the injector at the 4th event crashes
	// right after the first rough cell's points are durable in the
	// result cache but before its journal record — the worst case the
	// resume path must tolerate.
	cmd1, addr1 := spawnHelper(t, dir, "campaign.cell:4")
	code, _, resp := httpJSON(t, "POST", "http://"+addr1+"/v1/campaigns", body)
	if code != http.StatusAccepted {
		cmd1.Process.Kill()
		t.Fatalf("campaign submit: %d %s", code, resp)
	}
	var agg campaign.Aggregate
	if err := json.Unmarshal(resp, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.CellsTotal != 9 || agg.DuplicatesFolded != 2 {
		t.Fatalf("planned %d cells / %d folded, want 9 / 2: %s", agg.CellsTotal, agg.DuplicatesFolded, resp)
	}
	err := cmd1.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 137 {
		t.Fatalf("helper exit = %v, want chaos crash status 137", err)
	}

	// Phase 2: restart against the same journal + cache. The campaign
	// must resume under its original content-addressed ID, recognize the
	// crashed-after cell from the cache, and finish the rest.
	cmd2, addr2 := spawnHelper(t, dir, "")
	base2 := "http://" + addr2
	final := waitCampaign(t, base2, agg.ID)
	if final.Status != campaign.StatusSucceeded {
		t.Fatalf("resumed campaign ended %s: %s", final.Status, final.Error)
	}
	if final.CellsDone != 9 || final.CellsFailed != 0 {
		t.Fatalf("resumed aggregate: %+v", final)
	}
	counters := scrapeCounters(t, base2)
	if got := counters["journal.campaigns_replayed"]; got != 1 {
		t.Errorf("campaigns_replayed = %d, want 1", got)
	}
	if got := counters["campaign.cells_cached"]; got < 1 {
		t.Errorf("cells_cached = %d, want >= 1 (finished cell must not re-solve)", got)
	}
	if got := counters["campaign.cells_deduped"]; got != 2 {
		t.Errorf("cells_deduped = %d, want 2", got)
	}
	if got := counters["campaign.cells_flat"]; got != 3 {
		t.Errorf("cells_flat = %d, want 3 (σ=0 row synthesized, not solved)", got)
	}
	resumedCSV := campaignCSV(t, base2, agg.ID)
	stopHelper(t, cmd2)

	// Phase 3: uninterrupted reference run in a pristine environment.
	refDir := t.TempDir()
	cmd3, addr3 := spawnHelper(t, refDir, "")
	base3 := "http://" + addr3
	code, _, resp = httpJSON(t, "POST", "http://"+addr3+"/v1/campaigns", body)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: %d %s", code, resp)
	}
	var refAgg campaign.Aggregate
	if err := json.Unmarshal(resp, &refAgg); err != nil {
		t.Fatal(err)
	}
	if refAgg.ID != agg.ID {
		t.Fatalf("content address drifted: %s vs %s", refAgg.ID, agg.ID)
	}
	if st := waitCampaign(t, base3, refAgg.ID); st.Status != campaign.StatusSucceeded {
		t.Fatalf("reference campaign ended %s: %s", st.Status, st.Error)
	}
	refCSV := campaignCSV(t, base3, refAgg.ID)
	stopHelper(t, cmd3)

	if !bytes.Equal(resumedCSV, refCSV) {
		t.Fatalf("resumed CSV differs from uninterrupted run:\nresumed:\n%s\nreference:\n%s", resumedCSV, refCSV)
	}
}

// TestCampaignEndpointLifecycle drives the fast path end to end on a
// memory-only server: flat-only cells complete without a solver run.
func TestCampaignEndpointLifecycle(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, QueueDepth: 2})
	defer ts.shutdown(t)

	cfg := roughsim.CampaignConfig{
		Cells: []roughsim.SurfaceSpec{
			{Corr: roughsim.GaussianCF, Sigma: 0, Eta: 1e-6},
			{Corr: roughsim.GaussianCF, Sigma: 0, Eta: 2e-6},
		},
		Freqs: []float64{1e9, 5e9},
	}
	code, body := ts.do(t, "POST", "/v1/campaigns", cfg)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var agg campaign.Aggregate
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatal(err)
	}

	// Idempotent by content address: the same study is one campaign.
	code, body = ts.do(t, "POST", "/v1/campaigns", cfg)
	if code != http.StatusOK {
		t.Fatalf("re-submit: %d %s", code, body)
	}
	var again campaign.Aggregate
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != agg.ID {
		t.Fatalf("re-submit relaunched: %s vs %s", again.ID, agg.ID)
	}

	code, body = ts.do(t, "GET", "/v1/campaigns", nil)
	if code != http.StatusOK || !bytes.Contains(body, []byte(agg.ID)) {
		t.Fatalf("list: %d %s", code, body)
	}

	final := waitCampaign(t, ts.base, agg.ID)
	if final.Status != campaign.StatusSucceeded || final.CellsDone != 2 {
		t.Fatalf("final aggregate: %+v", final)
	}
	if len(final.Cells) != 2 {
		t.Fatalf("status detail carries %d cells, want 2", len(final.Cells))
	}

	code, body = ts.do(t, "GET", "/v1/campaigns/"+agg.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, body)
	}
	var art campaign.Artifact
	if err := json.Unmarshal(body, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Cells) != 2 || len(art.Cells[0].Points) != 2 {
		t.Fatalf("artifact shape: %s", body)
	}
	for _, p := range art.Cells[0].Points {
		if p.KSWM != 1 {
			t.Fatalf("flat cell K = %v, want 1", p.KSWM)
		}
	}

	csv := campaignCSV(t, ts.base, agg.ID)
	if !bytes.HasPrefix(csv, []byte("cell,cf,")) {
		t.Fatalf("csv = %q", csv)
	}
	if n := bytes.Count(csv, []byte("\n")); n != 5 {
		t.Fatalf("csv has %d lines, want header + 2 cells × 2 freqs", n)
	}

	// Deleting a terminal campaign forgets it.
	if code, body = ts.do(t, "DELETE", "/v1/campaigns/"+agg.ID, nil); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	if code, _ = ts.do(t, "GET", "/v1/campaigns/"+agg.ID, nil); code != http.StatusNotFound {
		t.Fatalf("deleted campaign still answers: %d", code)
	}
}

// TestCampaignBusyResultConflictAndCancel: a campaign whose cell cannot
// be queued parks on backpressure (not failure), its result is 409
// while running, and DELETE cancels it.
func TestCampaignBusyResultConflictAndCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs solvers")
	}
	ts := startServer(t, Config{Workers: 1, QueueDepth: 1})
	defer ts.shutdown(t)

	// Fill the worker and the one queue slot with interactive sweeps.
	code, body := ts.do(t, "POST", "/v1/sweeps", tinyConfig(5e9))
	if code != http.StatusAccepted {
		t.Fatalf("sweep A: %d %s", code, body)
	}
	var a jobs.Info
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body = ts.do(t, "GET", "/v1/sweeps/"+a.ID, nil)
		var info jobs.Info
		if code != http.StatusOK || json.Unmarshal(body, &info) != nil {
			t.Fatalf("sweep A status: %d %s", code, body)
		}
		if info.Status == jobs.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep A never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, body = ts.do(t, "POST", "/v1/sweeps", tinyConfig(7e9)); code != http.StatusAccepted {
		t.Fatalf("sweep B: %d %s", code, body)
	}

	cfg := roughsim.CampaignConfig{
		Acc:   roughsim.Accuracy{GridPerSide: 8, StochasticDim: 2},
		Cells: []roughsim.SurfaceSpec{{Corr: roughsim.GaussianCF, Sigma: 0.4e-6, Eta: 1e-6}},
		Freqs: []float64{5e9},
	}
	code, body = ts.do(t, "POST", "/v1/campaigns", cfg)
	if code != http.StatusAccepted {
		t.Fatalf("campaign on full queue must park, got: %d %s", code, body)
	}
	var agg campaign.Aggregate
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatal(err)
	}

	if code, body = ts.do(t, "GET", "/v1/campaigns/"+agg.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result of a running campaign: %d %s, want 409", code, body)
	}

	if code, body = ts.do(t, "DELETE", "/v1/campaigns/"+agg.ID, nil); code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, body)
	}
	final := waitCampaign(t, ts.base, agg.ID)
	if final.Status != campaign.StatusCanceled {
		t.Fatalf("canceled campaign ended %s", final.Status)
	}
	// A terminal (canceled) campaign serves its partial artifact.
	if code, body = ts.do(t, "GET", "/v1/campaigns/"+agg.ID+"/result", nil); code != http.StatusOK {
		t.Fatalf("canceled result: %d %s", code, body)
	}
}

// TestCampaignEventsSSE: the events stream ends with a "done" event
// carrying per-cell detail.
func TestCampaignEventsSSE(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, QueueDepth: 2})
	defer ts.shutdown(t)

	cfg := roughsim.CampaignConfig{
		Cells: []roughsim.SurfaceSpec{{Corr: roughsim.GaussianCF, Sigma: 0, Eta: 1e-6}},
		Freqs: []float64{1e9},
	}
	code, body := ts.do(t, "POST", "/v1/campaigns", cfg)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var agg campaign.Aggregate
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.client.Get(ts.base + "/v1/campaigns/" + agg.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	rawb, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	raw := string(rawb)
	if !strings.Contains(raw, "event: progress") || !strings.Contains(raw, "event: done") {
		t.Fatalf("stream missing progress/done events:\n%s", raw)
	}
	// The done event carries the cells detail.
	last := raw[strings.LastIndex(raw, "event: done"):]
	if !strings.Contains(last, `"cells"`) {
		t.Fatalf("done event has no cell detail:\n%s", last)
	}
}

// TestCampaignBadRequestsNameField: invalid bodies on BOTH decode paths
// come back 400 with the offending field named.
func TestCampaignBadRequestsNameField(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, QueueDepth: 2, MaxCampaignCells: 4})
	defer ts.shutdown(t)

	cases := []struct {
		name  string
		path  string
		body  string
		field string
	}{
		{"sweep bad cf", "/v1/sweeps",
			`{"surface":{"cf":"bogus","sigma":4e-7,"eta":1e-6},"freqs_hz":[1e9]}`,
			`"cf"`},
		{"sweep wrong type", "/v1/sweeps",
			`{"freqs_hz":"not-a-list"}`,
			`"freqs_hz"`},
		{"sweep unknown field", "/v1/sweeps",
			`{"frequency":[1e9]}`,
			`"frequency"`},
		{"campaign bad cf", "/v1/campaigns",
			`{"cells":[{"cf":"triangular","sigma":4e-7,"eta":1e-6}],"freqs_hz":[1e9]}`,
			`"cf"`},
		{"campaign reversed band", "/v1/campaigns",
			`{"cells":[{"cf":"gaussian","sigma":4e-7,"eta":1e-6}],"band":{"fmin_hz":9e9,"fmax_hz":1e9}}`,
			"fmax_hz"},
		{"campaign non-positive step", "/v1/campaigns",
			`{"grid":{"sigmas":{"min":1e-7,"max":5e-7},"etas":{"values":[1e-6]}},"freqs_hz":[1e9]}`,
			"grid.sigmas"},
		{"campaign unknown field", "/v1/campaigns",
			`{"cellz":[{"cf":"gaussian","sigma":4e-7,"eta":1e-6}],"freqs_hz":[1e9]}`,
			`"cellz"`},
		{"campaign no cells", "/v1/campaigns",
			`{"freqs_hz":[1e9]}`,
			"grid"},
		{"campaign over cell limit", "/v1/campaigns",
			`{"grid":{"sigmas":{"values":[0,1e-7,2e-7]},"etas":{"values":[1e-6,2e-6]}},"freqs_hz":[1e9]}`,
			"limit is 4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := httpJSON(t, "POST", ts.base+tc.path, []byte(tc.body))
			if code != http.StatusBadRequest {
				t.Fatalf("code = %d %s, want 400", code, body)
			}
			var payload struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &payload); err != nil {
				t.Fatalf("non-JSON error body %s: %v", body, err)
			}
			if !strings.Contains(payload.Error, tc.field) {
				t.Fatalf("error %q does not name %s", payload.Error, tc.field)
			}
		})
	}
}

// TestHealthzReadiness: /healthz reports the durable directories, flips
// to 503 when one becomes unwritable, and campaigns are refused onto a
// wedged disk.
func TestHealthzReadiness(t *testing.T) {
	t.Run("memory-only is always ready", func(t *testing.T) {
		ts := startServer(t, Config{Workers: 1, QueueDepth: 2})
		defer ts.shutdown(t)
		code, body := ts.do(t, "GET", "/healthz", nil)
		if code != http.StatusOK {
			t.Fatalf("healthz: %d %s", code, body)
		}
		var h healthPayload
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatal(err)
		}
		if !h.Ready || len(h.Facets) != 0 {
			t.Fatalf("memory-only readiness: %s", body)
		}
	})

	t.Run("durable dirs probed and recovered", func(t *testing.T) {
		dir := t.TempDir()
		ts := startServer(t, durableConfig(dir, nil))
		defer ts.shutdown(t)

		code, body := ts.do(t, "GET", "/healthz", nil)
		var h healthPayload
		if code != http.StatusOK || json.Unmarshal(body, &h) != nil {
			t.Fatalf("healthz: %d %s", code, body)
		}
		if !h.Ready || len(h.Facets) != 2 {
			t.Fatalf("want 2 ready facets: %s", body)
		}

		// Wedge the cache tier: a regular file where the directory was
		// (ENOTDIR on the probe — chmod is useless under root).
		cacheDir := filepath.Join(dir, "cache")
		if err := os.RemoveAll(cacheDir); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cacheDir, []byte("wedge"), 0o644); err != nil {
			t.Fatal(err)
		}
		code, body = ts.do(t, "GET", "/healthz", nil)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("wedged healthz: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatal(err)
		}
		var cacheFacet *healthFacet
		for i := range h.Facets {
			if h.Facets[i].Name == "cache" {
				cacheFacet = &h.Facets[i]
			}
		}
		if h.Ready || cacheFacet == nil || cacheFacet.OK || cacheFacet.Error == "" {
			t.Fatalf("wedged payload: %s", body)
		}

		// A campaign must not be accepted onto a wedged disk.
		camp := roughsim.CampaignConfig{
			Cells: []roughsim.SurfaceSpec{{Corr: roughsim.GaussianCF, Sigma: 0, Eta: 1e-6}},
			Freqs: []float64{1e9},
		}
		code, body = ts.do(t, "POST", "/v1/campaigns", camp)
		if code != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("not ready")) {
			t.Fatalf("campaign onto wedged disk: %d %s", code, body)
		}

		// Unwedge: the probe recreates the directory itself.
		if err := os.Remove(cacheDir); err != nil {
			t.Fatal(err)
		}
		if code, body = ts.do(t, "GET", "/healthz", nil); code != http.StatusOK {
			t.Fatalf("recovered healthz: %d %s", code, body)
		}
		code, body = ts.do(t, "POST", "/v1/campaigns", camp)
		if code != http.StatusAccepted {
			t.Fatalf("campaign after recovery: %d %s", code, body)
		}
		var agg campaign.Aggregate
		if err := json.Unmarshal(body, &agg); err != nil {
			t.Fatal(err)
		}
		waitCampaign(t, ts.base, agg.ID)
	})
}

// TestCampaignDedupeCounters: duplicates are folded at plan time, and
// the counters prove each unique cell was solved at most once.
func TestCampaignDedupeCounters(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, QueueDepth: 2})
	defer ts.shutdown(t)

	cfg := roughsim.CampaignConfig{
		Cells: []roughsim.SurfaceSpec{
			{Corr: roughsim.GaussianCF, Sigma: 0, Eta: 1e-6},
			{Corr: roughsim.GaussianCF, Sigma: 0, Eta: 1e-6}, // duplicate
			{Corr: roughsim.GaussianCF, Sigma: 0, Eta: 2e-6},
		},
		Freqs: []float64{1e9},
	}
	code, body := ts.do(t, "POST", "/v1/campaigns", cfg)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var agg campaign.Aggregate
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatal(err)
	}
	final := waitCampaign(t, ts.base, agg.ID)
	if final.CellsTotal != 2 || final.DuplicatesFolded != 1 {
		t.Fatalf("aggregate: %+v", final)
	}
	if got := ts.metrics.Counter("campaign.cells_deduped").Value(); got != 1 {
		t.Errorf("cells_deduped = %d, want 1", got)
	}
	if got := ts.metrics.Counter("campaign.cells_total").Value(); got != 2 {
		t.Errorf("cells_total = %d, want 2", got)
	}
	// The folded duplicate is visible on its surviving cell.
	var dup bool
	for _, c := range final.Cells {
		if c.Duplicates > 0 {
			dup = true
		}
	}
	if !dup {
		t.Errorf("no cell carries the folded-duplicate count: %+v", final.Cells)
	}
}
