package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"roughsim"
	"roughsim/internal/jobs"
	"roughsim/internal/telemetry"
)

// durableConfig is the smallest crash-safe server: journal + disk cache
// tiers under dir.
func durableConfig(dir string, m *telemetry.Registry) Config {
	return Config{
		Workers:     1,
		QueueDepth:  4,
		CacheDir:    filepath.Join(dir, "cache"),
		JournalPath: filepath.Join(dir, "journal.wal"),
		Metrics:     m,
	}
}

// TestOversizedBodyIs413: a body past the MaxBytesReader limit is a
// payload problem (413), not a syntax problem (400) — on both decode
// paths.
func TestOversizedBodyIs413(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, QueueDepth: 2})
	defer ts.shutdown(t)

	// Valid-but-huge JSON (leading whitespace is legal) so the decoder
	// reads past the byte limit instead of failing on syntax first.
	huge := append(bytes.Repeat([]byte(" "), 1<<20+1), []byte("{}")...)
	for _, path := range []string{"/v1/sweeps", "/v1/surrogates"} {
		resp, err := ts.client.Post(ts.base+path, "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s with oversized body = %d, want 413", path, resp.StatusCode)
		}
	}
	// Malformed-but-small bodies still map to 400.
	resp, err := ts.client.Post(ts.base+"/v1/sweeps", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", resp.StatusCode)
	}
}

// TestQueueFullIs429WithRetryAfter: overload is a client-retryable
// condition — 429 plus a Retry-After hint, not a bare 503.
func TestQueueFullIs429WithRetryAfter(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, QueueDepth: 2})
	defer ts.shutdown(t)

	// One job occupies the worker, two fill the queue channel.
	block := make(chan struct{})
	defer close(block)
	blocker := func(ctx context.Context, _ func(int, int)) (any, error) {
		select {
		case <-block:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if _, err := ts.srv.queue.Submit(blocker); err != nil {
		t.Fatalf("setup submit: %v", err)
	}
	// Wait for the worker to take it off the channel, then fill the channel.
	waitFor(t, time.Second, func() bool { return ts.srv.queue.Depth() == 0 })
	for i := 0; i < 2; i++ {
		if _, err := ts.srv.queue.Submit(blocker); err != nil {
			t.Fatalf("setup submit %d: %v", i, err)
		}
	}
	waitFor(t, time.Second, func() bool { return ts.srv.queue.Depth() >= 2 })

	req, _ := http.NewRequest("POST", ts.base+"/v1/sweeps", bytes.NewReader(mustJSON(t, tinyConfig(5e9))))
	resp, err := ts.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit against a full queue = %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
}

// TestBreakerTripsShedsAndRecovers drives the circuit breaker through
// its whole lifecycle: closed → open on persistent failures (shedding
// with Retry-After), half-open after the cooldown, closed again on a
// healthy probe — with the state gauge tracking every transition.
func TestBreakerTripsShedsAndRecovers(t *testing.T) {
	m := telemetry.NewRegistry()
	b := newBreaker(BreakerConfig{Window: 4, MinSamples: 2, FailureRatio: 0.5, Cooldown: 30 * time.Millisecond}, m)

	if _, ok := b.Allow(); !ok {
		t.Fatal("fresh breaker refused work")
	}
	b.Record(false)
	b.Record(false)
	if b.State() != breakerOpen {
		t.Fatalf("state after 2/2 failures = %v, want open", b.State())
	}
	if m.Counter("breaker.trips").Value() != 1 {
		t.Fatalf("trips = %d, want 1", m.Counter("breaker.trips").Value())
	}
	retry, ok := b.Allow()
	if ok || retry <= 0 {
		t.Fatalf("open breaker admitted work (retry=%v ok=%v)", retry, ok)
	}
	if m.Counter("breaker.sheds").Value() != 1 {
		t.Fatalf("sheds = %d, want 1", m.Counter("breaker.sheds").Value())
	}
	if g := m.Gauge("breaker.state").Value(); g != breakerOpen {
		t.Fatalf("breaker.state gauge = %v, want %v", g, breakerOpen)
	}

	time.Sleep(40 * time.Millisecond)
	if _, ok := b.Allow(); !ok {
		t.Fatal("breaker past cooldown refused the probe")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state after probe admit = %v, want half-open", b.State())
	}
	b.Record(true)
	if b.State() != breakerClosed {
		t.Fatalf("state after healthy probe = %v, want closed", b.State())
	}

	// A failed probe reopens immediately.
	b.Record(false)
	b.Record(false)
	time.Sleep(40 * time.Millisecond)
	b.Allow()
	b.Record(false)
	if b.State() != breakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
}

// TestBreakerOpenSheds429: an open breaker turns POST /v1/sweeps into
// 429 + Retry-After while /healthz and the rest of the read plane keep
// serving.
func TestBreakerOpenSheds429(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, QueueDepth: 4})
	defer ts.shutdown(t)

	ts.srv.brk.mu.Lock()
	ts.srv.brk.openedAt = time.Now()
	ts.srv.brk.setStateLocked(breakerOpen)
	ts.srv.brk.mu.Unlock()

	req, _ := http.NewRequest("POST", ts.base+"/v1/sweeps", bytes.NewReader(mustJSON(t, tinyConfig(5e9))))
	resp, err := ts.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit behind open breaker = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if code, _ := ts.do(t, "GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz behind open breaker = %d, want 200", code)
	}
}

// TestJournalReplayAcrossRestart: a job journaled but orphaned by an
// ungraceful drain is re-enqueued — under its original ID — by the next
// server against the same journal, and completes.
func TestJournalReplayAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	dir := t.TempDir()

	m1 := telemetry.NewRegistry()
	ts1 := startServer(t, durableConfig(dir, m1))

	// Occupy the single worker so the journaled submission stays queued.
	block := make(chan struct{})
	ts1.srv.queue.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	code, body := ts1.do(t, "POST", "/v1/sweeps", tinyConfig(5e9))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var info jobs.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	// Ungraceful stop: the drain context is already expired, so queued
	// work is cancelled — a shutdown artifact the observer must NOT
	// journal as terminal.
	expired, cancel := context.WithDeadline(context.Background(), time.Now())
	cancel()
	close(block)
	ts1.srv.Shutdown(expired)
	<-ts1.serveErr

	m2 := telemetry.NewRegistry()
	ts2 := startServer(t, durableConfig(dir, m2))
	if got := m2.Counter("journal.jobs_replayed").Value(); got != 1 {
		t.Fatalf("jobs_replayed = %d, want 1", got)
	}
	res := ts2.waitResult(t, info.ID) // original ID survives the restart
	var sr roughsim.SweepResult
	if err := json.Unmarshal(res, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 1 || !(sr.Points[0].KSWM > 0) {
		t.Fatalf("replayed result malformed: %s", res)
	}
	ts2.shutdown(t)

	// A third boot sees a completed journal: nothing replays.
	m3 := telemetry.NewRegistry()
	ts3 := startServer(t, durableConfig(dir, m3))
	if got := m3.Counter("journal.jobs_replayed").Value(); got != 0 {
		t.Fatalf("clean journal replayed %d jobs, want 0", got)
	}
	ts3.shutdown(t)
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCheckpointPurgeAfterSuccess: a completed job leaves no checkpoint
// columns behind (they are consumed into the result cache).
func TestCheckpointPurgeAfterSuccess(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	dir := t.TempDir()
	m := telemetry.NewRegistry()
	ts := startServer(t, durableConfig(dir, m))
	defer ts.shutdown(t)

	ts.submitAndWait(t, tinyConfig(5e9))
	if saves := m.Counter("sweep.checkpoint_saves").Value(); saves == 0 {
		t.Fatal("sweep saved no checkpoints")
	}
	// The purge runs in the terminal observer, which may still be
	// finishing when the status first reads terminal — poll briefly.
	ckptGone := func() bool {
		files, err := filepath.Glob(filepath.Join(dir, "cache", "checkpoints", "*.json"))
		if err != nil {
			t.Fatal(err)
		}
		return len(files) == 0
	}
	waitFor(t, 2*time.Second, ckptGone)
	waitFor(t, 2*time.Second, func() bool {
		ts.srv.ckptMu.Lock()
		defer ts.srv.ckptMu.Unlock()
		return len(ts.srv.ckptCfgs) == 0
	})
}
