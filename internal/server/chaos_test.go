package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"roughsim"
	"roughsim/internal/jobs"
	"roughsim/internal/resilience"
	"roughsim/internal/telemetry"
)

// The chaos harness: the test binary re-executes itself as a miniature
// roughsimd (TestChaosHelperProcess), the parent kills it — via the
// deterministic crash injector, indistinguishable from kill -9 — in the
// middle of a sweep, restarts it against the same journal and cache
// dirs, and asserts the contract of this whole subsystem:
//
//   - the job resumes under its original ID and completes;
//   - checkpointed collocation nodes are NOT re-solved (solver
//     invocation counters prove it);
//   - the resumed result is bitwise identical to an uninterrupted run.

// chaosSweep is the workload: one frequency, 2 stochastic dims → four
// non-flat collocation columns. Checkpoint saves are serialized
// server-side, so "crash at save #2" leaves exactly one durable column
// no matter how the engine schedules its workers.
func chaosSweep() roughsim.SweepConfig {
	return tinyConfig(5e9)
}

// TestChaosHelperProcess is not a test: it is the daemon half of the
// chaos harness, run only when re-executed by TestChaosKillAndResume.
func TestChaosHelperProcess(t *testing.T) {
	if os.Getenv("ROUGHSIMD_CHAOS_HELPER") != "1" {
		t.Skip("helper process for TestChaosKillAndResume")
	}
	cfg := durableConfig(os.Getenv("ROUGHSIMD_CHAOS_DIR"), telemetry.NewRegistry())
	if spec := os.Getenv("ROUGHSIMD_CHAOS_SPEC"); spec != "" {
		fs, err := resilience.ParseCrashSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Chaos = resilience.NewInjector(fs)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The parent scrapes this line for the address.
	fmt.Printf("CHAOS_ADDR %s\n", l.Addr())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	select {
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("helper drain: %v", err)
		}
	case err := <-errc:
		t.Fatalf("helper serve: %v", err)
	}
}

// spawnHelper re-executes the test binary as the daemon and returns the
// command plus the address it listens on.
func spawnHelper(t *testing.T, dir, chaosSpec string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestChaosHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"ROUGHSIMD_CHAOS_HELPER=1",
		"ROUGHSIMD_CHAOS_DIR="+dir,
		"ROUGHSIMD_CHAOS_SPEC="+chaosSpec,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addrc := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "CHAOS_ADDR "); ok {
				addrc <- a
			}
			// Keep draining so the helper never blocks on a full pipe.
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("helper never reported its address")
		return nil, ""
	}
}

// testHTTPClient bounds every test request: http.DefaultClient has no
// timeout, so a wedged helper process would hang the whole test run
// instead of failing one request.
var testHTTPClient = &http.Client{Timeout: 60 * time.Second}

func httpJSON(t *testing.T, method, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := testHTTPClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// waitSucceeded polls a job until terminal and returns its /result body.
func waitSucceeded(t *testing.T, base, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, _, body := httpJSON(t, "GET", base+"/v1/sweeps/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("status %s: %d %s", id, code, body)
		}
		var info jobs.Info
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Status.Terminal() {
			if info.Status != jobs.StatusSucceeded {
				t.Fatalf("job %s ended %s: %s", id, info.Status, info.Error)
			}
			code, _, res := httpJSON(t, "GET", base+"/v1/sweeps/"+id+"/result", nil)
			if code != http.StatusOK {
				t.Fatalf("result %s: %d %s", id, code, res)
			}
			return res
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal in time", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func scrapeCounters(t *testing.T, base string) map[string]int64 {
	t.Helper()
	code, _, body := httpJSON(t, "GET", base+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, body)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters
}

func stopHelper(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("helper did not drain cleanly: %v", err)
	}
}

// TestChaosKillAndResume is the end-to-end crash drill.
func TestChaosKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemons and runs solvers")
	}
	dir := t.TempDir()
	sweepBody := mustJSON(t, chaosSweep())

	// Phase 1: daemon armed to die at the 2nd checkpoint save.
	cmd1, addr1 := spawnHelper(t, dir, "sweep.checkpoint:2")
	base1 := "http://" + addr1
	code, _, body := httpJSON(t, "POST", base1+"/v1/sweeps", sweepBody)
	if code != http.StatusAccepted {
		cmd1.Process.Kill()
		t.Fatalf("submit: %d %s", code, body)
	}
	var info jobs.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	err := cmd1.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 137 {
		t.Fatalf("helper exit = %v, want chaos crash status 137", err)
	}

	// Phase 2: restart against the same journal + cache. The job must
	// resume under its original ID, skip the one durable column, and
	// re-solve only the other three.
	cmd2, addr2 := spawnHelper(t, dir, "")
	base2 := "http://" + addr2
	res := waitSucceeded(t, base2, info.ID)
	counters := scrapeCounters(t, base2)
	if got := counters["journal.jobs_replayed"]; got != 1 {
		t.Errorf("jobs_replayed = %d, want 1", got)
	}
	if got := counters["sweep.checkpoint_hits"]; got != 1 {
		t.Errorf("checkpoint_hits = %d, want 1 (one column survived the crash)", got)
	}
	if got := counters["sweep.node_solves"]; got != 3 {
		t.Errorf("node_solves = %d, want 3 (checkpointed column must not re-solve)", got)
	}
	stopHelper(t, cmd2)

	// Phase 3: uninterrupted reference run in a pristine environment;
	// the resumed result must match it byte for byte.
	refDir := t.TempDir()
	cmd3, addr3 := spawnHelper(t, refDir, "")
	base3 := "http://" + addr3
	code, _, body = httpJSON(t, "POST", base3+"/v1/sweeps", sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: %d %s", code, body)
	}
	var refInfo jobs.Info
	if err := json.Unmarshal(body, &refInfo); err != nil {
		t.Fatal(err)
	}
	ref := waitSucceeded(t, base3, refInfo.ID)
	stopHelper(t, cmd3)
	if !bytes.Equal(res, ref) {
		t.Fatalf("resumed result differs from uninterrupted run:\nresumed:  %s\nreference: %s", res, ref)
	}
}
