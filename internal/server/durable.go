package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"roughsim"
	"roughsim/internal/jobs"
	"roughsim/internal/journal"
	"roughsim/internal/rescache"
	"roughsim/internal/resilience"
	"roughsim/internal/sscm"
	"roughsim/internal/sweepengine"
)

// This file is the durability and overload tier of roughsimd:
//
//   - every accepted sweep job is journaled (WAL) before the 202 leaves
//     the server, and unfinished jobs are re-enqueued — under their
//     original IDs, so client-held status URLs survive — when the
//     daemon reboots against the same journal;
//   - completed collocation-node columns are checkpointed through a
//     content-addressed cache as the sweep runs, so a crashed sweep
//     resumes without re-solving finished work (bitwise identically);
//   - a queue-pressure admission gate and an outcome-driven circuit
//     breaker shed exact-solve load with 429/503 + Retry-After while
//     the surrogate/cache fast path keeps serving.

// colCodec (de)serializes checkpoint columns ([]float64) for the
// checkpoint cache's disk tier. encoding/json prints float64s in their
// shortest round-trip form, so persisted columns reload bit-exactly.
func colCodec() rescache.Codec {
	return rescache.Codec{
		Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		Decode: func(b []byte) (any, error) {
			var col []float64
			if err := json.Unmarshal(b, &col); err != nil {
				return nil, err
			}
			return col, nil
		},
	}
}

// retryBackoff is the between-attempt schedule of transiently failed
// jobs (see Config.MaxAttempts).
func (s *Server) retryBackoff() resilience.Backoff {
	base := s.cfg.RetryBase
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	return resilience.Backoff{Base: base, Max: 30 * time.Second, Jitter: 0.2}
}

func (s *Server) submitOptions(id string, attempt int) jobs.SubmitOptions {
	return jobs.SubmitOptions{
		ID:          id,
		Attempt:     attempt,
		MaxAttempts: s.cfg.MaxAttempts,
		Backoff:     s.retryBackoff(),
	}
}

// submitSweep journals, then enqueues, one sweep job. The journal
// append is durable (fsynced) before the queue sees the job, so an
// acknowledged 202 always survives a crash: either the job completes
// and a terminal record follows, or a restart replays it. A submission
// the queue then refuses is closed out in the journal immediately.
func (s *Server) submitSweep(cfg roughsim.SweepConfig) (*jobs.Job, error) {
	id := jobs.NewID()
	if s.journal != nil {
		raw, err := json.Marshal(cfg)
		if err != nil {
			return nil, fmt.Errorf("server: encode config for journal: %w", err)
		}
		if err := s.journal.Append(journal.Record{
			Op: journal.OpSubmitted, JobID: id, Key: cfg.Key().String(), Config: raw,
		}); err != nil {
			return nil, fmt.Errorf("server: journal submit: %w", err)
		}
	}
	job, err := s.queue.SubmitOpts(s.runSweep(cfg), s.submitOptions(id, 0))
	if err != nil {
		if s.journal != nil {
			s.journal.Append(journal.Record{
				Op: journal.OpCanceled, JobID: id,
				Error: "submission rejected: " + err.Error(),
			})
		}
		return nil, err
	}
	return job, nil
}

// replayPending re-enqueues the unfinished jobs a journal replay
// surfaced, preserving their original job IDs and spent attempt counts,
// then resumes unfinished campaigns under their original campaign IDs.
// Called from New before the listener is up, so replayed work races
// nothing.
func (s *Server) replayPending(rep journal.Replay) {
	for _, p := range rep.Jobs {
		if p.Op == journal.OpSparamsSubmitted {
			s.replaySParams(p)
			continue
		}
		var cfg roughsim.SweepConfig
		if err := json.Unmarshal(p.Config, &cfg); err != nil {
			s.log.Warn("journal replay: undecodable config", "job", p.JobID, "err", err)
			s.journal.Append(journal.Record{
				Op: journal.OpFailed, JobID: p.JobID,
				Error: "replay: undecodable config: " + err.Error(),
				Kind:  resilience.KindInvalidInput.String(),
			})
			continue
		}
		cfg = cfg.WithDefaults()
		if _, err := s.queue.SubmitOpts(s.runSweep(cfg), s.submitOptions(p.JobID, p.Attempts)); err != nil {
			s.log.Warn("journal replay: resubmit failed", "job", p.JobID, "err", err)
			s.journal.Append(journal.Record{
				Op: journal.OpFailed, JobID: p.JobID,
				Error: "replay rejected: " + err.Error(),
			})
			continue
		}
		s.metrics.Counter("journal.jobs_replayed").Inc()
		s.log.Info("journal replay: job re-enqueued",
			"job", p.JobID, "attempts_spent", p.Attempts, "anchors_done", p.AnchorsDone)
	}
	for _, pc := range rep.Campaigns {
		var cfg roughsim.CampaignConfig
		if err := json.Unmarshal(pc.Config, &cfg); err != nil {
			s.log.Warn("journal replay: undecodable campaign config", "campaign", pc.ID, "err", err)
			s.journal.Append(journal.Record{
				Op: journal.OpCampaignFailed, JobID: pc.ID,
				Error: "replay: undecodable config: " + err.Error(),
				Kind:  resilience.KindInvalidInput.String(),
			})
			continue
		}
		c, _, err := s.camps.Start(cfg)
		if err != nil {
			s.log.Warn("journal replay: campaign restart failed", "campaign", pc.ID, "err", err)
			s.journal.Append(journal.Record{
				Op: journal.OpCampaignFailed, JobID: pc.ID,
				Error: "replay rejected: " + err.Error(),
				Kind:  resilience.Classify(err).String(),
			})
			continue
		}
		if c.ID != pc.ID {
			// The content-address schema changed underneath the journal:
			// close out the orphaned record so it cannot replay forever —
			// the campaign continues under its recomputed ID.
			s.journal.Append(journal.Record{
				Op: journal.OpCampaignCanceled, JobID: pc.ID,
				Error: "replay: campaign key schema changed; resumed as " + c.ID,
			})
		}
		s.metrics.Counter("journal.campaigns_replayed").Inc()
		s.log.Info("journal replay: campaign resumed",
			"campaign", pc.ID, "cells_done_before_crash", pc.CellsDone)
	}
}

// journalStarted records a worker pickup (advances the attempt count a
// future replay seeds the job with).
func (s *Server) journalStarted(meta jobs.Meta, ok bool) {
	if s.journal == nil || !ok || s.isUnjournaled(meta.JobID) {
		return
	}
	s.journal.Append(journal.Record{
		Op: journal.OpStarted, JobID: meta.JobID, Attempt: meta.Attempt,
	})
}

// observeTerminal is the queue's terminal-job observer: it funnels
// every real outcome into the journal (so replay drops finished jobs),
// the circuit breaker, and checkpoint cleanup. Cancellations produced
// by the drain itself are shutdown artifacts, not outcomes — they are
// deliberately NOT journaled as terminal, so a restart replays the job.
func (s *Server) observeTerminal(j *jobs.Job) {
	info := j.Snapshot()
	if info.Status == jobs.StatusCanceled && s.queue.Draining() {
		return
	}
	// An S-parameter generation job's in-flight tracking ends with the
	// job, whatever the outcome.
	s.clearSParams(j.ID)
	// Campaign cell jobs carry no per-job journal records (the campaign
	// record is their durability); breaker accounting and checkpoint
	// cleanup still apply.
	unj := s.clearUnjournaled(j.ID)
	journaled := s.journal != nil && !unj
	switch info.Status {
	case jobs.StatusSucceeded:
		s.brk.Record(true)
		if journaled {
			s.journal.Append(journal.Record{Op: journal.OpCompleted, JobID: j.ID})
		}
		s.purgeCheckpoints(j.ID)
	case jobs.StatusFailed:
		s.brk.Record(false)
		if journaled {
			_, err := j.Result()
			rec := journal.Record{Op: journal.OpFailed, JobID: j.ID}
			if err != nil {
				rec.Error = err.Error()
				rec.Kind = resilience.Classify(err).String()
			}
			s.journal.Append(rec)
		}
		s.purgeCheckpoints(j.ID)
	case jobs.StatusCanceled:
		if journaled {
			s.journal.Append(journal.Record{Op: journal.OpCanceled, JobID: j.ID})
		}
		s.purgeCheckpoints(j.ID)
	}
}

// ckptStore adapts the checkpoint cache to sweepengine.Checkpoint for
// one job's engine run. cfg.Freqs is exactly the frequency list the
// engine executes (the cache-missing subset), so checkpoint keys — and
// column lengths — can only match an identical residual sweep.
type ckptStore struct {
	s     *Server
	cfg   roughsim.SweepConfig
	jobID string
}

// checkpointStore builds the Checkpoint for one engine run and records
// its key-config so the job's terminal observer can purge consumed
// checkpoints. Returns a nil interface when checkpointing is disabled.
func (s *Server) checkpointStore(jobID string, cfg roughsim.SweepConfig) sweepengine.Checkpoint {
	if s.ckpts == nil {
		return nil
	}
	if jobID != "" {
		s.ckptMu.Lock()
		s.ckptCfgs[jobID] = cfg
		s.ckptMu.Unlock()
	}
	return &ckptStore{s: s, cfg: cfg, jobID: jobID}
}

func (c *ckptStore) Load(node int) ([]float64, bool) {
	v, ok := c.s.ckpts.Get(c.cfg.CheckpointKey(node))
	if !ok {
		return nil, false
	}
	col, ok := v.([]float64)
	return col, ok
}

func (c *ckptStore) Save(node int, col []float64) {
	// Saves are serialized (engine workers save concurrently otherwise)
	// and the chaos point sits BEFORE the write: "crash at the n-th
	// checkpoint save" then deterministically leaves exactly n-1 columns
	// durable — the torn state the resume path must tolerate.
	c.s.ckptWriteMu.Lock()
	defer c.s.ckptWriteMu.Unlock()
	n := c.s.ckptSeq.Add(1)
	c.s.chaos.Crash("sweep.checkpoint", n)
	c.s.ckpts.Put(c.cfg.CheckpointKey(node), col)
	if c.s.journal != nil && c.jobID != "" {
		c.s.journal.Append(journal.Record{
			Op: journal.OpAnchorDone, JobID: c.jobID,
		}.WithAnchor(node))
	}
}

// purgeCheckpoints deletes every checkpoint column a finished job may
// have persisted — its final result is in the result cache now, so the
// columns are consumed; leaving them would grow the disk tier with
// history instead of in-flight work.
func (s *Server) purgeCheckpoints(jobID string) {
	if s.ckpts == nil {
		return
	}
	s.ckptMu.Lock()
	cfg, ok := s.ckptCfgs[jobID]
	delete(s.ckptCfgs, jobID)
	s.ckptMu.Unlock()
	if !ok {
		return
	}
	nodes, err := sscm.Nodes(cfg.Acc.StochasticDim, 1)
	if err != nil {
		return
	}
	for node := sweepengine.FlatRefNode; node < len(nodes); node++ {
		s.ckpts.Delete(cfg.CheckpointKey(node))
	}
}

// admit is the overload gate in front of the queue: under high queue
// pressure only cheap work (a couple of frequencies — the GET /k
// fallback shape) is still admitted, and an open circuit breaker
// refuses all new exact-solve work. The returned retry is the
// Retry-After hint; err is non-nil when the request must be shed.
func (s *Server) admit(cost int) (retry time.Duration, err error) {
	if wait, ok := s.brk.Allow(); !ok {
		return wait, fmt.Errorf("circuit breaker open: exact-solve tier is failing; retry after cooldown")
	}
	depth, capacity := s.queue.Depth(), s.queue.Cap()
	if depth >= capacity {
		return s.drainEstimate(depth), fmt.Errorf("queue full (%d jobs)", depth)
	}
	const cheapSweepCost = 2 // single-point /k fallbacks and probes stay admitted
	if 4*depth >= 3*capacity && cost > cheapSweepCost {
		s.metrics.Counter("server.admission_shed").Inc()
		return s.drainEstimate(depth), fmt.Errorf(
			"queue under pressure (%d/%d jobs): only short sweeps admitted; retry later", depth, capacity)
	}
	return 0, nil
}

// drainEstimate guesses how long the backlog needs to clear enough to
// retry — deliberately coarse (a second per queued job per worker,
// floor 1s): Retry-After is a politeness hint, not a promise.
func (s *Server) drainEstimate(depth int) time.Duration {
	w := s.cfg.Workers
	if w <= 0 {
		w = 1
	}
	d := time.Duration(depth/w) * time.Second
	if d < time.Second {
		d = time.Second
	}
	return d
}

// writeRetryError writes an overload rejection with a Retry-After hint
// (whole seconds, rounded up, floor 1).
func writeRetryError(w http.ResponseWriter, status int, retry time.Duration, err error) {
	secs := int64((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, status, err)
}

// writeDecodeError maps a request-body decode failure to its status:
// 413 when the MaxBytesReader limit tripped, 400 otherwise — naming the
// offending field when the decoder knows it, so a client can fix the
// request instead of bisecting it.
func writeDecodeError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds the %d-byte limit", mbe.Limit))
		return
	}
	var ute *json.UnmarshalTypeError
	if errors.As(err, &ute) && ute.Field != "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"decode request: field %q: want %s, got %s", ute.Field, ute.Type, ute.Value))
		return
	}
	writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
}
