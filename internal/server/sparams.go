package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"roughsim"
	"roughsim/internal/jobs"
	"roughsim/internal/journal"
	"roughsim/internal/rescache"
	"roughsim/internal/sparams"
	"roughsim/internal/surrogate"
	"roughsim/internal/telemetry"
)

// This file is the S-parameter service tier of roughsimd: a geometry +
// band request becomes a journaled job that resolves K(f) — through an
// admitted surrogate when one covers the band, through the cached,
// checkpointed exact sweep chain otherwise — cascades the
// causality-corrected line model to two-port S-parameters, gates the
// result (passivity, causality), and admits the Touchstone artifact to
// a content-addressed store.
//
//	POST /v1/sparams             submit a roughsim.SParamConfig;
//	                             200 + artifact on a store hit, else 202 + job
//	GET  /v1/sparams/{id}        artifact by content address (64-hex key;
//	                             JSON, or raw .s2p with ?format=s2p /
//	                             Accept: application/x-touchstone), or job
//	                             status by job ID
//	GET  /v1/sparams/{id}/stream SSE progress of a generation job
//
// Identical requests share one content address, so a re-POST after the
// artifact landed is a pure store read — zero solver executions — on
// this process or any restart sharing the disk tier.

// sparamsAcceptedPayload is the POST /v1/sparams 202 body: the content
// address the artifact will land under plus the job to poll.
type sparamsAcceptedPayload struct {
	Key string `json:"key"`
	Job any    `json:"job"`
}

// artifactCodec (de)serializes sparams.Artifacts for the store's disk
// tier. Config is a json.RawMessage, so the echoed request survives the
// round trip verbatim.
func artifactCodec() rescache.Codec {
	return rescache.Codec{
		Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		Decode: func(b []byte) (any, error) {
			var a sparams.Artifact
			if err := json.Unmarshal(b, &a); err != nil {
				return nil, err
			}
			return &a, nil
		},
	}
}

func (s *Server) sparamsRequestCounter(outcome string) *telemetry.Counter {
	return s.metrics.CounterL("sparams.requests", telemetry.L("outcome", outcome))
}

func (s *Server) handleSParamsSubmit(w http.ResponseWriter, r *http.Request) {
	var cfg roughsim.SParamConfig
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeDecodeError(w, err)
		return
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		s.sparamsRequestCounter("invalid").Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The K-resolution sweep behind the artifact obeys the same service
	// limits as a directly submitted sweep.
	if err := s.validate(cfg.KSweep()); err != nil {
		s.sparamsRequestCounter("invalid").Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := cfg.Key()
	// Shard routing: the owning shard holds the artifact store entry and
	// the warm K caches for this address.
	if s.routeAway(w, r, key.String()) {
		return
	}
	if art, ok := s.artifact(key); ok {
		s.sparamsRequestCounter("hit").Inc()
		writeJSON(w, http.StatusOK, art)
		return
	}
	// An identical request already generating: share its job instead of
	// queueing a duplicate.
	if job, ok := s.sparFlight(key); ok {
		s.sparamsRequestCounter("joined").Inc()
		writeJSON(w, http.StatusAccepted, sparamsAcceptedPayload{Key: key.String(), Job: s.status(job)})
		return
	}
	if retry, err := s.admit(cfg.Points); err != nil {
		writeRetryError(w, http.StatusTooManyRequests, retry, err)
		return
	}
	job, err := s.submitSParams(cfg, key)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeRetryError(w, http.StatusTooManyRequests, s.drainEstimate(s.queue.Depth()), err)
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.sparamsRequestCounter("accepted").Inc()
	writeJSON(w, http.StatusAccepted, sparamsAcceptedPayload{Key: key.String(), Job: s.status(job)})
}

// handleSParamsGet serves an artifact by its 64-hex content address
// (JSON by default, the raw .s2p body under format/Accept negotiation)
// or, for any other id, the generation job's status.
func (s *Server) handleSParamsGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	key, err := rescache.ParseKey(id)
	if err != nil {
		// Not a content address: treat as a job ID.
		s.handleStatus(w, r)
		return
	}
	art, ok := s.artifact(key)
	if !ok {
		if job, live := s.sparFlight(key); live {
			writeJSON(w, http.StatusAccepted, sparamsAcceptedPayload{Key: key.String(), Job: s.status(job)})
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("no S-parameter artifact %s (submit it via POST /v1/sparams)", key))
		return
	}
	if wantsTouchstone(r) {
		w.Header().Set("Content-Type", "application/x-touchstone")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", "sparams-"+key.String()[:12]+".s2p"))
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, art.Touchstone)
		return
	}
	writeJSON(w, http.StatusOK, art)
}

// wantsTouchstone reports whether the client asked for the raw .s2p
// body (?format=s2p, or a Touchstone Accept header).
func wantsTouchstone(r *http.Request) bool {
	if f := r.URL.Query().Get("format"); f == "s2p" || f == "touchstone" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-touchstone")
}

// artifact reads the store (memory tier, then disk).
func (s *Server) artifact(key rescache.Key) (*sparams.Artifact, bool) {
	if s.sparArts == nil {
		return nil, false
	}
	v, ok := s.sparArts.Get(key)
	if !ok {
		return nil, false
	}
	art, ok := v.(*sparams.Artifact)
	return art, ok
}

// sparFlight returns the live generation job for an address, if any.
func (s *Server) sparFlight(key rescache.Key) (*jobs.Job, bool) {
	s.sparMu.Lock()
	id, ok := s.sparInFlight[key]
	s.sparMu.Unlock()
	if !ok {
		return nil, false
	}
	return s.queue.Get(id)
}

// registerSParams tracks a submitted generation job both ways: by
// address (request coalescing) and by job ID (terminal cleanup).
func (s *Server) registerSParams(key rescache.Key, jobID string) {
	s.sparMu.Lock()
	s.sparInFlight[key] = jobID
	s.sparJobs[jobID] = key
	s.sparMu.Unlock()
}

// clearSParams drops the in-flight tracking of a terminal job (no-op
// for other jobs).
func (s *Server) clearSParams(jobID string) {
	s.sparMu.Lock()
	if key, ok := s.sparJobs[jobID]; ok {
		delete(s.sparJobs, jobID)
		if s.sparInFlight[key] == jobID {
			delete(s.sparInFlight, key)
		}
	}
	s.sparMu.Unlock()
}

// submitSParams journals (OpSparamsSubmitted), then enqueues, one
// generation job — the same durable-submit protocol as sweeps, under a
// distinct op so a replay dispatches it back here.
func (s *Server) submitSParams(cfg roughsim.SParamConfig, key rescache.Key) (*jobs.Job, error) {
	id := jobs.NewID()
	if s.journal != nil {
		raw, err := json.Marshal(cfg)
		if err != nil {
			return nil, fmt.Errorf("server: encode sparams config for journal: %w", err)
		}
		if err := s.journal.Append(journal.Record{
			Op: journal.OpSparamsSubmitted, JobID: id, Key: key.String(), Config: raw,
		}); err != nil {
			return nil, fmt.Errorf("server: journal submit: %w", err)
		}
	}
	s.registerSParams(key, id)
	job, err := s.queue.SubmitOpts(s.runSParams(cfg, key), s.submitOptions(id, 0))
	if err != nil {
		s.clearSParams(id)
		if s.journal != nil {
			s.journal.Append(journal.Record{
				Op: journal.OpCanceled, JobID: id,
				Error: "submission rejected: " + err.Error(),
			})
		}
		return nil, err
	}
	return job, nil
}

// replaySParams re-enqueues one journaled S-parameter job under its
// original ID. The runner's store re-check makes replay idempotent: if
// the artifact landed before the crash, the job completes without
// computing anything.
func (s *Server) replaySParams(p journal.Pending) {
	var cfg roughsim.SParamConfig
	if err := json.Unmarshal(p.Config, &cfg); err != nil {
		s.log.Warn("journal replay: undecodable sparams config", "job", p.JobID, "err", err)
		s.journal.Append(journal.Record{
			Op: journal.OpFailed, JobID: p.JobID,
			Error: "replay: undecodable config: " + err.Error(),
		})
		return
	}
	cfg = cfg.WithDefaults()
	key := cfg.Key()
	s.registerSParams(key, p.JobID)
	if _, err := s.queue.SubmitOpts(s.runSParams(cfg, key), s.submitOptions(p.JobID, p.Attempts)); err != nil {
		s.clearSParams(p.JobID)
		s.log.Warn("journal replay: sparams resubmit failed", "job", p.JobID, "err", err)
		s.journal.Append(journal.Record{
			Op: journal.OpFailed, JobID: p.JobID,
			Error: "replay rejected: " + err.Error(),
		})
		return
	}
	s.metrics.Counter("journal.jobs_replayed").Inc()
	s.log.Info("journal replay: sparams job re-enqueued",
		"job", p.JobID, "attempts_spent", p.Attempts)
}

// runSParams is the generation job body: resolve → correct → cascade →
// validate → persist. Progress counts the K grid plus one unit for the
// generate/validate tail.
func (s *Server) runSParams(cfg roughsim.SParamConfig, key rescache.Key) jobs.Runner {
	return func(ctx context.Context, progress func(done, total int)) (any, error) {
		meta, hasMeta := jobs.MetaFrom(ctx)
		s.journalStarted(meta, hasMeta)
		grid := cfg.Grid()
		total := len(grid) + 1
		progress(0, total)
		// Replay/retry fast path: the artifact may already be durable.
		if art, ok := s.artifact(key); ok {
			progress(total, total)
			return art, nil
		}
		art, err := sparams.Generate(ctx, cfg.Request(), s.kResolver(cfg, func(done int) {
			progress(min(done, len(grid)), total)
		}), s.metrics)
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(cfg)
		if err != nil {
			return nil, fmt.Errorf("server: encode artifact config: %w", err)
		}
		art.Config = raw
		// Chaos point BEFORE the store write: "crash at the n-th artifact
		// persist" leaves the K points cached but the artifact absent —
		// exactly the torn state replay must finish from.
		s.chaos.Crash("sparams.artifact", s.sparSeq.Add(1))
		s.sparArts.Put(key, art)
		progress(total, total)
		return art, nil
	}
}

// kResolver resolves K(f) for one artifact: an admitted surrogate whose
// physics matches and whose band covers the grid evaluates in
// microseconds; otherwise the exact sweep chain runs with all its
// machinery (result cache, checkpoints, cluster dispatch) behind it.
func (s *Server) kResolver(cfg roughsim.SParamConfig, onProgress func(done int)) sparams.Resolver {
	return sparams.ResolverFunc(func(ctx context.Context, freqs []float64) (sparams.Resolution, error) {
		if res, ok := s.surrogateResolve(cfg, freqs); ok {
			s.metrics.CounterL("sparams.k_path", telemetry.L("path", "surrogate")).Inc()
			onProgress(len(freqs))
			return res, nil
		}
		s.metrics.CounterL("sparams.k_path", telemetry.L("path", "exact")).Inc()
		sweep := roughsim.SweepConfig{Stack: cfg.Stack, Spec: cfg.Spec, Acc: cfg.Acc, Freqs: freqs}.WithDefaults()
		result, err := s.computeSweep(ctx, sweep, func(done, total int) { onProgress(done) })
		if err != nil {
			return sparams.Resolution{}, err
		}
		ks := make([]float64, len(result.Points))
		for i, p := range result.Points {
			ks[i] = p.KSWM
		}
		return sparams.Resolution{K: ks, Source: "exact"}, nil
	})
}

// surrogateResolve scans the registry for an admitted model fitted for
// this request's physics whose band covers the whole grid.
func (s *Server) surrogateResolve(cfg roughsim.SParamConfig, freqs []float64) (sparams.Resolution, bool) {
	physics := (roughsim.SweepConfig{Stack: cfg.Stack, Spec: cfg.Spec, Acc: cfg.Acc}).WithDefaults().KeyAt(1)
	for _, rec := range s.surrogates.List() {
		if rec.Status != surrogate.StatusAdmitted || rec.Model == nil {
			continue
		}
		if !rec.Model.InBand(freqs[0]) || !rec.Model.InBand(freqs[len(freqs)-1]) {
			continue
		}
		var scfg roughsim.SurrogateConfig
		if json.Unmarshal(rec.Spec.Meta, &scfg) != nil {
			continue
		}
		if (roughsim.SweepConfig{Stack: scfg.Stack, Spec: scfg.Spec, Acc: scfg.Acc}).WithDefaults().KeyAt(1) != physics {
			continue
		}
		ks := make([]float64, len(freqs))
		ok := true
		for i, f := range freqs {
			k, err := rec.Model.Mean(f)
			if err != nil {
				ok = false
				break
			}
			ks[i] = k
		}
		if !ok {
			continue
		}
		return sparams.Resolution{K: ks, Source: "surrogate", MaxRelErr: rec.MaxRelErr}, true
	}
	return sparams.Resolution{}, false
}
