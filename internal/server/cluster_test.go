package server

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"roughsim"
	"roughsim/internal/cluster"
	"roughsim/internal/telemetry"
)

// startWorker runs an in-process cluster worker against the test
// coordinator and blocks until the coordinator has seen it (the
// cluster.workers gauge), so subsequent submissions dispatch remotely
// deterministically.
func startWorker(t *testing.T, ts *testServer, id string) {
	t.Helper()
	wm := telemetry.NewRegistry()
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: ts.base,
		ID:          id,
		Poll:        10 * time.Millisecond,
		Grace:       5 * time.Second,
		Metrics:     wm,
		Solve:       cluster.NewColumns(wm).Solve,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("worker did not drain")
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for ts.metrics.Gauge("cluster.workers").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never saw the worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterInProcessWorkerBitwise is the in-process acceptance test
// of the compute plane: a coordinator with one live worker must receive
// every column remotely (zero local node solves) and the result must be
// byte-identical to a plain single-process server's.
func TestClusterInProcessWorkerBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	cfg := tinyConfig(5e9)

	// Reference: plain single-process server.
	ref := startServer(t, Config{Workers: 2, QueueDepth: 8, CacheSize: 64})
	want := ref.submitAndWait(t, cfg)
	ref.shutdown(t)

	ts := startServer(t, Config{
		Workers: 2, QueueDepth: 8, CacheSize: 64,
		Cluster: ClusterConfig{Role: RoleCoordinator, LeaseTTL: 5 * time.Second},
	})
	defer ts.shutdown(t)
	startWorker(t, ts, "w-inproc")

	got := ts.submitAndWait(t, cfg)
	if !bytes.Equal(want, got) {
		t.Fatalf("distributed result differs from single-process:\n%s\nvs\n%s", got, want)
	}
	if solves := ts.metrics.Counter("sweep.node_solves").Value(); solves != 0 {
		t.Fatalf("coordinator solved %d nodes locally; all columns should be remote", solves)
	}
	if hits := ts.metrics.Counter("sweep.checkpoint_hits").Value(); hits == 0 {
		t.Fatal("engine never loaded the remote columns as checkpoint hits")
	}
	remote := ts.metrics.Counter("lease.columns_remote").Value()
	if remote == 0 {
		t.Fatal("no column was accounted as remotely computed")
	}
	if completes := ts.metrics.CounterL("lease.completes", telemetry.L("worker", "w-inproc")).Value(); completes != remote {
		t.Fatalf("lease.completes{worker=w-inproc} = %d, want %d", completes, remote)
	}
}

// Stale lease operations must answer 409 and claims with no pending
// work 204 — the wire contract behind idempotent discard.
func TestClusterEndpointStatuses(t *testing.T) {
	ts := startServer(t, Config{
		Workers: 1, QueueDepth: 4, CacheSize: 16,
		Cluster: ClusterConfig{Role: RoleCoordinator},
	})
	defer ts.shutdown(t)

	code, _ := ts.do(t, "POST", cluster.ClaimPath, cluster.ClaimRequest{Worker: "w"})
	if code != http.StatusNoContent {
		t.Fatalf("idle claim: %d, want 204", code)
	}
	code, _ = ts.do(t, "POST", cluster.RenewPath, cluster.RenewRequest{TaskID: "nope", Token: "t"})
	if code != http.StatusConflict {
		t.Fatalf("stale renew: %d, want 409", code)
	}
	code, _ = ts.do(t, "POST", cluster.CompletePath, cluster.CompleteRequest{
		TaskID: "nope", Token: "t", Worker: "w", Column: []float64{1},
	})
	if code != http.StatusConflict {
		t.Fatalf("stale complete: %d, want 409", code)
	}
	if stale := ts.metrics.Counter("lease.stale_results").Value(); stale != 1 {
		t.Fatalf("lease.stale_results = %d, want 1", stale)
	}
	code, _ = ts.do(t, "POST", cluster.LeavePath, cluster.LeaveRequest{Worker: "w"})
	if code != http.StatusNoContent {
		t.Fatalf("leave: %d, want 204", code)
	}
	code, _ = ts.do(t, "POST", cluster.ClaimPath, cluster.ClaimRequest{})
	if code != http.StatusBadRequest {
		t.Fatalf("anonymous claim: %d, want 400", code)
	}
}

// A plain single-process server must not expose the cluster endpoints.
func TestClusterEndpointsAbsentWhenSingle(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: 16})
	defer ts.shutdown(t)
	code, _ := ts.do(t, "POST", cluster.ClaimPath, cluster.ClaimRequest{Worker: "w"})
	if code != http.StatusNotFound {
		t.Fatalf("claim on single-process server: %d, want 404", code)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Cluster: ClusterConfig{Role: "worker"}}); err == nil {
		t.Fatal("server.New accepted role worker (workers run no HTTP server)")
	}
	if _, err := New(Config{Cluster: ClusterConfig{Peers: []string{"http://a", "http://b"}}}); err == nil {
		t.Fatal("peers without SelfURL accepted")
	}
}

// Submissions and /k queries whose content address another shard owns
// must 307 there with the path preserved; owned keys serve locally.
func TestShardRouting(t *testing.T) {
	self, other := "http://self.invalid", "http://other.invalid"
	ring := cluster.NewRing([]string{self, other})

	// Find one sweep config owned by each shard; Key() applies the same
	// defaults handleSubmit does, so test and server agree on ownership.
	var mine, theirs *roughsim.SweepConfig
	for f := 1; f < 200 && (mine == nil || theirs == nil); f++ {
		cfg := tinyConfig(float64(f) * 1e9)
		switch ring.Owner(cfg.Key().String()) {
		case self:
			if mine == nil {
				mine = &cfg
			}
		case other:
			if theirs == nil {
				theirs = &cfg
			}
		}
	}
	if mine == nil || theirs == nil {
		t.Fatal("could not find configs on both shards")
	}

	ts := startServer(t, Config{
		Workers: 1, QueueDepth: 4, CacheSize: 16,
		Cluster: ClusterConfig{SelfURL: self, Peers: []string{self, other}},
	})
	defer ts.shutdown(t)
	// Do not follow redirects: the other shard does not exist.
	ts.client.CheckRedirect = func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}

	req, err := http.NewRequest(http.MethodPost, ts.base+"/v1/sweeps", bytes.NewReader(mustJSON(t, theirs)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("foreign submit: %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, other+"/v1/sweeps") {
		t.Fatalf("redirect location %q, want prefix %s/v1/sweeps", loc, other)
	}

	// A key this shard owns is served locally (202, job accepted).
	if code, body := ts.do(t, "POST", "/v1/sweeps", mine); code != http.StatusAccepted {
		t.Fatalf("owned submit: %d %s, want 202", code, body)
	}

	// /k routes by the surrogate key before any registry lookup.
	foreignKey := theirs.Key().String()
	if code, _ := ts.do(t, "GET", "/k?key="+foreignKey+"&f=5e9", nil); code != http.StatusTemporaryRedirect {
		t.Fatalf("foreign /k: %d, want 307", code)
	}
	if routed := ts.metrics.CounterL("cluster.routed", telemetry.L("to", other)).Value(); routed != 2 {
		t.Fatalf("cluster.routed{to=%s} = %d, want 2", other, routed)
	}
}
